// Package optiql is a from-scratch Go reproduction of "OptiQL: Robust
// Optimistic Locking for Memory-Optimized Indexes" (Shi, Yan, Wang;
// SIGMOD 2024): the OptiQL optimistic queuing lock, the comparison
// locks, OLC-based B+-tree and ART index substrates, and the full
// benchmark harness that regenerates the paper's evaluation.
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory); runnable examples are under examples/ and the
// evaluation drivers under cmd/. The root package exists to host the
// module documentation and the per-figure benchmarks in bench_test.go.
package optiql
