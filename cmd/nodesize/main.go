// Command nodesize runs the Figure 11 node-size study: B+-tree
// throughput under the skewed distribution across node sizes from 256
// bytes to 16 KB, comparing OptLock, OptiQL-NOR, OptiQL and OptiQL-AOR
// (the adjustable opportunistic read variant, which pays off with
// larger nodes / longer critical sections).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"optiql/internal/experiments"
)

func main() {
	var (
		threads  = flag.Int("threads", 8, "worker threads (paper: 40)")
		duration = flag.Duration("duration", 500*time.Millisecond, "measured duration per run")
		runs     = flag.Int("runs", 3, "repetitions per configuration")
		records  = flag.Int("records", 200_000, "records preloaded (paper: 100000000)")
	)
	flag.Parse()

	err := experiments.Fig11(experiments.Options{
		Threads:    []int{*threads},
		MaxThreads: *threads,
		Duration:   *duration,
		Runs:       *runs,
		Records:    *records,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nodesize:", err)
		os.Exit(1)
	}
}
