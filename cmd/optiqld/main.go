// Command optiqld serves the OptiQL index substrates as a sharded TCP
// key-value service (GET / PUT / DELETE / SCAN / BATCH over the
// length-prefixed binary protocol of internal/server/wire).
//
// Examples:
//
//	optiqld -addr :4440 -index btree -scheme OptiQL -shards 8
//	optiqld -addr :4440 -obs :6060          # live /metrics while serving
//	optiqld -addr :4440 -wal /var/lib/optiql/wal -fsync interval
//
// With -wal the daemon is durable: writes are acknowledged only after
// the fsync policy admits them, and a restart replays the log (plus
// the latest checkpoint) back into the index before serving.
//
// Drive it with the load generator:
//
//	indexbench -net 127.0.0.1:4440 -threads 8 -mix balanced -duration 5s
//
// SIGINT/SIGTERM trigger a graceful shutdown: accepting stops, every
// admitted request is answered and the per-shard write batches drain
// before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"optiql/internal/faults"
	"optiql/internal/obs"
	"optiql/internal/obs/trace"
	"optiql/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":4440", "TCP listen address")
		index    = flag.String("index", "btree", "btree|art")
		scheme   = flag.String("scheme", "OptiQL", "lock scheme (locks.ByName)")
		shards   = flag.Int("shards", 4, "number of index partitions")
		nodeSize = flag.Int("nodesize", 256, "B+-tree node size in bytes")
		batchMax = flag.Int("batch", 64, "max writes grouped per shard-executor wakeup")
		obsAddr  = flag.String("obs", "", "serve live /metrics, /debug/vars and /debug/pprof on this address (e.g. :6060)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
		readTO   = flag.Duration("read-timeout", 0, "per-frame read deadline; idle/slow-loris connections are reaped (0 disables)")
		writeTO  = flag.Duration("write-timeout", 0, "per-response write deadline; non-reading peers are dropped (0 disables)")
		inflight = flag.Int("inflight", 0, "per-shard write admission budget; overflow is shed with OVERLOADED (0 = block instead)")
		chaos    = flag.String("chaos", "", "fault-injection spec, e.g. 'reset=0.01,latency=0.05:100us-1ms,corrupt=0.001,seed=7' (see internal/faults)")
		trc      = flag.String("trace", "", "write a Chrome trace_event JSON (load in Perfetto / chrome://tracing) to this path at shutdown")
		sample   = flag.Int("sample", 0, "trace sampling interval, 1-in-N requests (0 = default 1024 when -trace is set; also enables /debug/contention without -trace)")
		combine  = flag.Bool("combine", false, "enable the hot-key contention engine: per-shard policies arm flat-combining of same-key write runs under skew")
		combineT = flag.Float64("combine-threshold", 0, "top-key traffic share that arms a shard's combining (0 = default 0.08; disarms below half)")
		walDir   = flag.String("wal", "", "write-ahead-log directory; enables durability + crash recovery (empty = in-memory only)")
		fsync    = flag.String("fsync", "interval", "fsync policy: always (ack per batch fsync), interval (group commit), off (OS decides)")
		fsyncInt = flag.Duration("fsync-interval", 0, "max wait before a group-commit fsync (0 = wal default 2ms)")
		walSeg   = flag.Int64("wal-segment", 0, "segment rotation size in bytes (0 = wal default 64MiB)")
		walCkpt  = flag.Int64("wal-checkpoint", 0, "sealed bytes between checkpoints (0 = wal default; checkpoints bound replay and reclaim segments)")
		walQueue = flag.Int("wal-queue", 0, "max appended-but-unsynced ops per shard before writes shed OVERLOADED (interval policy; 0 = no shedding)")
		walGroup = flag.Int("wal-group", 0, "group-commit fill target in ops per shard (0 = wal default 64)")
	)
	flag.Parse()

	var chaosCfg *faults.Config
	if *chaos != "" {
		cfg, err := faults.Parse(*chaos)
		if err != nil {
			fatal(err)
		}
		chaosCfg = &cfg
	}
	var traceCfg *trace.Config
	if *trc != "" || *sample > 0 {
		traceCfg = &trace.Config{SampleEvery: *sample}
	}
	srv, err := server.New(server.Config{
		Addr:         *addr,
		Index:        *index,
		Scheme:       *scheme,
		Shards:       *shards,
		NodeSize:     *nodeSize,
		BatchMax:     *batchMax,
		ReadTimeout:  *readTO,
		WriteTimeout: *writeTO,
		InflightMax:  *inflight,
		Chaos:        chaosCfg,
		Trace:        traceCfg,

		Combine:          *combine,
		CombineThreshold: *combineT,

		WALDir:             *walDir,
		Fsync:              *fsync,
		FsyncInterval:      *fsyncInt,
		WALSegmentBytes:    *walSeg,
		WALCheckpointBytes: *walCkpt,
		WALSyncQueueMax:    *walQueue,
		WALGroupOps:        *walGroup,
		WALLogf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "optiqld: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}
	if *walDir != "" {
		// The recovery line is a stable marker the crash harness and the
		// CI smoke script parse; keep its shape if you edit it.
		var reps, rops, torn, ck uint64
		for _, rec := range srv.WALRecovery() {
			reps += rec.RecordsReplayed
			rops += rec.OpsReplayed
			torn += uint64(rec.TornRecords)
			ck += rec.CheckpointPairs
		}
		fmt.Printf("optiqld: wal recovery complete: %d records / %d ops replayed, %d checkpoint pairs, %d torn-tail truncations\n",
			reps, rops, ck, torn)
	}
	bound, err := srv.Listen()
	if err != nil {
		fatal(err)
	}
	if *obsAddr != "" {
		src := &obs.LiveSource{}
		srv.AttachLive(src)
		_, oaddr, err := obs.Serve(*obsAddr, src)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("observability endpoint on http://%s/metrics\n", oaddr)
	}
	fmt.Printf("optiqld serving %s/%s on %s (%d shards)\n", *index, *scheme, bound, *shards)
	if *walDir != "" {
		fmt.Printf("optiqld: durability on: wal=%s fsync=%s\n", *walDir, *fsync)
	}
	if chaosCfg != nil {
		fmt.Printf("optiqld: CHAOS MODE: injecting faults on every connection (%s)\n", *chaos)
	}
	if *combine {
		t := *combineT
		if t <= 0 {
			t = obs.DefaultCombineThreshold
		}
		fmt.Printf("optiqld: contention engine on (combine arms at top-key share %.0f%%)\n", t*100)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var walRep *obs.WALReport
	select {
	case err := <-errc:
		if err != nil {
			fatal(err)
		}
	case got := <-sig:
		fmt.Printf("optiqld: %v, draining...\n", got)
		// Snapshot durability stats before Shutdown seals and releases
		// the shard logs; afterwards the report reads all zeros.
		walRep = srv.WALReport()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "optiqld: shutdown timed out:", err)
		}
	}
	if *trc != "" {
		if tr := srv.Tracer(); tr != nil {
			f, err := os.Create(*trc)
			if err != nil {
				fatal(err)
			}
			if err := tr.WriteChrome(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("optiqld: trace written to %s (load in Perfetto or chrome://tracing)\n", *trc)
		}
	}
	st := srv.Stats()
	fmt.Printf("optiqld: served %d conns, %d ops (%d get / %d put / %d delete / %d scan, %d batches, %d errors), %d keys resident\n",
		st.Conns, st.Ops, st.Gets, st.Puts, st.Deletes, st.Scans, st.Batches, st.Errors, srv.Len())
	if st.Panics+st.Shed+st.Reaped > 0 {
		fmt.Printf("optiqld: resilience: %d panics recovered, %d writes shed, %d connections reaped\n",
			st.Panics, st.Shed, st.Reaped)
	}
	if inj := srv.FaultInjector(); inj != nil {
		fs := inj.Stats()
		fmt.Printf("optiqld: faults injected: %d total (%d latency, %d stall, %d short-write, %d fragment, %d reset, %d corrupt, %d accept-fail)\n",
			fs.Total(), fs.Latency, fs.Stall, fs.ShortWrite, fs.Fragment, fs.Reset, fs.Corrupt, fs.AcceptFail)
	}
	if walRep != nil {
		fmt.Printf("optiqld: wal: %d records / %d ops appended (%d bytes), %d fsyncs, %d rotations, %d checkpoints, %d segments reclaimed, %d writes shed\n",
			walRep.AppendedRecords, walRep.AppendedOps, walRep.AppendedBytes, walRep.Syncs,
			walRep.Rotations, walRep.Checkpoints, walRep.SegmentsReclaimed, walRep.LagSheds)
	}
	snap := srv.Counters()
	// ART writes acquire via read-to-write upgrades, the B+-tree via
	// direct exclusive acquires; print both so neither index looks idle.
	fmt.Printf("optiqld: lock events: %d validation failures, %d restarts, %d free / %d handover acquires, %d upgrades\n",
		snap.Get(obs.EvShValidateFail), snap.Get(obs.EvOpRestart),
		snap.Get(obs.EvExFree), snap.Get(obs.EvExHandover), snap.Get(obs.EvUpgradeOK))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "optiqld:", err)
	os.Exit(1)
}
