// Command experiments regenerates the paper's full evaluation: every
// figure and table in Section 7, in paper order. Use -profile quick
// for a CI-sized pass or -profile full for longer, more stable runs;
// individual experiments can be selected with -only.
//
// The output is the text report EXPERIMENTS.md is built from.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"optiql/internal/experiments"
)

func main() {
	var (
		profile = flag.String("profile", "quick", "quick|full|paper")
		only    = flag.String("only", "all", "single experiment to run (fig1..fig13, table1, all)")
		threads = flag.String("threads", "", "override thread sweep (comma-separated)")
		records = flag.Int("records", 0, "override preloaded record count")
	)
	flag.Parse()

	var opts experiments.Options
	switch *profile {
	case "quick":
		opts = experiments.Options{
			Threads:  []int{1, 2, 4, 8},
			Duration: 300 * time.Millisecond,
			Runs:     2,
			Records:  100_000,
		}
	case "full":
		opts = experiments.Options{
			Threads:  []int{1, 2, 4, 8, 16},
			Duration: 2 * time.Second,
			Runs:     5,
			Records:  1_000_000,
		}
	case "paper":
		opts = experiments.Options{
			Threads:  []int{1, 20, 40, 60, 80},
			Duration: 10 * time.Second,
			Runs:     20,
			Records:  100_000_000,
		}
	default:
		fatal(fmt.Errorf("unknown profile %q", *profile))
	}
	if *threads != "" {
		ths, err := experiments.ParseThreads(*threads)
		if err != nil {
			fatal(err)
		}
		opts.Threads = ths
		opts.MaxThreads = 0
	}
	if *records != 0 {
		opts.Records = *records
	}

	fmt.Printf("OptiQL evaluation reproduction — profile=%s, GOMAXPROCS=%d, NumCPU=%d\n",
		*profile, runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Printf("threads=%v duration=%v runs=%d records=%d\n",
		opts.Threads, opts.Duration, opts.Runs, opts.Records)

	fn, err := experiments.ByName(*only)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	if err := fn(opts); err != nil {
		fatal(err)
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Second))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
