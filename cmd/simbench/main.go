// Command simbench regenerates the contention-sensitive lock
// experiments (Figures 6-8, Table 1 and the fairness extension) on the
// deterministic multicore cache-coherence simulator in internal/sim.
//
// Use it when the host machine has fewer cores than the paper's
// testbed: the native microbenchmarks then cannot exhibit parallel
// cacheline contention, while the simulated runs reproduce the paper's
// shapes exactly and deterministically (see DESIGN.md).
//
// Examples:
//
//	simbench                       # all simulated experiments
//	simbench -only simtable1
//	simbench -scheme OptiQL -threads 80 -locks 1   # single custom run
package main

import (
	"flag"
	"fmt"
	"os"

	"optiql/internal/experiments"
	"optiql/internal/sim"
)

func main() {
	var (
		only    = flag.String("only", "allsim", "simfig6|simfig7|simtable1|simfig8|simfairness|allsim")
		scheme  = flag.String("scheme", "", "run a single custom simulation with this scheme instead")
		threads = flag.Int("threads", 40, "simulated threads (custom run)")
		nlocks  = flag.Int("locks", 1, "number of locks (custom run; 0 = per-thread)")
		readPct = flag.Int("readpct", 0, "read percentage (custom run)")
		csLen   = flag.Int("cs", 50, "critical-section length (custom run)")
		cycles  = flag.Uint64("cycles", 2_000_000, "simulated cycles (custom run)")
		split   = flag.Bool("split", false, "dedicated reader/writer threads (custom run)")
		seed    = flag.Uint64("seed", 1, "simulation seed (custom run)")
	)
	flag.Parse()

	if *scheme != "" {
		r, err := sim.Run(sim.Config{
			Scheme: *scheme, Threads: *threads, Locks: *nlocks,
			ReadPct: *readPct, CSLen: *csLen, Cycles: *cycles,
			Split: *split, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("scheme=%s threads=%d locks=%d read%%=%d cs=%d cycles=%d\n",
			*scheme, *threads, *nlocks, *readPct, *csLen, *cycles)
		fmt.Printf("throughput: %.2f ops/kcycle (%d ops)\n", r.Throughput(), r.Ops)
		fmt.Printf("writes: %d, reads: %d, attempts: %d, read success: %.2f%%, fairness: %.2fx\n",
			r.Writes, r.Reads, r.ReadAttempts, r.ReadSuccessRate()*100, r.FairnessRatio())
		return
	}

	fn, err := experiments.ByName(*only)
	if err != nil {
		fatal(err)
	}
	if err := fn(experiments.Options{}); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simbench:", err)
	os.Exit(1)
}
