// Command indexbench runs the index benchmarks of the OptiQL paper
// (Figures 1, 9, 10 and 13), or a single custom configuration against
// the B+-tree or ART.
//
// Examples:
//
//	indexbench -experiment fig9 -records 100000000 -threads 1,20,40,60,80 -duration 10s -runs 20
//	indexbench -index art -scheme OptiQL -mix balanced -dist selfsimilar -sparse
//
// With -net it turns into a load generator for a running optiqld
// server, driving the same mixes and distributions through pipelined
// protocol connections (one per thread):
//
//	indexbench -net 127.0.0.1:4440 -threads 8 -mix balanced -duration 5s -json -
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"optiql/internal/bench"
	"optiql/internal/experiments"
	"optiql/internal/faults"
	"optiql/internal/obs"
	"optiql/internal/obs/trace"
	"optiql/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "fig1|fig9|fig10|fig13|all (empty = custom single run)")
		threads    = flag.String("threads", "1,2,4,8", "comma-separated thread sweep")
		duration   = flag.Duration("duration", 500*time.Millisecond, "measured duration per run")
		runs       = flag.Int("runs", 3, "repetitions per configuration")
		records    = flag.Int("records", 200_000, "records preloaded (paper: 100000000)")

		index    = flag.String("index", "btree", "btree|art")
		scheme   = flag.String("scheme", "OptiQL", "lock scheme for custom runs")
		mixName  = flag.String("mix", "balanced", "read-only|read-heavy|balanced|write-heavy|update-only")
		dist     = flag.String("dist", "selfsimilar", "uniform|selfsimilar|zipf")
		skew     = flag.Float64("skew", 0.2, "self-similar skew factor / zipf theta")
		sparseK  = flag.Bool("sparse", false, "use sparse integer keys")
		nodeSize = flag.Int("nodesize", 256, "B+-tree node size in bytes")
		noexpand = flag.Bool("noexpand", false, "disable ART contention expansion (ablation)")

		jsonPath = flag.String("json", "", "write a machine-readable run report to this path (\"-\" = stdout); custom runs only")
		obsAddr  = flag.String("obs", "", "serve live /metrics, /debug/vars, /debug/pprof and /debug/contention on this address (e.g. :6060)")
		latency  = flag.Bool("latency", false, "collect sampled per-operation latencies")

		tracePath = flag.String("trace", "", "write a Chrome trace_event JSON (load in Perfetto / chrome://tracing) to this path after the run; custom runs only")
		traceSmp  = flag.Int("sample", 0, "trace sampling interval, 1-in-N ops (0 = default 1024 when tracing; also enables the report's contention sections without -trace)")

		netAddr   = flag.String("net", "", "drive a running optiqld server at this address instead of an in-process index")
		pipeline  = flag.Int("pipeline", 32, "per-connection pipelining window for -net runs")
		noPreload = flag.Bool("nopreload", false, "skip the -net preload phase (server already populated)")
		chaos     = flag.String("chaos", "", "client-side fault-injection spec for -net runs, e.g. 'reset=0.01,latency=0.05:100us-1ms' (implies -reconn)")
		reconn    = flag.Bool("reconn", false, "drive -net runs with self-healing synchronous clients (retry/backoff/reconnect) instead of raw pipelined connections")
		retries   = flag.Int("retries", 0, "per-request retry budget for -reconn/-chaos runs (0 = client default)")
	)
	flag.Parse()

	ths, err := experiments.ParseThreads(*threads)
	if err != nil {
		fatal(err)
	}
	opts := experiments.Options{
		Threads:  ths,
		Duration: *duration,
		Runs:     *runs,
		Records:  *records,
	}

	if *experiment != "" {
		if *jsonPath != "" {
			fatal(fmt.Errorf("-json applies to custom single runs, not -experiment tables"))
		}
		fn, err := experiments.ByName(*experiment)
		if err != nil {
			fatal(err)
		}
		if err := fn(opts); err != nil {
			fatal(err)
		}
		return
	}

	mix, err := workload.MixByName(*mixName)
	if err != nil {
		fatal(err)
	}
	ks := workload.Dense
	if *sparseK {
		ks = workload.Sparse
	}
	var tracer *trace.Tracer
	if *tracePath != "" || *traceSmp > 0 {
		tracer = trace.New(trace.Config{SampleEvery: *traceSmp})
	}
	if *netAddr != "" {
		var chaosCfg *faults.Config
		if *chaos != "" {
			cfg, err := faults.Parse(*chaos)
			if err != nil {
				fatal(err)
			}
			chaosCfg = &cfg
		}
		runNet(bench.NetConfig{
			Addr:         *netAddr,
			Conns:        ths[len(ths)-1],
			Pipeline:     *pipeline,
			Records:      *records,
			SkipPreload:  *noPreload,
			Distribution: *dist,
			Skew:         *skew,
			KeySpace:     ks,
			Mix:          mix,
			Duration:     *duration,
			Latency:      *latency,
			Chaos:        chaosCfg,
			Reconn:       *reconn,
			MaxRetries:   *retries,
			Trace:        tracer,
		}, *jsonPath, *obsAddr, *mixName)
		writeTrace(tracer, *tracePath)
		return
	}
	cfg := bench.IndexConfig{
		Index:               *index,
		Scheme:              *scheme,
		Threads:             ths[len(ths)-1],
		Records:             *records,
		NodeSize:            *nodeSize,
		Distribution:        *dist,
		Skew:                *skew,
		KeySpace:            ks,
		Mix:                 mix,
		Duration:            *duration,
		Latency:             *latency,
		ARTDisableExpansion: *noexpand,
		Trace:               tracer,
	}
	if *obsAddr != "" {
		src := &obs.LiveSource{}
		cfg.Live = src
		_, bound, err := obs.Serve(*obsAddr, src)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("observability endpoint on http://%s/metrics\n", bound)
	}
	res, err := bench.RunIndex(cfg)
	if err != nil {
		fatal(err)
	}
	writeTrace(tracer, *tracePath)
	if *jsonPath != "" {
		if err := res.Report("indexbench").WriteFile(*jsonPath); err != nil {
			fatal(err)
		}
		if *jsonPath == "-" {
			return
		}
	}
	fmt.Printf("index=%s scheme=%s threads=%d records=%d dist=%s keys=%s mix=%s\n",
		*index, *scheme, cfg.Threads, *records, *dist, ks, *mixName)
	fmt.Printf("throughput: %.3f Mops (%d ops in %v)\n", res.Mops(), res.Ops, res.Elapsed.Round(time.Millisecond))
	for op, n := range res.PerOp {
		if n > 0 {
			fmt.Printf("  %s: %d\n", workload.OpKind(op), n)
		}
	}
	if res.Expansions > 0 {
		fmt.Printf("  contention expansions: %d\n", res.Expansions)
	}
	if res.Obs != nil {
		fmt.Printf("  lock events: %d validation failures, %d restarts, %d free / %d handover acquires\n",
			res.Obs.Get(obs.EvShValidateFail), res.Obs.Get(obs.EvOpRestart),
			res.Obs.Get(obs.EvExFree), res.Obs.Get(obs.EvExHandover))
	}
	if min, avg, stddev := res.Timeline.Stats(); avg > 0 {
		fmt.Printf("  timeline: min %.3f / avg %.3f / stddev %.3f Mops over %d intervals\n",
			min, avg, stddev, len(res.Timeline.Ops))
	}
	printContention(tracer)
}

// writeTrace exports the run's spans in Chrome trace_event format.
func writeTrace(tr *trace.Tracer, path string) {
	if tr == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("trace written to %s (load in Perfetto or chrome://tracing)\n", path)
}

// printContention summarizes the profiler's view of the run: lock-wait
// percentiles and the hottest keys.
func printContention(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	snap := tr.Snapshot()
	if snap.Wait.Count() > 0 {
		fmt.Printf("  lock wait (1-in-%d sampled): p50 %v / p99 %v / max %v over %d acquires\n",
			snap.SampleEvery,
			time.Duration(snap.Wait.Percentile(50)), time.Duration(snap.Wait.Percentile(99)),
			time.Duration(snap.Wait.Max()), snap.Wait.Count())
	}
	if len(snap.Keys) > 0 {
		n := len(snap.Keys)
		if n > 5 {
			n = 5
		}
		fmt.Printf("  hot keys:")
		for _, it := range snap.Keys[:n] {
			fmt.Printf(" %#x(%d)", it.Key, it.Count)
		}
		fmt.Println()
	}
}

// runNet drives a remote optiqld server with the configured workload
// and prints/writes the same shape of results as an in-process run.
func runNet(cfg bench.NetConfig, jsonPath, obsAddr, mixName string) {
	if obsAddr != "" {
		src := &obs.LiveSource{}
		cfg.Live = src
		if tr := cfg.Trace; tr != nil {
			src.SetContention(func() *obs.ContentionReport { return obs.ContentionFrom(tr, nil) })
		}
		_, bound, err := obs.Serve(obsAddr, src)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("observability endpoint on http://%s/metrics\n", bound)
	}
	res, err := bench.RunNet(cfg)
	if err != nil {
		fatal(err)
	}
	if jsonPath != "" {
		if err := res.Report("indexbench-net").WriteFile(jsonPath); err != nil {
			fatal(err)
		}
		if jsonPath == "-" {
			return
		}
	}
	fmt.Printf("net=%s conns=%d pipeline=%d records=%d dist=%s keys=%s mix=%s\n",
		cfg.Addr, cfg.Conns, cfg.Pipeline, cfg.Records, cfg.Distribution, cfg.KeySpace, mixName)
	fmt.Printf("throughput: %.3f Mops (%d ops in %v, %d errors)\n",
		res.Mops(), res.Ops, res.Elapsed.Round(time.Millisecond), res.Errors)
	for op, n := range res.PerOp {
		if n > 0 {
			fmt.Printf("  %s: %d (%d misses)\n", workload.OpKind(op), n, res.PerOpMiss[op])
		}
	}
	if rs := res.Reconn; rs.Dials > 0 {
		fmt.Printf("  resilience: %d dials (%d reconnects), %d retries, %d overload answers, %d failures\n",
			rs.Dials, rs.Reconnects, rs.Retries, rs.Overloaded, rs.Failures)
	}
	if n := res.Counters["fault_latency"] + res.Counters["fault_stall"] + res.Counters["fault_short_write"] +
		res.Counters["fault_fragment"] + res.Counters["fault_reset"] + res.Counters["fault_corrupt"] +
		res.Counters["fault_accept_fail"]; n > 0 {
		fmt.Printf("  faults injected client-side: %d\n", n)
	}
	if min, avg, stddev := res.Timeline.Stats(); avg > 0 {
		fmt.Printf("  timeline: min %.3f / avg %.3f / stddev %.3f Mops over %d intervals\n",
			min, avg, stddev, len(res.Timeline.Ops))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "indexbench:", err)
	os.Exit(1)
}
