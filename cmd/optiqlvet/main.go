// Command optiqlvet is the static enforcement suite for the OptiQL
// protocol invariants. It runs in two modes:
//
// Standalone multichecker (module-wide facts, unused-suppression
// reporting):
//
//	go run ./cmd/optiqlvet ./...
//	go run ./cmd/optiqlvet -checks shcheck,expair ./internal/btree
//
// As a go vet tool (per-package, integrates with the build cache):
//
//	go build -o bin/optiqlvet ./cmd/optiqlvet
//	go vet -vettool=$(pwd)/bin/optiqlvet ./...
//
// Exit status: 0 clean, 1 usage or load failure, 2 findings.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"optiql/internal/analysis"
	"optiql/internal/analysis/driver"
	"optiql/internal/analysis/load"
	"optiql/internal/analysis/unitchecker"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("optiqlvet", flag.ContinueOnError)
	versionFlag := fs.String("V", "", "print version and exit (go vet handshake; use -V=full)")
	flagsFlag := fs.Bool("flags", false, "print the tool's flags as JSON and exit (go vet handshake)")
	checks := fs.String("checks", "", "comma-separated analyzer names to run (default: all)")
	noTests := fs.Bool("notests", false, "skip _test.go files and external test packages")
	list := fs.Bool("list", false, "list the analyzers and exit")
	debug := fs.Bool("debug", false, "print per-analyzer timing to stderr")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: optiqlvet [-checks a,b] [packages]\n       optiqlvet <unit>.cfg   (go vet -vettool mode)\n\nAnalyzers:\n")
		for _, a := range driver.All() {
			fmt.Fprintf(fs.Output(), "  %-10s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *versionFlag != "" {
		// The go command caches vet results keyed on this line.
		return printVersion(*versionFlag)
	}
	if *flagsFlag {
		// go vet probes the tool's flag set before invoking it. None of
		// our flags are go vet pass-throughs, so the list is empty.
		fmt.Println("[]")
		return 0
	}
	if *list {
		for _, a := range driver.All() {
			fmt.Printf("%-10s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optiqlvet: %v\n", err)
		return 1
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitchecker.Main(rest[0], analyzers)
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var opts driver.Options
	if *debug {
		opts.Debug = os.Stderr
	}
	rep, err := driver.RunWith(load.Config{Patterns: patterns, Tests: !*noTests}, analyzers, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optiqlvet: %v\n", err)
		return 1
	}
	if rep.Print(os.Stderr) {
		return 2
	}
	return 0
}

func selectAnalyzers(checks string) ([]*analysis.Analyzer, error) {
	if checks == "" {
		return driver.All(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a := driver.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (run with -list)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// printVersion implements the go vet -V=full handshake: a single
// stable line the go command can hash into its action cache, derived
// from the tool binary's own contents.
func printVersion(mode string) int {
	if mode != "full" {
		fmt.Println("optiqlvet version devel")
		return 0
	}
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("optiqlvet version devel buildID=%x\n", h.Sum(nil)[:16])
	return 0
}
