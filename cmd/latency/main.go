// Command latency runs the Figure 12 tail-latency study: operation
// latency percentiles (min to 99.999%) for the B+-tree and ART under
// the skewed distribution, comparing OptLock, OptiQL-NOR and OptiQL at
// two thread counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"optiql/internal/experiments"
)

func main() {
	var (
		maxThreads = flag.Int("maxthreads", 8, "higher thread count; the lower one is half (paper: 40 and 20)")
		duration   = flag.Duration("duration", 500*time.Millisecond, "measured duration per run")
		records    = flag.Int("records", 200_000, "records preloaded (paper: 100000000)")
	)
	flag.Parse()

	err := experiments.Fig12(experiments.Options{
		Threads:    []int{*maxThreads},
		MaxThreads: *maxThreads,
		Duration:   *duration,
		Runs:       1,
		Records:    *records,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "latency:", err)
		os.Exit(1)
	}
}
