// Command latency measures operation latency distributions. By
// default it runs one configuration and emits the same machine-
// readable obs.Report JSON as `indexbench -json` — identical schema,
// identical internal/hist percentile math — so tail-latency plots can
// mix data points from either tool:
//
//	latency -index btree -scheme OptiQL -threads 8 -json -
//	latency -index art -mix update-only -dist zipf -skew 0.99 -trace out.json
//
// With -fig12 it instead prints the paper's Figure 12 matrix
// (percentile tables for both indexes, three mixes, three schemes at
// two thread counts):
//
//	latency -fig12 -maxthreads 8 -duration 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"optiql/internal/bench"
	"optiql/internal/experiments"
	"optiql/internal/hist"
	"optiql/internal/obs/trace"
	"optiql/internal/workload"
)

func main() {
	var (
		fig12      = flag.Bool("fig12", false, "print the Figure 12 percentile matrix instead of a single run")
		maxThreads = flag.Int("maxthreads", 8, "-fig12: higher thread count; the lower one is half (paper: 40 and 20)")

		index    = flag.String("index", "btree", "btree|art")
		scheme   = flag.String("scheme", "OptiQL", "lock scheme (locks.ByName)")
		threads  = flag.Int("threads", 8, "worker goroutines")
		duration = flag.Duration("duration", 500*time.Millisecond, "measured duration per run")
		records  = flag.Int("records", 200_000, "records preloaded (paper: 100000000)")
		mixName  = flag.String("mix", "balanced", "read-only|read-heavy|balanced|write-heavy|update-only")
		dist     = flag.String("dist", "selfsimilar", "uniform|selfsimilar|zipf")
		skew     = flag.Float64("skew", 0.2, "self-similar skew factor / zipf theta")
		sparseK  = flag.Bool("sparse", false, "use sparse integer keys")

		jsonPath  = flag.String("json", "-", "write the obs.Report JSON to this path (\"-\" = stdout)")
		tracePath = flag.String("trace", "", "also record contention spans and write a Chrome trace_event JSON here")
		traceSmp  = flag.Int("sample", 0, "trace sampling interval, 1-in-N ops (0 = default 1024 when tracing)")
	)
	flag.Parse()

	if *fig12 {
		err := experiments.Fig12(experiments.Options{
			Threads:    []int{*maxThreads},
			MaxThreads: *maxThreads,
			Duration:   *duration,
			Runs:       1,
			Records:    *records,
		})
		if err != nil {
			fatal(err)
		}
		return
	}

	mix, err := workload.MixByName(*mixName)
	if err != nil {
		fatal(err)
	}
	ks := workload.Dense
	if *sparseK {
		ks = workload.Sparse
	}
	var tracer *trace.Tracer
	if *tracePath != "" || *traceSmp > 0 {
		tracer = trace.New(trace.Config{SampleEvery: *traceSmp})
	}
	res, err := bench.RunIndex(bench.IndexConfig{
		Index:        *index,
		Scheme:       *scheme,
		Threads:      *threads,
		Records:      *records,
		Distribution: *dist,
		Skew:         *skew,
		KeySpace:     ks,
		Mix:          mix,
		Duration:     *duration,
		Latency:      true,
		Trace:        tracer,
	})
	if err != nil {
		fatal(err)
	}
	if tracer != nil && *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteChrome(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *jsonPath != "" {
		if err := res.Report("latency").WriteFile(*jsonPath); err != nil {
			fatal(err)
		}
		if *jsonPath == "-" {
			return
		}
	}
	// Human-readable percentile line for quick terminal use.
	snap := res.Hist.Snapshot()
	fmt.Printf("latency (%s/%s, %d threads, %s):", *index, *scheme, *threads, *mixName)
	for i, l := range hist.PercentileLabels {
		fmt.Printf(" %s=%v", l, time.Duration(snap[i]))
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "latency:", err)
	os.Exit(1)
}
