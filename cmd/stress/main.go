// Command stress is a concurrency correctness checker for the index
// substrates: it runs a mixed workload against the chosen index and
// lock scheme while maintaining a sharded reference model, then audits
// every key (and, for the B+-tree, scan ordering) against it.
//
// The workload partitions the keyspace among workers so the reference
// model needs no cross-worker coordination: worker w owns keys with
// idx % workers == w and is the only one to insert/update/delete them,
// while every worker looks up and scans the whole space. Any torn
// read, lost update, phantom or ordering violation fails the run.
//
// Examples:
//
//	stress                                  # B+-tree, OptiQL, 8 workers, 5s
//	stress -index art -scheme OptLock -duration 30s
//	stress -all -duration 2s                # every scheme on both indexes
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"optiql/internal/art"
	"optiql/internal/btree"
	"optiql/internal/core"
	"optiql/internal/locks"
	"optiql/internal/obs"
	"optiql/internal/workload"
)

type index interface {
	Lookup(c *locks.Ctx, k uint64) (uint64, bool)
	Insert(c *locks.Ctx, k, v uint64) bool
	Update(c *locks.Ctx, k, v uint64) bool
	Delete(c *locks.Ctx, k uint64) bool
}

func build(kind, scheme string, nodeSize int) (index, func(c *locks.Ctx, start uint64, max int) []btree.KV, error) {
	s, err := locks.ByName(scheme)
	if err != nil {
		return nil, nil, err
	}
	switch kind {
	case "btree":
		t, err := btree.New(btree.Config{Scheme: s, NodeSize: nodeSize})
		if err != nil {
			return nil, nil, err
		}
		return t, func(c *locks.Ctx, start uint64, max int) []btree.KV {
			return t.Scan(c, start, max, nil)
		}, nil
	case "art":
		t, err := art.New(art.Config{Scheme: s})
		if err != nil {
			return nil, nil, err
		}
		return t, func(c *locks.Ctx, start uint64, max int) []btree.KV {
			out := t.Scan(c, start, max, nil)
			kvs := make([]btree.KV, len(out))
			for i, kv := range out {
				kvs[i] = btree.KV{Key: kv.Key, Value: kv.Value}
			}
			return kvs
		}, nil
	}
	return nil, nil, fmt.Errorf("unknown index %q", kind)
}

type run struct {
	index, scheme string
	workers       int
	keyspace      int
	duration      time.Duration
	nodeSize      int
	sparse        bool
	// live, when non-nil, is pointed at this run's counters so the -obs
	// HTTP endpoint serves them while the stress is hot.
	live *obs.LiveSource
}

// opsCell is one worker's completed-operation counter, padded so the
// live endpoint's reads never share a cache line with a neighbour.
type opsCell struct {
	n atomic.Uint64
	_ [56]byte
}

// execute runs one stress configuration and returns its machine-
// readable report (counters populated even without -obs).
func (r run) execute() (*obs.Report, error) {
	idx, scan, err := build(r.index, r.scheme, r.nodeSize)
	if err != nil {
		return nil, err
	}
	pool := core.NewPool(core.MaxQNodes)
	ks := workload.Dense
	if r.sparse {
		ks = workload.Sparse
	}

	// Reference model: one slice shard per worker; entry -1 = absent.
	refs := make([][]int64, r.workers)
	for w := range refs {
		refs[w] = make([]int64, r.keyspace)
		for i := range refs[w] {
			refs[w][i] = -1
		}
	}

	var (
		stop     atomic.Bool
		failures atomic.Uint64
		ops      atomic.Uint64
		wg       sync.WaitGroup
	)
	reg := obs.NewRegistry()
	cells := make([]opsCell, r.workers)
	if r.live != nil {
		r.live.Set(reg.Snapshot, func() uint64 {
			var t uint64
			for i := range cells {
				t += cells[i].n.Load()
			}
			return t
		})
	}
	report := func(format string, args ...any) {
		failures.Add(1)
		fmt.Fprintf(os.Stderr, "FAIL["+r.index+"/"+r.scheme+"]: "+format+"\n", args...)
	}

	for w := 0; w < r.workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := locks.NewCtx(pool, 8)
			defer c.Close()
			c.SetCounters(reg.NewCounters())
			rng := workload.NewRNG(uint64(w)*7919 + 13)
			ref := refs[w]
			cell := &cells[w]
			var n uint64
			for !stop.Load() {
				n++
				cell.n.Store(n)
				i := int(rng.Uint64n(uint64(r.keyspace)))
				ownIdx := uint64(i*r.workers + w)
				key := ks.Key(ownIdx)
				switch rng.Uint64n(10) {
				case 0, 1: // insert/upsert own key
					val := rng.Uint64() >> 1 // keep it non-negative as int64
					idx.Insert(c, key, val)
					ref[i] = int64(val)
				case 2: // update own key
					val := rng.Uint64() >> 1
					found := idx.Update(c, key, val)
					if found != (ref[i] >= 0) {
						report("update(%#x) found=%v, model=%v", key, found, ref[i] >= 0)
					}
					if found {
						ref[i] = int64(val)
					}
				case 3: // delete own key
					removed := idx.Delete(c, key)
					if removed != (ref[i] >= 0) {
						report("delete(%#x) removed=%v, model=%v", key, removed, ref[i] >= 0)
					}
					ref[i] = -1
				case 4, 5, 6: // lookup own key — must match the model exactly
					v, ok := idx.Lookup(c, key)
					if ok != (ref[i] >= 0) {
						report("lookup(%#x) present=%v, model=%v", key, ok, ref[i] >= 0)
					} else if ok && int64(v) != ref[i] {
						report("lookup(%#x) = %d, model %d", key, v, ref[i])
					}
				case 7, 8: // lookup a foreign key — no value assertion, but must not crash/hang
					fk := ks.Key(rng.Uint64n(uint64(r.keyspace * r.workers)))
					idx.Lookup(c, fk)
				case 9: // scan: keys ascending, values sane
					out := scan(c, ks.Key(rng.Uint64n(uint64(r.keyspace*r.workers))), 32)
					for j := 1; j < len(out); j++ {
						if out[j].Key <= out[j-1].Key {
							report("scan ordering violation at %d", j)
							break
						}
					}
				}
			}
			ops.Add(n)
		}()
	}
	start := time.Now()
	time.Sleep(r.duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	// Final audit: every owned key must match its model entry.
	c := locks.NewCtx(pool, 8)
	defer c.Close()
	for w := 0; w < r.workers; w++ {
		for i, want := range refs[w] {
			key := ks.Key(uint64(i*r.workers + w))
			v, ok := idx.Lookup(c, key)
			if ok != (want >= 0) {
				report("audit: key %#x present=%v, model=%v", key, ok, want >= 0)
			} else if ok && int64(v) != want {
				report("audit: key %#x = %d, model %d", key, v, want)
			}
		}
	}
	snap := reg.Snapshot()
	mops := 0.0
	if s := elapsed.Seconds(); s > 0 {
		mops = float64(ops.Load()) / s / 1e6
	}
	rep := &obs.Report{
		Tool:      "stress",
		Timestamp: time.Now(),
		Host:      obs.CurrentHost(),
		Config: map[string]any{
			"index":           r.index,
			"scheme":          r.scheme,
			"workers":         r.workers,
			"keys_per_worker": r.keyspace,
			"node_size":       r.nodeSize,
			"sparse":          r.sparse,
		},
		ElapsedSeconds: elapsed.Seconds(),
		Ops:            ops.Load(),
		Mops:           mops,
		Counters:       snap.Map(),
		Extra:          map[string]any{"failures": failures.Load()},
	}
	if f := failures.Load(); f > 0 {
		return rep, fmt.Errorf("%s/%s: %d failures (%d ops)", r.index, r.scheme, f, ops.Load())
	}
	fmt.Printf("PASS %s/%-11s %12d ops, audit clean\n", r.index, r.scheme, ops.Load())
	return rep, nil
}

func main() {
	var (
		indexKind = flag.String("index", "btree", "btree|art")
		scheme    = flag.String("scheme", "OptiQL", "lock scheme")
		workers   = flag.Int("workers", 8, "worker goroutines")
		keyspace  = flag.Int("keys", 4096, "keys per worker")
		duration  = flag.Duration("duration", 5*time.Second, "stress duration per run")
		nodeSize  = flag.Int("nodesize", 256, "B+-tree node size")
		sparse    = flag.Bool("sparse", false, "sparse keys")
		all       = flag.Bool("all", false, "stress every reader-capable scheme on both indexes")

		jsonPath = flag.String("json", "", "write machine-readable run reports to this path (\"-\" = stdout)")
		obsAddr  = flag.String("obs", "", "serve live /metrics, /debug/vars and /debug/pprof on this address (e.g. :6060)")
	)
	flag.Parse()

	var live *obs.LiveSource
	if *obsAddr != "" {
		live = &obs.LiveSource{}
		_, bound, err := obs.Serve(*obsAddr, live)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stress:", err)
			os.Exit(1)
		}
		fmt.Printf("observability endpoint on http://%s/metrics\n", bound)
	}

	runs := []run{{
		index: *indexKind, scheme: *scheme, workers: *workers,
		keyspace: *keyspace, duration: *duration, nodeSize: *nodeSize,
		sparse: *sparse, live: live,
	}}
	if *all {
		runs = runs[:0]
		for _, idx := range []string{"btree", "art"} {
			for _, s := range locks.ReaderCapableNames() {
				runs = append(runs, run{
					index: idx, scheme: s, workers: *workers,
					keyspace: *keyspace, duration: *duration,
					nodeSize: *nodeSize, sparse: *sparse, live: live,
				})
			}
		}
	}
	exit := 0
	var reports []*obs.Report
	for _, r := range runs {
		rep, err := r.execute()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
		}
		if rep != nil {
			reports = append(reports, rep)
		}
	}
	if *jsonPath != "" {
		if err := writeReports(*jsonPath, reports); err != nil {
			fmt.Fprintln(os.Stderr, "stress:", err)
			exit = 1
		}
	}
	os.Exit(exit)
}

// writeReports emits one report directly, or an array for -all runs.
func writeReports(path string, reports []*obs.Report) error {
	if len(reports) == 1 {
		return reports[0].WriteFile(path)
	}
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}
