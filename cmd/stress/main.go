// Command stress is a concurrency correctness checker for the index
// substrates: it runs a mixed workload against the chosen index and
// lock scheme while maintaining a sharded reference model, then audits
// every key (and, for the B+-tree, scan ordering) against it.
//
// The workload partitions the keyspace among workers so the reference
// model needs no cross-worker coordination: worker w owns keys with
// idx % workers == w and is the only one to insert/update/delete them,
// while every worker looks up and scans the whole space. Any torn
// read, lost update, phantom or ordering violation fails the run.
//
// Examples:
//
//	stress                                  # B+-tree, OptiQL, 8 workers, 5s
//	stress -index art -scheme OptLock -duration 30s
//	stress -all -duration 2s                # every scheme on both indexes
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"optiql/internal/art"
	"optiql/internal/btree"
	"optiql/internal/core"
	"optiql/internal/locks"
	"optiql/internal/workload"
)

type index interface {
	Lookup(c *locks.Ctx, k uint64) (uint64, bool)
	Insert(c *locks.Ctx, k, v uint64) bool
	Update(c *locks.Ctx, k, v uint64) bool
	Delete(c *locks.Ctx, k uint64) bool
}

func build(kind, scheme string, nodeSize int) (index, func(c *locks.Ctx, start uint64, max int) []btree.KV, error) {
	s, err := locks.ByName(scheme)
	if err != nil {
		return nil, nil, err
	}
	switch kind {
	case "btree":
		t, err := btree.New(btree.Config{Scheme: s, NodeSize: nodeSize})
		if err != nil {
			return nil, nil, err
		}
		return t, func(c *locks.Ctx, start uint64, max int) []btree.KV {
			return t.Scan(c, start, max, nil)
		}, nil
	case "art":
		t, err := art.New(art.Config{Scheme: s})
		if err != nil {
			return nil, nil, err
		}
		return t, func(c *locks.Ctx, start uint64, max int) []btree.KV {
			out := t.Scan(c, start, max, nil)
			kvs := make([]btree.KV, len(out))
			for i, kv := range out {
				kvs[i] = btree.KV{Key: kv.Key, Value: kv.Value}
			}
			return kvs
		}, nil
	}
	return nil, nil, fmt.Errorf("unknown index %q", kind)
}

type run struct {
	index, scheme string
	workers       int
	keyspace      int
	duration      time.Duration
	nodeSize      int
	sparse        bool
}

func (r run) execute() error {
	idx, scan, err := build(r.index, r.scheme, r.nodeSize)
	if err != nil {
		return err
	}
	pool := core.NewPool(core.MaxQNodes)
	ks := workload.Dense
	if r.sparse {
		ks = workload.Sparse
	}

	// Reference model: one slice shard per worker; entry -1 = absent.
	refs := make([][]int64, r.workers)
	for w := range refs {
		refs[w] = make([]int64, r.keyspace)
		for i := range refs[w] {
			refs[w][i] = -1
		}
	}

	var (
		stop     atomic.Bool
		failures atomic.Uint64
		ops      atomic.Uint64
		wg       sync.WaitGroup
	)
	report := func(format string, args ...any) {
		failures.Add(1)
		fmt.Fprintf(os.Stderr, "FAIL["+r.index+"/"+r.scheme+"]: "+format+"\n", args...)
	}

	for w := 0; w < r.workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := locks.NewCtx(pool, 8)
			defer c.Close()
			rng := workload.NewRNG(uint64(w)*7919 + 13)
			ref := refs[w]
			var n uint64
			for !stop.Load() {
				n++
				i := int(rng.Uint64n(uint64(r.keyspace)))
				ownIdx := uint64(i*r.workers + w)
				key := ks.Key(ownIdx)
				switch rng.Uint64n(10) {
				case 0, 1: // insert/upsert own key
					val := rng.Uint64() >> 1 // keep it non-negative as int64
					idx.Insert(c, key, val)
					ref[i] = int64(val)
				case 2: // update own key
					val := rng.Uint64() >> 1
					found := idx.Update(c, key, val)
					if found != (ref[i] >= 0) {
						report("update(%#x) found=%v, model=%v", key, found, ref[i] >= 0)
					}
					if found {
						ref[i] = int64(val)
					}
				case 3: // delete own key
					removed := idx.Delete(c, key)
					if removed != (ref[i] >= 0) {
						report("delete(%#x) removed=%v, model=%v", key, removed, ref[i] >= 0)
					}
					ref[i] = -1
				case 4, 5, 6: // lookup own key — must match the model exactly
					v, ok := idx.Lookup(c, key)
					if ok != (ref[i] >= 0) {
						report("lookup(%#x) present=%v, model=%v", key, ok, ref[i] >= 0)
					} else if ok && int64(v) != ref[i] {
						report("lookup(%#x) = %d, model %d", key, v, ref[i])
					}
				case 7, 8: // lookup a foreign key — no value assertion, but must not crash/hang
					fk := ks.Key(rng.Uint64n(uint64(r.keyspace * r.workers)))
					idx.Lookup(c, fk)
				case 9: // scan: keys ascending, values sane
					out := scan(c, ks.Key(rng.Uint64n(uint64(r.keyspace*r.workers))), 32)
					for j := 1; j < len(out); j++ {
						if out[j].Key <= out[j-1].Key {
							report("scan ordering violation at %d", j)
							break
						}
					}
				}
			}
			ops.Add(n)
		}()
	}
	time.Sleep(r.duration)
	stop.Store(true)
	wg.Wait()

	// Final audit: every owned key must match its model entry.
	c := locks.NewCtx(pool, 8)
	defer c.Close()
	for w := 0; w < r.workers; w++ {
		for i, want := range refs[w] {
			key := ks.Key(uint64(i*r.workers + w))
			v, ok := idx.Lookup(c, key)
			if ok != (want >= 0) {
				report("audit: key %#x present=%v, model=%v", key, ok, want >= 0)
			} else if ok && int64(v) != want {
				report("audit: key %#x = %d, model %d", key, v, want)
			}
		}
	}
	if f := failures.Load(); f > 0 {
		return fmt.Errorf("%s/%s: %d failures (%d ops)", r.index, r.scheme, f, ops.Load())
	}
	fmt.Printf("PASS %s/%-11s %12d ops, audit clean\n", r.index, r.scheme, ops.Load())
	return nil
}

func main() {
	var (
		indexKind = flag.String("index", "btree", "btree|art")
		scheme    = flag.String("scheme", "OptiQL", "lock scheme")
		workers   = flag.Int("workers", 8, "worker goroutines")
		keyspace  = flag.Int("keys", 4096, "keys per worker")
		duration  = flag.Duration("duration", 5*time.Second, "stress duration per run")
		nodeSize  = flag.Int("nodesize", 256, "B+-tree node size")
		sparse    = flag.Bool("sparse", false, "sparse keys")
		all       = flag.Bool("all", false, "stress every reader-capable scheme on both indexes")
	)
	flag.Parse()

	runs := []run{{
		index: *indexKind, scheme: *scheme, workers: *workers,
		keyspace: *keyspace, duration: *duration, nodeSize: *nodeSize, sparse: *sparse,
	}}
	if *all {
		runs = runs[:0]
		for _, idx := range []string{"btree", "art"} {
			for _, s := range locks.ReaderCapableNames() {
				runs = append(runs, run{
					index: idx, scheme: s, workers: *workers,
					keyspace: *keyspace, duration: *duration,
					nodeSize: *nodeSize, sparse: *sparse,
				})
			}
		}
	}
	exit := 0
	for _, r := range runs {
		if err := r.execute(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
		}
	}
	os.Exit(exit)
}
