// Command microbench runs the lock microbenchmarks of the OptiQL paper
// (Figures 6-8 and Table 1), or a single custom configuration.
//
// Examples:
//
//	microbench -experiment fig6 -threads 1,20,40,60,80 -duration 10s -runs 20
//	microbench -experiment table1
//	microbench -scheme OptiQL -threads 8 -locks 5 -readpct 80
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"optiql/internal/bench"
	"optiql/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "fig6|fig7|fig8|table1|all (empty = custom single run)")
		threads    = flag.String("threads", "1,2,4,8", "comma-separated thread sweep")
		maxThreads = flag.Int("maxthreads", 0, "thread count for fixed-thread experiments (default: last of -threads)")
		duration   = flag.Duration("duration", 500*time.Millisecond, "measured duration per run")
		runs       = flag.Int("runs", 3, "repetitions per configuration")

		scheme  = flag.String("scheme", "OptiQL", "lock scheme for custom runs")
		nlocks  = flag.Int("locks", bench.HighContention, "number of locks (0 = per-thread)")
		readPct = flag.Int("readpct", 0, "read percentage for custom runs")
		csLen   = flag.Int("cs", 50, "critical-section length")
		split   = flag.Bool("split", false, "dedicate threads to pure reads/writes")

		jsonPath = flag.String("json", "", "write a machine-readable run report to this path (\"-\" = stdout); custom runs only")
	)
	flag.Parse()

	ths, err := experiments.ParseThreads(*threads)
	if err != nil {
		fatal(err)
	}
	opts := experiments.Options{
		Threads:    ths,
		MaxThreads: *maxThreads,
		Duration:   *duration,
		Runs:       *runs,
	}

	if *experiment != "" {
		if *jsonPath != "" {
			fatal(fmt.Errorf("-json applies to custom single runs, not -experiment tables"))
		}
		fn, err := experiments.ByName(*experiment)
		if err != nil {
			fatal(err)
		}
		if err := fn(opts); err != nil {
			fatal(err)
		}
		return
	}

	// Custom single run.
	res, err := bench.RunMicro(bench.MicroConfig{
		Scheme:   *scheme,
		Threads:  ths[len(ths)-1],
		Locks:    *nlocks,
		ReadPct:  *readPct,
		CSLen:    *csLen,
		Split:    *split,
		Duration: *duration,
	})
	if err != nil {
		fatal(err)
	}
	if *jsonPath != "" {
		if err := res.Report("microbench").WriteFile(*jsonPath); err != nil {
			fatal(err)
		}
		if *jsonPath == "-" {
			return
		}
	}
	fmt.Printf("scheme=%s threads=%d locks=%d read%%=%d cs=%d\n",
		*scheme, ths[len(ths)-1], *nlocks, *readPct, *csLen)
	fmt.Printf("throughput: %.3f Mops (%d ops in %v)\n", res.Mops(), res.Ops, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("writes: %d, reads: %d, read attempts: %d, read success rate: %.2f%%\n",
		res.Writes, res.Reads, res.ReadAttempts, res.ReadSuccessRate()*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "microbench:", err)
	os.Exit(1)
}
