#!/usr/bin/env bash
# Negative injection for the interprocedural analyzers: plant one
# torn-read hazard and one WAL-ordering hazard into scratch copies of
# the module and assert that tornread and walorder each catch their
# plant end-to-end through `go vet -vettool`. A gate that cannot fail
# is not a gate; this proves the wired-up binary still detects the
# exact hazard classes it exists for (mirrors PR 5's verification).
#
# Usage: scripts/negative_inject.sh  (from the module root)
set -euo pipefail

root=$(pwd)
if [[ ! -f "$root/go.mod" ]] || ! grep -q '^module optiql$' "$root/go.mod"; then
	echo "negative_inject: run from the optiql module root" >&2
	exit 1
fi

echo "== building vettool"
go build -o bin/optiqlvet ./cmd/optiqlvet
vettool="$root/bin/optiqlvet"

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

copy_module() {
	local dst=$1
	mkdir -p "$dst"
	# The module is self-contained; .git and bin are dead weight.
	(cd "$root" && tar --exclude=.git --exclude=bin -cf - .) | (cd "$dst" && tar -xf -)
}

# plant applies an in-place substitution and fails loudly if the
# anchor text has drifted — a silently missing plant would turn this
# gate into a no-op.
plant() {
	local file=$1 from=$2 to=$3
	if ! grep -qF "$from" "$file"; then
		echo "negative_inject: anchor not found in $file:" >&2
		echo "  $from" >&2
		echo "update the plant to match the current source" >&2
		exit 1
	fi
	python3 - "$file" "$from" "$to" <<'EOF'
import sys
path, frm, to = sys.argv[1], sys.argv[2], sys.argv[3]
src = open(path).read()
open(path, "w").write(src.replace(frm, to, 1))
EOF
}

expect_catch() {
	local dir=$1 pkg=$2 analyzer=$3
	local out
	if out=$(cd "$dir" && go vet -vettool="$vettool" "$pkg" 2>&1); then
		echo "negative_inject: $analyzer plant was NOT caught (vet exited 0)" >&2
		exit 1
	fi
	if ! grep -q "\[$analyzer\]" <<<"$out"; then
		echo "negative_inject: vet failed but not with a $analyzer finding:" >&2
		echo "$out" >&2
		exit 1
	fi
	echo "$out" | grep "\[$analyzer\]" | head -3
}

echo "== plant 1: unclamped racy loop bound (tornread)"
copy_module "$scratch/torn"
# Strip the maxPrefix clamp from checkPrefix: the loop bound becomes a
# raw optimistic read again, and every optimistic caller must flag.
plant "$scratch/torn/internal/art/art.go" \
	'for ; i < n.prefixLen && i < maxPrefix; i++ {' \
	'for ; i < n.prefixLen; i++ {'
expect_catch "$scratch/torn" ./internal/art/ tornread
echo "   caught"

echo "== plant 2: index apply before wal.Append (walorder)"
copy_module "$scratch/wal"
# Apply the batch to the index before it is durable in the log: a
# crash between the two loses acknowledged writes.
plant "$scratch/wal/internal/server/wal.go" \
	'	seq, err := e.wal.Append(ops)' \
	'	e.applyBatch(buf)
	seq, err := e.wal.Append(ops)'
expect_catch "$scratch/wal" ./internal/server/ walorder
echo "   caught"

echo "negative injection: both plants caught"
