package optiql

// One testing.B benchmark per table and figure of the paper's
// evaluation. These are fixed-iteration, ns/op-style counterparts of
// the duration-based experiments in internal/experiments (run those
// via cmd/experiments for the paper-shaped tables). Parallel benches
// use b.SetParallelism so contention exists even at GOMAXPROCS=1;
// ns/op comparisons across schemes preserve the figures' who-wins
// ordering.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"optiql/internal/bench"
	"optiql/internal/btree"
	"optiql/internal/core"
	"optiql/internal/locks"
	"optiql/internal/obs"
	"optiql/internal/obs/trace"
	"optiql/internal/workload"
)

// parallelism multiplies GOMAXPROCS for RunParallel benches.
const parallelism = 8

func benchCtx(b *testing.B, pool *core.Pool) *locks.Ctx {
	b.Helper()
	c := locks.NewCtx(pool, 8)
	b.Cleanup(c.Close)
	return c
}

// newLoadedBTree builds a preloaded B+-tree for index benches.
func newLoadedBTree(b *testing.B, scheme string, nodeSize, records int) (*btree.Tree, *core.Pool) {
	b.Helper()
	t := btree.MustNew(btree.Config{Scheme: locks.MustByName(scheme), NodeSize: nodeSize})
	pool := core.NewPool(core.MaxQNodes)
	c := locks.NewCtx(pool, 8)
	for i := 0; i < records; i++ {
		t.Insert(c, workload.Dense.Key(uint64(i)), uint64(i))
	}
	c.Close()
	return t, pool
}

// BenchmarkFig1 is the headline comparison: B+-tree updates under
// uniform (low-contention) and self-similar (high-contention) key
// selection, OptLock vs OptiQL.
func BenchmarkFig1(b *testing.B) {
	const records = 100_000
	for _, dist := range []string{"uniform", "selfsimilar"} {
		for _, scheme := range []string{"OptLock", "OptiQL"} {
			b.Run(fmt.Sprintf("%s/%s", dist, scheme), func(b *testing.B) {
				t, pool := newLoadedBTree(b, scheme, 256, records)
				var d workload.Distribution
				if dist == "uniform" {
					d = workload.NewUniform(records)
				} else {
					d = workload.NewSelfSimilar(records, 0.2)
				}
				var seq atomic.Uint64
				b.SetParallelism(parallelism)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					c := locks.NewCtx(pool, 8)
					defer c.Close()
					rng := workload.NewRNG(seq.Add(1))
					for pb.Next() {
						t.Update(c, workload.Dense.Key(d.Next(rng)), rng.Uint64())
					}
				})
			})
		}
	}
}

// BenchmarkFig6 stresses the pure-exclusive path of every lock variant
// on a single lock (the "extreme contention" panel).
func BenchmarkFig6(b *testing.B) {
	for _, scheme := range []string{"OptLock", "OptiQL-NOR", "OptiQL", "pthread", "MCS-RW", "TTS", "MCS"} {
		b.Run(scheme, func(b *testing.B) {
			l := locks.MustByName(scheme).NewLock()
			pool := core.NewPool(256)
			b.SetParallelism(parallelism)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				c := locks.NewCtx(pool, 4)
				defer c.Close()
				for pb.Next() {
					tok := l.AcquireEx(c)
					l.CloseWindow(tok)
					l.ReleaseEx(c, tok)
				}
			})
		})
	}
}

// BenchmarkFig7 runs the mixed 80/20 read/write ratio under high
// contention (5 locks) for the reader-capable schemes.
func BenchmarkFig7(b *testing.B) {
	for _, scheme := range []string{"OptLock", "OptiQL-NOR", "OptiQL", "pthread", "MCS-RW"} {
		b.Run(scheme, func(b *testing.B) {
			s := locks.MustByName(scheme)
			lockSet := make([]locks.Lock, bench.HighContention)
			for i := range lockSet {
				lockSet[i] = s.NewLock()
			}
			pool := core.NewPool(256)
			var seq atomic.Uint64
			b.SetParallelism(parallelism)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				c := locks.NewCtx(pool, 4)
				defer c.Close()
				rng := workload.NewRNG(seq.Add(1))
				for pb.Next() {
					l := lockSet[rng.Uint64n(uint64(len(lockSet)))]
					if rng.Uint64n(100) < 80 { // read
						for i := 0; ; i++ {
							tok, ok := l.AcquireSh(c)
							if ok && l.ReleaseSh(c, tok) {
								break
							}
							if i > 1_000_000 {
								b.Fatal("reader starved")
							}
						}
					} else {
						tok := l.AcquireEx(c)
						l.CloseWindow(tok)
						l.ReleaseEx(c, tok)
					}
				}
			})
		})
	}
}

// BenchmarkTable1 runs single read attempts against a standing writer
// queue and reports the validated-read success rate as a metric — the
// quantity Table 1 tabulates. Each iteration is one attempt (not a
// retry loop), so the benchmark completes regardless of how starved
// readers are on the current machine.
func BenchmarkTable1(b *testing.B) {
	for _, scheme := range []string{"OptiQL-NOR", "OptiQL"} {
		b.Run(scheme, func(b *testing.B) {
			l := locks.MustByName(scheme).NewLock()
			pool := core.NewPool(64)
			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					c := locks.NewCtx(pool, 4)
					defer c.Close()
					for !stop.Load() {
						tok := l.AcquireEx(c)
						l.CloseWindow(tok)
						l.ReleaseEx(c, tok)
					}
				}()
			}
			c := benchCtx(b, pool)
			successes := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tok, ok := l.AcquireSh(c)
				if ok && l.ReleaseSh(c, tok) {
					successes++
				}
			}
			b.StopTimer()
			stop.Store(true)
			wg.Wait()
			b.ReportMetric(float64(successes)/float64(b.N)*100, "%success")
		})
	}
}

// BenchmarkFig8 varies the critical-section length on a contended lock
// with an 80/20 read/write mix.
func BenchmarkFig8(b *testing.B) {
	for _, cs := range []int{5, 50, 200} {
		for _, scheme := range []string{"OptLock", "OptiQL-NOR", "OptiQL"} {
			b.Run(fmt.Sprintf("cs%d/%s", cs, scheme), func(b *testing.B) {
				res, err := bench.RunMicro(bench.MicroConfig{
					Scheme: scheme, Threads: 8, Locks: bench.HighContention,
					ReadPct: 80, CSLen: cs, Duration: 100_000_000, // 100ms
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Mops(), "Mops")
			})
		}
	}
}

// BenchmarkFig9 runs the skewed balanced workload on both indexes for
// each reader-capable scheme.
func BenchmarkFig9(b *testing.B) {
	const records = 100_000
	for _, index := range []string{"btree", "art"} {
		for _, scheme := range []string{"OptLock", "OptiQL-NOR", "OptiQL", "pthread", "MCS-RW"} {
			b.Run(fmt.Sprintf("%s/%s", index, scheme), func(b *testing.B) {
				cfg := bench.IndexConfig{
					Index: index, Scheme: scheme, Threads: 1, Records: records,
					Distribution: "selfsimilar", KeySpace: workload.Dense,
					Mix: workload.Balanced,
				}
				idx, pool, err := bench.BuildIndex(&cfg)
				if err != nil {
					b.Fatal(err)
				}
				d := workload.NewSelfSimilar(records, 0.2)
				var seq atomic.Uint64
				b.SetParallelism(parallelism)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					c := locks.NewCtx(pool, 8)
					defer c.Close()
					rng := workload.NewRNG(seq.Add(1))
					for pb.Next() {
						k := workload.Dense.Key(d.Next(rng))
						if rng.Uint64n(100) < 50 {
							idx.Lookup(c, k)
						} else {
							idx.Update(c, k, rng.Uint64())
						}
					}
				})
			})
		}
	}
}

// BenchmarkFig10 runs the uniform balanced workload (low contention).
func BenchmarkFig10(b *testing.B) {
	const records = 100_000
	for _, index := range []string{"btree", "art"} {
		for _, scheme := range []string{"OptLock", "OptiQL"} {
			b.Run(fmt.Sprintf("%s/%s", index, scheme), func(b *testing.B) {
				cfg := bench.IndexConfig{
					Index: index, Scheme: scheme, Threads: 1, Records: records,
					Distribution: "uniform", KeySpace: workload.Dense,
					Mix: workload.Balanced,
				}
				idx, pool, err := bench.BuildIndex(&cfg)
				if err != nil {
					b.Fatal(err)
				}
				d := workload.NewUniform(records)
				var seq atomic.Uint64
				b.SetParallelism(parallelism)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					c := locks.NewCtx(pool, 8)
					defer c.Close()
					rng := workload.NewRNG(seq.Add(1))
					for pb.Next() {
						k := workload.Dense.Key(d.Next(rng))
						if rng.Uint64n(100) < 50 {
							idx.Lookup(c, k)
						} else {
							idx.Update(c, k, rng.Uint64())
						}
					}
				})
			})
		}
	}
}

// BenchmarkFig11 sweeps B+-tree node sizes with the AOR variant
// included (skewed read-heavy workload).
func BenchmarkFig11(b *testing.B) {
	const records = 50_000
	for _, size := range []int{256, 1024, 4096, 16384} {
		for _, scheme := range []string{"OptiQL-NOR", "OptiQL", "OptiQL-AOR"} {
			b.Run(fmt.Sprintf("node%d/%s", size, scheme), func(b *testing.B) {
				t, pool := newLoadedBTree(b, scheme, size, records)
				d := workload.NewSelfSimilar(records, 0.2)
				var seq atomic.Uint64
				b.SetParallelism(parallelism)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					c := locks.NewCtx(pool, 8)
					defer c.Close()
					rng := workload.NewRNG(seq.Add(1))
					for pb.Next() {
						k := workload.Dense.Key(d.Next(rng))
						if rng.Uint64n(100) < 80 {
							t.Lookup(c, k)
						} else {
							t.Update(c, k, rng.Uint64())
						}
					}
				})
			})
		}
	}
}

// BenchmarkFig12 reports per-update latency (ns/op) on the skewed
// workload — the throughput-side proxy for the tail-latency figure;
// cmd/latency prints the full percentile tables.
func BenchmarkFig12(b *testing.B) {
	const records = 100_000
	for _, scheme := range []string{"OptLock", "OptiQL-NOR", "OptiQL"} {
		b.Run(scheme, func(b *testing.B) {
			t, pool := newLoadedBTree(b, scheme, 256, records)
			d := workload.NewSelfSimilar(records, 0.2)
			var seq atomic.Uint64
			b.SetParallelism(parallelism)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				c := locks.NewCtx(pool, 8)
				defer c.Close()
				rng := workload.NewRNG(seq.Add(1))
				for pb.Next() {
					t.Update(c, workload.Dense.Key(d.Next(rng)), rng.Uint64())
				}
			})
		})
	}
}

// BenchmarkFig13 exercises ART with sparse keys (lazy expansion +
// contention expansion) under the skewed write-heavy workload.
func BenchmarkFig13(b *testing.B) {
	const records = 100_000
	for _, scheme := range []string{"OptLock", "OptiQL"} {
		for _, expand := range []bool{true, false} {
			name := scheme
			if !expand {
				name += "/noexpand"
			}
			b.Run(name, func(b *testing.B) {
				cfg := bench.IndexConfig{
					Index: "art", Scheme: scheme, Threads: 1, Records: records,
					Distribution: "selfsimilar", KeySpace: workload.Sparse,
					Mix: workload.WriteHeavy, ARTDisableExpansion: !expand,
				}
				idx, pool, err := bench.BuildIndex(&cfg)
				if err != nil {
					b.Fatal(err)
				}
				d := workload.NewSelfSimilar(records, 0.2)
				var seq atomic.Uint64
				b.SetParallelism(parallelism)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					c := locks.NewCtx(pool, 8)
					defer c.Close()
					rng := workload.NewRNG(seq.Add(1))
					for pb.Next() {
						k := workload.Sparse.Key(d.Next(rng))
						if rng.Uint64n(100) < 20 {
							idx.Lookup(c, k)
						} else {
							idx.Update(c, k, rng.Uint64())
						}
					}
				})
			})
		}
	}
}

// BenchmarkObsOverhead is the enabled-vs-disabled A/B for the event
// counters: a uniform read-heavy B+-tree workload (the regime where a
// fixed per-op cost is most visible) run once with per-worker counters
// registered and once without. DESIGN.md records the measured delta;
// the counters are meant to be left on in normal runs.
func BenchmarkObsOverhead(b *testing.B) {
	const records = 100_000
	for _, scheme := range []string{"OptLock", "OptiQL"} {
		for _, arm := range []string{"disabled", "enabled"} {
			b.Run(fmt.Sprintf("%s/%s", scheme, arm), func(b *testing.B) {
				t, pool := newLoadedBTree(b, scheme, 256, records)
				var reg *obs.Registry
				if arm == "enabled" {
					reg = obs.NewRegistry()
				}
				d := workload.NewUniform(records)
				var seq atomic.Uint64
				b.SetParallelism(parallelism)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					c := locks.NewCtx(pool, 8)
					defer c.Close()
					c.SetCounters(reg.NewCounters()) // nil registry -> disabled
					rng := workload.NewRNG(seq.Add(1))
					for pb.Next() {
						k := workload.Dense.Key(d.Next(rng))
						if rng.Uint64n(100) < 80 {
							t.Lookup(c, k)
						} else {
							t.Update(c, k, rng.Uint64())
						}
					}
				})
			})
		}
	}
}

// BenchmarkTraceOverhead is the acceptance A/B for the contention
// profiler: a uniform read-heavy B+-tree workload (fixed per-op costs
// are most visible here) run with tracing off, with production 1-in-
// 1024 sampling, and with every operation sampled. The budget: the
// off arm within 1% of BenchmarkObsOverhead's enabled arm, sampled-
// 1024 within 3% (DESIGN.md §11 records the measured deltas). The
// loop mirrors bench.MeasureIndex's per-op tracing exactly.
func BenchmarkTraceOverhead(b *testing.B) {
	const records = 100_000
	for _, scheme := range []string{"OptLock", "OptiQL"} {
		for _, arm := range []string{"off", "sampled-1024", "sampled-1"} {
			b.Run(fmt.Sprintf("%s/%s", scheme, arm), func(b *testing.B) {
				t, pool := newLoadedBTree(b, scheme, 256, records)
				reg := obs.NewRegistry()
				var tracer *trace.Tracer
				switch arm {
				case "sampled-1024":
					tracer = trace.New(trace.Config{SampleEvery: 1024})
				case "sampled-1":
					tracer = trace.New(trace.Config{SampleEvery: 1})
				}
				d := workload.NewUniform(records)
				var seq atomic.Uint64
				b.SetParallelism(parallelism)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					c := locks.NewCtx(pool, 8)
					defer c.Close()
					c.SetCounters(reg.NewCounters())
					w := seq.Add(1)
					tb := tracer.NewBuf(0, int(w)) // nil tracer -> nil buf, all no-ops
					c.SetTrace(tb)
					rng := workload.NewRNG(w)
					for pb.Next() {
						k := workload.Dense.Key(d.Next(rng))
						ts := tb.Sample()
						var t0 int64
						if ts {
							t0 = tb.Now()
							tb.NoteKey(0, k)
						}
						if rng.Uint64n(100) < 80 {
							t.Lookup(c, k)
						} else {
							t.Update(c, k, rng.Uint64())
						}
						if ts {
							tb.Record(trace.KindTreeOp, 0, t0, tb.Now()-t0, 0, k)
						}
					}
				})
			})
		}
	}
}

// BenchmarkQNodeTranslation isolates the cost DESIGN.md calls out as
// OptiQL's compactness tradeoff: translating queue-node IDs through
// the pool array on the contended acquire path, versus the pointer
// MCS lock that needs no translation.
func BenchmarkQNodeTranslation(b *testing.B) {
	pool := core.NewPool(16)
	b.Run("pool-get-put", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := pool.Get()
			pool.Put(q)
		}
	})
	b.Run("translate", func(b *testing.B) {
		q := pool.Get()
		defer pool.Put(q)
		id := q.ID()
		var sink *core.QNode
		for i := 0; i < b.N; i++ {
			sink = pool.At(id)
		}
		_ = sink
	})
}
