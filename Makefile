# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); `make lint` is the pre-push gate.

GO ?= go

.PHONY: all build test race lint vet bench clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./internal/core/ ./internal/locks/ ./internal/hist/ ./internal/btree/ ./internal/art/ ./internal/server/... ./internal/wal/ ./internal/indextest/...

# lint builds the optiqlvet multichecker once and runs it both
# standalone (module-wide facts, unused-suppression reporting) and via
# go vet's -vettool protocol (per-package, integrates with the build
# cache). The binary is cached in bin/ and rebuilt only when its
# sources change, via go build's own staleness check.
lint: bin/optiqlvet
	./bin/optiqlvet ./...
	$(GO) vet -vettool=$(abspath bin/optiqlvet) ./...

bin/optiqlvet: FORCE
	$(GO) build -o bin/optiqlvet ./cmd/optiqlvet

FORCE:

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkLookup|BenchmarkARTLookup|BenchmarkOptimisticRead|BenchmarkLeafFind|BenchmarkFP|BenchmarkChildIndex' -benchmem -count 6 ./internal/btree/ ./internal/art/ ./internal/core/

clean:
	rm -rf bin
