module optiql

go 1.24
