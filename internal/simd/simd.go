// Package simd provides the node-local search kernels both index
// substrates descend through: SWAR (SIMD-within-a-register) byte
// matching over uint64 words, branchless binary-search and unrolled
// linear-search kernels, and a portable software-prefetch shim.
//
// The package is stdlib-only by design. Go has no vector intrinsics,
// but the classic SWAR tricks — broadcast a byte across a word, XOR,
// and detect zero bytes with the haszero mask — give 8-way parallel
// byte comparison on any 64-bit target, which is exactly the operation
// the ART paper's Node16 assumes SIMD for and the FB+-tree uses to
// scan leaf fingerprints. The binary-search kernels use the
// power-of-two "shrink by half, conditionally advance" form whose
// single data-dependent update compiles to a CMOV on amd64/arm64
// instead of an unpredictable branch.
//
// Every kernel here is called from optimistic read paths that run
// without holding a lock: inputs may be torn by concurrent writers.
// The kernels therefore promise only memory safety on arbitrary
// inputs (all indexing stays within the given bounds); callers
// validate lock versions before trusting any result, exactly as they
// already do for the scalar searches these replace.
package simd

import (
	"encoding/binary"
	"math/bits"
)

// loOnes has the low bit of every byte lane set; lo7 the low seven
// bits. The zero-byte detector used by matchWord is the exact,
// carry-free form: ^(((x & lo7) + lo7) | x | lo7) has lane i's high
// bit set iff byte i of x is zero. (The shorter classic
// (x - loOnes) &^ x & hiOnes is NOT exact per lane: a borrow out of a
// zero lane turns a neighbouring 0x01 into 0xFF and flags it too.
// Here each lane's add maxes out at 0x7f+0x7f = 0xFE, so nothing
// crosses a lane boundary.)
const (
	loOnes = 0x0101010101010101
	lo7    = 0x7f7f7f7f7f7f7f7f
	// moveMask compresses per-lane indicator bits (one bit at position
	// 8j after a >>7 of the haszero result) into the top byte: bit j of
	// byte 7 is lane j's indicator. The exponents 56-7j are chosen so
	// each lane's product lands on a distinct top-byte bit and every
	// cross term either falls below bit 56 or wraps out of the word —
	// no carries can corrupt the result.
	moveMask = 0x0102040810204080
)

// Broadcast replicates b into every byte lane of a word.
//
//optiql:noalloc
func Broadcast(b byte) uint64 {
	return uint64(b) * loOnes
}

// matchWord returns a mask with the high bit of lane i set iff byte i
// of w equals the broadcast word bcast (built by Broadcast).
//
//optiql:noalloc
func matchWord(w, bcast uint64) uint64 {
	x := w ^ bcast
	return ^(((x & lo7) + lo7) | x | lo7)
}

// Match64 reports which of the first min(len(fp)&^7, 64) bytes of fp
// equal b, as a bitmask with bit i set for fp[i] == b. fp is read a
// word at a time, so only whole 8-byte groups participate; size-class
// fingerprint arrays are padded to a multiple of 8 for exactly this
// reason. Callers mask the result down to the live entry count.
//
//optiql:noalloc
func Match64(fp []byte, b byte) uint64 {
	n := len(fp) &^ 7
	if n > 64 {
		n = 64
	}
	bcast := Broadcast(b)
	var out uint64
	for i := 0; i < n; i += 8 {
		m := matchWord(binary.LittleEndian.Uint64(fp[i:]), bcast)
		// Compress the per-lane high bits (position 8j+7) into one bit
		// per byte via the moveMask multiply, then place the group's
		// 8-bit result at its offset in the output mask.
		out |= ((m >> 7 * moveMask) >> 56 & 0xff) << i
	}
	return out
}

// Match16 is Match64 specialized to the 16-byte arrays of ART Node16
// and the 14-fanout B+-tree size class: two words, fully unrolled.
// len(fp) must be at least 16.
//
//optiql:noalloc
func Match16(fp []byte, b byte) uint32 {
	bcast := Broadcast(b)
	m0 := matchWord(binary.LittleEndian.Uint64(fp[0:8]), bcast)
	m1 := matchWord(binary.LittleEndian.Uint64(fp[8:16]), bcast)
	lo := (m0 >> 7 * moveMask) >> 56 & 0xff
	hi := (m1 >> 7 * moveMask) >> 56 & 0xff
	return uint32(lo | hi<<8)
}

// NextMatch consumes the lowest set bit of a Match64/Match16 mask,
// returning its index and the remaining mask.
//
//optiql:noalloc
func NextMatch(m uint64) (int, uint64) {
	return bits.TrailingZeros64(m), m & (m - 1)
}

// LowerBound returns the first index i < n with keys[i] >= k, or n if
// none, searching keys[:n] branchlessly: the loop trip count depends
// only on n, and the single conditional advance compiles to CMOV.
// Requires 0 <= n <= len(keys); n outside that range is clamped.
//
//optiql:noalloc
func LowerBound(keys []uint64, n int, k uint64) int {
	if n > len(keys) {
		n = len(keys)
	}
	if n <= 0 {
		return 0
	}
	base, m := 0, n
	for m > 1 {
		half := m >> 1
		if keys[base+half-1] < k {
			base += half
		}
		m -= half
	}
	if keys[base] < k {
		base++
	}
	return base
}

// UpperBound returns the first index i < n with keys[i] > k, or n if
// none. Same branchless structure as LowerBound.
//
//optiql:noalloc
func UpperBound(keys []uint64, n int, k uint64) int {
	if n > len(keys) {
		n = len(keys)
	}
	if n <= 0 {
		return 0
	}
	base, m := 0, n
	for m > 1 {
		half := m >> 1
		if keys[base+half-1] <= k {
			base += half
		}
		m -= half
	}
	if keys[base] <= k {
		base++
	}
	return base
}

// LowerBoundBytes is LowerBound over a byte array: first i < n with
// a[i] >= b. Used for the truncated (prefix-stripped) separator search
// in large inner nodes, where the discriminating bytes span 4 cache
// lines instead of the 32 the full keys occupy.
//
//optiql:noalloc
func LowerBoundBytes(a []byte, n int, b byte) int {
	if n > len(a) {
		n = len(a)
	}
	if n <= 0 {
		return 0
	}
	base, m := 0, n
	for m > 1 {
		half := m >> 1
		if a[base+half-1] < b {
			base += half
		}
		m -= half
	}
	if a[base] < b {
		base++
	}
	return base
}

// UpperBoundBytes is UpperBound over a byte array: first i < n with
// a[i] > b.
//
//optiql:noalloc
func UpperBoundBytes(a []byte, n int, b byte) int {
	if n > len(a) {
		n = len(a)
	}
	if n <= 0 {
		return 0
	}
	base, m := 0, n
	for m > 1 {
		half := m >> 1
		if a[base+half-1] <= b {
			base += half
		}
		m -= half
	}
	if a[base] <= b {
		base++
	}
	return base
}

// CountLess returns how many of keys[:n] are < k — equivalently the
// lower-bound index in a sorted array — by an unrolled, branch-free
// linear pass: every comparison becomes a SETcc+ADD with no
// data-dependent branch to mispredict. This beats binary search for
// the small size classes (fanout 14/30), whose whole key array is one
// or two prefetcher-friendly sequential cache lines.
//
//optiql:noalloc
func CountLess(keys []uint64, n int, k uint64) int {
	if n > len(keys) {
		n = len(keys)
	}
	if n <= 0 {
		return 0
	}
	keys = keys[:n]
	c := 0
	i := 0
	for ; i+4 <= n; i += 4 {
		c += b2i(keys[i] < k) + b2i(keys[i+1] < k) + b2i(keys[i+2] < k) + b2i(keys[i+3] < k)
	}
	for ; i < n; i++ {
		c += b2i(keys[i] < k)
	}
	return c
}

// CountLessEq returns how many of keys[:n] are <= k — the upper-bound
// index in a sorted array. Same unrolled branch-free structure as
// CountLess.
//
//optiql:noalloc
func CountLessEq(keys []uint64, n int, k uint64) int {
	if n > len(keys) {
		n = len(keys)
	}
	if n <= 0 {
		return 0
	}
	keys = keys[:n]
	c := 0
	i := 0
	for ; i+4 <= n; i += 4 {
		c += b2i(keys[i] <= k) + b2i(keys[i+1] <= k) + b2i(keys[i+2] <= k) + b2i(keys[i+3] <= k)
	}
	for ; i < n; i++ {
		c += b2i(keys[i] <= k)
	}
	return c
}

// b2i converts a comparison to 0/1 without a branch (the compiler
// emits SETcc; there is no jump in the generated code).
//
//optiql:noalloc
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
