// Portable software-prefetch shim. Go exposes no prefetch intrinsic
// outside the runtime, so these helpers issue an ordinary speculative
// load of the target line instead: the load starts the cache miss
// early and the result is discarded. An atomic load is used because
// the compiler never dead-code-eliminates atomics (they carry memory
// ordering), whereas a plain discarded dereference may be reduced to
// its nil check. Unlike a true PREFETCHT0 the load occupies a load
// port and cannot be dropped when the bus is busy, but on the descent
// paths that call it the line is needed within a few dozen cycles
// anyway — the point is overlapping the miss with the parent's version
// validation, not avoiding it.
//
// Safety: the descent paths prefetch lines of nodes they have not yet
// validated. That is the same racy-read license every optimistic
// traversal already operates under — the value is discarded, only the
// side effect of warming the cache remains — and the pointers come
// from child slots of live-at-snapshot parents, so they reference
// allocated (possibly recycled, never freed) node memory. Under the
// race detector the speculative loads compile to no-ops
// (prefetch_race.go): they are deliberate races on lines a writer may
// be mutating, and a cache hint is not worth drowning the detector's
// signal.

//go:build !race

package simd

import (
	"sync/atomic"
	"unsafe"
)

// Prefetch warms the cache line containing p. p must be nil or point
// into an allocated object with at least 8 addressable bytes at an
// 8-byte-aligned address (any Go heap object's header satisfies
// this).
//
//optiql:noalloc
func Prefetch(p unsafe.Pointer) {
	if p != nil {
		atomic.LoadUint64((*uint64)(p))
	}
}

// PrefetchU64 warms the cache line containing the given word. The
// index substrates use it to touch a node's key array — which lives
// in a different cache line than the lock word the acquire path
// reads — while the parent's validation is still in flight.
//
//optiql:noalloc
func PrefetchU64(p *uint64) {
	if p != nil {
		atomic.LoadUint64(p)
	}
}
