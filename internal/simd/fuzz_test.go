package simd

import "testing"

// FuzzMatch fuzzes the SWAR match kernels against the naive reference
// on arbitrary byte arrays — the fuzzer is free to construct the
// borrow-propagation shapes that break inexact zero detectors (a zero
// lane below a 0x01 lane).
func FuzzMatch(f *testing.F) {
	f.Add([]byte{2, 6, 7, 6, 1, 7, 4, 4}, byte(7)) // borrow false-positive shape
	f.Add(make([]byte, 64), byte(0))
	f.Add([]byte{0x80, 0x7f, 0xff, 0, 1, 0x80, 0x7f, 0xff}, byte(0x80))
	f.Fuzz(func(t *testing.T, fp []byte, b byte) {
		lim := len(fp) &^ 7
		if lim > 64 {
			lim = 64
		}
		if got, want := Match64(fp, b), refMatch(fp, lim, b); got != want {
			t.Fatalf("Match64(%v, %d) = %#x, want %#x", fp[:lim], b, got, want)
		}
		if len(fp) >= 16 {
			if got, want := uint64(Match16(fp, b)), refMatch(fp, 16, b); got != want {
				t.Fatalf("Match16(%v, %d) = %#x, want %#x", fp[:16], b, got, want)
			}
		}
	})
}

// FuzzBounds fuzzes the branchless bound kernels against linear
// references on sorted prefixes, and pins the clamping contract on the
// raw (unsorted) input.
func FuzzBounds(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 4, uint64(3))
	f.Fuzz(func(t *testing.T, raw []byte, n int, k uint64) {
		keys := make([]uint64, len(raw))
		for i, b := range raw {
			keys[i] = uint64(b) // narrow domain → duplicates
		}
		// Clamping contract on arbitrary input.
		for _, got := range []int{LowerBound(keys, n, k), UpperBound(keys, n, k), CountLess(keys, n, k), CountLessEq(keys, n, k)} {
			lim := n
			if lim > len(keys) {
				lim = len(keys)
			}
			if lim < 0 {
				lim = 0
			}
			if got < 0 || got > lim {
				t.Fatalf("bound kernel returned %d outside [0, %d]", got, lim)
			}
		}
		// Exactness on sorted input.
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
				keys[j-1], keys[j] = keys[j], keys[j-1]
			}
		}
		eff := n
		if eff < 0 {
			eff = 0
		}
		if eff > len(keys) {
			eff = len(keys)
		}
		if got, want := LowerBound(keys, n, k), refLowerBound(keys, eff, k); got != want {
			t.Fatalf("LowerBound(%v, %d, %d) = %d, want %d", keys[:eff], n, k, got, want)
		}
		if got, want := UpperBound(keys, n, k), refUpperBound(keys, eff, k); got != want {
			t.Fatalf("UpperBound(%v, %d, %d) = %d, want %d", keys[:eff], n, k, got, want)
		}
	})
}
