package simd

import (
	"math/rand"
	"sort"
	"testing"
)

// naive reference implementations the kernels are differentially
// tested against. They are deliberately the dumbest possible loops.

func refMatch(fp []byte, n int, b byte) uint64 {
	var m uint64
	for i := 0; i < n && i < len(fp); i++ {
		if fp[i] == b {
			m |= 1 << i
		}
	}
	return m
}

func refLowerBound(keys []uint64, n int, k uint64) int {
	for i := 0; i < n; i++ {
		if keys[i] >= k {
			return i
		}
	}
	return n
}

func refUpperBound(keys []uint64, n int, k uint64) int {
	for i := 0; i < n; i++ {
		if keys[i] > k {
			return i
		}
	}
	return n
}

func refLowerBoundBytes(a []byte, n int, b byte) int {
	for i := 0; i < n; i++ {
		if a[i] >= b {
			return i
		}
	}
	return n
}

func refUpperBoundBytes(a []byte, n int, b byte) int {
	for i := 0; i < n; i++ {
		if a[i] > b {
			return i
		}
	}
	return n
}

// classSizes are the fingerprint-array capacities of the B+-tree size
// classes plus the ART Node16 shape; the kernels are exercised at all
// of them, and at every count from empty to full.
var classSizes = []int{8, 16, 32, 64, 128, 256}

func TestMatch64Differential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range classSizes {
		fp := make([]byte, size)
		for trial := 0; trial < 200; trial++ {
			for i := range fp {
				// Narrow byte range forces duplicate fingerprints.
				fp[i] = byte(rng.Intn(8))
			}
			b := byte(rng.Intn(8))
			lim := size
			if lim > 64 {
				lim = 64
			}
			got := Match64(fp, b)
			want := refMatch(fp, lim, b)
			if got != want {
				t.Fatalf("Match64(size %d, b %d) = %#x, want %#x (fp %v)", size, b, got, want, fp[:lim])
			}
			// Block iteration must cover the tail classes too.
			for base := 0; base < size; base += 64 {
				blk := Match64(fp[base:], b)
				end := size - base
				if end > 64 {
					end = 64
				}
				if wantBlk := refMatch(fp[base:], end, b); blk != wantBlk {
					t.Fatalf("Match64 block at %d = %#x, want %#x", base, blk, wantBlk)
				}
			}
		}
	}
}

func TestMatch64NoFalseMisses(t *testing.T) {
	// Every byte value must match itself at every lane position.
	fp := make([]byte, 64)
	for pos := 0; pos < 64; pos++ {
		for _, v := range []byte{0, 1, 0x7f, 0x80, 0xfe, 0xff} {
			for i := range fp {
				fp[i] = v ^ 0xff // all lanes differ from v
			}
			fp[pos] = v
			if got := Match64(fp, v); got != 1<<pos {
				t.Fatalf("Match64(pos %d, v %#x) = %#x, want %#x", pos, v, got, uint64(1)<<pos)
			}
		}
	}
}

func TestMatch16Differential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fp := make([]byte, 16)
	for trial := 0; trial < 2000; trial++ {
		for i := range fp {
			fp[i] = byte(rng.Intn(6))
		}
		b := byte(rng.Intn(6))
		if got, want := uint64(Match16(fp, b)), refMatch(fp, 16, b); got != want {
			t.Fatalf("Match16(%v, %d) = %#x, want %#x", fp, b, got, want)
		}
	}
}

func TestNextMatch(t *testing.T) {
	m := uint64(0b101001)
	var idxs []int
	for m != 0 {
		var i int
		i, m = NextMatch(m)
		idxs = append(idxs, i)
	}
	want := []int{0, 3, 5}
	if len(idxs) != len(want) {
		t.Fatalf("NextMatch walk = %v, want %v", idxs, want)
	}
	for i := range want {
		if idxs[i] != want[i] {
			t.Fatalf("NextMatch walk = %v, want %v", idxs, want)
		}
	}
}

// sortedKeys builds a sorted array with duplicates and boundary values
// mixed in.
func sortedKeys(rng *rand.Rand, n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		switch rng.Intn(10) {
		case 0:
			keys[i] = 0
		case 1:
			keys[i] = ^uint64(0)
		case 2:
			keys[i] = uint64(rng.Intn(4)) // force duplicates
		default:
			keys[i] = rng.Uint64()
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// probes returns the interesting search keys for a sorted array:
// every element, its neighbours, and the extremes.
func probes(rng *rand.Rand, keys []uint64) []uint64 {
	ps := []uint64{0, 1, ^uint64(0), ^uint64(0) - 1, rng.Uint64()}
	for _, k := range keys {
		ps = append(ps, k, k-1, k+1)
	}
	return ps
}

func TestBoundKernelsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, size := range classSizes {
		for trial := 0; trial < 20; trial++ {
			keys := sortedKeys(rng, size)
			// Every count from empty to full, including the clamping
			// paths (n < 0, n > len).
			for _, n := range []int{-1, 0, 1, size / 2, size - 1, size, size + 5} {
				eff := n
				if eff < 0 {
					eff = 0
				}
				if eff > size {
					eff = size
				}
				for _, k := range probes(rng, keys[:eff]) {
					if got, want := LowerBound(keys, n, k), refLowerBound(keys, eff, k); got != want {
						t.Fatalf("LowerBound(size %d, n %d, k %d) = %d, want %d", size, n, k, got, want)
					}
					if got, want := UpperBound(keys, n, k), refUpperBound(keys, eff, k); got != want {
						t.Fatalf("UpperBound(size %d, n %d, k %d) = %d, want %d", size, n, k, got, want)
					}
					if got, want := CountLess(keys, n, k), refLowerBound(keys, eff, k); got != want {
						t.Fatalf("CountLess(size %d, n %d, k %d) = %d, want %d", size, n, k, got, want)
					}
					if got, want := CountLessEq(keys, n, k), refUpperBound(keys, eff, k); got != want {
						t.Fatalf("CountLessEq(size %d, n %d, k %d) = %d, want %d", size, n, k, got, want)
					}
				}
			}
		}
	}
}

// TestCountKernelsUnsorted pins the count kernels' definition on
// arbitrary (unsorted, torn-read-shaped) input: they count, they do
// not assume order.
func TestCountKernelsUnsorted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	keys := make([]uint64, 30)
	for trial := 0; trial < 200; trial++ {
		for i := range keys {
			keys[i] = uint64(rng.Intn(8))
		}
		k := uint64(rng.Intn(8))
		nl, ne := 0, 0
		for _, x := range keys {
			if x < k {
				nl++
			}
			if x <= k {
				ne++
			}
		}
		if got := CountLess(keys, len(keys), k); got != nl {
			t.Fatalf("CountLess unsorted = %d, want %d", got, nl)
		}
		if got := CountLessEq(keys, len(keys), k); got != ne {
			t.Fatalf("CountLessEq unsorted = %d, want %d", got, ne)
		}
	}
}

func TestByteBoundKernelsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, size := range classSizes {
		a := make([]byte, size)
		for trial := 0; trial < 50; trial++ {
			for i := range a {
				a[i] = byte(rng.Intn(10))
			}
			sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
			for _, n := range []int{-1, 0, 1, size / 2, size, size + 3} {
				eff := n
				if eff < 0 {
					eff = 0
				}
				if eff > size {
					eff = size
				}
				for b := 0; b < 12; b++ {
					if got, want := LowerBoundBytes(a, n, byte(b)), refLowerBoundBytes(a, eff, byte(b)); got != want {
						t.Fatalf("LowerBoundBytes(size %d, n %d, b %d) = %d, want %d", size, n, b, got, want)
					}
					if got, want := UpperBoundBytes(a, n, byte(b)), refUpperBoundBytes(a, eff, byte(b)); got != want {
						t.Fatalf("UpperBoundBytes(size %d, n %d, b %d) = %d, want %d", size, n, b, got, want)
					}
				}
			}
		}
	}
}

// TestBoundKernelsTornInput feeds unsorted garbage (what a torn racy
// read can produce) through the binary kernels and asserts only the
// memory-safety contract: results stay within [0, n].
func TestBoundKernelsTornInput(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	keys := make([]uint64, 254)
	bytesArr := make([]byte, 256)
	for trial := 0; trial < 500; trial++ {
		for i := range keys {
			keys[i] = rng.Uint64()
		}
		for i := range bytesArr {
			bytesArr[i] = byte(rng.Uint32())
		}
		n := rng.Intn(len(keys) + 1)
		k := rng.Uint64()
		b := byte(rng.Uint32())
		for _, got := range []int{
			LowerBound(keys, n, k), UpperBound(keys, n, k),
			CountLess(keys, n, k), CountLessEq(keys, n, k),
			LowerBoundBytes(bytesArr, n, b), UpperBoundBytes(bytesArr, n, b),
		} {
			if got < 0 || got > n {
				t.Fatalf("kernel returned %d outside [0, %d] on torn input", got, n)
			}
		}
	}
}

func TestPrefetchSafety(t *testing.T) {
	Prefetch(nil)
	PrefetchU64(nil)
	x := uint64(42)
	PrefetchU64(&x)
	if x != 42 {
		t.Fatal("prefetch modified memory")
	}
}
