//go:build race

package simd

import "unsafe"

// Race-detector builds disable the software prefetch: it is an
// intentional racy read of lines a writer may be mutating (see
// prefetch.go), and reporting it would bury real findings. The
// traversals it serves are purely advisory about it — correctness
// never depends on the loaded value.

// Prefetch is a no-op under the race detector.
//
//optiql:noalloc
func Prefetch(p unsafe.Pointer) {}

// PrefetchU64 is a no-op under the race detector.
//
//optiql:noalloc
func PrefetchU64(p *uint64) {}
