package locks

import "fmt"

// Scheme describes a locking scheme an index or benchmark can be
// instantiated with: how to create node locks and which capabilities
// the scheme has. NewInner/NewLeaf let a scheme use different lock
// types at different levels of a B+-tree — the paper's OptiQL scheme
// keeps centralized optimistic locks on inner nodes and OptiQL on
// leaves (Section 6.1).
type Scheme struct {
	// Name is the identifier used by benchmark flags and output rows
	// (matching the paper's legend: OptLock, OptiQL, OptiQL-NOR, ...).
	Name string
	// Optimistic reports whether shared acquisitions are optimistic
	// (may fail validation) rather than blocking.
	Optimistic bool
	// SharedMode reports whether the scheme supports readers at all
	// (TTS and MCS do not).
	SharedMode bool
	// QueueWriters reports whether exclusive requesters queue and spin
	// locally (the OptiQL variants). Index protocols use this to decide
	// when blocking directly on the lock is profitable (Section 6.2).
	QueueWriters bool
	// NewLock creates a lock for uniform use (microbenchmarks, ART).
	NewLock func() Lock
	// NewInner creates a lock for a B+-tree inner node.
	NewInner func() Lock
	// NewLeaf creates a lock for a B+-tree leaf node.
	NewLeaf func() Lock
}

// AOR reports whether this scheme defers closing the opportunistic
// read window to the caller.
func (s *Scheme) AOR() bool { return s.Name == "OptiQL-AOR" }

func optiqlScheme(name string, newLeaf func() Lock) *Scheme {
	return &Scheme{
		Name:         name,
		Optimistic:   true,
		SharedMode:   true,
		QueueWriters: true,
		NewLock:      newLeaf,
		// B+-tree inner nodes keep the centralized optimistic lock:
		// they see little contention and avoid the queue-lock release
		// CAS (Section 6.1).
		NewInner: func() Lock { return new(OptLock) },
		NewLeaf:  newLeaf,
	}
}

func uniformScheme(name string, optimistic, shared bool, newLock func() Lock) *Scheme {
	return &Scheme{
		Name:       name,
		Optimistic: optimistic,
		SharedMode: shared,
		NewLock:    newLock,
		NewInner:   newLock,
		NewLeaf:    newLock,
	}
}

// Registry of every lock variant evaluated in the paper (Section 7.1).
var schemes = map[string]*Scheme{
	"OptLock":    uniformScheme("OptLock", true, true, func() Lock { return new(OptLock) }),
	"OptiQL":     optiqlScheme("OptiQL", func() Lock { return NewOptiQL() }),
	"OptiQL-NOR": optiqlScheme("OptiQL-NOR", func() Lock { return NewOptiQLNOR() }),
	"OptiQL-AOR": optiqlScheme("OptiQL-AOR", func() Lock { return NewOptiQLAOR() }),
	"pthread":    uniformScheme("pthread", false, true, func() Lock { return new(Pthread) }),
	"MCS-RW":     uniformScheme("MCS-RW", false, true, func() Lock { return new(MCSRW) }),
	"TTS":        uniformScheme("TTS", false, false, func() Lock { return new(TTS) }),
	"MCS":        uniformScheme("MCS", false, false, func() Lock { return new(MCS) }),
	// Extensions beyond the paper's Figure 6 lineup: the backoff
	// mitigation discussed in Section 1.1 and the CLH queue lock from
	// the related work.
	"OptLock-Backoff": uniformScheme("OptLock-Backoff", true, true, func() Lock { return new(OptLockBackoff) }),
	"CLH":             uniformScheme("CLH", false, false, func() Lock { return new(CLH) }),
}

// ByName looks up a scheme by its paper name.
func ByName(name string) (*Scheme, error) {
	s, ok := schemes[name]
	if !ok {
		return nil, fmt.Errorf("locks: unknown scheme %q", name)
	}
	return s, nil
}

// MustByName is ByName for static configuration; it panics on unknown
// names.
func MustByName(name string) *Scheme {
	s, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// AllNames returns the scheme names in the order the paper's figures
// list them.
func AllNames() []string {
	return []string{"OptLock", "OptiQL-NOR", "OptiQL", "OptiQL-AOR", "pthread", "MCS-RW", "TTS", "MCS"}
}

// ExtendedNames returns AllNames plus the extension schemes (backoff
// and CLH) evaluated by the fairness ablation.
func ExtendedNames() []string {
	return append(AllNames(), "OptLock-Backoff", "CLH")
}

// ReaderCapableNames returns the schemes that support shared mode, in
// figure order (used by the mixed-workload experiments).
func ReaderCapableNames() []string {
	return []string{"OptLock", "OptiQL-NOR", "OptiQL", "pthread", "MCS-RW"}
}
