package locks

import (
	"sync/atomic"
	"unsafe"

	"optiql/internal/core"
	"optiql/internal/obs"
	"optiql/internal/obs/trace"
)

const (
	classReader uint32 = iota
	classWriter
)

// rwNode is the queue node shared by MCS and MCS-RW: successor link,
// grant flag, and requester class, padded against false sharing.
type rwNode struct {
	next    atomic.Pointer[rwNode]
	granted atomic.Uint32
	class   uint32
	_       [48]byte
}

func (n *rwNode) reset(class uint32) {
	n.next.Store(nil)
	n.granted.Store(0)
	n.class = class
}

// MCSRW is a fair, queue-based reader-writer lock in the spirit of
// Mellor-Crummey & Scott's fair RW lock [39]: readers and writers join
// a single FIFO queue and spin locally; a maximal run of consecutive
// readers (a "group") holds the lock together. The group's tail node
// passes the queue position to the next writer as soon as the tail
// itself releases, and the writer then waits for the group's reader
// count to reach zero — so the last reader to finish is what actually
// admits it, and no reader ever blocks waiting for its own group.
//
// It preserves the properties the paper evaluates MCS-RW for — strict
// FIFO fairness, local spinning (robustness under contention), and the
// cost that readers must write to shared memory — while using a design
// simple enough to verify. The queue tail is one 8-byte word; the
// active-reader count and group tail are two adjacent words (see
// DESIGN.md for the deviation from the paper's single-word encoding).
type MCSRW struct {
	tail      atomic.Pointer[rwNode]
	readers   atomic.Int64
	groupTail atomic.Pointer[rwNode]
}

// AcquireSh blocks until this reader's group holds the lock. Unlike
// optimistic locks this writes shared memory (swap + counter), which is
// exactly the overhead the paper attributes to pessimistic readers.
//
//optiql:noalloc
func (l *MCSRW) AcquireSh(c *Ctx) (Token, bool) {
	n := c.getRW()
	n.reset(classReader)
	prev := l.tail.Swap(n)
	if prev == nil {
		// Lock fully free: start a new group of one.
		l.readers.Add(1)
		l.groupTail.Store(n)
		n.granted.Store(1)
	} else {
		prev.next.Store(n)
		var s core.Spinner
		for n.granted.Load() == 0 {
			s.Spin()
		}
	}
	// If we are the group tail at the instant of our grant, extend the
	// group by one if a reader is already queued behind us; the
	// extension then cascades from that reader's own acquire path. The
	// groupTail guard matters with batch grants: a granted mid-group
	// member must not extend — its in-group successor was already
	// admitted by the batch, and re-granting it would wake it twice.
	// The guard must run BEFORE the class read: only a group tail's
	// successor is provably ungranted (stable class); a mid-group
	// member's successor may already be granted, released and recycled.
	if nx := n.next.Load(); nx != nil && l.groupTail.Load() == n && nx.class == classReader {
		l.readers.Add(1)
		l.groupTail.Store(nx)
		nx.granted.Store(1)
	}
	return Token{rw: n}, true
}

// ReleaseSh ends a shared acquisition. The group-tail reader resolves
// the queue handover immediately — it does NOT wait for the rest of its
// group. A successor writer is woken right away and gates on the
// reader count in AcquireEx, so the group's last decrement is what
// actually admits it. Draining here instead would deadlock lock-coupled
// readers: a tail blocked waiting for a group member cannot release the
// child lock it already holds, while that member may be queued on
// exactly that child.
//
//optiql:noalloc
func (l *MCSRW) ReleaseSh(c *Ctx, t Token) bool {
	n := t.rw
	if l.groupTail.Load() == n {
		countFanout(c, l.structuralRelease(n))
	}
	l.readers.Add(-1)
	c.putRW(n)
	return true
}

// AcquireEx blocks until the lock is granted exclusively, in FIFO
// order with respect to all other requesters.
//
//optiql:noalloc
func (l *MCSRW) AcquireEx(c *Ctx) Token {
	n := c.getRW()
	n.reset(classWriter)
	tb := c.tr
	sampled := tb.Sample()
	var t0 int64
	if sampled {
		t0 = tb.Now()
	}
	prev := l.tail.Swap(n)
	handover := prev != nil
	if prev == nil {
		n.granted.Store(1)
		c.Counters().Inc(obs.EvExFree)
	} else {
		prev.next.Store(n)
		var s core.Spinner
		for n.granted.Load() == 0 {
			s.Spin()
		}
		c.Counters().Inc(obs.EvExHandover)
	}
	// The queue position is ours, but a reader group ahead of us may
	// still be active: its tail resolves the structural handover at its
	// own release, possibly before the group has drained. The count is
	// the writer's real gate — the group's last decrement admits us.
	var rs core.Spinner
	for l.readers.Load() != 0 {
		rs.Spin()
	}
	if sampled {
		var fl uint8
		if handover {
			fl = trace.FlagHandover
		}
		tb.LockWait(t0, tb.Now()-t0, fl, lockID(unsafe.Pointer(l)))
	}
	return Token{rw: n}
}

// ReleaseEx hands the lock to the successor (starting a new reader
// group if the successor reads), or resets the tail.
//
//optiql:noalloc
func (l *MCSRW) ReleaseEx(c *Ctx, t Token) {
	countFanout(c, l.structuralRelease(t.rw))
	c.putRW(t.rw)
}

// structuralRelease performs the MCS-style queue handover from node n,
// which must be the last node of the finishing group (or the writer).
// A writer successor is granted alone; a reader successor heads the
// next group, and the release batch-grants the whole maximal prefix of
// consecutive queued readers in one pass instead of relying on the
// one-at-a-time acquire-side cascade. Returns the handover fanout.
//
//optiql:noalloc
func (l *MCSRW) structuralRelease(n *rwNode) int {
	if n.next.Load() == nil && l.tail.CompareAndSwap(n, nil) {
		return 0
	}
	var s core.Spinner
	for n.next.Load() == nil {
		s.Spin()
	}
	nx := n.next.Load()
	if nx.class != classReader {
		nx.granted.Store(1)
		return 1
	}
	// Walk the frozen reader prefix (queued nodes never unlink, and a
	// node's class is written before it links itself), then publish the
	// group state before any grant: the reader count covers the whole
	// group and groupTail names its closer, so early releases by
	// mid-group members cannot drain the group prematurely or trigger
	// the acquire-side extension from the wrong node.
	last := nx
	count := 1
	for {
		m := last.next.Load()
		if m == nil || m.class != classReader {
			break
		}
		last = m
		count++
	}
	l.readers.Add(int64(count))
	l.groupTail.Store(last)
	// A member may release and recycle its node the instant it is
	// granted, so each node's successor is read before its grant.
	for m := nx; ; {
		next := m.next.Load()
		m.granted.Store(1)
		if m == last {
			break
		}
		m = next
	}
	return count
}

// Upgrade is unsupported: pessimistic index protocols take the
// exclusive lock directly.
func (l *MCSRW) Upgrade(_ *Ctx, _ *Token) bool { return false }

// CloseWindow is a no-op.
func (l *MCSRW) CloseWindow(Token) {}

// Pessimistic reports true: readers block and never fail validation.
func (l *MCSRW) Pessimistic() bool { return true }
