package locks

import (
	"sync/atomic"
	"unsafe"

	"optiql/internal/core"
	"optiql/internal/obs"
	"optiql/internal/obs/trace"
)

const (
	classReader uint32 = iota
	classWriter
)

// rwNode is the queue node shared by MCS and MCS-RW: successor link,
// grant flag, and requester class, padded against false sharing.
type rwNode struct {
	next    atomic.Pointer[rwNode]
	granted atomic.Uint32
	class   uint32
	_       [48]byte
}

func (n *rwNode) reset(class uint32) {
	n.next.Store(nil)
	n.granted.Store(0)
	n.class = class
}

// MCSRW is a fair, queue-based reader-writer lock in the spirit of
// Mellor-Crummey & Scott's fair RW lock [39]: readers and writers join
// a single FIFO queue and spin locally; a maximal run of consecutive
// readers (a "group") holds the lock together, and the group's tail
// node hands the lock to the next writer once every reader in the
// group has finished.
//
// It preserves the properties the paper evaluates MCS-RW for — strict
// FIFO fairness, local spinning (robustness under contention), and the
// cost that readers must write to shared memory — while using a design
// simple enough to verify. The queue tail is one 8-byte word; the
// active-reader count and group tail are two adjacent words (see
// DESIGN.md for the deviation from the paper's single-word encoding).
type MCSRW struct {
	tail      atomic.Pointer[rwNode]
	readers   atomic.Int64
	groupTail atomic.Pointer[rwNode]
}

// AcquireSh blocks until this reader's group holds the lock. Unlike
// optimistic locks this writes shared memory (swap + counter), which is
// exactly the overhead the paper attributes to pessimistic readers.
//
//optiql:noalloc
func (l *MCSRW) AcquireSh(c *Ctx) (Token, bool) {
	n := c.getRW()
	n.reset(classReader)
	prev := l.tail.Swap(n)
	if prev == nil {
		// Lock fully free: start a new group of one.
		l.readers.Add(1)
		l.groupTail.Store(n)
		n.granted.Store(1)
	} else {
		prev.next.Store(n)
		var s core.Spinner
		for n.granted.Load() == 0 {
			s.Spin()
		}
	}
	// We are the group tail at the instant of our grant. Extend the
	// group by one if a reader is already queued behind us; the
	// extension then cascades from that reader's own acquire path.
	if nx := n.next.Load(); nx != nil && nx.class == classReader {
		l.readers.Add(1)
		l.groupTail.Store(nx)
		nx.granted.Store(1)
	}
	return Token{rw: n}, true
}

// ReleaseSh ends a shared acquisition. The group-tail reader waits for
// its whole group to drain and then performs the structural handover.
//
//optiql:noalloc
func (l *MCSRW) ReleaseSh(c *Ctx, t Token) bool {
	n := t.rw
	if l.groupTail.Load() != n {
		// Not the group closer: our successor (if any) was already
		// granted, so nothing references this node anymore.
		l.readers.Add(-1)
		c.putRW(n)
		return true
	}
	// Group closer: wait until every reader in the group (including
	// ourselves) has decremented, then hand over.
	l.readers.Add(-1)
	var s core.Spinner
	for l.readers.Load() != 0 {
		s.Spin()
	}
	l.structuralRelease(n)
	c.putRW(n)
	return true
}

// AcquireEx blocks until the lock is granted exclusively, in FIFO
// order with respect to all other requesters.
//
//optiql:noalloc
func (l *MCSRW) AcquireEx(c *Ctx) Token {
	n := c.getRW()
	n.reset(classWriter)
	tb := c.tr
	sampled := tb.Sample()
	var t0 int64
	if sampled {
		t0 = tb.Now()
	}
	prev := l.tail.Swap(n)
	handover := prev != nil
	if prev == nil {
		n.granted.Store(1)
		c.Counters().Inc(obs.EvExFree)
	} else {
		prev.next.Store(n)
		var s core.Spinner
		for n.granted.Load() == 0 {
			s.Spin()
		}
		c.Counters().Inc(obs.EvExHandover)
	}
	if sampled {
		var fl uint8
		if handover {
			fl = trace.FlagHandover
		}
		tb.LockWait(t0, tb.Now()-t0, fl, lockID(unsafe.Pointer(l)))
	}
	return Token{rw: n}
}

// ReleaseEx hands the lock to the successor (starting a new reader
// group if the successor reads), or resets the tail.
//
//optiql:noalloc
func (l *MCSRW) ReleaseEx(c *Ctx, t Token) {
	l.structuralRelease(t.rw)
	c.putRW(t.rw)
}

// structuralRelease performs the MCS-style queue handover from node n,
// which must be the last node of the finishing group (or the writer).
//
//optiql:noalloc
func (l *MCSRW) structuralRelease(n *rwNode) {
	if n.next.Load() == nil && l.tail.CompareAndSwap(n, nil) {
		return
	}
	var s core.Spinner
	for n.next.Load() == nil {
		s.Spin()
	}
	nx := n.next.Load()
	if nx.class == classReader {
		l.readers.Add(1)
		l.groupTail.Store(nx)
	}
	nx.granted.Store(1)
}

// Upgrade is unsupported: pessimistic index protocols take the
// exclusive lock directly.
func (l *MCSRW) Upgrade(_ *Ctx, _ *Token) bool { return false }

// CloseWindow is a no-op.
func (l *MCSRW) CloseWindow(Token) {}

// Pessimistic reports true: readers block and never fail validation.
func (l *MCSRW) Pessimistic() bool { return true }
