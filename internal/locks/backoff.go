package locks

import (
	"sync/atomic"

	"optiql/internal/core"
)

// OptLockBackoff is the centralized optimistic lock with truncated
// exponential backoff on CAS failure — the classic mitigation the
// paper's introduction discusses (Section 1.1): it eases cacheline
// contention but trades away fairness, making "lucky" threads far more
// likely to reacquire the lock. The fairness experiment quantifies
// that with per-thread acquisition counts.
type OptLockBackoff struct {
	word atomic.Uint64
	// rng state is per-acquisition (seeded from the word), keeping the
	// lock itself 8 bytes + this auxiliary field.
	seed atomic.Uint64
}

const (
	backoffMin = 1 << 4
	backoffMax = 1 << 14
)

// AcquireSh snapshots the word, as OptLock.
func (l *OptLockBackoff) AcquireSh(_ *Ctx) (Token, bool) {
	v := l.word.Load()
	return Token{Version: v}, v&optLockedBit == 0
}

// ReleaseSh validates the snapshot.
func (l *OptLockBackoff) ReleaseSh(_ *Ctx, t Token) bool {
	return l.word.Load() == t.Version
}

// AcquireEx spins with truncated exponential backoff between attempts.
func (l *OptLockBackoff) AcquireEx(_ *Ctx) Token {
	limit := backoffMin
	var s core.Spinner
	for {
		v := l.word.Load()
		if v&optLockedBit == 0 && l.word.CompareAndSwap(v, v|optLockedBit) {
			return Token{Version: v}
		}
		// Back off for a pseudo-random delay under the current limit,
		// then double the limit (truncated).
		delay := int(l.nextRand()) & (limit - 1)
		for i := 0; i < delay; i++ {
			s.Spin()
		}
		if limit < backoffMax {
			limit <<= 1
		}
	}
}

func (l *OptLockBackoff) nextRand() uint64 {
	x := l.seed.Add(0x9E3779B97F4A7C15)
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	return x ^ (x >> 29)
}

// ReleaseEx bumps the version and clears the lock bit.
func (l *OptLockBackoff) ReleaseEx(_ *Ctx, _ Token) {
	l.word.Store((l.word.Load() + 1) &^ optLockedBit)
}

// Upgrade converts a validated read into an exclusive hold.
func (l *OptLockBackoff) Upgrade(_ *Ctx, t *Token) bool {
	if t.Version&optLockedBit != 0 {
		return false
	}
	return l.word.CompareAndSwap(t.Version, t.Version|optLockedBit)
}

// CloseWindow is a no-op.
func (l *OptLockBackoff) CloseWindow(Token) {}

// Pessimistic reports false.
func (l *OptLockBackoff) Pessimistic() bool { return false }
