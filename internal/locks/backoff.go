package locks

import (
	"sync/atomic"

	"optiql/internal/core"
	"optiql/internal/obs"
)

// OptLockBackoff is the centralized optimistic lock with truncated
// exponential backoff on CAS failure — the classic mitigation the
// paper's introduction discusses (Section 1.1): it eases cacheline
// contention but trades away fairness, making "lucky" threads far more
// likely to reacquire the lock. The fairness experiment quantifies
// that with per-thread acquisition counts.
type OptLockBackoff struct {
	word atomic.Uint64
	// rng state is per-acquisition (seeded from the word), keeping the
	// lock itself 8 bytes + this auxiliary field.
	seed atomic.Uint64
}

const (
	backoffMin = 1 << 4
	backoffMax = 1 << 14
)

// AcquireSh snapshots the word, as OptLock.
func (l *OptLockBackoff) AcquireSh(c *Ctx) (Token, bool) {
	v := l.word.Load()
	ok := v&optLockedBit == 0
	if !ok {
		c.Counters().Inc(obs.EvShAcquireFail)
	}
	return Token{Version: v}, ok
}

// ReleaseSh validates the snapshot.
func (l *OptLockBackoff) ReleaseSh(c *Ctx, t Token) bool {
	ok := l.word.Load() == t.Version
	if !ok {
		c.Counters().Inc(obs.EvShValidateFail)
	}
	return ok
}

// AcquireEx spins with truncated exponential backoff between attempts.
func (l *OptLockBackoff) AcquireEx(c *Ctx) Token {
	limit := backoffMin
	var s core.Spinner
	for {
		v := l.word.Load()
		if v&optLockedBit == 0 && l.word.CompareAndSwap(v, v|optLockedBit) {
			c.Counters().Inc(obs.EvExFree)
			return Token{Version: v}
		}
		// Back off for a pseudo-random delay under the current limit,
		// then double the limit (truncated).
		delay := int(l.nextRand()) & (limit - 1)
		for i := 0; i < delay; i++ {
			s.Spin()
		}
		if limit < backoffMax {
			limit <<= 1
		}
	}
}

func (l *OptLockBackoff) nextRand() uint64 {
	x := l.seed.Add(0x9E3779B97F4A7C15)
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	return x ^ (x >> 29)
}

// ReleaseEx bumps the version and clears the lock bit.
func (l *OptLockBackoff) ReleaseEx(_ *Ctx, _ Token) {
	l.word.Store((l.word.Load() + 1) &^ optLockedBit)
}

// Upgrade converts a validated read into an exclusive hold.
func (l *OptLockBackoff) Upgrade(c *Ctx, t *Token) bool {
	if t.Version&optLockedBit == 0 && l.word.CompareAndSwap(t.Version, t.Version|optLockedBit) {
		c.Counters().Inc(obs.EvUpgradeOK)
		return true
	}
	c.Counters().Inc(obs.EvUpgradeFail)
	return false
}

// CloseWindow is a no-op.
func (l *OptLockBackoff) CloseWindow(Token) {}

// BumpVersion advances an unlocked word's version (node recycling);
// skipped while held, when the holder's release bumps it instead.
func (l *OptLockBackoff) BumpVersion() {
	for {
		v := l.word.Load()
		if v&optLockedBit != 0 {
			return
		}
		if l.word.CompareAndSwap(v, v+1) {
			return
		}
	}
}

// Pessimistic reports false.
func (l *OptLockBackoff) Pessimistic() bool { return false }
