package locks

import (
	"sync"
	"sync/atomic"
)

// Type-stable node recycling (the paper's §6.1 reuse discipline, made
// explicit). An index that frees nodes during structural modifications
// hands them to a Recycler instead of dropping them for the GC; later
// allocations of the same node class take them back. Reuse is safe
// under in-flight optimistic readers because:
//
//   - a node is recycled together with its lock, and the lock's version
//     word is never reset — it only moves forward. Any reader holding a
//     version snapshot from the node's previous life fails validation,
//     because the structural modification that freed the node bumped
//     the version at ReleaseEx (and BumpOnReuse bumps it again,
//     defensively, in case a free site ever releases without a
//     modification);
//   - nodes are type-stable: a Recycler serves exactly one node class
//     of one tree, so a stale pointer always refers to an object of the
//     layout the reader expects — torn field reads are possible but are
//     rejected by the validation above, never misinterpreted;
//   - pessimistic schemes never hold stale pointers at all (their
//     shared acquisitions block), so reinitialization is race-free for
//     the schemes the race detector runs.
//
// The cache hierarchy mirrors internal/core's qnode pool: a small
// per-Ctx (per-worker) array absorbs the common split/merge churn with
// no synchronization, overflowing into a shared sync.Pool.

const (
	// recycleSlots is the number of per-Ctx cache slots. Each Recycler
	// hashes to one slot; a worker driving more Recyclers than slots
	// (several trees at once) evicts between them through the shared
	// pools, which is correct, just colder.
	recycleSlots = 8
	// recycleDepth bounds the nodes one Ctx slot holds. Splits and
	// merges free at most a handful of nodes per operation, so a short
	// stack captures the churn while keeping eviction cheap.
	recycleDepth = 16
)

// recyclerSeq assigns each Recycler its Ctx slot round-robin.
var recyclerSeq atomic.Uint32

// Recycler is a free list for one node class of one tree. Get/Put are
// cheap when called with the owning worker's Ctx (a slice index and a
// store); without a Ctx they fall through to the shared sync.Pool.
type Recycler struct {
	slot uint32
	pool sync.Pool
}

// NewRecycler creates an empty free list.
func NewRecycler() *Recycler {
	return &Recycler{slot: recyclerSeq.Add(1) % recycleSlots}
}

// freeCache is one Ctx slot: a small stack of nodes owned by a single
// Recycler. The owner tag keeps classes from ever mixing — a slot
// reused by a different Recycler (another tree, or the other node
// class) is flushed to its previous owner's shared pool first.
type freeCache struct {
	owner *Recycler
	n     int
	items [recycleDepth]any
}

func (s *freeCache) flush() {
	for i := 0; i < s.n; i++ {
		s.owner.pool.Put(s.items[i])
		s.items[i] = nil
	}
	s.n = 0
}

// Get returns a previously freed node, or nil when the caller must
// allocate. c may be nil (tree construction paths).
func (r *Recycler) Get(c *Ctx) any {
	if c != nil {
		s := &c.free[r.slot]
		if s.owner == r && s.n > 0 {
			s.n--
			x := s.items[s.n]
			s.items[s.n] = nil
			return x
		}
	}
	return r.pool.Get()
}

// Put stores a freed node for reuse. The node must be unreachable from
// the structure and its lock released; the caller is expected to have
// cleared any child pointers so the pool does not pin subtrees.
func (r *Recycler) Put(c *Ctx, x any) {
	if c == nil {
		r.pool.Put(x)
		return
	}
	s := &c.free[r.slot]
	if s.owner != r {
		if s.owner != nil {
			s.flush()
		}
		s.owner = r
	}
	if s.n == recycleDepth {
		r.pool.Put(x)
		return
	}
	s.items[s.n] = x
	s.n++
}

// VersionBumper is implemented by the optimistic locks: BumpVersion
// advances the version word of an unlocked lock, so that optimistic
// readers still holding a snapshot from before the bump fail
// validation. Pessimistic locks (whose readers block and hence can
// never hold a stale snapshot) do not implement it.
type VersionBumper interface{ BumpVersion() }

// BumpOnReuse advances l's version if the scheme validates reads
// against it. Called by the index substrates when a recycled node is
// taken back into use, before any field of the node is rewritten.
func BumpOnReuse(l Lock) {
	if b, ok := l.(VersionBumper); ok {
		b.BumpVersion()
	}
}
