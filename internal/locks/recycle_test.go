package locks

import (
	"testing"

	"optiql/internal/core"
)

// TestBumpOnReuseInvalidatesStaleTokens pins the node-recycling safety
// argument (recycle.go): a reader whose shared token predates a node's
// reuse must fail validation, for every optimistic scheme. This is the
// invariant the recycle analyzer enforces at Recycler.Get sites; the
// test is its dynamic counterpart.
func TestBumpOnReuseInvalidatesStaleTokens(t *testing.T) {
	for name, s := range schemes {
		if !s.Optimistic {
			continue
		}
		t.Run(name, func(t *testing.T) {
			pool := core.NewPool(8)
			c := newCtx(t, pool)
			l := s.NewLock()

			tok, ok := l.AcquireSh(c)
			if !ok {
				t.Fatal("AcquireSh on an idle lock failed")
			}
			BumpOnReuse(l)
			if l.ReleaseSh(c, tok) {
				t.Fatal("stale token validated after BumpOnReuse")
			}

			// A token taken after the bump validates normally.
			tok, ok = l.AcquireSh(c)
			if !ok {
				t.Fatal("AcquireSh after bump failed")
			}
			if !l.ReleaseSh(c, tok) {
				t.Fatal("fresh token failed validation")
			}
		})
	}
}

// TestBumpOnReuseQueuedShared pins recycling safety around the
// queued-shared protocol, for every OptiQL variant: an optimistic token
// taken before a node's reuse still fails validation when queued-shared
// holds happened in between (shared holds carry the version unchanged,
// so only the bump invalidates), and BumpOnReuse during a queued-shared
// hold leaves the held word untouched — the skip-if-locked contract
// extends to shared holders.
func TestBumpOnReuseQueuedShared(t *testing.T) {
	for _, name := range []string{"OptiQL", "OptiQL-NOR", "OptiQL-AOR"} {
		s := schemes[name]
		t.Run(name, func(t *testing.T) {
			pool := core.NewPool(8)
			c := newCtx(t, pool)
			l := s.NewLock()
			sq := l.(SharedQueuer)

			stale, ok := l.AcquireSh(c)
			if !ok {
				t.Fatal("AcquireSh on an idle lock failed")
			}
			// A queued-shared round trip does not disturb the snapshot:
			// readers carry the version through unchanged.
			qt := sq.AcquireShQueued(c)
			sq.ReleaseShQueued(c, qt)
			if !l.ReleaseSh(c, stale) {
				t.Fatal("snapshot invalidated by a queued-shared round trip")
			}
			BumpOnReuse(l)
			if l.ReleaseSh(c, stale) {
				t.Fatal("stale token validated after BumpOnReuse")
			}

			// While a queued-shared hold is in flight the word is locked;
			// BumpOnReuse must skip rather than corrupt it.
			qt = sq.AcquireShQueued(c)
			lk := l.(*OptiQLLock)
			before := lk.Core().Word()
			BumpOnReuse(l)
			if w := lk.Core().Word(); w != before {
				t.Fatalf("BumpOnReuse changed a shared-held word: %#x -> %#x", before, w)
			}
			sq.ReleaseShQueued(c, qt)

			tok, ok := l.AcquireSh(c)
			if !ok {
				t.Fatal("AcquireSh after bump failed")
			}
			if !l.ReleaseSh(c, tok) {
				t.Fatal("fresh token failed validation")
			}
		})
	}
}

// TestBumpOnReuseSkipsHeldLock pins the skip-if-locked contract: the
// holder's own release bumps the version, so BumpOnReuse must neither
// spin nor corrupt the held word.
func TestBumpOnReuseSkipsHeldLock(t *testing.T) {
	pool := core.NewPool(8)
	c := newCtx(t, pool)
	var l OptLock
	tok := l.AcquireEx(c)
	before := l.Word()
	BumpOnReuse(&l)
	if w := l.Word(); w != before {
		t.Fatalf("BumpOnReuse changed a held word: %#x -> %#x", before, w)
	}
	l.ReleaseEx(c, tok)
	if _, ok := l.AcquireSh(c); !ok {
		t.Fatal("lock unusable after release")
	}
}

// TestBumpOnReusePessimisticNoop pins that pessimistic locks, which
// never hand out stale snapshots, are accepted unchanged.
func TestBumpOnReusePessimisticNoop(t *testing.T) {
	for name, s := range schemes {
		if s.Optimistic || !s.SharedMode {
			continue
		}
		t.Run(name, func(t *testing.T) {
			pool := core.NewPool(8)
			c := newCtx(t, pool)
			l := s.NewLock()
			BumpOnReuse(l) // must not panic
			tok, ok := l.AcquireSh(c)
			if !ok {
				t.Fatal("AcquireSh failed")
			}
			if !l.ReleaseSh(c, tok) {
				t.Fatal("pessimistic ReleaseSh reported failure")
			}
		})
	}
}

// TestRecyclerRoundTrip pins the Ctx fast path and the class-mixing
// flush: a node Put with the owning Ctx comes back from Get, and a
// slot taken over by a different Recycler drains to the old owner's
// shared pool rather than leaking across classes. The recycled values
// here are plain test structs with no lock, so the recycle analyzer's
// bump-before-reuse rule does not apply.
func TestRecyclerRoundTrip(t *testing.T) {
	pool := core.NewPool(8)
	c := newCtx(t, pool)
	r := NewRecycler()

	type nodeA struct{ v int }
	n := &nodeA{v: 42}
	r.Put(c, n)
	//optiqlvet:ignore recycle the pooled values are lockless test structs; there is no version to bump
	got, _ := r.Get(c).(*nodeA)
	if got != n {
		t.Fatalf("Get = %v, want the node just Put", got)
	}
	//optiqlvet:ignore recycle the pooled values are lockless test structs; there is no version to bump
	if x := r.Get(c); x != nil {
		t.Fatalf("empty recycler Get = %v, want nil", x)
	}

	// Force both recyclers onto the same Ctx slot so the second Put
	// must flush the first class to its shared pool. The flush lands in
	// a sync.Pool, and under the race detector the runtime deliberately
	// drops a quarter of all Pool.Puts on the floor — so the round trip
	// is retried: without -race the first attempt always succeeds, and
	// with -race the drop chance vanishes across attempts.
	type nodeB struct{ v int }
	flushed := false
	for attempt := 0; attempt < 100 && !flushed; attempt++ {
		r2 := NewRecycler()
		r2.slot = r.slot
		r.Put(c, &nodeA{v: 1})
		r2.Put(c, &nodeB{v: 2})
		//optiqlvet:ignore recycle the pooled values are lockless test structs; there is no version to bump
		if x, ok := r2.Get(c).(*nodeB); !ok {
			t.Fatalf("class B Get = %T, want *nodeB", x)
		}
		// The class-A node survived in r's shared pool (unless the
		// race-mode Pool dropped it — retry).
		//optiqlvet:ignore recycle the pooled values are lockless test structs; there is no version to bump
		if x, ok := r.Get(c).(*nodeA); ok && x.v == 1 {
			flushed = true
		}
	}
	if !flushed {
		t.Fatal("class A node lost in flush on every attempt")
	}
}
