package locks

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optiql/internal/core"
	"optiql/internal/obs"
)

// waitCoreQID spins until the OptiQL word carries the given queue-node
// ID, i.e. until that requester's tail swap has executed; the tests use
// it to build wait queues with a deterministic order.
func waitCoreQID(t *testing.T, l *OptiQLLock, id uint32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for uint32((l.Core().Word()&core.QIDMask)>>core.VersionBits) != id {
		if time.Now().After(deadline) {
			t.Fatalf("lock word never carried qid %d", id)
		}
	}
}

// TestOptiQLBatchGrantWakesPrefixOnce pins the SharedQueuer contract on
// every OptiQL variant: a release facing the queue [Sh Sh Ex Sh] wakes
// exactly the compatible prefix {Sh, Sh} — each exactly once, both
// before the incompatible writer — and the obs counters record one
// batch grant whose fanout matches.
func TestOptiQLBatchGrantWakesPrefixOnce(t *testing.T) {
	for _, name := range []string{"OptiQL", "OptiQL-NOR", "OptiQL-AOR"} {
		s := schemes[name]
		t.Run(name, func(t *testing.T) {
			pool := core.NewPool(16)
			reg := obs.NewRegistry()
			l := s.NewLock().(*OptiQLLock)

			holder := newCtx(t, pool)
			holder.SetCounters(reg.NewCounters())
			htok := l.AcquireEx(holder)
			l.CloseWindow(htok) // AOR: close before "modifying"

			type waiter struct {
				ctx     *Ctx
				shared  bool
				woke    atomic.Int32
				release chan struct{}
				done    chan struct{}
			}
			mk := func(shared bool) *waiter {
				c := NewCtx(pool, 2)
				c.SetCounters(reg.NewCounters())
				t.Cleanup(c.Close)
				return &waiter{ctx: c, shared: shared, release: make(chan struct{}), done: make(chan struct{})}
			}
			s1, s2, w1, s3 := mk(true), mk(true), mk(false), mk(true)

			var wg sync.WaitGroup
			start := func(w *waiter) {
				// The next queue position is whatever node the worker's
				// Ctx hands out: peek it so the queue order can be
				// confirmed before starting the next waiter.
				nextID := w.ctx.q[len(w.ctx.q)-1].ID()
				wg.Add(1)
				go func() {
					defer wg.Done()
					if w.shared {
						tok := l.AcquireShQueued(w.ctx)
						w.woke.Add(1)
						<-w.release
						l.ReleaseShQueued(w.ctx, tok)
					} else {
						tok := l.AcquireEx(w.ctx)
						w.woke.Add(1)
						<-w.release
						l.ReleaseEx(w.ctx, tok)
					}
					close(w.done)
				}()
				waitCoreQID(t, l, nextID)
			}
			start(s1)
			start(s2)
			start(w1)
			start(s3)

			l.ReleaseEx(holder, htok)

			deadline := time.Now().Add(5 * time.Second)
			for s1.woke.Load() != 1 || s2.woke.Load() != 1 {
				if time.Now().After(deadline) {
					t.Fatalf("prefix not fully granted: s1=%d s2=%d", s1.woke.Load(), s2.woke.Load())
				}
			}
			time.Sleep(5 * time.Millisecond)
			if w1.woke.Load() != 0 || s3.woke.Load() != 0 {
				t.Fatalf("grant crossed the first incompatible waiter: w1=%d s3=%d",
					w1.woke.Load(), s3.woke.Load())
			}
			snap := reg.Snapshot()
			if got := snap.Get(obs.EvBatchGrant); got != 1 {
				t.Fatalf("batch_grant = %d, want 1", got)
			}
			if got := snap.Get(obs.EvGrantFanout); got != 2 {
				t.Fatalf("grant_fanout = %d, want 2", got)
			}

			// Drain: group -> W1 -> S3; every waiter woke exactly once.
			close(s1.release)
			close(s2.release)
			<-s1.done
			<-s2.done
			close(w1.release)
			<-w1.done
			close(s3.release)
			<-s3.done
			wg.Wait()
			for _, w := range []*waiter{s1, s2, w1, s3} {
				if n := w.woke.Load(); n != 1 {
					t.Fatalf("a waiter woke %d times, want exactly once", n)
				}
			}
			if l.Core().IsLocked() {
				t.Fatal("lock still held after full drain")
			}
			// Singleton handovers (to W1, then to S3) must not count as
			// batch grants.
			snap = reg.Snapshot()
			if got := snap.Get(obs.EvBatchGrant); got != 1 {
				t.Fatalf("batch_grant after drain = %d, want still 1", got)
			}
			if got := snap.Get(obs.EvGrantFanout); got != 2 {
				t.Fatalf("grant_fanout after drain = %d, want still 2", got)
			}
		})
	}
}

// TestMCSRWBatchGrantReaderGroup pins the MCS-RW analogue: a writer's
// release facing [R R R W] admits the whole reader group in one batch
// grant (fanout 3), all three readers overlap, and the group's closer
// hands over to the writer without re-waking anyone.
func TestMCSRWBatchGrantReaderGroup(t *testing.T) {
	pool := core.NewPool(16)
	reg := obs.NewRegistry()
	var l MCSRW

	holder := newCtx(t, pool)
	holder.SetCounters(reg.NewCounters())
	htok := l.AcquireEx(holder)

	const nReaders = 3
	var (
		inside   atomic.Int32
		maxIn    atomic.Int32
		wWoke    atomic.Int32
		wg       sync.WaitGroup
		hold     = make(chan struct{})
		allIn    = make(chan struct{})
		allInOnc sync.Once
	)
	startWaiter := func(reader bool) {
		prev := l.tail.Load()
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewCtx(pool, 2)
			defer c.Close()
			c.SetCounters(reg.NewCounters())
			if reader {
				tok, _ := l.AcquireSh(c)
				n := inside.Add(1)
				for {
					m := maxIn.Load()
					if n <= m || maxIn.CompareAndSwap(m, n) {
						break
					}
				}
				if n == nReaders {
					allInOnc.Do(func() { close(allIn) })
				}
				<-hold
				inside.Add(-1)
				l.ReleaseSh(c, tok)
			} else {
				tok := l.AcquireEx(c)
				wWoke.Add(1)
				l.ReleaseEx(c, tok)
			}
		}()
		// Queue order: wait for this waiter's tail swap before starting
		// the next.
		deadline := time.Now().Add(5 * time.Second)
		for l.tail.Load() == prev {
			if time.Now().After(deadline) {
				t.Fatal("waiter never swapped into the queue")
			}
		}
	}
	for i := 0; i < nReaders; i++ {
		startWaiter(true)
	}
	startWaiter(false)

	l.ReleaseEx(holder, htok)
	select {
	case <-allIn:
	case <-time.After(5 * time.Second):
		t.Fatalf("reader group never fully admitted: %d inside", inside.Load())
	}
	if wWoke.Load() != 0 {
		t.Fatal("writer granted while the reader group holds")
	}
	close(hold)
	wg.Wait()

	if got := maxIn.Load(); got != nReaders {
		t.Fatalf("max concurrent readers = %d, want %d", got, nReaders)
	}
	snap := reg.Snapshot()
	if got := snap.Get(obs.EvBatchGrant); got != 1 {
		t.Fatalf("batch_grant = %d, want 1", got)
	}
	if got := snap.Get(obs.EvGrantFanout); got != uint64(nReaders) {
		t.Fatalf("grant_fanout = %d, want %d", got, nReaders)
	}
}

// TestSharedQueuerSchemes pins which schemes advertise the queued-shared
// capability: every OptiQL variant's lock implements SharedQueuer (on
// the same 8-byte word), and a trivial acquire/release round-trips.
func TestSharedQueuerSchemes(t *testing.T) {
	pool := core.NewPool(16)
	for _, name := range []string{"OptiQL", "OptiQL-NOR", "OptiQL-AOR"} {
		c := newCtx(t, pool)
		l := schemes[name].NewLock()
		sq, ok := l.(SharedQueuer)
		if !ok {
			t.Fatalf("%s lock does not implement SharedQueuer", name)
		}
		tok := sq.AcquireShQueued(c)
		sq.ReleaseShQueued(c, tok)
		if l.(*OptiQLLock).Core().IsLocked() {
			t.Fatalf("%s: lock still held after queued-shared round trip", name)
		}
	}
}
