package locks

import (
	"testing"

	"optiql/internal/core"
)

// TestSchemeCapabilityMethods pins the trivial capability methods of
// every lock variant.
func TestSchemeCapabilityMethods(t *testing.T) {
	pess := map[string]bool{
		"OptLock": false, "OptiQL": false, "OptiQL-NOR": false,
		"OptiQL-AOR": false, "OptLock-Backoff": false,
		"pthread": true, "MCS-RW": true, "TTS": true, "MCS": true, "CLH": true,
	}
	for name, want := range pess {
		l := MustByName(name).NewLock()
		if got := l.Pessimistic(); got != want {
			t.Errorf("%s.Pessimistic() = %v, want %v", name, got, want)
		}
		// CloseWindow must be callable with a zero token on every
		// variant without side effects on an unheld lock.
		l.CloseWindow(Token{})
	}
}

// TestQueuedHandoverPaths deterministically drives the contended
// acquire/release branches of the queue-based locks: one holder, one
// queued waiter, explicit handover.
func TestQueuedHandoverPaths(t *testing.T) {
	for _, name := range []string{"MCS", "CLH", "MCS-RW", "OptiQL", "OptiQL-NOR", "OptiQL-AOR"} {
		t.Run(name, func(t *testing.T) {
			pool := core.NewPool(16)
			l := MustByName(name).NewLock()
			c1 := NewCtx(pool, 4)
			defer c1.Close()

			tok := l.AcquireEx(c1)
			granted := make(chan struct{})
			done := make(chan struct{})
			go func() {
				c2 := NewCtx(pool, 4)
				defer c2.Close()
				tok2 := l.AcquireEx(c2) // must queue behind the holder
				close(granted)
				l.CloseWindow(tok2)
				l.ReleaseEx(c2, tok2)
				close(done)
			}()
			// Give the waiter time to enqueue; on one CPU a Gosched
			// storm inside AcquireEx guarantees it runs.
			for i := 0; i < 1000; i++ {
				select {
				case <-granted:
					t.Fatal("waiter granted while lock held")
				default:
				}
			}
			l.CloseWindow(tok)
			l.ReleaseEx(c1, tok) // handover path
			<-granted
			<-done
			// And the uncontended re-acquire still works.
			tok3 := l.AcquireEx(c1)
			l.ReleaseEx(c1, tok3)
		})
	}
}

// TestBackoffContended drives the backoff branch (CAS failure + delay).
func TestBackoffContended(t *testing.T) {
	pool := core.NewPool(8)
	l := new(OptLockBackoff)
	c1 := NewCtx(pool, 2)
	defer c1.Close()
	tok := l.AcquireEx(c1)
	acquired := make(chan struct{})
	go func() {
		c2 := NewCtx(pool, 2)
		defer c2.Close()
		t2 := l.AcquireEx(c2) // spins through the backoff path
		l.ReleaseEx(c2, t2)
		close(acquired)
	}()
	// Hold long enough that the waiter backs off at least once.
	for i := 0; i < 100000; i++ {
		_ = i
	}
	l.ReleaseEx(c1, tok)
	<-acquired
	// Upgrade on a locked word must fail fast.
	w := l.AcquireEx(c1)
	bad := Token{Version: l.word.Load()}
	if l.Upgrade(c1, &bad) {
		t.Fatal("upgrade succeeded on a locked snapshot")
	}
	l.ReleaseEx(c1, w)
}

// TestTokenAccessors covers the public token/ctx helpers.
func TestTokenAccessors(t *testing.T) {
	pool := core.NewPool(8)
	c := NewCtx(pool, 2)
	defer c.Close()
	l := NewOptiQL()
	tok := l.AcquireEx(c)
	if tok.QNode() == nil {
		t.Fatal("exclusive OptiQL token has no queue node")
	}
	l.ReleaseEx(c, tok)
	if a, b := c.Rand(), c.Rand(); a == b {
		t.Fatal("Ctx.Rand repeated")
	}
}

// TestMCSRWReleaseShNonCloser covers the non-group-tail reader release:
// two readers overlap, the first to be granted extends the group, and
// the non-tail one releases without structural work.
func TestMCSRWReleaseShNonCloser(t *testing.T) {
	pool := core.NewPool(16)
	l := new(MCSRW)
	c1 := NewCtx(pool, 4)
	defer c1.Close()

	// Block the lock with a writer so two readers queue back to back.
	wtok := l.AcquireEx(c1)
	var t1, t2 Token
	r1in := make(chan struct{})
	r2in := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c := NewCtx(pool, 4)
		defer c.Close()
		t1, _ = l.AcquireSh(c)
		close(r1in)
		<-release
		l.ReleaseSh(c, t1)
	}()
	var spin core.Spinner
	for l.tail.Load() == nil {
		spin.Spin()
	}
	go func() {
		c := NewCtx(pool, 4)
		defer c.Close()
		t2, _ = l.AcquireSh(c)
		close(r2in)
		l.ReleaseSh(c, t2) // r2 may or may not be the group tail
	}()
	// Wait for both to be queued behind the writer, then hand over.
	for i := 0; i < 1000; i++ {
		_ = i
	}
	l.ReleaseEx(c1, wtok)
	<-r1in
	<-r2in
	close(release)
	// Lock must end fully free.
	var s core.Spinner
	for {
		tok := l.AcquireEx(c1)
		l.ReleaseEx(c1, tok)
		break
	}
	_ = s
}
