package locks

import (
	"sync"
	"testing"

	"optiql/internal/core"
)

// TestExtensionSchemesRegistered covers the schemes beyond the paper's
// Figure 6 lineup.
func TestExtensionSchemesRegistered(t *testing.T) {
	ext := ExtendedNames()
	if len(ext) != len(AllNames())+2 {
		t.Fatalf("ExtendedNames = %v", ext)
	}
	bo := MustByName("OptLock-Backoff")
	if !bo.Optimistic || !bo.SharedMode || bo.QueueWriters {
		t.Fatalf("OptLock-Backoff capabilities wrong: %+v", bo)
	}
	clh := MustByName("CLH")
	if clh.Optimistic || clh.SharedMode {
		t.Fatalf("CLH capabilities wrong: %+v", clh)
	}
}

func TestCLHNoSharedMode(t *testing.T) {
	pool := core.NewPool(8)
	c := NewCtx(pool, 2)
	defer c.Close()
	l := MustByName("CLH").NewLock()
	defer func() {
		if recover() == nil {
			t.Fatal("CLH AcquireSh did not panic")
		}
	}()
	l.AcquireSh(c)
}

// TestCLHNodeRecycling drives enough handovers through a CLH lock that
// the freelist paths (immediate reclaim and successor reclaim) are
// both exercised, then re-checks mutual exclusion.
func TestCLHNodeRecycling(t *testing.T) {
	pool := core.NewPool(16)
	l := new(CLH)
	// Uncontended: immediate reclaim path.
	c := NewCtx(pool, 2)
	defer c.Close()
	for i := 0; i < 100; i++ {
		tok := l.AcquireEx(c)
		l.ReleaseEx(c, tok)
	}
	// Contended: successor-reclaim path.
	const goroutines, iters = 6, 2000
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wc := NewCtx(pool, 2)
			defer wc.Close()
			for i := 0; i < iters; i++ {
				tok := l.AcquireEx(wc)
				counter++
				l.ReleaseEx(wc, tok)
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}

// TestBackoffOptimisticSemantics checks the backoff variant preserves
// OptLock's reader/upgrade semantics.
func TestBackoffOptimisticSemantics(t *testing.T) {
	pool := core.NewPool(8)
	c := NewCtx(pool, 2)
	defer c.Close()
	l := new(OptLockBackoff)

	tok, ok := l.AcquireSh(c)
	if !ok {
		t.Fatal("read rejected on fresh lock")
	}
	w := l.AcquireEx(c)
	if _, ok := l.AcquireSh(c); ok {
		t.Fatal("read admitted while locked")
	}
	l.ReleaseEx(c, w)
	if l.ReleaseSh(c, tok) {
		t.Fatal("stale validation passed")
	}
	tok2, _ := l.AcquireSh(c)
	if !l.Upgrade(c, &tok2) {
		t.Fatal("upgrade failed on quiescent lock")
	}
	l.ReleaseEx(c, tok2)
}
