package locks

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"optiql/internal/core"
	"optiql/internal/obs/trace"
)

// TestTraceLockSpans drives the traced acquire paths of every scheme
// that records lock-wait spans, with concurrent workers and a live
// snapshot scraper, so the CI -race run covers record-vs-scrape on
// real lock traffic (not just the synthetic trace package tests).
func TestTraceLockSpans(t *testing.T) {
	for _, name := range []string{"OptiQL", "OptiQL-AOR", "OptLock", "MCS-RW"} {
		t.Run(name, func(t *testing.T) {
			tr := trace.New(trace.Config{SampleEvery: 1, BufCap: 256, TopK: 8})
			l := MustByName(name).NewLock()
			pool := core.NewPool(64)
			const workers = 4
			const iters = 1500
			var wg sync.WaitGroup
			stop := make(chan struct{})
			go func() {
				for {
					select {
					case <-stop:
						return
					default:
					}
					_ = tr.Snapshot()
				}
			}()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					c := NewCtx(pool, 8)
					defer c.Close()
					c.SetTrace(tr.NewBuf(0, w))
					if c.Trace() == nil {
						t.Error("Trace() lost the buffer")
						return
					}
					for i := 0; i < iters; i++ {
						tok := l.AcquireEx(c)
						l.CloseWindow(tok)
						l.ReleaseEx(c, tok)
						if st, ok := l.AcquireSh(c); ok {
							l.ReleaseSh(c, st)
						}
						c.TraceRestart(uint64(i % 7))
					}
				}(w)
			}
			wg.Wait()
			close(stop)
			snap := tr.Snapshot()
			if want := uint64(workers * iters); snap.Wait.Count() != want {
				t.Fatalf("lock-wait histogram count = %d, want %d (every acquire sampled)", snap.Wait.Count(), want)
			}
			if len(snap.Nodes) == 0 {
				t.Fatal("no hot nodes: LockWait must feed the node sketch")
			}
			if len(snap.Keys) == 0 {
				t.Fatal("no hot keys: TraceRestart must feed the key sketch")
			}
			var buf bytes.Buffer
			if err := tr.WriteChrome(&buf); err != nil {
				t.Fatal(err)
			}
			if !json.Valid(buf.Bytes()) {
				t.Fatal("chrome export invalid")
			}
		})
	}
}

// TestTraceDisabledIsFree checks the disabled path stays allocation
// free and records nothing: a Ctx without SetTrace must behave exactly
// as before this subsystem existed.
func TestTraceDisabledNoop(t *testing.T) {
	pool := core.NewPool(8)
	c := NewCtx(pool, 4)
	defer c.Close()
	l := MustByName("OptiQL").NewLock()
	allocs := testing.AllocsPerRun(1000, func() {
		tok := l.AcquireEx(c)
		l.ReleaseEx(c, tok)
		c.TraceRestart(1)
	})
	if allocs != 0 {
		t.Fatalf("untraced lock path allocates: %v allocs/op", allocs)
	}
}
