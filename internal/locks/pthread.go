package locks

import (
	"sync"

	"optiql/internal/obs"
)

// Pthread wraps the platform's blocking reader-writer lock
// (sync.RWMutex), playing the role of pthread_rwlock_t in the paper's
// comparison: pessimistic, larger than 8 bytes, and queue/futex-backed
// under contention.
type Pthread struct {
	mu sync.RWMutex
}

// AcquireSh blocks until the read lock is held; it always succeeds.
func (l *Pthread) AcquireSh(_ *Ctx) (Token, bool) {
	l.mu.RLock()
	return Token{}, true
}

// ReleaseSh drops the read lock; validation trivially succeeds.
func (l *Pthread) ReleaseSh(_ *Ctx, _ Token) bool {
	l.mu.RUnlock()
	return true
}

// AcquireEx blocks until the write lock is held. The futex-backed lock
// exposes no handover/free distinction, so every grant counts as free.
func (l *Pthread) AcquireEx(c *Ctx) Token {
	l.mu.Lock()
	c.Counters().Inc(obs.EvExFree)
	return Token{}
}

// ReleaseEx drops the write lock.
func (l *Pthread) ReleaseEx(_ *Ctx, _ Token) {
	l.mu.Unlock()
}

// Upgrade is unsupported (pthread rwlocks cannot upgrade atomically).
func (l *Pthread) Upgrade(_ *Ctx, _ *Token) bool { return false }

// CloseWindow is a no-op.
func (l *Pthread) CloseWindow(Token) {}

// Pessimistic reports true.
func (l *Pthread) Pessimistic() bool { return true }
