package locks

import (
	"sync/atomic"

	"optiql/internal/core"
	"optiql/internal/obs"
)

// TTS is the classic test-and-test-and-set spinlock of Figure 2(a):
// exclusive-only, centralized, no reader support. It is included as a
// reference point for writer performance, as in the paper's Figure 6.
type TTS struct {
	word atomic.Uint64
}

// AcquireSh is unsupported: TTS has no shared mode.
func (l *TTS) AcquireSh(_ *Ctx) (Token, bool) {
	panic("locks: TTS does not support shared mode")
}

// ReleaseSh is unsupported: TTS has no shared mode.
func (l *TTS) ReleaseSh(_ *Ctx, _ Token) bool {
	panic("locks: TTS does not support shared mode")
}

// AcquireEx spins until the lock is taken: test (plain load), then
// test-and-set (CAS) only when the lock looks free. Centralized, so
// every grant is a free-word acquisition.
func (l *TTS) AcquireEx(c *Ctx) Token {
	var s core.Spinner
	for {
		if l.word.Load() == 0 && l.word.CompareAndSwap(0, 1) {
			c.Counters().Inc(obs.EvExFree)
			return Token{}
		}
		s.Spin()
	}
}

// ReleaseEx clears the lock word.
func (l *TTS) ReleaseEx(_ *Ctx, _ Token) {
	l.word.Store(0)
}

// Upgrade is unsupported.
func (l *TTS) Upgrade(_ *Ctx, _ *Token) bool { return false }

// CloseWindow is a no-op.
func (l *TTS) CloseWindow(Token) {}

// Pessimistic reports true: there are no optimistic readers.
func (l *TTS) Pessimistic() bool { return true }
