// Package locks provides the lock primitives evaluated in the OptiQL
// paper behind one uniform interface: the centralized optimistic lock
// (OptLock), TTS and MCS exclusive locks, a fair queue-based
// reader-writer lock (MCS-RW), a blocking reader-writer lock backed by
// sync.RWMutex (the "pthread" variant), and the OptiQL variants
// (default, NOR, AOR) built on internal/core.
//
// The interface mirrors the paper's API split: shared ("reader")
// operations are optimistic try-style calls that never block on
// optimistic locks, while exclusive ("writer") operations block until
// granted and, for queue-based locks, consume a queue node from the
// caller's Ctx.
package locks

import (
	"sync/atomic"
	"unsafe"

	"optiql/internal/core"
	"optiql/internal/kv"
	"optiql/internal/obs"
	"optiql/internal/obs/trace"
)

// ctxSeq seeds each Ctx's private RNG distinctly.
var ctxSeq atomic.Uint64

// Token carries per-acquisition state between an acquire and its
// matching release: the version snapshot for optimistic readers, and
// the queue node for queue-based locks. It is a value type; callers
// keep it on the stack.
type Token struct {
	// Version is the lock-word snapshot for optimistic shared
	// acquisitions, used for validation at ReleaseSh.
	Version uint64
	q       *core.QNode
	rw      *rwNode
	clh     *clhNode
}

// QNode returns the OptiQL queue node held by this token, if any.
func (t Token) QNode() *core.QNode { return t.q }

// Lock is the uniform lock interface used by the index substrates and
// the microbenchmark framework.
//
// Optimistic locks implement AcquireSh/ReleaseSh as non-blocking
// snapshot/validate pairs that may fail (ok=false), in which case the
// caller restarts its operation. Pessimistic locks block in AcquireSh
// and always succeed.
type Lock interface {
	// AcquireSh begins a shared (read) access. For optimistic locks it
	// never writes shared memory and may return ok=false, meaning the
	// caller must retry. For pessimistic locks it blocks until granted.
	AcquireSh(c *Ctx) (Token, bool)
	// ReleaseSh ends a shared access. For optimistic locks it validates
	// the token's version and returns false if the protected data may
	// have changed; for pessimistic locks it unlocks and returns true.
	ReleaseSh(c *Ctx, t Token) bool
	// AcquireEx blocks until the lock is granted exclusively.
	AcquireEx(c *Ctx) Token
	// ReleaseEx releases an exclusive acquisition.
	ReleaseEx(c *Ctx, t Token)
	// Upgrade attempts to convert a shared acquisition into an
	// exclusive one without blocking. On success the token is updated
	// for use with ReleaseEx. Locks that do not support upgrading
	// return false.
	Upgrade(c *Ctx, t *Token) bool
	// CloseWindow closes the opportunistic read window on locks that
	// defer closing it (the AOR variant); a no-op elsewhere. Callers
	// invoke it after read-only preparation and before the first
	// modification of the protected data.
	CloseWindow(t Token)
	// Pessimistic reports whether shared acquisitions block (and thus
	// never fail validation).
	Pessimistic() bool
}

// SharedQueuer is implemented by locks whose wait queue admits shared
// requesters, enabling release-to-many: a single release hands the lock
// to a maximal prefix of compatible queued-shared waiters in one batch
// grant. OptiQL implements it via the queued-shared protocol layered on
// the same 8-byte word (readers carry the version unchanged); MCS-RW's
// reader groups are the pessimistic analogue and are batch-granted
// through its ordinary AcquireSh/ReleaseSh.
type SharedQueuer interface {
	Lock
	// AcquireShQueued joins the FIFO wait queue as a shared requester
	// and blocks until granted (alone, with its compatible neighbours
	// by a batch grant, or by taking the free lock directly).
	AcquireShQueued(c *Ctx) Token
	// ReleaseShQueued ends a queued-shared hold begun with
	// AcquireShQueued. The last member of a granted group performs the
	// structural handover on the group's behalf.
	ReleaseShQueued(c *Ctx, t Token)
}

// countFanout accounts a release's handover fanout: a release that woke
// two or more waiters at once is a batch grant.
//
//optiql:noalloc
func countFanout(c *Ctx, fan int) {
	if fan > 1 {
		c.Counters().Inc(obs.EvBatchGrant)
		c.Counters().Add(obs.EvGrantFanout, uint64(fan))
	}
}

// Ctx holds the per-thread resources lock operations draw from: OptiQL
// queue nodes reserved from a core.Pool and locally allocated
// reader-writer queue nodes. A Ctx must not be used concurrently;
// create one per worker goroutine.
type Ctx struct {
	pool *core.Pool
	q    []*core.QNode
	rw   []*rwNode
	rng  uint64
	// free is this worker's node-recycling cache: one small stack per
	// Recycler slot (see recycle.go), flushed to the shared pools on
	// Close.
	free [recycleSlots]freeCache
	// obs is this worker's event counter set; nil disables counting
	// (obs.Counters methods are nil-safe no-ops). Lock adapters and the
	// index substrates bump it — never internal/core, whose 8-byte word
	// operations stay instrumentation-free by design.
	obs *obs.Counters
	// tr is this worker's sampled trace buffer; nil disables tracing
	// (trace.Buf methods are nil-safe no-ops). Same layering rule as
	// obs: lock adapters and substrates record, internal/core never.
	tr *trace.Buf
	// scanStage is this worker's staging buffer for index scans over
	// fanouts too large for the scanner's stack scratch. Lazily grown,
	// then reused for the Ctx's lifetime, so steady-state scans stay
	// allocation-free at any fanout. Single-threaded like the rest of
	// the Ctx: the scan must finish with the buffer before returning.
	scanStage []kv.KV
}

// ScanStage returns a per-worker scratch buffer with capacity for at
// least n pairs and length zero. The buffer is owned by the Ctx — the
// caller must stop using it before the next ScanStage call on the
// same Ctx (index scans stage one leaf at a time and copy out, so
// this holds by construction).
func (c *Ctx) ScanStage(n int) []kv.KV {
	if cap(c.scanStage) < n {
		c.scanStage = make([]kv.KV, 0, n)
	}
	return c.scanStage[:0]
}

// SetCounters attaches the worker's event counter set (nil disables
// counting). Call it right after NewCtx, before the Ctx is used.
func (c *Ctx) SetCounters(ctr *obs.Counters) { c.obs = ctr }

// Counters returns the attached counter set; it may be nil, which all
// obs.Counters methods treat as a disabled no-op set, so callers can
// bump events unconditionally: c.Counters().Inc(obs.EvOpRestart).
func (c *Ctx) Counters() *obs.Counters { return c.obs }

// SetTrace attaches the worker's sampled trace buffer (nil disables
// tracing). Call it right after NewCtx, before the Ctx is used.
func (c *Ctx) SetTrace(b *trace.Buf) { c.tr = b }

// Trace returns the attached trace buffer; it may be nil, which all
// trace.Buf methods treat as a disabled no-op buffer.
func (c *Ctx) Trace() *trace.Buf { return c.tr }

// TraceRestart records a sampled operation-restart event for the key
// an index operation is retrying, feeding both the span ring and the
// hot-key sketch — restart chains on one key are the clearest hot-spot
// signal the contention engine has.
//
//optiql:noalloc
func (c *Ctx) TraceRestart(key uint64) {
	tb := c.tr
	if !tb.Sample() {
		return
	}
	tb.Event(trace.KindOpRestart, 0, key)
	tb.NoteKey(-1, key)
}

// lockID derives a stable identity for a lock from its address, used
// as the hot-node key in trace sketches. Only the integer value is
// recorded; the pointer itself never escapes the lock layer.
//
//optiql:noalloc
func lockID(p unsafe.Pointer) uint64 { return uint64(uintptr(p)) }

// Rand returns the next value of a per-thread xorshift64* generator,
// used for cheap probabilistic decisions on lock-protected paths (such
// as sampling the ART contention counter) without contending on a
// shared RNG.
func (c *Ctx) Rand() uint64 {
	x := c.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.rng = x
	return x * 0x2545F4914F6CDD1D
}

// DefaultCtxQNodes is how many OptiQL queue nodes a Ctx reserves. Index
// operations hold at most two queue-based locks at once (Section 6.1),
// so a small fixed reserve suffices.
const DefaultCtxQNodes = 8

// NewCtx reserves nq queue nodes from pool (DefaultCtxQNodes if nq<=0)
// for use by this thread's lock operations.
func NewCtx(pool *core.Pool, nq int) *Ctx {
	if nq <= 0 {
		nq = DefaultCtxQNodes
	}
	c := &Ctx{pool: pool}
	c.rng = uint64(ctxSeq.Add(1))*0x9E3779B97F4A7C15 | 1
	c.q = make([]*core.QNode, 0, nq)
	for i := 0; i < nq; i++ {
		c.q = append(c.q, pool.Get())
	}
	c.rw = make([]*rwNode, 0, 16)
	for i := 0; i < 16; i++ {
		c.rw = append(c.rw, new(rwNode))
	}
	return c
}

// Close returns the reserved queue nodes to the pool. The Ctx must not
// be used afterwards.
func (c *Ctx) Close() {
	for _, q := range c.q {
		c.pool.Put(q)
	}
	c.q = nil
	c.rw = nil
	for i := range c.free {
		if c.free[i].owner != nil {
			c.free[i].flush()
		}
	}
}

func (c *Ctx) getQ() *core.QNode {
	n := len(c.q)
	if n == 0 {
		panic("locks: Ctx out of queue nodes; operation holds too many queue-based locks")
	}
	q := c.q[n-1]
	c.q = c.q[:n-1]
	return q
}

func (c *Ctx) putQ(q *core.QNode) { c.q = append(c.q, q) }

func (c *Ctx) getRW() *rwNode {
	n := len(c.rw)
	if n == 0 {
		panic("locks: Ctx out of reader-writer queue nodes")
	}
	r := c.rw[n-1]
	c.rw = c.rw[:n-1]
	return r
}

func (c *Ctx) putRW(r *rwNode) { c.rw = append(c.rw, r) }
