package locks

import (
	"unsafe"

	"optiql/internal/core"
	"optiql/internal/obs"
	"optiql/internal/obs/trace"
)

// orMode selects how an OptiQLLock drives the opportunistic read
// window, covering the three variants evaluated in the paper.
type orMode uint8

const (
	// orOn is standard OptiQL: the window opens at writer-to-writer
	// handover and the incoming writer closes it as it is granted.
	orOn orMode = iota
	// orOff is OptiQL-NOR: the window never opens; readers succeed only
	// while the writer queue is completely empty.
	orOff
	// orAdjustable is OptiQL-AOR: the incoming writer leaves the window
	// open and the caller closes it (CloseWindow) just before its first
	// modification, admitting more readers during read-only preparation
	// such as the leaf search in a B+-tree update.
	orAdjustable
)

// OptiQLLock adapts core.OptiQL to the uniform Lock interface. Use
// NewOptiQL, NewOptiQLNOR or NewOptiQLAOR to pick the variant.
type OptiQLLock struct {
	l    core.OptiQL
	mode orMode
}

// NewOptiQL returns a standard OptiQL lock (opportunistic read on).
func NewOptiQL() *OptiQLLock { return &OptiQLLock{mode: orOn} }

// NewOptiQLNOR returns the no-opportunistic-read variant.
func NewOptiQLNOR() *OptiQLLock { return &OptiQLLock{mode: orOff} }

// NewOptiQLAOR returns the adjustable-opportunistic-read variant; the
// caller must invoke CloseWindow between AcquireEx and the first write
// to the protected data.
func NewOptiQLAOR() *OptiQLLock { return &OptiQLLock{mode: orAdjustable} }

// Core exposes the underlying core lock (diagnostics and tests).
func (l *OptiQLLock) Core() *core.OptiQL { return &l.l }

// AcquireSh begins an optimistic read: one load, no shared-memory
// writes, regardless of variant.
//
//optiql:noalloc
func (l *OptiQLLock) AcquireSh(c *Ctx) (Token, bool) {
	v, ok := l.l.AcquireSh()
	if !ok {
		c.Counters().Inc(obs.EvShAcquireFail)
	} else if v&core.StatusMask == core.LockedBit|core.OpReadBit {
		// Admitted through an open opportunistic read window — a read
		// only the OR/AOR protocol admits while a writer holds the lock.
		c.Counters().Inc(obs.EvShOpportunistic)
		if tb := c.tr; tb.Sample() {
			tb.Event(trace.KindLockOpportunistic, 0, lockID(unsafe.Pointer(l)))
		}
	}
	return Token{Version: v}, ok
}

// ReleaseSh validates the optimistic read.
//
//optiql:noalloc
func (l *OptiQLLock) ReleaseSh(c *Ctx, t Token) bool {
	ok := l.l.ReleaseSh(t.Version)
	if !ok {
		c.Counters().Inc(obs.EvShValidateFail)
		if tb := c.tr; tb.Sample() {
			id := lockID(unsafe.Pointer(l))
			tb.Event(trace.KindLockReadFail, 0, id)
			tb.NoteNode(id)
		}
	}
	return ok
}

// AcquireEx joins the writer queue with a queue node drawn from the
// Ctx and blocks until granted.
//
//optiql:noalloc
func (l *OptiQLLock) AcquireEx(c *Ctx) Token {
	q := c.getQ()
	// The sampling decision and clock read happen outside the lock's
	// word operations: a sampled acquire reads the clock twice; an
	// unsampled one pays one counter increment.
	tb := c.tr
	sampled := tb.Sample()
	var t0 int64
	if sampled {
		t0 = tb.Now()
	}
	var handover bool
	if l.mode == orAdjustable {
		handover = l.l.AcquireExAOR(q)
	} else {
		handover = l.l.AcquireEx(q)
	}
	if handover {
		c.Counters().Inc(obs.EvExHandover)
	} else {
		c.Counters().Inc(obs.EvExFree)
	}
	if sampled {
		var fl uint8
		if handover {
			fl = trace.FlagHandover
		}
		tb.LockWait(t0, tb.Now()-t0, fl, lockID(unsafe.Pointer(l)))
	}
	return Token{q: q}
}

// ReleaseEx releases the exclusive hold, opening the opportunistic
// window for the successor unless the variant is NOR.
//
//optiql:noalloc
func (l *OptiQLLock) ReleaseEx(c *Ctx, t Token) {
	if l.mode == orAdjustable {
		// The release protocol requires the window to be closed; make
		// that unconditional (idempotent) rather than deadlock if a
		// caller path skipped CloseWindow.
		l.l.CloseWindow()
	}
	var fan int
	if l.mode == orOff {
		fan = l.l.ReleaseExNoOR(t.q)
	} else {
		fan = l.l.ReleaseEx(t.q)
	}
	countFanout(c, fan)
	c.putQ(t.q)
}

// AcquireShQueued joins the writer queue as a pessimistic shared
// requester (SharedQueuer): instead of optimistic snapshot/validate, the
// reader takes a queue node and is granted — together with all
// compatible neighbours, by one batch grant — in FIFO order. Intended
// for contention fallback: an optimistic reader stuck in a restart
// storm can queue once and is then immune to further validation
// failures during its read.
//
//optiql:noalloc
func (l *OptiQLLock) AcquireShQueued(c *Ctx) Token {
	q := c.getQ()
	tb := c.tr
	sampled := tb.Sample()
	var t0 int64
	if sampled {
		t0 = tb.Now()
	}
	handover := l.l.AcquireShQueued(q, l.mode != orOff)
	if sampled {
		var fl uint8
		if handover {
			fl = trace.FlagHandover
		}
		tb.LockWait(t0, tb.Now()-t0, fl, lockID(unsafe.Pointer(l)))
	}
	return Token{q: q}
}

// ReleaseShQueued ends a queued-shared hold; the group's last member
// hands over to the next compatible prefix (counted as a batch grant
// when the fanout exceeds one).
//
//optiql:noalloc
func (l *OptiQLLock) ReleaseShQueued(c *Ctx, t Token) {
	fan := l.l.ReleaseShQueued(t.q, l.mode != orOff)
	countFanout(c, fan)
	c.putQ(t.q)
}

// Upgrade converts a validated optimistic read into an exclusive hold
// while keeping the queueing behaviour for subsequent writers
// (Section 6.2, added for ART).
//
//optiql:noalloc
func (l *OptiQLLock) Upgrade(c *Ctx, t *Token) bool {
	q := c.getQ()
	if !l.l.Upgrade(t.Version, q) {
		c.putQ(q)
		c.Counters().Inc(obs.EvUpgradeFail)
		if tb := c.tr; tb.Sample() {
			id := lockID(unsafe.Pointer(l))
			tb.Event(trace.KindLockUpgradeFail, 0, id)
			tb.NoteNode(id)
		}
		return false
	}
	t.q = q
	c.Counters().Inc(obs.EvUpgradeOK)
	return true
}

// CloseWindow closes the deferred opportunistic window of the AOR
// variant; a no-op for the others (their window is already closed by
// the time AcquireEx returns).
//
//optiql:noalloc
func (l *OptiQLLock) CloseWindow(Token) {
	if l.mode == orAdjustable {
		l.l.CloseWindow()
	}
}

// Pessimistic reports false: readers are optimistic.
func (l *OptiQLLock) Pessimistic() bool { return false }

// BumpVersion advances the version of an unlocked word (node
// recycling; see recycle.go and core.OptiQL.BumpVersion).
//
//optiql:noalloc
func (l *OptiQLLock) BumpVersion() { l.l.BumpVersion() }
