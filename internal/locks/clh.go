package locks

import (
	"sync/atomic"

	"optiql/internal/core"
	"optiql/internal/obs"
)

// clhNode is a CLH queue node: requesters spin on their *predecessor's*
// node rather than their own, so nodes migrate between threads and are
// recycled through a per-lock freelist instead of the caller's Ctx.
type clhNode struct {
	locked atomic.Uint32
	_      [60]byte
}

// CLH is the Craig / Landin-Hagersten queue lock [9, 35], the other
// classic queue-based mutual-exclusion design the paper's related work
// discusses (OptiQL chose MCS; adapting CLH with optimistic reads is
// left as future work there). Included as an exclusive-only reference
// point alongside MCS.
type CLH struct {
	tail atomic.Pointer[clhNode]
	free atomic.Pointer[clhFree]
}

type clhFree struct {
	n    *clhNode
	next *clhFree
}

// AcquireSh is unsupported: CLH is a mutual-exclusion lock.
func (l *CLH) AcquireSh(_ *Ctx) (Token, bool) {
	panic("locks: CLH does not support shared mode")
}

// ReleaseSh is unsupported.
func (l *CLH) ReleaseSh(_ *Ctx, _ Token) bool {
	panic("locks: CLH does not support shared mode")
}

// AcquireEx enqueues a locked node and spins on the predecessor's.
// The token's Version smuggles the predecessor node through to
// ReleaseEx via the freelist (the caller releases with its own node
// becoming the successor's predecessor).
func (l *CLH) AcquireEx(c *Ctx) Token {
	n := l.getNode()
	n.locked.Store(1)
	pred := l.tail.Swap(n)
	if pred != nil {
		var s core.Spinner
		for pred.locked.Load() != 0 {
			s.Spin()
		}
		l.putNode(pred) // predecessor's node is now ours to recycle
		c.Counters().Inc(obs.EvExHandover)
	} else {
		c.Counters().Inc(obs.EvExFree)
	}
	return Token{clh: n}
}

// ReleaseEx clears this holder's node, granting the successor (which
// spins on it). The node itself is recycled by the successor.
func (l *CLH) ReleaseEx(_ *Ctx, t Token) {
	n := t.clh
	// If nobody queued behind us, try to reset the tail and reclaim the
	// node immediately.
	if l.tail.CompareAndSwap(n, nil) {
		l.putNode(n)
		return
	}
	n.locked.Store(0)
}

func (l *CLH) getNode() *clhNode {
	for {
		head := l.free.Load()
		if head == nil {
			return new(clhNode)
		}
		if l.free.CompareAndSwap(head, head.next) {
			return head.n
		}
	}
}

func (l *CLH) putNode(n *clhNode) {
	for {
		head := l.free.Load()
		f := &clhFree{n: n, next: head}
		if l.free.CompareAndSwap(head, f) {
			return
		}
	}
}

// Upgrade is unsupported.
func (l *CLH) Upgrade(_ *Ctx, _ *Token) bool { return false }

// CloseWindow is a no-op.
func (l *CLH) CloseWindow(Token) {}

// Pessimistic reports true.
func (l *CLH) Pessimistic() bool { return true }
