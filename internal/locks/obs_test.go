package locks

import (
	"testing"

	"optiql/internal/core"
	"optiql/internal/obs"
)

// newObsCtx returns a Ctx wired to a fresh counter set from reg.
func newObsCtx(t *testing.T, pool *core.Pool, reg *obs.Registry) *Ctx {
	t.Helper()
	c := NewCtx(pool, 4)
	c.SetCounters(reg.NewCounters())
	t.Cleanup(c.Close)
	return c
}

// TestOptLockCounters drives OptLock through a known single-threaded
// operation sequence and asserts the exact counter values it produces.
func TestOptLockCounters(t *testing.T) {
	pool := core.NewPool(8)
	reg := obs.NewRegistry()
	c := newObsCtx(t, pool, reg)
	l := new(OptLock)

	// A clean read counts nothing.
	tok, ok := l.AcquireSh(c)
	if !ok || !l.ReleaseSh(c, tok) {
		t.Fatal("read on free lock must succeed")
	}

	// 3 shared acquires while the lock is held: 3 acquire failures.
	w := l.AcquireEx(c) // +1 ex_acquire_free
	for i := 0; i < 3; i++ {
		if _, ok := l.AcquireSh(c); ok {
			t.Fatal("read while locked must fail")
		}
	}
	l.ReleaseEx(c, w)

	// 2 reads invalidated by an intervening writer: 2 validation
	// failures (and 2 more free exclusive acquisitions).
	for i := 0; i < 2; i++ {
		tok, ok := l.AcquireSh(c)
		if !ok {
			t.Fatal("read on free lock must succeed")
		}
		w := l.AcquireEx(c) // +1 ex_acquire_free
		l.ReleaseEx(c, w)
		if l.ReleaseSh(c, tok) {
			t.Fatal("validation after a write must fail")
		}
	}

	// One successful upgrade, then one failed (stale snapshot).
	tok, _ = l.AcquireSh(c)
	if !l.Upgrade(c, &tok) {
		t.Fatal("upgrade from clean snapshot must succeed")
	}
	l.ReleaseEx(c, tok)
	tok, _ = l.AcquireSh(c)
	w = l.AcquireEx(c) // +1 ex_acquire_free
	l.ReleaseEx(c, w)
	if l.Upgrade(c, &tok) {
		t.Fatal("upgrade from stale snapshot must fail")
	}

	want := map[obs.Event]uint64{
		obs.EvShAcquireFail:  3,
		obs.EvShValidateFail: 2,
		obs.EvExFree:         4,
		obs.EvExHandover:     0,
		obs.EvUpgradeOK:      1,
		obs.EvUpgradeFail:    1,
	}
	snap := reg.Snapshot()
	for e, n := range want {
		if got := snap.Get(e); got != n {
			t.Errorf("%s = %d, want %d", e.Name(), got, n)
		}
	}
}

// TestOptiQLCountersHandover forces a deterministic writer-to-writer
// queue handover on the AOR variant and checks the free/handover split,
// the opportunistic-read admission count, and window-close effects.
func TestOptiQLCountersHandover(t *testing.T) {
	pool := core.NewPool(16)
	reg := obs.NewRegistry()
	ca := newObsCtx(t, pool, reg) // writer A (main goroutine)
	cr := newObsCtx(t, pool, reg) // reader (main goroutine)
	l := NewOptiQLAOR()

	tokA := l.AcquireEx(ca) // free acquisition: +1 ex_acquire_free on ca
	held := l.Core().Word()

	// Writer B queues behind A in its own goroutine (its Ctx is used
	// only there until the channel send synchronizes).
	cb := NewCtx(pool, 4)
	cb.SetCounters(reg.NewCounters())
	defer cb.Close()
	tokB := make(chan Token)
	go func() {
		tokB <- l.AcquireEx(cb) // handover: +1 ex_acquire_handover on cb
	}()

	// Wait until B has swapped itself onto the lock word, then release:
	// the release protocol opens the opportunistic window and hands the
	// lock to B; being AOR, B leaves the window open.
	var s core.Spinner
	for l.Core().Word() == held {
		s.Spin()
	}
	l.ReleaseEx(ca, tokA)
	b := <-tokB

	// B holds the lock with the window open: the reader is admitted
	// opportunistically and validates (the word is stable until B
	// closes the window).
	rt, ok := l.AcquireSh(cr)
	if !ok {
		t.Fatal("reader must be admitted through the open window")
	}
	if !l.ReleaseSh(cr, rt) {
		t.Fatal("validation must succeed while the window stays open")
	}

	// Closing the window flips the word: a fresh shared acquire now
	// fails up front, and the pre-close snapshot no longer validates.
	l.CloseWindow(b)
	if _, ok := l.AcquireSh(cr); ok {
		t.Fatal("reader must be rejected after the window closes")
	}
	if l.ReleaseSh(cr, rt) {
		t.Fatal("pre-close snapshot must fail validation")
	}
	l.ReleaseEx(cb, b)

	snap := reg.Snapshot()
	want := map[obs.Event]uint64{
		obs.EvShOpportunistic: 1,
		obs.EvShAcquireFail:   1,
		obs.EvShValidateFail:  1,
		obs.EvExFree:          1,
		obs.EvExHandover:      1,
	}
	for e, n := range want {
		if got := snap.Get(e); got != n {
			t.Errorf("%s = %d, want %d", e.Name(), got, n)
		}
	}
}

// TestOptiQLUpgradeCounters checks the upgrade success/failure counts
// on the OptiQL adapter (the ART try-lock path).
func TestOptiQLUpgradeCounters(t *testing.T) {
	pool := core.NewPool(8)
	reg := obs.NewRegistry()
	c := newObsCtx(t, pool, reg)
	l := NewOptiQL()

	tok, _ := l.AcquireSh(c)
	if !l.Upgrade(c, &tok) {
		t.Fatal("upgrade from clean snapshot must succeed")
	}
	l.ReleaseEx(c, tok)

	tok, _ = l.AcquireSh(c)
	w := l.AcquireEx(c)
	l.ReleaseEx(c, w)
	if l.Upgrade(c, &tok) {
		t.Fatal("upgrade from stale snapshot must fail")
	}

	snap := reg.Snapshot()
	if got := snap.Get(obs.EvUpgradeOK); got != 1 {
		t.Errorf("upgrade_ok = %d, want 1", got)
	}
	if got := snap.Get(obs.EvUpgradeFail); got != 1 {
		t.Errorf("upgrade_fail = %d, want 1", got)
	}
}

// TestQueueLockHandoverCounters checks the free/handover split on the
// exclusive-only queue locks (MCS, CLH) and MCS-RW.
func TestQueueLockHandoverCounters(t *testing.T) {
	for _, name := range []string{"MCS", "CLH", "MCS-RW"} {
		t.Run(name, func(t *testing.T) {
			pool := core.NewPool(16)
			reg := obs.NewRegistry()
			ca := newObsCtx(t, pool, reg)
			l := MustByName(name).NewLock()

			tokA := l.AcquireEx(ca) // +1 ex_acquire_free

			cb := NewCtx(pool, 4)
			cb.SetCounters(reg.NewCounters())
			defer cb.Close()
			done := make(chan struct{})
			go func() {
				tokB := l.AcquireEx(cb) // +1 ex_acquire_handover
				l.ReleaseEx(cb, tokB)
				close(done)
			}()
			// B is parked behind A (or yet to arrive — the handover CAS
			// in A's release resolves either way); release and wait.
			l.ReleaseEx(ca, tokA)
			<-done

			snap := reg.Snapshot()
			free, hand := snap.Get(obs.EvExFree), snap.Get(obs.EvExHandover)
			if free+hand != 2 || free < 1 {
				t.Fatalf("free=%d handover=%d, want 2 acquisitions with >=1 free", free, hand)
			}
		})
	}
}

// TestCountersDisabledByDefault verifies a Ctx without SetCounters is a
// no-op (nil-safe) on every adapter path rather than a panic.
func TestCountersDisabledByDefault(t *testing.T) {
	pool := core.NewPool(8)
	c := NewCtx(pool, 4)
	defer c.Close()
	if c.Counters() != nil {
		t.Fatal("fresh Ctx must have nil counters")
	}
	for _, name := range ExtendedNames() {
		s := MustByName(name)
		l := s.NewLock()
		tok := l.AcquireEx(c)
		l.ReleaseEx(c, tok)
		if s.SharedMode {
			tok, ok := l.AcquireSh(c)
			if ok {
				l.ReleaseSh(c, tok)
			}
		}
	}
}
