package locks

import (
	"sync/atomic"
	"unsafe"

	"optiql/internal/core"
	"optiql/internal/obs"
	"optiql/internal/obs/trace"
)

// optLockedBit is the most significant bit of the OptLock word, exactly
// as in Figure 2(b) of the paper.
const optLockedBit = uint64(1) << 63

// OptLock is the centralized optimistic lock used by BTreeOLC, ART and
// other memory-optimized indexes: a TTS-style spinlock whose 8-byte
// word also carries a version counter incremented on every release.
// Readers snapshot the word and validate it; writers CAS the locked bit
// and retry centrally — the behaviour that collapses under contention
// and that OptiQL is designed to fix.
//
// The zero value is an unlocked lock at version zero.
type OptLock struct {
	word atomic.Uint64
}

// Word returns the raw lock word (diagnostics and tests).
func (l *OptLock) Word() uint64 { return l.word.Load() }

// AcquireSh snapshots the word; the read may proceed iff the locked bit
// is clear.
//
//optiql:noalloc
func (l *OptLock) AcquireSh(c *Ctx) (Token, bool) {
	v := l.word.Load()
	ok := v&optLockedBit == 0
	if !ok {
		c.Counters().Inc(obs.EvShAcquireFail)
	}
	return Token{Version: v}, ok
}

// ReleaseSh validates that the word is unchanged since AcquireSh.
//
//optiql:noalloc
func (l *OptLock) ReleaseSh(c *Ctx, t Token) bool {
	ok := l.word.Load() == t.Version
	if !ok {
		c.Counters().Inc(obs.EvShValidateFail)
		if tb := c.tr; tb.Sample() {
			id := lockID(unsafe.Pointer(l))
			tb.Event(trace.KindLockReadFail, 0, id)
			tb.NoteNode(id)
		}
	}
	return ok
}

// AcquireEx spins until it CASes the locked bit on, TTS style: it only
// attempts the CAS after observing an unlocked word, but under
// contention many threads still retry the CAS on the same cacheline.
// Centralized locks have no handover path, so every grant counts as a
// free-word acquisition.
//
//optiql:noalloc
func (l *OptLock) AcquireEx(c *Ctx) Token {
	tb := c.tr
	sampled := tb.Sample()
	var t0 int64
	if sampled {
		t0 = tb.Now()
	}
	var s core.Spinner
	for {
		v := l.word.Load()
		if v&optLockedBit == 0 && l.word.CompareAndSwap(v, v|optLockedBit) {
			c.Counters().Inc(obs.EvExFree)
			if sampled {
				// Centralized locks never hand over; the wait span is
				// pure CAS-retry spinning.
				tb.LockWait(t0, tb.Now()-t0, 0, lockID(unsafe.Pointer(l)))
			}
			return Token{Version: v}
		}
		s.Spin()
	}
}

// ReleaseEx increments the version and clears the locked bit in one
// plain store (the holder is the only writer).
//
//optiql:noalloc
func (l *OptLock) ReleaseEx(_ *Ctx, _ Token) {
	l.word.Store((l.word.Load() + 1) &^ optLockedBit)
}

// Upgrade converts a validated read into an exclusive hold by CASing
// from the snapshot to the locked word, the standard OLC "upgrade".
//
//optiql:noalloc
func (l *OptLock) Upgrade(c *Ctx, t *Token) bool {
	if t.Version&optLockedBit == 0 && l.word.CompareAndSwap(t.Version, t.Version|optLockedBit) {
		c.Counters().Inc(obs.EvUpgradeOK)
		return true
	}
	c.Counters().Inc(obs.EvUpgradeFail)
	if tb := c.tr; tb.Sample() {
		id := lockID(unsafe.Pointer(l))
		tb.Event(trace.KindLockUpgradeFail, 0, id)
		tb.NoteNode(id)
	}
	return false
}

// CloseWindow is a no-op: centralized optimistic locks have no
// opportunistic read window.
//
//optiql:noalloc
func (l *OptLock) CloseWindow(Token) {}

// BumpVersion advances the version of an unlocked word so readers
// holding older snapshots fail validation (node recycling; see
// recycle.go). If the lock is held, the holder's own release will bump
// the version, so the CAS is simply skipped.
//
//optiql:noalloc
func (l *OptLock) BumpVersion() {
	for {
		v := l.word.Load()
		if v&optLockedBit != 0 {
			return
		}
		if l.word.CompareAndSwap(v, v+1) {
			return
		}
	}
}

// Pessimistic reports false: readers validate instead of blocking.
func (l *OptLock) Pessimistic() bool { return false }
