package locks

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"optiql/internal/core"
)

func newCtx(t testing.TB, pool *core.Pool) *Ctx {
	t.Helper()
	c := NewCtx(pool, 4)
	t.Cleanup(c.Close)
	return c
}

// exclusiveSchemes lists every scheme, all of which support AcquireEx.
func exclusiveSchemes() []string { return ExtendedNames() }

func TestSchemeRegistry(t *testing.T) {
	for _, name := range AllNames() {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("scheme %q reports name %q", name, s.Name)
		}
		if s.NewLock() == nil || s.NewInner() == nil || s.NewLeaf() == nil {
			t.Fatalf("scheme %q returned a nil lock", name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName accepted an unknown scheme")
	}
	for _, name := range ReaderCapableNames() {
		if !MustByName(name).SharedMode {
			t.Fatalf("reader-capable scheme %q reports no shared mode", name)
		}
	}
	for _, name := range []string{"TTS", "MCS"} {
		if MustByName(name).SharedMode {
			t.Fatalf("scheme %q should not report shared mode", name)
		}
	}
}

// TestMutualExclusionAllSchemes checks the non-atomic counter invariant
// for the exclusive path of every lock variant.
func TestMutualExclusionAllSchemes(t *testing.T) {
	const goroutines, iters = 8, 1500
	for _, name := range exclusiveSchemes() {
		t.Run(name, func(t *testing.T) {
			scheme := MustByName(name)
			pool := core.NewPool(goroutines * 4)
			l := scheme.NewLock()
			counter := 0
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					c := NewCtx(pool, 4)
					defer c.Close()
					for i := 0; i < iters; i++ {
						tok := l.AcquireEx(c)
						counter++
						l.CloseWindow(tok)
						l.ReleaseEx(c, tok)
					}
				}()
			}
			wg.Wait()
			if counter != goroutines*iters {
				t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
			}
		})
	}
}

// TestReadersObserveConsistentState drives mixed readers and writers on
// every reader-capable scheme: a validated (or pessimistic) read must
// never observe the two halves of the invariant out of sync.
func TestReadersObserveConsistentState(t *testing.T) {
	const writers, readers, iters = 4, 4, 1500
	for _, name := range ReaderCapableNames() {
		t.Run(name, func(t *testing.T) {
			scheme := MustByName(name)
			pool := core.NewPool(writers * 4)
			l := scheme.NewLock()
			var a, b atomic.Uint64

			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					c := NewCtx(pool, 4)
					defer c.Close()
					for i := 0; i < iters; i++ {
						tok := l.AcquireEx(c)
						l.CloseWindow(tok)
						a.Add(1)
						b.Add(1)
						l.ReleaseEx(c, tok)
					}
				}()
			}
			var torn, ok atomic.Uint64
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					c := NewCtx(pool, 4)
					defer c.Close()
					for i := 0; i < iters; i++ {
						tok, admitted := l.AcquireSh(c)
						if !admitted {
							continue
						}
						av := a.Load()
						bv := b.Load()
						if l.ReleaseSh(c, tok) {
							ok.Add(1)
							if av != bv {
								torn.Add(1)
							}
						}
					}
				}()
			}
			wg.Wait()
			if torn.Load() != 0 {
				t.Fatalf("%d reads observed torn state", torn.Load())
			}
			if !scheme.Optimistic && ok.Load() != readers*iters {
				t.Fatalf("pessimistic scheme failed reads: %d/%d", ok.Load(), readers*iters)
			}
		})
	}
}

// TestUpgrade exercises the upgrade path on the schemes that support it.
func TestUpgrade(t *testing.T) {
	for _, name := range []string{"OptLock", "OptiQL", "OptiQL-NOR", "OptiQL-AOR"} {
		t.Run(name, func(t *testing.T) {
			pool := core.NewPool(8)
			c := newCtx(t, pool)
			l := MustByName(name).NewLock()

			tok, ok := l.AcquireSh(c)
			if !ok {
				t.Fatal("read rejected on fresh lock")
			}
			if !l.Upgrade(c, &tok) {
				t.Fatal("upgrade failed on quiescent lock")
			}
			// A fresh read must now be rejected or at least fail to
			// upgrade (the lock is held).
			tok2, ok2 := l.AcquireSh(c)
			if ok2 && l.Upgrade(c, &tok2) {
				t.Fatal("second upgrade succeeded while lock held")
			}
			l.CloseWindow(tok)
			l.ReleaseEx(c, tok)

			// After release, a stale token must not upgrade.
			if l.Upgrade(c, &tok2) {
				t.Fatal("stale token upgraded")
			}
		})
	}
	// Pessimistic locks report no upgrade support.
	for _, name := range []string{"pthread", "MCS-RW", "TTS", "MCS", "CLH"} {
		pool := core.NewPool(8)
		c := newCtx(t, pool)
		l := MustByName(name).NewLock()
		var tok Token
		if l.Upgrade(c, &tok) {
			t.Fatalf("%s claims upgrade support", name)
		}
	}
}

// TestMCSRWFairnessFIFO checks that a writer queued behind readers is
// granted before readers that arrive after it (no reader barging).
func TestMCSRWFairnessFIFO(t *testing.T) {
	pool := core.NewPool(32)
	l := new(MCSRW)
	c0 := newCtx(t, pool)

	// Hold the lock with a reader group of one.
	rt, _ := l.AcquireSh(c0)

	writerGranted := make(chan struct{})
	go func() {
		c := NewCtx(pool, 4)
		defer c.Close()
		tok := l.AcquireEx(c)
		close(writerGranted)
		l.ReleaseEx(c, tok)
	}()

	// Wait for the writer to be queued (tail is no longer the reader).
	var s core.Spinner
	for l.tail.Load() == rt.rw {
		s.Spin()
	}

	// A late reader must now queue behind the writer, not join the
	// active group.
	lateAdmitted := make(chan struct{})
	go func() {
		c := NewCtx(pool, 4)
		defer c.Close()
		tok, _ := l.AcquireSh(c)
		close(lateAdmitted)
		l.ReleaseSh(c, tok)
	}()

	select {
	case <-lateAdmitted:
		t.Fatal("late reader barged past a queued writer")
	case <-writerGranted:
		t.Fatal("writer granted while reader group active")
	default:
	}

	l.ReleaseSh(c0, rt)
	<-writerGranted
	<-lateAdmitted
}

// TestMCSRWConcurrentReaders checks that a group of readers holds the
// lock simultaneously (readers do not serialize).
func TestMCSRWConcurrentReaders(t *testing.T) {
	pool := core.NewPool(32)
	l := new(MCSRW)
	const n = 4
	var inside atomic.Int64
	var peak atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewCtx(pool, 4)
			defer c.Close()
			<-start
			tok, _ := l.AcquireSh(c)
			cur := inside.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			// Linger so the group can assemble.
			for j := 0; j < 10000; j++ {
				_ = j
			}
			inside.Add(-1)
			l.ReleaseSh(c, tok)
		}()
	}
	close(start)
	wg.Wait()
	if peak.Load() < 2 {
		t.Logf("note: reader concurrency peak = %d (timing-dependent on 1 CPU)", peak.Load())
	}
	// The lock must be fully released afterwards: a writer acquires
	// immediately.
	c := newCtx(t, pool)
	tok := l.AcquireEx(c)
	l.ReleaseEx(c, tok)
}

// TestMCSRWStress mixes readers and writers heavily, verifying the
// writer-exclusivity invariant with an inside-writers counter.
func TestMCSRWStress(t *testing.T) {
	const goroutines, iters = 8, 1200
	pool := core.NewPool(goroutines * 4)
	l := new(MCSRW)
	var writersIn, readersIn atomic.Int64
	var violations atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewCtx(pool, 4)
			defer c.Close()
			for i := 0; i < iters; i++ {
				if (g+i)%3 == 0 { // writer
					tok := l.AcquireEx(c)
					if writersIn.Add(1) != 1 || readersIn.Load() != 0 {
						violations.Add(1)
					}
					writersIn.Add(-1)
					l.ReleaseEx(c, tok)
				} else { // reader
					tok, _ := l.AcquireSh(c)
					readersIn.Add(1)
					if writersIn.Load() != 0 {
						violations.Add(1)
					}
					readersIn.Add(-1)
					l.ReleaseSh(c, tok)
				}
			}
		}()
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d exclusivity violations", violations.Load())
	}
}

// TestOptLockVersionAdvances mirrors the core test for the centralized
// variant: every release bumps the version, and stale reads fail.
func TestOptLockVersionAdvances(t *testing.T) {
	pool := core.NewPool(8)
	c := newCtx(t, pool)
	l := new(OptLock)
	tok, _ := l.AcquireSh(c)
	for i := 1; i <= 3; i++ {
		w := l.AcquireEx(c)
		l.ReleaseEx(c, w)
		if got := l.Word(); got != uint64(i) {
			t.Fatalf("word after %d cycles = %d", i, got)
		}
	}
	if l.ReleaseSh(c, tok) {
		t.Fatal("stale read validated")
	}
}

// Property test: an OptLock upgrade succeeds iff no writer intervened
// since the snapshot.
func TestOptLockUpgradeProperty(t *testing.T) {
	pool := core.NewPool(8)
	c := newCtx(t, pool)
	f := func(intervene bool) bool {
		l := new(OptLock)
		tok, _ := l.AcquireSh(c)
		if intervene {
			w := l.AcquireEx(c)
			l.ReleaseEx(c, w)
		}
		got := l.Upgrade(c, &tok)
		if got {
			l.ReleaseEx(c, tok)
		}
		return got == !intervene
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCtxExhaustion verifies the guard rails around queue-node budgets.
func TestCtxExhaustion(t *testing.T) {
	pool := core.NewPool(8)
	c := NewCtx(pool, 2)
	defer c.Close()
	l1, l2 := NewOptiQL(), NewOptiQL()
	t1 := l1.AcquireEx(c)
	t2 := l2.AcquireEx(c)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("third queue-node acquisition did not panic")
			}
		}()
		l3 := NewOptiQL()
		l3.AcquireEx(c)
	}()
	l2.ReleaseEx(c, t2)
	l1.ReleaseEx(c, t1)
}

// TestTTSAndMCSNoSharedMode confirms the exclusive-only locks reject
// shared usage loudly rather than misbehaving.
func TestTTSAndMCSNoSharedMode(t *testing.T) {
	pool := core.NewPool(4)
	c := newCtx(t, pool)
	for _, name := range []string{"TTS", "MCS"} {
		l := MustByName(name).NewLock()
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s AcquireSh did not panic", name)
				}
			}()
			l.AcquireSh(c)
		}()
	}
}

// TestOptiQLFIFOOrder verifies writers are granted in the order they
// joined the queue, by serializing arrivals and recording grant order.
func TestOptiQLFIFOOrder(t *testing.T) {
	const n = 6
	pool := core.NewPool(n + 2)
	l := NewOptiQL()
	hold := NewCtx(pool, 2)
	defer hold.Close()
	tok := l.AcquireEx(hold) // hold the lock so everyone else queues

	qidShift := bits.TrailingZeros64(core.QIDMask)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	ctxs := make([]*Ctx, n)
	for i := 0; i < n; i++ {
		ctxs[i] = NewCtx(pool, 1)
		defer ctxs[i].Close()
	}
	for i := 0; i < n; i++ {
		i := i
		// The Ctx holds exactly one queue node, so we know which node
		// the goroutine will enqueue and can wait for its arrival
		// before starting the next, making arrival order deterministic.
		qid := uint64(ctxs[i].q[len(ctxs[i].q)-1].ID())
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := l.AcquireEx(ctxs[i])
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			l.ReleaseEx(ctxs[i], w)
		}()
		var s core.Spinner
		for (l.Core().Word()&core.QIDMask)>>qidShift != qid {
			s.Spin()
		}
	}
	l.ReleaseEx(hold, tok)
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v violates FIFO arrival order", order)
		}
	}
}
