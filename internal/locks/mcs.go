package locks

import (
	"sync/atomic"

	"optiql/internal/core"
	"optiql/internal/obs"
)

// MCS is the Mellor-Crummey–Scott queue lock of Algorithm 1:
// exclusive-only, fair (FIFO), robust under contention thanks to local
// spinning. The 8-byte lock word is the queue tail pointer. It is the
// base design OptiQL extends, included as a reference point in the
// microbenchmarks. It shares the rwNode queue-node type with MCS-RW;
// the class field is simply unused.
type MCS struct {
	tail atomic.Pointer[rwNode]
}

// AcquireSh is unsupported: MCS is a mutual-exclusion lock.
func (l *MCS) AcquireSh(_ *Ctx) (Token, bool) {
	panic("locks: MCS does not support shared mode")
}

// ReleaseSh is unsupported.
func (l *MCS) ReleaseSh(_ *Ctx, _ Token) bool {
	panic("locks: MCS does not support shared mode")
}

// AcquireEx joins the FIFO queue with an atomic swap on the tail and
// spins locally on its own node until the predecessor grants the lock.
func (l *MCS) AcquireEx(c *Ctx) Token {
	n := c.getRW()
	n.reset(classWriter)
	prev := l.tail.Swap(n)
	if prev != nil {
		prev.next.Store(n)
		var s core.Spinner
		for n.granted.Load() == 0 {
			s.Spin()
		}
		c.Counters().Inc(obs.EvExHandover)
	} else {
		c.Counters().Inc(obs.EvExFree)
	}
	return Token{rw: n}
}

// ReleaseEx hands the lock to the successor, or resets the tail when
// the queue is empty.
func (l *MCS) ReleaseEx(c *Ctx, t Token) {
	n := t.rw
	if n.next.Load() == nil && l.tail.CompareAndSwap(n, nil) {
		c.putRW(n)
		return
	}
	var s core.Spinner
	for n.next.Load() == nil {
		s.Spin()
	}
	n.next.Load().granted.Store(1)
	c.putRW(n)
}

// Upgrade is unsupported.
func (l *MCS) Upgrade(_ *Ctx, _ *Token) bool { return false }

// CloseWindow is a no-op.
func (l *MCS) CloseWindow(Token) {}

// Pessimistic reports true.
func (l *MCS) Pessimistic() bool { return true }
