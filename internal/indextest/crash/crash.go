// Crash harness: a kill-9 oracle for the durable server.
//
// The test binary re-execs itself as a child daemon (CrashChildMain,
// selected by the OPTIQL_CRASH_CHILD env var from TestMain), so the
// supervisor can SIGKILL a real process — not a goroutine — at seeded
// random points while oracle workers write through wire.ReconnClient.
// After every kill the supervisor restarts the daemon on the same WAL
// directory and checks each key against the admissible-state model:
//
//   - baseline: the key's last acknowledged write. Acked writes are
//     durable under the always/interval policies; losing one is the
//     bug this harness exists to catch.
//   - pending: writes issued after the baseline whose acknowledgement
//     never arrived (connection died, daemon killed). Each may or may
//     not have been applied; the server applies a key's ops in issue
//     order, so the recovered state must equal the baseline or the
//     state after exactly one pending op.
//
// Values encode (key, per-key op index), so a half-applied or
// misrouted record — a phantom — surfaces as a value that was never
// issued for that key, not as a silently plausible one.
//
// Kill points are not aimed: with the tiny segments and checkpoint
// thresholds the harness configures, the daemon rotates segments and
// checkpoints many times per second under load, so seeded random kill
// times land mid-batch, mid-fsync, mid-checkpoint and mid-rotation
// across the cycle budget.
package crash

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"optiql/internal/server"
	"optiql/internal/server/wire"
)

// CrashChildEnv selects child mode in TestMain.
const CrashChildEnv = "OPTIQL_CRASH_CHILD"

// CrashChildMain runs the daemon side of the harness: a durable
// server configured from CRASH_* env vars, serving until killed (or
// draining gracefully on SIGTERM). It never returns.
func CrashChildMain() {
	geti := func(name string, def int) int {
		if v := os.Getenv(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				childFatal(fmt.Errorf("bad %s=%q: %v", name, v, err))
			}
			return n
		}
		return def
	}
	cfg := server.Config{
		Addr:               "127.0.0.1:0",
		Index:              os.Getenv("CRASH_INDEX"),
		Scheme:             os.Getenv("CRASH_SCHEME"),
		Shards:             geti("CRASH_SHARDS", 2),
		WALDir:             os.Getenv("CRASH_WAL"),
		Fsync:              os.Getenv("CRASH_FSYNC"),
		WALSegmentBytes:    int64(geti("CRASH_SEG", 8<<10)),
		WALCheckpointBytes: int64(geti("CRASH_CKPT", 32<<10)),
		WALLogf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "crash-child: "+format+"\n", args...)
		},
	}
	srv, err := server.New(cfg)
	if err != nil {
		childFatal(err)
	}
	var reps, rops, ck, torn uint64
	for _, rec := range srv.WALRecovery() {
		reps += rec.RecordsReplayed
		rops += rec.OpsReplayed
		ck += rec.CheckpointPairs
		torn += uint64(rec.TornRecords)
	}
	bound, err := srv.Listen()
	if err != nil {
		childFatal(err)
	}
	// The parent parses these two lines; keep their shape.
	fmt.Printf("CRASH_CHILD_RECOVERY records=%d ops=%d ckpt=%d torn=%d\n", reps, rops, ck, torn)
	fmt.Printf("CRASH_CHILD_READY addr=%s\n", bound)
	os.Stdout.Sync()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	select {
	case err := <-errc:
		childFatal(err)
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			childFatal(fmt.Errorf("drain: %w", err))
		}
		fmt.Println("CRASH_CHILD_DRAINED")
		os.Exit(0)
	}
}

func childFatal(err error) {
	fmt.Printf("CRASH_CHILD_FATAL %v\n", err)
	os.Exit(1)
}

// CrashRecovery is the child's parsed startup recovery line.
type CrashRecovery struct {
	Records, Ops, CheckpointPairs, Torn uint64
}

// Supervisor owns one child daemon: start, await readiness, SIGKILL,
// SIGTERM-drain, restart on the same WAL directory.
type Supervisor struct {
	t      testing.TB
	env    []string
	cmd    *exec.Cmd
	out    *bufio.Scanner
	outRaw io.ReadCloser

	mu   sync.Mutex
	addr string

	// Recovery is the child's recovery line from the latest Start.
	Recovery CrashRecovery
}

// NewSupervisor prepares (but does not start) a child daemon serving
// index kind over shards with the given WAL dir and fsync policy.
func NewSupervisor(t testing.TB, kind, scheme, walDir, fsyncPolicy string, shards int) *Supervisor {
	return &Supervisor{
		t: t,
		env: append(os.Environ(),
			CrashChildEnv+"=1",
			"CRASH_INDEX="+kind,
			"CRASH_SCHEME="+scheme,
			"CRASH_WAL="+walDir,
			"CRASH_FSYNC="+fsyncPolicy,
			"CRASH_SHARDS="+strconv.Itoa(shards),
		),
	}
}

// Addr returns the child's current listen address (it changes across
// restarts; workers dial through this).
func (s *Supervisor) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Start launches the child and blocks until it reports ready,
// recording its recovery stats.
func (s *Supervisor) Start() {
	s.t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = s.env
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		s.t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		s.t.Fatal(err)
	}
	s.cmd, s.outRaw = cmd, out
	s.out = bufio.NewScanner(out)
	// Watchdog: a child that hangs before READY would block Scan
	// forever; killing it unblocks the pipe.
	watchdog := time.AfterFunc(20*time.Second, func() { cmd.Process.Kill() })
	defer watchdog.Stop()
	for s.out.Scan() {
		line := s.out.Text()
		switch {
		case strings.HasPrefix(line, "CRASH_CHILD_RECOVERY "):
			var r CrashRecovery
			if _, err := fmt.Sscanf(line, "CRASH_CHILD_RECOVERY records=%d ops=%d ckpt=%d torn=%d",
				&r.Records, &r.Ops, &r.CheckpointPairs, &r.Torn); err != nil {
				s.t.Fatalf("bad recovery line %q: %v", line, err)
			}
			s.Recovery = r
		case strings.HasPrefix(line, "CRASH_CHILD_READY addr="):
			s.mu.Lock()
			s.addr = strings.TrimPrefix(line, "CRASH_CHILD_READY addr=")
			s.mu.Unlock()
			// Drain the rest of the child's stdout in the background so a
			// chatty child never blocks on a full pipe.
			go func() {
				for s.out.Scan() {
				}
			}()
			return
		case strings.HasPrefix(line, "CRASH_CHILD_FATAL"):
			s.t.Fatalf("child failed to start: %s", line)
		}
	}
	s.t.Fatalf("child never reported ready (scan err: %v)", s.out.Err())
}

// Kill SIGKILLs the child — the crash under test — and reaps it.
func (s *Supervisor) Kill() {
	s.t.Helper()
	if err := s.cmd.Process.Kill(); err != nil {
		s.t.Fatalf("kill: %v", err)
	}
	s.cmd.Wait() // exit status is the signal; only reaping matters
	s.outRaw.Close()
	s.cmd = nil
}

// Drain SIGTERMs the child and waits for a clean exit (the graceful
// path: the daemon fsyncs and seals its logs before exiting).
func (s *Supervisor) Drain() {
	s.t.Helper()
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		s.t.Fatalf("sigterm: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			s.t.Fatalf("child drain exit: %v", err)
		}
	case <-time.After(20 * time.Second):
		s.cmd.Process.Kill()
		s.t.Fatal("child never drained after SIGTERM")
	}
	s.outRaw.Close()
	s.cmd = nil
}

// Stop kills the child if one is still running (cleanup path).
func (s *Supervisor) Stop() {
	if s.cmd != nil && s.cmd.Process != nil {
		s.cmd.Process.Kill()
		s.cmd.Wait()
		s.outRaw.Close()
		s.cmd = nil
	}
}

// crashOp is one issued write in a key's pending window.
type crashOp struct {
	del bool
	val uint64 // put payload; encodes (key, index)
}

// keyOracle is one key's admissible-state model.
type keyOracle struct {
	key     uint64
	nextIdx uint64
	// baseline: last acknowledged state.
	present bool
	baseVal uint64
	// pending: issued-after-baseline writes with unknown fate, in
	// issue order.
	pend []crashOp
}

// val encodes op index i of this key so phantoms are distinguishable.
func (k *keyOracle) val(i uint64) uint64 { return k.key<<32 | i }

// admissible checks an observed GET result against the model.
func (k *keyOracle) admissible(found bool, v uint64) bool {
	if found {
		if k.present && v == k.baseVal {
			return true
		}
		for _, op := range k.pend {
			if !op.del && op.val == v {
				return true
			}
		}
		return false
	}
	if !k.present {
		return true
	}
	for _, op := range k.pend {
		if op.del {
			return true
		}
	}
	return false
}

// rebaseline folds a verified observation into the model: the
// recovered state was replayed from the log, so it is durable and
// becomes the new baseline; the pending window resolves.
func (k *keyOracle) rebaseline(found bool, v uint64) {
	k.present, k.baseVal = found, v
	k.pend = k.pend[:0]
}

// CrashOracleConfig sizes one crash/recover campaign.
type CrashOracleConfig struct {
	Index  string
	Scheme string
	Fsync  string
	Shards int
	// Cycles is the SIGKILL/recover count (CRASH_CYCLES env overrides).
	Cycles int
	// Workers each own Keys/Workers keys (striped by key % Workers).
	Workers int
	Keys    int
	Seed    uint64
}

// RunCrashOracle is the harness entry point: Cycles times, it lets
// Workers hammer the child through ReconnClients, SIGKILLs it at a
// seeded random moment mid-load, restarts it on the same WAL dir and
// verifies every key's recovered state is admissible.
func RunCrashOracle(t *testing.T, cfg CrashOracleConfig) {
	if v := os.Getenv("CRASH_CYCLES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad CRASH_CYCLES=%q", v)
		}
		cfg.Cycles = n
	}
	sup := NewSupervisor(t, cfg.Index, cfg.Scheme, t.TempDir(), cfg.Fsync, cfg.Shards)
	defer sup.Stop()
	sup.Start()

	oracles := make([]*keyOracle, cfg.Keys)
	for i := range oracles {
		oracles[i] = &keyOracle{key: uint64(i)}
	}
	rng := crashRng{s: cfg.Seed | 1}

	// Worker lifecycle: run <- resume, ack -> parked at a safe point
	// (no op in flight). Workers only touch their own stripe; the
	// supervisor only touches oracle state while every worker is parked.
	type gate struct {
		resume chan struct{}
		parked chan struct{}
	}
	gates := make([]gate, cfg.Workers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		gates[w] = gate{resume: make(chan struct{}), parked: make(chan struct{})}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rc := &wire.ReconnClient{
				DialFunc:   func(string) (net.Conn, error) { return net.Dial("tcp", sup.Addr()) },
				Timeout:    2 * time.Second,
				MaxRetries: 2,
				BackoffMin: time.Millisecond,
				BackoffMax: 5 * time.Millisecond,
				Seed:       cfg.Seed + uint64(w)*0x9E3779B97F4A7C15,
			}
			defer rc.Close()
			g := gates[w]
			mine := make([]*keyOracle, 0, cfg.Keys/cfg.Workers+1)
			for i := w; i < cfg.Keys; i += cfg.Workers {
				mine = append(mine, oracles[i])
			}
			pos := 0
			// Workers start parked; the supervisor's resume/park calls
			// alternate with the sends below from here on.
			select {
			case <-g.resume:
			case <-stop:
				return
			}
			for {
				select {
				case <-stop:
					return
				case g.parked <- struct{}{}:
					// Supervisor owns the oracle state until resume.
					select {
					case <-g.resume:
					case <-stop:
						return
					}
				default:
					k := mine[pos%len(mine)]
					pos++
					idx := k.nextIdx
					k.nextIdx++
					op := crashOp{del: idx%7 == 6, val: k.val(idx)}
					var req wire.Request
					if op.del {
						req = wire.Del(k.key)
					} else {
						req = wire.Put(k.key, op.val)
					}
					resp, err := rc.Do(req)
					switch {
					case err == nil && (resp.Status == wire.StatusOK || resp.Status == wire.StatusNotFound):
						// Acked: applied and fsync-policy durable.
						if op.del {
							k.rebaseline(false, 0)
						} else {
							k.rebaseline(true, op.val)
						}
					case err == nil && resp.Status == wire.StatusOverloaded:
						// Shed before append: definitely not applied.
					default:
						// Connection died or the server errored mid-write:
						// fate unknown until the next verification pass.
						k.pend = append(k.pend, op)
					}
				}
			}
		}(w)
	}
	park := func() {
		for _, g := range gates {
			<-g.parked
		}
	}
	resume := func() {
		for _, g := range gates {
			g.resume <- struct{}{}
		}
	}

	verify := func(cycle int) {
		t.Helper()
		rc := &wire.ReconnClient{
			DialFunc: func(string) (net.Conn, error) { return net.Dial("tcp", sup.Addr()) },
			Timeout:  5 * time.Second,
			Seed:     cfg.Seed ^ 0xA5A5,
		}
		defer rc.Close()
		for _, k := range oracles {
			resp, err := rc.Do(wire.Get(k.key))
			if err != nil {
				t.Fatalf("cycle %d: verify get %d: %v", cycle, k.key, err)
			}
			found := resp.Status == wire.StatusOK
			if !found && resp.Status != wire.StatusNotFound {
				t.Fatalf("cycle %d: verify get %d: status %d", cycle, k.key, resp.Status)
			}
			if !k.admissible(found, resp.Value) {
				t.Fatalf("cycle %d: key %d recovered to inadmissible state (found=%v val=%#x): baseline present=%v val=%#x, %d pending",
					cycle, k.key, found, resp.Value, k.present, k.baseVal, len(k.pend))
			}
			k.rebaseline(found, resp.Value)
		}
	}

	var torn uint64
	for cycle := 1; cycle <= cfg.Cycles; cycle++ {
		resume()
		// Seeded kill point, wide enough to land mid-batch, mid-fsync,
		// mid-rotation and mid-checkpoint across the campaign.
		time.Sleep(time.Duration(10+rng.next()%110) * time.Millisecond)
		sup.Kill()
		park()
		sup.Start()
		torn += sup.Recovery.Torn
		verify(cycle)
	}
	close(stop)
	wg.Wait()
	t.Logf("%d cycles survived: last recovery replayed %d records / %d ops (+%d checkpoint pairs); %d torn tails truncated in total",
		cfg.Cycles, sup.Recovery.Records, sup.Recovery.Ops, sup.Recovery.CheckpointPairs, torn)
}

// crashRng is the harness's seeded splitmix64 stream.
type crashRng struct{ s uint64 }

func (r *crashRng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	x := r.s
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
