package crash

import (
	"net"
	"os"
	"testing"
	"time"

	"optiql/internal/indextest"
	"optiql/internal/server/wire"
)

// TestMain is the re-exec hook: when the supervisor launches this
// test binary with the crash-child env var set, it becomes the daemon
// under test instead of running the test list.
func TestMain(m *testing.M) {
	if os.Getenv(CrashChildEnv) == "1" {
		CrashChildMain()
		return
	}
	os.Exit(m.Run())
}

// crashScheme picks the lock scheme for the child daemon: optimistic
// reads are racy by design, so race builds run the pessimistic
// baseline over the same structural code (see SkipIfOptimisticRace).
func crashScheme() string {
	if indextest.RaceEnabled {
		return "MCS-RW"
	}
	return "OptiQL"
}

// TestCrashOracle is the kill-9 campaign of ISSUE 8: 13 seeded
// SIGKILL/recover cycles per index (26 total) under concurrent write
// load, each followed by an admissible-state check of every key. A
// lost acked write, a resurrected deleted key or a phantom value
// fails the cycle that observes it. CRASH_CYCLES overrides the
// per-index cycle count (the CI smoke job runs fewer).
func TestCrashOracle(t *testing.T) {
	cycles := 13
	if testing.Short() {
		cycles = 3
	}
	for _, tc := range []struct{ kind, fsync string }{
		{"btree", "interval"},
		{"art", "always"},
	} {
		t.Run(tc.kind+"/"+tc.fsync, func(t *testing.T) {
			RunCrashOracle(t, CrashOracleConfig{
				Index:   tc.kind,
				Scheme:  crashScheme(),
				Fsync:   tc.fsync,
				Shards:  2,
				Cycles:  cycles,
				Workers: 4,
				Keys:    64,
				Seed:    0x0851 ^ uint64(len(tc.kind)),
			})
		})
	}
}

// TestShutdownSealsWAL asserts the graceful path: a SIGTERM drain
// fsyncs and seals the segments, so the restart replays every write
// with zero torn-tail truncations.
func TestShutdownSealsWAL(t *testing.T) {
	sup := NewSupervisor(t, "btree", crashScheme(), t.TempDir(), "interval", 2)
	defer sup.Stop()
	sup.Start()

	rc := &wire.ReconnClient{
		DialFunc: func(string) (net.Conn, error) { return net.Dial("tcp", sup.Addr()) },
		Timeout:  5 * time.Second,
		Seed:     1,
	}
	const n = 500
	for i := uint64(0); i < n; i++ {
		resp, err := rc.Do(wire.Put(i, i+1))
		if err != nil || resp.Status != wire.StatusOK {
			t.Fatalf("put %d: %+v %v", i, resp, err)
		}
	}
	rc.Close()
	sup.Drain()

	sup.Start()
	if sup.Recovery.Torn != 0 {
		t.Fatalf("SIGTERM drain left %d torn records", sup.Recovery.Torn)
	}
	if sup.Recovery.Ops+sup.Recovery.CheckpointPairs < n {
		t.Fatalf("restart recovered only %d ops + %d checkpoint pairs, want >= %d",
			sup.Recovery.Ops, sup.Recovery.CheckpointPairs, n)
	}
	rc2 := &wire.ReconnClient{
		DialFunc: func(string) (net.Conn, error) { return net.Dial("tcp", sup.Addr()) },
		Timeout:  5 * time.Second,
		Seed:     2,
	}
	defer rc2.Close()
	for i := uint64(0); i < n; i++ {
		resp, err := rc2.Do(wire.Get(i))
		if err != nil || resp.Status != wire.StatusOK || resp.Value != i+1 {
			t.Fatalf("key %d after drain+restart = %+v %v", i, resp, err)
		}
	}
}
