package indextest

import (
	"fmt"

	"optiql/internal/workload"
)

// This file is the deterministic-schedule half of the harness: seeded,
// replayable programs of client writes pre-partitioned into executor
// batches, plus a FIFO map oracle that yields the expected response for
// every op. The striped-key Run harness (indextest.go) proves the
// substrates under real nondeterministic concurrency; SchedProgram
// instead FIXES the interleaving, so two different executor strategies
// (FIFO apply vs. flat-combined apply) can be replayed over the exact
// same schedule and compared op-for-op and state-for-state. The server
// wires it over both indexes and all schemes in its combine tests.

// Sched op kinds (the only ops an executor batch carries).
const (
	SchedPut byte = iota
	SchedDelete
)

// SchedOp is one scheduled client write.
type SchedOp struct {
	// Conn is the issuing connection's index in [0, Conns); the
	// harness's read-your-writes check replays each connection's view.
	Conn int
	Op   byte // SchedPut or SchedDelete
	Key  uint64
	Val  uint64
}

// SchedProgram is a seeded program: a fixed interleaving of connection
// writes partitioned into executor batches. The same seed always yields
// the same program, so a failure reproduces from its seed alone.
type SchedProgram struct {
	Seed    uint64
	Conns   int
	HotKeys []uint64
	Batches [][]SchedOp
}

// NewSchedProgram generates a program of nBatches batches of 1..maxBatch
// ops over conns connections and keys in [1, keySpace]; hotFrac of the
// ops target the tiny hot set (hotKeys ≥ 1 keys drawn from the space),
// mimicking the Zipfian regime that arms combining, and ~30% of all ops
// are DELETEs so runs interleave inserts, overwrites and removals.
// Values are globally unique, so any last-writer-wins violation is
// visible in the final state, not just statistically likely.
func NewSchedProgram(seed uint64, conns, nBatches, maxBatch int, keySpace uint64, hotKeys int, hotFrac float64) *SchedProgram {
	if conns < 1 || nBatches < 1 || maxBatch < 1 || keySpace < uint64(hotKeys) || hotKeys < 1 {
		panic(fmt.Sprintf("indextest: bad program shape (conns=%d batches=%d maxBatch=%d keys=%d hot=%d)",
			conns, nBatches, maxBatch, keySpace, hotKeys))
	}
	rng := workload.NewRNG(seed)
	p := &SchedProgram{Seed: seed, Conns: conns}
	for i := 0; i < hotKeys; i++ {
		p.HotKeys = append(p.HotKeys, 1+rng.Uint64n(keySpace))
	}
	val := uint64(1)
	for b := 0; b < nBatches; b++ {
		n := 1 + int(rng.Uint64n(uint64(maxBatch)))
		batch := make([]SchedOp, 0, n)
		for i := 0; i < n; i++ {
			op := SchedOp{Conn: int(rng.Uint64n(uint64(conns)))}
			if rng.Float64() < hotFrac {
				op.Key = p.HotKeys[rng.Uint64n(uint64(len(p.HotKeys)))]
			} else {
				op.Key = 1 + rng.Uint64n(keySpace)
			}
			if rng.Float64() < 0.3 {
				op.Op = SchedDelete
			} else {
				op.Op = SchedPut
				op.Val = val
				val++
			}
			batch = append(batch, op)
		}
		p.Batches = append(p.Batches, batch)
	}
	return p
}

// SchedOracle replays a program in FIFO order over a plain map,
// producing the responses a strictly serial executor would give. Any
// batching strategy claiming FIFO-equivalent semantics must match it
// op-for-op and, between batches, state-for-state.
type SchedOracle struct {
	m map[uint64]uint64
	// lastPut[conn] tracks each connection's most recent PUT, for the
	// per-connection read-your-writes check.
	lastPut map[int]SchedOp
}

// NewSchedOracle returns an empty oracle.
func NewSchedOracle() *SchedOracle {
	return &SchedOracle{m: make(map[uint64]uint64), lastPut: make(map[int]SchedOp)}
}

// Apply replays one op. For a PUT, inserted reports whether the key was
// absent; for a DELETE, found reports whether it was present.
func (o *SchedOracle) Apply(op SchedOp) (inserted, found bool) {
	switch op.Op {
	case SchedPut:
		_, present := o.m[op.Key]
		o.m[op.Key] = op.Val
		o.lastPut[op.Conn] = op
		return !present, present
	case SchedDelete:
		_, present := o.m[op.Key]
		delete(o.m, op.Key)
		return false, present
	}
	panic("indextest: unknown sched op")
}

// Get returns the oracle's current value for key.
func (o *SchedOracle) Get(key uint64) (uint64, bool) {
	v, ok := o.m[key]
	return v, ok
}

// Len returns the oracle's current key count.
func (o *SchedOracle) Len() int { return len(o.m) }

// Keys returns the oracle's current key set (any order).
func (o *SchedOracle) Keys() []uint64 {
	out := make([]uint64, 0, len(o.m))
	for k := range o.m {
		out = append(out, k)
	}
	return out
}

// ReadYourWrites checks each connection's view against a read function:
// for every connection whose most recent PUT's value is still current
// in the oracle (no later write to that key from any connection), the
// index must return exactly that value. Returns a descriptive error
// string, or "" when consistent.
func (o *SchedOracle) ReadYourWrites(read func(key uint64) (uint64, bool)) string {
	for conn, op := range o.lastPut {
		want, present := o.m[op.Key]
		if !present || want != op.Val {
			// A later write superseded this connection's PUT; the oracle
			// already covers the key via the state check.
			continue
		}
		got, ok := read(op.Key)
		if !ok || got != op.Val {
			return fmt.Sprintf("conn %d lost its write: key %d = (%d, %v), want (%d, true)",
				conn, op.Key, got, ok, op.Val)
		}
	}
	return ""
}
