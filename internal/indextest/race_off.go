//go:build !race

package indextest

// RaceEnabled reports whether this binary was built with the race
// detector.
const RaceEnabled = false
