package indextest

import (
	"testing"

	"optiql/internal/locks"
)

// SkipIfOptimisticRace skips the calling test when the race detector
// is on and the scheme takes optimistic shared acquisitions.
//
// Optimistic reads are data races *by design* at the Go memory-model
// level: the whole point of OptLock/OptiQL's read protocol (paper
// Section 4.2) is to read node payloads without any shared-memory
// write and reject torn results through version validation afterwards.
// The race detector would flag every such read — correctly, and
// uselessly. Concurrent tests therefore run the optimistic schemes
// only in non-race builds, while pessimistic schemes (whose shared
// acquisitions block, making every payload access lock-protected)
// keep full race coverage over the identical structural code paths.
func SkipIfOptimisticRace(t testing.TB, s *locks.Scheme) {
	if RaceEnabled && s.Optimistic {
		t.Skipf("scheme %s reads optimistically (racy by design); skipped under -race", s.Name)
	}
}
