// Package indextest is the shared correctness harness for the two
// concurrent index substrates: a mixed-workload oracle test that runs
// across every lock scheme and verifies final contents, plus the skip
// logic the race-detector CI job relies on.
//
// The oracle trick that makes a *concurrent* run checkable is key
// striping: goroutine g exclusively owns the keys congruent to g
// modulo the goroutine count and keeps its own map oracle for them.
// Goroutines still collide on the structure itself — the same leaves,
// the same ART nodes, the same splits and merges — so the locking
// protocols are exercised for real, but every key has exactly one
// writer and its expected value is always known. After the run the
// union of the per-goroutine oracles must equal the index exactly.
package indextest

import (
	"sort"
	"testing"

	"optiql/internal/core"
	"optiql/internal/kv"
	"optiql/internal/locks"
	"optiql/internal/workload"
)

// KV is a key/value pair returned by a Scan adapter. It aliases the
// repo-wide pair type, so substrate scans can be forwarded directly.
type KV = kv.KV

// Index is the substrate surface the oracle workload drives. Both
// *btree.Tree and *art.Tree satisfy it directly.
type Index interface {
	Lookup(c *locks.Ctx, k uint64) (uint64, bool)
	Insert(c *locks.Ctx, k, v uint64) bool
	Update(c *locks.Ctx, k, v uint64) bool
	Delete(c *locks.Ctx, k uint64) bool
	Len() int
}

// Options configures one oracle run.
type Options struct {
	// New builds a fresh index for one scheme. Returning an error skips
	// the scheme (e.g. exclusive-only locks on substrates that need
	// shared mode).
	New func(s *locks.Scheme) (Index, error)
	// Scan, when set, adapts the substrate's range scan; the harness
	// then validates ordering, bounds and own-stripe completeness
	// during the run and full contents afterwards.
	Scan func(idx Index, c *locks.Ctx, start uint64, max int) []KV
	// Schemes to run (locks.AllNames() when empty).
	Schemes []string
	// Goroutines is the worker count (default 8; keys are striped by
	// worker, so it also sets the stripe modulus).
	Goroutines int
	// Ops per goroutine (default 4000, quartered under -short).
	Ops int
	// Keyspace is the size of the shared key range (default 2048).
	Keyspace uint64
	// Churn switches the workload from the mixed op stream to a
	// recycle-stress pattern: each worker floods its stripe with dense
	// ascending inserts (forcing splits and node growth) and then
	// deletes most of it back (forcing merges, shrinks and node frees),
	// so the next round's inserts reuse recycled nodes while the other
	// workers' readers are mid-traversal on the same structure.
	Churn bool
	// Invariants, when set, runs the substrate's white-box structural
	// checks on the quiescent index after the workload and verification.
	Invariants func(t *testing.T, idx Index)
}

// Run executes the concurrent oracle workload for every scheme as a
// subtest.
func Run(t *testing.T, o Options) {
	if o.New == nil {
		t.Fatal("indextest: Options.New is required")
	}
	schemes := o.Schemes
	if len(schemes) == 0 {
		schemes = locks.AllNames()
	}
	if o.Goroutines <= 0 {
		o.Goroutines = 8
	}
	if o.Ops <= 0 {
		o.Ops = 4000
	}
	if testing.Short() {
		o.Ops /= 4
	}
	if o.Keyspace == 0 {
		o.Keyspace = 2048
	}
	for _, name := range schemes {
		t.Run(name, func(t *testing.T) {
			scheme := locks.MustByName(name)
			SkipIfOptimisticRace(t, scheme)
			idx, err := o.New(scheme)
			if err != nil {
				t.Skipf("scheme unsupported by substrate: %v", err)
			}
			runOne(t, o, idx)
		})
	}
}

func runOne(t *testing.T, o Options, idx Index) {
	g := uint64(o.Goroutines)
	pool := core.NewPool(256)
	oracles := make([]map[uint64]uint64, o.Goroutines)
	done := make(chan int, o.Goroutines)
	for w := 0; w < o.Goroutines; w++ {
		w := w
		oracles[w] = make(map[uint64]uint64)
		go func() {
			defer func() { done <- w }()
			oracle := oracles[w]
			c := locks.NewCtx(pool, 8)
			defer c.Close()
			rng := workload.NewRNG(uint64(w)*0x9E3779B97F4A7C15 + 7)
			if o.Churn {
				churnWorker(t, o, idx, oracle, c, rng, g, uint64(w))
				return
			}
			stripe := o.Keyspace / g
			for i := 0; i < o.Ops; i++ {
				// Keys owned by this worker: k ≡ w (mod goroutines).
				k := rng.Uint64n(stripe)*g + uint64(w)
				v := rng.Uint64()
				_, had := oracle[k]
				switch rng.Uint64n(10) {
				case 0, 1, 2: // insert
					if got := idx.Insert(c, k, v); got != !had {
						t.Errorf("Insert(%d) new=%v, oracle says %v", k, got, !had)
						return
					}
					oracle[k] = v
				case 3, 4: // update
					if got := idx.Update(c, k, v); got != had {
						t.Errorf("Update(%d) found=%v, oracle says %v", k, got, had)
						return
					}
					if had {
						oracle[k] = v
					}
				case 5, 6: // delete
					if got := idx.Delete(c, k); got != had {
						t.Errorf("Delete(%d) found=%v, oracle says %v", k, got, had)
						return
					}
					delete(oracle, k)
				case 7, 8: // lookup
					got, ok := idx.Lookup(c, k)
					if ok != had || (had && got != oracle[k]) {
						t.Errorf("Lookup(%d) = (%d, %v), oracle says (%d, %v)", k, got, ok, oracle[k], had)
						return
					}
				case 9: // scan (falls back to lookup without an adapter)
					if o.Scan == nil {
						if _, ok := idx.Lookup(c, k); ok != had {
							t.Errorf("Lookup(%d) present=%v, oracle says %v", k, ok, had)
							return
						}
						continue
					}
					max := int(rng.Uint64n(32)) + 1
					out := o.Scan(idx, c, k, max)
					if !checkScan(t, oracle, g, uint64(w), k, max, out) {
						return
					}
				}
			}
		}()
	}
	for range oracles {
		<-done
	}
	if t.Failed() {
		return
	}

	// Quiescent verification: the union of the stripes is exactly the
	// index contents.
	merged := make(map[uint64]uint64)
	for _, o := range oracles {
		for k, v := range o {
			merged[k] = v
		}
	}
	c := locks.NewCtx(pool, 8)
	defer c.Close()
	for k := uint64(0); k < o.Keyspace; k++ {
		want, had := merged[k]
		got, ok := idx.Lookup(c, k)
		if ok != had || (had && got != want) {
			t.Fatalf("final Lookup(%d) = (%d, %v), oracle says (%d, %v)", k, got, ok, want, had)
		}
	}
	if idx.Len() != len(merged) {
		t.Fatalf("final Len() = %d, oracle has %d keys", idx.Len(), len(merged))
	}
	if o.Scan != nil {
		keys := make([]uint64, 0, len(merged))
		for k := range merged {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		out := o.Scan(idx, c, 0, len(merged)+1)
		if len(out) != len(keys) {
			t.Fatalf("final scan saw %d pairs, oracle has %d", len(out), len(keys))
		}
		for i, k := range keys {
			if out[i].Key != k || out[i].Value != merged[k] {
				t.Fatalf("final scan[%d] = (%d, %d), want (%d, %d)", i, out[i].Key, out[i].Value, k, merged[k])
			}
		}
	}
	if o.Invariants != nil {
		o.Invariants(t, idx)
	}
}

// churnWorker is the recycle-stress workload body for one worker: an
// insert flood over its whole stripe (dense ascending keys drive
// splits and node growth), a burst of spot-check lookups and scans
// while the other workers keep the structure hot, then a delete flood
// emptying most of the stripe (merges, shrinks and node frees). The
// next round's insert flood reuses the freed nodes, so version-bumped
// recycled nodes are repeatedly republished under concurrent readers.
func churnWorker(t *testing.T, o Options, idx Index, oracle map[uint64]uint64, c *locks.Ctx, rng *workload.RNG, g, w uint64) {
	stripe := o.Keyspace / g
	budget := o.Ops
	for budget > 0 {
		// Insert flood.
		for i := uint64(0); i < stripe && budget > 0; i++ {
			k := i*g + w
			v := rng.Uint64()
			_, had := oracle[k]
			if got := idx.Insert(c, k, v); got != !had {
				t.Errorf("churn Insert(%d) new=%v, oracle says %v", k, got, !had)
				return
			}
			oracle[k] = v
			budget--
		}
		// Spot-check reads against freshly split/grown (or recycled)
		// nodes while other workers churn the same structure.
		for i := 0; i < 64 && budget > 0; i++ {
			k := rng.Uint64n(stripe)*g + w
			want, had := oracle[k]
			got, ok := idx.Lookup(c, k)
			if ok != had || (had && got != want) {
				t.Errorf("churn Lookup(%d) = (%d, %v), oracle says (%d, %v)", k, got, ok, want, had)
				return
			}
			budget--
		}
		if o.Scan != nil && budget > 0 {
			start := rng.Uint64n(stripe)*g + w
			max := int(rng.Uint64n(32)) + 1
			if !checkScan(t, oracle, g, w, start, max, o.Scan(idx, c, start, max)) {
				return
			}
			budget--
		}
		// Delete flood: keep only one key in eight so merges and shrinks
		// actually fire, and vary which one so successive rounds reshape
		// the structure differently.
		keep := rng.Uint64n(8)
		for i := uint64(0); i < stripe && budget > 0; i++ {
			if i%8 == keep {
				continue
			}
			k := i*g + w
			_, had := oracle[k]
			if got := idx.Delete(c, k); got != had {
				t.Errorf("churn Delete(%d) found=%v, oracle says %v", k, got, had)
				return
			}
			delete(oracle, k)
			budget--
		}
	}
}

// checkScan validates one mid-run scan result against the scanning
// worker's own stripe: results must be strictly ascending and >=
// start, pairs in the worker's stripe must carry its oracle values,
// and — because the worker's own stripe cannot change while it scans —
// every owned oracle key inside the observed window must be present.
func checkScan(t *testing.T, oracle map[uint64]uint64, g, w, start uint64, max int, out []KV) bool {
	if len(out) > max {
		t.Errorf("scan(%d, %d) returned %d pairs", start, max, len(out))
		return false
	}
	prev := uint64(0)
	for i, kv := range out {
		if kv.Key < start || (i > 0 && kv.Key <= prev) {
			t.Errorf("scan(%d) out of order at %d: %d after %d", start, i, kv.Key, prev)
			return false
		}
		prev = kv.Key
		if kv.Key%g == w {
			want, had := oracle[kv.Key]
			if !had || kv.Value != want {
				t.Errorf("scan saw own key %d = %d, oracle says (%d, %v)", kv.Key, kv.Value, want, had)
				return false
			}
		}
	}
	// Completeness over the observed window [start, hi]: hi is the last
	// returned key for a full result, unbounded when the scan exhausted
	// the index.
	hi := ^uint64(0)
	if len(out) == max && max > 0 {
		hi = out[len(out)-1].Key
	}
	seen := make(map[uint64]bool, len(out))
	for _, kv := range out {
		if kv.Key%g == w {
			seen[kv.Key] = true
		}
	}
	for k := range oracle {
		if k >= start && k <= hi && !seen[k] {
			t.Errorf("scan(%d, %d) missed own key %d (window up to %d)", start, max, k, hi)
			return false
		}
	}
	return true
}
