package tornread_test

import (
	"testing"

	"optiql/internal/analysis/analysistest"
	"optiql/internal/analysis/tornread"
)

func TestTornread(t *testing.T) {
	analysistest.RunPattern(t, "../testdata", "./tornread", tornread.Analyzer)
}
