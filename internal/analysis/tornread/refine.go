package tornread

// Branch refinement: conditional edges narrow the lattice. True edges
// of bounds comparisons clamp the compared value; nil checks promote a
// racy pointer to shared; the lock protocol's acquire/validate/upgrade
// booleans apply their transitions on the success edge.

import (
	"go/ast"
	"go/token"

	"optiql/internal/analysis"
)

func (a *fa) refine(e ast.Expr, truth bool, s *state) {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			a.refine(e.X, !truth, s)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if truth { // both conjuncts hold on the true edge
				a.refine(e.X, true, s)
				a.refine(e.Y, true, s)
			}
		case token.LOR:
			if !truth { // both disjuncts fail on the false edge
				a.refine(e.X, false, s)
				a.refine(e.Y, false, s)
			}
		default:
			a.refineCompare(e, truth, s)
		}
	case *ast.Ident:
		a.refineBool(e.Name, truth, s)
	case *ast.SelectorExpr:
		if p := pathOf(e); p != "" {
			a.refineBool(p, truth, s)
		}
	case *ast.CallExpr:
		// Direct use: `if n.lock.Upgrade(c, &tok) { ... }`.
		a.refineLockCall(e, truth, s)
	}
}

// refineBool applies the protocol transition recorded in a boolean's
// abstract value.
func (a *fa) refineBool(path string, truth bool, s *state) {
	v, ok := s.get(path)
	if !ok || !truth {
		return
	}
	switch v.kind {
	case vAcquireOK:
		a.ownerAcquired(v.tok, s)
	case vValidateOK:
		a.validateAll(s)
	case vUpgradeOK:
		a.validateAll(s)
		a.ownerTrusted(v.tok, s)
	}
}

func (a *fa) refineLockCall(call *ast.CallExpr, truth bool, s *state) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !lockMethods[sel.Sel.Name] || !truth {
		return
	}
	fn := analysis.CalleeFunc(a.e.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "locks" {
		return
	}
	owner := ""
	if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		owner = pathOf(inner.X)
	} else {
		owner = pathOf(sel.X)
	}
	switch sel.Sel.Name {
	case "ReleaseSh":
		a.validateAll(s)
	case "Upgrade":
		a.validateAll(s)
		a.ownerTrusted(owner, s)
	}
}

// ownerAcquired marks a node as optimistically held: dereference is
// allowed, loads are tainted until validated.
func (a *fa) ownerAcquired(path string, s *state) {
	if path == "" {
		return
	}
	v, _ := s.get(path)
	v.r = rShared
	v.rmd = 0
	s.vars[path] = v
}

func (a *fa) ownerTrusted(path string, s *state) {
	if path == "" {
		return
	}
	v, _ := s.get(path)
	v.r = rTrusted
	v.rm, v.rmd = 0, 0
	s.vars[path] = v
}

// validateAll is the version-validation epoch: everything read so far
// is retroactively consistent, so concrete taint drops to Clamped and
// racy pointers become dereferenceable. Parameter-conditional masks
// survive — a local validation says nothing about the caller's nodes.
func (a *fa) validateAll(s *state) {
	for k, v := range s.vars {
		changed := false
		if v.t == tTainted {
			v.t = tClamped
			changed = true
		}
		if v.r == rRacy {
			v.r = rShared
			changed = true
		}
		if changed {
			s.vars[k] = v
		}
	}
}

// refineCompare handles nil checks and bounds clamps.
func (a *fa) refineCompare(e *ast.BinaryExpr, truth bool, s *state) {
	x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
	// Nil checks: `p != nil` true edge, `p == nil` false edge.
	if isNilExpr(x) || isNilExpr(y) {
		ptr := x
		if isNilExpr(x) {
			ptr = y
		}
		var nonNil bool
		switch e.Op {
		case token.NEQ:
			nonNil = truth
		case token.EQL:
			nonNil = !truth
		default:
			return
		}
		if nonNil {
			a.refineNonNil(ptr, s)
		}
		return
	}
	// Bounds: the edge where `v REL bound` bounds v from above.
	type side struct {
		v, bound ast.Expr
	}
	var clamped []side
	switch e.Op {
	case token.LSS, token.LEQ:
		if truth {
			clamped = append(clamped, side{x, y})
		} else {
			clamped = append(clamped, side{y, x})
		}
	case token.GTR, token.GEQ:
		if truth {
			clamped = append(clamped, side{y, x})
		} else {
			clamped = append(clamped, side{x, y})
		}
	case token.EQL:
		if truth {
			clamped = append(clamped, side{x, y}, side{y, x})
		}
	case token.NEQ:
		if !truth {
			clamped = append(clamped, side{x, y}, side{y, x})
		}
	}
	for _, c := range clamped {
		a.clampBy(c.v, c.bound, s)
	}
}

// refineNonNil promotes a nil-checked pointer: racy becomes shared
// (dereferenceable), and conditional deref masks clear.
func (a *fa) refineNonNil(ptr ast.Expr, s *state) {
	p := pathOf(a.unwrapConv(ptr))
	if p == "" {
		return
	}
	v, ok := s.get(p)
	if !ok {
		// Materialize the selector path so the refinement sticks.
		a.pure++
		v = a.eval(ptr, s)
		a.pure--
	}
	if v.r == rRacy {
		v.r = rShared
	}
	v.rmd = 0
	s.vars[p] = v
}

// clampBy clamps v when the bound is itself clean or clamped.
func (a *fa) clampBy(vexpr, bound ast.Expr, s *state) {
	a.pure++
	bv := a.eval(bound, s)
	a.pure--
	if bv.t > tClamped || bv.tm != 0 || bv.vm != 0 {
		return
	}
	p := pathOf(a.unwrapConv(vexpr))
	if p == "" {
		return
	}
	v, ok := s.get(p)
	if !ok {
		a.pure++
		v = a.eval(a.unwrapConv(vexpr), s)
		a.pure--
	}
	if v.t == tClean && v.tm == 0 && v.vm == 0 {
		return // nothing to clamp; don't disturb pointer state
	}
	v.t = tClamped
	v.tm, v.vm = 0, 0
	s.vars[p] = v
}

// unwrapConv strips parens and value conversions: `int(idx) <= n`
// clamps idx.
func (a *fa) unwrapConv(e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		if tv, ok := a.e.pass.Info.Types[call.Fun]; !ok || !tv.IsType() {
			return e
		}
		e = call.Args[0]
	}
}
