package tornread

// Call evaluation: conversions, builtins, the lock protocol, atomics,
// summarized callees and the unknown-callee default.

import (
	"go/ast"
	"go/types"

	"optiql/internal/analysis"
)

func (a *fa) evalCall(call *ast.CallExpr, s *state) absval {
	// Type conversion.
	if tv, ok := a.e.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return a.typeCap(a.eval(call.Args[0], s), tv.Type)
		}
		return absval{}
	}
	if name := analysis.BuiltinName(a.e.pass.Info, call); name != "" {
		return a.evalBuiltin(name, call, s)
	}
	if vals, ok := a.lockOp(call, s); ok {
		return vals[0]
	}
	fn := analysis.CalleeFunc(a.e.pass.Info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "atomic" {
		// Methods on sync/atomic cells: loads are untorn by contract.
		a.evalArgs(call, s)
		return absval{}
	}
	if fn == nil {
		// Calls through local variables holding function literals.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := a.e.pass.Info.Uses[id]; obj != nil {
				if sum, ok := a.e.litSums[obj]; ok {
					return a.applySummary(call, nil, sum, s)
				}
			}
		}
	}
	if fn != nil {
		if sum := a.e.lookupSummary(fn); sum != nil {
			return a.applySummary(call, fn, sum, s)
		}
	}
	// Unknown callee (stdlib, interface dispatch): the result derives
	// from the arguments but is never itself a sink — a documented
	// over-approximation (DESIGN §15).
	args := a.evalArgs(call, s)
	out := absval{}
	risky := false
	for _, av := range args {
		out.t = joinTaint(out.t, av.t)
		out.tm |= av.tm
		out.vm |= av.vm
		if av.r >= rShared || av.rm != 0 {
			risky = true
		}
	}
	if rt := a.typeOf(call); rt != nil && a.e.isRacyType(rt) && risky {
		out.r = rShared
	}
	return a.typeCap(out, a.typeOf(call))
}

func (a *fa) evalArgs(call *ast.CallExpr, s *state) []absval {
	args := make([]absval, 0, len(call.Args))
	for _, arg := range call.Args {
		args = append(args, a.eval(arg, s))
	}
	return args
}

func (a *fa) evalBuiltin(name string, call *ast.CallExpr, s *state) absval {
	switch name {
	case "len", "cap":
		// Slice/array headers are stable even in racy nodes.
		for _, arg := range call.Args {
			a.eval(arg, s)
		}
		return absval{}
	case "make":
		for i, arg := range call.Args {
			if i == 0 {
				continue // the type expression
			}
			a.sinkCheck(arg.Pos(), a.eval(arg, s), "allocation size")
		}
		return absval{r: rTrusted}
	case "new":
		return absval{r: rTrusted}
	case "append":
		out := absval{}
		for i, arg := range call.Args {
			v := a.eval(arg, s)
			if i == 0 {
				out = v
			}
		}
		return out
	case "min", "max":
		// A clean or clamped operand bounds the result (min from above,
		// max from below; the one-sided gap is documented in DESIGN §15).
		args := a.evalArgs(call, s)
		bounded := false
		t := tClean
		for _, av := range args {
			t = joinTaint(t, av.t)
			if av.t <= tClamped && av.tm == 0 && av.vm == 0 {
				bounded = true
			}
		}
		if bounded {
			if t > tClamped {
				t = tClamped
			}
			return absval{t: t}
		}
		out := absval{t: t}
		for _, av := range args {
			out.tm |= av.tm
			out.vm |= av.vm
		}
		return out
	default: // copy, delete, clear, panic, print, println, recover, ...
		for _, arg := range call.Args {
			a.eval(arg, s)
		}
		return absval{}
	}
}

var lockMethods = map[string]bool{
	"AcquireSh": true, "ReleaseSh": true, "AcquireEx": true,
	"ReleaseEx": true, "Upgrade": true, "CloseWindow": true,
	"BumpVersion": true, "Pessimistic": true,
}

// lockOp recognizes the optimistic-lock protocol: a method from the
// locks package called through a node's lock field. The owner is the
// expression the lock hangs off (`n` in `n.lock.AcquireSh(c)`).
func (a *fa) lockOp(call *ast.CallExpr, s *state) ([]absval, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !lockMethods[sel.Sel.Name] {
		return nil, false
	}
	fn := analysis.CalleeFunc(a.e.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "locks" {
		return nil, false
	}
	owner := ""
	if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		owner = pathOf(inner.X)
	} else {
		owner = pathOf(sel.X)
	}
	for _, arg := range call.Args {
		a.eval(arg, s)
	}
	switch sel.Sel.Name {
	case "AcquireSh":
		return []absval{{tok: owner}, {kind: vAcquireOK, tok: owner}}, true
	case "AcquireEx":
		a.setRisk(s, owner, rTrusted)
		return []absval{{tok: owner}}, true
	case "ReleaseSh":
		return []absval{{kind: vValidateOK, tok: owner}}, true
	case "Upgrade":
		return []absval{{kind: vUpgradeOK, tok: owner}}, true
	case "ReleaseEx":
		a.setRisk(s, owner, rShared)
		return []absval{{}}, true
	}
	return []absval{{}}, true // CloseWindow, BumpVersion, Pessimistic
}

func (a *fa) setRisk(s *state, path string, r risk) {
	if path == "" || a.pure > 0 {
		return
	}
	v, _ := s.get(path)
	v.r = r
	v.rmd = 0
	if r == rTrusted {
		v.rm = 0 // exclusivity holds regardless of the caller's state
	}
	s.vars[path] = v
}

// applySummary applies a callee summary at a call site: conditional
// events fire against the concrete arguments, or propagate into this
// function's own summary when the arguments are themselves
// parameter-conditional.
func (a *fa) applySummary(call *ast.CallExpr, fn *types.Func, sum *summary, s *state) absval {
	var args []absval
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				args = append(args, a.eval(sel.X, s))
			} else {
				args = append(args, absval{})
			}
		}
	}
	args = append(args, a.evalArgs(call, s)...)
	callee := "the callee"
	if fn != nil {
		callee = fn.Name()
	}
	for i, av := range args {
		bit := mask(1) << uint(i%64)
		if sum.deref&bit != 0 {
			if av.r == rRacy {
				a.flag(call.Pos(), "%s dereferences this pointer, which was loaded from node memory without a nil check, acquire, or validation", callee)
			}
			a.record(av.rmd, 0, 0)
		}
		if sum.sinkLoad&bit != 0 {
			if av.r >= rShared {
				a.flag(call.Pos(), "%s indexes by a value it loads from this optimistically-held node: clamp or validate before the call", callee)
			}
			a.record(0, av.rm, 0)
		}
		if sum.sinkVal&bit != 0 {
			if av.t == tTainted {
				a.flag(call.Pos(), "optimistically-read value passed to %s reaches an index, size, or loop bound without clamp or validation", callee)
			}
			a.record(0, av.tm, av.vm)
		}
	}
	out := absval{t: sum.ret.t, r: sum.ret.r}
	for i, av := range args {
		bit := mask(1) << uint(i%64)
		if sum.ret.tm&bit != 0 { // return derives from loads through param i
			if av.r >= rShared {
				out.t = tTainted
			}
			out.tm |= av.rm
		}
		if sum.ret.vm&bit != 0 { // return derives from param i's value
			out.t = joinTaint(out.t, av.t)
			out.tm |= av.tm
			out.vm |= av.vm
		}
		if sum.ret.rm&bit != 0 { // returned container loaded via param i
			if av.r >= rShared {
				out.r = rRacy
			}
			out.rm |= av.rm
			out.rmd |= av.rm
		}
	}
	if out.r == rRacy {
		out.rmd = 0 // concrete risk: the deref gate uses r directly
	}
	return a.typeCap(out, a.typeOf(call))
}
