package tornread

// Transfer functions, abstract evaluation and branch refinement for
// the torn-read lattice. The conventions:
//
//   - eval returns the abstract value of an expression and applies its
//     side effects (lock transitions, sink checks, deref gates) to the
//     state;
//   - refine adjusts a state copy along one conditional edge, using
//     effect-free evaluation (fa.pure) so a branch never re-reports or
//     re-transitions;
//   - parameter-conditional events accumulate into the function
//     summary; unconditional hazards report immediately (final pass).

import (
	"go/ast"
	"go/token"
	"go/types"
)

func (a *fa) typeOf(e ast.Expr) types.Type { return a.e.pass.Info.TypeOf(e) }

func (a *fa) flag(pos token.Pos, format string, args ...any) {
	if !a.report || !a.emit || a.pure > 0 || a.reported[pos] {
		return
	}
	a.reported[pos] = true
	a.e.pass.Reportf(pos, format, args...)
}

// record merges parameter-conditional sink/deref masks into the
// summary being built (skipped during effect-free refinement eval).
func (a *fa) record(deref, sinkLoad, sinkVal mask) {
	if a.pure > 0 {
		return
	}
	a.sum.deref |= deref
	a.sum.sinkLoad |= sinkLoad
	a.sum.sinkVal |= sinkVal
}

// transfer applies one CFG node to the state (in place; the caller
// clones).
func (a *fa) transfer(n ast.Node, s *state) *state {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.assign(n, s)
	case *ast.IncDecStmt:
		// x++ / x-- keep x's provenance level (Clamped survives: the
		// codebase idiom is pos+1 style offsets inside clamped ranges —
		// a documented soundness trade, see DESIGN §15).
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var v absval
					if i < len(vs.Values) {
						v = a.eval(vs.Values[i], s)
					}
					if name.Name != "_" {
						s.set(name.Name, v)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			a.foldReturn(a.eval(res, s))
		}
	case *ast.RangeStmt:
		a.rangeHead(n, s)
	case *ast.SwitchStmt:
		if n.Tag != nil {
			a.eval(n.Tag, s)
		}
	case *ast.TypeSwitchStmt:
		switch as := n.Assign.(type) {
		case *ast.AssignStmt:
			a.assign(as, s)
		case *ast.ExprStmt:
			a.eval(as.X, s)
		}
	case *ast.SendStmt:
		a.eval(n.Chan, s)
		a.eval(n.Value, s)
	case *ast.GoStmt:
		a.eval(n.Call, s)
	case *ast.SelectStmt, *ast.DeferStmt, *ast.BranchStmt, *ast.EmptyStmt:
		// Select comm ops live in clause blocks; deferred calls are
		// lowered into the defer chain by the CFG builder.
	case ast.Expr:
		if a.loopCond[n] {
			a.loopBound(n, s)
		}
		a.eval(n, s)
	}
	return s
}

func (a *fa) foldReturn(v absval) {
	if a.pure > 0 {
		return
	}
	v.kind, v.tok = vPlain, ""
	v.rmd = 0
	a.sum.ret = joinVal(a.sum.ret, v)
}

func compoundOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	}
	return token.ILLEGAL
}

func (a *fa) assign(n *ast.AssignStmt, s *state) {
	if op := compoundOp(n.Tok); op != token.ILLEGAL {
		if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			lv := a.eval(n.Lhs[0], s)
			rv := a.eval(n.Rhs[0], s)
			a.setLHS(n.Lhs[0], a.binop(op, lv, rv), s)
		}
		return
	}
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		vals := a.evalMulti(len(n.Lhs), n.Rhs[0], s)
		for i, lhs := range n.Lhs {
			a.setLHS(lhs, vals[i], s)
		}
		return
	}
	if len(n.Lhs) == len(n.Rhs) {
		vals := make([]absval, len(n.Rhs))
		for i := range n.Rhs {
			vals[i] = a.eval(n.Rhs[i], s)
		}
		for i, lhs := range n.Lhs {
			a.setLHS(lhs, vals[i], s)
		}
	}
}

// evalMulti evaluates a single multi-valued RHS into want values.
func (a *fa) evalMulti(want int, rhs ast.Expr, s *state) []absval {
	vals := make([]absval, want)
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		if lv, ok := a.lockOp(e, s); ok {
			copy(vals, lv)
			return vals
		}
		v := a.eval(e, s)
		for i := range vals {
			vals[i] = v
		}
		if want == 2 {
			vals[1] = absval{} // trailing ok/err bool is clean
		}
	case *ast.TypeAssertExpr:
		vals[0] = a.eval(e.X, s)
	case *ast.IndexExpr:
		vals[0] = a.eval(e, s) // comma-ok map read
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			a.eval(e.X, s)
		}
	default:
		vals[0] = a.eval(rhs, s)
	}
	return vals
}

func (a *fa) setLHS(lhs ast.Expr, v absval, s *state) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name != "_" {
			s.set(lhs.Name, v)
		}
	case *ast.SelectorExpr:
		base := a.eval(lhs.X, s)
		xt := a.typeOf(lhs.X)
		if xt != nil && a.e.isRacyType(xt) && !stableField(a.typeOf(lhs)) {
			if isPtr(xt) {
				a.derefGate(lhs.Pos(), base, lhs.Sel.Name)
			}
		}
		if p := pathOf(lhs); p != "" {
			s.set(p, v)
		}
	case *ast.StarExpr:
		base := a.eval(lhs.X, s)
		a.derefGate(lhs.Pos(), base, "*"+exprString(lhs.X))
	case *ast.IndexExpr:
		xv := a.eval(lhs.X, s)
		iv := a.eval(lhs.Index, s)
		if xt := a.typeOf(lhs.X); xt != nil {
			if _, isMap := xt.Underlying().(*types.Map); !isMap {
				a.sinkCheck(lhs.Index.Pos(), iv, "index")
			}
		}
		_ = xv
	}
}

func (a *fa) rangeHead(n *ast.RangeStmt, s *state) {
	xv := a.eval(n.X, s)
	xt := a.typeOf(n.X)
	var elemT types.Type
	overInt := false
	if xt != nil {
		switch u := xt.Underlying().(type) {
		case *types.Basic:
			if u.Info()&types.IsInteger != 0 {
				overInt = true
			}
		case *types.Slice:
			elemT = u.Elem()
		case *types.Array:
			elemT = u.Elem()
		case *types.Pointer:
			if arr, ok := u.Elem().Underlying().(*types.Array); ok {
				elemT = arr.Elem()
			}
		case *types.Map:
			elemT = u.Elem()
		case *types.Chan:
			elemT = u.Elem()
		}
	}
	if overInt {
		a.sinkCheck(n.X.Pos(), xv, "range bound")
	}
	if id, ok := n.Key.(*ast.Ident); ok && id.Name != "_" {
		kv := absval{}
		if overInt && xv.t >= tClamped {
			kv.t = tClamped // bounded by the (already checked) operand
		}
		s.set(id.Name, kv)
	}
	if n.Value != nil {
		if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
			s.set(id.Name, a.elemLoad(xv, elemT))
		}
	}
}

// loopBound checks a for-loop condition: the loop is acceptable when
// at least one &&-conjunct comparison is bounded entirely by clean or
// clamped operands (the `i < n.prefixLen && i < maxPrefix` idiom).
func (a *fa) loopBound(cond ast.Expr, s *state) {
	var comps []*ast.BinaryExpr
	var collect func(e ast.Expr)
	collect = func(e ast.Expr) {
		e = ast.Unparen(e)
		if b, ok := e.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.LAND:
				collect(b.X)
				collect(b.Y)
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ, token.EQL:
				comps = append(comps, b)
			}
		}
	}
	collect(cond)
	if len(comps) == 0 {
		return
	}
	a.pure++
	anyTainted := false
	cleanBound := false
	var firstTaint token.Pos
	var tmAll, vmAll mask
	for _, c := range comps {
		xv := a.eval(c.X, s)
		yv := a.eval(c.Y, s)
		tainted := xv.t == tTainted || yv.t == tTainted
		masked := xv.tm|yv.tm|xv.vm|yv.vm != 0
		if tainted {
			anyTainted = true
			if firstTaint == token.NoPos {
				firstTaint = c.Pos()
			}
		}
		tmAll |= xv.tm | yv.tm
		vmAll |= xv.vm | yv.vm
		if !tainted && !masked {
			cleanBound = true
		}
	}
	a.pure--
	if cleanBound {
		return
	}
	if anyTainted {
		a.flag(firstTaint, "loop bound derives from an optimistic read: clamp it or validate before looping")
	}
	a.record(0, tmAll, vmAll)
}

// sinkCheck handles a value arriving at an index/size/bound sink.
func (a *fa) sinkCheck(pos token.Pos, v absval, what string) {
	if v.t == tTainted {
		a.flag(pos, "optimistically-read value used as %s without clamp or validation", what)
	}
	a.record(0, v.tm, v.vm)
}

// derefGate handles reading or writing through a pointer into racy
// node memory.
func (a *fa) derefGate(pos token.Pos, base absval, what string) {
	if base.r == rRacy {
		a.flag(pos, "racy pointer dereference: %s is reached through a pointer loaded from node memory without a nil check, acquire, or validation", what)
	}
	a.record(base.rmd, 0, 0)
}

// elemLoad is the abstract value of one element read from a container.
func (a *fa) elemLoad(c absval, elemT types.Type) absval {
	v := absval{tm: c.rm, vm: c.vm}
	if c.r >= rShared {
		v.t = tTainted
	}
	if elemT != nil && a.e.isRacyType(elemT) {
		v.t, v.tm = tClean, 0
		if isPtr(elemT) {
			v.r, v.rm, v.rmd = rTrusted, c.rm, c.rm
			if c.r >= rShared {
				v.r = rRacy
			}
		} else {
			v.r, v.rm = c.r, c.rm
		}
	}
	return a.typeCap(v, elemT)
}

// typeCap applies intrinsic type bounds: an unsigned 8-bit value can
// index any 256-entry table but never exceed it, so torn uint8 loads
// cap at Clamped (documented: short slices indexed by raw bytes are a
// known gap, the tree's byte-indexed tables are all 256-wide).
func (a *fa) typeCap(v absval, t types.Type) absval {
	if t == nil {
		return v
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Uint8, types.Bool:
			if v.t > tClamped {
				v.t = tClamped
			}
			v.tm, v.vm = 0, 0
		}
	}
	return v
}

func isPtr(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

func isNilExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func exprString(e ast.Expr) string {
	if p := pathOf(e); p != "" {
		return p
	}
	return "pointer"
}

// pathOf returns the store key of an lvalue-ish expression: a plain
// ident, or a one-level selector off an ident.
func pathOf(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return ""
		}
		return e.Name
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && id.Name != "_" {
			return id.Name + "." + e.Sel.Name
		}
	}
	return ""
}

// eval computes the abstract value of e, applying side effects.
func (a *fa) eval(e ast.Expr, s *state) absval {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return a.eval(e.X, s)
	case *ast.Ident:
		if e.Name == "nil" || e.Name == "true" || e.Name == "false" || e.Name == "iota" {
			return absval{}
		}
		if v, ok := s.get(e.Name); ok {
			return v
		}
		return absval{} // package-level vars, consts: clean
	case *ast.BasicLit:
		return absval{}
	case *ast.SelectorExpr:
		return a.evalSelector(e, s)
	case *ast.StarExpr:
		return a.evalStar(e, s)
	case *ast.IndexExpr:
		return a.evalIndex(e, s)
	case *ast.IndexListExpr:
		return a.eval(e.X, s)
	case *ast.SliceExpr:
		xv := a.eval(e.X, s)
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil {
				a.sinkCheck(b.Pos(), a.eval(b, s), "slice bound")
			}
		}
		return xv
	case *ast.CallExpr:
		return a.evalCall(e, s)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.AND:
			a.eval(e.X, s)
			return absval{r: rTrusted}
		case token.ARROW:
			a.eval(e.X, s)
			return absval{}
		default:
			return a.eval(e.X, s)
		}
	case *ast.BinaryExpr:
		xv := a.eval(e.X, s)
		yv := a.eval(e.Y, s)
		return a.binop(e.Op, xv, yv)
	case *ast.CompositeLit:
		out := absval{}
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			out = joinVal(out, a.eval(elt, s))
		}
		t := a.typeOf(e)
		if t == nil || !a.e.isRacyType(t) {
			out.r, out.rm, out.rmd = rTrusted, 0, 0
		}
		out.kind, out.tok = vPlain, ""
		return a.typeCap(out, t)
	case *ast.TypeAssertExpr:
		return a.eval(e.X, s)
	case *ast.FuncLit:
		return absval{}
	}
	return absval{}
}

func (a *fa) binop(op token.Token, x, y absval) absval {
	cleanish := func(v absval) bool { return v.t <= tClamped && v.tm == 0 && v.vm == 0 }
	join := func() absval {
		return absval{t: joinTaint(x.t, y.t), tm: x.tm | y.tm, vm: x.vm | y.vm}
	}
	switch op {
	case token.LAND, token.LOR, token.EQL, token.NEQ,
		token.LSS, token.LEQ, token.GTR, token.GEQ:
		return absval{} // boolean results carry no taint
	case token.AND, token.AND_NOT:
		// Masking by a clean/clamped operand bounds the result.
		if cleanish(x) || cleanish(y) {
			t := joinTaint(x.t, y.t)
			if t > tClamped {
				t = tClamped
			}
			return absval{t: t}
		}
		return join()
	case token.REM:
		// x % m is bounded by a clean modulus.
		if cleanish(y) {
			t := joinTaint(x.t, y.t)
			if t > tClamped {
				t = tClamped
			}
			return absval{t: t}
		}
		return join()
	case token.SHR:
		return x // right shift never grows the magnitude
	}
	return join()
}

func (a *fa) evalSelector(e *ast.SelectorExpr, s *state) absval {
	if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
		if _, isPkg := a.e.pass.Info.Uses[id].(*types.PkgName); isPkg {
			return absval{} // qualified identifier
		}
	}
	if p := pathOf(e); p != "" {
		if v, ok := s.get(p); ok {
			return v
		}
	}
	if sel, ok := a.e.pass.Info.Selections[e]; ok && sel.Kind() != types.FieldVal {
		return absval{} // method value: base deref happens inside the callee
	}
	base := a.eval(e.X, s)
	return a.fieldLoad(e, base, s)
}

func (a *fa) fieldLoad(e *ast.SelectorExpr, base absval, s *state) absval {
	xt := a.typeOf(e.X)
	ft := a.typeOf(e)
	if xt == nil || !a.e.isRacyType(xt) {
		// Field of a trusted (non-node) container: pointers into the
		// tree start trusted (the acquire transition downgrades them);
		// plain values inherit the container's provenance.
		v := absval{t: base.t, tm: base.tm, vm: base.vm}
		return a.typeCap(v, ft)
	}
	if stableField(ft) {
		// Lock words, atomics, interfaces: readable through any pointer
		// (type-stable node memory, see DESIGN §9/§15).
		return absval{}
	}
	if isPtr(xt) {
		a.derefGate(e.Pos(), base, exprString(e.X)+"."+e.Sel.Name)
	}
	v := absval{tm: base.rm, vm: base.vm}
	if base.r >= rShared {
		v.t = tTainted
	}
	if ft != nil {
		switch ft.Underlying().(type) {
		case *types.Pointer:
			v.t, v.tm = tClean, 0
			v.r, v.rm, v.rmd = rTrusted, base.rm, base.rm
			if base.r >= rShared {
				v.r = rRacy
			}
		case *types.Slice, *types.Array:
			// Headers are stable; elements carry the container's risk.
			v.t, v.tm = tClean, 0
			v.r, v.rm = rTrusted, base.rm
			if base.r >= rShared {
				v.r = rShared
			}
		case *types.Struct:
			v.t, v.tm = tClean, 0
			v.r, v.rm = base.r, base.rm
		}
	}
	return a.typeCap(v, ft)
}

func (a *fa) evalStar(e *ast.StarExpr, s *state) absval {
	base := a.eval(e.X, s)
	a.derefGate(e.Pos(), base, "*"+exprString(e.X))
	t := a.typeOf(e)
	v := absval{tm: base.rm, vm: base.vm}
	if base.r >= rShared {
		v.t = tTainted
	}
	if t != nil && a.e.isRacyType(t) {
		v.t, v.tm = tClean, 0
		v.r, v.rm = base.r, base.rm
		if v.r == rRacy {
			v.r = rShared // the deref already happened (and was gated)
		}
	}
	return a.typeCap(v, t)
}

func (a *fa) evalIndex(e *ast.IndexExpr, s *state) absval {
	if tv, ok := a.e.pass.Info.Types[e.X]; ok && tv.IsType() {
		return absval{}
	}
	xt := a.typeOf(e.X)
	if xt != nil {
		if _, isSig := xt.Underlying().(*types.Signature); isSig {
			return a.eval(e.X, s) // generic instantiation
		}
	}
	xv := a.eval(e.X, s)
	iv := a.eval(e.Index, s)
	isMap := false
	var elemT types.Type
	if xt != nil {
		switch u := xt.Underlying().(type) {
		case *types.Map:
			isMap = true
			elemT = u.Elem()
		case *types.Slice:
			elemT = u.Elem()
		case *types.Array:
			elemT = u.Elem()
		case *types.Pointer:
			if arr, ok := u.Elem().Underlying().(*types.Array); ok {
				elemT = arr.Elem()
			}
		case *types.Basic:
			elemT = types.Typ[types.Byte] // string indexing
		}
	}
	if !isMap {
		a.sinkCheck(e.Index.Pos(), iv, "index")
	}
	return a.elemLoad(xv, elemT)
}
