// Package tornread implements the torn-read taint analysis: inside an
// optimistic (shared-acquired) section, every value loaded from node
// memory is tainted until it passes a sanitizer, and tainted values
// must not reach an indexing operation, an allocation size, a loop
// bound, or an unchecked pointer dereference.
//
// This mechanizes the paper's "tolerate torn reads, rely on version
// validation" contract: optimistic readers execute over memory that
// concurrent writers may be mutating, so any loaded count, offset,
// prefix length or child pointer may be stale or torn. In Go the
// hazard is not memory corruption but panics (out-of-range slice
// index, nil dereference of a recycled child), unbounded loops and
// absurd allocations — exactly the failure class the hand-written
// clamps (clampedCount, clampedChildren, the bounded SWAR kernels)
// exist to prevent. tornread proves every such value is clamped,
// validated, or never trusted.
//
// The analysis is a forward dataflow over the cfg package's CFGs with
// two cooperating lattices:
//
//   - a taint level per value: Clean < Clamped < Tainted, where
//     Clamped means "provenance is a racy load, but the value passed a
//     bounds sanitizer" (min/max with a clean operand, a mask, a
//     dominating comparison against a clean bound, a successful
//     validation, or an unsigned-8-bit type, whose range is
//     intrinsically bounded);
//   - a risk level per pointer/container: Trusted < Shared < Racy.
//     Trusted pointers (fresh allocations, exclusively locked nodes,
//     quiescent walks from the tree root) yield clean loads; Shared
//     (optimistically locked, or racy-but-nil-checked) pointers may be
//     dereferenced but yield tainted loads; Racy pointers (loaded from
//     node memory, unchecked) may not be dereferenced at all, except
//     for the lock word and atomic fields, which the coupling protocol
//     must touch before validation (sound only because node memory is
//     type-stable under the recycler — see DESIGN §9/§15).
//
// Interprocedural flow uses per-function summaries established in the
// Collect phase and carried through the vetx fact files: which
// parameters are dereferenced unchecked, which reach sinks by value or
// through racy loads, and how the return value derives from the
// arguments. Flagging for parameter-conditional events happens at call
// sites, so a helper that indexes by a raw count is fine when every
// caller holds the node exclusively, and flagged at exactly the call
// site that passes an optimistically held node.
package tornread

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"optiql/internal/analysis"
	"optiql/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "tornread",
	Doc: `check that optimistically-read values are clamped or validated before use

Inside a shared/optimistic section (between AcquireSh and the matching
ReleaseSh/Upgrade validation), values loaded from lock-guarded node
memory are tainted. Taint propagates through arithmetic, joins and
summarized calls; sinks are slice/array indexing, make sizes, loop
bounds and dereference of a racy-loaded pointer. Sanitizers: bounds
clamps (min/max/mask, comparison against a clean bound), unsigned-8-bit
types, and a dominating successful validation.`,
	Collect: collect,
	Run:     run,
}

// Taint levels.
type taint uint8

const (
	tClean taint = iota
	tClamped
	tTainted
)

// Container/pointer risk levels.
type risk uint8

const (
	rTrusted risk = iota
	rShared       // deref allowed, loads tainted
	rRacy         // deref flags, loads tainted
)

// Value kinds for lock-protocol results.
const (
	vPlain = iota
	vAcquireOK
	vValidateOK
	vUpgradeOK
)

// mask is a parameter bit set (receiver is bit 0 of a method).
type mask uint64

// absval is the abstract value of one variable or access path.
type absval struct {
	t    taint
	tm   mask // tainted iff param i is passed shared/racy at the call site
	vm   mask // param i's value flows here
	r    risk
	rm   mask  // loads through this container conditional on param i
	rmd  mask  // unchecked-deref conditional on param i (cleared by nil checks)
	kind uint8 // vAcquireOK etc. for lock-protocol results
	tok  string
}

func (v absval) isZero() bool {
	return v.t == tClean && v.tm == 0 && v.vm == 0 && v.r == rTrusted && v.rm == 0 && v.rmd == 0 && v.kind == vPlain
}

func joinTaint(a, b taint) taint {
	if a > b {
		return a
	}
	return b
}

func joinRisk(a, b risk) risk {
	if a > b {
		return a
	}
	return b
}

func joinVal(a, b absval) absval {
	out := absval{
		t:  joinTaint(a.t, b.t),
		tm: a.tm | b.tm, vm: a.vm | b.vm,
		r: joinRisk(a.r, b.r), rm: a.rm | b.rm, rmd: a.rmd | b.rmd,
	}
	if a.kind == b.kind && a.tok == b.tok {
		out.kind, out.tok = a.kind, a.tok
	}
	return out
}

// state maps variable names and one-level access paths ("r", "r.l")
// to abstract values.
type state struct {
	vars map[string]absval
}

func newState() *state { return &state{vars: make(map[string]absval)} }

func (s *state) clone() *state {
	ns := &state{vars: make(map[string]absval, len(s.vars))}
	for k, v := range s.vars {
		ns.vars[k] = v
	}
	return ns
}

func (s *state) get(path string) (absval, bool) {
	v, ok := s.vars[path]
	return v, ok
}

func (s *state) set(path string, v absval) {
	if base, _, isPath := strings.Cut(path, "."); isPath {
		_ = base
	} else {
		// Assigning the base variable invalidates refined sub-paths.
		prefix := path + "."
		for k := range s.vars {
			if strings.HasPrefix(k, prefix) {
				delete(s.vars, k)
			}
		}
	}
	if v.isZero() {
		delete(s.vars, path)
		return
	}
	s.vars[path] = v
}

// summary is one function's interprocedural digest.
type summary struct {
	deref    mask // params dereferenced without a nil check or validation
	sinkLoad mask // racy loads through param i reach a sink
	sinkVal  mask // param i's value reaches a sink
	ret      absval
	// analyzed marks a real summary (vs the unknown-callee default).
	analyzed bool
}

func (s *summary) encode() string {
	return fmt.Sprintf("d=%x sl=%x sv=%x rt=%d rtm=%x rvm=%x rr=%d rrm=%x",
		uint64(s.deref), uint64(s.sinkLoad), uint64(s.sinkVal),
		s.ret.t, uint64(s.ret.tm), uint64(s.ret.vm), s.ret.r, uint64(s.ret.rm))
}

func decodeSummary(v string) *summary {
	s := &summary{analyzed: true}
	var rt, rr int
	var d, sl, sv, rtm, rvm, rrm uint64
	_, err := fmt.Sscanf(v, "d=%x sl=%x sv=%x rt=%d rtm=%x rvm=%x rr=%d rrm=%x",
		&d, &sl, &sv, &rt, &rtm, &rvm, &rr, &rrm)
	if err != nil {
		return nil
	}
	s.deref, s.sinkLoad, s.sinkVal = mask(d), mask(sl), mask(sv)
	s.ret = absval{t: taint(rt), tm: mask(rtm), vm: mask(rvm), r: risk(rr), rm: mask(rrm)}
	return s
}

func (s *summary) equal(o *summary) bool {
	return s.deref == o.deref && s.sinkLoad == o.sinkLoad && s.sinkVal == o.sinkVal &&
		s.ret.t == o.ret.t && s.ret.tm == o.ret.tm && s.ret.vm == o.ret.vm &&
		s.ret.r == o.ret.r && s.ret.rm == o.ret.rm
}

// skippedPkgs are package names whose internals implement the lock and
// kernel machinery itself and legitimately manipulate racy words.
var skippedPkgs = map[string]bool{"locks": true}

func collect(pass *analysis.Pass) {
	if skippedPkgs[pass.Pkg.Name()] {
		return
	}
	e := newEngine(pass, false)
	e.summarizePackage()
	for key, sum := range e.pkgSums {
		pass.Facts.Set("tr:"+key, sum.encode())
	}
}

func run(pass *analysis.Pass) error {
	if skippedPkgs[pass.Pkg.Name()] {
		return nil
	}
	e := newEngine(pass, true)
	e.summarizePackage() // local summaries (test-file helpers included)
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			// Tests exercise deliberate protocol violations (torn-read
			// simulations, white-box node surgery) under controlled
			// quiescence; the gate is for production code.
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			e.analyzeFunc(fd, true)
		}
	}
	return nil
}

func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// engine analyzes the functions of one package.
type engine struct {
	pass    *analysis.Pass
	report  bool
	racy    map[*types.Named]bool
	pkgSums map[string]*summary
	// litSums holds summaries of function literals bound to local
	// variables, keyed by the variable's object.
	litSums map[types.Object]*summary
}

func newEngine(pass *analysis.Pass, report bool) *engine {
	e := &engine{
		pass:    pass,
		report:  report,
		pkgSums: make(map[string]*summary),
		litSums: make(map[types.Object]*summary),
	}
	e.racy = racyStructs(pass)
	return e
}

// racyStructs finds the lock-guarded node structs: any struct with a
// lock-typed field from the locks package seeds the set, and the set
// closes over pointer/slice/array/struct fields (a ref cell inside a
// node, the leaf it points to — everything a torn read can reach).
func racyStructs(pass *analysis.Pass) map[*types.Named]bool {
	racy := make(map[*types.Named]bool)
	scope := pass.Pkg.Scope()
	var all []*types.Named
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		all = append(all, named)
		for i := 0; i < st.NumFields(); i++ {
			if isLockType(st.Field(i).Type()) {
				racy[named] = true
			}
		}
	}
	// Close over reachable node structs.
	for changed := true; changed; {
		changed = false
		for _, named := range all {
			if racy[named] {
				continue
			}
			// named becomes racy if a racy struct reaches it by field.
			for r := range racy {
				st := r.Underlying().(*types.Struct)
				for i := 0; i < st.NumFields(); i++ {
					if fieldReaches(st.Field(i).Type(), named) {
						racy[named] = true
						changed = true
					}
				}
			}
		}
	}
	return racy
}

func fieldReaches(t types.Type, target *types.Named) bool {
	switch t := t.(type) {
	case *types.Pointer:
		return namedOf(t.Elem()) == target
	case *types.Slice:
		return fieldReaches(t.Elem(), target)
	case *types.Array:
		return fieldReaches(t.Elem(), target)
	case *types.Named:
		return t == target
	}
	return false
}

func isLockType(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Name() != "locks" {
		return false
	}
	return strings.Contains(n.Obj().Name(), "Lock")
}

func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// isRacyType reports whether t (or its pointee) is a racy node struct.
func (e *engine) isRacyType(t types.Type) bool {
	n := namedOf(t)
	return n != nil && e.racy[n]
}

// stableField reports whether a field of a racy struct is safe to read
// through any pointer: the lock word itself, atomics, and interfaces
// (written once at node init under the lock protocol).
func stableField(t types.Type) bool {
	if _, ok := t.Underlying().(*types.Interface); ok {
		return true
	}
	if n := namedOf(t); n != nil && n.Obj().Pkg() != nil {
		switch n.Obj().Pkg().Name() {
		case "atomic", "sync", "locks":
			return true
		}
	}
	return false
}

// summarizePackage computes fixpoint summaries for every function in
// the package. Three rounds bound mutual and self recursion; summaries
// grow monotonically, so unconverged cycles just stay conservative.
func (e *engine) summarizePackage() {
	for round := 0; round < 3; round++ {
		changed := false
		for _, file := range e.pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				key := e.declKey(fd)
				sum := e.analyzeFunc(fd, false)
				if old, ok := e.pkgSums[key]; !ok || !old.equal(sum) {
					e.pkgSums[key] = sum
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

// declKey is the summary key of a declared function:
// "<pkgname>.<recv>.<name>" or "<pkgname>..<name>".
func (e *engine) declKey(fd *ast.FuncDecl) string {
	recv := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		recv = recvTypeName(fd.Recv.List[0].Type)
	}
	return e.pass.Pkg.Name() + "." + recv + "." + fd.Name.Name
}

func recvTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}

// funcKey derives the summary key of a resolved callee.
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			recv = n.Obj().Name()
		}
	}
	return fn.Pkg().Name() + "." + recv + "." + fn.Name()
}

// lookupSummary resolves a callee summary: package-local first, then
// the module-wide facts from Collect.
func (e *engine) lookupSummary(fn *types.Func) *summary {
	key := funcKey(fn)
	if key == "" {
		return nil
	}
	if s, ok := e.pkgSums[key]; ok {
		return s
	}
	if v, ok := e.pass.Facts.Get("tr:" + key); ok {
		return decodeSummary(v)
	}
	return nil
}

// fa is the per-function analysis.
type fa struct {
	e      *engine
	fnName string
	params map[types.Object]int // param object -> bit index
	sum    *summary
	report bool
	// emit gates diagnostics to the final (post-fixpoint) pass so the
	// worklist iterations never double-report.
	emit bool
	// pure suppresses effects during branch-refinement evaluation.
	pure     int
	loopCond map[ast.Expr]bool
	reported map[token.Pos]bool
}

// analyzeFunc runs the dataflow over one function body, returning its
// summary. With report=true, unconditional findings are reported.
func (e *engine) analyzeFunc(fd *ast.FuncDecl, report bool) *summary {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if r := recvTypeName(fd.Recv.List[0].Type); r != "" {
			name = r + "." + name
		}
	}
	return e.analyzeBody(fd.Body, fd.Recv, fd.Type, name, report)
}

func (e *engine) analyzeBody(body *ast.BlockStmt, recv *ast.FieldList, ftyp *ast.FuncType, name string, report bool) *summary {
	a := &fa{
		e: e, fnName: name, report: report,
		params:   make(map[types.Object]int),
		sum:      &summary{analyzed: true},
		loopCond: make(map[ast.Expr]bool),
		reported: make(map[token.Pos]bool),
	}
	entry := newState()
	idx := 0
	bind := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			names := f.Names
			if len(names) == 0 {
				idx++ // unnamed param still occupies a bit
				continue
			}
			for _, id := range names {
				obj := e.pass.Info.Defs[id]
				if obj == nil {
					idx++
					continue
				}
				a.params[obj] = idx
				entry.set(id.Name, a.paramVal(obj.Type(), idx))
				idx++
			}
		}
	}
	bind(recv)
	bind(ftyp.Params)

	// Pre-passes over the body: loop conditions (for the loop-bound
	// sink) and function literals bound to locals.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Cond != nil {
				a.loopCond[n.Cond] = true
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if lit, ok := n.Rhs[0].(*ast.FuncLit); ok {
					if id, ok := n.Lhs[0].(*ast.Ident); ok {
						a.bindLit(id, lit)
					}
				}
			}
		}
		return true
	})

	g := cfg.Build(body)
	in := cfg.Solve(g, &problem{a: a, entry: entry})
	// Reporting pass: re-run transfers over the stable in-states with
	// diagnostics enabled (Solve may visit a block several times; the
	// final pass emits each finding once, deduped by position).
	a.emit = true
	for _, blk := range g.Blocks {
		st, ok := in[blk]
		if !ok || !blk.Live {
			continue
		}
		s := st.(*state).clone()
		for _, n := range blk.Stmts {
			s = a.transfer(n, s)
		}
	}
	return a.sum
}

// bindLit analyzes a function literal bound to a local variable so
// calls through the variable use its summary. Two rounds cover simple
// self recursion (walk-style helpers).
func (a *fa) bindLit(id *ast.Ident, lit *ast.FuncLit) {
	obj := a.e.pass.Info.Defs[id]
	if obj == nil {
		return
	}
	if _, done := a.e.litSums[obj]; done {
		return
	}
	a.e.litSums[obj] = &summary{analyzed: true} // recursion placeholder
	for i := 0; i < 2; i++ {
		a.e.litSums[obj] = a.e.analyzeBody(lit.Body, nil, lit.Type, "func literal", false)
	}
}

// paramVal is the entry abstract value of parameter i.
func (a *fa) paramVal(t types.Type, i int) absval {
	bit := mask(1) << uint(i%64)
	if a.e.isRacyType(t) {
		switch t.(type) {
		case *types.Pointer:
			return absval{r: rTrusted, rm: bit, rmd: bit}
		default:
			// Racy struct value, or slice/array of racy cells: loads are
			// conditional, but a value copy cannot be dereferenced.
			return absval{r: rTrusted, rm: bit}
		}
	}
	switch tt := t.Underlying().(type) {
	case *types.Slice:
		if a.e.isRacyType(tt.Elem()) {
			return absval{rm: bit}
		}
	case *types.Array:
		if a.e.isRacyType(tt.Elem()) {
			return absval{rm: bit}
		}
	}
	return absval{vm: bit}
}

// problem adapts fa to the cfg solver.
type problem struct {
	a     *fa
	entry *state
}

func (p *problem) Entry() cfg.State { return p.entry }

func (p *problem) Transfer(n ast.Node, s cfg.State) cfg.State {
	return p.a.transfer(n, s.(*state).clone())
}

func (p *problem) Branch(cond ast.Expr, truth bool, s cfg.State) cfg.State {
	ns := s.(*state).clone()
	p.a.refine(cond, truth, ns)
	return ns
}

func (p *problem) Join(x, y cfg.State) cfg.State {
	a, b := x.(*state), y.(*state)
	out := newState()
	for k, v := range a.vars {
		if w, ok := b.vars[k]; ok {
			out.vars[k] = joinVal(v, w)
		} else if !strings.Contains(k, ".") {
			out.vars[k] = v
		}
		// Refined access paths present on only one branch are dropped:
		// the other path would re-evaluate the raw load.
	}
	for k, v := range b.vars {
		if _, ok := a.vars[k]; !ok && !strings.Contains(k, ".") {
			out.vars[k] = v
		}
	}
	return out
}

func (p *problem) Equal(x, y cfg.State) bool {
	a, b := x.(*state), y.(*state)
	if len(a.vars) != len(b.vars) {
		return false
	}
	for k, v := range a.vars {
		if w, ok := b.vars[k]; !ok || v != w {
			return false
		}
	}
	return true
}
