package tornread

import "testing"

// TestSummaryRoundTrip pins the vetx fact encoding: a summary must
// survive encode/decode exactly, for every field the call-site logic
// consumes.
func TestSummaryRoundTrip(t *testing.T) {
	cases := []summary{
		{},
		{deref: 1, sinkLoad: 2, sinkVal: 4},
		{deref: 0xdead, sinkLoad: 0xbeef, sinkVal: 0xffff_ffff_ffff_ffff},
		{ret: absval{t: tTainted, tm: 3, vm: 5, r: rRacy, rm: 9}},
		{deref: 1, ret: absval{t: tClamped, r: rShared, rm: 1}},
	}
	for i, s := range cases {
		s.analyzed = true
		got := decodeSummary(s.encode())
		if got == nil {
			t.Fatalf("case %d: decode(%q) failed", i, s.encode())
		}
		if !got.equal(&s) {
			t.Errorf("case %d: round-trip mismatch: %q -> %+v", i, s.encode(), got)
		}
	}
	if decodeSummary("garbage") != nil {
		t.Error("decoding garbage must fail, not fabricate a summary")
	}
}
