// Package noalloc rejects allocating constructs in functions
// annotated `//optiql:noalloc` — the point-read, scan and wire paths
// whose 0 allocs/op budgets are pinned dynamically by the
// alloc_test.go suites (PR 4). The analyzer makes the same budget a
// compile-time property: a regression is reported at the exact
// construct, not as a flaky benchmark delta.
//
// Flagged constructs:
//
//   - make and new calls, and composite literals that heap-allocate
//     (slice and map literals, and &T{...} pointer literals); plain
//     struct values (KV{...}) are stack-friendly and allowed
//   - append whose result is not reassigned to its own first argument
//     (x = append(x, ...) is amortized-zero into a reused buffer and
//     allowed; y := append(x, ...) grows a new backing array)
//   - function literals (closure environments live on the heap)
//   - boxing a non-pointer value into an interface (explicit
//     conversions, call arguments, assignments and returns); pointers
//     and constants box without allocating and are allowed
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions
//   - go statements and defers inside loops
//
// The check is per-construct and intraprocedural: calls to
// unannotated helpers are trusted (the dynamic alloc tests keep them
// honest), which is the documented soundness gap. Intentional cold
// paths inside a hot function (fallback buffers for oversized
// fanouts) carry an optiqlvet:ignore with their justification.
package noalloc

import (
	"go/ast"
	"go/types"

	"optiql/internal/analysis"
)

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //optiql:noalloc must not contain allocating constructs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !analysis.HasAnnotation(fd.Doc, "noalloc") {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	analysis.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, name, e, stack)
		case *ast.CompositeLit:
			checkCompositeLit(pass, name, e, stack)
		case *ast.FuncLit:
			pass.Reportf(e.Pos(), "function literal in noalloc function %s (closure environments allocate)", name)
			return false // don't descend; one report suffices
		case *ast.BinaryExpr:
			checkConcat(pass, name, e)
		case *ast.GoStmt:
			pass.Reportf(e.Pos(), "go statement in noalloc function %s (new goroutine allocates)", name)
		case *ast.DeferStmt:
			if inLoop(stack) {
				pass.Reportf(e.Pos(), "defer inside a loop in noalloc function %s allocates per iteration", name)
			}
		case *ast.AssignStmt, *ast.ReturnStmt:
			checkImplicitBoxing(pass, name, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, name string, call *ast.CallExpr, stack []ast.Node) {
	switch analysis.BuiltinName(pass.Info, call) {
	case "make":
		pass.Reportf(call.Pos(), "make in noalloc function %s", name)
		return
	case "new":
		pass.Reportf(call.Pos(), "new in noalloc function %s", name)
		return
	case "append":
		if !appendInPlace(pass, call, stack) {
			pass.Reportf(call.Pos(), "append result not reassigned to its own first argument in noalloc function %s (growth allocates a new backing array)", name)
		}
		return
	}
	// Conversions: T(x) parses as a CallExpr.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		checkConversion(pass, name, call, tv.Type)
		return
	}
	// Interface-boxing call arguments.
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < sig.Params().Len()-1 || (!sig.Variadic() && i < sig.Params().Len()):
			pt = sig.Params().At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				pt = sig.Params().At(sig.Params().Len() - 1).Type()
			} else if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if pt != nil {
			checkBox(pass, name, arg, pt)
		}
	}
}

// appendInPlace reports whether the append call's result is assigned
// back over its first argument (`x = append(x, ...)`), the
// amortized-zero reuse idiom.
func appendInPlace(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 {
		return false
	}
	if len(stack) == 0 {
		return false
	}
	asg, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Rhs[0] != ast.Expr(call) {
		return false
	}
	return types.ExprString(asg.Lhs[0]) == types.ExprString(call.Args[0])
}

func checkCompositeLit(pass *analysis.Pass, name string, lit *ast.CompositeLit, stack []ast.Node) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	switch types.Unalias(tv.Type).Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal in noalloc function %s", name)
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal in noalloc function %s", name)
	default:
		// &T{...}: the pointer forces a heap allocation.
		if len(stack) > 0 {
			if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op.String() == "&" {
				pass.Reportf(lit.Pos(), "&composite literal in noalloc function %s (escaping pointer allocates)", name)
			}
		}
	}
}

func checkConcat(pass *analysis.Pass, name string, e *ast.BinaryExpr) {
	if e.Op.String() != "+" {
		return
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value != nil { // constant-folded
		return
	}
	if b, ok := types.Unalias(tv.Type).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		pass.Reportf(e.Pos(), "non-constant string concatenation in noalloc function %s", name)
	}
}

func checkConversion(pass *analysis.Pass, name string, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src, ok := pass.Info.Types[call.Args[0]]
	if !ok {
		return
	}
	tu := types.Unalias(target).Underlying()
	su := types.Unalias(src.Type).Underlying()
	if isString(tu) && isByteOrRuneSlice(su) || isByteOrRuneSlice(tu) && isString(su) {
		if src.Value == nil {
			pass.Reportf(call.Pos(), "string conversion copies in noalloc function %s", name)
		}
		return
	}
	if types.IsInterface(tu) {
		checkBox(pass, name, call.Args[0], target)
	}
}

// checkImplicitBoxing covers interface boxing through assignment and
// return statements.
func checkImplicitBoxing(pass *analysis.Pass, name string, n ast.Node) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != len(s.Rhs) {
			return
		}
		for i := range s.Lhs {
			if lt, ok := pass.Info.Types[s.Lhs[i]]; ok {
				checkBox(pass, name, s.Rhs[i], lt.Type)
			}
		}
	case *ast.ReturnStmt:
		// Conservative: only direct single-result boxing is caught
		// here; the result types come from the enclosing signature,
		// which WalkStack does not carry. Explicit conversions and
		// call arguments cover the common cases.
	}
}

// checkBox reports a non-pointer, non-constant concrete value being
// boxed into an interface-typed slot.
func checkBox(pass *analysis.Pass, name string, arg ast.Expr, target types.Type) {
	tu := types.Unalias(target).Underlying()
	if !types.IsInterface(tu) {
		return
	}
	av, ok := pass.Info.Types[arg]
	if !ok || av.Type == nil {
		return
	}
	if av.Value != nil { // constants box to static interface data
		return
	}
	at := types.Unalias(av.Type).Underlying()
	if types.IsInterface(at) {
		return // already an interface; no new box
	}
	switch at.(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: stored directly in the interface word
	case *types.Basic:
		if at.(*types.Basic).Kind() == types.UntypedNil {
			return
		}
	}
	pass.Reportf(arg.Pos(), "value of type %s boxed into interface in noalloc function %s", av.Type, name)
}

func callSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := types.Unalias(tv.Type).Underlying().(*types.Signature)
	return sig
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func inLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}
