package noalloc_test

import (
	"testing"

	"optiql/internal/analysis/analysistest"
	"optiql/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.RunPattern(t, "../testdata", "./noalloc", noalloc.Analyzer)
}
