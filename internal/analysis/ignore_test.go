package analysis_test

import (
	"testing"

	"optiql/internal/analysis/analysistest"
	"optiql/internal/analysis/shcheck"
)

// TestIgnoreDirectives exercises the suppression machinery end to
// end through the driver: same-line and line-above suppression,
// malformed directives (no analyzer, no reason) reported as
// ignorecheck findings, and stale directives reported as unused.
func TestIgnoreDirectives(t *testing.T) {
	analysistest.RunPattern(t, "testdata", "./ignore", shcheck.Analyzer)
}
