// Package shcheck enforces the optimistic-read validation protocol
// (paper Alg 4 / §6.1): a datum read under an optimistic AcquireSh
// token may only be trusted after the matching ReleaseSh validation
// has been checked.
//
// Concretely, for every call to a locks-package AcquireSh, ReleaseSh
// or Upgrade (matched by package *name* so the testdata stubs
// exercise the same code paths):
//
//   - AcquireSh must be consumed as `tok, ok := x.AcquireSh(c)` and
//     the ok flag must be branched on somewhere in the function;
//     discarding it (blank identifier, bare expression statement)
//     admits unvalidated reads.
//   - ReleaseSh's boolean must flow into control flow: a branch
//     condition, an assigned variable that is later branched on or
//     returned, a return value, or a call argument. Discarding it as
//     a bare statement is allowed only on restart cleanup paths —
//     when the statement (possibly through a chain of further cleanup
//     releases) is directly followed by a goto/continue/break, so no
//     value read under the token can escape. Discard-then-return is
//     flagged: returns can leak token-protected reads.
//   - A deferred ReleaseSh discards the validation result by
//     construction and is flagged (pessimistic-only paths document
//     themselves with an optiqlvet:ignore directive).
//   - Upgrade's boolean must be branched on: an unchecked upgrade
//     continues as if it held the lock exclusively.
//
// Soundness gaps (documented in DESIGN.md §10): the check is
// per-function and name-based; tokens passed across function
// boundaries are trusted, and "branched on somewhere" does not prove
// the branch dominates every escaping read.
package shcheck

import (
	"go/ast"

	"optiql/internal/analysis"
)

// Analyzer is the shcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "shcheck",
	Doc:  "optimistic AcquireSh/ReleaseSh results must gate every read made under the token",
	Run:  run,
}

const lockPkgName = "locks"

func run(pass *analysis.Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == lockPkgName {
		// The locks package implements the primitives; its internals
		// manipulate lock words, not tokens-under-protocol.
		return nil
	}
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case analysis.IsPkgFunc(pass.Info, call, lockPkgName, "AcquireSh"):
				checkAcquireSh(pass, call, stack)
			case analysis.IsPkgFunc(pass.Info, call, lockPkgName, "ReleaseSh"):
				checkReleaseSh(pass, call, stack)
			case analysis.IsPkgFunc(pass.Info, call, lockPkgName, "Upgrade"):
				checkUpgrade(pass, call, stack)
			}
			return true
		})
	}
	return nil
}

// enclosingFunc returns the body of the innermost function in the
// stack.
func enclosingFunc(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return fn.Body
		case *ast.FuncDecl:
			return fn.Body
		}
	}
	return nil
}

func checkAcquireSh(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	// Expect: tok, ok := x.AcquireSh(c) (possibly as an if/for init).
	asg := parentAssign(stack)
	if asg == nil || len(asg.Lhs) != 2 || len(asg.Rhs) != 1 {
		pass.Reportf(call.Pos(), "optimistic AcquireSh must be consumed as `tok, ok := ...` so the admission flag is checked (in %s)", analysis.EnclosingFuncName(stack))
		return
	}
	okIdent, ok := asg.Lhs[1].(*ast.Ident)
	if !ok || okIdent.Name == "_" {
		pass.Reportf(call.Pos(), "AcquireSh admission flag is discarded; an unadmitted optimistic read must not proceed (in %s)", analysis.EnclosingFuncName(stack))
		return
	}
	if !flagBranched(pass, stack, okIdent) {
		pass.Reportf(call.Pos(), "AcquireSh admission flag %q is never branched on (in %s)", okIdent.Name, analysis.EnclosingFuncName(stack))
	}
}

func checkUpgrade(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	if usedAsControl(pass, call, stack) {
		return
	}
	pass.Reportf(call.Pos(), "Upgrade result must be branched on: an unchecked upgrade proceeds without holding the lock exclusively (in %s)", analysis.EnclosingFuncName(stack))
}

func checkReleaseSh(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	if len(stack) == 0 {
		return
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.ExprStmt:
		if !followedByJump(pass, p, stack[:len(stack)-1]) {
			pass.Reportf(call.Pos(), "ReleaseSh validation result discarded outside a restart path; data read under the token may escape unvalidated (in %s)", analysis.EnclosingFuncName(stack))
		}
		return
	case *ast.DeferStmt:
		pass.Reportf(call.Pos(), "deferred ReleaseSh discards the validation result (in %s)", analysis.EnclosingFuncName(stack))
		return
	case *ast.GoStmt:
		pass.Reportf(call.Pos(), "ReleaseSh in a go statement discards the validation result (in %s)", analysis.EnclosingFuncName(stack))
		return
	case *ast.AssignStmt:
		checkAssignedFlag(pass, p, call, stack)
		return
	}
	if usedAsControl(pass, call, stack) {
		return
	}
	pass.Reportf(call.Pos(), "ReleaseSh validation result must reach a branch, return or caller (in %s)", analysis.EnclosingFuncName(stack))
}

// checkAssignedFlag handles `ok := x.ReleaseSh(c, tok)`: the assigned
// variable must later be branched on or escape via return/call.
func checkAssignedFlag(pass *analysis.Pass, asg *ast.AssignStmt, call *ast.CallExpr, stack []ast.Node) {
	if len(asg.Rhs) != 1 || len(asg.Lhs) != 1 {
		pass.Reportf(call.Pos(), "ReleaseSh result in a multi-assignment; assign and branch on it directly (in %s)", analysis.EnclosingFuncName(stack))
		return
	}
	id, ok := asg.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		pass.Reportf(call.Pos(), "ReleaseSh validation result assigned to blank; data read under the token may escape unvalidated (in %s)", analysis.EnclosingFuncName(stack))
		return
	}
	if !flagBranched(pass, stack, id) {
		pass.Reportf(call.Pos(), "ReleaseSh validation result %q is never branched on (in %s)", id.Name, analysis.EnclosingFuncName(stack))
	}
}

// usedAsControl reports whether the call expression's value flows
// into control flow or escapes: it sits (possibly under !,&&,|| or
// parentheses) in an if/for/switch condition, a return statement, or
// a call argument.
func usedAsControl(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	child := ast.Node(call)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr, *ast.UnaryExpr, *ast.BinaryExpr:
			child = p
			continue
		case *ast.IfStmt:
			return p.Cond == child
		case *ast.ForStmt:
			return p.Cond == child
		case *ast.SwitchStmt:
			return true
		case *ast.CaseClause:
			return true
		case *ast.ReturnStmt:
			return true
		case *ast.CallExpr:
			// Argument to another call: the callee takes custody.
			return true
		default:
			return false
		}
	}
	return false
}

// parentAssign finds the AssignStmt directly consuming the call.
func parentAssign(stack []ast.Node) *ast.AssignStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.AssignStmt:
			return p
		default:
			return nil
		}
	}
	return nil
}

// flagBranched reports whether the variable defined/assigned by id is
// read inside any branch condition, return statement, or call
// argument of the enclosing function.
func flagBranched(pass *analysis.Pass, stack []ast.Node, id *ast.Ident) bool {
	body := enclosingFunc(stack)
	if body == nil {
		return true
	}
	obj := pass.Info.Defs[id]
	if obj == nil {
		obj = pass.Info.Uses[id]
	}
	if obj == nil {
		return true // unresolved; don't guess
	}
	found := false
	analysis.WalkStack(body, func(n ast.Node, st []ast.Node) bool {
		if found {
			return false
		}
		use, ok := n.(*ast.Ident)
		if !ok || use == id || pass.Info.Uses[use] != obj {
			return true
		}
		// Is this use inside a condition, return or call?
		child := ast.Node(use)
		for i := len(st) - 1; i >= 0; i-- {
			switch p := st[i].(type) {
			case *ast.ParenExpr, *ast.UnaryExpr, *ast.BinaryExpr:
				child = p
				continue
			case *ast.IfStmt:
				if p.Cond == child {
					found = true
				}
			case *ast.ForStmt:
				if p.Cond == child {
					found = true
				}
			case *ast.SwitchStmt, *ast.CaseClause, *ast.ReturnStmt, *ast.CallExpr:
				found = true
			}
			break
		}
		return true
	})
	return found
}

// followedByJump reports whether control after stmt (a bare ReleaseSh
// statement) provably leaves the enclosing operation through a
// goto/continue/break — the restart idiom — passing only through
// further cleanup statements. It walks outward through the statement
// lists of the enclosing blocks; reaching a return, a loop's back
// edge or the function end means token-protected data could escape.
func followedByJump(pass *analysis.Pass, stmt ast.Stmt, stack []ast.Node) bool {
	self := ast.Node(stmt)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.BlockStmt:
			if decided, jump := scanList(pass, p.List, self); decided {
				return jump
			}
			self = p
		case *ast.CaseClause:
			if decided, jump := scanList(pass, p.Body, self); decided {
				return jump
			}
			self = p
		case *ast.CommClause:
			if decided, jump := scanList(pass, p.Body, self); decided {
				return jump
			}
			self = p
		case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
			// Fell out of a branch: control continues after it.
			self = p.(ast.Node)
		case *ast.ForStmt, *ast.RangeStmt:
			return false // loop back edge: the token may be read again
		case *ast.FuncDecl, *ast.FuncLit:
			return false // implicit return
		default:
			return false
		}
	}
	return false
}

// scanList scans the statements after self in list: cleanup
// statements are skipped, the first significant one decides, an
// exhausted list leaves the decision to the enclosing context.
func scanList(pass *analysis.Pass, list []ast.Stmt, self ast.Node) (decided, jump bool) {
	idx := -1
	for j, s := range list {
		if ast.Node(s) == self {
			idx = j
			break
		}
	}
	if idx < 0 {
		return true, false // self not directly in this list: lost track, be strict
	}
	for _, s := range list[idx+1:] {
		if isCleanup(pass, s) {
			continue
		}
		if j, ok := s.(*ast.BranchStmt); ok {
			t := j.Tok.String()
			return true, t == "goto" || t == "continue" || t == "break"
		}
		return true, false
	}
	return false, false
}

// isCleanup recognizes the statements a restart path may pass
// through after a discarded ReleaseSh: further lock releases (shared
// or exclusive) and conditional blocks containing only those.
func isCleanup(pass *analysis.Pass, s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		return analysis.IsPkgFunc(pass.Info, call, lockPkgName, "ReleaseSh", "ReleaseEx", "CloseWindow")
	case *ast.IfStmt:
		if st.Else != nil || st.Init != nil {
			return false
		}
		for _, inner := range st.Body.List {
			if !isCleanup(pass, inner) {
				return false
			}
		}
		return len(st.Body.List) > 0
	}
	return false
}
