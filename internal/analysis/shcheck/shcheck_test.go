package shcheck_test

import (
	"testing"

	"optiql/internal/analysis/analysistest"
	"optiql/internal/analysis/shcheck"
)

func TestShcheck(t *testing.T) {
	analysistest.RunPattern(t, "../testdata", "./shcheck", shcheck.Analyzer)
}
