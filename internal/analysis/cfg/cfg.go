// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and solves forward dataflow problems on them — the
// stdlib-only substrate under the interprocedural analyzers (tornread,
// walorder), standing in for golang.org/x/tools/go/cfg plus a worklist
// solver.
//
// The graph is a classic basic-block CFG: straight-line statements
// accumulate into a block until a branch point, and every control
// construct (if/for/range/switch/type-switch/select, goto and labeled
// break/continue, defer, return) lowers to explicit edges. Conditional
// blocks expose their condition expression so lattice clients can
// refine state along the true/false out-edges (bounds checks, nil
// checks, lock-validation results). Deferred calls are modeled as a
// LIFO chain that every return routes through before the exit block —
// a may-execute over-approximation (registration conditions are not
// tracked), which is the right direction for the analyses built here.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block. Stmts holds the straight-line statements
// (and for range/switch heads, the head node itself) in execution
// order. A block with Cond != nil has exactly two successors:
// Succs[0] on the condition's true edge, Succs[1] on false.
type Block struct {
	Index int
	Stmts []ast.Node
	Cond  ast.Expr
	Succs []*Block
	// Live is set by Build's reachability pass; dead blocks (after an
	// unconditional return/goto) keep their statements but are skipped
	// by Solve.
	Live bool
	// kind tags synthetic blocks for debugging/tests.
	kind string
}

// Graph is one function body's CFG.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers lists the defer statements in registration order; their
	// calls execute (LIFO) on the path from every return to Exit.
	Defers []*ast.DeferStmt
}

type builder struct {
	g      *Graph
	cur    *Block
	labels map[string]*labelTarget
	// break/continue targets of the innermost enclosing loops/switches.
	breaks    []*Block
	continues []*Block
	// gotos seen before their label: patched at the end.
	pending []pendingGoto
}

type labelTarget struct {
	block *Block // label head (target of goto/continue-to-label)
	brk   *Block // break target when the label names a loop/switch
	cont  *Block // continue target when the label names a loop
}

type pendingGoto struct {
	from  *Block
	label string
}

// Build constructs the CFG of one function body. A nil body (external
// declaration) yields a graph with only entry and exit.
func Build(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: make(map[string]*labelTarget)}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	// Fall off the end of the body: an implicit return.
	b.routeReturn()
	// Patch forward gotos.
	for _, pg := range b.pending {
		if lt, ok := b.labels[pg.label]; ok && lt.block != nil {
			pg.from.Succs = append(pg.from.Succs, lt.block)
		}
	}
	// Lower the defer chain: every edge into Exit detours through the
	// deferred calls in LIFO order.
	b.lowerDefers()
	b.markLive()
	return b.g
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump ends the current block with an unconditional edge and switches
// to a fresh (possibly unreachable) block.
func (b *builder) jump(to *Block) {
	if to != nil {
		b.cur.Succs = append(b.cur.Succs, to)
	}
	b.cur = b.newBlock("after-jump")
}

// routeReturn ends the current block toward Exit (via the defer chain,
// patched in lowerDefers).
func (b *builder) routeReturn() {
	b.cur.Succs = append(b.cur.Succs, b.g.Exit)
	b.cur = b.newBlock("after-return")
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		condBlk := b.cur
		condBlk.Cond = s.Cond
		condBlk.Stmts = append(condBlk.Stmts, s.Cond)
		thenBlk := b.newBlock("if-then")
		elseBlk := b.newBlock("if-else")
		done := b.newBlock("if-done")
		condBlk.Succs = append(condBlk.Succs, thenBlk, elseBlk)
		b.cur = thenBlk
		b.stmt(s.Body)
		b.cur.Succs = append(b.cur.Succs, done)
		b.cur = elseBlk
		if s.Else != nil {
			b.stmt(s.Else)
		}
		b.cur.Succs = append(b.cur.Succs, done)
		b.cur = done
	case *ast.ForStmt:
		b.forStmt(s, "")
	case *ast.RangeStmt:
		b.rangeStmt(s, "")
	case *ast.SwitchStmt:
		b.switchStmt(s, "")
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")
	case *ast.SelectStmt:
		b.selectStmt(s, "")
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		b.routeReturn()
	case *ast.DeferStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		b.g.Defers = append(b.g.Defers, s)
	case *ast.EmptyStmt:
	default:
		// Straight-line statements (assign, expr, decl, incdec, send,
		// go) accumulate into the current block.
		b.cur.Stmts = append(b.cur.Stmts, s)
	}
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	head := b.newBlock("label-" + s.Label.Name)
	b.cur.Succs = append(b.cur.Succs, head)
	b.cur = head
	lt := &labelTarget{block: head}
	b.labels[s.Label.Name] = lt
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, s.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, s.Label.Name)
	case *ast.SwitchStmt:
		b.switchStmt(inner, s.Label.Name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, s.Label.Name)
	case *ast.SelectStmt:
		b.selectStmt(inner, s.Label.Name)
	default:
		b.stmt(s.Stmt)
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.GOTO:
		if lt, ok := b.labels[s.Label.Name]; ok && lt.block != nil {
			b.jump(lt.block)
		} else {
			// Forward goto: patch once the label is seen.
			from := b.cur
			b.pending = append(b.pending, pendingGoto{from: from, label: s.Label.Name})
			b.cur = b.newBlock("after-goto")
		}
	case token.BREAK:
		if s.Label != nil {
			if lt, ok := b.labels[s.Label.Name]; ok && lt.brk != nil {
				b.jump(lt.brk)
				return
			}
		}
		if n := len(b.breaks); n > 0 {
			b.jump(b.breaks[n-1])
		} else {
			b.jump(nil)
		}
	case token.CONTINUE:
		if s.Label != nil {
			if lt, ok := b.labels[s.Label.Name]; ok && lt.cont != nil {
				b.jump(lt.cont)
				return
			}
		}
		if n := len(b.continues); n > 0 {
			b.jump(b.continues[n-1])
		} else {
			b.jump(nil)
		}
	case token.FALLTHROUGH:
		// Handled structurally in switchStmt via fallthrough edges; a
		// bare fallthrough just ends the block (the clause chain adds
		// the edge).
	}
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for-head")
	body := b.newBlock("for-body")
	post := b.newBlock("for-post")
	done := b.newBlock("for-done")
	b.cur.Succs = append(b.cur.Succs, head)
	if s.Cond != nil {
		head.Cond = s.Cond
		head.Stmts = append(head.Stmts, s.Cond)
		head.Succs = append(head.Succs, body, done)
	} else {
		head.Succs = append(head.Succs, body)
	}
	if label != "" {
		b.labels[label].brk = done
		b.labels[label].cont = post
	}
	b.breaks = append(b.breaks, done)
	b.continues = append(b.continues, post)
	b.cur = body
	b.stmt(s.Body)
	b.cur.Succs = append(b.cur.Succs, post)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = post
	if s.Post != nil {
		b.stmt(s.Post)
	}
	b.cur.Succs = append(b.cur.Succs, head)
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock("range-head")
	body := b.newBlock("range-body")
	done := b.newBlock("range-done")
	b.cur.Succs = append(b.cur.Succs, head)
	// The head evaluates the range operand and binds the iteration
	// variables; clients see the RangeStmt node itself.
	head.Stmts = append(head.Stmts, s)
	head.Succs = append(head.Succs, body, done)
	if label != "" {
		b.labels[label].brk = done
		b.labels[label].cont = head
	}
	b.breaks = append(b.breaks, done)
	b.continues = append(b.continues, head)
	b.cur = body
	b.stmt(s.Body)
	b.cur.Succs = append(b.cur.Succs, head)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = done
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.cur
	head.Stmts = append(head.Stmts, s)
	done := b.newBlock("switch-done")
	if label != "" {
		b.labels[label].brk = done
	}
	b.breaks = append(b.breaks, done)
	var clauses []*Block
	var bodies [][]ast.Stmt
	hasDefault := false
	if s.Body != nil {
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			blk := b.newBlock("case")
			// Case expressions evaluate in the clause block so their
			// subexpressions reach the lattice.
			for _, e := range cc.List {
				blk.Stmts = append(blk.Stmts, e)
			}
			if cc.List == nil {
				hasDefault = true
			}
			head.Succs = append(head.Succs, blk)
			clauses = append(clauses, blk)
			bodies = append(bodies, cc.Body)
		}
	}
	if !hasDefault {
		head.Succs = append(head.Succs, done)
	}
	for i, blk := range clauses {
		b.cur = blk
		b.stmtList(bodies[i])
		// A trailing fallthrough chains into the next clause's body.
		if n := len(bodies[i]); n > 0 {
			if br, ok := bodies[i][n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(clauses) {
				b.cur.Succs = append(b.cur.Succs, clauses[i+1])
				continue
			}
		}
		b.cur.Succs = append(b.cur.Succs, done)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = done
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.cur
	head.Stmts = append(head.Stmts, s)
	done := b.newBlock("typeswitch-done")
	if label != "" {
		b.labels[label].brk = done
	}
	b.breaks = append(b.breaks, done)
	hasDefault := false
	if s.Body != nil {
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			blk := b.newBlock("typecase")
			if cc.List == nil {
				hasDefault = true
			}
			head.Succs = append(head.Succs, blk)
			b.cur = blk
			b.stmtList(cc.Body)
			b.cur.Succs = append(b.cur.Succs, done)
		}
	}
	if !hasDefault {
		head.Succs = append(head.Succs, done)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	head.Stmts = append(head.Stmts, s)
	done := b.newBlock("select-done")
	if label != "" {
		b.labels[label].brk = done
	}
	b.breaks = append(b.breaks, done)
	if s.Body != nil {
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock("comm")
			if cc.Comm != nil {
				blk.Stmts = append(blk.Stmts, cc.Comm)
			}
			head.Succs = append(head.Succs, blk)
			b.cur = blk
			b.stmtList(cc.Body)
			b.cur.Succs = append(b.cur.Succs, done)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = done
}

// lowerDefers reroutes every edge into Exit through the deferred calls
// in LIFO order. Each defer becomes a block holding its CallExpr.
func (b *builder) lowerDefers() {
	if len(b.g.Defers) == 0 {
		return
	}
	chainHead := b.newBlock("defer-chain")
	prev := chainHead
	for i := len(b.g.Defers) - 1; i >= 0; i-- {
		blk := b.newBlock("deferred-call")
		blk.Stmts = append(blk.Stmts, b.g.Defers[i].Call)
		prev.Succs = append(prev.Succs, blk)
		prev = blk
	}
	prev.Succs = append(prev.Succs, b.g.Exit)
	for _, blk := range b.g.Blocks {
		if blk == chainHead || blk.kind == "deferred-call" {
			continue
		}
		for i, succ := range blk.Succs {
			if succ == b.g.Exit {
				blk.Succs[i] = chainHead
			}
		}
	}
}

// markLive flags the blocks reachable from Entry.
func (b *builder) markLive() {
	var visit func(*Block)
	visit = func(blk *Block) {
		if blk.Live {
			return
		}
		blk.Live = true
		for _, s := range blk.Succs {
			visit(s)
		}
	}
	visit(b.g.Entry)
}
