package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses a function body and builds its CFG.
func buildFunc(t *testing.T, body string) (*token.FileSet, *Graph) {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return fset, Build(fd.Body)
}

// render normalizes a graph to a compact, position-free description:
// one line per block in index order, statements printed as source,
// conditions marked, successor edges by index, dead blocks tagged.
func render(fset *token.FileSet, g *Graph) string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		if len(b.Stmts) == 0 && b.Cond == nil && len(b.Succs) == 0 && b != g.Entry && b != g.Exit {
			continue // builder scaffolding with no content or effect
		}
		fmt.Fprintf(&sb, "b%d", b.Index)
		if b == g.Entry {
			sb.WriteString("(entry)")
		}
		if b == g.Exit {
			sb.WriteString("(exit)")
		}
		if !b.Live {
			sb.WriteString("(dead)")
		}
		sb.WriteString(":")
		for _, n := range b.Stmts {
			sb.WriteString(" {" + printNode(fset, n) + "}")
		}
		if b.Cond != nil {
			sb.WriteString(" ?" + printNode(fset, b.Cond))
		}
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func printNode(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, n)
	return strings.Join(strings.Fields(buf.String()), " ")
}

// reachStmts runs a trivial reachability problem and returns the
// rendered statements of every live block the solver visited.
func reachStmts(fset *token.FileSet, g *Graph) map[string]bool {
	in := Solve(g, &boolProblem{})
	out := make(map[string]bool)
	for _, b := range g.Blocks {
		if _, ok := in[b]; !ok {
			continue
		}
		for _, n := range b.Stmts {
			out[printNode(fset, n)] = true
		}
	}
	return out
}

// boolProblem is the trivial lattice: reachable or not.
type boolProblem struct{}

func (*boolProblem) Entry() State                             { return true }
func (*boolProblem) Transfer(n ast.Node, s State) State       { return s }
func (*boolProblem) Branch(c ast.Expr, t bool, s State) State { return s }
func (*boolProblem) Join(a, b State) State                    { return a.(bool) || b.(bool) }
func (*boolProblem) Equal(a, b State) bool                    { return a.(bool) == b.(bool) }

func TestIfShape(t *testing.T) {
	fset, g := buildFunc(t, `
	x := 1
	if x > 0 {
		x = 2
	} else {
		x = 3
	}
	use(x)`)
	got := render(fset, g)
	// The condition block must have exactly two successors (true, false),
	// and both arms must rejoin before use(x).
	var cond *Block
	for _, b := range g.Blocks {
		if b.Cond != nil {
			cond = b
		}
	}
	if cond == nil || len(cond.Succs) != 2 {
		t.Fatalf("if: want one 2-successor condition block, got:\n%s", got)
	}
	arms := []*Block{cond.Succs[0], cond.Succs[1]}
	if printNode(fset, arms[0].Stmts[0]) != "x = 2" || printNode(fset, arms[1].Stmts[0]) != "x = 3" {
		t.Fatalf("if: true edge must lead to the then-arm, false to else:\n%s", got)
	}
	if len(arms[0].Succs) != 1 || len(arms[1].Succs) != 1 || arms[0].Succs[0] != arms[1].Succs[0] {
		t.Fatalf("if: arms must rejoin at a single block:\n%s", got)
	}
}

func TestForLoopShape(t *testing.T) {
	fset, g := buildFunc(t, `
	for i := 0; i < 10; i++ {
		body(i)
	}
	after()`)
	var cond *Block
	for _, b := range g.Blocks {
		if b.Cond != nil {
			cond = b
		}
	}
	if cond == nil || len(cond.Succs) != 2 {
		t.Fatalf("for: want a 2-successor condition block:\n%s", render(fset, g))
	}
	// The loop body must cycle back: the condition is reachable from its
	// own true successor.
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == cond {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	if !walk(cond.Succs[0]) {
		t.Fatalf("for: body must loop back to the condition:\n%s", render(fset, g))
	}
}

func TestBreakContinue(t *testing.T) {
	fset, g := buildFunc(t, `
	for i := 0; i < 10; i++ {
		if skip(i) {
			continue
		}
		if done(i) {
			break
		}
		body(i)
	}
	after()`)
	reach := reachStmts(fset, g)
	for _, want := range []string{"body(i)", "after()", "i++"} {
		if !reach[want] {
			t.Fatalf("break/continue: %q must stay reachable:\n%s", want, render(fset, g))
		}
	}
}

func TestLabeledBreakGoto(t *testing.T) {
	fset, g := buildFunc(t, `
outer:
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if a(i, j) {
				break outer
			}
			if b(i, j) {
				continue outer
			}
			if c(i, j) {
				goto done
			}
		}
	}
	mid()
done:
	end()`)
	reach := reachStmts(fset, g)
	for _, want := range []string{"mid()", "end()"} {
		if !reach[want] {
			t.Fatalf("labeled: %q must stay reachable:\n%s", want, render(fset, g))
		}
	}
}

func TestSwitchShape(t *testing.T) {
	fset, g := buildFunc(t, `
	switch k := kind(); k {
	case 1:
		one()
	case 2:
		two()
		fallthrough
	case 3:
		three()
	default:
		other()
	}
	after()`)
	reach := reachStmts(fset, g)
	for _, want := range []string{"one()", "two()", "three()", "other()", "after()"} {
		if !reach[want] {
			t.Fatalf("switch: %q must stay reachable:\n%s", want, render(fset, g))
		}
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	fset, g := buildFunc(t, `
	pre()
	return
	post()`) //nolint
	for _, b := range g.Blocks {
		for _, n := range b.Stmts {
			if printNode(fset, n) == "post()" && b.Live {
				t.Fatalf("code after return must be marked dead:\n%s", render(fset, g))
			}
			if printNode(fset, n) == "pre()" && !b.Live {
				t.Fatalf("code before return must stay live:\n%s", render(fset, g))
			}
		}
	}
	if _, ok := Solve(g, &boolProblem{})[g.Exit]; !ok {
		t.Fatal("exit must be solver-reachable through the return")
	}
}

func TestDeferLowering(t *testing.T) {
	fset, g := buildFunc(t, `
	defer cleanupA()
	if cond() {
		return
	}
	defer cleanupB()
	work()`)
	if len(g.Defers) != 2 {
		t.Fatalf("want 2 registered defers, got %d", len(g.Defers))
	}
	// Every path into Exit must pass through the lowered call to
	// cleanupA (registered on all paths); cleanupB runs only on the
	// fall-through path but must be present in the graph.
	reach := reachStmts(fset, g)
	for _, want := range []string{"cleanupA()", "cleanupB()", "work()"} {
		if !reach[want] {
			t.Fatalf("defer: lowered call %q missing from solved graph:\n%s", want, render(fset, g))
		}
	}
	// The chain is shared by every exit (a conservative may-execute
	// over-approximation) and runs LIFO: cleanupB's block flows into
	// cleanupA's, which flows into Exit.
	var blkA, blkB *Block
	for _, b := range g.Blocks {
		for _, n := range b.Stmts {
			switch printNode(fset, n) {
			case "cleanupA()":
				blkA = b
			case "cleanupB()":
				blkB = b
			}
		}
	}
	if blkA == nil || blkB == nil {
		t.Fatalf("defer: lowered call blocks missing:\n%s", render(fset, g))
	}
	if len(blkB.Succs) != 1 || blkB.Succs[0] != blkA {
		t.Fatalf("defer: chain must run LIFO (cleanupB before cleanupA):\n%s", render(fset, g))
	}
	if len(blkA.Succs) != 1 || blkA.Succs[0] != g.Exit {
		t.Fatalf("defer: last-registered defer must flow into Exit:\n%s", render(fset, g))
	}
	// No edge may bypass the chain into Exit.
	for _, b := range g.Blocks {
		if b == blkA {
			continue
		}
		for _, s := range b.Succs {
			if s == g.Exit {
				t.Fatalf("defer: b%d reaches Exit bypassing the defer chain:\n%s", b.Index, render(fset, g))
			}
		}
	}
}

func TestInfiniteLoopTermination(t *testing.T) {
	// for {} has no exit edge; Build and Solve must still terminate and
	// the code after the loop must be dead.
	fset, g := buildFunc(t, `
	for {
		spin()
	}
	after()`)
	for _, b := range g.Blocks {
		for _, n := range b.Stmts {
			if printNode(fset, n) == "after()" && b.Live {
				t.Fatalf("code after for{} must be dead:\n%s", render(fset, g))
			}
		}
	}
	if _, ok := Solve(g, &boolProblem{})[g.Entry]; !ok {
		t.Fatal("solver must terminate on an infinite loop and keep the entry state")
	}
}

// divergeProblem never converges: every Transfer bumps a counter and
// Equal is always false. The solver's budget must end the run anyway.
type divergeProblem struct{ steps int }

func (p *divergeProblem) Entry() State                             { return 0 }
func (p *divergeProblem) Transfer(n ast.Node, s State) State       { p.steps++; return s.(int) + 1 }
func (p *divergeProblem) Branch(c ast.Expr, t bool, s State) State { return s }
func (p *divergeProblem) Join(a, b State) State                    { return a.(int) + b.(int) }
func (p *divergeProblem) Equal(a, b State) bool                    { return false }

func TestSolverBudget(t *testing.T) {
	_, g := buildFunc(t, `
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			x(i, j)
		}
	}`)
	p := &divergeProblem{}
	Solve(g, p) // must return despite Equal never holding
	if p.steps == 0 {
		t.Fatal("diverging solve did no work at all")
	}
	limit := (64*len(g.Blocks) + 256) * (len(g.Blocks) + 4)
	if p.steps > limit {
		t.Fatalf("diverging solve ran %d transfers, budget should cap near %d", p.steps, limit)
	}
}

func TestSelectShape(t *testing.T) {
	fset, g := buildFunc(t, `
	select {
	case v := <-ch:
		got(v)
	case out <- 1:
		sent()
	default:
		idle()
	}
	after()`)
	reach := reachStmts(fset, g)
	for _, want := range []string{"got(v)", "sent()", "idle()", "after()"} {
		if !reach[want] {
			t.Fatalf("select: %q must stay reachable:\n%s", want, render(fset, g))
		}
	}
}

func TestTypeSwitchShape(t *testing.T) {
	fset, g := buildFunc(t, `
	switch v := x.(type) {
	case int:
		ints(v)
	case string:
		strs(v)
	default:
		other(v)
	}
	after()`)
	reach := reachStmts(fset, g)
	for _, want := range []string{"ints(v)", "strs(v)", "other(v)", "after()"} {
		if !reach[want] {
			t.Fatalf("type switch: %q must stay reachable:\n%s", want, render(fset, g))
		}
	}
}
