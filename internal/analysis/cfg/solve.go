package cfg

import "go/ast"

// State is an opaque dataflow state owned by the Problem. States must
// be treated as immutable by the solver's contract: Transfer, Branch
// and Join return fresh (or shared unchanged) values.
type State any

// Problem is a forward dataflow problem over a Graph. The lattice is
// the client's; the solver only needs transfer, join and equality.
type Problem interface {
	// Entry is the state on the function's entry edge.
	Entry() State
	// Transfer applies one statement (or condition expression) node.
	Transfer(n ast.Node, s State) State
	// Branch refines the state along a conditional edge: truth is
	// whether the edge is the condition's true successor. Called after
	// Transfer has already processed the condition node itself.
	Branch(cond ast.Expr, truth bool, s State) State
	// Join merges two predecessor states.
	Join(a, b State) State
	// Equal reports lattice equality (fixpoint detection).
	Equal(a, b State) bool
}

// Solve runs the worklist algorithm to a fixpoint and returns each
// live block's in-state. Blocks unreachable from entry are absent.
//
// Termination is guaranteed even for a non-monotone or
// infinite-descent Problem: the solver stops after a generous global
// budget proportional to the graph size, returning the (then possibly
// approximate) states it has. Well-behaved lattices converge long
// before the budget.
func Solve(g *Graph, p Problem) map[*Block]State {
	in := make(map[*Block]State)
	in[g.Entry] = p.Entry()

	// Worklist seeded in block order (entry first); dedup membership.
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	budget := 64*len(g.Blocks) + 256

	for len(work) > 0 && budget > 0 {
		budget--
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		out := in[blk]
		for _, n := range blk.Stmts {
			out = p.Transfer(n, out)
		}
		for i, succ := range blk.Succs {
			s := out
			if blk.Cond != nil && len(blk.Succs) == 2 {
				s = p.Branch(blk.Cond, i == 0, out)
			}
			old, ok := in[succ]
			merged := s
			if ok {
				merged = p.Join(old, s)
			}
			if !ok || !p.Equal(old, merged) {
				in[succ] = merged
				if !queued[succ] {
					queued[succ] = true
					work = append(work, succ)
				}
			}
		}
	}
	return in
}
