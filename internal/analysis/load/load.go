// Package load turns `go list` output into parsed, type-checked
// packages for the analyzers — the stdlib-only stand-in for
// golang.org/x/tools/go/packages.
//
// The loader shells out to the go command once for the pattern
// expansion (`go list -deps -json`, which prints packages in
// dependency order, dependencies first) and type-checks everything
// with go/types using a map-backed importer: standard-library
// dependencies are checked from source with function bodies ignored
// (types only — cheap), module packages are checked fully with
// complete type information. Test files are folded in the way the go
// tool builds them: in-package _test.go files augment their package,
// external test packages (package foo_test) are separate targets that
// import the augmented variant.
//
// cgo is disabled for the file-list computation, so the pure-Go
// variants of std packages are selected and no C toolchain is needed.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one type-checked analysis target.
type Package struct {
	// Path is the import path; external test packages carry the go
	// tool's convention suffix ("optiql/internal/btree_test").
	Path string
	Name string
	Dir  string
	// Files are the parsed sources with comments, in go list order.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TestVariant marks augmented (in-package tests folded in) and
	// external test packages.
	TestVariant bool
}

// Result is a Load invocation's outcome.
type Result struct {
	Fset *token.FileSet
	// Targets are the packages to analyze: every module package
	// matched by the patterns (test-augmented when it has in-package
	// test files), plus external test packages. Dependency packages
	// are type-checked but not returned.
	Targets []*Package
	// TypeErrors are type-check errors in target packages. A non-empty
	// list means analysis results are unreliable; drivers should
	// report them and fail.
	TypeErrors []error
	// Sizes is the gc layout for the current GOARCH.
	Sizes types.Sizes
}

// Config parameterizes Load.
type Config struct {
	// Dir is where the go command runs; it must be inside the module.
	// Empty means the current directory.
	Dir string
	// Patterns are go package patterns; default ["./..."].
	Patterns []string
	// Tests includes _test.go files and external test packages
	// (default in the driver; disable for quick API-only checks).
	Tests bool
}

type listPkg struct {
	ImportPath   string
	Name         string
	Dir          string
	Standard     bool
	DepOnly      bool
	ForTest      string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Module       *struct{ Path, Dir, GoVersion string }
	Error        *struct{ Err string }
}

type loader struct {
	cfg   Config
	fset  *token.FileSet
	sizes types.Sizes
	list  map[string]*listPkg       // go list metadata by import path
	pkgs  map[string]*types.Package // plain (non-test) checked packages
	srcs  map[string][]*ast.File    // parsed sources of module packages
	depth int                       // on-demand import recursion guard
	errs  []error
}

// Load lists, parses and type-checks the packages matched by cfg.
func Load(cfg Config) (*Result, error) {
	if len(cfg.Patterns) == 0 {
		cfg.Patterns = []string{"./..."}
	}
	ld := &loader{
		cfg:   cfg,
		fset:  token.NewFileSet(),
		sizes: types.SizesFor("gc", runtime.GOARCH),
		list:  make(map[string]*listPkg),
		pkgs:  make(map[string]*types.Package),
		srcs:  make(map[string][]*ast.File),
	}
	if ld.sizes == nil {
		ld.sizes = types.SizesFor("gc", "amd64")
	}

	// One go list call covers pattern expansion and the dependency
	// closure: with -deps, go list prints dependencies first and marks
	// the non-matched ones DepOnly, so the matched targets come out
	// already in dependency order — which is exactly the order the
	// interprocedural Collect phases need (callee summaries before
	// callers).
	all, err := ld.golist(cfg.Patterns, true)
	if err != nil {
		return nil, err
	}
	var targets []*listPkg
	for _, lp := range all {
		if !lp.DepOnly {
			if lp.Error != nil {
				return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
			}
			targets = append(targets, lp)
		}
		if _, done := ld.pkgs[lp.ImportPath]; !done {
			ld.checkPlain(lp, lp.Module != nil)
		}
	}

	// Test-only imports of the targets (testing, httptest, ...).
	if cfg.Tests {
		var missing []string
		seen := make(map[string]bool)
		for _, lp := range targets {
			for _, imp := range append(append([]string{}, lp.TestImports...), lp.XTestImports...) {
				if imp == "C" || seen[imp] {
					continue
				}
				seen[imp] = true
				if _, ok := ld.pkgs[imp]; !ok && imp != "unsafe" {
					missing = append(missing, imp)
				}
			}
		}
		if len(missing) > 0 {
			extra, err := ld.golist(missing, true)
			if err != nil {
				return nil, err
			}
			for _, lp := range extra {
				if _, done := ld.pkgs[lp.ImportPath]; !done {
					ld.checkPlain(lp, false)
				}
			}
		}
	}

	// Assemble targets: augmented module packages plus xtest packages.
	res := &Result{Fset: ld.fset, Sizes: ld.sizes}
	for _, lp := range targets {
		lp = ld.list[lp.ImportPath] // canonical entry (with file lists)
		if lp == nil || lp.Module == nil {
			continue
		}
		pkg := ld.targetPackage(lp)
		if pkg != nil {
			res.Targets = append(res.Targets, pkg)
		}
		if cfg.Tests && len(lp.XTestGoFiles) > 0 {
			if xp := ld.xtestPackage(lp, pkg); xp != nil {
				res.Targets = append(res.Targets, xp)
			}
		}
	}
	res.TypeErrors = ld.errs
	return res, nil
}

// golist runs the go command and decodes its JSON stream.
func (ld *loader) golist(patterns []string, deps bool) ([]*listPkg, error) {
	args := []string{"list", "-e", "-json"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = ld.cfg.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
		if prev, ok := ld.list[lp.ImportPath]; !ok || len(prev.GoFiles) == 0 {
			ld.list[lp.ImportPath] = lp
		}
	}
	return pkgs, nil
}

func (ld *loader) parse(dir string, names []string) []*ast.File {
	var files []*ast.File
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(ld.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			ld.errs = append(ld.errs, err)
		}
		if f != nil {
			files = append(files, f)
		}
	}
	return files
}

// checkPlain type-checks a package's non-test sources and records it
// for imports. Module packages keep their sources and full info
// trees; dependencies are checked bodies-ignored, errors tolerated.
func (ld *loader) checkPlain(lp *listPkg, isModule bool) *types.Package {
	if lp.ImportPath == "unsafe" {
		ld.pkgs["unsafe"] = types.Unsafe
		return types.Unsafe
	}
	files := ld.parse(lp.Dir, lp.GoFiles)
	if isModule {
		ld.srcs[lp.ImportPath] = files
	}
	conf := types.Config{
		Importer:                 ld,
		Sizes:                    ld.sizes,
		IgnoreFuncBodies:         !isModule,
		DisableUnusedImportCheck: !isModule,
		FakeImportC:              true,
		Error: func(err error) {
			if isModule {
				ld.errs = append(ld.errs, err)
			}
		},
	}
	if isModule && lp.Module != nil && lp.Module.GoVersion != "" {
		conf.GoVersion = "go" + lp.Module.GoVersion
	}
	pkg, _ := conf.Check(lp.ImportPath, ld.fset, files, nil)
	if pkg == nil {
		pkg = types.NewPackage(lp.ImportPath, lp.Name)
	}
	ld.pkgs[lp.ImportPath] = pkg
	return pkg
}

// Import implements types.Importer over the checked-package map, with
// on-demand loading as a fallback for paths go list did not surface
// (rare: implicit test dependencies).
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if ld.depth > 2 {
		return nil, fmt.Errorf("load: import %q not resolved", path)
	}
	ld.depth++
	defer func() { ld.depth-- }()
	deps, err := ld.golist([]string{path}, true)
	if err != nil {
		return nil, err
	}
	for _, lp := range deps {
		if _, done := ld.pkgs[lp.ImportPath]; !done {
			ld.checkPlain(lp, false)
		}
	}
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("load: import %q not found", path)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// targetPackage builds the analysis target for one module package:
// its sources re-checked with full type info, with in-package test
// files folded in when requested.
func (ld *loader) targetPackage(lp *listPkg) *Package {
	names := append([]string{}, lp.GoFiles...)
	testVariant := false
	if ld.cfg.Tests && len(lp.TestGoFiles) > 0 {
		names = append(names, lp.TestGoFiles...)
		testVariant = true
	}
	if len(names) == 0 {
		return nil
	}
	files := ld.parse(lp.Dir, names)
	info := newInfo()
	conf := types.Config{
		Importer:    ld,
		Sizes:       ld.sizes,
		FakeImportC: true,
		Error:       func(err error) { ld.errs = append(ld.errs, err) },
	}
	if lp.Module != nil && lp.Module.GoVersion != "" {
		conf.GoVersion = "go" + lp.Module.GoVersion
	}
	pkg, _ := conf.Check(lp.ImportPath, ld.fset, files, info)
	if pkg == nil {
		return nil
	}
	return &Package{
		Path: lp.ImportPath, Name: lp.Name, Dir: lp.Dir,
		Files: files, Types: pkg, Info: info, TestVariant: testVariant,
	}
}

// overrideImporter resolves one path to a specific package (the
// test-augmented variant) and everything else through the base.
type overrideImporter struct {
	base *loader
	path string
	pkg  *types.Package
}

func (o *overrideImporter) Import(path string) (*types.Package, error) {
	if path == o.path {
		return o.pkg, nil
	}
	return o.base.Import(path)
}

// xtestPackage builds the external test package (package foo_test),
// importing the augmented variant of its base package so exported
// test helpers declared in _test.go files resolve.
func (ld *loader) xtestPackage(lp *listPkg, base *Package) *Package {
	files := ld.parse(lp.Dir, lp.XTestGoFiles)
	if len(files) == 0 {
		return nil
	}
	imp := types.Importer(ld)
	if base != nil {
		imp = &overrideImporter{base: ld, path: lp.ImportPath, pkg: base.Types}
	}
	info := newInfo()
	conf := types.Config{
		Importer:    imp,
		Sizes:       ld.sizes,
		FakeImportC: true,
		Error:       func(err error) { ld.errs = append(ld.errs, err) },
	}
	path := lp.ImportPath + "_test"
	pkg, _ := conf.Check(path, ld.fset, files, info)
	if pkg == nil {
		return nil
	}
	return &Package{
		Path: path, Name: lp.Name + "_test", Dir: lp.Dir,
		Files: files, Types: pkg, Info: info, TestVariant: true,
	}
}
