// Package padalign keeps the cache-line discipline of the per-worker
// hot structures honest. OptiQL's queue-based exclusive path hands
// every waiter its own qnode; the paper's robustness argument (§4.3,
// Fig. 9) depends on waiters spinning on *their own line* instead of
// hammering the shared lock word. The same false-sharing argument
// applies to the per-worker observability counters (PR 1): two
// workers bumping adjacent counters must not ping-pong a line.
//
// The discipline is expressed in source as the `//optiql:cacheline`
// annotation on a struct type. padalign verifies, using the real gc
// sizes for the build architecture, that every annotated struct's
// size is a non-zero multiple of 64 bytes — so elements of a
// contiguous slice of them never share a line (given 64-byte-aligned
// allocation, which Go's size-class allocator provides for sizes that
// are multiples of 64).
//
// It also pins the two structures the issue names — the queue node
// (internal/core.QNode) and the per-worker counter block
// (internal/obs.Counters) — by requiring the annotation to be present
// on them: deleting the comment is itself a finding, so the
// invariant cannot be silently unpinned.
package padalign

import (
	"go/ast"
	"go/types"

	"optiql/internal/analysis"
)

// Analyzer is the padalign pass.
var Analyzer = &analysis.Analyzer{
	Name: "padalign",
	Doc:  "structs annotated //optiql:cacheline must be a non-zero multiple of 64 bytes",
	Run:  run,
}

const cacheLine = 64

// pinned maps package name to the struct types that must carry the
// annotation. Matching is by package name (not path) so the testdata
// stubs exercise the same code path as the real tree.
var pinned = map[string][]string{
	"core": {"QNode"},
	"obs":  {"Counters"},
}

func run(pass *analysis.Pass) error {
	want := map[string]bool{}
	for _, name := range pinned[pass.Pkg.Name()] {
		want[name] = true
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if _, ok := ts.Type.(*ast.StructType); !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				annotated := analysis.HasAnnotation(doc, "cacheline")
				if want[ts.Name.Name] {
					delete(want, ts.Name.Name)
					if !annotated {
						pass.Reportf(ts.Pos(), "struct %s must carry //optiql:cacheline (per-worker hot structure; see DESIGN.md §10)", ts.Name.Name)
						continue
					}
				}
				if !annotated {
					continue
				}
				checkSize(pass, ts)
			}
		}
	}
	return nil
}

func checkSize(pass *analysis.Pass, ts *ast.TypeSpec) {
	obj := pass.Info.Defs[ts.Name]
	if obj == nil {
		return
	}
	t := obj.Type()
	if _, ok := t.Underlying().(*types.Struct); !ok {
		return
	}
	if pass.Sizes == nil {
		return
	}
	sz := pass.Sizes.Sizeof(t)
	if sz == 0 || sz%cacheLine != 0 {
		pass.Reportf(ts.Pos(), "struct %s is %d bytes, not a non-zero multiple of %d: adjacent elements share a cache line (add or resize the pad field)",
			ts.Name.Name, sz, cacheLine)
	}
}
