package padalign_test

import (
	"testing"

	"optiql/internal/analysis/analysistest"
	"optiql/internal/analysis/padalign"
)

func TestPadalign(t *testing.T) {
	analysistest.Run(t, "../testdata", []string{"./padalign/..."}, padalign.Analyzer)
}
