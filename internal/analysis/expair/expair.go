// Package expair enforces exclusive lock pairing: every token
// obtained from a locks-package AcquireEx (or a successful Upgrade)
// must reach a ReleaseEx on every path out of the function — returns,
// gotos (the restart idiom re-enters and re-acquires) and explicit
// panics alike. Split/merge/recycle paths depend on this: a node must
// be exclusively released before it enters the recycler, or its next
// life deadlocks.
//
// The analysis is an intraprocedural abstract interpretation over the
// set of held token variables:
//
//   - `tok := x.AcquireEx(c)` adds tok to the held set; discarding
//     the token outright is reported immediately (it can never be
//     released).
//   - `x.ReleaseEx(c, tok)` (directly or deferred) removes it.
//   - A token that escapes — stored into a composite literal or
//     another variable, passed to a call, returned — transfers
//     custody and leaves the tracked set (this is how the B+-tree's
//     pessimistic SMO stack works); CloseWindow and Upgrade uses do
//     not count as escapes.
//   - `if x.Upgrade(c, &tok)` promotes tok to exclusively-held in the
//     branch where the upgrade succeeded.
//
// Branches are analyzed independently and joined by union (held in
// any continuing branch counts as held); loop bodies are checked for
// per-iteration leaks. Soundness gaps: custody transfer is trusted,
// not verified, and the join is path-insensitive (see DESIGN.md §10).
package expair

import (
	"go/ast"
	"go/token"
	"go/types"

	"optiql/internal/analysis"
)

// Analyzer is the expair pass.
var Analyzer = &analysis.Analyzer{
	Name: "expair",
	Doc:  "every AcquireEx/successful-Upgrade token must be ReleaseEx'd on all return, goto and panic paths",
	Run:  run,
}

const lockPkgName = "locks"

func run(pass *analysis.Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == lockPkgName {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					(&checker{pass: pass}).checkFunc(fn.Body)
				}
			case *ast.FuncLit:
				// Each literal is its own scope of custody; nested
				// literals are reached by the continued traversal.
				(&checker{pass: pass}).checkFunc(fn.Body)
			}
			return true
		})
	}
	return nil
}

// state is the abstract value: which token variables are exclusively
// held, keyed by their types object.
type state struct {
	held map[types.Object]token.Pos
}

func newState() *state { return &state{held: make(map[types.Object]token.Pos)} }

func (s *state) clone() *state {
	c := newState()
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

// union folds o's held set into s.
func (s *state) union(o *state) {
	for k, v := range o.held {
		if _, ok := s.held[k]; !ok {
			s.held[k] = v
		}
	}
}

type checker struct {
	pass *analysis.Pass
}

func (c *checker) checkFunc(body *ast.BlockStmt) {
	st := newState()
	// Fallthrough off the end of the function is an implicit return;
	// if the body provably terminates (every branch returned, jumped
	// or panicked) the residual state is unreachable and each exit
	// already checked itself.
	if !c.execList(body.List, st) {
		c.requireEmpty(st, body.End(), "function end")
	}
}

func (c *checker) info() *types.Info { return c.pass.Info }

// requireEmpty reports every still-held token at an exit point and
// clears the state so each leak is reported once per path.
func (c *checker) requireEmpty(st *state, pos token.Pos, where string) {
	for obj, acq := range st.held {
		c.pass.Reportf(pos, "exclusive token %q (AcquireEx at line %d) is not released on this path (%s)",
			obj.Name(), analysis.LineOf(c.pass.Fset, acq), where)
		delete(st.held, obj)
	}
}

// execList interprets a statement list; it returns true if the list
// terminates (return/goto/panic/branch) rather than falling through.
func (c *checker) execList(list []ast.Stmt, st *state) bool {
	for _, s := range list {
		if c.exec(s, st) {
			return true
		}
	}
	return false
}

func (c *checker) exec(s ast.Stmt, st *state) (terminated bool) {
	switch stmt := s.(type) {
	case *ast.AssignStmt:
		c.execAssign(stmt, st)
	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.execValueSpec(vs, st)
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := stmt.X.(*ast.CallExpr); ok {
			if c.isRelease(call) {
				c.applyRelease(call, st)
				return false
			}
			if analysis.IsPkgFunc(c.info(), call, lockPkgName, "AcquireEx") {
				c.pass.Reportf(call.Pos(), "AcquireEx token discarded; it can never be released")
				return false
			}
			if c.isPanic(call) {
				c.escapes(stmt, st)
				c.requireEmpty(st, call.Pos(), "panic")
				return true
			}
		}
		c.escapes(stmt, st)
	case *ast.DeferStmt:
		// A deferred release (directly or inside a func literal)
		// covers every path out of the function.
		found := false
		ast.Inspect(stmt.Call, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && c.isRelease(call) {
				c.applyRelease(call, st)
				found = true
			}
			return true
		})
		if !found {
			c.escapes(stmt, st)
		}
	case *ast.GoStmt:
		c.escapes(stmt, st)
	case *ast.ReturnStmt:
		c.escapes(stmt, st) // returned tokens transfer custody
		c.requireEmpty(st, stmt.Pos(), "return")
		return true
	case *ast.BranchStmt:
		if stmt.Tok == token.GOTO {
			// The restart idiom jumps back and re-acquires: anything
			// still held here leaks (and deadlocks queue locks).
			c.requireEmpty(st, stmt.Pos(), "goto "+labelName(stmt))
		}
		return true
	case *ast.IfStmt:
		return c.execIf(stmt, st)
	case *ast.SwitchStmt:
		if stmt.Init != nil {
			c.exec(stmt.Init, st)
		}
		c.escapes(stmt.Tag, st)
		return c.execClauses(clauseBodies(stmt.Body), hasDefault(stmt.Body), st)
	case *ast.TypeSwitchStmt:
		if stmt.Init != nil {
			c.exec(stmt.Init, st)
		}
		return c.execClauses(clauseBodies(stmt.Body), hasDefault(stmt.Body), st)
	case *ast.SelectStmt:
		return c.execClauses(clauseBodies(stmt.Body), true, st)
	case *ast.ForStmt:
		if stmt.Init != nil {
			c.exec(stmt.Init, st)
		}
		c.escapes(stmt.Cond, st)
		c.execLoopBody(stmt.Body, st)
		if stmt.Cond == nil && !hasLoopBreak(stmt.Body) {
			// `for {}` with no break never falls through (the ART
			// descent loop); the state after it is unreachable.
			return true
		}
	case *ast.RangeStmt:
		c.escapes(stmt.X, st)
		c.execLoopBody(stmt.Body, st)
	case *ast.BlockStmt:
		return c.execList(stmt.List, st)
	case *ast.LabeledStmt:
		return c.exec(stmt.Stmt, st)
	default:
		c.escapes(s, st)
	}
	return false
}

func labelName(b *ast.BranchStmt) string {
	if b.Label != nil {
		return b.Label.Name
	}
	return ""
}

func (c *checker) execAssign(stmt *ast.AssignStmt, st *state) {
	// tok := x.AcquireEx(c)
	if len(stmt.Rhs) == 1 {
		if call, ok := stmt.Rhs[0].(*ast.CallExpr); ok && analysis.IsPkgFunc(c.info(), call, lockPkgName, "AcquireEx") {
			c.escapes(call, st) // args first (paranoia)
			if len(stmt.Lhs) == 1 {
				if id, ok := stmt.Lhs[0].(*ast.Ident); ok {
					if id.Name == "_" {
						c.pass.Reportf(call.Pos(), "AcquireEx token assigned to blank; it can never be released")
						return
					}
					if obj := c.lhsObj(id); obj != nil {
						st.held[obj] = call.Pos()
						return
					}
				}
			}
			// Stored into a field or element (`h.tok = ...`): custody
			// transfers to the structure's owner — the held-stack idiom
			// the pessimistic SMO paths use.
			for _, lhs := range stmt.Lhs {
				c.escapes(lhs, st)
			}
			return
		}
	}
	// Generic assignment: every held token read on the RHS (or
	// overwritten on the LHS) escapes custody tracking.
	for _, e := range stmt.Rhs {
		c.escapes(e, st)
	}
	for _, e := range stmt.Lhs {
		if id, ok := e.(*ast.Ident); ok {
			if obj := c.lhsObj(id); obj != nil {
				delete(st.held, obj) // overwritten
			}
			continue
		}
		c.escapes(e, st)
	}
}

func (c *checker) execValueSpec(vs *ast.ValueSpec, st *state) {
	for i, v := range vs.Values {
		if call, ok := v.(*ast.CallExpr); ok && analysis.IsPkgFunc(c.info(), call, lockPkgName, "AcquireEx") && i < len(vs.Names) {
			if obj := c.info().Defs[vs.Names[i]]; obj != nil {
				st.held[obj] = call.Pos()
				continue
			}
		}
		c.escapes(v, st)
	}
}

func (c *checker) execIf(stmt *ast.IfStmt, st *state) bool {
	if stmt.Init != nil {
		c.exec(stmt.Init, st)
	}
	thenSt := st.clone()
	elseSt := st.clone()
	// Upgrade promotion: `if x.Upgrade(c, &tok)` holds tok in the
	// then-branch; `if !x.Upgrade(c, &tok)` holds it on the
	// fallthrough/else side.
	if tok, pos, negated, ok := c.upgradeCond(stmt.Cond); ok {
		if negated {
			elseSt.held[tok] = pos
		} else {
			thenSt.held[tok] = pos
		}
	} else {
		c.escapes(stmt.Cond, st)
		thenSt, elseSt = st.clone(), st.clone()
	}
	thenTerm := c.execList(stmt.Body.List, thenSt)
	elseTerm := false
	if stmt.Else != nil {
		elseTerm = c.exec(stmt.Else, elseSt)
	}
	// Join the continuing branches.
	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		*st = *elseSt
	case elseTerm:
		*st = *thenSt
	default:
		*st = *thenSt
		st.union(elseSt)
	}
	return false
}

// upgradeCond matches `x.Upgrade(c, &tok)` optionally under ! and
// parentheses, returning the token object and whether it is negated.
func (c *checker) upgradeCond(cond ast.Expr) (types.Object, token.Pos, bool, bool) {
	negated := false
	e := ast.Unparen(cond)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		negated = true
		e = ast.Unparen(u.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || !analysis.IsPkgFunc(c.info(), call, lockPkgName, "Upgrade") {
		return nil, token.NoPos, false, false
	}
	for _, arg := range call.Args {
		if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
			if id, ok := ast.Unparen(u.X).(*ast.Ident); ok {
				if obj := c.info().Uses[id]; obj != nil {
					return obj, call.Pos(), negated, true
				}
			}
		}
	}
	return nil, token.NoPos, false, false
}

func (c *checker) execClauses(bodies [][]ast.Stmt, exhaustive bool, st *state) bool {
	if len(bodies) == 0 {
		return false
	}
	var joined *state
	allTerm := true
	for _, body := range bodies {
		bst := st.clone()
		if !c.execList(body, bst) {
			allTerm = false
			if joined == nil {
				joined = bst
			} else {
				joined.union(bst)
			}
		}
	}
	if !exhaustive {
		// No default: the switch may fall through unchanged.
		allTerm = false
		if joined == nil {
			joined = st.clone()
		} else {
			joined.union(st)
		}
	}
	if allTerm {
		return true
	}
	*st = *joined
	return false
}

// execLoopBody checks a loop body for per-iteration leaks: a token
// acquired inside the body that is still held when the back edge is
// reached leaks once per iteration.
func (c *checker) execLoopBody(body *ast.BlockStmt, st *state) {
	entry := st.clone()
	bst := st.clone()
	terminated := c.execList(body.List, bst)
	if !terminated {
		for obj, acq := range bst.held {
			if _, pre := entry.held[obj]; !pre {
				c.pass.Reportf(acq, "exclusive token %q acquired inside the loop is still held at the loop's back edge (leaks once per iteration)", obj.Name())
			}
		}
	}
	// After the loop, be conservative: keep the entry view (the body
	// may have run zero times).
	*st = *entry
}

// hasLoopBreak reports whether the loop body contains a break that
// can exit the loop: an unlabeled break not bound to a nested
// loop/switch/select, or any labeled break (conservatively assumed to
// target this loop).
func hasLoopBreak(body *ast.BlockStmt) bool {
	found := false
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if found {
			return false
		}
		br, ok := n.(*ast.BranchStmt)
		if !ok || br.Tok != token.BREAK {
			return true
		}
		if br.Label != nil {
			found = true
			return false
		}
		for i := len(stack) - 1; i >= 0; i-- {
			switch stack[i].(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
				return true // bound to the nested breakable statement
			}
		}
		found = true
		return false
	})
	return found
}

func (c *checker) isRelease(call *ast.CallExpr) bool {
	return analysis.IsPkgFunc(c.info(), call, lockPkgName, "ReleaseEx")
}

func (c *checker) isPanic(call *ast.CallExpr) bool {
	return analysis.BuiltinName(c.info(), call) == "panic"
}

// applyRelease removes the released token variable from the held set.
func (c *checker) applyRelease(call *ast.CallExpr, st *state) {
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if obj := c.info().Uses[id]; obj != nil {
				delete(st.held, obj)
			}
		}
	}
}

// lhsObj resolves an assignment target identifier.
func (c *checker) lhsObj(id *ast.Ident) types.Object {
	if obj := c.info().Defs[id]; obj != nil {
		return obj
	}
	return c.info().Uses[id]
}

// escapes scans an arbitrary node for reads of held token variables;
// any such use outside a ReleaseEx/CloseWindow/Upgrade transfers
// custody and stops tracking.
func (c *checker) escapes(n ast.Node, st *state) {
	if n == nil || len(st.held) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if analysis.IsPkgFunc(c.info(), call, lockPkgName, "ReleaseEx", "CloseWindow", "Upgrade") {
				return false // uses inside these keep custody here
			}
		}
		if id, ok := m.(*ast.Ident); ok {
			if obj := c.info().Uses[id]; obj != nil {
				delete(st.held, obj)
			}
		}
		return true
	})
}

func clauseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, s := range body.List {
		switch cl := s.(type) {
		case *ast.CaseClause:
			out = append(out, cl.Body)
		case *ast.CommClause:
			out = append(out, cl.Body)
		}
	}
	return out
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if cl, ok := s.(*ast.CaseClause); ok && cl.List == nil {
			return true
		}
	}
	return false
}
