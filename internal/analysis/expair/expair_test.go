package expair_test

import (
	"testing"

	"optiql/internal/analysis/analysistest"
	"optiql/internal/analysis/expair"
)

func TestExpair(t *testing.T) {
	analysistest.RunPattern(t, "../testdata", "./expair", expair.Analyzer)
}
