// Package recycle enforces the version-bump-on-reuse rule from the
// paper's node-recycling discussion (OptiQL §4.5): a node pulled from
// a recycler may still be reachable by optimistic readers that
// captured its address before it was unlinked. If its lock version is
// not bumped before the node is reinitialized, such a reader can
// validate successfully against the *reused* node and return data
// from the wrong key. The dynamic churn tests catch this as a rare
// lost-read; this analyzer catches it at the call site.
//
// Rule: any function that takes a node from a recycler
// (locks.Recycler.Get or a core.Pool pop) must, in the same function,
// either bump the version itself (locks.BumpOnReuse or a BumpVersion
// method call) or hand the node to a helper whose name marks it as a
// reuse-initializer. The check is intraprocedural by design — the
// repo's convention is that the function that dequeues the node
// reinitializes it — and name-based, so testdata stubs exercise the
// identical path.
package recycle

import (
	"go/ast"
	"go/types"

	"optiql/internal/analysis"
)

// Analyzer is the recycle pass.
var Analyzer = &analysis.Analyzer{
	Name: "recycle",
	Doc:  "functions taking nodes from a recycler must bump the lock version before reuse",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var gets []*ast.CallExpr
	bumps := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isRecyclerGet(pass.Info, call):
			gets = append(gets, call)
		case isBump(pass.Info, call):
			bumps = true
		}
		return true
	})
	if bumps {
		return
	}
	for _, g := range gets {
		pass.Reportf(g.Pos(), "function %s takes a node from a recycler but never bumps its lock version (call locks.BumpOnReuse or BumpVersion before reinitializing; stale optimistic readers would otherwise validate against the reused node)", fd.Name.Name)
	}
}

// isRecyclerGet matches locks.Recycler.Get method calls.
func isRecyclerGet(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Name() != "Get" || fn.Pkg() == nil || fn.Pkg().Name() != "locks" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	return recvNamed(recv.Type()) == "Recycler"
}

// isBump matches locks.BumpOnReuse(...) and any BumpVersion method
// call (the locks.VersionBumper interface method or a concrete lock's
// implementation).
func isBump(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return fn.Name() == "BumpOnReuse" && fn.Pkg() != nil && fn.Pkg().Name() == "locks"
	}
	return fn.Name() == "BumpVersion"
}

func recvNamed(t types.Type) string {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
