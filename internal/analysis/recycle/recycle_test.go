package recycle_test

import (
	"testing"

	"optiql/internal/analysis/analysistest"
	"optiql/internal/analysis/recycle"
)

func TestRecycle(t *testing.T) {
	analysistest.RunPattern(t, "../testdata", "./recycle", recycle.Analyzer)
}
