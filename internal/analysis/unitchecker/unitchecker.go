// Package unitchecker implements the `go vet -vettool` protocol for
// the optiqlvet suite, mirroring golang.org/x/tools'
// go/analysis/unitchecker on the standard library alone.
//
// The go command drives the tool once per package: it first probes
// `optiqlvet -V=full` for a version line to key its action cache,
// then invokes `optiqlvet <unit>.cfg` with a JSON config describing
// one compilation unit — file lists, the import map, and the paths of
// the export data of every dependency. The tool type-checks the unit
// against that export data (no re-building the world), runs the
// analyzers, writes its facts file (VetxOutput) for dependents, and
// prints diagnostics to stderr with a nonzero exit when it found any.
//
// Facts: the suite's string-keyed facts are serialized as JSON to the
// vetx file and merged back in from every dependency's PackageVetx
// entry, so atomicmix sees atomics established in imported packages.
// Only the module-wide standalone driver, however, sees sibling
// packages that are not imported — which is why CI runs both modes.
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"optiql/internal/analysis"
)

// Config is the JSON schema of the .cfg file the go command passes,
// field-compatible with x/tools' unitchecker.Config (the go command
// generates it; we consume the subset we need).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetxPayload is what one unit writes for its dependents: per
// analyzer, the string facts established by its Collect phase over
// this unit (merged with those inherited from the unit's deps, so
// facts are transitive).
type vetxPayload map[string]map[string]string

// Main runs one unit and returns the process exit code.
func Main(cfgPath string, analyzers []*analysis.Analyzer) int {
	cfg, err := readConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optiqlvet: %v\n", err)
		return 1
	}
	diags, fset, err := run(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "optiqlvet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}
	if len(diags) > 0 {
		analysis.SortDiagnostics(fset, diags)
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		return 2
	}
	return 0
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	if cfg.GoVersion == "" {
		cfg.GoVersion = "go1.24"
	}
	return cfg, nil
}

func run(cfg *Config, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fset, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	sizes := types.SizesFor(compiler, runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	tconf := types.Config{
		Importer:    imp,
		Sizes:       sizes,
		GoVersion:   goVersionFor(cfg.GoVersion),
		FakeImportC: true,
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fset, err
	}

	// Inherit facts from dependencies, then collect this unit's own.
	facts := make(map[string]*analysis.FactSet, len(analyzers))
	for _, a := range analyzers {
		facts[a.Name] = analysis.NewFactSet()
	}
	for _, vetx := range cfg.PackageVetx {
		mergeVetx(vetx, facts)
	}
	for _, a := range analyzers {
		if a.Collect != nil {
			a.Collect(analysis.NewPass(a, fset, files, pkg, info, sizes, facts[a.Name], nil))
		}
	}
	if cfg.VetxOutput != "" {
		if err := writeVetx(cfg.VetxOutput, analyzers, facts); err != nil {
			return nil, fset, err
		}
	}
	if cfg.VetxOnly {
		return nil, fset, nil
	}

	igs, diags := analysis.ParseIgnores(fset, files)
	for _, a := range analyzers {
		pass := analysis.NewPass(a, fset, files, pkg, info, sizes, facts[a.Name],
			func(d analysis.Diagnostic) { diags = append(diags, d) })
		if err := a.Run(pass); err != nil {
			return nil, fset, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	// Per-unit runs cannot see whether a directive is needed by a
	// sibling unit's facts arriving later, but a directive that
	// suppresses nothing in its own unit is stale by construction, so
	// unused reporting stays on here too.
	diags = analysis.FilterIgnored(fset, igs, diags, true)
	return diags, fset, nil
}

// goVersionFor normalizes the go command's GoVersion field (either
// "go1.24" or a bare "1.24") for types.Config.
func goVersionFor(v string) string {
	if v == "" {
		return ""
	}
	if !strings.HasPrefix(v, "go") {
		v = "go" + v
	}
	return v
}

func mergeVetx(path string, facts map[string]*analysis.FactSet) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return // dep analyzed by a different tool or carries no facts
	}
	var payload vetxPayload
	if json.Unmarshal(data, &payload) != nil {
		return
	}
	for name, kv := range payload {
		fs, ok := facts[name]
		if !ok {
			continue
		}
		for k, v := range kv {
			fs.Set(k, v)
		}
	}
}

func writeVetx(path string, analyzers []*analysis.Analyzer, facts map[string]*analysis.FactSet) error {
	payload := make(vetxPayload, len(analyzers))
	for _, a := range analyzers {
		fs := facts[a.Name]
		kv := make(map[string]string)
		for _, k := range fs.Keys() {
			v, _ := fs.Get(k)
			kv[k] = v
		}
		payload[a.Name] = kv
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}
