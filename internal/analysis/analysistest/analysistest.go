// Package analysistest is the golden-test harness for the optiqlvet
// analyzers, modeled on golang.org/x/tools/go/analysis/analysistest:
// each analyzer has a testdata package of flagging and non-flagging
// cases, with expected diagnostics declared in-line as
//
//	code() // want "regexp matching the message"
//
// A line may carry several want strings (multiple diagnostics), and a
// line with no want comment asserts the absence of diagnostics — so
// the legitimate idioms in the testdata (the non-flagging cases) are
// first-class assertions, not just filler.
//
// Testdata lives in internal/analysis/testdata, which is its own tiny
// module (vettest) so the main module's builds and vet runs never see
// the deliberately broken code inside it. The stub locks/core/obs
// packages there reproduce the real signatures under the same package
// names, because the analyzers match primitives by package name —
// the tests exercise exactly the production matching path.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"optiql/internal/analysis"
	"optiql/internal/analysis/driver"
	"optiql/internal/analysis/load"
)

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run applies the analyzers to the given patterns of the testdata
// module rooted at dir and compares the diagnostics (suppression
// directives already applied, unused ones reported) against the want
// comments in the matched packages' files.
func Run(t *testing.T, dir string, patterns []string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	rep, err := driver.Run(load.Config{Dir: dir, Patterns: patterns, Tests: true}, analyzers)
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	for _, terr := range rep.Result.TypeErrors {
		t.Errorf("testdata does not type-check: %v", terr)
	}

	var wants []*expectation
	fset := rep.Result.Fset
	for _, pkg := range rep.Result.Targets {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					idx := strings.Index(text, "want ")
					if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, m := range wantRE.FindAllString(text[idx+len("want "):], -1) {
						raw, err := strconv.Unquote(m)
						if err != nil {
							t.Fatalf("%s: malformed want string %s: %v", pos, m, err)
						}
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: want regexp does not compile: %v", pos, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
					}
				}
			}
		}
	}

	for _, d := range rep.Diagnostics {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// RunPattern is Run for a single package pattern.
func RunPattern(t *testing.T, dir, pattern string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	Run(t, dir, []string{pattern}, analyzers...)
}
