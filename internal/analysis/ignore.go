package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// In-source suppression. An intentional protocol deviation is
// documented where it lives with
//
//	//optiqlvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// either at the end of the flagged line or on the line directly
// above it. The reason is mandatory — a suppression without one is
// itself a diagnostic (analyzer name "ignorecheck", not
// suppressible), as is a directive that no diagnostic matched, so
// stale suppressions cannot accumulate.

// IgnoreCheckName is the pseudo-analyzer name under which malformed
// and unused suppression directives are reported.
const IgnoreCheckName = "ignorecheck"

const ignorePrefix = "optiqlvet:ignore"

// Ignore is one parsed suppression directive.
type Ignore struct {
	Pos       token.Pos
	File      string
	Line      int
	Analyzers map[string]bool
	Reason    string
	used      bool
}

// ParseIgnores scans the files' comments for suppression directives.
// Malformed directives (missing analyzer list or missing reason) are
// reported as ignorecheck diagnostics rather than returned.
func ParseIgnores(fset *token.FileSet, files []*ast.File) ([]*Ignore, []Diagnostic) {
	var igs []*Ignore
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if strings.HasPrefix(text, "//") {
					text = text[2:]
				} else if strings.HasPrefix(text, "/*") {
					text = strings.TrimSuffix(text[2:], "*/")
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if names == "" {
					diags = append(diags, Diagnostic{Pos: c.Pos(), Analyzer: IgnoreCheckName,
						Message: "optiqlvet:ignore directive names no analyzer"})
					continue
				}
				if reason == "" {
					diags = append(diags, Diagnostic{Pos: c.Pos(), Analyzer: IgnoreCheckName,
						Message: "optiqlvet:ignore directive carries no reason; every intentional protocol deviation must be justified in-source"})
					continue
				}
				ig := &Ignore{
					Pos:       c.Pos(),
					File:      fset.Position(c.Pos()).Filename,
					Line:      fset.Position(c.Pos()).Line,
					Analyzers: make(map[string]bool),
					Reason:    reason,
				}
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						ig.Analyzers[n] = true
					}
				}
				igs = append(igs, ig)
			}
		}
	}
	return igs, diags
}

// FilterIgnored drops diagnostics that a directive on the same or the
// directly preceding line suppresses, marking those directives used.
// ignorecheck diagnostics are never suppressed. If reportUnused is
// set (the driver running the full suite), directives that suppressed
// nothing are reported so stale suppressions surface.
func FilterIgnored(fset *token.FileSet, igs []*Ignore, diags []Diagnostic, reportUnused bool) []Diagnostic {
	byLoc := make(map[string][]*Ignore)
	for _, ig := range igs {
		key := ig.File
		byLoc[key] = append(byLoc[key], ig)
	}
	kept := diags[:0:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		if d.Analyzer != IgnoreCheckName {
			for _, ig := range byLoc[pos.Filename] {
				if (ig.Line == pos.Line || ig.Line == pos.Line-1) && ig.Analyzers[d.Analyzer] {
					ig.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	if reportUnused {
		for _, ig := range igs {
			if !ig.used {
				kept = append(kept, Diagnostic{Pos: ig.Pos, Analyzer: IgnoreCheckName,
					Message: "unused optiqlvet:ignore directive (no diagnostic suppressed); delete it or fix the analyzer list"})
			}
		}
	}
	return kept
}
