// Package atomicmix enforces a single access discipline per field:
// any struct field that is accessed through sync/atomic *functions*
// (atomic.LoadUint64(&s.f), atomic.StoreUint64(&s.f, v), ...)
// anywhere in the module must be accessed that way everywhere — a
// plain read or write of the same field elsewhere (including tests)
// races with the atomic side and the compiler is free to tear it.
//
// The repo's own hot structures (core lock word, tree roots, obs
// counters) already use the sync/atomic *types*, which make mixed
// access unrepresentable; this analyzer keeps future code (and tests
// reaching into internals) from regressing to the function-style
// idiom and mixing it with plain access. It runs in two phases: a
// module-wide Collect pass records every field whose address flows
// into a sync/atomic function, keyed "pkgpath.Type.field"; the Run
// pass flags plain selector reads and writes of those fields.
//
// Soundness gap: fields reached through reflection or unsafe escape
// the analysis, and in `go vet -vettool` mode each package is
// analyzed alone, so cross-package mixing is only caught by the
// standalone driver (CI runs both).
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"optiql/internal/analysis"
)

// Analyzer is the atomicmix pass.
var Analyzer = &analysis.Analyzer{
	Name:    "atomicmix",
	Doc:     "fields accessed via sync/atomic functions must never be read or written plainly",
	Collect: collect,
	Run:     run,
}

// fieldKey names a struct field module-wide.
func fieldKey(f *types.Var) (string, bool) {
	if f == nil || !f.IsField() {
		return "", false
	}
	named := fieldOwner(f)
	if named == "" {
		return "", false
	}
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Path()
	}
	return fmt.Sprintf("%s.%s.%s", pkg, named, f.Name()), true
}

// fieldOwner finds the named struct type declaring f by scanning the
// package scope (go/types does not link fields back to their owner).
func fieldOwner(f *types.Var) string {
	if f.Pkg() == nil {
		return ""
	}
	scope := f.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == f {
				return name
			}
		}
	}
	return ""
}

// selField resolves a selector expression to the struct field it
// denotes, if any.
func selField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// isAtomicFn reports whether the call invokes a sync/atomic
// function (not a method on the atomic types).
func isAtomicFn(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	return fn.Type().(*types.Signature).Recv() == nil
}

func collect(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFn(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := selField(pass.Info, sel); fv != nil {
					if key, ok := fieldKey(fv); ok {
						pass.Facts.Set(key, pass.Fset.Position(call.Pos()).String())
					}
				}
			}
			return true
		})
	}
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fv := selField(pass.Info, sel)
			if fv == nil {
				return true
			}
			key, ok := fieldKey(fv)
			if !ok || !pass.Facts.Has(key) {
				return true
			}
			if addressedForAtomic(pass.Info, sel, stack) {
				return true
			}
			where, _ := pass.Facts.Get(key)
			kind := "read"
			if isWriteTarget(sel, stack) {
				kind = "write"
			}
			pass.Reportf(sel.Pos(), "plain %s of field %s, which is accessed atomically (e.g. at %s); use sync/atomic consistently",
				kind, strings.TrimPrefix(key, pass.Pkg.Path()+"."), where)
			return true
		})
	}
	return nil
}

// addressedForAtomic reports whether the selector is &-addressed as a
// sync/atomic function argument — the sanctioned access form.
func addressedForAtomic(info *types.Info, sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	child := ast.Node(sel)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			child = p
		case *ast.UnaryExpr:
			if p.Op != token.AND {
				return false
			}
			child = p
		case *ast.CallExpr:
			return child != ast.Node(sel) && isAtomicFn(info, p)
		default:
			return false
		}
	}
	return false
}

// isWriteTarget reports whether the selector is on the left of an
// assignment or inc/dec statement.
func isWriteTarget(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == ast.Expr(sel) {
				return true
			}
		}
	case *ast.IncDecStmt:
		return ast.Unparen(p.X) == ast.Expr(sel)
	}
	return false
}
