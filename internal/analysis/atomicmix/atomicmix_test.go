package atomicmix_test

import (
	"testing"

	"optiql/internal/analysis/analysistest"
	"optiql/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.RunPattern(t, "../testdata", "./atomicmix", atomicmix.Analyzer)
}
