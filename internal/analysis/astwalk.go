package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WalkStack walks the AST under root like ast.Inspect, additionally
// passing the stack of ancestor nodes (outermost first, root's parent
// chain excluded). Returning false skips the node's children.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// Annotation reports whether the comment group carries the magic
// comment "//optiql:<name>" (exact token; trailing free text after a
// space is allowed and returned).
func Annotation(cg *ast.CommentGroup, name string) (string, bool) {
	if cg == nil {
		return "", false
	}
	want := "optiql:" + name
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if text == want {
			return "", true
		}
		if rest, ok := strings.CutPrefix(text, want+" "); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// HasAnnotation reports whether the comment group carries
// "//optiql:<name>".
func HasAnnotation(cg *ast.CommentGroup, name string) bool {
	_, ok := Annotation(cg, name)
	return ok
}

// CalleeFunc resolves the *types.Func a call invokes (method or
// function, through interfaces too), or nil for builtins, conversions
// and indirect calls through function values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// IsPkgFunc reports whether the call invokes a function or method
// named one of names that is declared in a package whose *name* (not
// path) is pkgName. Matching by package name keeps the analyzers
// equally applicable to the real optiql/internal/locks package and to
// the small stub packages under testdata.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgName string, names ...string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != pkgName {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// BuiltinName returns the name of the builtin a call invokes ("make",
// "new", "append", ...) or "".
func BuiltinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// EnclosingFuncName names the innermost enclosing function of the
// stack for diagnostics: "Lookup", "Tree.Scan" or "func literal".
func EnclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return "func literal"
		case *ast.FuncDecl:
			if fn.Recv != nil && len(fn.Recv.List) > 0 {
				if name := recvTypeName(fn.Recv.List[0].Type); name != "" {
					return name + "." + fn.Name.Name
				}
			}
			return fn.Name.Name
		}
	}
	return "package scope"
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}

// LineOf returns the 1-based line of pos.
func LineOf(fset *token.FileSet, pos token.Pos) int {
	return fset.Position(pos).Line
}
