// Package analysis is a self-contained, stdlib-only reimplementation
// of the golang.org/x/tools/go/analysis model, sized for this repo's
// needs: custom vet-style passes that statically enforce the OptiQL
// protocol invariants (optimistic-read validation, exclusive pairing,
// zero-alloc hot paths, atomic access discipline, cache-line padding,
// recycle version bumps).
//
// The x/tools module is deliberately not a dependency — the repo
// builds with the standard library alone — so this package provides
// the three pieces the analyzers need: the Analyzer/Pass/Diagnostic
// vocabulary (this file), AST walking and annotation helpers
// (astwalk.go), and in-source suppression directives (ignore.go).
// Package loading lives in the load subpackage, the multichecker in
// driver, the `go vet -vettool` protocol in unitchecker, and the
// golden-test harness in analysistest.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. Unlike x/tools there is no
// Requires/ResultOf graph — the suite is small enough that each
// analyzer is independent — but there is an explicit two-phase hook
// for module-wide facts: if Collect is non-nil the driver runs it
// over every package before any Run, and the analyzer may record
// string-keyed facts in the shared FactSet it sees again at Run time.
type Analyzer struct {
	// Name is the analyzer's identifier: flag values, diagnostic
	// suffixes and suppression directives all use it.
	Name string
	// Doc is a one-paragraph description (first line is the summary).
	Doc string
	// Collect, if non-nil, is the module-wide fact-collection phase.
	// It must only read the package and write Pass.Facts; diagnostics
	// reported from Collect are discarded.
	Collect func(*Pass)
	// Run reports diagnostics for one package via Pass.Reportf.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass carries one package's parsed and type-checked state to an
// analyzer, mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees, comments included. For a
	// module package under analysis this includes in-package _test.go
	// files; external test packages (package foo_test) form their own
	// Pass.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Sizes reports type sizes exactly as the gc compiler lays them
	// out for the current GOARCH (padalign depends on this).
	Sizes types.Sizes
	// Facts is the analyzer's module-wide fact store, shared between
	// its Collect and Run phases across all packages of the driver
	// invocation. Never nil.
	Facts *FactSet

	report func(Diagnostic)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.report == nil {
		return
	}
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// NewPass assembles a Pass; drivers and tests use it, analyzers never
// need to. report may be nil (Collect phases discard diagnostics).
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sizes types.Sizes, facts *FactSet, report func(Diagnostic)) *Pass {
	if facts == nil {
		facts = NewFactSet()
	}
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info, Sizes: sizes, Facts: facts, report: report}
}

// Diagnostic is one finding. Position resolution happens at print
// time through the FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// FactSet is a string-keyed module-wide fact store. Keys are
// analyzer-chosen (the convention is "pkgpath.Type.field"); the value
// carries optional detail such as the position that established the
// fact. It is not safe for concurrent use; the driver runs passes
// sequentially.
type FactSet struct {
	m map[string]string
}

// NewFactSet returns an empty fact store.
func NewFactSet() *FactSet { return &FactSet{m: make(map[string]string)} }

// Set records a fact, keeping the first value if already present.
func (f *FactSet) Set(key, val string) {
	if _, ok := f.m[key]; !ok {
		f.m[key] = val
	}
}

// Get returns the fact's value and whether it exists.
func (f *FactSet) Get(key string) (string, bool) {
	v, ok := f.m[key]
	return v, ok
}

// Has reports whether the fact exists.
func (f *FactSet) Has(key string) bool {
	_, ok := f.m[key]
	return ok
}

// Keys returns all fact keys, sorted (tests and debugging).
func (f *FactSet) Keys() []string {
	out := make([]string, 0, len(f.m))
	for k := range f.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SortDiagnostics orders diagnostics by file position then analyzer
// name, the order drivers print them in.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
