// Package nalloctest holds the noalloc golden cases: the zero-alloc
// idioms the hot paths use (non-flagging) and each allocating
// construct the analyzer rejects.
package nalloctest

// KV mirrors the hot-path value struct.
type KV struct {
	K uint64
	V uint64
}

func sink(x any) { _ = x }

// unannotated may allocate freely — the analyzer only fires inside
// annotated functions.
func unannotated() []int {
	s := make([]int, 8)
	return append(s, 1)
}

// goodHot exercises the allowed idioms: in-place append into a reused
// buffer, plain struct values, constant concatenation, pointer and
// constant interface boxing, and a non-loop defer.
//
//optiql:noalloc
func goodHot(buf []KV, k, v uint64, p *KV) []KV {
	buf = append(buf, KV{K: k, V: v})
	kv := KV{K: k}
	kv.V = v
	const label = "hot" + "path"
	_ = label
	sink(p)         // pointers are interface-word sized: no box
	sink(42)        // constants box to static data
	_ = []byte("k") // constant conversion: static data
	defer sink(p)
	return buf
}

// goodRingRecord is the trace ring-buffer store idiom
// (internal/obs/trace): a wrapping-cursor element assignment into a
// preallocated ring plus an unsynchronized sampling counter — struct
// stores and index arithmetic only, nothing the analyzer may flag.
//
//optiql:noalloc
func goodRingRecord(ring []KV, pos *uint64, k, v uint64) {
	ring[*pos&uint64(len(ring)-1)] = KV{K: k, V: v}
	*pos++
}

// goodSketchOffer is the space-saving sketch idiom: linear scan over a
// fixed-capacity slice, in-place count increments, appends only via
// the reassignment idiom (in-cap by construction), and eviction by
// overwriting the minimum slot — never growing the backing array.
//
//optiql:noalloc
func goodSketchOffer(items []KV, k uint64) []KV {
	minAt := 0
	for i := range items {
		if items[i].K == k {
			items[i].V++
			return items
		}
		if items[i].V < items[minAt].V {
			minAt = i
		}
	}
	if len(items) < cap(items) {
		items = append(items, KV{K: k, V: 1}) // in-cap: no growth
		return items
	}
	items[minAt] = KV{K: k, V: items[minAt].V + 1} // space-saving eviction
	return items
}

// badRingAlloc is the mistake the ring idiom exists to prevent:
// allocating the ring inside the hot function instead of carrying a
// preallocated one.
//
//optiql:noalloc
func badRingAlloc(k, v uint64) KV {
	ring := make([]KV, 16) // want "make in noalloc function badRingAlloc"
	ring[int(k)&15] = KV{K: k, V: v}
	return ring[int(k)&15]
}

//optiql:noalloc
func badMake(n int) int {
	s := make([]int, n) // want "make in noalloc function badMake"
	return len(s)
}

//optiql:noalloc
func badNew() *KV {
	return new(KV) // want "new in noalloc function badNew"
}

//optiql:noalloc
func badAppendFresh(buf []KV, kv KV) []KV {
	out := append(buf, kv) // want "append result not reassigned to its own first argument"
	return out
}

//optiql:noalloc
func badSliceLit() int {
	s := []int{1, 2, 3} // want "slice literal in noalloc function badSliceLit"
	return len(s)
}

//optiql:noalloc
func badMapLit() int {
	m := map[int]int{1: 2} // want "map literal in noalloc function badMapLit"
	return len(m)
}

//optiql:noalloc
func badPtrLit(k uint64) *KV {
	return &KV{K: k} // want "&composite literal in noalloc function badPtrLit"
}

//optiql:noalloc
func badClosure(n int) func() int {
	return func() int { return n } // want "function literal in noalloc function badClosure"
}

//optiql:noalloc
func badConcat(a, b string) string {
	return a + b // want "non-constant string concatenation in noalloc function badConcat"
}

//optiql:noalloc
func badStringConv(b []byte) string {
	return string(b) // want "string conversion copies in noalloc function badStringConv"
}

//optiql:noalloc
func badByteConv(s string) []byte {
	return []byte(s) // want "string conversion copies in noalloc function badByteConv"
}

//optiql:noalloc
func badBoxArg(kv KV) {
	sink(kv) // want "value of type vettest/noalloc.KV boxed into interface"
}

//optiql:noalloc
func badBoxConv(k uint64) any {
	return any(k) // want "value of type uint64 boxed into interface"
}

//optiql:noalloc
func badGo() {
	go sink(nil) // want "go statement in noalloc function badGo"
}

//optiql:noalloc
func badLoopDefer(p *KV) {
	for i := 0; i < 3; i++ {
		defer sink(p) // want "defer inside a loop in noalloc function badLoopDefer allocates per iteration"
	}
}

// goodSwarKernel is the SWAR search-kernel idiom (internal/simd): word
// loads via shifts, bit tricks and branchless index arithmetic over a
// caller-owned byte array — nothing that can touch the heap.
//
//optiql:noalloc
func goodSwarKernel(fp []byte, b byte) uint64 {
	bcast := uint64(b) * 0x0101010101010101
	var out uint64
	n := len(fp) &^ 7
	for i := 0; i < n; i += 8 {
		var w uint64
		for j := 0; j < 8; j++ {
			w |= uint64(fp[i+j]) << (8 * j)
		}
		x := w ^ bcast
		m := ^(((x & 0x7f7f7f7f7f7f7f7f) + 0x7f7f7f7f7f7f7f7f) | x | 0x7f7f7f7f7f7f7f7f)
		out |= ((m >> 7 * 0x0102040810204080) >> 56 & 0xff) << i
	}
	return out
}

// goodFpMaintain is the fingerprint-maintenance idiom (internal/btree
// fp.go): shifting a node-owned byte array in place alongside its key
// array — copies within preallocated storage only.
//
//optiql:noalloc
func goodFpMaintain(fps []byte, keys []uint64, i, cnt int, k uint64) {
	copy(fps[i+1:cnt+1], fps[i:cnt])
	copy(keys[i+1:cnt+1], keys[i:cnt])
	fps[i] = byte((k * 0x9E3779B97F4A7C15) >> 56)
	keys[i] = k
}

// badFpRebuild is the mistake the in-place idiom prevents: rebuilding
// the fingerprint array into a fresh allocation on the maintenance
// path instead of mutating the node's own storage.
//
//optiql:noalloc
func badFpRebuild(keys []uint64, cnt int) []byte {
	fps := make([]byte, (cnt+7)&^7) // want "make in noalloc function badFpRebuild"
	for i := 0; i < cnt; i++ {
		fps[i] = byte((keys[i] * 0x9E3779B97F4A7C15) >> 56)
	}
	return fps
}
