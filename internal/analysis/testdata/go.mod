// The vettest module holds the analyzers' golden-test packages: code
// that deliberately violates the OptiQL protocol invariants, kept in
// its own module so the main module's builds and vet runs never see
// it. Expected diagnostics are declared in-line with `// want`
// comments (see internal/analysis/analysistest).
module vettest

go 1.24
