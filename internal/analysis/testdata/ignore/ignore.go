// Package igtest exercises the suppression directives: a well-formed
// directive silences exactly its analyzer on its line (or the line
// below), a directive without a reason is itself a finding, and a
// directive that suppresses nothing is reported as stale.
package igtest

import "vettest/locks"

func read() int { return 1 }

// suppressedSameLine documents an intentional deviation in-line.
func suppressedSameLine(l *locks.OptLock, c *locks.Ctx) int {
	tok, ok := l.AcquireSh(c)
	if !ok {
		return -1
	}
	v := read()
	l.ReleaseSh(c, tok) //optiqlvet:ignore shcheck pessimistic fallback: result is irrelevant when the lock cannot fail validation
	return v
}

// suppressedLineAbove uses the line-above form.
func suppressedLineAbove(l *locks.OptLock, c *locks.Ctx) int {
	tok, ok := l.AcquireSh(c)
	if !ok {
		return -1
	}
	v := read()
	//optiqlvet:ignore shcheck pessimistic fallback: result is irrelevant when the lock cannot fail validation
	l.ReleaseSh(c, tok)
	return v
}

// missingReason: a directive without a justification is malformed —
// it does not suppress, and is reported itself.
func missingReason(l *locks.OptLock, c *locks.Ctx) int {
	tok, ok := l.AcquireSh(c)
	if !ok {
		return -1
	}
	v := read()
	l.ReleaseSh(c, tok) /*optiqlvet:ignore shcheck*/ // want "carries no reason" "validation result discarded"
	return v
}

// missingAnalyzer: a directive naming no analyzer is malformed.
func missingAnalyzer(l *locks.OptLock, c *locks.Ctx) int {
	tok, ok := l.AcquireSh(c)
	if !ok {
		return -1
	}
	v := read()
	l.ReleaseSh(c, tok) /*optiqlvet:ignore*/ // want "names no analyzer" "validation result discarded"
	return v
}

// wrongAnalyzer: the directive names a different analyzer, so the
// diagnostic stays and the directive is reported stale.
func wrongAnalyzer(l *locks.OptLock, c *locks.Ctx) int {
	tok, ok := l.AcquireSh(c)
	if !ok {
		return -1
	}
	v := read()
	l.ReleaseSh(c, tok) /*optiqlvet:ignore expair not the analyzer that fires here*/ // want "unused optiqlvet:ignore directive" "validation result discarded"
	return v
}

// unusedDirective suppresses nothing at all.
func unusedDirective() int {
	v := read() /*optiqlvet:ignore shcheck nothing ever fires on this line*/ // want "unused optiqlvet:ignore directive"
	return v
}
