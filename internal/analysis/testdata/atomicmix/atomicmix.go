// Package amixtest holds the atomicmix golden cases: a field touched
// by sync/atomic functions anywhere must be touched that way
// everywhere; fields never accessed atomically stay unrestricted.
package amixtest

import "sync/atomic"

type counter struct {
	n uint64 // accessed via atomic functions below
	m uint64 // only ever accessed plainly
}

func inc(c *counter) {
	atomic.AddUint64(&c.n, 1)
}

func okAtomicRead(c *counter) uint64 {
	return atomic.LoadUint64(&c.n)
}

func okAtomicWrite(c *counter) {
	atomic.StoreUint64(&c.n, 0)
}

func okPlainOther(c *counter) uint64 {
	c.m = 7
	return c.m
}

func badPlainRead(c *counter) uint64 {
	return c.n // want "plain read of field counter.n, which is accessed atomically"
}

func badPlainWrite(c *counter) {
	c.n = 0 // want "plain write of field counter.n, which is accessed atomically"
}

func badPlainIncrement(c *counter) {
	c.n++ // want "plain write of field counter.n, which is accessed atomically"
}
