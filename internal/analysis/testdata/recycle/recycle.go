// Package rectest holds the recycle golden cases: a node taken from
// the recycler must have its lock version bumped in the same function
// before it is reinitialized.
package rectest

import "vettest/locks"

type node struct {
	lock locks.OptLock
	keys [4]uint64
}

// goodHelperBump uses the locks helper, the production idiom.
func goodHelperBump(r *locks.Recycler, c *locks.Ctx) *node {
	n, ok := r.Get(c).(*node)
	if !ok {
		n = &node{}
	}
	locks.BumpOnReuse(&n.lock)
	n.keys = [4]uint64{}
	return n
}

// goodMethodBump calls BumpVersion directly.
func goodMethodBump(r *locks.Recycler, c *locks.Ctx) *node {
	n, ok := r.Get(c).(*node)
	if !ok {
		n = &node{}
	}
	n.lock.BumpVersion()
	return n
}

// noRecycler never touches the recycler: unconstrained.
func noRecycler(c *locks.Ctx) *node {
	return &node{}
}

// badNoBump reuses a node with its old version intact: a stale
// optimistic reader holding the node's address can still validate.
func badNoBump(r *locks.Recycler, c *locks.Ctx) *node {
	n, ok := r.Get(c).(*node) // want "takes a node from a recycler but never bumps its lock version"
	if !ok {
		n = &node{}
	}
	n.keys = [4]uint64{}
	return n
}
