// Package expairtest holds the expair golden cases: exclusive tokens
// released on every path (non-flagging), custody transfers, and the
// leak shapes the analyzer must catch.
package expairtest

import "vettest/locks"

func cond() bool { return false }

func work() {}

// goodPair is the straight-line acquire/release pair.
func goodPair(l *locks.OptLock, c *locks.Ctx) {
	tok := l.AcquireEx(c)
	work()
	l.ReleaseEx(c, tok)
}

// goodDeferred releases on every path via defer.
func goodDeferred(l *locks.OptLock, c *locks.Ctx) {
	tok := l.AcquireEx(c)
	defer l.ReleaseEx(c, tok)
	if cond() {
		return
	}
	work()
}

// goodBothBranches releases in each arm.
func goodBothBranches(l *locks.OptLock, c *locks.Ctx) {
	tok := l.AcquireEx(c)
	if cond() {
		l.ReleaseEx(c, tok)
		return
	}
	work()
	l.ReleaseEx(c, tok)
}

// held mirrors the B+-tree SMO stack entry: storing the token in a
// composite literal transfers custody to the stack's unwinder.
type held struct {
	l   *locks.OptLock
	tok locks.Token
}

// goodCustodyTransfer pushes tokens onto a stack released elsewhere —
// the insertPessimistic idiom.
func goodCustodyTransfer(l *locks.OptLock, c *locks.Ctx, stack []held) []held {
	tok := l.AcquireEx(c)
	stack = append(stack, held{l: l, tok: tok})
	return stack
}

// goodFieldCustody stores a fresh token straight into a stack entry's
// field: custody belongs to whoever unwinds the stack (the btree
// delete re-acquire idiom).
func goodFieldCustody(l *locks.OptLock, c *locks.Ctx, h *held) {
	h.tok = l.AcquireEx(c)
}

// goodInfiniteDescent models the ART pessimistic descent: an
// unconditional loop whose every exit path releases; the code after
// the loop is unreachable and must not be reported (regression).
func goodInfiniteDescent(l, l2 *locks.OptLock, c *locks.Ctx) bool {
	tok := l.AcquireEx(c)
	for {
		if cond() {
			l.ReleaseEx(c, tok)
			return true
		}
		ctok := l2.AcquireEx(c)
		l, tok = l2, ctok
	}
}

// goodUpgradeRelease releases only where the upgrade succeeded.
func goodUpgradeRelease(l *locks.OptLock, c *locks.Ctx) {
	tok, ok := l.AcquireSh(c)
	if !ok {
		return
	}
	if l.Upgrade(c, &tok) {
		work()
		l.ReleaseEx(c, tok)
	}
}

// goodExhaustiveSwitch releases in every arm of an exhaustive
// switch; the function end is unreachable and must not be reported
// against the pre-branch state (regression: art updateDirect shape).
func goodExhaustiveSwitch(l *locks.OptLock, c *locks.Ctx, k int) bool {
	tok := l.AcquireEx(c)
	switch {
	case k == 0:
		l.CloseWindow(tok)
		l.ReleaseEx(c, tok)
		return true
	case k > 0:
		l.ReleaseEx(c, tok)
		return false
	default:
		l.ReleaseEx(c, tok)
		return false
	}
}

func badBareAcquire(l *locks.OptLock, c *locks.Ctx) {
	l.AcquireEx(c) // want "AcquireEx token discarded"
}

func badBlankAcquire(l *locks.OptLock, c *locks.Ctx) {
	_ = l.AcquireEx(c) // want "AcquireEx token assigned to blank"
}

// badEarlyReturn leaks the token on the early-out path.
func badEarlyReturn(l *locks.OptLock, c *locks.Ctx) {
	tok := l.AcquireEx(c)
	if cond() {
		return // want "exclusive token \"tok\" .* is not released on this path \\(return\\)"
	}
	l.ReleaseEx(c, tok)
}

// badGotoLeak jumps back to re-acquire while still holding the token
// — the queue lock behind it deadlocks.
func badGotoLeak(l *locks.OptLock, c *locks.Ctx) {
retry:
	tok := l.AcquireEx(c)
	if cond() {
		goto retry // want "is not released on this path \\(goto retry\\)"
	}
	l.ReleaseEx(c, tok)
}

// badPanicLeak panics while holding the token.
func badPanicLeak(l *locks.OptLock, c *locks.Ctx) {
	tok := l.AcquireEx(c)
	if cond() {
		panic("invariant") // want "is not released on this path \\(panic\\)"
	}
	l.ReleaseEx(c, tok)
}

// badUpgradeLeak returns out of the successful-upgrade branch without
// releasing the now-exclusive token.
func badUpgradeLeak(l *locks.OptLock, c *locks.Ctx) {
	tok, ok := l.AcquireSh(c)
	if !ok {
		return
	}
	if l.Upgrade(c, &tok) {
		work()
		return // want "is not released on this path \\(return\\)"
	}
}

// badLoopLeak acquires per iteration and never releases.
func badLoopLeak(l *locks.OptLock, c *locks.Ctx) {
	for i := 0; i < 3; i++ {
		tok := l.AcquireEx(c) // want "still held at the loop's back edge"
		l.CloseWindow(tok)
	}
}

// badFuncEnd falls off the function end while holding.
func badFuncEnd(l *locks.OptLock, c *locks.Ctx) {
	tok := l.AcquireEx(c)
	l.CloseWindow(tok)
} // want "is not released on this path \\(function end\\)"
