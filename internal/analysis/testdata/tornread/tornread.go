// Package torntest holds the tornread golden cases: the clamp and
// validation idioms the tree relies on (non-flagging) next to the
// torn-read hazards the analyzer must catch. The node/leaf shapes
// mirror internal/art and internal/btree: a lock-guarded node struct
// whose counts, prefixes and child pointers may be read while a
// concurrent writer mutates them.
package torntest

import (
	"sync/atomic"

	"vettest/locks"
)

type node struct {
	lock        locks.OptLock
	seq         atomic.Uint64
	numChildren int
	prefixLen   int
	prefix      [8]byte
	keys        [16]byte
	children    [16]*node
	leaf        *leaf
}

type leaf struct {
	key   uint64
	value uint64
}

// ---- Direct hazards inside an optimistic section ----

// flagLoopBound loops to a bound loaded from the optimistically-held
// node: a torn prefixLen makes the index run past the array.
func flagLoopBound(n *node, c *locks.Ctx) int {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return -1
	}
	sum := 0
	for i := 0; i < n.prefixLen; i++ { // want "loop bound derives from an optimistic read"
		sum += int(n.prefix[i&7])
	}
	if !n.lock.ReleaseSh(c, tok) {
		return -1
	}
	return sum
}

// flagIndex indexes a child array by a raw racy count.
func flagIndex(n *node, c *locks.Ctx) *node {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return nil
	}
	i := n.numChildren - 1
	ch := n.children[i] // want "optimistically-read value used as index"
	if !n.lock.ReleaseSh(c, tok) {
		return nil
	}
	return ch
}

// flagMake sizes an allocation by a raw racy count before validating.
func flagMake(n *node, c *locks.Ctx) []byte {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return nil
	}
	buf := make([]byte, n.numChildren) // want "optimistically-read value used as allocation size"
	if !n.lock.ReleaseSh(c, tok) {
		return nil
	}
	return buf
}

// flagDeref dereferences a child pointer loaded from node memory
// without a nil check: a concurrent writer may have unlinked it.
func flagDeref(n *node, c *locks.Ctx) uint64 {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return 0
	}
	l := n.leaf
	v := l.value // want "racy pointer dereference"
	if !n.lock.ReleaseSh(c, tok) {
		return 0
	}
	return v
}

// ---- Sanitizers (non-flagging) ----

// goodClampedIndex bounds the index before using it: the idiom of
// clampedCount/clampedChildren.
func goodClampedIndex(n *node, c *locks.Ctx) *node {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return nil
	}
	i := n.numChildren - 1
	if i < 0 || i >= len(n.children) {
		return nil
	}
	ch := n.children[i]
	_ = tok
	return ch
}

// goodMaskedIndex bounds the index with a mask.
func goodMaskedIndex(n *node, c *locks.Ctx) byte {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return 0
	}
	i := n.numChildren & 15
	b := n.keys[i]
	_ = tok
	return b
}

// goodMinClamp bounds a racy count with min against a constant.
func goodMinClamp(n *node, c *locks.Ctx) int {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return 0
	}
	lim := min(n.prefixLen, len(n.prefix))
	sum := 0
	for i := 0; i < lim; i++ {
		sum += int(n.prefix[i&7])
	}
	_ = tok
	return sum
}

// goodValidated uses the count only after a successful validation
// dominates the use: the value is retroactively consistent.
func goodValidated(n *node, c *locks.Ctx) []int {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return nil
	}
	cnt := n.numChildren
	if !n.lock.ReleaseSh(c, tok) {
		return nil
	}
	return make([]int, cnt)
}

// goodNamedValidation branches on a named validation result.
func goodNamedValidation(n *node, c *locks.Ctx) []int {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return nil
	}
	cnt := n.numChildren
	valid := n.lock.ReleaseSh(c, tok)
	if !valid {
		return nil
	}
	return make([]int, cnt)
}

// goodUpgrade trusts everything read before a successful upgrade: the
// version did not move, and the hold is now exclusive.
func goodUpgrade(n *node, c *locks.Ctx) []int {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return nil
	}
	cnt := n.numChildren
	if !n.lock.Upgrade(c, &tok) {
		return nil
	}
	buf := make([]int, cnt)
	n.lock.ReleaseEx(c, tok)
	return buf
}

// goodExclusive reads under an exclusive hold: nothing is torn.
func goodExclusive(n *node, c *locks.Ctx) *node {
	tok := n.lock.AcquireEx(c)
	ch := n.children[n.numChildren-1]
	n.lock.ReleaseEx(c, tok)
	return ch
}

// goodNilCheckedDeref promotes a racy child pointer with a nil check;
// the pointed-to values stay tainted but the deref itself is safe
// (node memory is type-stable under the recycler).
func goodNilCheckedDeref(n *node, c *locks.Ctx) uint64 {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return 0
	}
	l := n.leaf
	if l == nil {
		return 0
	}
	v := l.value
	if !n.lock.ReleaseSh(c, tok) {
		return 0
	}
	return v
}

// goodByteIndex relies on the intrinsic uint8 bound: a torn byte still
// lands inside a 256-entry table.
func goodByteIndex(n *node, c *locks.Ctx, table *[256]int) int {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return 0
	}
	v := table[n.keys[0]]
	_ = tok
	return v
}

// goodAtomicField reads an atomic cell through the optimistic hold:
// untorn by contract, so it is clean.
func goodAtomicField(n *node, c *locks.Ctx) []int {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return nil
	}
	cnt := int(n.seq.Load() & 255)
	_ = tok
	return make([]int, cnt)
}

// ---- Interprocedural: helper summaries flag at call sites ----

// checkPrefixRaw mirrors the art.checkPrefix bug shape: the loop bound
// and returned count load through the parameter. The helper itself is
// fine — obligations transfer to the call sites.
func checkPrefixRaw(n *node, k uint64, level int) int {
	for i := 0; i < n.prefixLen; i++ {
		if level+i >= 8 || n.prefix[i&7] != byte(k>>uint(56-8*(level+i))) {
			return i
		}
	}
	return n.prefixLen
}

// checkPrefixBounded is the fixed shape: one conjunct of the loop
// bound is clean, so no obligation escapes.
func checkPrefixBounded(n *node, k uint64, level int) int {
	for i := 0; i < n.prefixLen && i < len(n.prefix); i++ {
		if level+i >= 8 || n.prefix[i] != byte(k>>uint(56-8*(level+i))) {
			return i
		}
	}
	return n.prefixLen
}

// flagPrefixCaller passes an optimistically-held node to the raw
// helper: the summary's load-sink obligation fires here.
func flagPrefixCaller(n *node, c *locks.Ctx, k uint64) bool {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return false
	}
	off := checkPrefixRaw(n, k, 0) // want "checkPrefixRaw indexes by a value it loads from this optimistically-held node"
	_ = tok
	return off == 0
}

// goodPrefixCallerBounded: the bounded helper carries no obligation.
func goodPrefixCallerBounded(n *node, c *locks.Ctx, k uint64) bool {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return false
	}
	off := checkPrefixBounded(n, k, 0)
	_ = tok
	return off == 0
}

// goodPrefixCallerExclusive: the raw helper is fine under an exclusive
// hold — exactly why the obligation is call-site conditional.
func goodPrefixCallerExclusive(n *node, c *locks.Ctx, k uint64) bool {
	tok := n.lock.AcquireEx(c)
	off := checkPrefixRaw(n, k, 0)
	n.lock.ReleaseEx(c, tok)
	return off == 0
}

// rawIndex indexes by its value parameter: a sinkVal obligation.
func rawIndex(n *node, i int) *node { return n.children[i] }

// flagValueSink passes a tainted count into the indexing helper.
func flagValueSink(n *node, c *locks.Ctx) *node {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return nil
	}
	ch := rawIndex(n, n.numChildren-1) // want "optimistically-read value passed to rawIndex reaches an index"
	_ = tok
	return ch
}

// goodValueSinkClamped clamps before the call.
func goodValueSinkClamped(n *node, c *locks.Ctx) *node {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return nil
	}
	ch := rawIndex(n, n.numChildren&15)
	_ = tok
	return ch
}

// readLeaf dereferences its parameter unchecked: a deref obligation.
func readLeaf(l *leaf) uint64 { return l.value }

// flagDerefHelper hands a racy-loaded pointer to a helper that
// dereferences it.
func flagDerefHelper(n *node, c *locks.Ctx) uint64 {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return 0
	}
	v := readLeaf(n.leaf) // want "readLeaf dereferences this pointer, which was loaded from node memory"
	_ = tok
	return v
}

// goodDerefHelperChecked nil-checks before the call.
func goodDerefHelperChecked(n *node, c *locks.Ctx) uint64 {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return 0
	}
	l := n.leaf
	if l == nil {
		return 0
	}
	v := readLeaf(l)
	_ = tok
	return v
}

// loadCount returns a racy load: the taint arrives with the return
// value at optimistic call sites.
func loadCount(n *node) int { return n.numChildren }

// flagSummaryReturn sinks a helper's tainted return value.
func flagSummaryReturn(n *node, c *locks.Ctx) []int {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return nil
	}
	cnt := loadCount(n)
	_ = tok
	return make([]int, cnt) // want "optimistically-read value used as allocation size"
}

// goodSummaryReturnValidated validates before sinking the return.
func goodSummaryReturnValidated(n *node, c *locks.Ctx) []int {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return nil
	}
	cnt := loadCount(n)
	if !n.lock.ReleaseSh(c, tok) {
		return nil
	}
	return make([]int, cnt)
}

// ---- Suppression ----

// suppressed documents a deliberate raw read; the directive absorbs
// the diagnostic and counts as used.
func suppressed(n *node, c *locks.Ctx) []int {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return nil
	}
	//optiqlvet:ignore tornread golden case for the suppression path
	buf := make([]int, n.numChildren)
	_ = tok
	return buf
}
