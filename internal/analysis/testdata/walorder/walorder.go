// Package waltest holds the walorder golden cases, shaped after the
// server's executor: an Index apply must be dominated by a successful
// wal.Append (or be on the wal-disabled or replay path), and no op may
// be acked after a successful append unless the durability barrier is
// accounted for.
package waltest

import "vettest/wal"

// Index mirrors the server's index interface: the apply primitives.
type Index interface {
	Insert(k, v uint64) bool
	Delete(k uint64) bool
}

type pending struct{ n int }

// opDone mirrors the per-op ack: the complete primitive.
func (p *pending) opDone() { p.n-- }

type writeOp struct {
	key, val uint64
	p        *pending
}

type ackBatch struct{ items []*pending }

type executor struct {
	idx           Index
	wal           *wal.Log
	ack           *ackBatch
	walDefersAcks bool
}

// applyAll is the unguarded apply helper (applyBatch's shape): it is
// not WAL-aware itself, so the ordering obligation lands on callers.
func (e *executor) applyAll(buf []writeOp) {
	for i := range buf {
		w := &buf[i]
		e.idx.Insert(w.key, w.val)
		e.complete(w)
	}
}

// complete parks the ack on the installed batch or acks immediately.
func (e *executor) complete(w *writeOp) {
	if e.ack != nil {
		e.ack.items = append(e.ack.items, w.p)
		return
	}
	w.p.opDone()
}

// goodExec is the canonical execBatch shape: every path guards the
// apply and the ack.
func (e *executor) goodExec(buf []writeOp) {
	if e.wal == nil {
		e.applyAll(buf)
		return
	}
	ops := make([]wal.Op, 0, len(buf))
	for i := range buf {
		ops = append(ops, wal.Op{Key: buf[i].key, Val: buf[i].val})
	}
	seq, err := e.wal.Append(ops)
	if err != nil {
		for i := range buf {
			buf[i].p.opDone()
		}
		return
	}
	if !e.walDefersAcks {
		e.applyAll(buf)
		e.wal.NoteApplied(seq)
		return
	}
	ab := &ackBatch{}
	e.ack = ab
	e.applyAll(buf)
	e.ack = nil
	e.wal.NoteApplied(seq)
	e.wal.Commit(seq, len(ab.items), nil)
}

// flagApplyBeforeAppend applies to the index before the batch is
// durable in the log: a crash between the two loses the write.
func (e *executor) flagApplyBeforeAppend(buf []writeOp) {
	ops := make([]wal.Op, 0, len(buf))
	for i := range buf {
		ops = append(ops, wal.Op{Key: buf[i].key, Val: buf[i].val})
	}
	e.applyAll(buf) // want "index apply is not dominated by a wal.Append"
	seq, err := e.wal.Append(ops)
	if err != nil {
		return
	}
	e.wal.NoteApplied(seq)
}

// flagDirectInsert applies outside both the nil-WAL path and any
// append.
func (e *executor) flagDirectInsert(k, v uint64) {
	if e.wal == nil {
		e.idx.Insert(k, v)
		return
	}
	e.idx.Insert(k, v) // want "index apply is not dominated by a wal.Append"
}

// flagAckWithoutBarrier acks after a successful append with no ack
// batch, no error unwind and no policy exemption: under a deferring
// fsync policy the client hears success before the record is stable.
func (e *executor) flagAckWithoutBarrier(buf []writeOp, ops []wal.Op) {
	seq, err := e.wal.Append(ops)
	if err != nil {
		return
	}
	for i := range buf {
		e.idx.Insert(buf[i].key, buf[i].val)
		buf[i].p.opDone() // want "op completion after a successful wal.Append without the durability barrier"
	}
	e.wal.NoteApplied(seq)
}

// goodAckBatch installs the group-commit batch before applying.
func (e *executor) goodAckBatch(buf []writeOp, ops []wal.Op) {
	seq, err := e.wal.Append(ops)
	if err != nil {
		return
	}
	ab := &ackBatch{}
	e.ack = ab
	e.applyAll(buf)
	e.ack = nil
	e.wal.Commit(seq, len(ab.items), nil)
}

// goodOffPolicy takes the non-deferring policy fast path, where acks
// at apply time are correct by policy.
func (e *executor) goodOffPolicy(buf []writeOp, ops []wal.Op) {
	seq, err := e.wal.Append(ops)
	if err != nil {
		return
	}
	if !e.walDefersAcks {
		for i := range buf {
			e.idx.Insert(buf[i].key, buf[i].val)
			buf[i].p.opDone()
		}
		e.wal.NoteApplied(seq)
	}
}

// goodPolicyCall observes the policy through a method instead of a
// field.
func (e *executor) goodPolicyCall(buf []writeOp, ops []wal.Op, pol interface{ DefersAcks() bool }) {
	_, err := e.wal.Append(ops)
	if err != nil {
		return
	}
	if !pol.DefersAcks() {
		for i := range buf {
			e.idx.Insert(buf[i].key, buf[i].val)
			buf[i].p.opDone()
		}
	}
}

// goodErrPath acks on the append-error unwind: the ops fail, and the
// error answer is the barrier.
func (e *executor) goodErrPath(buf []writeOp, ops []wal.Op) {
	_, err := e.wal.Append(ops)
	if err != nil {
		for i := range buf {
			buf[i].p.opDone()
		}
		return
	}
	ab := &ackBatch{}
	e.ack = ab
	e.applyAll(buf)
	e.ack = nil
}

// goodReplay applies records drawn from the durable log itself: the
// recovery path is exempt by construction.
func (e *executor) goodReplay(recs []wal.Op) {
	for _, r := range recs {
		if r.Code == 0 {
			e.idx.Insert(r.Key, r.Val)
		} else {
			e.idx.Delete(r.Key)
		}
	}
}

// run drains batches through the fully guarded executor: calling a
// helper whose applies are internally guarded imposes nothing here.
func (e *executor) run(batches [][]writeOp) {
	for _, buf := range batches {
		e.goodExec(buf)
	}
}
