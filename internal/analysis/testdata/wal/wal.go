// Package wal is a stub of the real internal/wal surface with the
// same package name and signatures; walorder matches the append and
// durability primitives by package name, so the goldens exercise the
// production matching path.
package wal

// Op mirrors one durable log record.
type Op struct {
	Code byte
	Key  uint64
	Val  uint64
}

// Log mirrors the per-shard write-ahead log.
type Log struct{ seq uint64 }

// Append mirrors the durable append: it assigns the batch a sequence
// number and may fail when the log is poisoned or closed.
func (l *Log) Append(ops []Op) (uint64, error) {
	l.seq += uint64(len(ops))
	return l.seq, nil
}

// NoteApplied mirrors the apply watermark advance.
func (l *Log) NoteApplied(seq uint64) {}

// Commit mirrors handing a batch to the group-commit policy.
func (l *Log) Commit(seq uint64, n int, c Committer) { c.Committed(nil) }

// Committer mirrors the fsync-completion callback.
type Committer interface{ Committed(err error) }
