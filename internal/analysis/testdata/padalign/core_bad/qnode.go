// Package core (bad variant): the pinned queue node lost its
// annotation, and two annotated structs have broken layouts.
package core

type QNode struct { // want "struct QNode must carry //optiql:cacheline"
	next uintptr
}

//optiql:cacheline
type Waiter struct { // want "struct Waiter is 8 bytes, not a non-zero multiple of 64"
	v uint64
}

//optiql:cacheline
type Hole struct { // want "struct Hole is 72 bytes, not a non-zero multiple of 64"
	a [8]uint64
	b byte
}
