// Package core (good variant): the pinned queue node carries the
// annotation and is exactly one cache line.
package core

//optiql:cacheline
type QNode struct {
	next uintptr
	prev uintptr
	val  uint64
	_    [40]byte
}

//optiql:cacheline
type TwoLine struct {
	a [16]uint64 // two full lines is fine: still a 64-byte multiple
}

// Unannotated structs are unconstrained.
type Scratch struct {
	b byte
}
