// Package btreenode mirrors the fingerprint-carrying B+-tree size
// classes (internal/btree/node.go): a header, a SWAR-padded
// fingerprint array placed directly after it, then the inline key and
// value arrays, padded out to a cache-line multiple. The good variant
// lands exactly on the boundary; the bad variants show what the check
// catches — adding the fingerprint array without re-padding, and
// dropping the trailing pad.
package btreenode

// header stands in for the 144-byte node header (lock interface,
// flags, count, slice headers, prefix metadata).
type header struct {
	lock  any
	leaf  bool
	shift uint8
	count int
	keys  []uint64
	vals  []uint64
	kids  []uintptr
	next  uintptr
	fps   []byte
	pfx   uint64
}

// leafOK is the 384-byte hot class: 144-byte header + 16 fingerprint
// bytes + 14 keys + 14 values = exactly 6 cache lines, no pad needed.
//
//optiql:cacheline
type leafOK struct {
	n    header
	fp   [16]byte
	k, v [14]uint64
}

// leafPadOK is a larger class whose fp array pushes the struct off the
// boundary; the trailing pad brings it back to a 64-byte multiple.
//
//optiql:cacheline
type leafPadOK struct {
	n    header
	fp   [32]byte
	k, v [30]uint64
	_    [48]byte
}

// leafBadFP added the fingerprint array without recomputing the pad.
//
//optiql:cacheline
type leafBadFP struct { // want "struct leafBadFP is 664 bytes, not a non-zero multiple of 64"
	n    header
	fp   [32]byte
	k, v [30]uint64
	_    [8]byte
}

// leafBadNoPad dropped the trailing pad entirely.
//
//optiql:cacheline
type leafBadNoPad struct { // want "struct leafBadNoPad is 656 bytes, not a non-zero multiple of 64"
	n    header
	fp   [32]byte
	k, v [30]uint64
}
