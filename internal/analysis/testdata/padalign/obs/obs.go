// Package obs (good variant): the pinned per-worker counter block is
// annotated and cache-line sized.
package obs

//optiql:cacheline
type Counters struct {
	c [8]uint64
}
