// Package shtest holds the shcheck golden cases: the optimistic-read
// validation idioms the repo uses (non-flagging) next to the protocol
// violations the analyzer must catch.
package shtest

import "vettest/locks"

func read() int { return 1 }

func cond() bool { return false }

// goodLookup is the canonical optimistic read: admission flag
// branched, validation result gating the return.
func goodLookup(l *locks.OptLock, c *locks.Ctx) int {
	for {
		tok, ok := l.AcquireSh(c)
		if !ok {
			continue
		}
		v := read()
		if l.ReleaseSh(c, tok) {
			return v
		}
	}
}

// goodRestartDiscard discards the validation result on a pure restart
// path — nothing read under the token escapes, control jumps back.
func goodRestartDiscard(l *locks.OptLock, c *locks.Ctx) int {
	for {
		tok, ok := l.AcquireSh(c)
		if !ok {
			continue
		}
		if cond() {
			l.ReleaseSh(c, tok)
			continue
		}
		v := read()
		if l.ReleaseSh(c, tok) {
			return v
		}
	}
}

// goodAssignedFlag branches on a named validation result.
func goodAssignedFlag(l *locks.OptLock, c *locks.Ctx) int {
	tok, ok := l.AcquireSh(c)
	if !ok {
		return -1
	}
	v := read()
	valid := l.ReleaseSh(c, tok)
	if !valid {
		return -1
	}
	return v
}

// goodReturnedFlag hands the validation result to the caller.
func goodReturnedFlag(l *locks.OptLock, c *locks.Ctx, tok locks.Token) bool {
	return l.ReleaseSh(c, tok)
}

// goodUpgrade branches on the upgrade result.
func goodUpgrade(l *locks.OptLock, c *locks.Ctx) {
	tok, ok := l.AcquireSh(c)
	if !ok {
		return
	}
	if l.Upgrade(c, &tok) {
		l.ReleaseEx(c, tok)
	}
}

func badBareAcquire(l *locks.OptLock, c *locks.Ctx) {
	l.AcquireSh(c) // want "AcquireSh must be consumed as"
}

func badBlankFlag(l *locks.OptLock, c *locks.Ctx) locks.Token {
	tok, _ := l.AcquireSh(c) // want "admission flag is discarded"
	return tok
}

func badUnbranchedFlag(l *locks.OptLock, c *locks.Ctx) int {
	tok, ok := l.AcquireSh(c) // want "admission flag \"ok\" is never branched on"
	_ = ok
	v := read()
	if l.ReleaseSh(c, tok) {
		return v
	}
	return -1
}

// badDiscardThenReturn lets a value read under the token escape past
// a discarded validation.
func badDiscardThenReturn(l *locks.OptLock, c *locks.Ctx) int {
	tok, ok := l.AcquireSh(c)
	if !ok {
		return -1
	}
	v := read()
	l.ReleaseSh(c, tok) // want "validation result discarded outside a restart path"
	return v
}

func badDeferredRelease(l *locks.OptLock, c *locks.Ctx) int {
	tok, ok := l.AcquireSh(c)
	if !ok {
		return -1
	}
	defer l.ReleaseSh(c, tok) // want "deferred ReleaseSh discards the validation result"
	return read()
}

func badBlankReleaseFlag(l *locks.OptLock, c *locks.Ctx) int {
	tok, ok := l.AcquireSh(c)
	if !ok {
		return -1
	}
	v := read()
	_ = l.ReleaseSh(c, tok) // want "validation result assigned to blank"
	return v
}

func badUnbranchedReleaseFlag(l *locks.OptLock, c *locks.Ctx) int {
	tok, ok := l.AcquireSh(c)
	if !ok {
		return -1
	}
	v := read()
	valid := l.ReleaseSh(c, tok) // want "validation result \"valid\" is never branched on"
	_ = valid
	return v
}

func badUncheckedUpgrade(l *locks.OptLock, c *locks.Ctx) {
	tok, ok := l.AcquireSh(c)
	if !ok {
		return
	}
	l.Upgrade(c, &tok) // want "Upgrade result must be branched on"
	l.ReleaseEx(c, tok)
}
