// Package locks is a stub of the real internal/locks surface with the
// same package name and method signatures. The analyzers match
// primitives by package *name*, so calls against this stub take the
// identical code path as calls against the production package.
package locks

// Ctx mirrors the per-worker context.
type Ctx struct{ _ int }

// Token mirrors the opaque lock token.
type Token struct{ v uint64 }

// OptLock mirrors the optimistic lock word.
type OptLock struct{ w uint64 }

func (l *OptLock) AcquireSh(c *Ctx) (Token, bool) { return Token{v: l.w}, true }
func (l *OptLock) ReleaseSh(c *Ctx, t Token) bool { return t.v == l.w }
func (l *OptLock) AcquireEx(c *Ctx) Token         { return Token{v: l.w} }
func (l *OptLock) ReleaseEx(c *Ctx, t Token)      { _ = t }
func (l *OptLock) Upgrade(c *Ctx, t *Token) bool  { return t.v == l.w }
func (l *OptLock) CloseWindow(t Token)            { _ = t }
func (l *OptLock) BumpVersion()                   { l.w++ }

// Recycler mirrors the type-stable node recycler.
type Recycler struct{ slot any }

func (r *Recycler) Get(c *Ctx) any    { return r.slot }
func (r *Recycler) Put(c *Ctx, x any) { r.slot = x }

// BumpOnReuse mirrors the version-bump helper.
func BumpOnReuse(l any) {
	if b, ok := l.(interface{ BumpVersion() }); ok {
		b.BumpVersion()
	}
}
