// Package walorder verifies the durability ordering of the server's
// write path on the CFG: an index apply (Insert/Delete through the
// Index interface) in WAL-aware code must be dominated by a successful
// wal.Append on the batch — or be on the wal-disabled path or the
// recovery/replay path — and no operation may be completed (acked)
// after a successful Append unless the durability barrier is
// accounted for: an ack-batch is installed (group commit will ack on
// Commit), the error path is being unwound, or acks are not deferred
// by policy (off-policy fast path, where NoteApplied acks on apply).
//
// This mechanizes PR 8's ack-implies-durable argument: losing the
// append-before-apply order can make a crash lose acknowledged writes
// (apply visible, record not durable), and acking before the barrier
// under a deferring fsync policy returns success for writes the WAL
// has not yet made stable.
//
// Guard facts are path-sensitive flags joined by intersection (a
// guard must hold on every path into the event):
//
//	nilWAL    — the WAL is disabled (`e.wal == nil` edge)
//	appendOK  — a wal.Append happened and its error was checked
//	errPath   — unwinding a failed Append
//	offPolicy — the policy's DefersAcks selector was observed false
//	ackBatch  — an ack-batch is installed in the executor
//
// Function summaries (through the vetx facts) carry two bits: whether
// a function performs an apply that is not internally guarded, and
// whether it may complete operations — so `run()` calling the fully
// guarded `execBatch` is unconstrained, while a helper that applies
// unguarded imposes the append-dominance obligation on its callers.
package walorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"optiql/internal/analysis"
	"optiql/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "walorder",
	Doc: `check append-before-apply and ack-after-barrier ordering in the executor

Every index apply in WAL-aware code must be dominated by a successful
wal.Append for the batch (or the wal-disabled or replay path), and no
op completion may follow a successful append unless the group-commit
ack batch is installed, the error path is unwinding, or the fsync
policy does not defer acks.`,
	Collect: collect,
	Run:     run,
}

// Guard flags.
type guards uint8

const (
	gNilWAL guards = 1 << iota
	gAppendOK
	gErrPath
	gOffPolicy
	gAckBatch
)

// wstate is the dataflow state: must-hold guards plus the set of
// variables holding a wal.Append error not yet checked.
type wstate struct {
	g    guards
	errs map[string]bool
}

func newWstate() *wstate { return &wstate{errs: make(map[string]bool)} }

func (s *wstate) clone() *wstate {
	ns := &wstate{g: s.g, errs: make(map[string]bool, len(s.errs))}
	for k := range s.errs {
		ns.errs[k] = true
	}
	return ns
}

// wsummary is a function's interprocedural digest.
type wsummary struct {
	appliesUnguarded bool // has an apply not covered by its own guards
	mayComplete      bool // may complete (ack) operations
}

func (s wsummary) encode() string {
	return fmt.Sprintf("au=%t mc=%t", s.appliesUnguarded, s.mayComplete)
}

func decodeWsummary(v string) (wsummary, bool) {
	var s wsummary
	_, err := fmt.Sscanf(v, "au=%t mc=%t", &s.appliesUnguarded, &s.mayComplete)
	return s, err == nil
}

func collect(pass *analysis.Pass) {
	if pass.Pkg.Name() == "wal" {
		return
	}
	e := newWengine(pass, false)
	e.summarize()
	for key, sum := range e.sums {
		pass.Facts.Set("wo:"+key, sum.encode())
	}
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "wal" {
		return nil
	}
	e := newWengine(pass, true)
	e.summarize()
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			e.analyze(fd.Body, true)
			// Function literals (replay closures, combiner bodies) are
			// their own little CFGs.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					e.analyze(lit.Body, true)
					return false
				}
				return true
			})
		}
	}
	return nil
}

type wengine struct {
	pass   *analysis.Pass
	report bool
	sums   map[string]*wsummary
}

func newWengine(pass *analysis.Pass, report bool) *wengine {
	return &wengine{pass: pass, report: report, sums: make(map[string]*wsummary)}
}

func (e *wengine) summarize() {
	for round := 0; round < 3; round++ {
		changed := false
		for _, file := range e.pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				key := e.declKey(fd)
				sum := e.analyze(fd.Body, false)
				if old, ok := e.sums[key]; !ok || *old != *sum {
					e.sums[key] = sum
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

func (e *wengine) declKey(fd *ast.FuncDecl) string {
	recv := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		recv = recvName(fd.Recv.List[0].Type)
	}
	return e.pass.Pkg.Name() + "." + recv + "." + fd.Name.Name
}

func recvName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return recvName(t.X)
	case *ast.Ident:
		return t.Name
	}
	return ""
}

func (e *wengine) lookup(fn *types.Func) (wsummary, bool) {
	if fn == nil || fn.Pkg() == nil {
		return wsummary{}, false
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedType(sig.Recv().Type()); n != nil {
			recv = n.Obj().Name()
		}
	}
	key := fn.Pkg().Name() + "." + recv + "." + fn.Name()
	if s, ok := e.sums[key]; ok {
		return *s, true
	}
	if v, ok := e.pass.Facts.Get("wo:" + key); ok {
		return decodeWsummary(v)
	}
	return wsummary{}, false
}

func namedType(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// isWalType reports whether t involves a named type from the wal
// package.
func isWalType(t types.Type) bool {
	switch tt := t.(type) {
	case *types.Pointer:
		return isWalType(tt.Elem())
	case *types.Slice:
		return isWalType(tt.Elem())
	case *types.Named:
		return tt.Obj().Pkg() != nil && tt.Obj().Pkg().Name() == "wal"
	}
	return false
}

func isWalLog(t types.Type) bool {
	n := namedType(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "wal" && n.Obj().Name() == "Log"
}

// walAware reports whether a body touches the WAL subsystem at all:
// only such functions carry ordering obligations.
func (e *wengine) walAware(body *ast.BlockStmt) bool {
	aware := false
	ast.Inspect(body, func(n ast.Node) bool {
		if aware {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if t := e.pass.Info.TypeOf(n); t != nil && isWalType(t) {
				aware = true
			}
			if t := e.pass.Info.TypeOf(n.X); t != nil && isWalType(t) {
				aware = true
			}
		case *ast.CallExpr:
			if fn := analysis.CalleeFunc(e.pass.Info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "wal" {
				aware = true
			}
		}
		return true
	})
	return aware
}

type wfa struct {
	e     *wengine
	sum   *wsummary
	aware bool
	emit  bool
	seen  map[token.Pos]bool
}

// analyze runs the guard dataflow over one body, returning its
// summary; with report=true it also emits diagnostics (final pass).
func (e *wengine) analyze(body *ast.BlockStmt, report bool) *wsummary {
	a := &wfa{
		e:    e,
		sum:  &wsummary{},
		seen: make(map[token.Pos]bool),
	}
	a.aware = e.walAware(body)
	g := cfg.Build(body)
	in := cfg.Solve(g, &wproblem{a: a})
	if report && e.report {
		a.emit = true
		for _, blk := range g.Blocks {
			st, ok := in[blk]
			if !ok || !blk.Live {
				continue
			}
			s := st.(*wstate).clone()
			for _, n := range blk.Stmts {
				s = a.transfer(n, s)
			}
		}
	}
	return a.sum
}

type wproblem struct{ a *wfa }

func (p *wproblem) Entry() cfg.State { return newWstate() }

func (p *wproblem) Transfer(n ast.Node, s cfg.State) cfg.State {
	return p.a.transfer(n, s.(*wstate).clone())
}

func (p *wproblem) Branch(cond ast.Expr, truth bool, s cfg.State) cfg.State {
	ns := s.(*wstate).clone()
	p.a.refine(cond, truth, ns)
	return ns
}

func (p *wproblem) Join(x, y cfg.State) cfg.State {
	a, b := x.(*wstate), y.(*wstate)
	out := newWstate()
	out.g = a.g & b.g // a guard must hold on every path
	for k := range a.errs {
		if b.errs[k] {
			out.errs[k] = true
		}
	}
	return out
}

func (p *wproblem) Equal(x, y cfg.State) bool {
	a, b := x.(*wstate), y.(*wstate)
	if a.g != b.g || len(a.errs) != len(b.errs) {
		return false
	}
	for k := range a.errs {
		if !b.errs[k] {
			return false
		}
	}
	return true
}

func (a *wfa) flag(pos token.Pos, format string, args ...any) {
	if !a.emit || a.seen[pos] {
		return
	}
	a.seen[pos] = true
	a.e.pass.Reportf(pos, format, args...)
}

func (a *wfa) transfer(n ast.Node, s *wstate) *wstate {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.assign(n, s)
	case *ast.ExprStmt:
		a.call(n.X, s)
	case *ast.GoStmt:
		a.call(n.Call, s)
	case *ast.DeferStmt:
		// Lowered into the defer chain by the CFG builder.
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			a.call(r, s)
		}
	case ast.Expr:
		a.call(n, s)
	}
	return s
}

func (a *wfa) assign(n *ast.AssignStmt, s *wstate) {
	// seq, err := e.wal.Append(ops)
	if len(n.Rhs) == 1 {
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			a.call(call, s)
			if analysis.IsPkgFunc(a.e.pass.Info, call, "wal", "Append") {
				errIdx := len(n.Lhs) - 1
				if id, ok := n.Lhs[errIdx].(*ast.Ident); ok {
					if id.Name == "_" {
						s.g |= gAppendOK // error deliberately dropped
					} else {
						s.errs[id.Name] = true
					}
				}
				return
			}
		}
	}
	for _, rhs := range n.Rhs {
		a.call(rhs, s)
	}
	for i, lhs := range n.Lhs {
		// Installing/clearing the executor's ack batch.
		if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && sel.Sel.Name == "ack" {
			isNil := false
			if i < len(n.Rhs) {
				if id, ok := ast.Unparen(n.Rhs[i]).(*ast.Ident); ok && id.Name == "nil" {
					isNil = true
				}
			}
			if isNil {
				s.g &^= gAckBatch
			} else {
				s.g |= gAckBatch
			}
		}
		// Reassigning a tracked error variable kills it.
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			delete(s.errs, id.Name)
		}
	}
}

// call inspects an expression for apply/complete events, recursing
// through nested calls in arguments.
func (a *wfa) call(e ast.Expr, s *wstate) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	for _, arg := range call.Args {
		a.call(arg, s)
	}
	fn := analysis.CalleeFunc(a.e.pass.Info, call)
	if fn == nil {
		return
	}
	// Apply primitive: Insert/Delete through the Index interface.
	if (fn.Name() == "Insert" || fn.Name() == "Delete") && recvIsIndex(fn) {
		a.applyEvent(call, s)
		return
	}
	// Complete primitive: opDone (the per-op ack).
	if fn.Name() == "opDone" {
		a.completeEvent(call.Pos(), s)
		return
	}
	if sum, ok := a.e.lookup(fn); ok {
		if sum.appliesUnguarded {
			a.applyEvent(call, s)
		}
		if sum.mayComplete {
			a.completeEvent(call.Pos(), s)
		}
	}
}

func recvIsIndex(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := namedType(sig.Recv().Type())
	return n != nil && n.Obj().Name() == "Index"
}

// applyEvent: an index mutation happens here.
func (a *wfa) applyEvent(call *ast.CallExpr, s *wstate) {
	if replayArgs(a.e.pass.Info, call) {
		return // recovery replays from the durable log itself
	}
	if s.g&(gNilWAL|gAppendOK) != 0 {
		return
	}
	a.sum.appliesUnguarded = true
	if a.aware {
		a.flag(call.Pos(), "index apply is not dominated by a wal.Append for this batch (nor on the wal-disabled or replay path): a crash here loses an acknowledged write")
	}
}

// completeEvent: an operation is acked here.
func (a *wfa) completeEvent(pos token.Pos, s *wstate) {
	a.sum.mayComplete = true
	if !a.aware {
		return
	}
	if s.g&gAppendOK == 0 {
		return // nothing was appended on this path; no barrier due
	}
	if s.g&(gOffPolicy|gAckBatch|gErrPath) != 0 {
		return
	}
	a.flag(pos, "op completion after a successful wal.Append without the durability barrier: install the ack batch, unwind the error, or take the non-deferring policy path")
}

// replayArgs reports whether the apply draws from a wal.Op record —
// the recovery path, exempt by construction.
func replayArgs(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok || found {
				return !found
			}
			if t := info.TypeOf(e); t != nil {
				if n := namedType(t); n != nil && n.Obj().Pkg() != nil &&
					n.Obj().Pkg().Name() == "wal" && n.Obj().Name() == "Op" {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// refine applies guard transitions along conditional edges.
func (a *wfa) refine(cond ast.Expr, truth bool, s *wstate) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			a.refine(e.X, !truth, s)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if truth {
				a.refine(e.X, true, s)
				a.refine(e.Y, true, s)
			}
		case token.LOR:
			if !truth {
				a.refine(e.X, false, s)
				a.refine(e.Y, false, s)
			}
		case token.EQL, token.NEQ:
			a.refineCompare(e, truth, s)
		}
	case *ast.SelectorExpr:
		// Policy check: `e.srv.walDefersAcks` / `pol.DefersAcks`.
		if strings.Contains(e.Sel.Name, "efersAcks") && !truth {
			s.g |= gOffPolicy
		}
	case *ast.CallExpr:
		if fn := analysis.CalleeFunc(a.e.pass.Info, e); fn != nil &&
			strings.Contains(fn.Name(), "efersAcks") && !truth {
			s.g |= gOffPolicy
		}
	}
}

func (a *wfa) refineCompare(e *ast.BinaryExpr, truth bool, s *wstate) {
	x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
	nilSide := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if !nilSide(x) && !nilSide(y) {
		return
	}
	other := x
	if nilSide(x) {
		other = y
	}
	isNil := (e.Op == token.EQL) == truth
	// `e.wal == nil`: the wal-disabled path.
	if t := a.e.pass.Info.TypeOf(other); t != nil && isWalLog(t) {
		if isNil {
			s.g |= gNilWAL
		}
		return
	}
	// `err != nil` on a tracked Append error.
	if id, ok := other.(*ast.Ident); ok && s.errs[id.Name] {
		if isNil {
			s.g |= gAppendOK
		} else {
			s.g |= gErrPath
		}
	}
}
