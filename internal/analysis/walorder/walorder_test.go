package walorder_test

import (
	"testing"

	"optiql/internal/analysis/analysistest"
	"optiql/internal/analysis/walorder"
)

func TestWalorder(t *testing.T) {
	analysistest.RunPattern(t, "../testdata", "./walorder", walorder.Analyzer)
}
