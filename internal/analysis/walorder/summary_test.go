package walorder

import "testing"

// TestWsummaryRoundTrip pins the vetx fact encoding of the ordering
// summaries.
func TestWsummaryRoundTrip(t *testing.T) {
	for _, s := range []wsummary{
		{},
		{appliesUnguarded: true},
		{mayComplete: true},
		{appliesUnguarded: true, mayComplete: true},
	} {
		got, ok := decodeWsummary(s.encode())
		if !ok || got != s {
			t.Errorf("round-trip mismatch: %+v -> %+v (ok=%v)", s, got, ok)
		}
	}
	if _, ok := decodeWsummary("nonsense"); ok {
		t.Error("decoding nonsense must fail")
	}
}
