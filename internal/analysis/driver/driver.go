// Package driver runs the full optiqlvet suite over a module — the
// multichecker behind `go run ./cmd/optiqlvet ./...` and the `make
// lint` / CI entry point. Unlike the per-package `go vet -vettool`
// mode (see unitchecker), the driver sees the whole module at once,
// so two-phase analyzers (atomicmix, tornread, walorder) get
// module-wide facts and unused suppression directives can be
// reported.
//
// Phases: Collect runs sequentially over the targets in dependency
// order (the loader's single `go list -deps` preserves it), so the
// interprocedural analyzers see callee summaries before callers. Run
// phases only read facts, so packages run on a bounded worker pool;
// diagnostics are gathered per package and merged in package order,
// keeping output deterministic regardless of scheduling.
package driver

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"optiql/internal/analysis"
	"optiql/internal/analysis/atomicmix"
	"optiql/internal/analysis/expair"
	"optiql/internal/analysis/load"
	"optiql/internal/analysis/noalloc"
	"optiql/internal/analysis/padalign"
	"optiql/internal/analysis/recycle"
	"optiql/internal/analysis/shcheck"
	"optiql/internal/analysis/tornread"
	"optiql/internal/analysis/walorder"
)

// All returns the full suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		shcheck.Analyzer,
		expair.Analyzer,
		noalloc.Analyzer,
		atomicmix.Analyzer,
		padalign.Analyzer,
		recycle.Analyzer,
		tornread.Analyzer,
		walorder.Analyzer,
	}
}

// ByName resolves a comma-free analyzer name against the suite.
func ByName(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Report is one driver invocation's outcome.
type Report struct {
	Result      *load.Result
	Diagnostics []analysis.Diagnostic
}

// Options tune a driver invocation beyond the load configuration.
type Options struct {
	// Debug, when non-nil, receives per-analyzer cumulative wall time
	// after the run (the -debug flag).
	Debug io.Writer
	// Workers bounds Run-phase parallelism; <= 0 means GOMAXPROCS
	// capped at 8 (analysis is memory-bandwidth bound well before
	// that).
	Workers int
}

// Run loads the packages matched by cfg and applies the analyzers
// with default options.
func Run(cfg load.Config, analyzers []*analysis.Analyzer) (*Report, error) {
	return RunWith(cfg, analyzers, Options{})
}

// RunWith is Run with explicit Options.
func RunWith(cfg load.Config, analyzers []*analysis.Analyzer, opts Options) (*Report, error) {
	res, err := load.Load(cfg)
	if err != nil {
		return nil, err
	}
	facts := make(map[string]*analysis.FactSet, len(analyzers))
	timing := make(map[string]*atomic.Int64, len(analyzers))
	for _, a := range analyzers {
		facts[a.Name] = analysis.NewFactSet()
		timing[a.Name] = new(atomic.Int64)
	}

	// Collect: sequential, targets in dependency order.
	for _, pkg := range res.Targets {
		for _, a := range analyzers {
			if a.Collect == nil {
				continue
			}
			t0 := time.Now()
			pass := analysis.NewPass(a, res.Fset, pkg.Files, pkg.Types, pkg.Info, res.Sizes, facts[a.Name], nil)
			a.Collect(pass)
			timing[a.Name].Add(int64(time.Since(t0)))
		}
	}

	// Run: parallel per package, facts now read-only.
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	perPkg := make([][]analysis.Diagnostic, len(res.Targets))
	errs := make([]error, len(res.Targets))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, pkg := range res.Targets {
		wg.Add(1)
		go func(i int, pkg *load.Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			igs, diags := analysis.ParseIgnores(res.Fset, pkg.Files)
			for _, a := range analyzers {
				t0 := time.Now()
				pass := analysis.NewPass(a, res.Fset, pkg.Files, pkg.Types, pkg.Info, res.Sizes, facts[a.Name],
					func(d analysis.Diagnostic) { diags = append(diags, d) })
				if err := a.Run(pass); err != nil {
					errs[i] = fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
					return
				}
				timing[a.Name].Add(int64(time.Since(t0)))
			}
			perPkg[i] = analysis.FilterIgnored(res.Fset, igs, diags, true)
		}(i, pkg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var all []analysis.Diagnostic
	for _, diags := range perPkg {
		all = append(all, diags...)
	}
	analysis.SortDiagnostics(res.Fset, all)
	if opts.Debug != nil {
		printTiming(opts.Debug, analyzers, timing)
	}
	return &Report{Result: res, Diagnostics: all}, nil
}

func printTiming(w io.Writer, analyzers []*analysis.Analyzer, timing map[string]*atomic.Int64) {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.SliceStable(names, func(i, j int) bool {
		return timing[names[i]].Load() > timing[names[j]].Load()
	})
	fmt.Fprintf(w, "optiqlvet analyzer timing (collect+run, cpu-summed across workers):\n")
	for _, name := range names {
		fmt.Fprintf(w, "  %-10s %8.1fms\n", name, float64(timing[name].Load())/1e6)
	}
}

// Print writes type errors and diagnostics in vet format and reports
// whether the run found anything (the process exit condition).
func (r *Report) Print(w io.Writer) bool {
	for _, err := range r.Result.TypeErrors {
		fmt.Fprintf(w, "typecheck: %v\n", err)
	}
	for _, d := range r.Diagnostics {
		fmt.Fprintf(w, "%s: %s [%s]\n", r.Result.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return len(r.Result.TypeErrors) > 0 || len(r.Diagnostics) > 0
}
