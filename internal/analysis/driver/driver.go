// Package driver runs the full optiqlvet suite over a module — the
// multichecker behind `go run ./cmd/optiqlvet ./...` and the `make
// lint` / CI entry point. Unlike the per-package `go vet -vettool`
// mode (see unitchecker), the driver sees the whole module at once,
// so two-phase analyzers (atomicmix) get module-wide facts and unused
// suppression directives can be reported.
package driver

import (
	"fmt"
	"io"

	"optiql/internal/analysis"
	"optiql/internal/analysis/atomicmix"
	"optiql/internal/analysis/expair"
	"optiql/internal/analysis/load"
	"optiql/internal/analysis/noalloc"
	"optiql/internal/analysis/padalign"
	"optiql/internal/analysis/recycle"
	"optiql/internal/analysis/shcheck"
)

// All returns the full suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		shcheck.Analyzer,
		expair.Analyzer,
		noalloc.Analyzer,
		atomicmix.Analyzer,
		padalign.Analyzer,
		recycle.Analyzer,
	}
}

// ByName resolves a comma-free analyzer name against the suite.
func ByName(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Report is one driver invocation's outcome.
type Report struct {
	Result      *load.Result
	Diagnostics []analysis.Diagnostic
}

// Run loads the packages matched by cfg and applies the analyzers:
// first every Collect phase over every package (module-wide facts),
// then every Run phase, with suppression directives applied and
// unused directives reported.
func Run(cfg load.Config, analyzers []*analysis.Analyzer) (*Report, error) {
	res, err := load.Load(cfg)
	if err != nil {
		return nil, err
	}
	facts := make(map[string]*analysis.FactSet, len(analyzers))
	for _, a := range analyzers {
		facts[a.Name] = analysis.NewFactSet()
	}

	for _, a := range analyzers {
		if a.Collect == nil {
			continue
		}
		for _, pkg := range res.Targets {
			pass := analysis.NewPass(a, res.Fset, pkg.Files, pkg.Types, pkg.Info, res.Sizes, facts[a.Name], nil)
			a.Collect(pass)
		}
	}

	var all []analysis.Diagnostic
	for _, pkg := range res.Targets {
		igs, diags := analysis.ParseIgnores(res.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := analysis.NewPass(a, res.Fset, pkg.Files, pkg.Types, pkg.Info, res.Sizes, facts[a.Name],
				func(d analysis.Diagnostic) { diags = append(diags, d) })
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
		}
		all = append(all, analysis.FilterIgnored(res.Fset, igs, diags, true)...)
	}
	analysis.SortDiagnostics(res.Fset, all)
	return &Report{Result: res, Diagnostics: all}, nil
}

// Print writes type errors and diagnostics in vet format and reports
// whether the run found anything (the process exit condition).
func (r *Report) Print(w io.Writer) bool {
	for _, err := range r.Result.TypeErrors {
		fmt.Fprintf(w, "typecheck: %v\n", err)
	}
	for _, d := range r.Diagnostics {
		fmt.Fprintf(w, "%s: %s [%s]\n", r.Result.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return len(r.Result.TypeErrors) > 0 || len(r.Diagnostics) > 0
}
