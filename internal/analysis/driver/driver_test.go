package driver_test

import (
	"os"
	"path/filepath"
	"testing"

	"optiql/internal/analysis/driver"
	"optiql/internal/analysis/load"
)

// moduleRoot walks up from the working directory to the go.mod that
// declares the optiql module.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// TestModuleClean is the smoke test behind the CI analysis job: the
// full optiqlvet suite over the whole module (tests included) must
// produce zero diagnostics, zero unused suppression directives, and
// zero type errors. A failure here means a protocol or allocation
// invariant regressed — fix the code or add a justified
// //optiqlvet:ignore, never loosen the analyzer.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list over the whole module")
	}
	rep, err := driver.Run(load.Config{
		Dir:      moduleRoot(t),
		Patterns: []string{"./..."},
		Tests:    true,
	}, driver.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range rep.Result.TypeErrors {
		t.Errorf("typecheck: %v", terr)
	}
	for _, d := range rep.Diagnostics {
		t.Errorf("%s: %s [%s]", rep.Result.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
}

// TestByName pins the suite roster: every analyzer is resolvable by
// name and unknown names miss.
func TestByName(t *testing.T) {
	for _, want := range []string{"shcheck", "expair", "noalloc", "atomicmix", "padalign", "recycle"} {
		a := driver.ByName(want)
		if a == nil {
			t.Fatalf("ByName(%q) = nil", want)
		}
		if a.Name != want {
			t.Fatalf("ByName(%q).Name = %q", want, a.Name)
		}
	}
	if a := driver.ByName("nosuch"); a != nil {
		t.Fatalf("ByName(nosuch) = %v, want nil", a.Name)
	}
}
