package workload

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministicAndDistinct(t *testing.T) {
	a, b := NewRNG(1), NewRNG(1)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(2)
	same := 0
	a2 := NewRNG(1)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
	if NewRNG(0).Uint64() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}

func TestUniformBounds(t *testing.T) {
	u := NewUniform(1000)
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		if v := u.Next(r); v >= 1000 {
			t.Fatalf("uniform out of range: %d", v)
		}
	}
}

// TestSelfSimilarSkew verifies the 80/20 property: with h=0.2, about
// 80% of draws land in the first 20% of the key space, recursively.
func TestSelfSimilarSkew(t *testing.T) {
	const n = 1_000_000
	s := NewSelfSimilar(n, 0.2)
	r := NewRNG(4)
	const draws = 200000
	var in20, in4 int
	for i := 0; i < draws; i++ {
		v := s.Next(r)
		if v >= n {
			t.Fatalf("out of range: %d", v)
		}
		if v < n/5 {
			in20++
		}
		if v < n/25 {
			in4++
		}
	}
	frac20 := float64(in20) / draws
	if frac20 < 0.77 || frac20 > 0.83 {
		t.Fatalf("P(first 20%%) = %.3f, want ~0.80", frac20)
	}
	// Recursion: 64% of accesses in the first 4%.
	frac4 := float64(in4) / draws
	if frac4 < 0.60 || frac4 > 0.68 {
		t.Fatalf("P(first 4%%) = %.3f, want ~0.64", frac4)
	}
}

// TestSelfSimilarDenseHotSet mirrors the paper's claim that the first
// 256 keys of a dense 100M-key space receive ~16% of accesses.
func TestSelfSimilarDenseHotSet(t *testing.T) {
	const n = 100_000_000
	s := NewSelfSimilar(n, 0.2)
	r := NewRNG(5)
	const draws = 400000
	hot := 0
	for i := 0; i < draws; i++ {
		if s.Next(r) < 256 {
			hot++
		}
	}
	frac := float64(hot) / draws
	if frac < 0.12 || frac > 0.20 {
		t.Fatalf("P(first 256 keys) = %.3f, want ~0.16", frac)
	}
}

func TestZipfianBoundsAndSkew(t *testing.T) {
	z := NewZipfian(10000, 0.99)
	r := NewRNG(6)
	first := 0
	for i := 0; i < 50000; i++ {
		v := z.Next(r)
		if v >= 10000 {
			t.Fatalf("zipf out of range: %d", v)
		}
		if v < 100 {
			first++
		}
	}
	if frac := float64(first) / 50000; frac < 0.4 {
		t.Fatalf("zipf(0.99) not skewed: P(first 1%%) = %.3f", frac)
	}
}

// TestZipfianThetaSweep covers the skew parameter range and tiny key
// spaces: draws stay in range for every theta, and stronger theta means
// a hotter head.
func TestZipfianThetaSweep(t *testing.T) {
	const n, draws = 1000, 50000
	prevHead := 0
	for _, theta := range []float64{0.2, 0.5, 0.8, 0.99} {
		z := NewZipfian(n, theta)
		r := NewRNG(11)
		head := 0
		for i := 0; i < draws; i++ {
			v := z.Next(r)
			if v >= n {
				t.Fatalf("zipf(%g) out of range: %d", theta, v)
			}
			if v < n/100 {
				head++
			}
		}
		if head <= prevHead {
			t.Fatalf("zipf(%g) head mass %d not above previous theta's %d", theta, head, prevHead)
		}
		prevHead = head
	}
	// Degenerate key spaces must still stay in range and reach index 0.
	for _, small := range []uint64{1, 2, 3} {
		z := NewZipfian(small, 0.99)
		r := NewRNG(12)
		sawZero := false
		for i := 0; i < 1000; i++ {
			v := z.Next(r)
			if v >= small {
				t.Fatalf("zipf over %d keys drew %d", small, v)
			}
			if v == 0 {
				sawZero = true
			}
		}
		if !sawZero {
			t.Fatalf("zipf over %d keys never drew the hottest index", small)
		}
	}
}

// mix64Inverse inverts the splitmix64 finalizer: each xor-shift is
// undone by repeated shifting, each multiplication by the modular
// inverse of its constant (computed by Newton iteration: x *= 2 - a*x
// doubles the number of correct low bits each step).
func mix64Inverse(z uint64) uint64 {
	inv := func(a uint64) uint64 {
		x := a // correct to 3 bits (a odd)
		for i := 0; i < 5; i++ {
			x *= 2 - a*x
		}
		return x
	}
	// y = x ^ (x>>s) is undone by repeatedly folding with doubling
	// shift: y ^ (y>>s) = x ^ (x>>2s), and so on until the shift
	// leaves the word.
	unxorshift := func(z uint64, s uint) uint64 {
		for s < 64 {
			z ^= z >> s
			s *= 2
		}
		return z
	}
	z = unxorshift(z, 31)
	z *= inv(0x94D049BB133111EB)
	z = unxorshift(z, 27)
	z *= inv(0xBF58476D1CE4E5B9)
	z = unxorshift(z, 30)
	return z - 0x9E3779B97F4A7C15
}

// TestMix64Bijective proves mix64 is a bijection by exhibiting its
// inverse over random probes and boundary values.
func TestMix64Bijective(t *testing.T) {
	probes := []uint64{0, 1, 2, ^uint64(0), ^uint64(0) - 1, 1 << 63, 0x9E3779B97F4A7C15}
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		probes = append(probes, r.Uint64())
	}
	for _, x := range probes {
		if got := mix64Inverse(mix64(x)); got != x {
			t.Fatalf("mix64 not inverted at %#x: round trip %#x", x, got)
		}
	}
	// And the inverse is two-sided.
	for _, y := range probes[:100] {
		if got := mix64(mix64Inverse(y)); got != y {
			t.Fatalf("inverse not two-sided at %#x: %#x", y, got)
		}
	}
}

// TestSparseKeyBijectivity: KeySpace.Key over Sparse is injective by
// construction (idx+1 composed with the mix64 bijection); confirm the
// composition stays invertible end to end.
func TestSparseKeyBijectivity(t *testing.T) {
	for _, idx := range []uint64{0, 1, 41, 1 << 20, ^uint64(0) - 1} {
		k := Sparse.Key(idx)
		if mix64Inverse(k)-1 != idx {
			t.Fatalf("Sparse.Key(%d) = %#x does not invert", idx, k)
		}
	}
}

func TestKeySpaces(t *testing.T) {
	if Dense.Key(0) != 1 || Dense.Key(41) != 42 {
		t.Fatal("dense keys not consecutive from 1")
	}
	// Sparse keys must be a collision-free mapping (bijection property
	// spot check) and well spread across the byte space.
	seen := make(map[uint64]bool)
	var topBytes [256]int
	for i := uint64(0); i < 50000; i++ {
		k := Sparse.Key(i)
		if seen[k] {
			t.Fatalf("sparse collision at %d", i)
		}
		seen[k] = true
		topBytes[byte(k>>56)]++
	}
	nonzero := 0
	for _, c := range topBytes {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero < 250 {
		t.Fatalf("sparse keys cover only %d/256 top bytes", nonzero)
	}
	if Dense.String() != "dense" || Sparse.String() != "sparse" {
		t.Fatal("KeySpace names wrong")
	}
}

func TestMixValidateAndDraw(t *testing.T) {
	if err := (Mix{LookupPct: 50, UpdatePct: 50}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Mix{
		{LookupPct: 50},                   // sums to 50
		{LookupPct: 60, UpdatePct: 60},    // sums to 120
		{},                                // sums to 0
		{LookupPct: 200, UpdatePct: -100}, // negative part cancels to 100
		{LookupPct: 101, UpdatePct: -1},   // part above 100
		{LookupPct: 90, UpdatePct: 20, DeletePct: -10}, // negative part
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("invalid mix %v accepted", m)
		}
	}
	m := Mix{LookupPct: 80, UpdatePct: 20}
	r := NewRNG(7)
	counts := map[OpKind]int{}
	for i := 0; i < 100000; i++ {
		counts[m.Draw(r)]++
	}
	if frac := float64(counts[OpLookup]) / 100000; frac < 0.78 || frac > 0.82 {
		t.Fatalf("lookup fraction = %.3f, want ~0.80", frac)
	}
	if counts[OpInsert]+counts[OpDelete]+counts[OpScan] != 0 {
		t.Fatal("drew an operation with 0%")
	}
}

func TestMixByName(t *testing.T) {
	for _, name := range MixNames() {
		m, err := MixByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := MixByName("nope"); err == nil {
		t.Fatal("unknown mix accepted")
	}
	if UpdateOnly.Draw(NewRNG(8)) != OpUpdate {
		t.Fatal("update-only drew a non-update")
	}
}

func TestOpKindString(t *testing.T) {
	want := []string{"lookup", "update", "insert", "delete", "scan"}
	for i, w := range want {
		if OpKind(i).String() != w {
			t.Fatalf("OpKind(%d) = %q, want %q", i, OpKind(i), w)
		}
	}
}

// Property: distributions never leave their range.
func TestDistributionRangeProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := uint64(nRaw)%10000 + 1
		r := NewRNG(seed)
		u := NewUniform(n)
		s := NewSelfSimilar(n, 0.2)
		for i := 0; i < 50; i++ {
			if u.Next(r) >= n || s.Next(r) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
