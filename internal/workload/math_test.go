package workload

import (
	"math"
	"testing"
)

// TestPowfDifferential sweeps powf against math.Pow over the argument
// ranges the generators actually produce — bases in (0, 1] from
// Float64 and the rejection transform, integer bases from zeta, and
// the exponents reachable from skew factors and thetas — requiring
// 1e-9 relative agreement.
func TestPowfDifferential(t *testing.T) {
	relErr := func(got, want float64) float64 {
		if got == want {
			return 0
		}
		d := math.Abs(got - want)
		if want == 0 {
			return d
		}
		return d / math.Abs(want)
	}

	var exps []float64
	// Self-similar exponents across the legal skew range.
	for _, h := range []float64{0.05, 0.1, 0.2, 0.25, 0.4, 0.499} {
		exps = append(exps, math.Log(h)/math.Log(1-h))
	}
	// Zipfian exponents: theta, 1-theta, alpha = 1/(1-theta).
	for _, theta := range []float64{0.01, 0.5, 0.9, 0.99, 0.999} {
		exps = append(exps, theta, 1-theta, 1/(1-theta))
	}

	r := NewRNG(42)
	var bases []float64
	for i := 0; i < 2000; i++ {
		bases = append(bases, r.Float64())
	}
	// Edges of the unit interval and zeta's integer bases.
	bases = append(bases, 1e-300, 1e-12, 0.5, 1-1e-16, 1.0)
	for i := uint64(1); i <= 100; i++ {
		bases = append(bases, float64(i))
	}

	worst := 0.0
	for _, x := range bases {
		for _, y := range exps {
			got, want := powf(x, y), math.Pow(x, y)
			if e := relErr(got, want); e > worst {
				worst = e
			}
			if e := relErr(got, want); e > 1e-9 {
				t.Fatalf("powf(%g, %g) = %g, math.Pow = %g (rel err %g)", x, y, got, want, e)
			}
		}
	}
	t.Logf("worst relative error: %g", worst)

	// Outside the fast-path domain powf must be bit-identical to
	// math.Pow (the fallback).
	for _, c := range [][2]float64{
		{0, 2}, {0, 0}, {-1, 2}, {-2.5, 3}, {math.Inf(1), 2},
		{math.NaN(), 1}, {0, -1},
	} {
		got, want := powf(c[0], c[1]), math.Pow(c[0], c[1])
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("powf(%g, %g) = %g, want fallback math.Pow = %g", c[0], c[1], got, want)
		}
	}
}

// TestSelfSimilarChiSquared is a goodness-of-fit check of the drawn
// distribution against the analytic self-similar CDF
// P(idx < xN) = x^(1/exponent). A deterministic seed keeps the
// statistic reproducible; the threshold sits far above the χ²(15)
// 0.999 quantile (37.7) so only a real distortion — like a broken
// powf — trips it.
func TestSelfSimilarChiSquared(t *testing.T) {
	const (
		n       = 1 << 20
		buckets = 16
		draws   = 200000
	)
	s := NewSelfSimilar(n, 0.2)
	r := NewRNG(7)
	var obs [buckets]float64
	for i := 0; i < draws; i++ {
		idx := s.Next(r)
		b := int(idx * buckets / n)
		if b >= buckets {
			b = buckets - 1
		}
		obs[b]++
	}
	invExp := 1 / s.exponent
	cdf := func(x float64) float64 { return math.Pow(x, invExp) }
	chi2 := 0.0
	for b := 0; b < buckets; b++ {
		p := cdf(float64(b+1)/buckets) - cdf(float64(b)/buckets)
		exp := p * draws
		chi2 += (obs[b] - exp) * (obs[b] - exp) / exp
	}
	if chi2 > 60 {
		t.Fatalf("self-similar χ² = %.1f over %d buckets (threshold 60): distribution shape is off", chi2, buckets)
	}
	t.Logf("self-similar χ² = %.2f (df %d)", chi2, buckets-1)
}

// TestZipfianChiSquared checks the head ranks of the Zipf draw against
// their exact probabilities p_i = i^-θ / ζ(N, θ), with the tail pooled
// into one bucket. Expected values are computed with math.Pow directly
// so the test stays independent of powf.
func TestZipfianChiSquared(t *testing.T) {
	const (
		n     = 100000
		head  = 8
		draws = 200000
		theta = 0.99
	)
	z := NewZipfian(n, theta)
	r := NewRNG(11)
	var obs [head + 1]float64
	for i := 0; i < draws; i++ {
		idx := z.Next(r)
		if idx < head {
			obs[idx]++
		} else {
			obs[head]++
		}
	}
	zetan := 0.0
	for i := uint64(1); i <= n; i++ {
		zetan += 1 / math.Pow(float64(i), theta)
	}
	chi2 := 0.0
	tailP := 1.0
	for i := 0; i < head; i++ {
		p := 1 / math.Pow(float64(i+1), theta) / zetan
		tailP -= p
		exp := p * draws
		chi2 += (obs[i] - exp) * (obs[i] - exp) / exp
	}
	expTail := tailP * draws
	chi2 += (obs[head] - expTail) * (obs[head] - expTail) / expTail
	// The YCSB rejection-free transform is itself an approximation of
	// the discrete Zipf CDF: its continuous inverse over-weights ranks
	// 2..7, measuring χ² ≈ 373 at this seed/draw count with math.Pow
	// and powf alike (verified identical). The threshold pins that
	// inherent level — a distorted powf moves the statistic by orders
	// of magnitude, a faithful one does not move it at all.
	if chi2 > 500 {
		t.Fatalf("zipfian χ² = %.1f over %d head ranks (threshold 500): distribution shape is off", chi2, head)
	}
	// The two exact special-cased ranks must fit tightly on their own
	// (χ²(2) 0.999 is 13.8).
	chiHead := 0.0
	for i := 0; i < 2; i++ {
		p := 1 / math.Pow(float64(i+1), theta) / zetan
		exp := p * draws
		chiHead += (obs[i] - exp) * (obs[i] - exp) / exp
	}
	if chiHead > 20 {
		t.Fatalf("zipfian rank-0/1 χ² = %.1f (threshold 20): the exact head cases are off", chiHead)
	}
	t.Logf("zipfian χ² = %.2f (df %d), head χ² = %.2f", chi2, head, chiHead)
}

func BenchmarkPowf(b *testing.B) {
	s := NewSelfSimilar(1<<20, 0.2)
	r := NewRNG(3)
	b.Run("fastpath", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			acc += powf(r.Float64(), s.exponent)
		}
		_ = acc
	})
	b.Run("mathpow", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			acc += math.Pow(r.Float64(), s.exponent)
		}
		_ = acc
	})
}
