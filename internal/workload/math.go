package workload

import "math"

// Thin wrappers keep the generator code close to the pseudocode of
// Gray et al. [17].
func logf(x float64) float64    { return math.Log(x) }
func powf(x, y float64) float64 { return math.Pow(x, y) }
