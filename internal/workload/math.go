package workload

import "math"

// Thin wrappers keep the generator code close to the pseudocode of
// Gray et al. [17].
func logf(x float64) float64 { return math.Log(x) }

// powf is x**y on the generator hot path: every skewed draw pays for
// one (SelfSimilar.Next, Zipfian.Next), and math.Pow's IEEE
// special-case dispatch made it the single largest non-index cost in
// the macro benchmarks. For the strictly positive finite arguments the
// distributions produce, exp2(y·log2 x) is the same value at a
// fraction of the cost: the ~1 ulp error on log2 amplifies to about
// |y·log2 x|·2⁻⁵² relative — far inside the 1e-9 budget the
// differential test enforces over the generators' argument ranges.
// Anything outside that domain (zero, negatives, +Inf, NaN) falls
// back to math.Pow for full special-case semantics.
func powf(x, y float64) float64 {
	if x > 0 && !math.IsInf(x, 1) {
		return math.Exp2(y * math.Log2(x))
	}
	return math.Pow(x, y)
}
