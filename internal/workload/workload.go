// Package workload provides the key distributions, key spaces and
// operation mixes used by the paper's evaluation (Section 7.1): uniform
// random and self-similar [17] key selection (the skewed experiments
// use a self-similar distribution with skew factor 0.2, i.e. 80% of
// accesses target 20% of the keys), dense and sparse integer key
// spaces, and read/write operation mixes.
package workload

import "fmt"

// RNG is a per-worker xorshift64* pseudo-random generator: tiny, fast,
// allocation-free, and independent across workers.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator; seed 0 is mapped to a fixed non-zero value.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint64n returns a value in [0, n).
func (r *RNG) Uint64n(n uint64) uint64 {
	return r.Uint64() % n
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Distribution selects record indices in [0, N).
type Distribution interface {
	// Next draws the next record index using the worker's RNG.
	Next(r *RNG) uint64
	// Name identifies the distribution in reports.
	Name() string
}

// Uniform draws indices uniformly at random.
type Uniform struct {
	N uint64
}

// NewUniform creates a uniform distribution over [0, n).
func NewUniform(n uint64) Uniform { return Uniform{N: n} }

// Next implements Distribution.
func (u Uniform) Next(r *RNG) uint64 { return r.Uint64n(u.N) }

// Name implements Distribution.
func (u Uniform) Name() string { return "uniform" }

// SelfSimilar implements the self-similar distribution of Gray et
// al. [17]: with skew factor h, a fraction (1-h) of accesses hit the
// first h*N records, recursively. h = 0.2 gives the paper's "80% of
// accesses on 20% of keys".
type SelfSimilar struct {
	N uint64
	// exponent = log(h) / log(1-h), precomputed.
	exponent float64
	h        float64
}

// NewSelfSimilar creates a self-similar distribution over [0, n) with
// skew factor h in (0, 0.5].
func NewSelfSimilar(n uint64, h float64) SelfSimilar {
	if h <= 0 || h >= 1 {
		panic(fmt.Sprintf("workload: invalid skew factor %v", h))
	}
	return SelfSimilar{N: n, h: h, exponent: logf(h) / logf(1-h)}
}

// Next implements Distribution.
func (s SelfSimilar) Next(r *RNG) uint64 {
	idx := uint64(float64(s.N) * powf(r.Float64(), s.exponent))
	if idx >= s.N {
		idx = s.N - 1
	}
	return idx
}

// Name implements Distribution.
func (s SelfSimilar) Name() string { return fmt.Sprintf("selfsimilar(%.2g)", s.h) }

// Zipfian draws indices from a Zipf distribution with parameter theta,
// using the YCSB/Gray rejection-free approximation.
type Zipfian struct {
	N     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

// NewZipfian creates a Zipf distribution over [0, n) with parameter
// theta in (0, 1).
func NewZipfian(n uint64, theta float64) Zipfian {
	z := Zipfian{N: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - powf(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / powf(float64(i), theta)
	}
	return sum
}

// Next implements Distribution.
func (z Zipfian) Next(r *RNG) uint64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+powf(0.5, z.theta) {
		return 1
	}
	idx := uint64(float64(z.N) * powf(z.eta*u-z.eta+1, z.alpha))
	if idx >= z.N {
		idx = z.N - 1
	}
	return idx
}

// Name implements Distribution.
func (z Zipfian) Name() string { return fmt.Sprintf("zipf(%.2g)", z.theta) }

// KeySpace maps record indices to 8-byte keys.
type KeySpace uint8

const (
	// Dense keys are consecutive integers starting at 1, the layout the
	// paper uses to maximize lock stress (Section 7.3).
	Dense KeySpace = iota
	// Sparse keys are well-distributed 64-bit integers (splitmix64 of
	// the index), forcing lazy expansion in ART (Section 7.6).
	Sparse
)

// Key maps a record index to its key.
func (ks KeySpace) Key(idx uint64) uint64 {
	switch ks {
	case Dense:
		return idx + 1
	default:
		return mix64(idx + 1)
	}
}

// String implements fmt.Stringer.
func (ks KeySpace) String() string {
	if ks == Dense {
		return "dense"
	}
	return "sparse"
}

// mix64 is the splitmix64 finalizer, a bijection on uint64.
func mix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// OpKind is an index operation type.
type OpKind uint8

// Operation kinds drawn by Mix.
const (
	OpLookup OpKind = iota
	OpUpdate
	OpInsert
	OpDelete
	OpScan
	numOps
)

// String implements fmt.Stringer.
func (o OpKind) String() string {
	switch o {
	case OpLookup:
		return "lookup"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	}
	return "?"
}

// Mix is an operation mix in percent; the parts must sum to 100.
type Mix struct {
	LookupPct, UpdatePct, InsertPct, DeletePct, ScanPct int
}

// Validate checks the percentages: each part must be in [0, 100] and
// together they must sum to exactly 100 (negative parts could cancel
// out to a "valid" sum while making Draw nonsense).
func (m Mix) Validate() error {
	for _, p := range []int{m.LookupPct, m.UpdatePct, m.InsertPct, m.DeletePct, m.ScanPct} {
		if p < 0 || p > 100 {
			return fmt.Errorf("workload: mix part %d%% out of range [0, 100]", p)
		}
	}
	sum := m.LookupPct + m.UpdatePct + m.InsertPct + m.DeletePct + m.ScanPct
	if sum != 100 {
		return fmt.Errorf("workload: mix sums to %d%%, want 100%%", sum)
	}
	return nil
}

// Draw picks the next operation kind.
func (m Mix) Draw(r *RNG) OpKind {
	p := int(r.Uint64n(100))
	p -= m.LookupPct
	if p < 0 {
		return OpLookup
	}
	p -= m.UpdatePct
	if p < 0 {
		return OpUpdate
	}
	p -= m.InsertPct
	if p < 0 {
		return OpInsert
	}
	p -= m.DeletePct
	if p < 0 {
		return OpDelete
	}
	return OpScan
}

// String implements fmt.Stringer.
func (m Mix) String() string {
	return fmt.Sprintf("%d/%d/%d/%d/%d", m.LookupPct, m.UpdatePct, m.InsertPct, m.DeletePct, m.ScanPct)
}

// Named workload mixes of Section 7.3, plus ScanHeavy: a mix whose
// scans hold pessimistic shared locks across whole leaves, the regime
// that actually builds reader queues (and therefore batch grants) —
// point lookups release nodes too fast for waiters to pile up.
var (
	ReadOnly   = Mix{LookupPct: 100}
	ReadHeavy  = Mix{LookupPct: 80, UpdatePct: 20}
	Balanced   = Mix{LookupPct: 50, UpdatePct: 50}
	WriteHeavy = Mix{LookupPct: 20, UpdatePct: 80}
	UpdateOnly = Mix{UpdatePct: 100}
	ScanHeavy  = Mix{LookupPct: 30, UpdatePct: 30, ScanPct: 40}
)

// MixByName resolves the Section 7.3 workload names.
func MixByName(name string) (Mix, error) {
	switch name {
	case "read-only":
		return ReadOnly, nil
	case "read-heavy":
		return ReadHeavy, nil
	case "balanced":
		return Balanced, nil
	case "write-heavy":
		return WriteHeavy, nil
	case "update-only":
		return UpdateOnly, nil
	case "scan-heavy":
		return ScanHeavy, nil
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q", name)
}

// MixNames lists the Section 7.3 workloads in figure order; scan-heavy
// is resolvable by name but deliberately excluded so the paper's
// figure sweeps keep their original mix set.
func MixNames() []string {
	return []string{"read-only", "read-heavy", "balanced", "write-heavy", "update-only"}
}
