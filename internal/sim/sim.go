// Package sim is a deterministic discrete-event simulator of the
// paper's lock protocols on a multicore cache-coherence cost model.
//
// The host running this reproduction may have fewer cores than the
// paper's 40-core testbed; under timeslicing, centralized CAS locks
// never actually contend (the lock is almost always free when its
// holder's goroutine runs) and queue locks pay scheduler costs instead
// of cache-miss costs — inverting every contention-related shape in
// Figures 6-8 and Table 1. Per the reproduction's substitution policy
// (DESIGN.md), this package simulates the missing hardware: each
// simulated thread runs on its own core, and every protocol action is
// charged a cycle cost from a MESI-style model in which
//
//   - reading a line you already share costs an L1 hit,
//   - fetching a line another core modified costs a remote miss,
//   - an atomic read-modify-write must gain exclusive ownership,
//     paying the remote fetch plus an invalidation cost that grows
//     with the number of current sharers — the coherence storm that
//     collapses centralized locks under contention,
//   - spinning on an unchanged shared line is free until the line is
//     invalidated (test-and-test-and-set semantics): spinners block
//     and are woken when a writer invalidates the line.
//
// The protocols themselves are implemented faithfully at the level the
// costs depend on: TTS and OptLock retry CAS on the shared word;
// MCS/OptiQL enqueue with one XCHG and then spin on a private line;
// OptiQL's release opens the opportunistic read window (one FETCH_OR),
// and the granted successor closes it (one FETCH_AND), exactly the two
// extra atomics Section 5.4 discusses. Readers never write shared
// memory and validate against their snapshot.
//
// Everything is deterministic given Config.Seed, so simulation results
// are testable and the regenerated figures are stable.
package sim

import "fmt"

// Cycle costs of the coherence model. The absolute values are
// representative of a two-socket Xeon (L1 ~1ns, cross-core transfer
// ~20-40ns at 3GHz); the figures' shapes depend only on their ratios.
const (
	costL1Hit      = 2  // read of a valid local line
	costRemoteMiss = 40 // fetch of a line modified/held elsewhere
	costAtomic     = 20 // RMW execution once ownership is held
	costInvalidate = 4  // per-sharer invalidation on ownership grab
	costCSCycle    = 2  // one critical-section "increment"
	backoffMinCyc  = 64 // truncated exponential backoff bounds
	backoffMaxCyc  = 8192
)

// Config parameterizes one simulated run.
type Config struct {
	// Scheme is one of TTS, OptLock, OptLock-Backoff, MCS, OptiQL,
	// OptiQL-NOR.
	Scheme string
	// Threads simulated, each pinned to its own core.
	Threads int
	// Locks contended on (uniform random pick); 0 = one per thread.
	Locks int
	// ReadPct is the percentage of read operations (0-100).
	ReadPct int
	// CSLen is the critical-section length in "increments" (paper: 50).
	CSLen int
	// Cycles is the simulated duration (default 2,000,000).
	Cycles uint64
	// Split dedicates ReadPct percent of threads to pure reads.
	Split bool
	// Seed makes runs reproducible.
	Seed uint64

	// Index enables index-operation mode: every operation first pays a
	// tree traversal (TraverseCycles), and — crucially — every retry
	// pays it again. Centralized optimistic writers then behave like
	// OLC updaters (upgrade the leaf lock; on failure re-traverse from
	// the root), while the OptiQL variants block directly on the leaf
	// lock after a single traversal, per the adapted protocol of
	// Section 6.1. Locks play the role of leaves.
	Index bool
	// TraverseCycles is the per-traversal cost (default 120, modelling
	// a three-level descent of mostly cache-resident inner nodes).
	TraverseCycles uint64
	// Skew draws the target lock from a self-similar distribution with
	// this factor instead of uniformly (0 = uniform). Models the
	// paper's skewed key selection over leaves.
	Skew float64
}

func (c *Config) normalize() error {
	switch c.Scheme {
	case "TTS", "OptLock", "OptLock-Backoff", "MCS", "OptiQL", "OptiQL-NOR", "MCS-RW":
	default:
		return fmt.Errorf("sim: unknown scheme %q", c.Scheme)
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.CSLen == 0 {
		c.CSLen = 50
	}
	if c.Cycles == 0 {
		c.Cycles = 2_000_000
	}
	if c.ReadPct < 0 || c.ReadPct > 100 {
		return fmt.Errorf("sim: ReadPct %d out of range", c.ReadPct)
	}
	if c.ReadPct > 0 && (c.Scheme == "TTS" || c.Scheme == "MCS") {
		return fmt.Errorf("sim: scheme %s cannot run reads", c.Scheme)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Index && c.TraverseCycles == 0 {
		c.TraverseCycles = 120
	}
	if c.Skew < 0 || c.Skew >= 1 {
		return fmt.Errorf("sim: skew %v out of range [0, 1)", c.Skew)
	}
	return nil
}

// Result aggregates a simulated run.
type Result struct {
	Config       Config
	Ops          uint64
	Writes       uint64
	Reads        uint64
	ReadAttempts uint64
	PerThreadOps []uint64
	Cycles       uint64
}

// Throughput returns completed operations per thousand simulated
// cycles — the unit the regenerated figures report. (At a nominal
// 3 GHz, 1 op/kcycle = 3 Mops.)
func (r Result) Throughput() float64 {
	return float64(r.Ops) / float64(r.Cycles) * 1000
}

// ReadSuccessRate returns validated reads over read attempts.
func (r Result) ReadSuccessRate() float64 {
	if r.ReadAttempts == 0 {
		return 0
	}
	return float64(r.Reads) / float64(r.ReadAttempts)
}

// FairnessRatio returns busiest/least-busy thread completed ops.
func (r Result) FairnessRatio() float64 {
	if len(r.PerThreadOps) == 0 {
		return 0
	}
	lo, hi := r.PerThreadOps[0], r.PerThreadOps[0]
	for _, n := range r.PerThreadOps[1:] {
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if lo == 0 {
		return 0
	}
	return float64(hi) / float64(lo)
}

// line models one cacheline under a simplified MESI protocol.
type line struct {
	excl     int // owning core in M state, or -1
	sharers  map[int]struct{}
	watchers []int // threads blocked until the line changes
}

func newLine() *line {
	return &line{excl: -1, sharers: make(map[int]struct{})}
}

// read charges t for loading the line and updates sharer state.
func (l *line) read(t int) uint64 {
	if l.excl == t {
		return costL1Hit
	}
	if _, ok := l.sharers[t]; ok && l.excl == -1 {
		return costL1Hit
	}
	// Remote fetch; a modified copy elsewhere is downgraded to shared.
	if l.excl >= 0 {
		l.sharers[l.excl] = struct{}{}
		l.excl = -1
	}
	l.sharers[t] = struct{}{}
	return costRemoteMiss
}

// rmw charges t for an atomic read-modify-write: exclusive ownership
// plus per-sharer invalidation.
func (l *line) rmw(t int) uint64 {
	if l.excl == t {
		return costL1Hit + costAtomic
	}
	cost := uint64(costRemoteMiss + costAtomic)
	for s := range l.sharers {
		if s != t {
			cost += costInvalidate
		}
	}
	if l.excl >= 0 && l.excl != t {
		cost += costInvalidate
	}
	l.excl = t
	l.sharers = map[int]struct{}{t: {}}
	return cost
}

// simLock is one simulated lock: its 8-byte word (as decomposed
// protocol state), the cacheline it lives on, the line of the data it
// protects, and the writer queue for the queue-based schemes.
type simLock struct {
	wordLine *line
	dataLine *line

	version uint64
	locked  bool
	window  bool // opportunistic read window open

	holder int   // thread holding exclusively, -1 if none
	queue  []int // waiting writers, FIFO (MCS/OptiQL)

	// MCS-RW state: active reader group size, writer-held flag, and
	// the mixed FIFO queue of readers and writers.
	activeReaders int
	writerActive  bool
	rwQueue       []rwWaiter
}

// snapshot encodes the lock word for reader validation.
func (l *simLock) snapshot() uint64 {
	s := l.version << 2
	if l.locked {
		s |= 1
	}
	if l.window {
		s |= 2
	}
	return s
}

func newSimLock() *simLock {
	return &simLock{wordLine: newLine(), dataLine: newLine(), holder: -1}
}
