package sim

// Simulated MCS-RW: the fair queue-based reader-writer lock. Readers
// and writers join one FIFO queue; a maximal run of consecutive
// readers holds the lock together. Unlike the optimistic schemes,
// readers must RMW the lock word to enter and leave (the reader-count
// update), which is exactly the cost the paper blames for MCS-RW's
// poor read-side scaling; in exchange reads never fail validation.

// rwWaiter is a queued requester.
type rwWaiter struct {
	tid    int
	reader bool
}

// Additional per-lock state lives on simLock (activeReaders,
// writerActive, rwQueue); the phases below extend the engine.

const (
	phRWShAcq  phase = 100 + iota // reader: RMW the word to enter
	phRWShBody                    // reader: woken by grant; run the read body
	phRWShRel                     // reader: RMW the word to leave
)

func (e *engine) isMCSRW() bool { return e.cfg.Scheme == "MCS-RW" }

// rwStep dispatches the MCS-RW-specific phases; returns false if the
// phase is not one of them.
func (e *engine) rwStep(t *thread) bool {
	switch t.ph {
	case phRWShAcq:
		e.rwReaderAcquire(t)
	case phRWShBody:
		e.rwReaderBody(t, costRemoteMiss) // grant read from granter's line
	case phRWShRel:
		e.rwReaderRelease(t)
	default:
		return false
	}
	return true
}

func (e *engine) rwReaderAcquire(t *thread) {
	l := e.locks[t.lockIdx]
	t.attempts++
	cost := l.wordLine.rmw(t.id) // swap/inc on the word: readers write shared memory
	if !l.writerActive && len(l.rwQueue) == 0 {
		l.activeReaders++
		e.rwReaderBodyAt(t, cost)
		return
	}
	// Queue behind the current holder group; link to the predecessor's
	// private line, then spin locally.
	cost += e.predQnodeLink(l, t)
	l.rwQueue = append(l.rwQueue, rwWaiter{tid: t.id, reader: true})
	_ = cost
}

// predQnodeLink charges the store that links a waiter behind the
// queue's current tail.
func (e *engine) predQnodeLink(l *simLock, t *thread) uint64 {
	pred := l.holder
	if n := len(l.rwQueue); n > 0 {
		pred = l.rwQueue[n-1].tid
	}
	if pred < 0 {
		return 0
	}
	return e.threads[pred].qnodeLine.rmw(t.id)
}

func (e *engine) rwReaderBody(t *thread, lead uint64) {
	e.rwReaderBodyAt(t, lead)
}

func (e *engine) rwReaderBodyAt(t *thread, lead uint64) {
	l := e.locks[t.lockIdx]
	cost := lead + l.dataLine.read(t.id) + uint64(e.cfg.CSLen)*costCSCycle
	t.ph = phRWShRel
	e.schedule(t.id, e.now+cost)
}

func (e *engine) rwReaderRelease(t *thread) {
	l := e.locks[t.lockIdx]
	cost := l.wordLine.rmw(t.id) // reader-count decrement
	l.activeReaders--
	if l.activeReaders == 0 {
		cost += e.rwGrantNext(l)
	}
	t.reads++
	t.ops++
	t.ph = phIdle
	e.schedule(t.id, e.now+cost)
}

// rwWriterAcquire is called from writerTry when the scheme is MCS-RW.
func (e *engine) rwWriterAcquire(t *thread) {
	l := e.locks[t.lockIdx]
	cost := l.wordLine.rmw(t.id)
	if !l.writerActive && l.activeReaders == 0 && len(l.rwQueue) == 0 {
		l.writerActive = true
		l.holder = t.id
		e.enterCS(t, l, cost)
		return
	}
	cost += e.predQnodeLink(l, t)
	l.rwQueue = append(l.rwQueue, rwWaiter{tid: t.id, reader: false})
	_ = cost
}

// rwWriterRelease is called from writerRelease when the scheme is
// MCS-RW.
func (e *engine) rwWriterRelease(t *thread) {
	l := e.locks[t.lockIdx]
	cost := l.wordLine.rmw(t.id)
	l.writerActive = false
	l.holder = -1
	cost += e.rwGrantNext(l)
	t.writes++
	t.ops++
	t.ph = phIdle
	e.schedule(t.id, e.now+cost)
}

// rwGrantNext hands the lock to the head of the queue: one writer, or
// a maximal run of consecutive readers. Returns the granter's cost of
// writing each waiter's private line.
func (e *engine) rwGrantNext(l *simLock) uint64 {
	if len(l.rwQueue) == 0 {
		return 0
	}
	var cost uint64
	if !l.rwQueue[0].reader {
		w := l.rwQueue[0]
		l.rwQueue = l.rwQueue[1:]
		l.writerActive = true
		l.holder = w.tid
		cost += e.threads[w.tid].qnodeLine.rmw(l.holderOrSelf())
		e.threads[w.tid].ph = phWGranted
		e.schedule(w.tid, e.now+cost+costRemoteMiss)
		return cost
	}
	for len(l.rwQueue) > 0 && l.rwQueue[0].reader {
		w := l.rwQueue[0]
		l.rwQueue = l.rwQueue[1:]
		l.activeReaders++
		cost += e.threads[w.tid].qnodeLine.rmw(l.holderOrSelf())
		e.threads[w.tid].ph = phRWShBody
		e.schedule(w.tid, e.now+cost)
	}
	return cost
}

// holderOrSelf attributes grant-write cacheline ownership; the exact
// core does not matter for the cost model, only that the waiter's line
// is invalidated.
func (l *simLock) holderOrSelf() int {
	if l.holder >= 0 {
		return l.holder
	}
	return 0
}
