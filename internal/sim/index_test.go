package sim

import "testing"

// TestIndexModeFig9Shape asserts the index-level robustness result
// (Figures 1b/9): under a skewed update-only workload over many
// leaves, OptLock loses throughput as threads grow (upgrade-retry
// re-traversals) while OptiQL plateaus; and with a balanced mix the
// opportunistic window keeps OptiQL ahead of OptiQL-NOR.
func TestIndexModeFig9Shape(t *testing.T) {
	run := func(scheme string, threads, readPct int) Result {
		return mustRun(t, Config{
			Scheme: scheme, Threads: threads, Locks: 4096, ReadPct: readPct,
			Index: true, Skew: 0.2, Cycles: 4_000_000,
		})
	}
	// Update-only: collapse vs plateau.
	ol1, ol80 := run("OptLock", 1, 0).Throughput(), run("OptLock", 80, 0).Throughput()
	oq8, oq80 := run("OptiQL", 8, 0).Throughput(), run("OptiQL", 80, 0).Throughput()
	t.Logf("update-only: OptLock 1thr=%.2f 80thr=%.2f; OptiQL 8thr=%.2f 80thr=%.2f",
		ol1, ol80, oq8, oq80)
	if oq80 < oq8/2 {
		t.Errorf("OptiQL collapsed at index level: %.2f -> %.2f", oq8, oq80)
	}
	if oq80 < ol80 {
		t.Errorf("OptiQL (%.2f) below OptLock (%.2f) at 80 threads under skew", oq80, ol80)
	}
	// Balanced: opportunistic read pays at the index level.
	or := run("OptiQL", 80, 50)
	nor := run("OptiQL-NOR", 80, 50)
	t.Logf("balanced 80thr: OptiQL %.2f vs OptiQL-NOR %.2f ops/kcyc", or.Throughput(), nor.Throughput())
	if or.Throughput() <= nor.Throughput() {
		t.Errorf("opportunistic read did not help balanced index workload: %.2f vs %.2f",
			or.Throughput(), nor.Throughput())
	}
}
