package sim

import (
	"testing"
	"testing/quick"
)

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Scheme: "nope"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := Run(Config{Scheme: "TTS", ReadPct: 10}); err == nil {
		t.Fatal("reads on TTS accepted")
	}
	if _, err := Run(Config{Scheme: "OptiQL", ReadPct: 200}); err == nil {
		t.Fatal("bad ReadPct accepted")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Scheme: "OptiQL", Threads: 16, Locks: 1, ReadPct: 50, Seed: 7}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.Ops != b.Ops || a.Reads != b.Reads || a.ReadAttempts != b.ReadAttempts {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	cfg.Seed = 8
	c := mustRun(t, cfg)
	if c.Ops == a.Ops && c.Reads == a.Reads {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestSingleThreadAllSchemes(t *testing.T) {
	for _, scheme := range []string{"TTS", "OptLock", "OptLock-Backoff", "MCS", "OptiQL", "OptiQL-NOR"} {
		r := mustRun(t, Config{Scheme: scheme, Threads: 1, Locks: 1})
		if r.Ops == 0 || r.Writes != r.Ops {
			t.Fatalf("%s single-thread: %+v", scheme, r)
		}
	}
}

// TestCentralizedCollapse asserts Figure 6's core shape: under extreme
// contention, centralized locks lose most of their throughput as
// threads grow, while queue-based locks plateau.
func TestCentralizedCollapse(t *testing.T) {
	tp := func(scheme string, threads int) float64 {
		return mustRun(t, Config{Scheme: scheme, Threads: threads, Locks: 1}).Throughput()
	}
	for _, scheme := range []string{"TTS", "OptLock"} {
		t1, t40 := tp(scheme, 1), tp(scheme, 40)
		if t40 > t1/2 {
			t.Errorf("%s did not collapse: 1thr=%.2f 40thr=%.2f ops/kcyc", scheme, t1, t40)
		}
	}
	for _, scheme := range []string{"MCS", "OptiQL", "OptiQL-NOR"} {
		t8, t40 := tp(scheme, 8), tp(scheme, 40)
		if t40 < t8/2 {
			t.Errorf("%s collapsed: 8thr=%.2f 40thr=%.2f ops/kcyc", scheme, t8, t40)
		}
	}
	// And the paper's Fig 6 ordering at high thread counts: queue-based
	// beats centralized under extreme contention.
	if tp("OptiQL", 40) < tp("OptLock", 40) {
		t.Errorf("OptiQL (%.2f) below OptLock (%.2f) at 40 threads / extreme contention",
			tp("OptiQL", 40), tp("OptLock", 40))
	}
}

// TestNoContentionScalesForAll asserts the right-most Figure 6 panel:
// with per-thread locks everyone scales roughly linearly.
func TestNoContentionScalesForAll(t *testing.T) {
	for _, scheme := range []string{"TTS", "OptLock", "MCS", "OptiQL"} {
		t1 := mustRun(t, Config{Scheme: scheme, Threads: 1, Locks: 0}).Throughput()
		t32 := mustRun(t, Config{Scheme: scheme, Threads: 32, Locks: 0}).Throughput()
		if t32 < 20*t1 {
			t.Errorf("%s does not scale uncontended: 1thr=%.2f 32thr=%.2f", scheme, t1, t32)
		}
	}
}

// TestTable1ReaderStarvation asserts the opportunistic-read contrast:
// with a standing writer queue, OptiQL admits far more readers than
// OptiQL-NOR.
func TestTable1ReaderStarvation(t *testing.T) {
	run := func(scheme string) Result {
		return mustRun(t, Config{
			Scheme: scheme, Threads: 40, Locks: 5, ReadPct: 50, Split: true,
			Cycles: 4_000_000,
		})
	}
	nor := run("OptiQL-NOR")
	or := run("OptiQL")
	t.Logf("reader success: NOR %.2f%% (%d reads), OptiQL %.2f%% (%d reads)",
		nor.ReadSuccessRate()*100, nor.Reads, or.ReadSuccessRate()*100, or.Reads)
	if or.ReadSuccessRate() < 4*nor.ReadSuccessRate() {
		t.Errorf("opportunistic read gap too small: NOR %.4f vs OptiQL %.4f",
			nor.ReadSuccessRate(), or.ReadSuccessRate())
	}
	if or.Reads < 4*nor.Reads {
		t.Errorf("OptiQL should complete many times more reads: %d vs %d", or.Reads, nor.Reads)
	}
}

// TestBackoffUnfairness asserts the Section 1.1 claim: backoff rescues
// throughput but skews per-thread acquisition counts, while FIFO queue
// locks stay fair.
func TestBackoffUnfairness(t *testing.T) {
	cfgFor := func(scheme string) Config {
		return Config{Scheme: scheme, Threads: 40, Locks: 1, Cycles: 4_000_000}
	}
	bo := mustRun(t, cfgFor("OptLock-Backoff"))
	mcs := mustRun(t, cfgFor("MCS"))
	oq := mustRun(t, cfgFor("OptiQL"))
	t.Logf("fairness ratio: backoff %.2fx, MCS %.2fx, OptiQL %.2fx",
		bo.FairnessRatio(), mcs.FairnessRatio(), oq.FairnessRatio())
	if mcs.FairnessRatio() > 1.6 || oq.FairnessRatio() > 1.6 {
		t.Errorf("queue locks should be near-fair: MCS %.2fx OptiQL %.2fx",
			mcs.FairnessRatio(), oq.FairnessRatio())
	}
	if bo.FairnessRatio() < 1.5*oq.FairnessRatio() {
		t.Errorf("backoff should be clearly less fair: %.2fx vs OptiQL %.2fx",
			bo.FairnessRatio(), oq.FairnessRatio())
	}
	// And backoff outperforms plain OptLock under extreme contention.
	ol := mustRun(t, cfgFor("OptLock"))
	if bo.Throughput() < ol.Throughput() {
		t.Errorf("backoff (%.2f) below plain OptLock (%.2f)", bo.Throughput(), ol.Throughput())
	}
}

// TestOpportunisticReadCostVisible asserts Section 5.4's tradeoff: in a
// pure-write workload the two extra atomics make OptiQL slightly
// slower than OptiQL-NOR under contention.
func TestOpportunisticReadCostVisible(t *testing.T) {
	or := mustRun(t, Config{Scheme: "OptiQL", Threads: 40, Locks: 5}).Throughput()
	nor := mustRun(t, Config{Scheme: "OptiQL-NOR", Threads: 40, Locks: 5}).Throughput()
	t.Logf("update-only: OptiQL %.2f vs OptiQL-NOR %.2f ops/kcyc", or, nor)
	if or > nor {
		t.Errorf("OptiQL (%.2f) should not beat NOR (%.2f) on pure writes", or, nor)
	}
	if or < nor/2 {
		t.Errorf("opportunistic-read overhead too large: %.2f vs %.2f", or, nor)
	}
}

// TestShortCSBenefitsOpportunisticRead asserts the Figure 8 trend:
// opportunistic read helps read-mostly workloads most with short
// critical sections.
func TestShortCSBenefitsOpportunisticRead(t *testing.T) {
	gap := func(cs int) float64 {
		or := mustRun(t, Config{Scheme: "OptiQL", Threads: 40, Locks: 5, ReadPct: 80, CSLen: cs, Split: true, Cycles: 4_000_000})
		nor := mustRun(t, Config{Scheme: "OptiQL-NOR", Threads: 40, Locks: 5, ReadPct: 80, CSLen: cs, Split: true, Cycles: 4_000_000})
		return float64(or.Reads+1) / float64(nor.Reads+1)
	}
	short, long := gap(5), gap(200)
	t.Logf("reads(OptiQL)/reads(NOR): CS=5 %.2fx, CS=200 %.2fx", short, long)
	if short <= 1 {
		t.Errorf("opportunistic read should win at short CS: %.2fx", short)
	}
	if long > short {
		t.Errorf("benefit should shrink with CS length: CS5=%.2fx CS200=%.2fx", short, long)
	}
}

// TestMixedRatioTrends checks Figure 7's medium-contention panel:
// optimistic locks gain throughput as the read share rises.
func TestMixedRatioTrends(t *testing.T) {
	tp := func(scheme string, readPct int) float64 {
		return mustRun(t, Config{
			Scheme: scheme, Threads: 40, Locks: 30000, ReadPct: readPct,
		}).Throughput()
	}
	for _, scheme := range []string{"OptLock", "OptiQL"} {
		w := tp(scheme, 0)
		r := tp(scheme, 90)
		if r < w {
			t.Errorf("%s: 90%% reads (%.2f) slower than pure writes (%.2f) at medium contention", scheme, r, w)
		}
	}
}

// TestAccounting sanity-checks counters.
func TestAccounting(t *testing.T) {
	r := mustRun(t, Config{Scheme: "OptiQL", Threads: 8, Locks: 5, ReadPct: 50})
	if r.Reads+r.Writes != r.Ops {
		t.Fatalf("reads %d + writes %d != ops %d", r.Reads, r.Writes, r.Ops)
	}
	if r.ReadAttempts < r.Reads {
		t.Fatalf("attempts %d < reads %d", r.ReadAttempts, r.Reads)
	}
	if len(r.PerThreadOps) != 8 {
		t.Fatalf("per-thread ops length %d", len(r.PerThreadOps))
	}
	var sum uint64
	for _, n := range r.PerThreadOps {
		sum += n
	}
	if sum != r.Ops {
		t.Fatalf("per-thread sum %d != ops %d", sum, r.Ops)
	}
}

// Property: the simulator terminates and counts sanely for arbitrary
// small configurations.
func TestQuickConfigs(t *testing.T) {
	schemes := []string{"TTS", "OptLock", "OptLock-Backoff", "MCS", "OptiQL", "OptiQL-NOR"}
	f := func(seed uint64, th, lk, rp uint8) bool {
		scheme := schemes[int(seed%uint64(len(schemes)))]
		readPct := int(rp) % 101
		if scheme == "TTS" || scheme == "MCS" {
			readPct = 0
		}
		r, err := Run(Config{
			Scheme:  scheme,
			Threads: int(th)%16 + 1,
			Locks:   int(lk) % 4, // includes 0 = per-thread
			ReadPct: readPct,
			Cycles:  200_000,
			Seed:    seed,
		})
		if err != nil {
			return false
		}
		return r.Reads+r.Writes == r.Ops && r.ReadAttempts >= r.Reads
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMCSRWSimulated checks the fair RW lock's simulated behaviour
// matches the paper: robust under write contention (no collapse),
// readers always complete (pessimistic), but read-heavy throughput
// trails the optimistic locks because readers pay atomics.
func TestMCSRWSimulated(t *testing.T) {
	// No collapse under extreme write contention.
	t8 := mustRun(t, Config{Scheme: "MCS-RW", Threads: 8, Locks: 1}).Throughput()
	t40 := mustRun(t, Config{Scheme: "MCS-RW", Threads: 40, Locks: 1}).Throughput()
	if t40 < t8/2 {
		t.Errorf("MCS-RW collapsed: 8thr=%.2f 40thr=%.2f", t8, t40)
	}
	// Pessimistic readers: every attempt completes, except those still
	// in flight (at most one per thread) when the cycle budget ends.
	r := mustRun(t, Config{Scheme: "MCS-RW", Threads: 40, Locks: 5, ReadPct: 80})
	if r.ReadAttempts-r.Reads > uint64(r.Config.Threads) {
		t.Errorf("pessimistic reads failed: %d attempts, %d reads", r.ReadAttempts, r.Reads)
	}
	if r.Reads == 0 || r.Writes == 0 {
		t.Fatalf("degenerate mix: %+v", r)
	}
	// Read-heavy, low contention: optimistic OptiQL must beat MCS-RW
	// (readers that write shared memory cannot scale reads).
	rw := mustRun(t, Config{Scheme: "MCS-RW", Threads: 40, Locks: 1000000, ReadPct: 90}).Throughput()
	oq := mustRun(t, Config{Scheme: "OptiQL", Threads: 40, Locks: 1000000, ReadPct: 90}).Throughput()
	t.Logf("read-heavy low contention: MCS-RW %.2f vs OptiQL %.2f ops/kcyc", rw, oq)
	if oq <= rw {
		t.Errorf("OptiQL (%.2f) should beat MCS-RW (%.2f) on read-heavy workloads", oq, rw)
	}
}
