package sim

import (
	"container/heap"
	"math"
)

// phase is a simulated thread's protocol program counter.
type phase uint8

const (
	phIdle      phase = iota // pick the next operation
	phWTry                   // writer: read the word (centralized) / XCHG (queued)
	phWCAS                   // centralized writer: attempt the CAS seen-free
	phWGranted               // queued writer: woken by handover
	phWRelease               // writer: release protocol
	phRTry                   // reader: snapshot the word
	phRValidate              // reader: validate after the read body
)

type thread struct {
	id        int
	ph        phase
	reader    bool // split-mode dedicated reader
	lockIdx   int
	snapshot  uint64
	backoff   uint64
	rng       uint64
	qnodeLine *line

	ops, reads, writes, attempts uint64
}

func (t *thread) rand() uint64 {
	x := t.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	t.rng = x
	return x * 0x2545F4914F6CDD1D
}

// event heap: (time, seq for determinism, thread).
type event struct {
	at  uint64
	seq uint64
	tid int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

type engine struct {
	cfg     Config
	locks   []*simLock
	threads []thread
	heap    eventHeap
	seq     uint64
	now     uint64

	// epochs[i] counts modifications of lock i's word; it is what
	// reader snapshots validate against (bit-identical word check).
	epochs []uint64

	queued bool // MCS / OptiQL family
	optiql bool // OptiQL / OptiQL-NOR (word-carried window + versions)
	window bool // opportunistic read enabled (OptiQL, not NOR)

	// skewExp is the self-similar exponent when cfg.Skew > 0.
	skewExp float64
}

// Run executes one simulation.
func Run(cfg Config) (Result, error) {
	if err := cfg.normalize(); err != nil {
		return Result{}, err
	}
	nLocks := cfg.Locks
	perThread := nLocks == 0
	if perThread {
		nLocks = cfg.Threads
	}
	e := &engine{cfg: cfg}
	e.queued = cfg.Scheme == "MCS" || cfg.Scheme == "OptiQL" || cfg.Scheme == "OptiQL-NOR"
	e.optiql = cfg.Scheme == "OptiQL" || cfg.Scheme == "OptiQL-NOR"
	e.window = cfg.Scheme == "OptiQL"
	if cfg.Skew > 0 {
		e.skewExp = math.Log(cfg.Skew) / math.Log(1-cfg.Skew)
	}
	e.locks = make([]*simLock, nLocks)
	e.epochs = make([]uint64, nLocks)
	for i := range e.locks {
		e.locks[i] = newSimLock()
	}
	e.threads = make([]thread, cfg.Threads)
	for i := range e.threads {
		t := &e.threads[i]
		t.id = i
		t.rng = cfg.Seed*0x9E3779B97F4A7C15 + uint64(i+1)*0xBF58476D1CE4E5B9
		if t.rng == 0 {
			t.rng = 1
		}
		t.qnodeLine = newLine()
		t.qnodeLine.excl = i // starts cached locally
		t.reader = cfg.Split && i < cfg.Threads*cfg.ReadPct/100
		if perThread {
			t.lockIdx = i
		}
		e.schedule(i, 0)
	}
	for len(e.heap) > 0 {
		ev := heap.Pop(&e.heap).(event)
		if ev.at >= cfg.Cycles {
			continue
		}
		e.now = ev.at
		e.step(&e.threads[ev.tid])
	}
	res := Result{Config: cfg, Cycles: cfg.Cycles}
	for i := range e.threads {
		t := &e.threads[i]
		res.Ops += t.ops
		res.Writes += t.writes
		res.Reads += t.reads
		res.ReadAttempts += t.attempts
		res.PerThreadOps = append(res.PerThreadOps, t.ops)
	}
	return res, nil
}

func (e *engine) schedule(tid int, at uint64) {
	e.seq++
	heap.Push(&e.heap, event{at: at, seq: e.seq, tid: tid})
}

// wakeWatchers reschedules every thread blocked on the word line.
func (e *engine) wakeWatchers(l *simLock) {
	for _, tid := range l.wordLine.watchers {
		e.schedule(tid, e.now+1)
	}
	l.wordLine.watchers = l.wordLine.watchers[:0]
}

// touchWord records a modification of the lock word: epoch bump (for
// reader validation) and watcher wakeup (their cached copies are
// invalid).
func (e *engine) touchWord(idx int) {
	e.epochs[idx]++
	e.wakeWatchers(e.locks[idx])
}

// step advances one thread by one protocol action.
func (e *engine) step(t *thread) {
	if e.rwStep(t) {
		return
	}
	switch t.ph {
	case phIdle:
		e.pickOp(t)
	case phWTry:
		e.writerTry(t)
	case phWCAS:
		e.writerCAS(t)
	case phWGranted:
		e.writerGranted(t)
	case phWRelease:
		e.writerRelease(t)
	case phRTry:
		e.readerTry(t)
	case phRValidate:
		e.readerValidate(t)
	}
}

func (e *engine) pickOp(t *thread) {
	if e.cfg.Locks != 0 {
		if e.skewExp != 0 {
			u := float64(t.rand()>>11) / (1 << 53)
			idx := int(float64(len(e.locks)) * math.Pow(u, e.skewExp))
			if idx >= len(e.locks) {
				idx = len(e.locks) - 1
			}
			t.lockIdx = idx
		} else {
			t.lockIdx = int(t.rand() % uint64(len(e.locks)))
		}
	}
	isRead := int(t.rand()%100) < e.cfg.ReadPct
	if e.cfg.Split {
		isRead = t.reader
	}
	t.backoff = backoffMinCyc
	switch {
	case isRead && e.isMCSRW():
		t.ph = phRWShAcq
	case isRead:
		t.ph = phRTry
	default:
		t.ph = phWTry
	}
	e.schedule(t.id, e.now+1+e.cfg.TraverseCycles)
}

// --- writer side -----------------------------------------------------

func (e *engine) writerTry(t *thread) {
	if e.isMCSRW() {
		e.rwWriterAcquire(t)
		return
	}
	l := e.locks[t.lockIdx]
	if e.queued {
		// XCHG: join the queue in one atomic on the word. This also
		// clears the opportunistic-read bit if it was set.
		cost := l.wordLine.rmw(t.id)
		l.window = false
		e.touchWord(t.lockIdx)
		if l.holder == -1 && len(l.queue) == 0 {
			l.holder = t.id
			l.locked = true
			e.enterCS(t, l, cost)
			return
		}
		// Link behind the predecessor: one store to its private qnode
		// line, then spin locally (blocked until granted).
		pred := l.holder
		if n := len(l.queue); n > 0 {
			pred = l.queue[n-1]
		}
		cost += e.threads[pred].qnodeLine.rmw(t.id)
		_ = cost // the wait ends at the grant, not at link completion
		l.queue = append(l.queue, t.id)
		return // blocked; the releasing holder schedules us
	}
	// Centralized: test (read), then test-and-set (CAS) if seen free.
	cost := l.wordLine.read(t.id)
	if l.locked {
		if e.cfg.Index {
			// OLC updater: the upgrade failed, so restart the whole
			// operation — re-traverse from the root, then retry.
			e.schedule(t.id, e.now+cost+e.cfg.TraverseCycles)
			return
		}
		if e.cfg.Scheme == "OptLock-Backoff" {
			// Back off instead of camping on the line.
			delay := t.rand() % t.backoff
			if t.backoff < backoffMaxCyc {
				t.backoff <<= 1
			}
			e.schedule(t.id, e.now+cost+delay)
			return
		}
		// Spin on the shared copy: free until invalidated.
		l.wordLine.watchers = append(l.wordLine.watchers, t.id)
		return
	}
	t.ph = phWCAS
	e.schedule(t.id, e.now+cost)
}

func (e *engine) writerCAS(t *thread) {
	l := e.locks[t.lockIdx]
	// The CAS pulls the line exclusive whether it succeeds or not —
	// this is the coherence storm that collapses centralized locks.
	cost := l.wordLine.rmw(t.id)
	if l.locked {
		// Lost the race: retry from the test phase (re-traversing
		// first in index mode — the OLC restart).
		t.ph = phWTry
		e.schedule(t.id, e.now+cost+e.cfg.TraverseCycles)
		return
	}
	l.locked = true
	l.holder = t.id
	e.touchWord(t.lockIdx)
	e.enterCS(t, l, cost)
}

// enterCS charges the critical-section body and schedules the release.
func (e *engine) enterCS(t *thread, l *simLock, cost uint64) {
	cost += l.dataLine.rmw(t.id)
	cost += uint64(e.cfg.CSLen) * costCSCycle
	t.ph = phWRelease
	e.schedule(t.id, e.now+cost)
}

func (e *engine) writerGranted(t *thread) {
	l := e.locks[t.lockIdx]
	var cost uint64 = costRemoteMiss // read the grant from the predecessor's line
	if e.optiql {
		// FETCH_AND: close the opportunistic window, clear version bits.
		cost += l.wordLine.rmw(t.id)
		l.window = false
		e.touchWord(t.lockIdx)
	}
	e.enterCS(t, l, cost)
}

func (e *engine) writerRelease(t *thread) {
	if e.isMCSRW() {
		e.rwWriterRelease(t)
		return
	}
	l := e.locks[t.lockIdx]
	var cost uint64
	if !e.queued {
		// Store the new version with the lock bit clear.
		cost = l.wordLine.rmw(t.id)
		l.locked = false
		l.holder = -1
		l.version++
		e.touchWord(t.lockIdx)
	} else if len(l.queue) == 0 {
		// CAS the word back to unlocked-with-version.
		cost = l.wordLine.rmw(t.id)
		l.locked = false
		l.holder = -1
		l.version++
		e.touchWord(t.lockIdx)
	} else {
		if e.window {
			// FETCH_OR: open the opportunistic read window.
			cost = l.wordLine.rmw(t.id)
			l.window = true
			l.version++
			e.touchWord(t.lockIdx)
		} else {
			l.version++
		}
		// Hand over: write the successor's private line; it wakes
		// after the transfer latency.
		succ := l.queue[0]
		l.queue = l.queue[1:]
		l.holder = succ
		cost += e.threads[succ].qnodeLine.rmw(t.id)
		e.threads[succ].ph = phWGranted
		e.schedule(succ, e.now+cost+costRemoteMiss)
	}
	t.writes++
	t.ops++
	t.ph = phIdle
	e.schedule(t.id, e.now+cost)
}

// --- reader side ------------------------------------------------------

func (e *engine) readerTry(t *thread) {
	l := e.locks[t.lockIdx]
	t.attempts++
	cost := l.wordLine.read(t.id)
	if l.locked && !l.window {
		if e.cfg.Index {
			// OLC lookup restart: re-traverse, then try again.
			e.schedule(t.id, e.now+cost+e.cfg.TraverseCycles)
			return
		}
		// Not admitted: spin on the shared copy until it changes.
		l.wordLine.watchers = append(l.wordLine.watchers, t.id)
		return
	}
	t.snapshot = e.epochs[t.lockIdx]
	cost += l.dataLine.read(t.id)
	cost += uint64(e.cfg.CSLen) * costCSCycle
	t.ph = phRValidate
	e.schedule(t.id, e.now+cost)
}

func (e *engine) readerValidate(t *thread) {
	l := e.locks[t.lockIdx]
	cost := l.wordLine.read(t.id)
	if e.epochs[t.lockIdx] == t.snapshot {
		t.reads++
		t.ops++
		t.ph = phIdle
	} else {
		t.ph = phRTry
		cost += e.cfg.TraverseCycles // OLC restart re-descends (index mode; 0 otherwise)
	}
	e.schedule(t.id, e.now+cost)
}
