// Package experiments regenerates every table and figure of the
// OptiQL paper's evaluation (Section 7). Each function prints the same
// rows/series the paper reports, as plain text tables; the cmd/ tools
// are thin wrappers around them.
//
// Scale knobs (thread counts, run duration, repetitions, record
// counts) default to laptop/CI-friendly values; pass the paper's
// values (80 threads, 10-second runs, 20 repetitions, 100M records) to
// reproduce at full scale on suitable hardware. See DESIGN.md for the
// environment substitutions and EXPERIMENTS.md for measured results.
package experiments

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"optiql/internal/bench"
	"optiql/internal/hist"
	"optiql/internal/workload"
)

// Options control experiment scale.
type Options struct {
	// Threads is the sweep used by throughput-vs-threads figures.
	Threads []int
	// MaxThreads is the fixed thread count for single-point figures
	// (Figures 7, 8, 11 and Table 1).
	MaxThreads int
	// Duration per measured run.
	Duration time.Duration
	// Runs per configuration; results are reported as mean ± 95% CI.
	Runs int
	// Records preloaded into indexes.
	Records int
	// SimCycles is the simulated duration for the sim* experiments
	// (default 2,000,000 cycles).
	SimCycles uint64
	// Out receives the report (default os.Stdout).
	Out io.Writer
}

func (o Options) filled() Options {
	if len(o.Threads) == 0 {
		o.Threads = []int{1, 2, 4, 8}
	}
	if o.MaxThreads == 0 {
		o.MaxThreads = o.Threads[len(o.Threads)-1]
	}
	if o.Duration == 0 {
		o.Duration = 500 * time.Millisecond
	}
	if o.Runs == 0 {
		o.Runs = 3
	}
	if o.Records == 0 {
		o.Records = 200_000
	}
	if o.SimCycles == 0 {
		o.SimCycles = 2_000_000
	}
	if o.Out == nil {
		o.Out = os.Stdout
	}
	return o
}

func header(w io.Writer, title, detail string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	if detail != "" {
		fmt.Fprintf(w, "%s\n", detail)
	}
}

// microCell runs one microbenchmark point Runs times and renders
// "mean±ci" Mops.
func microCell(o Options, cfg bench.MicroConfig) (string, error) {
	mean, ci, err := bench.Repeat(o.Runs, func() (float64, error) {
		r, err := bench.RunMicro(cfg)
		if err != nil {
			return 0, err
		}
		return r.Mops(), nil
	})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%.2f±%.2f", mean, ci), nil
}

// indexCell measures one index benchmark point against a preloaded
// index, Runs times.
func indexCell(o Options, cfg bench.IndexConfig) (string, error) {
	idx, pool, err := bench.BuildIndex(&cfg)
	if err != nil {
		return "", err
	}
	mean, ci, err := bench.Repeat(o.Runs, func() (float64, error) {
		r, err := bench.MeasureIndex(cfg, idx, pool)
		if err != nil {
			return 0, err
		}
		return r.Mops(), nil
	})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%.2f±%.2f", mean, ci), nil
}

// Fig1 reproduces Figure 1: B+-tree update-only throughput under low
// (uniform) and high (self-similar 0.2) contention, centralized
// optimistic lock vs OptiQL, across the thread sweep.
func Fig1(o Options) error {
	o = o.filled()
	header(o.Out, "Figure 1: B+-tree update throughput, OptLock vs OptiQL",
		fmt.Sprintf("update-only, dense keys, %d records; Mops (mean±95%%CI)", o.Records))
	for _, panel := range []struct {
		name, dist string
	}{
		{"(a) Low contention (uniform)", "uniform"},
		{"(b) High contention (self-similar 0.2)", "selfsimilar"},
	} {
		fmt.Fprintf(o.Out, "-- %s --\n", panel.name)
		tw := tabwriter.NewWriter(o.Out, 4, 4, 2, ' ', 0)
		fmt.Fprint(tw, "threads")
		for _, s := range []string{"OptLock", "OptiQL"} {
			fmt.Fprintf(tw, "\t%s", s)
		}
		fmt.Fprintln(tw)
		for _, th := range o.Threads {
			fmt.Fprintf(tw, "%d", th)
			for _, scheme := range []string{"OptLock", "OptiQL"} {
				cell, err := indexCell(o, bench.IndexConfig{
					Index: "btree", Scheme: scheme, Threads: th,
					Records: o.Records, Distribution: panel.dist,
					KeySpace: workload.Dense, Mix: workload.UpdateOnly,
					Duration: o.Duration,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "\t%s", cell)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	return nil
}

// Fig6 reproduces Figure 6: exclusive-lock microbenchmark throughput
// under the five contention levels for all seven lock variants.
func Fig6(o Options) error {
	o = o.filled()
	header(o.Out, "Figure 6: exclusive lock throughput by contention level",
		"pure-write microbenchmark, CS=50 increments; Mops (mean±95%CI)")
	schemes := []string{"OptLock", "OptiQL-NOR", "OptiQL", "pthread", "MCS-RW", "TTS", "MCS"}
	for _, level := range bench.ContentionLevels() {
		fmt.Fprintf(o.Out, "-- %s contention (%d locks) --\n", level.Name, level.Locks)
		tw := tabwriter.NewWriter(o.Out, 4, 4, 2, ' ', 0)
		fmt.Fprint(tw, "threads")
		for _, s := range schemes {
			fmt.Fprintf(tw, "\t%s", s)
		}
		fmt.Fprintln(tw)
		for _, th := range o.Threads {
			fmt.Fprintf(tw, "%d", th)
			for _, scheme := range schemes {
				cell, err := microCell(o, bench.MicroConfig{
					Scheme: scheme, Threads: th, Locks: level.Locks,
					Duration: o.Duration,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "\t%s", cell)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	return nil
}

// Fig7 reproduces Figure 7: microbenchmark throughput across read/write
// ratios at four contention levels, max threads, for the five
// reader-capable locks.
func Fig7(o Options) error {
	o = o.filled()
	header(o.Out, "Figure 7: lock throughput by read/write ratio",
		fmt.Sprintf("%d threads; Mops (mean±95%%CI)", o.MaxThreads))
	ratios := []int{0, 20, 50, 80, 90}
	schemes := []string{"OptLock", "OptiQL-NOR", "OptiQL", "pthread", "MCS-RW"}
	for _, level := range bench.ContentionLevels()[:4] { // extreme..low
		fmt.Fprintf(o.Out, "-- %s contention (%d locks) --\n", level.Name, level.Locks)
		tw := tabwriter.NewWriter(o.Out, 4, 4, 2, ' ', 0)
		fmt.Fprint(tw, "read/write")
		for _, s := range schemes {
			fmt.Fprintf(tw, "\t%s", s)
		}
		fmt.Fprintln(tw)
		for _, rp := range ratios {
			fmt.Fprintf(tw, "%d/%d", rp, 100-rp)
			for _, scheme := range schemes {
				cell, err := microCell(o, bench.MicroConfig{
					Scheme: scheme, Threads: o.MaxThreads, Locks: level.Locks,
					ReadPct: rp, Duration: o.Duration,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "\t%s", cell)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	return nil
}

// Table1 reproduces Table 1: reader success rate of OptiQL-NOR vs
// OptiQL under high contention across read/write ratios. Threads are
// split into dedicated readers and writers so the writer queue stands
// (see EXPERIMENTS.md for why this matters off the paper's hardware).
func Table1(o Options) error {
	o = o.filled()
	header(o.Out, "Table 1: reader success rate under high contention",
		fmt.Sprintf("%d threads (split readers/writers), %d locks", o.MaxThreads, bench.HighContention))
	ratios := []int{20, 50, 80, 90}
	tw := tabwriter.NewWriter(o.Out, 4, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Lock")
	for _, rp := range ratios {
		fmt.Fprintf(tw, "\t%d%%/%d%%", rp, 100-rp)
	}
	fmt.Fprintln(tw)
	for _, scheme := range []string{"OptiQL-NOR", "OptiQL"} {
		fmt.Fprint(tw, scheme)
		for _, rp := range ratios {
			mean, _, err := bench.Repeat(o.Runs, func() (float64, error) {
				r, err := bench.RunMicro(bench.MicroConfig{
					Scheme: scheme, Threads: o.MaxThreads,
					Locks: bench.HighContention, ReadPct: rp, Split: true,
					Duration: o.Duration,
				})
				if err != nil {
					return 0, err
				}
				return r.ReadSuccessRate() * 100, nil
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%.2f%%", mean)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	return nil
}

// Fig8 reproduces Figure 8: throughput vs critical-section length for
// a read-mostly workload under low and high contention.
func Fig8(o Options) error {
	o = o.filled()
	header(o.Out, "Figure 8: throughput vs critical-section length",
		fmt.Sprintf("80%% reads / 20%% writes, %d threads; Mops (mean±95%%CI)", o.MaxThreads))
	lengths := []int{5, 50, 100, 150, 200}
	schemes := []string{"OptLock", "OptiQL-NOR", "OptiQL"}
	for _, level := range []struct {
		name  string
		locks int
	}{{"low", bench.LowContention}, {"high", bench.HighContention}} {
		fmt.Fprintf(o.Out, "-- %s contention --\n", level.name)
		tw := tabwriter.NewWriter(o.Out, 4, 4, 2, ' ', 0)
		fmt.Fprint(tw, "CS length")
		for _, s := range schemes {
			fmt.Fprintf(tw, "\t%s", s)
		}
		fmt.Fprintln(tw)
		for _, cs := range lengths {
			fmt.Fprintf(tw, "%d", cs)
			for _, scheme := range schemes {
				cell, err := microCell(o, bench.MicroConfig{
					Scheme: scheme, Threads: o.MaxThreads, Locks: level.locks,
					ReadPct: 80, CSLen: cs, Duration: o.Duration,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "\t%s", cell)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	return nil
}

// Fig9 reproduces Figure 9: B+-tree and ART throughput under the
// skewed workload (self-similar 0.2, dense keys) for the five
// Section 7.3 workloads across the thread sweep.
func Fig9(o Options) error {
	o = o.filled()
	header(o.Out, "Figure 9: index throughput under skew (self-similar 0.2, dense keys)",
		fmt.Sprintf("%d records; Mops (mean±95%%CI)", o.Records))
	schemes := []string{"OptLock", "OptiQL-NOR", "OptiQL", "pthread", "MCS-RW"}
	for _, index := range []string{"btree", "art"} {
		for _, mixName := range workload.MixNames() {
			mix, _ := workload.MixByName(mixName)
			fmt.Fprintf(o.Out, "-- %s / %s --\n", index, mixName)
			tw := tabwriter.NewWriter(o.Out, 4, 4, 2, ' ', 0)
			fmt.Fprint(tw, "threads")
			for _, s := range schemes {
				fmt.Fprintf(tw, "\t%s", s)
			}
			fmt.Fprintln(tw)
			for _, th := range o.Threads {
				fmt.Fprintf(tw, "%d", th)
				for _, scheme := range schemes {
					cell, err := indexCell(o, bench.IndexConfig{
						Index: index, Scheme: scheme, Threads: th,
						Records: o.Records, Distribution: "selfsimilar",
						KeySpace: workload.Dense, Mix: mix,
						Duration: o.Duration,
					})
					if err != nil {
						return err
					}
					fmt.Fprintf(tw, "\t%s", cell)
				}
				fmt.Fprintln(tw)
			}
			tw.Flush()
		}
	}
	return nil
}

// Fig10 reproduces Figure 10: index throughput under low contention
// (uniform) with the balanced workload.
func Fig10(o Options) error {
	o = o.filled()
	header(o.Out, "Figure 10: index throughput under low contention (uniform, balanced)",
		fmt.Sprintf("%d records; Mops (mean±95%%CI)", o.Records))
	schemes := []string{"OptLock", "OptiQL-NOR", "OptiQL", "pthread", "MCS-RW"}
	for _, index := range []string{"btree", "art"} {
		fmt.Fprintf(o.Out, "-- %s --\n", index)
		tw := tabwriter.NewWriter(o.Out, 4, 4, 2, ' ', 0)
		fmt.Fprint(tw, "threads")
		for _, s := range schemes {
			fmt.Fprintf(tw, "\t%s", s)
		}
		fmt.Fprintln(tw)
		for _, th := range o.Threads {
			fmt.Fprintf(tw, "%d", th)
			for _, scheme := range schemes {
				cell, err := indexCell(o, bench.IndexConfig{
					Index: index, Scheme: scheme, Threads: th,
					Records: o.Records, Distribution: "uniform",
					KeySpace: workload.Dense, Mix: workload.Balanced,
					Duration: o.Duration,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "\t%s", cell)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	return nil
}

// Fig11 reproduces Figure 11: B+-tree throughput under the skewed
// distribution across node sizes, including the AOR variant.
func Fig11(o Options) error {
	o = o.filled()
	header(o.Out, "Figure 11: B+-tree throughput vs node size (with AOR)",
		fmt.Sprintf("self-similar 0.2, dense keys, %d threads, %d records; Mops (mean±95%%CI)", o.MaxThreads, o.Records))
	sizes := []int{256, 512, 1024, 2048, 4096, 8192, 16384}
	schemes := []string{"OptLock", "OptiQL-NOR", "OptiQL", "OptiQL-AOR"}
	for _, mixName := range []string{"read-heavy", "balanced", "write-heavy"} {
		mix, _ := workload.MixByName(mixName)
		fmt.Fprintf(o.Out, "-- %s --\n", mixName)
		tw := tabwriter.NewWriter(o.Out, 4, 4, 2, ' ', 0)
		fmt.Fprint(tw, "node size")
		for _, s := range schemes {
			fmt.Fprintf(tw, "\t%s", s)
		}
		fmt.Fprintln(tw)
		for _, size := range sizes {
			fmt.Fprintf(tw, "%d", size)
			for _, scheme := range schemes {
				cell, err := indexCell(o, bench.IndexConfig{
					Index: "btree", Scheme: scheme, Threads: o.MaxThreads,
					Records: o.Records, NodeSize: size,
					Distribution: "selfsimilar", KeySpace: workload.Dense,
					Mix: mix, Duration: o.Duration,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "\t%s", cell)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	return nil
}

// Fig12 reproduces Figure 12: operation latency percentiles for both
// indexes under the skewed distribution at two thread counts.
func Fig12(o Options) error {
	o = o.filled()
	lowT := o.MaxThreads / 2
	if lowT < 1 {
		lowT = 1
	}
	header(o.Out, "Figure 12: latency percentiles (microseconds)",
		fmt.Sprintf("self-similar 0.2, dense keys, %d records", o.Records))
	schemes := []string{"OptLock", "OptiQL-NOR", "OptiQL"}
	for _, index := range []string{"btree", "art"} {
		for _, mixName := range []string{"read-only", "balanced", "update-only"} {
			mix, _ := workload.MixByName(mixName)
			for _, th := range []int{lowT, o.MaxThreads} {
				fmt.Fprintf(o.Out, "-- %s / %s / %d threads --\n", index, mixName, th)
				tw := tabwriter.NewWriter(o.Out, 4, 4, 2, ' ', 0)
				fmt.Fprint(tw, "scheme")
				for _, l := range hist.PercentileLabels {
					fmt.Fprintf(tw, "\t%s", l)
				}
				fmt.Fprintln(tw)
				for _, scheme := range schemes {
					cfg := bench.IndexConfig{
						Index: index, Scheme: scheme, Threads: th,
						Records: o.Records, Distribution: "selfsimilar",
						KeySpace: workload.Dense, Mix: mix,
						Duration: o.Duration, Latency: true,
					}
					res, err := bench.RunIndex(cfg)
					if err != nil {
						return err
					}
					fmt.Fprint(tw, scheme)
					for _, v := range res.Hist.Snapshot() {
						fmt.Fprintf(tw, "\t%.1f", float64(v)/1000)
					}
					fmt.Fprintln(tw)
				}
				tw.Flush()
			}
		}
	}
	return nil
}

// Fig13 reproduces Figure 13: ART throughput with sparse integer keys
// (forcing lazy expansion and, under OptiQL, contention expansion).
func Fig13(o Options) error {
	o = o.filled()
	header(o.Out, "Figure 13: ART with sparse keys (self-similar 0.2)",
		fmt.Sprintf("%d records; Mops (mean±95%%CI)", o.Records))
	schemes := []string{"OptLock", "OptiQL-NOR", "OptiQL", "pthread", "MCS-RW"}
	for _, mixName := range []string{"read-heavy", "write-heavy"} {
		mix, _ := workload.MixByName(mixName)
		fmt.Fprintf(o.Out, "-- %s --\n", mixName)
		tw := tabwriter.NewWriter(o.Out, 4, 4, 2, ' ', 0)
		fmt.Fprint(tw, "threads")
		for _, s := range schemes {
			fmt.Fprintf(tw, "\t%s", s)
		}
		fmt.Fprintln(tw)
		for _, th := range o.Threads {
			fmt.Fprintf(tw, "%d", th)
			for _, scheme := range schemes {
				cell, err := indexCell(o, bench.IndexConfig{
					Index: "art", Scheme: scheme, Threads: th,
					Records: o.Records, Distribution: "selfsimilar",
					KeySpace: workload.Sparse, Mix: mix,
					Duration: o.Duration,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "\t%s", cell)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	return nil
}

// Fairness is an extension experiment supporting the Section 1.1
// discussion: under extreme contention it reports each scheme's
// throughput together with the max/min ratio of per-thread completed
// operations. FIFO queue locks stay near 1x; exponential backoff (the
// classic collapse mitigation) lets "lucky" threads acquire the lock
// far more often.
func Fairness(o Options) error {
	o = o.filled()
	header(o.Out, "Fairness (extension): per-thread acquisition skew under extreme contention",
		fmt.Sprintf("pure writers, 1 lock, %d threads; ratio = busiest/least-busy thread", o.MaxThreads))
	schemes := []string{"OptLock", "OptLock-Backoff", "TTS", "MCS", "CLH", "OptiQL-NOR", "OptiQL"}
	tw := tabwriter.NewWriter(o.Out, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tMops\tfairness ratio")
	for _, scheme := range schemes {
		var mops, ratio []float64
		for i := 0; i < o.Runs; i++ {
			r, err := bench.RunMicro(bench.MicroConfig{
				Scheme: scheme, Threads: o.MaxThreads,
				Locks: bench.ExtremeContention, Duration: o.Duration,
			})
			if err != nil {
				return err
			}
			mops = append(mops, r.Mops())
			ratio = append(ratio, r.FairnessRatio())
		}
		m, mc, err := bench.Stats(mops)
		if err != nil {
			return err
		}
		fr, _, err := bench.Stats(ratio)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.2f±%.2f\t%.2fx\n", scheme, m, mc, fr)
	}
	tw.Flush()
	return nil
}

// All runs every experiment in paper order: the native-hardware run of
// each figure, then the simulated-multicore reproductions of the
// contention-sensitive ones (Figures 6-8, Table 1; see internal/sim).
func All(o Options) error {
	for _, fn := range []func(Options) error{
		Fig1, Fig6, Fig7, Table1, Fig8, Fig9, Fig10, Fig11, Fig12, Fig13, Fairness,
		SimFig6, SimFig7, SimTable1, SimFig8, SimFairness,
	} {
		if err := fn(o); err != nil {
			return err
		}
	}
	return nil
}

// ByName resolves an experiment name ("fig1", ..., "table1", "all").
func ByName(name string) (func(Options) error, error) {
	m := map[string]func(Options) error{
		"fig1": Fig1, "fig6": Fig6, "fig7": Fig7, "table1": Table1,
		"fig8": Fig8, "fig9": Fig9, "fig10": Fig10, "fig11": Fig11,
		"fig12": Fig12, "fig13": Fig13, "fairness": Fairness, "all": All,
		"simfig6": SimFig6, "simfig7": SimFig7, "simtable1": SimTable1,
		"simfig8": SimFig8, "simfig9": SimFig9, "simfairness": SimFairness,
		"allsim": AllSimulated,
	}
	fn, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", name)
	}
	return fn, nil
}

// Names lists the experiment identifiers in paper order.
func Names() []string {
	return []string{
		"fig1", "fig6", "fig7", "table1", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fairness",
		"simfig6", "simfig7", "simtable1", "simfig8", "simfig9", "simfairness",
	}
}

// ParseThreads parses a comma-separated thread sweep such as
// "1,20,40,60,80".
func ParseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("experiments: bad thread count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: empty thread list")
	}
	return out, nil
}
