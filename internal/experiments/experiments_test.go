package experiments

import (
	"strings"
	"testing"
	"time"
)

// tinyOptions keep each experiment to a fraction of a second.
func tinyOptions(buf *strings.Builder) Options {
	return Options{
		Threads:   []int{1, 2},
		Duration:  20 * time.Millisecond,
		Runs:      1,
		Records:   5000,
		SimCycles: 50_000,
		Out:       buf,
	}
}

func TestEveryExperimentRunsAndPrints(t *testing.T) {
	want := map[string]string{
		"fig1":        "Figure 1",
		"fig6":        "Figure 6",
		"fig7":        "Figure 7",
		"table1":      "Table 1",
		"fig8":        "Figure 8",
		"fig9":        "Figure 9",
		"fig10":       "Figure 10",
		"fig11":       "Figure 11",
		"fig12":       "Figure 12",
		"fig13":       "Figure 13",
		"fairness":    "Fairness",
		"simfig6":     "Figure 6 (simulated",
		"simfig7":     "Figure 7 (simulated",
		"simtable1":   "Table 1 (simulated",
		"simfig8":     "Figure 8 (simulated",
		"simfig9":     "Figure 9 (simulated",
		"simfairness": "Fairness (simulated",
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			fn, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			var buf strings.Builder
			if err := fn(tinyOptions(&buf)); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, want[name]) {
				t.Fatalf("output missing header %q:\n%s", want[name], out)
			}
			if !strings.Contains(out, "OptiQL") {
				t.Fatalf("output has no OptiQL column:\n%s", out)
			}
		})
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if fn, err := ByName("all"); err != nil || fn == nil {
		t.Fatal("all not resolvable")
	}
}

func TestParseThreads(t *testing.T) {
	got, err := ParseThreads("1, 20,40")
	if err != nil || len(got) != 3 || got[1] != 20 {
		t.Fatalf("ParseThreads = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "a", "1,,x"} {
		if _, err := ParseThreads(bad); err == nil {
			t.Fatalf("ParseThreads(%q) accepted", bad)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.filled()
	if len(o.Threads) == 0 || o.MaxThreads != o.Threads[len(o.Threads)-1] {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if o.Duration == 0 || o.Runs == 0 || o.Records == 0 || o.Out == nil {
		t.Fatalf("defaults missing: %+v", o)
	}
}
