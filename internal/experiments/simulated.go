package experiments

import (
	"fmt"
	"text/tabwriter"

	"optiql/internal/sim"
)

// The sim* experiments regenerate the contention-sensitive figures on
// the internal/sim multicore cache-coherence model instead of the host
// CPU. They exist because the lock-level shapes of Figures 6-8 and
// Table 1 are properties of parallel cacheline contention that a
// machine with fewer cores than the paper's testbed cannot exhibit
// natively (DESIGN.md, substitution table). Simulated results are
// deterministic; throughput is reported in operations per thousand
// simulated cycles.

// simCell runs one simulated configuration and renders its throughput.
func simCell(cfg sim.Config) (string, error) {
	r, err := sim.Run(cfg)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%.2f", r.Throughput()), nil
}

// simSchemes are the lock variants the simulator models.
func simSchemes() []string {
	return []string{"OptLock", "OptiQL-NOR", "OptiQL", "TTS", "MCS", "MCS-RW", "OptLock-Backoff"}
}

// simReaderSchemes are the variants with optimistic readers.
func simReaderSchemes() []string {
	return []string{"OptLock", "OptiQL-NOR", "OptiQL", "MCS-RW", "OptLock-Backoff"}
}

// SimFig6 regenerates Figure 6 (exclusive lock throughput by
// contention level) on the simulated multicore.
func SimFig6(o Options) error {
	o = o.filled()
	header(o.Out, "Figure 6 (simulated multicore): exclusive lock throughput",
		"pure writers, CS=50; ops per 1000 simulated cycles, deterministic")
	threads := []int{1, 10, 20, 40, 60, 80}
	for _, level := range []struct {
		name  string
		locks int
	}{{"extreme", 1}, {"high", 5}, {"medium", 30000}, {"low", 1000000}, {"none", 0}} {
		fmt.Fprintf(o.Out, "-- %s contention (%d locks) --\n", level.name, level.locks)
		tw := tabwriter.NewWriter(o.Out, 4, 4, 2, ' ', 0)
		fmt.Fprint(tw, "threads")
		for _, s := range simSchemes() {
			fmt.Fprintf(tw, "\t%s", s)
		}
		fmt.Fprintln(tw)
		for _, th := range threads {
			fmt.Fprintf(tw, "%d", th)
			for _, scheme := range simSchemes() {
				cell, err := simCell(sim.Config{Scheme: scheme, Threads: th, Locks: level.locks, Cycles: o.SimCycles})
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "\t%s", cell)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	return nil
}

// SimFig7 regenerates Figure 7 (mixed read/write ratios) on the
// simulated multicore at 80 threads.
func SimFig7(o Options) error {
	o = o.filled()
	header(o.Out, "Figure 7 (simulated multicore): throughput by read/write ratio",
		"80 threads; ops per 1000 simulated cycles")
	ratios := []int{0, 20, 50, 80, 90}
	for _, level := range []struct {
		name  string
		locks int
	}{{"extreme", 1}, {"high", 5}, {"medium", 30000}, {"low", 1000000}} {
		fmt.Fprintf(o.Out, "-- %s contention (%d locks) --\n", level.name, level.locks)
		tw := tabwriter.NewWriter(o.Out, 4, 4, 2, ' ', 0)
		fmt.Fprint(tw, "read/write")
		for _, s := range simReaderSchemes() {
			fmt.Fprintf(tw, "\t%s", s)
		}
		fmt.Fprintln(tw)
		for _, rp := range ratios {
			fmt.Fprintf(tw, "%d/%d", rp, 100-rp)
			for _, scheme := range simReaderSchemes() {
				cell, err := simCell(sim.Config{
					Scheme: scheme, Threads: 80, Locks: level.locks, ReadPct: rp,
					Cycles: o.SimCycles,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "\t%s", cell)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	return nil
}

// SimTable1 regenerates Table 1 (reader success rate under high
// contention) on the simulated multicore at 80 threads.
func SimTable1(o Options) error {
	o = o.filled()
	header(o.Out, "Table 1 (simulated multicore): reader success rate, high contention",
		"80 threads (split readers/writers), 5 locks")
	ratios := []int{20, 50, 80, 90}
	tw := tabwriter.NewWriter(o.Out, 4, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Lock")
	for _, rp := range ratios {
		fmt.Fprintf(tw, "\t%d%%/%d%%", rp, 100-rp)
	}
	fmt.Fprintln(tw)
	for _, scheme := range []string{"OptiQL-NOR", "OptiQL"} {
		fmt.Fprint(tw, scheme)
		for _, rp := range ratios {
			r, err := sim.Run(sim.Config{
				Scheme: scheme, Threads: 80, Locks: 5, ReadPct: rp, Split: true,
				Cycles: 2 * o.SimCycles,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%.2f%%", r.ReadSuccessRate()*100)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	return nil
}

// SimFig8 regenerates Figure 8 (throughput vs critical-section length,
// 80% reads) on the simulated multicore.
func SimFig8(o Options) error {
	o = o.filled()
	header(o.Out, "Figure 8 (simulated multicore): throughput vs critical-section length",
		"80% reads / 20% writes, 80 threads; ops per 1000 simulated cycles")
	for _, level := range []struct {
		name  string
		locks int
	}{{"low", 1000000}, {"high", 5}} {
		fmt.Fprintf(o.Out, "-- %s contention --\n", level.name)
		tw := tabwriter.NewWriter(o.Out, 4, 4, 2, ' ', 0)
		fmt.Fprint(tw, "CS length\tOptLock\tOptiQL-NOR\tOptiQL\n")
		for _, cs := range []int{5, 50, 100, 150, 200} {
			fmt.Fprintf(tw, "%d", cs)
			for _, scheme := range []string{"OptLock", "OptiQL-NOR", "OptiQL"} {
				cell, err := simCell(sim.Config{
					Scheme: scheme, Threads: 80, Locks: level.locks,
					ReadPct: 80, CSLen: cs, Cycles: o.SimCycles,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "\t%s", cell)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	return nil
}

// SimFairness regenerates the fairness extension on the simulated
// multicore, where the Section 1.1 "lucky threads under backoff"
// effect is visible deterministically.
func SimFairness(o Options) error {
	o = o.filled()
	header(o.Out, "Fairness (simulated multicore): per-thread acquisition skew",
		"pure writers, 1 lock, 40 threads; ratio = busiest/least-busy thread")
	tw := tabwriter.NewWriter(o.Out, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tops/kcycle\tfairness ratio")
	for _, scheme := range simSchemes() {
		r, err := sim.Run(sim.Config{Scheme: scheme, Threads: 40, Locks: 1, Cycles: 2 * o.SimCycles})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2fx\n", scheme, r.Throughput(), r.FairnessRatio())
	}
	tw.Flush()
	return nil
}

// AllSimulated runs every simulator-backed experiment.
func AllSimulated(o Options) error {
	for _, fn := range []func(Options) error{SimFig6, SimFig7, SimTable1, SimFig8, SimFig9, SimFairness} {
		if err := fn(o); err != nil {
			return err
		}
	}
	return nil
}

// SimFig9 regenerates the index-level robustness comparison of
// Figures 1(b)/9 on the simulated multicore: a skewed workload over
// 4096 leaf locks with per-retry re-traversal costs, so OLC
// upgrade-retries (OptLock) waste descents while OptiQL queues on the
// leaf after a single descent (Section 6.1's adapted protocol).
func SimFig9(o Options) error {
	o = o.filled()
	header(o.Out, "Figure 9 (simulated multicore): skewed index workloads",
		"self-similar 0.2 over 4096 leaves, traversal modelled per retry; ops per 1000 simulated cycles")
	schemes := []string{"OptLock", "OptiQL-NOR", "OptiQL", "MCS-RW", "OptLock-Backoff"}
	for _, mix := range []struct {
		name    string
		readPct int
	}{{"read-heavy", 80}, {"balanced", 50}, {"write-heavy", 20}, {"update-only", 0}} {
		fmt.Fprintf(o.Out, "-- %s --\n", mix.name)
		tw := tabwriter.NewWriter(o.Out, 4, 4, 2, ' ', 0)
		fmt.Fprint(tw, "threads")
		for _, s := range schemes {
			fmt.Fprintf(tw, "\t%s", s)
		}
		fmt.Fprintln(tw)
		for _, th := range []int{1, 10, 20, 40, 80} {
			fmt.Fprintf(tw, "%d", th)
			for _, scheme := range schemes {
				cell, err := simCell(sim.Config{
					Scheme: scheme, Threads: th, Locks: 4096, ReadPct: mix.readPct,
					Index: true, Skew: 0.2, Cycles: o.SimCycles,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "\t%s", cell)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	return nil
}
