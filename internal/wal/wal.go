package wal

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"optiql/internal/hist"
	"optiql/internal/obs"
)

// Config tunes one shard log. The zero value is normalized to the
// interval policy with production-shaped defaults.
type Config struct {
	// Policy is the ack rule: SyncAlways fsyncs before every batch ack,
	// SyncInterval acks on the group-commit fsync that covers the batch,
	// SyncOff acks immediately (the log still flushes on ticks and
	// fsyncs on segment seal and close, but a crash may lose a suffix).
	Policy string
	// Interval paces the group-commit syncer: it is the maximum time an
	// interval-policy ack waits for its fsync. Commits wake the syncer
	// early once GroupOps ops are queued, so under load the cadence is
	// set by group fill, and only a trickle waits the full Interval.
	Interval time.Duration
	// GroupOps is the group-commit fill target in ops: an interval-policy
	// commit wakes the syncer early once this much fsync debt is queued;
	// smaller groups ride the Interval tick instead of paying one fsync
	// per batch. Zero means 64 (the server's default batch size); 1
	// restores sync-per-commit.
	GroupOps int
	// SegmentBytes seals and rotates the active segment once it grows
	// past this size.
	SegmentBytes int64
	// CheckpointBytes triggers a background checkpoint once this many
	// sealed-segment bytes accumulated since the last snapshot. Zero
	// disables size-triggered checkpoints (Checkpoint can still be
	// called directly). Requires Snapshot.
	CheckpointBytes int64
	// SyncQueueMax bounds ops appended but not yet durable under the
	// interval policy; past it Lagging reports true and the server sheds
	// writes with StatusOverloaded instead of queueing unbounded fsync
	// debt. Zero disables shedding.
	SyncQueueMax int
	// Snapshot streams the shard's live key/value pairs for a
	// checkpoint, in any order; nil disables checkpointing.
	Snapshot func(emit func(key, val uint64) error) error
	// SyncFile overrides fsync, for fault injection; nil means
	// (*os.File).Sync.
	SyncFile func(*os.File) error
	// Counters receives EvWal* events; nil disables counting.
	Counters *obs.Counters
	// Logf receives recovery and failure notices; nil discards them.
	Logf func(format string, args ...any)
}

func (c *Config) normalize() error {
	switch c.Policy {
	case "":
		c.Policy = SyncInterval
	case SyncAlways, SyncInterval, SyncOff:
	default:
		return fmt.Errorf("wal: unknown fsync policy %q (want %s|%s|%s)", c.Policy, SyncAlways, SyncInterval, SyncOff)
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Millisecond
	}
	if c.GroupOps <= 0 {
		c.GroupOps = 64
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 64 << 20
	}
	if c.SegmentBytes < segHdrSize+recHdrSize+recFixed {
		c.SegmentBytes = segHdrSize + recHdrSize + recFixed
	}
	if c.SyncFile == nil {
		c.SyncFile = (*os.File).Sync
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// Committer receives the deferred acknowledgement for one appended
// batch: err is nil once the batch is durable under the configured
// policy, non-nil if the log failed before that. Committed is called
// exactly once, from the log's syncer goroutine or the committing
// caller, and must not block.
type Committer interface {
	Committed(err error)
}

// ticket is one batch waiting for group commit.
type ticket struct {
	seq uint64
	n   int // ops in the batch, for the pending-ops gauge
	c   Committer
}

// ErrClosed is returned by appends and commits after Close.
var ErrClosed = errors.New("wal: log closed")

// Log is one shard's write-ahead log. Append, NoteApplied and Commit
// are single-caller (the shard executor); Lagging, Err and Stats may
// be called from any goroutine; Close must not race Append/Commit.
type Log struct {
	dir string
	cfg Config

	// mu guards the append path: active file, buffered writer, encode
	// buffer, sequence allocation and rotation. Lock order: mu before
	// syncMu (rotation seals under both); never the reverse.
	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	enc      []byte // record encode buffer, capacity fixed at Open
	segStart uint64 // first sequence of the active segment
	segBytes int64  // bytes written to the active segment
	nextSeq  uint64
	closed   bool

	// syncMu serializes fsync against seal/close so a captured file
	// handle is never synced after it was closed.
	syncMu sync.Mutex

	appended atomic.Uint64 // last sequence written to the buffer
	durable  atomic.Uint64 // last sequence covered by an fsync
	applied  atomic.Uint64 // last sequence applied to the index

	// pendingOps is the interval-policy fsync debt in ops, the gauge
	// behind Lagging.
	pendingOps atomic.Int64

	// tmu guards the group-commit ticket queue and the release scratch.
	tmu        sync.Mutex
	tickets    []ticket
	relScratch []ticket

	// failed/errv: first unrecoverable append/fsync error; sticky. The
	// bool is the fast path, the mutex makes the error value safe.
	failed atomic.Bool
	emu    sync.Mutex
	errv   error

	notify chan struct{}
	stop   chan struct{}
	done   chan struct{}
	loop   bool // syncer goroutine started

	histMu    sync.Mutex
	fsyncHist hist.Histogram

	// Checkpoint state: last covered sequence, sealed bytes since, and
	// a single-flight guard for the background writer.
	ckptSeq     atomic.Uint64
	ckptPairs   atomic.Uint64
	bytesSince  atomic.Int64
	ckptRunning atomic.Bool
	ckptWG      sync.WaitGroup

	rec RecoveryStats

	// Monotonic stat counters (also mirrored into cfg.Counters).
	statRecs     atomic.Uint64
	statOps      atomic.Uint64
	statBytes    atomic.Uint64
	statSyncs    atomic.Uint64
	statRotate   atomic.Uint64
	statCkpt     atomic.Uint64
	statReclaim  atomic.Uint64
	statLagSheds atomic.Uint64
}

// Stats is a point-in-time snapshot of one log's counters and
// watermarks.
type Stats struct {
	AppendedRecords   uint64
	AppendedOps       uint64
	AppendedBytes     uint64
	Syncs             uint64
	Rotations         uint64
	Checkpoints       uint64
	SegmentsReclaimed uint64
	LagSheds          uint64
	AppendedSeq       uint64
	DurableSeq        uint64
	AppliedSeq        uint64
	PendingOps        int64
	CheckpointSeq     uint64
	CheckpointPairs   uint64
}

// Open creates dir if needed, recovers existing state (loading the
// newest valid checkpoint and replaying newer records through apply,
// truncating a torn tail in the last segment) and returns a log ready
// for appends, with a fresh active segment. apply is called
// synchronously during Open only.
func Open(dir string, cfg Config, apply func(seq uint64, ops []Op)) (*Log, RecoveryStats, error) {
	if err := cfg.normalize(); err != nil {
		return nil, RecoveryStats{}, err
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, RecoveryStats{}, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		dir:    dir,
		cfg:    cfg,
		enc:    make([]byte, 0, recHdrSize+maxRecSize),
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	rec, err := l.recover(apply)
	if err != nil {
		return nil, rec, err
	}
	l.rec = rec
	l.nextSeq = rec.LastSeq + 1
	l.appended.Store(rec.LastSeq)
	l.durable.Store(rec.LastSeq)
	l.applied.Store(rec.LastSeq)
	l.ckptSeq.Store(rec.CheckpointSeq)
	l.ckptPairs.Store(rec.CheckpointPairs)
	l.bytesSince.Store(rec.liveBytes)
	if err := l.openSegment(l.nextSeq); err != nil {
		return nil, rec, err
	}
	if cfg.Policy != SyncAlways {
		l.loop = true
		go l.syncLoop()
	}
	return l, rec, nil
}

// openSegment creates the active segment for firstSeq and makes its
// directory entry durable. Caller holds mu or is Open.
func (l *Log) openSegment(firstSeq uint64) error {
	path := filepath.Join(l.dir, segName(firstSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o666)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if l.w == nil {
		l.w = bufio.NewWriterSize(f, 1<<16)
	} else {
		l.w.Reset(f)
	}
	hdr := make([]byte, 0, segHdrSize)
	hdr = append(hdr, segMagic...)
	hdr = appendU64(hdr, firstSeq)
	if _, err := l.w.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segStart = firstSeq
	l.segBytes = segHdrSize
	return nil
}

// Append encodes ops as one record (splitting past maxOpsPerRecord),
// writes it to the active segment and returns the sequence of the last
// record written. The data is buffered, not yet durable: pair with
// Commit. Single-caller (the shard executor).
func (l *Log) Append(ops []Op) (uint64, error) {
	if len(ops) == 0 {
		return l.appended.Load(), nil
	}
	if l.failed.Load() {
		return 0, l.Err()
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	var last uint64
	for len(ops) > 0 {
		n := len(ops)
		if n > maxOpsPerRecord {
			n = maxOpsPerRecord
		}
		if err := l.appendOne(l.nextSeq, ops[:n]); err != nil {
			l.mu.Unlock()
			l.fail(err)
			return 0, err
		}
		last = l.nextSeq
		l.nextSeq++
		ops = ops[n:]
	}
	l.appended.Store(last)
	rotate := l.segBytes >= l.cfg.SegmentBytes
	var rerr error
	if rotate {
		rerr = l.rotateLocked()
	}
	l.mu.Unlock()
	if rerr != nil {
		l.fail(rerr)
		return 0, rerr
	}
	return last, nil
}

// appendOne writes one record under mu. Kept allocation-free: the
// encode buffer is pre-sized for a maximal record at Open.
//
//optiql:noalloc
func (l *Log) appendOne(seq uint64, ops []Op) error {
	l.enc = appendRecord(l.enc[:0], seq, ops)
	if _, err := l.w.Write(l.enc); err != nil {
		return err
	}
	l.segBytes += int64(len(l.enc))
	l.statRecs.Add(1)
	l.statOps.Add(uint64(len(ops)))
	l.statBytes.Add(uint64(len(l.enc)))
	if c := l.cfg.Counters; c != nil {
		c.Inc(obs.EvWalAppendRec)
		c.Add(obs.EvWalAppendOps, uint64(len(ops)))
	}
	return nil
}

// rotateLocked seals the active segment — flush, fsync, close — then
// opens its successor. Called with mu held; takes syncMu for the seal
// so a concurrent group-commit sync of the old handle is ordered
// before the close. Sealing fsyncs under every policy (including off):
// recovery's "corruption outside the last segment is fatal" rule
// depends on sealed segments being fully durable.
func (l *Log) rotateLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	sealed := l.appended.Load()
	sealedBytes := l.segBytes
	l.syncMu.Lock()
	err := l.syncFile(l.f)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if err == nil && l.durable.Load() < sealed {
		l.durable.Store(sealed)
	}
	l.syncMu.Unlock()
	if err != nil {
		return err
	}
	l.statRotate.Add(1)
	if c := l.cfg.Counters; c != nil {
		c.Inc(obs.EvWalRotate)
	}
	if err := l.openSegment(sealed + 1); err != nil {
		return err
	}
	l.releaseAsync()
	l.maybeCheckpoint(sealedBytes)
	return nil
}

// syncFile runs the configured fsync and records its latency.
func (l *Log) syncFile(f *os.File) error {
	t0 := time.Now()
	err := l.cfg.SyncFile(f)
	d := time.Since(t0)
	l.histMu.Lock()
	l.fsyncHist.Record(uint64(d.Nanoseconds()))
	l.histMu.Unlock()
	l.statSyncs.Add(1)
	if c := l.cfg.Counters; c != nil {
		c.Inc(obs.EvWalSync)
	}
	return err
}

// Commit registers the acknowledgement for the batch that Append
// returned seq for, holding n ops. Under SyncAlways it fsyncs inline
// and acks before returning; under SyncOff it acks immediately; under
// SyncInterval it queues a ticket released by the group-commit syncer.
// c may be nil (fire-and-forget append).
func (l *Log) Commit(seq uint64, n int, c Committer) {
	if c == nil {
		return
	}
	if err := l.Err(); err != nil {
		c.Committed(err)
		return
	}
	switch l.cfg.Policy {
	case SyncOff:
		// Ack immediately; the syncer's tick flushes buffered data to the
		// kernel within one Interval. Waking per commit would cost a
		// flush syscall per batch for a policy that promises nothing.
		c.Committed(nil)
	case SyncAlways:
		c.Committed(l.syncTo(seq))
	default: // SyncInterval
		if l.durable.Load() >= seq {
			c.Committed(nil)
			return
		}
		pend := l.pendingOps.Add(int64(n))
		l.tmu.Lock()
		l.tickets = append(l.tickets, ticket{seq: seq, n: n, c: c})
		l.tmu.Unlock()
		// Re-check after enqueue: the syncer may have advanced durable
		// past seq between the first check and the queue insert.
		if l.failed.Load() || l.durable.Load() >= seq {
			l.release()
		}
		// Group-commit pacing: wake the syncer only once a full group is
		// waiting. A sub-group trickle is picked up by the Interval tick,
		// so an fsync covers GroupOps ops under load instead of one batch.
		if pend >= int64(l.cfg.GroupOps) {
			l.wake()
		}
	}
}

// Nudge wakes the group-commit syncer if fsync debt is waiting. The
// executor calls it when its queue runs dry: no more appends are
// coming until the queued acks go out, so waiting for group fill or
// the tick would only stall the pipeline. Cheap no-op otherwise.
func (l *Log) Nudge() {
	if l.loop && l.pendingOps.Load() > 0 {
		l.wake()
	}
}

// NoteApplied records that the batch at seq has been applied to the
// in-memory index. Checkpoints snapshot at this watermark; the caller
// must apply strictly in sequence order (the executor does).
func (l *Log) NoteApplied(seq uint64) {
	if seq > l.applied.Load() {
		l.applied.Store(seq)
	}
}

// Lagging reports whether the interval-policy fsync debt exceeds the
// configured bound; the server sheds writes while true.
func (l *Log) Lagging() bool {
	return l.cfg.SyncQueueMax > 0 && l.cfg.Policy == SyncInterval &&
		l.pendingOps.Load() >= int64(l.cfg.SyncQueueMax)
}

// Err returns the sticky failure, or nil while the log is healthy.
func (l *Log) Err() error {
	if !l.failed.Load() {
		return nil
	}
	l.emu.Lock()
	defer l.emu.Unlock()
	return l.errv
}

// fail poisons the log with its first unrecoverable error and releases
// every queued ticket with it. Writes fail from then on; the server
// keeps serving reads.
func (l *Log) fail(err error) {
	l.emu.Lock()
	first := l.errv == nil
	if first {
		l.errv = err
	}
	l.emu.Unlock()
	l.failed.Store(true)
	if first {
		l.cfg.Logf("wal: log failed, shedding writes: %v", err)
	}
	l.release()
}

// wake nudges the syncer without blocking.
func (l *Log) wake() {
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

// syncTo makes every record up to at least target durable. It flushes
// under mu, captures the active handle, and fsyncs outside mu under
// syncMu. If a rotation sealed the captured handle in between, the
// seal's own fsync already covered target (the sealed segment contains
// everything flushed here) and the durable watermark shows it, so the
// sync is skipped rather than touching a closed file.
func (l *Log) syncTo(target uint64) error {
	if l.durable.Load() >= target {
		l.release()
		return nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		err := l.Err()
		if err == nil {
			err = ErrClosed
		}
		return err
	}
	if err := l.w.Flush(); err != nil {
		l.mu.Unlock()
		l.fail(err)
		return err
	}
	flushed := l.appended.Load()
	f := l.f
	l.mu.Unlock()

	l.syncMu.Lock()
	if l.durable.Load() < target {
		if err := l.syncFile(f); err != nil {
			l.syncMu.Unlock()
			l.fail(err)
			return err
		}
		if l.durable.Load() < flushed {
			l.durable.Store(flushed)
		}
	}
	l.syncMu.Unlock()
	l.release()
	return nil
}

// release acks every queued ticket covered by the durable watermark —
// or all of them, with the sticky error, once the log failed. Tickets
// queue in sequence order, so this pops a prefix.
func (l *Log) release() {
	err := l.Err()
	d := l.durable.Load()
	l.tmu.Lock()
	n := 0
	for ; n < len(l.tickets); n++ {
		if err == nil && l.tickets[n].seq > d {
			break
		}
	}
	if n == 0 {
		l.tmu.Unlock()
		return
	}
	batch := append(l.relScratch[:0], l.tickets[:n]...)
	rest := copy(l.tickets, l.tickets[n:])
	for i := rest; i < len(l.tickets); i++ {
		l.tickets[i] = ticket{}
	}
	l.tickets = l.tickets[:rest]
	l.relScratch = batch
	l.tmu.Unlock()
	for i := range batch {
		l.pendingOps.Add(int64(-batch[i].n))
		batch[i].c.Committed(err)
	}
}

// releaseAsync defers ticket release to the syncer goroutine (used on
// the rotation path, which holds mu and must not run Committed
// callbacks under it).
func (l *Log) releaseAsync() {
	if l.loop {
		l.wake()
		return
	}
	// SyncAlways has no syncer; its commits release inline.
}

// syncLoop is the group-commit engine for the interval and off
// policies: it syncs when a full group of commits is waiting (the
// early wake in Commit) and at latest every Interval, so under load
// one fsync covers GroupOps ops and a trickle still acks within a
// tick.
func (l *Log) syncLoop() {
	defer close(l.done)
	tick := time.NewTicker(l.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-l.notify:
			// Batching window: a wake with a sub-full group (an executor
			// idle nudge) waits a slice of the interval so commits still
			// in flight — socket buffers, the reader, the executor queue —
			// join this fsync instead of paying for their own. A full
			// group syncs immediately.
			if l.cfg.Policy == SyncInterval && l.pendingOps.Load() < int64(l.cfg.GroupOps) {
				time.Sleep(l.cfg.Interval / 4)
			}
		case <-tick.C:
		}
		if l.failed.Load() {
			l.release()
			continue
		}
		a := l.appended.Load()
		if a > l.durable.Load() {
			if l.cfg.Policy == SyncOff {
				l.flushOnly()
			} else {
				l.syncTo(a)
			}
		} else {
			l.release()
		}
	}
}

// flushOnly pushes buffered records to the kernel without fsync (the
// SyncOff tick): crash loses at most what the OS had not written, kill
// -9 alone loses nothing older than a tick.
func (l *Log) flushOnly() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	err := l.w.Flush()
	l.mu.Unlock()
	if err != nil {
		l.fail(err)
	}
}

// Checkpoint writes a snapshot now (see checkpoint.go) and reclaims
// covered segments. Safe to call concurrently with appends; no-op
// without a Snapshot source.
func (l *Log) Checkpoint() error {
	return l.checkpoint()
}

// maybeCheckpoint starts a background checkpoint once enough sealed
// bytes accumulated. Called under mu (from rotation).
func (l *Log) maybeCheckpoint(sealedBytes int64) {
	if l.cfg.Snapshot == nil || l.cfg.CheckpointBytes <= 0 {
		return
	}
	if l.bytesSince.Add(sealedBytes) < l.cfg.CheckpointBytes {
		return
	}
	if !l.ckptRunning.CompareAndSwap(false, true) {
		return
	}
	l.ckptWG.Add(1)
	go func() {
		defer l.ckptWG.Done()
		defer l.ckptRunning.Store(false)
		if err := l.checkpoint(); err != nil {
			l.cfg.Logf("wal: checkpoint failed: %v", err)
		}
	}()
}

// Close seals the log: flushes, fsyncs (under every policy — a
// graceful shutdown must leave no torn tail), closes the active
// segment and releases any queued tickets. Append/Commit callers must
// have stopped; Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.ckptWG.Wait()
		return l.Err()
	}
	l.closed = true
	ferr := l.w.Flush()
	f := l.f
	sealed := l.appended.Load()
	l.mu.Unlock()

	if l.loop {
		close(l.stop)
		<-l.done
	}
	l.ckptWG.Wait()

	l.syncMu.Lock()
	err := ferr
	if err == nil {
		err = l.syncFile(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil && l.durable.Load() < sealed {
		l.durable.Store(sealed)
	}
	l.syncMu.Unlock()
	if err != nil {
		l.fail(err)
	}
	l.release()
	return l.Err()
}

// Stats snapshots the log's counters and watermarks.
func (l *Log) Stats() Stats {
	return Stats{
		AppendedRecords:   l.statRecs.Load(),
		AppendedOps:       l.statOps.Load(),
		AppendedBytes:     l.statBytes.Load(),
		Syncs:             l.statSyncs.Load(),
		Rotations:         l.statRotate.Load(),
		Checkpoints:       l.statCkpt.Load(),
		SegmentsReclaimed: l.statReclaim.Load(),
		LagSheds:          l.statLagSheds.Load(),
		AppendedSeq:       l.appended.Load(),
		DurableSeq:        l.durable.Load(),
		AppliedSeq:        l.applied.Load(),
		PendingOps:        l.pendingOps.Load(),
		CheckpointSeq:     l.ckptSeq.Load(),
		CheckpointPairs:   l.ckptPairs.Load(),
	}
}

// Recovery returns the stats of the Open-time recovery pass.
func (l *Log) Recovery() RecoveryStats { return l.rec }

// NoteShed counts one write shed because the log lagged (the server
// calls this when Lagging made it answer StatusOverloaded).
func (l *Log) NoteShed() {
	l.statLagSheds.Add(1)
	if c := l.cfg.Counters; c != nil {
		c.Inc(obs.EvWalLagShed)
	}
}

// FsyncHist merges this log's fsync latency histogram into dst.
func (l *Log) FsyncHist(dst *hist.Histogram) {
	l.histMu.Lock()
	dst.Merge(&l.fsyncHist)
	l.histMu.Unlock()
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Policy returns the normalized fsync policy.
func (l *Log) Policy() string { return l.cfg.Policy }

// syncDir fsyncs a directory so renames and creates in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// listSegments returns the segment files in dir sorted by first
// sequence, verifying each name round-trips (malformed names are
// ignored rather than trusted).
func listSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segInfo
	for _, e := range ents {
		var first uint64
		if n, err := fmt.Sscanf(e.Name(), "wal-%016x.seg", &first); n != 1 || err != nil {
			continue
		}
		if e.Name() != segName(first) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		segs = append(segs, segInfo{firstSeq: first, name: e.Name(), size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

type segInfo struct {
	firstSeq uint64
	name     string
	size     int64
}

// appendU64 appends v big-endian; local shorthand for the segment
// header (record encoding lives in record.go).
func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
