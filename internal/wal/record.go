// Package wal implements the per-shard append-only write-ahead log
// behind optiqld's durability: the shard executor appends one
// CRC32C-checksummed record per executor batch, clients are
// acknowledged only once the configured fsync policy admits the
// record, and startup replays the log (from the latest checkpoint
// snapshot) back into the index, truncating a torn tail and refusing
// corrupt mid-log records.
//
// On-disk layout, all integers big-endian:
//
//	segment  = segMagic(8) firstSeq(8) record*
//	record   = crc(4) size(4) seq(8) count(4) op{count}
//	op       = 0x01 key(8) val(8)   PUT
//	         | 0x02 key(8)          DELETE
//
// size counts the bytes after the size field (seq + count + ops); crc
// is CRC32C (Castagnoli) over the size field and everything it counts,
// so a record is validated — and therefore replayed — all or nothing.
// Segments are named wal-%016x.seg by the sequence of their first
// record; a segment is sealed with an fsync before its successor is
// created, which is what licenses the recovery rule "a decode failure
// in the last segment is a torn tail, anywhere else it is corruption".
//
// Checkpoint snapshots (ckpt-%016x.ck, see checkpoint.go) bound replay:
// recovery loads the newest valid snapshot and replays only records
// with seq greater than its sequence.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Fsync policies, in decreasing order of promise. See Config.Policy.
const (
	SyncAlways   = "always"   // fsync before acking every batch
	SyncInterval = "interval" // group commit: ack after the next fsync tick
	SyncOff      = "off"      // ack immediately; fsync only on seal/close
)

// Op codes inside a record.
const (
	OpPut    byte = 1
	OpDelete byte = 2
)

// Op is one logical write inside a record batch.
type Op struct {
	Op  byte // OpPut or OpDelete
	Key uint64
	Val uint64 // meaningful for OpPut only
}

const (
	segMagic  = "OQWALSG1"
	ckptMagic = "OQWALCK1"

	segHdrSize = 16 // magic + firstSeq
	recHdrSize = 8  // crc + size
	recFixed   = 12 // seq + count

	opPutSize = 17 // tag + key + val
	opDelSize = 9  // tag + key

	// maxOpsPerRecord bounds a single record; Append splits larger
	// batches. 4096 is 4x the wire-protocol MaxBatch, so in practice a
	// record is exactly one executor batch.
	maxOpsPerRecord = 4096
	maxRecSize      = recFixed + maxOpsPerRecord*opPutSize
)

// castagnoli is the CRC32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord encodes one record into dst and returns the extended
// slice. Callers pre-size dst so the appends below never grow it on
// the hot path (the Log's encode buffer is allocated once at Open with
// capacity for a maximal record).
//
//optiql:noalloc
func appendRecord(dst []byte, seq uint64, ops []Op) []byte {
	at := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // crc + size, patched below
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ops)))
	for i := range ops {
		o := &ops[i]
		dst = append(dst, o.Op)
		dst = binary.BigEndian.AppendUint64(dst, o.Key)
		if o.Op == OpPut {
			dst = binary.BigEndian.AppendUint64(dst, o.Val)
		}
	}
	size := uint32(len(dst) - at - recHdrSize)
	binary.BigEndian.PutUint32(dst[at+4:], size)
	crc := crc32.Checksum(dst[at+4:], castagnoli)
	binary.BigEndian.PutUint32(dst[at:], crc)
	return dst
}

// parseOps decodes the op payload of a CRC-valid record into ops
// (reusing its backing array). A malformed payload under a valid
// checksum is a writer bug, not a torn write, so the error here is
// always fatal to recovery.
func parseOps(payload []byte, count uint32, ops []Op) ([]Op, error) {
	if count > maxOpsPerRecord {
		return nil, fmt.Errorf("wal: record op count %d exceeds limit %d", count, maxOpsPerRecord)
	}
	ops = ops[:0]
	for i := uint32(0); i < count; i++ {
		if len(payload) == 0 {
			return nil, fmt.Errorf("wal: record payload short at op %d/%d", i, count)
		}
		switch payload[0] {
		case OpPut:
			if len(payload) < opPutSize {
				return nil, fmt.Errorf("wal: truncated PUT op inside checksummed record")
			}
			ops = append(ops, Op{
				Op:  OpPut,
				Key: binary.BigEndian.Uint64(payload[1:]),
				Val: binary.BigEndian.Uint64(payload[9:]),
			})
			payload = payload[opPutSize:]
		case OpDelete:
			if len(payload) < opDelSize {
				return nil, fmt.Errorf("wal: truncated DELETE op inside checksummed record")
			}
			ops = append(ops, Op{
				Op:  OpDelete,
				Key: binary.BigEndian.Uint64(payload[1:]),
			})
			payload = payload[opDelSize:]
		default:
			return nil, fmt.Errorf("wal: unknown op tag %#x inside checksummed record", payload[0])
		}
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after %d ops inside checksummed record", len(payload), count)
	}
	return ops, nil
}

// segName formats a segment file name from its first record sequence.
func segName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%016x.seg", firstSeq)
}

// ckptName formats a checkpoint file name from its covered sequence.
func ckptName(seq uint64) string {
	return fmt.Sprintf("ckpt-%016x.ck", seq)
}
