package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// collector gathers replayed ops and maintains the key/value model
// they produce.
type collector struct {
	records int
	ops     int
	model   map[uint64]uint64
}

func newCollector() *collector { return &collector{model: map[uint64]uint64{}} }

func (c *collector) apply(seq uint64, ops []Op) {
	c.records++
	c.ops += len(ops)
	for _, o := range ops {
		if o.Op == OpPut {
			c.model[o.Key] = o.Val
		} else {
			delete(c.model, o.Key)
		}
	}
}

// ack is a test Committer delivering the commit error on a channel.
type ack struct{ ch chan error }

func newAck() *ack                 { return &ack{ch: make(chan error, 1)} }
func (a *ack) Committed(err error) { a.ch <- err }
func (a *ack) wait(t *testing.T) error {
	t.Helper()
	select {
	case err := <-a.ch:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("commit ack never arrived")
		return nil
	}
}

// putBatch builds a batch of PUTs with deterministic keys/values.
func putBatch(start, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Op: OpPut, Key: uint64(start + i), Val: uint64(start+i) * 3}
	}
	return ops
}

func mustOpen(t *testing.T, dir string, cfg Config, apply func(uint64, []Op)) (*Log, RecoveryStats) {
	t.Helper()
	if apply == nil {
		apply = func(uint64, []Op) {}
	}
	l, rec, err := Open(dir, cfg, apply)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir, Config{Policy: SyncOff}, nil)
	if rec.LastSeq != 0 || rec.RecordsReplayed != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	want := map[uint64]uint64{}
	for b := 0; b < 50; b++ {
		ops := putBatch(b*8, 8)
		if b%5 == 4 {
			ops[3] = Op{Op: OpDelete, Key: uint64(b * 8)}
		}
		for _, o := range ops {
			if o.Op == OpPut {
				want[o.Key] = o.Val
			} else {
				delete(want, o.Key)
			}
		}
		seq, err := l.Append(ops)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if seq != uint64(b+1) {
			t.Fatalf("batch %d got seq %d", b, seq)
		}
		l.NoteApplied(seq)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c := newCollector()
	l2, rec2 := mustOpen(t, dir, Config{Policy: SyncOff}, c.apply)
	defer l2.Close()
	if rec2.RecordsReplayed != 50 || rec2.LastSeq != 50 {
		t.Fatalf("recovery = %+v, want 50 records, last seq 50", rec2)
	}
	if rec2.TornRecords != 0 || rec2.TornBytes != 0 {
		t.Fatalf("clean close produced torn tail: %+v", rec2)
	}
	if len(c.model) != len(want) {
		t.Fatalf("model size %d, want %d", len(c.model), len(want))
	}
	for k, v := range want {
		if c.model[k] != v {
			t.Fatalf("key %d = %d, want %d", k, c.model[k], v)
		}
	}
	// Appends resume after the recovered sequence.
	seq, err := l2.Append(putBatch(0, 1))
	if err != nil || seq != 51 {
		t.Fatalf("post-recovery append seq %d err %v, want 51", seq, err)
	}
}

// TestTornTailExactness writes a 1M-op log into a single segment,
// chops the file mid-record at a deterministic offset, and asserts
// recovery truncates exactly the unsynced suffix: every record fully
// below the chop survives, the partial record and everything after it
// is gone, and TornBytes matches the partial-record remainder.
func TestTornTailExactness(t *testing.T) {
	const batch = 512
	totalOps := 1_000_000
	if testing.Short() {
		totalOps = 100_000
	}
	records := totalOps / batch
	recSize := int64(recHdrSize + recFixed + batch*opPutSize)

	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Config{Policy: SyncOff, SegmentBytes: 1 << 40}, nil)
	for b := 0; b < records; b++ {
		if _, err := l.Append(putBatch(b*batch, batch)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	seg := filepath.Join(dir, segName(1))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if want := segHdrSize + int64(records)*recSize; fi.Size() != want {
		t.Fatalf("segment size %d, want %d", fi.Size(), want)
	}

	// Chop 7 bytes into the header of record keep+1.
	keep := records - 3
	const delta = 7
	cut := segHdrSize + int64(keep)*recSize + delta
	if err := os.Truncate(seg, cut); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	c := newCollector()
	l2, rec := mustOpen(t, dir, Config{Policy: SyncOff, SegmentBytes: 1 << 40}, c.apply)
	defer l2.Close()
	if rec.RecordsReplayed != uint64(keep) || c.ops != keep*batch {
		t.Fatalf("replayed %d records / %d ops, want %d / %d", rec.RecordsReplayed, c.ops, keep, keep*batch)
	}
	if rec.TornRecords != 1 || rec.TornBytes != delta {
		t.Fatalf("torn = %d records / %d bytes, want 1 / %d", rec.TornRecords, rec.TornBytes, delta)
	}
	if rec.LastSeq != uint64(keep) {
		t.Fatalf("LastSeq %d, want %d", rec.LastSeq, keep)
	}
	if fi, err := os.Stat(seg); err != nil || fi.Size() != cut-delta {
		t.Fatalf("truncated segment size %v/%v, want %d", fi.Size(), err, cut-delta)
	}
	// The surviving model is exactly the first keep*batch puts.
	if len(c.model) != keep*batch {
		t.Fatalf("model holds %d keys, want %d", len(c.model), keep*batch)
	}
	if v, ok := c.model[uint64(keep*batch-1)]; !ok || v != uint64(keep*batch-1)*3 {
		t.Fatalf("last surviving key wrong: %d %v", v, ok)
	}
	if _, ok := c.model[uint64(keep*batch)]; ok {
		t.Fatal("op from the torn record leaked into the model")
	}
}

// TestCorruptSealedSegmentRefused flips one byte in a sealed (non-last)
// segment: recovery must fail loudly rather than truncate.
func TestCorruptSealedSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	// Small segments force rotation so multiple sealed files exist.
	l, _ := mustOpen(t, dir, Config{Policy: SyncOff, SegmentBytes: 4 << 10}, nil)
	for b := 0; b < 200; b++ {
		if _, err := l.Append(putBatch(b*16, 16)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d (%v)", len(segs), err)
	}

	// Flip a payload byte in the first (sealed) segment.
	path := filepath.Join(dir, segs[0].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[segHdrSize+recHdrSize+5] ^= 0x40
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatalf("write: %v", err)
	}

	_, _, err = Open(dir, Config{Policy: SyncOff, SegmentBytes: 4 << 10}, func(uint64, []Op) {})
	if err == nil || !strings.Contains(err.Error(), "corrupt record in sealed segment") {
		t.Fatalf("Open = %v, want sealed-segment corruption error", err)
	}
}

// TestCheckpointBoundsReplay checkpoints mid-stream and asserts
// recovery loads the snapshot, skips covered segments, and replays
// only the records after the checkpoint — the bound that keeps
// recovery time proportional to the post-checkpoint suffix, not log
// length.
func TestCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	model := map[uint64]uint64{}
	snapshot := func(emit func(k, v uint64) error) error {
		for k, v := range model {
			if err := emit(k, v); err != nil {
				return err
			}
		}
		return nil
	}
	cfg := Config{Policy: SyncOff, SegmentBytes: 8 << 10, Snapshot: snapshot}
	l, _ := mustOpen(t, dir, cfg, nil)

	applyLocal := func(ops []Op) {
		for _, o := range ops {
			if o.Op == OpPut {
				model[o.Key] = o.Val
			} else {
				delete(model, o.Key)
			}
		}
	}
	const batches, per = 300, 16
	for b := 0; b < batches; b++ {
		ops := putBatch(b*per%4096, per) // overwrite keys so the model stays small
		seq, err := l.Append(ops)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		applyLocal(ops)
		l.NoteApplied(seq)
		// Two checkpoints: reclaim keeps the newest two, so segments
		// are only deleted once a second snapshot supersedes the first.
		if b == 99 || b == 199 {
			if err := l.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
	}
	st := l.Stats()
	if st.CheckpointSeq != 200 {
		t.Fatalf("checkpoint seq %d, want 200", st.CheckpointSeq)
	}
	if st.SegmentsReclaimed == 0 {
		t.Fatal("checkpoint reclaimed no segments")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c := newCollector()
	l2, rec := mustOpen(t, dir, cfg, c.apply)
	defer l2.Close()
	if rec.CheckpointSeq != 200 {
		t.Fatalf("recovered from checkpoint %d, want 200", rec.CheckpointSeq)
	}
	if rec.RecordsReplayed != batches-200 {
		t.Fatalf("replayed %d records, want %d (checkpoint did not bound replay)", rec.RecordsReplayed, batches-200)
	}
	if rec.LastSeq != batches {
		t.Fatalf("LastSeq %d, want %d", rec.LastSeq, batches)
	}
	if len(c.model) != len(model) {
		t.Fatalf("recovered model %d keys, want %d", len(c.model), len(model))
	}
	for k, v := range model {
		if c.model[k] != v {
			t.Fatalf("key %d = %d, want %d", k, c.model[k], v)
		}
	}
}

// TestGroupCommitInterval exercises the deferred-ack path: acks arrive
// only after an fsync covers the batch, and the durable watermark
// reflects it.
func TestGroupCommitInterval(t *testing.T) {
	var syncs atomic.Int64
	cfg := Config{
		Policy:   SyncInterval,
		Interval: time.Millisecond,
		SyncFile: func(f *os.File) error { syncs.Add(1); return f.Sync() },
	}
	l, _ := mustOpen(t, t.TempDir(), cfg, nil)
	defer l.Close()

	acks := make([]*ack, 20)
	for i := range acks {
		ops := putBatch(i*4, 4)
		seq, err := l.Append(ops)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		l.NoteApplied(seq)
		acks[i] = newAck()
		l.Commit(seq, len(ops), acks[i])
	}
	for i, a := range acks {
		if err := a.wait(t); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
	}
	if d := l.durable.Load(); d < 20 {
		t.Fatalf("durable watermark %d after acks, want >= 20", d)
	}
	if syncs.Load() == 0 {
		t.Fatal("no fsync ran before acks")
	}
	if p := l.pendingOps.Load(); p != 0 {
		t.Fatalf("pendingOps %d after all acks, want 0", p)
	}
}

// TestSyncAlwaysAcksInline: the always policy acks synchronously in
// Commit, after a sync that covers the batch.
func TestSyncAlwaysAcksInline(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), Config{Policy: SyncAlways}, nil)
	defer l.Close()
	seq, err := l.Append(putBatch(0, 4))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	a := newAck()
	l.Commit(seq, 4, a)
	select {
	case err := <-a.ch:
		if err != nil {
			t.Fatalf("commit: %v", err)
		}
	default:
		t.Fatal("always-policy Commit returned before acking")
	}
	if l.durable.Load() < seq {
		t.Fatalf("durable %d < seq %d after always-commit", l.durable.Load(), seq)
	}
}

// TestFsyncFailurePoisons: a failing fsync must error queued and
// future commits and appends (writes shed), not silently drop them.
func TestFsyncFailurePoisons(t *testing.T) {
	boom := errors.New("injected fsync failure")
	fail := atomic.Bool{}
	cfg := Config{
		Policy:   SyncInterval,
		Interval: time.Millisecond,
		SyncFile: func(f *os.File) error {
			if fail.Load() {
				return boom
			}
			return f.Sync()
		},
	}
	l, _ := mustOpen(t, t.TempDir(), cfg, nil)
	fail.Store(true)
	seq, err := l.Append(putBatch(0, 4))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	a := newAck()
	l.Commit(seq, 4, a)
	if err := a.wait(t); !errors.Is(err, boom) {
		t.Fatalf("commit err = %v, want injected failure", err)
	}
	if err := l.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want injected failure", err)
	}
	if _, err := l.Append(putBatch(0, 1)); !errors.Is(err, boom) {
		t.Fatalf("append after poison = %v, want injected failure", err)
	}
	// A commit registered after the failure still gets an error ack.
	a2 := newAck()
	l.Commit(seq, 4, a2)
	if err := a2.wait(t); !errors.Is(err, boom) {
		t.Fatalf("post-poison commit err = %v", err)
	}
	l.Close()
}

// TestLaggingBackpressure: with fsync stalled, appended-but-unsynced
// ops accumulate and Lagging trips at SyncQueueMax.
func TestLaggingBackpressure(t *testing.T) {
	gate := make(chan struct{})
	var gated atomic.Bool
	cfg := Config{
		Policy:       SyncInterval,
		Interval:     time.Millisecond,
		SyncQueueMax: 32,
		SyncFile: func(f *os.File) error {
			if gated.Load() {
				<-gate
			}
			return f.Sync()
		},
	}
	l, _ := mustOpen(t, t.TempDir(), cfg, nil)
	gated.Store(true)
	for i := 0; i < 6; i++ {
		seq, err := l.Append(putBatch(i*8, 8))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		l.Commit(seq, 8, newAck())
	}
	deadline := time.Now().Add(2 * time.Second)
	for !l.Lagging() {
		if time.Now().After(deadline) {
			t.Fatalf("Lagging never tripped; pending=%d", l.pendingOps.Load())
		}
		time.Sleep(time.Millisecond)
	}
	gated.Store(false)
	close(gate)
	deadline = time.Now().Add(2 * time.Second)
	for l.Lagging() {
		if time.Now().After(deadline) {
			t.Fatalf("Lagging stuck after fsync resumed; pending=%d", l.pendingOps.Load())
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
}

// TestRotationSealsDurable: rotation fsyncs the sealed segment under
// every policy, so records in non-last segments are durable even with
// fsync=off, and recovery of a multi-segment log is exact.
func TestRotationSealsDurable(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Config{Policy: SyncOff, SegmentBytes: 2 << 10}, nil)
	const batches = 100
	for b := 0; b < batches; b++ {
		if _, err := l.Append(putBatch(b*8, 8)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := l.Stats()
	if st.Rotations == 0 {
		t.Fatal("no rotation at 2KiB segments")
	}
	if st.DurableSeq == 0 {
		t.Fatal("rotation seal did not advance the durable watermark under fsync=off")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	c := newCollector()
	l2, rec := mustOpen(t, dir, Config{Policy: SyncOff, SegmentBytes: 2 << 10}, c.apply)
	defer l2.Close()
	if rec.RecordsReplayed != batches || rec.SegmentsScanned < 2 {
		t.Fatalf("recovery %+v, want %d records over >=2 segments", rec, batches)
	}
}

// TestSequenceBreakRefused: a checksum-valid record with the wrong
// sequence is corruption, even in the last segment.
func TestSequenceBreakRefused(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Config{Policy: SyncOff}, nil)
	for b := 0; b < 4; b++ {
		if _, err := l.Append(putBatch(b, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Rewrite record 3 with sequence 9, recomputing its checksum.
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recSize := recHdrSize + recFixed + 2*opPutSize
	off := segHdrSize + 2*recSize
	forged := appendRecord(nil, 9, putBatch(2, 2))
	copy(data[off:], forged)
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Config{Policy: SyncOff}, func(uint64, []Op) {})
	if err == nil || !strings.Contains(err.Error(), "record seq") {
		t.Fatalf("Open = %v, want sequence-break error", err)
	}
}

// TestBigBatchSplits: batches beyond maxOpsPerRecord split into
// multiple records and replay intact.
func TestBigBatchSplits(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Config{Policy: SyncOff}, nil)
	n := maxOpsPerRecord + 100
	seq, err := l.Append(putBatch(0, n))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if seq != 2 {
		t.Fatalf("split batch final seq %d, want 2", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	l2, _ := mustOpen(t, dir, Config{Policy: SyncOff}, c.apply)
	defer l2.Close()
	if c.records != 2 || c.ops != n {
		t.Fatalf("replayed %d records / %d ops, want 2 / %d", c.records, c.ops, n)
	}
}

// TestDiscardedCheckpointFallsBack: a corrupt newest checkpoint is
// skipped in favor of the older valid one.
func TestDiscardedCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	model := map[uint64]uint64{}
	cfg := Config{Policy: SyncOff, Snapshot: func(emit func(k, v uint64) error) error {
		for k, v := range model {
			if err := emit(k, v); err != nil {
				return err
			}
		}
		return nil
	}}
	l, _ := mustOpen(t, dir, cfg, nil)
	for b := 0; b < 10; b++ {
		ops := putBatch(b*4, 4)
		seq, err := l.Append(ops)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range ops {
			model[o.Key] = o.Val
		}
		l.NoteApplied(seq)
		if b == 4 || b == 8 {
			if err := l.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest checkpoint (seq 9).
	path := filepath.Join(dir, ckptName(9))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	l2, rec := mustOpen(t, dir, cfg, c.apply)
	defer l2.Close()
	if rec.CheckpointSeq != 5 || rec.CheckpointsDiscarded != 1 {
		t.Fatalf("recovery %+v, want fallback to checkpoint 5 with 1 discarded", rec)
	}
	if len(c.model) != len(model) {
		t.Fatalf("model %d keys, want %d", len(c.model), len(model))
	}
}

// TestAppendAllocs pins the append hot path at zero allocations per
// record: the encode buffer is pre-sized at Open and reused, per the
// //optiql:noalloc contract on appendOne.
func TestAppendAllocs(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), Config{Policy: SyncOff, SegmentBytes: 1 << 40}, nil)
	defer l.Close()
	ops := putBatch(0, 64)
	if _, err := l.Append(ops); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := l.Append(ops); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("Append allocates %.1f objects per 64-op batch, want 0", avg)
	}
}

// TestCheckpointReclaimsOldCheckpoints: the newest two checkpoint
// files survive (the older is the corruption fallback); anything
// before them is reclaimed.
func TestCheckpointReclaimsOldCheckpoints(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Policy: SyncOff, Snapshot: func(emit func(k, v uint64) error) error {
		return emit(1, 2)
	}}
	l, _ := mustOpen(t, dir, cfg, nil)
	for b := 0; b < 3; b++ {
		seq, err := l.Append(putBatch(0, 2))
		if err != nil {
			t.Fatal(err)
		}
		l.NoteApplied(seq)
		if err := l.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var cks []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "ckpt-") {
			cks = append(cks, e.Name())
		}
	}
	if len(cks) != 2 || cks[0] != ckptName(2) || cks[1] != ckptName(3) {
		t.Fatalf("checkpoint files after 3 checkpoints: %v, want [%s %s]", cks, ckptName(2), ckptName(3))
	}
}

// TestEmptyAppendNoop: appending nothing returns the current watermark
// and writes no record.
func TestEmptyAppendNoop(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), Config{Policy: SyncOff}, nil)
	defer l.Close()
	seq, err := l.Append(nil)
	if err != nil || seq != 0 {
		t.Fatalf("empty append = %d, %v", seq, err)
	}
	if st := l.Stats(); st.AppendedRecords != 0 {
		t.Fatalf("empty append wrote %d records", st.AppendedRecords)
	}
}

func TestBadPolicyRejected(t *testing.T) {
	_, _, err := Open(t.TempDir(), Config{Policy: "sometimes"}, func(uint64, []Op) {})
	if err == nil || !strings.Contains(err.Error(), "unknown fsync policy") {
		t.Fatalf("Open = %v, want policy error", err)
	}
}

// TestHeaderTornLastSegment: a last segment that lost even its header
// is discarded entirely and appends resume cleanly.
func TestHeaderTornLastSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Config{Policy: SyncOff, SegmentBytes: 2 << 10}, nil)
	for b := 0; b < 40; b++ {
		if _, err := l.Append(putBatch(b*8, 8)); err != nil {
			t.Fatal(err)
		}
	}
	lastSeq := l.Stats().AppendedSeq
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >=2 segments: %d %v", len(segs), err)
	}
	// Chop the last segment inside its header.
	lastSeg := segs[len(segs)-1]
	if err := os.Truncate(filepath.Join(dir, lastSeg.name), 5); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	l2, rec := mustOpen(t, dir, Config{Policy: SyncOff, SegmentBytes: 2 << 10}, c.apply)
	defer l2.Close()
	if rec.TornRecords != 1 {
		t.Fatalf("torn records %d, want 1 (the header)", rec.TornRecords)
	}
	if rec.LastSeq != lastSeg.firstSeq-1 {
		t.Fatalf("LastSeq %d, want %d", rec.LastSeq, lastSeg.firstSeq-1)
	}
	if rec.LastSeq >= lastSeq {
		t.Fatalf("LastSeq %d did not drop below pre-crash %d", rec.LastSeq, lastSeq)
	}
	seq, err := l2.Append(putBatch(0, 1))
	if err != nil || seq != rec.LastSeq+1 {
		t.Fatalf("resume append = %d, %v; want %d", seq, err, rec.LastSeq+1)
	}
	// The discarded file must not linger.
	if _, err := os.Stat(filepath.Join(dir, lastSeg.name)); err == nil {
		fi, _ := os.Stat(filepath.Join(dir, lastSeg.name))
		if fi.Size() != 0 && fi.Size() > segHdrSize {
			t.Fatalf("torn header segment still holds %d bytes", fi.Size())
		}
	}
}
