package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"optiql/internal/obs"
)

// Checkpoint file layout (ckpt-%016x.ck, named by covered sequence):
//
//	ckptMagic(8) seq(8) pair{N: key(8) val(8)} count(8) crc(4)
//
// crc is CRC32C over everything before it. The pair count rides in a
// trailer (not the header) so the writer streams the snapshot through
// the checksum without seeking; the reader has the file size and
// cross-checks the trailer against it. Files are written to a temp
// name, fsynced, renamed into place and the directory synced, so a
// crash mid-checkpoint leaves either the old snapshot or the new one,
// never a half-written file under a checkpoint name.

const ckptFixed = 8 + 8 + 8 + 4 // magic + seq + count + crc

// checkpoint snapshots the shard at the applied watermark, installs
// the snapshot, then reclaims fully covered segments and superseded
// snapshots. The snapshot is fuzzy in ARIES style: the scan runs
// concurrently with appends, but every record at or below the captured
// sequence is already applied when the scan starts, and replaying the
// idempotent PUT/DELETE records above it converges the index, so
// (snapshot, records > seq) reproduces exactly the logged state.
func (l *Log) checkpoint() error {
	if l.cfg.Snapshot == nil {
		return nil
	}
	seq := l.applied.Load()
	if seq == 0 || seq <= l.ckptSeq.Load() {
		return nil
	}

	tmp := filepath.Join(l.dir, "ckpt.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	h := crc32.New(castagnoli)
	out := io.MultiWriter(bw, h)

	var scratch [16]byte
	copy(scratch[:8], ckptMagic)
	binary.BigEndian.PutUint64(scratch[8:], seq)
	_, werr := out.Write(scratch[:16])
	var pairs uint64
	if werr == nil {
		werr = l.cfg.Snapshot(func(key, val uint64) error {
			binary.BigEndian.PutUint64(scratch[:8], key)
			binary.BigEndian.PutUint64(scratch[8:], val)
			if _, err := out.Write(scratch[:16]); err != nil {
				return err
			}
			pairs++
			return nil
		})
	}
	if werr == nil {
		binary.BigEndian.PutUint64(scratch[:8], pairs)
		_, werr = out.Write(scratch[:8])
	}
	if werr == nil {
		binary.BigEndian.PutUint32(scratch[:4], h.Sum32())
		_, werr = bw.Write(scratch[:4]) // crc is not part of its own coverage
	}
	if werr == nil {
		werr = bw.Flush()
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: write checkpoint: %w", werr)
	}
	final := filepath.Join(l.dir, ckptName(seq))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: install checkpoint: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}

	prev := l.ckptSeq.Swap(seq)
	l.ckptPairs.Store(pairs)
	l.statCkpt.Add(1)
	if c := l.cfg.Counters; c != nil {
		c.Inc(obs.EvWalCheckpoint)
	}
	l.cfg.Logf("wal: checkpoint at seq %d (%d pairs)", seq, pairs)
	return l.reclaim(prev, seq)
}

// reclaim deletes sealed segments wholly covered by the PREVIOUS
// checkpoint (prev) and checkpoint files older than it, then re-seeds
// the size trigger with the volume not covered by the new checkpoint
// (seq). Retaining the newest two checkpoints — and every segment the
// older one needs — keeps recovery sound if the newest snapshot turns
// out unreadable: the fallback checkpoint still has its full record
// suffix on disk.
func (l *Log) reclaim(prev, seq uint64) error {
	l.mu.Lock()
	active := l.segStart
	l.mu.Unlock()

	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	var live int64
	for i, s := range segs {
		reclaimable := i+1 < len(segs) && segs[i+1].firstSeq <= prev+1
		if reclaimable && s.firstSeq != active {
			if err := os.Remove(filepath.Join(l.dir, s.name)); err != nil {
				return fmt.Errorf("wal: reclaim segment: %w", err)
			}
			l.statReclaim.Add(1)
			if c := l.cfg.Counters; c != nil {
				c.Inc(obs.EvWalSegReclaim)
			}
			continue
		}
		coveredByNew := i+1 < len(segs) && segs[i+1].firstSeq <= seq+1
		if s.firstSeq != active && !coveredByNew {
			live += s.size
		}
	}
	l.bytesSince.Store(live)

	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, e := range ents {
		var cs uint64
		if n, err := fmt.Sscanf(e.Name(), "ckpt-%016x.ck", &cs); n == 1 && err == nil && e.Name() == ckptName(cs) && cs < prev {
			if err := os.Remove(filepath.Join(l.dir, e.Name())); err != nil {
				return fmt.Errorf("wal: reclaim checkpoint: %w", err)
			}
		}
	}
	return syncDir(l.dir)
}

// loadLatestCheckpoint finds the newest structurally valid checkpoint,
// feeds its pairs to apply (as PUTs at the checkpoint sequence) and
// returns its sequence and pair count. Invalid snapshot files — a
// crash can leave a stale temp file, but a renamed-in checkpoint
// should never be bad — are skipped with a notice, falling back to the
// next older one; with none valid, recovery replays from the log head.
func (l *Log) loadLatestCheckpoint(apply func(seq uint64, ops []Op)) (seq, pairs uint64, discarded int, err error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: %w", err)
	}
	var cands []uint64
	for _, e := range ents {
		var cs uint64
		if n, err := fmt.Sscanf(e.Name(), "ckpt-%016x.ck", &cs); n == 1 && err == nil && e.Name() == ckptName(cs) {
			cands = append(cands, cs)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] > cands[j] })
	for _, cs := range cands {
		path := filepath.Join(l.dir, ckptName(cs))
		n, lerr := loadCheckpointFile(path, cs, apply)
		if lerr == nil {
			return cs, n, discarded, nil
		}
		discarded++
		l.cfg.Logf("wal: discarding checkpoint %s: %v", ckptName(cs), lerr)
	}
	return 0, 0, discarded, nil
}

// loadCheckpointFile validates one snapshot file end-to-end before
// applying anything: pairs reach the index only after the trailer CRC
// held, so a bad snapshot cannot half-apply.
func loadCheckpointFile(path string, wantSeq uint64, apply func(seq uint64, ops []Op)) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) < ckptFixed {
		return 0, fmt.Errorf("file too short (%d bytes)", len(data))
	}
	if string(data[:8]) != ckptMagic {
		return 0, fmt.Errorf("bad magic")
	}
	body := data[:len(data)-4]
	crc := binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != crc {
		return 0, fmt.Errorf("checksum mismatch")
	}
	seq := binary.BigEndian.Uint64(data[8:16])
	if seq != wantSeq {
		return 0, fmt.Errorf("header seq %d disagrees with name", seq)
	}
	count := binary.BigEndian.Uint64(body[len(body)-8:])
	pairBytes := len(data) - ckptFixed
	if pairBytes < 0 || pairBytes%16 != 0 || uint64(pairBytes/16) != count {
		return 0, fmt.Errorf("trailer count %d disagrees with %d pair bytes", count, pairBytes)
	}
	pairs := data[16 : 16+pairBytes]
	ops := make([]Op, 0, maxOpsPerRecord)
	for len(pairs) > 0 {
		ops = append(ops, Op{
			Op:  OpPut,
			Key: binary.BigEndian.Uint64(pairs[:8]),
			Val: binary.BigEndian.Uint64(pairs[8:16]),
		})
		pairs = pairs[16:]
		if len(ops) == maxOpsPerRecord || len(pairs) == 0 {
			apply(seq, ops)
			ops = ops[:0]
		}
	}
	return count, nil
}
