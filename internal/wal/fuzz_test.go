package wal

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeg builds a well-formed single-segment log for seeding: header
// plus n one-op records starting at seq 1.
func fuzzSeg(n int) []byte {
	seg := make([]byte, 0, segHdrSize+n*(recFixed+opPutSize))
	seg = append(seg, segMagic...)
	seg = binary.BigEndian.AppendUint64(seg, 1)
	for i := 1; i <= n; i++ {
		seg = appendRecord(seg, uint64(i), []Op{{Op: OpPut, Key: uint64(i), Val: uint64(i * 3)}})
	}
	return seg
}

// FuzzWALReplay throws arbitrary bytes at the recovery scanner as the
// only (and therefore last, torn-tail-eligible) segment of a log. The
// invariants, whatever the input:
//
//  1. recovery never panics;
//  2. recovery never replays past a decode failure — everything it
//     applied came from the valid prefix, which re-encodes
//     byte-identically to what recovery left on disk;
//  3. recovery is idempotent — a second open over the recovered
//     directory replays exactly the same operations.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})                  // no file content at all
	f.Add([]byte(segMagic))          // header-only torn mid-write
	f.Add(fuzzSeg(0))                // record-free segment
	f.Add(fuzzSeg(3))                // clean small log
	f.Add(fuzzSeg(3)[:segHdrSize+5]) // torn first record
	f.Add(append(fuzzSeg(2), 0x13, 0x37) /* trailing garbage */)
	mut := fuzzSeg(4)
	mut[segHdrSize+recFixed+3] ^= 0x40 // corrupt op payload under a stale CRC
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		name := filepath.Join(dir, segName(1))
		if err := os.WriteFile(name, data, 0o666); err != nil {
			t.Fatal(err)
		}
		type rec struct {
			seq uint64
			ops []Op
		}
		var got []rec
		cfg := Config{Policy: SyncOff}
		l, st, err := Open(dir, cfg, func(seq uint64, ops []Op) {
			got = append(got, rec{seq, append([]Op(nil), ops...)})
		})
		if err != nil {
			// Refusing garbage is a valid outcome; replaying ops first and
			// then refusing would not be.
			if len(got) != 0 {
				t.Fatalf("open failed (%v) after applying %d records", err, len(got))
			}
			return
		}

		if err := l.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}

		// (2) The applied stream re-encodes to exactly the bytes recovery
		// kept: same header, same records, nothing beyond the truncation.
		// Checked after Close so the comparison also holds when recovery
		// replaced a record-free fuzz segment with a fresh active one
		// (whose header is buffered until the seal flushes it).
		want := make([]byte, 0, len(data))
		want = append(want, segMagic...)
		want = binary.BigEndian.AppendUint64(want, 1)
		for _, r := range got {
			want = appendRecord(want, r.seq, r.ops)
		}
		onDisk, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("read recovered segment: %v", err)
		}
		if !bytes.Equal(onDisk, want) {
			t.Fatalf("recovered segment diverges from re-encoded replay:\n disk %d bytes, re-encoded %d bytes (torn=%d records / %d bytes)",
				len(onDisk), len(want), st.TornRecords, st.TornBytes)
		}

		// (3) Idempotence: reopening replays the identical stream.
		var again []rec
		l2, _, err := Open(dir, cfg, func(seq uint64, ops []Op) {
			again = append(again, rec{seq, append([]Op(nil), ops...)})
		})
		if err != nil {
			t.Fatalf("reopen of recovered dir failed: %v", err)
		}
		defer l2.Close()
		if len(again) != len(got) {
			t.Fatalf("reopen replayed %d records, first open %d", len(again), len(got))
		}
		for i := range got {
			if again[i].seq != got[i].seq || len(again[i].ops) != len(got[i].ops) {
				t.Fatalf("record %d diverged across reopens", i)
			}
			for j := range got[i].ops {
				if again[i].ops[j] != got[i].ops[j] {
					t.Fatalf("record %d op %d diverged across reopens", i, j)
				}
			}
		}
	})
}
