package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"optiql/internal/obs"
)

// RecoveryStats summarizes one Open-time recovery pass.
type RecoveryStats struct {
	// CheckpointSeq / CheckpointPairs describe the snapshot recovery
	// started from (zero when no valid checkpoint existed);
	// CheckpointsDiscarded counts invalid snapshot files skipped.
	CheckpointSeq        uint64
	CheckpointPairs      uint64
	CheckpointsDiscarded int
	// SegmentsScanned / SegmentsSkipped partition the segment files:
	// skipped segments were wholly covered by the checkpoint.
	SegmentsScanned int
	SegmentsSkipped int
	// RecordsReplayed / OpsReplayed count records applied to the index
	// (records at or below the checkpoint sequence are verified but not
	// re-applied).
	RecordsReplayed uint64
	OpsReplayed     uint64
	// TornRecords / TornBytes describe the torn tail truncated from the
	// last segment, if any. A graceful shutdown leaves both zero.
	TornRecords int
	TornBytes   int64
	// LastSeq is the highest surviving record sequence (or the
	// checkpoint sequence if it is higher); appends resume after it.
	LastSeq uint64

	// liveBytes is the sealed-segment byte volume left uncovered by the
	// checkpoint, seeding the size-triggered checkpoint accumulator.
	liveBytes int64
}

// recover loads the newest valid checkpoint, replays newer records
// through apply, truncates a torn tail in the last segment and deletes
// a last segment that lost even its header. Decode failures anywhere
// else are corruption and abort recovery with an error: sealed
// segments were fsynced before their successor existed, so damage
// there cannot be a torn write.
func (l *Log) recover(apply func(seq uint64, ops []Op)) (RecoveryStats, error) {
	var rec RecoveryStats

	ckSeq, ckPairs, discarded, err := l.loadLatestCheckpoint(apply)
	if err != nil {
		return rec, err
	}
	rec.CheckpointSeq = ckSeq
	rec.CheckpointPairs = ckPairs
	rec.CheckpointsDiscarded = discarded
	rec.LastSeq = ckSeq

	segs, err := listSegments(l.dir)
	if err != nil {
		return rec, err
	}
	if len(segs) == 0 {
		return rec, nil
	}

	// A segment is skippable when its successor starts at or before
	// ckSeq+1: every record in it is covered by the checkpoint.
	firstNeeded := 0
	for firstNeeded+1 < len(segs) && segs[firstNeeded+1].firstSeq <= ckSeq+1 {
		firstNeeded++
	}
	rec.SegmentsSkipped = firstNeeded
	// Unconditional: with ckSeq == 0 this catches the silent-data-loss
	// shape where reclaimed segments outlived every valid checkpoint —
	// replaying only a suffix must fail, not "succeed".
	if segs[firstNeeded].firstSeq > ckSeq+1 {
		return rec, fmt.Errorf("wal: gap between checkpoint seq %d and first segment %s", ckSeq, segs[firstNeeded].name)
	}

	buf := make([]byte, recHdrSize+maxRecSize)
	ops := make([]Op, 0, maxOpsPerRecord)
	expect := segs[firstNeeded].firstSeq
	for i := firstNeeded; i < len(segs); i++ {
		s := segs[i]
		last := i == len(segs)-1
		if s.firstSeq != expect {
			return rec, fmt.Errorf("wal: segment %s starts at seq %d, want %d", s.name, s.firstSeq, expect)
		}
		next, err := l.scanSegment(s, last, ckSeq, buf, ops, apply, &rec)
		if err != nil {
			return rec, err
		}
		rec.SegmentsScanned++
		expect = next
	}
	if expect > 0 && expect-1 > rec.LastSeq {
		rec.LastSeq = expect - 1
	}

	// Re-list after truncation to seed the checkpoint accumulator and
	// clear the way for the fresh active segment: a (possibly torn)
	// segment that ended up record-free carries nothing, and its name
	// may collide with the segment Open is about to create.
	segs, err = listSegments(l.dir)
	if err != nil {
		return rec, err
	}
	for _, s := range segs {
		if s.size <= segHdrSize && s.firstSeq >= rec.LastSeq+1 {
			if err := os.Remove(filepath.Join(l.dir, s.name)); err != nil {
				return rec, fmt.Errorf("wal: %w", err)
			}
			continue
		}
		if s.firstSeq > ckSeq {
			rec.liveBytes += s.size
		}
	}
	if rec.TornRecords > 0 || rec.TornBytes > 0 {
		if err := syncDir(l.dir); err != nil {
			return rec, err
		}
	}
	return rec, nil
}

// scanSegment verifies every record in one segment, applying those
// newer than ckSeq, and returns the sequence expected after it. In the
// last segment a decode failure truncates the file at the failed
// record's start (torn tail); elsewhere it is fatal.
func (l *Log) scanSegment(s segInfo, isLast bool, ckSeq uint64, buf []byte, ops []Op, apply func(uint64, []Op), rec *RecoveryStats) (uint64, error) {
	path := filepath.Join(l.dir, s.name)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()

	torn := func(off int64, reason string) error {
		if !isLast {
			return fmt.Errorf("wal: corrupt record in sealed segment %s at offset %d: %s", s.name, off, reason)
		}
		rec.TornRecords++
		rec.TornBytes += s.size - off
		if c := l.cfg.Counters; c != nil {
			c.Inc(obs.EvWalTornTail)
		}
		l.cfg.Logf("wal: truncating torn tail of %s at offset %d (%d bytes): %s", s.name, off, s.size-off, reason)
		if err := f.Truncate(off); err != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("wal: sync truncated segment: %w", err)
		}
		return nil
	}

	// Header. A last segment too short for even the header is wholly a
	// torn creation; truncating to zero leaves a record-free file that
	// the caller removes.
	hdr := buf[:segHdrSize]
	if _, err := io.ReadFull(f, hdr); err != nil {
		return s.firstSeq, torn(0, "short segment header")
	}
	if string(hdr[:8]) != segMagic {
		return s.firstSeq, torn(0, "bad segment magic")
	}
	if got := binary.BigEndian.Uint64(hdr[8:]); got != s.firstSeq {
		return 0, fmt.Errorf("wal: segment %s: header seq %d disagrees with name", s.name, got)
	}

	br := bufio.NewReaderSize(f, 1<<20)
	off := int64(segHdrSize)
	expect := s.firstSeq
	for {
		if _, err := io.ReadFull(br, buf[:recHdrSize]); err != nil {
			if err == io.EOF {
				break // clean end of segment
			}
			return expect, torn(off, "short record header")
		}
		crc := binary.BigEndian.Uint32(buf[0:4])
		size := binary.BigEndian.Uint32(buf[4:8])
		if size < recFixed || size > maxRecSize {
			return expect, torn(off, fmt.Sprintf("record size %d out of range", size))
		}
		if _, err := io.ReadFull(br, buf[recHdrSize:recHdrSize+int(size)]); err != nil {
			return expect, torn(off, "short record body")
		}
		if got := crc32.Checksum(buf[4:recHdrSize+int(size)], castagnoli); got != crc {
			return expect, torn(off, "checksum mismatch")
		}
		seq := binary.BigEndian.Uint64(buf[8:16])
		count := binary.BigEndian.Uint32(buf[16:20])
		if seq != expect {
			// The checksum held, so these bytes are exactly what some
			// writer produced: a sequence break is corruption (or a
			// foreign file), never a torn write.
			return 0, fmt.Errorf("wal: segment %s offset %d: record seq %d, want %d", s.name, off, seq, expect)
		}
		decoded, err := parseOps(buf[recHdrSize+recFixed:recHdrSize+int(size)], count, ops)
		if err != nil {
			return 0, fmt.Errorf("wal: segment %s offset %d: %w", s.name, off, err)
		}
		ops = decoded
		if seq > ckSeq {
			apply(seq, ops)
			rec.RecordsReplayed++
			rec.OpsReplayed += uint64(len(ops))
			if c := l.cfg.Counters; c != nil {
				c.Inc(obs.EvWalReplayRec)
				c.Add(obs.EvWalReplayOps, uint64(len(ops)))
			}
		}
		expect = seq + 1
		off += recHdrSize + int64(size)
	}
	return expect, nil
}
