package server

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"optiql/internal/obs"
	"optiql/internal/obs/trace"
	"optiql/internal/server/wire"
	"optiql/internal/workload"
)

// TestTraceContentionE2E drives a traced 2-shard server with a
// Zipfian GET/PUT mix and checks the whole profiler path: the
// /debug/contention endpoint must rank the client-side hottest key
// first, report one lock-wait/queue section per shard, and the Chrome
// export must be valid stitched JSON.
func TestTraceContentionE2E(t *testing.T) {
	s, addr := startServer(t, Config{
		Index:  "btree",
		Shards: 2,
		Trace:  &trace.Config{SampleEvery: 1, BufCap: 4096, TopK: 64},
	})

	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Preload a dense population.
	const records = 1024
	for at := 0; at < records; at += 256 {
		var sub []wire.Request
		for i := at; i < at+256; i++ {
			sub = append(sub, wire.Put(uint64(i+1), uint64(i+1)))
		}
		if _, err := cl.Do(wire.Batch(sub...)); err != nil {
			t.Fatal(err)
		}
	}

	// Zipfian-skewed traffic, tracking the true hottest key client-side.
	zipf := workload.NewZipfian(records, 0.99)
	rng := workload.NewRNG(7)
	counts := make(map[uint64]uint64)
	for b := 0; b < 40; b++ {
		var sub []wire.Request
		for i := 0; i < 512; i++ {
			k := zipf.Next(rng) + 1
			counts[k]++
			if i%8 == 0 {
				sub = append(sub, wire.Put(k, k))
			} else {
				sub = append(sub, wire.Get(k))
			}
		}
		if _, err := cl.Do(wire.Batch(sub...)); err != nil {
			t.Fatal(err)
		}
	}
	var hottest, hotCount uint64
	for k, n := range counts {
		if n > hotCount || (n == hotCount && k < hottest) {
			hottest, hotCount = k, n
		}
	}

	// Scrape the live endpoint exactly as an operator would.
	var src obs.LiveSource
	s.AttachLive(&src)
	rr := httptest.NewRecorder()
	mux := obs.NewMux(&src)
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/contention", nil))
	var rep obs.ContentionReport
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatalf("contention endpoint returned invalid JSON: %v\n%s", err, rr.Body.String())
	}

	if rep.SampleEvery != 1 {
		t.Fatalf("SampleEvery = %d, want 1", rep.SampleEvery)
	}
	if rep.Spans == 0 {
		t.Fatal("no spans recorded")
	}
	if len(rep.HotKeys) == 0 {
		t.Fatal("no hot keys reported")
	}
	if rep.HotKeys[0].Key != hottest {
		t.Fatalf("top hot key = %d (count %d), want client-side hottest %d (count %d)",
			rep.HotKeys[0].Key, rep.HotKeys[0].Count, hottest, hotCount)
	}
	if len(rep.Shards) != 2 {
		t.Fatalf("Shards len = %d, want 2", len(rep.Shards))
	}
	if len(rep.QueueDepth) != 2 {
		t.Fatalf("QueueDepth len = %d, want 2", len(rep.QueueDepth))
	}
	// Every PUT goes through an executor whose exclusive acquire is
	// traced at SampleEvery=1, so the merged lock-wait histogram must
	// have samples.
	if rep.LockWait == nil || rep.LockWait.Count == 0 {
		t.Fatal("merged lock-wait histogram is empty")
	}

	// The Chrome export must parse and contain stitched request trees:
	// at least one decode span and one executor-side span sharing IDs.
	var cb []byte
	{
		w := &traceBuf{}
		if err := s.Tracer().WriteChrome(w); err != nil {
			t.Fatal(err)
		}
		cb = w.b
	}
	if !json.Valid(cb) {
		t.Fatalf("Chrome export is invalid JSON: %.200s", cb)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(cb, &doc); err != nil {
		t.Fatal(err)
	}
	spanIDs := make(map[string]map[float64]bool) // name -> span ids seen
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		id, ok := ev.Args["span"].(float64)
		if !ok || id == 0 {
			continue
		}
		if spanIDs[ev.Name] == nil {
			spanIDs[ev.Name] = make(map[float64]bool)
		}
		spanIDs[ev.Name][id] = true
	}
	if len(spanIDs["req.decode"]) == 0 {
		t.Fatal("no req.decode spans in Chrome export")
	}
	stitched := false
	for id := range spanIDs["req.exec"] {
		if spanIDs["req.decode"][id] {
			stitched = true
			break
		}
	}
	if !stitched {
		t.Fatal("no request stitched across decode and exec phases")
	}
}

// waitFor polls cond until true or the deadline, failing the test on
// timeout.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// traceBuf is a minimal io.Writer accumulating the Chrome export.
type traceBuf struct{ b []byte }

func (w *traceBuf) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }

// TestTraceDisabledServer: with no Trace config the tracer accessors
// are nil/no-op and the contention endpoint reports disabled.
func TestTraceDisabledServer(t *testing.T) {
	s, addr := startServer(t, Config{Index: "btree", Shards: 1})
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Do(wire.Put(1, 1)); err != nil {
		t.Fatal(err)
	}
	if s.Tracer() != nil {
		t.Fatal("Tracer() non-nil without Trace config")
	}
	if s.Contention() != nil {
		t.Fatal("Contention() non-nil without Trace config")
	}
	var src obs.LiveSource
	s.AttachLive(&src)
	rr := httptest.NewRecorder()
	obs.NewMux(&src).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/contention", nil))
	var m map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if en, ok := m["enabled"].(bool); !ok || en {
		t.Fatalf("want {\"enabled\":false}, got %s", rr.Body.String())
	}
}

// TestConnBufRecycling: connection trace buffers must be recycled
// through the free list rather than growing the tracer's buffer set
// per connection.
func TestConnBufRecycling(t *testing.T) {
	s, addr := startServer(t, Config{
		Index:  "btree",
		Shards: 1,
		Trace:  &trace.Config{SampleEvery: 1, BufCap: 64},
	})
	for i := 0; i < 8; i++ {
		cl, err := wire.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Do(wire.Put(uint64(i+1), 1)); err != nil {
			t.Fatal(err)
		}
		cl.Close()
		// Wait for the writer to return the buffer before the next dial.
		waitFor(t, func() bool {
			s.tbMu.Lock()
			free := len(s.tbFree)
			s.tbMu.Unlock()
			return free >= 1
		})
	}
	s.tbMu.Lock()
	free := len(s.tbFree)
	s.tbMu.Unlock()
	if free != 1 {
		t.Fatalf("free list holds %d buffers after serial connections, want 1", free)
	}
}
