package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"optiql/internal/indextest"
	"optiql/internal/server/wire"
	"optiql/internal/workload"
)

// testScheme picks an optimistic scheme normally and a pessimistic one
// under the race detector (optimistic reads are racy by design; the
// server machinery itself — framing, routing, batching, shutdown — is
// scheme-independent and keeps full race coverage).
func testScheme() string {
	if indextest.RaceEnabled {
		return "MCS-RW"
	}
	return "OptiQL"
}

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	if cfg.Scheme == "" {
		cfg.Scheme = testScheme()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, addr.String()
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Index: "skiplist"}); err == nil {
		t.Fatal("New accepted an unknown index kind")
	}
	if _, err := New(Config{Scheme: "nope"}); err == nil {
		t.Fatal("New accepted an unknown scheme")
	}
}

func TestBasicOps(t *testing.T) {
	for _, kind := range []string{"btree", "art"} {
		t.Run(kind, func(t *testing.T) {
			_, addr := startServer(t, Config{Index: kind, Shards: 4})
			cl, err := wire.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			do := func(r wire.Request) wire.Response {
				t.Helper()
				resp, err := cl.Do(r)
				if err != nil {
					t.Fatalf("%+v: %v", r, err)
				}
				return resp
			}
			if r := do(wire.Get(42)); r.Status != wire.StatusNotFound {
				t.Fatalf("get of missing key = %+v", r)
			}
			if r := do(wire.Put(42, 7)); r.Status != wire.StatusOK || !r.Inserted {
				t.Fatalf("first put = %+v", r)
			}
			if r := do(wire.Put(42, 8)); r.Status != wire.StatusOK || r.Inserted {
				t.Fatalf("overwrite put = %+v", r)
			}
			if r := do(wire.Get(42)); r.Status != wire.StatusOK || r.Value != 8 {
				t.Fatalf("get after put = %+v", r)
			}
			for i := uint64(0); i < 100; i++ {
				do(wire.Put(100+i, i))
			}
			r := do(wire.Scan(100, 50))
			if r.Status != wire.StatusOK || len(r.Pairs) != 50 {
				t.Fatalf("scan = status %d, %d pairs", r.Status, len(r.Pairs))
			}
			for i, kv := range r.Pairs {
				if kv.Key != 100+uint64(i) || kv.Value != uint64(i) {
					t.Fatalf("scan pair %d = %+v", i, kv)
				}
			}
			if r := do(wire.Del(42)); r.Status != wire.StatusOK {
				t.Fatalf("delete = %+v", r)
			}
			if r := do(wire.Del(42)); r.Status != wire.StatusNotFound {
				t.Fatalf("double delete = %+v", r)
			}
			b := do(wire.Batch(wire.Put(1, 10), wire.Put(2, 20), wire.Get(1000)))
			if b.Status != wire.StatusOK || len(b.Sub) != 3 {
				t.Fatalf("batch = %+v", b)
			}
			if !b.Sub[0].Inserted || !b.Sub[1].Inserted || b.Sub[2].Status != wire.StatusNotFound {
				t.Fatalf("batch subs = %+v", b.Sub)
			}
			// Two scans in one batch: each result rides its own pooled
			// buffer on the same pending, released together after encode.
			b = do(wire.Batch(wire.Scan(100, 3), wire.Get(1), wire.Scan(150, 3)))
			if b.Status != wire.StatusOK || len(b.Sub) != 3 {
				t.Fatalf("scan batch = %+v", b)
			}
			for i, want := range []uint64{100, 150} {
				sub := b.Sub[i*2]
				if sub.Status != wire.StatusOK || len(sub.Pairs) != 3 || sub.Pairs[0].Key != want {
					t.Fatalf("scan batch sub[%d] = %+v", i*2, sub)
				}
			}
			if b.Sub[1].Value != 10 {
				t.Fatalf("get between scans = %+v", b.Sub[1])
			}
		})
	}
}

// TestProtocolErrorAnswered verifies a malformed frame gets a final
// StatusErr response before the server closes the connection.
func TestProtocolErrorAnswered(t *testing.T) {
	_, addr := startServer(t, Config{})
	// Frame of one byte: opcode 99, which ParseRequest rejects.
	resp, err := rawExchange(addr, []byte{0, 0, 0, 1, 99})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusErr || resp.Err == "" {
		t.Fatalf("malformed request answered with %+v", resp)
	}
}

// rawExchange writes raw bytes and decodes the single response frame.
// StatusErr responses decode identically for every opcode, so a GET
// request shape suffices.
func rawExchange(addr string, frame []byte) (wire.Response, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return wire.Response{}, err
	}
	defer nc.Close()
	if _, err := nc.Write(frame); err != nil {
		return wire.Response{}, err
	}
	var buf []byte
	payload, err := wire.ReadFrame(bufio.NewReader(nc), &buf)
	if err != nil {
		return wire.Response{}, err
	}
	req := wire.Get(0)
	return wire.ParseResponse(payload, &req)
}

// TestPipelinedE2E drives the full acceptance mix: >=4 shards, >=8
// concurrent pipelined clients, gets/puts/deletes/scans/batches, then
// checks the server's counters against the clients' own tallies and
// the resident keys against per-client oracles.
func TestPipelinedE2E(t *testing.T) {
	for _, kind := range []string{"btree", "art"} {
		t.Run(kind, func(t *testing.T) {
			srv, addr := startServer(t, Config{Index: kind, Shards: 4, BatchMax: 32})

			const clients = 8
			ops := 1200
			if testing.Short() {
				ops = 300
			}
			tallies := make([]e2eTally, clients)
			oracles := make([]map[uint64]uint64, clients)
			errs := make(chan error, clients)
			var wg sync.WaitGroup
			for w := 0; w < clients; w++ {
				w := w
				oracles[w] = make(map[uint64]uint64)
				wg.Add(1)
				go func() {
					defer wg.Done()
					errs <- runE2EWorker(w, addr, ops, &tallies[w], oracles[w])
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}

			var want e2eTally
			wantLen := 0
			for w := range tallies {
				want.gets += tallies[w].gets
				want.puts += tallies[w].puts
				want.deletes += tallies[w].deletes
				want.scans += tallies[w].scans
				want.batches += tallies[w].batches
				want.subops += tallies[w].subops
				wantLen += len(oracles[w])
			}
			st := srv.Stats()
			if st.Gets != want.gets || st.Puts != want.puts || st.Deletes != want.deletes ||
				st.Scans != want.scans || st.Batches != want.batches || st.Ops != want.subops {
				t.Fatalf("server stats %+v, clients observed %+v", st, want)
			}
			if st.Conns != clients {
				t.Fatalf("conns = %d, want %d", st.Conns, clients)
			}
			if srv.Len() != wantLen {
				t.Fatalf("resident keys = %d, oracles hold %d", srv.Len(), wantLen)
			}
			if srv.Counters().Total() == 0 {
				t.Fatal("lock event counters all zero after a full e2e run")
			}
		})
	}
}

// e2eTally counts the wire operations one worker issued, by kind.
type e2eTally struct{ gets, puts, deletes, scans, batches, subops uint64 }

// runE2EWorker drives one pipelined connection over its own key stripe
// (keys carry the worker id in the top bits, so stripes are disjoint
// and every response is checkable against the local oracle even though
// all clients churn the same shards).
func runE2EWorker(w int, addr string, ops int, tl *e2eTally, oracle map[uint64]uint64) error {
	cl, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	base := uint64(w) << 32
	rng := workload.NewRNG(uint64(w)*0x9E3779B97F4A7C15 + 1)

	type sent struct{ req wire.Request }
	var window []sent
	const pipeline = 16

	var check func(s sent, resp wire.Response) error
	check = func(s sent, resp wire.Response) error {
		switch s.req.Op {
		case wire.OpPut:
			_, had := oracle[s.req.Key]
			if resp.Status != wire.StatusOK || resp.Inserted != !had {
				return fmt.Errorf("worker %d: put(%#x) = %+v, oracle had=%v", w, s.req.Key, resp, had)
			}
			oracle[s.req.Key] = s.req.Value
		case wire.OpDelete:
			_, had := oracle[s.req.Key]
			wantSt := wire.StatusOK
			if !had {
				wantSt = wire.StatusNotFound
			}
			if resp.Status != wantSt {
				return fmt.Errorf("worker %d: del(%#x) status %d, oracle had=%v", w, s.req.Key, resp.Status, had)
			}
			delete(oracle, s.req.Key)
		case wire.OpGet:
			want, had := oracle[s.req.Key]
			if had && (resp.Status != wire.StatusOK || resp.Value != want) {
				return fmt.Errorf("worker %d: get(%#x) = %+v, oracle says %d", w, s.req.Key, resp, want)
			}
			if !had && resp.Status != wire.StatusNotFound {
				return fmt.Errorf("worker %d: get(%#x) = %+v, oracle says absent", w, s.req.Key, resp)
			}
		case wire.OpScan:
			if resp.Status != wire.StatusOK || len(resp.Pairs) > int(s.req.Max) {
				return fmt.Errorf("worker %d: scan = status %d, %d pairs (max %d)", w, resp.Status, len(resp.Pairs), s.req.Max)
			}
			for i, kv := range resp.Pairs {
				if kv.Key < s.req.Key || (i > 0 && kv.Key <= resp.Pairs[i-1].Key) {
					return fmt.Errorf("worker %d: scan unsorted at %d", w, i)
				}
				// Own-stripe pairs must carry current oracle values: our
				// stripe cannot change while our sequential reader waits.
				if kv.Key>>32 == uint64(w) {
					if want, ok := oracle[kv.Key]; !ok || want != kv.Value {
						return fmt.Errorf("worker %d: scan saw own key %#x = %d, oracle says (%d, %v)", w, kv.Key, kv.Value, want, ok)
					}
				}
			}
		case wire.OpBatch:
			if resp.Status != wire.StatusOK || len(resp.Sub) != len(s.req.Sub) {
				return fmt.Errorf("worker %d: batch = %+v", w, resp)
			}
			for i := range resp.Sub {
				// Batch sub-ops are all puts on distinct keys here, so
				// ordering inside the batch doesn't matter.
				if err := check(sent{s.req.Sub[i]}, resp.Sub[i]); err != nil {
					return err
				}
			}
		}
		return nil
	}

	recvOne := func() error {
		s := window[0]
		window = window[1:]
		resp, err := cl.Recv()
		if err != nil {
			return fmt.Errorf("worker %d: recv: %w", w, err)
		}
		return check(s, resp)
	}

	for i := 0; i < ops; i++ {
		var req wire.Request
		k := base | rng.Uint64n(512)
		switch rng.Uint64n(10) {
		case 0, 1, 2: // put
			req = wire.Put(k, rng.Uint64())
			tl.puts++
			tl.subops++
		case 3: // delete
			req = wire.Del(k)
			tl.deletes++
			tl.subops++
		case 4, 5, 6, 7: // get
			req = wire.Get(k)
			tl.gets++
			tl.subops++
		case 8: // scan from own stripe
			req = wire.Scan(base, uint32(rng.Uint64n(64))+1)
			tl.scans++
			tl.subops++
		case 9: // batch of puts on distinct keys
			n := int(rng.Uint64n(6)) + 2
			sub := make([]wire.Request, n)
			for j := range sub {
				sub[j] = wire.Put(base|uint64(1024+i*8+j), rng.Uint64())
			}
			req = wire.Batch(sub...)
			tl.batches++
			tl.puts += uint64(n)
			tl.subops += uint64(n)
		}
		if err := cl.Send(req); err != nil {
			return fmt.Errorf("worker %d: send: %w", w, err)
		}
		window = append(window, sent{req})
		for len(window) >= pipeline {
			if err := recvOne(); err != nil {
				return err
			}
		}
	}
	for len(window) > 0 {
		if err := recvOne(); err != nil {
			return err
		}
	}
	return nil
}

// TestShutdownDrainsAdmittedBatches races Shutdown against a client
// pipelining batches of puts. The contract: an admitted batch is fully
// applied and fully answered; an unread one is neither. So the client
// must see an in-order prefix of OK batch responses, and the server's
// put counter and resident keys must match that prefix exactly.
func TestShutdownDrainsAdmittedBatches(t *testing.T) {
	srv, addr := startServer(t, Config{Shards: 4, BatchMax: 8})
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const batches, per = 60, 20
	for i := 0; i < batches; i++ {
		sub := make([]wire.Request, per)
		for j := range sub {
			k := uint64(i*per + j)
			sub[j] = wire.Put(k, k+1)
		}
		if err := cl.Send(wire.Batch(sub...)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.CloseWrite(); err != nil {
		t.Fatal(err)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	answered := 0
	for cl.Pending() > 0 {
		resp, err := cl.Recv()
		if err != nil {
			break // connection closed after the admitted prefix
		}
		if resp.Status != wire.StatusOK || len(resp.Sub) != per {
			t.Fatalf("batch %d = status %d, %d subs", answered, resp.Status, len(resp.Sub))
		}
		for j, sub := range resp.Sub {
			if sub.Status != wire.StatusOK || !sub.Inserted {
				t.Fatalf("batch %d sub %d = %+v", answered, j, sub)
			}
		}
		answered++
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	st := srv.Stats()
	if st.Puts != uint64(answered*per) {
		t.Fatalf("server applied %d puts, client saw %d batches acknowledged (%d puts): an admitted batch was dropped or a dropped one applied",
			st.Puts, answered, answered*per)
	}
	if srv.Len() != answered*per {
		t.Fatalf("resident keys = %d, want %d", srv.Len(), answered*per)
	}
	if st.Batches != uint64(answered) {
		t.Fatalf("batch envelopes = %d, answered %d", st.Batches, answered)
	}
}

// TestShutdownUnblocksIdleConn: a connection with no traffic must not
// stall Shutdown.
func TestShutdownUnblocksIdleConn(t *testing.T) {
	srv, addr := startServer(t, Config{})
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(10 * time.Millisecond) // let the server admit the conn
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown blocked on an idle connection: %v", err)
	}
}

// TestReadYourWrites: a get pipelined immediately behind a put on the
// same connection must observe it.
func TestReadYourWrites(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 8})
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const n = 500
	for i := uint64(0); i < n; i++ {
		if err := cl.Send(wire.Put(i, i*3)); err != nil {
			t.Fatal(err)
		}
		if err := cl.Send(wire.Get(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if put, err := cl.Recv(); err != nil || put.Status != wire.StatusOK {
			t.Fatalf("put %d = %+v, %v", i, put, err)
		}
		get, err := cl.Recv()
		if err != nil || get.Status != wire.StatusOK || get.Value != i*3 {
			t.Fatalf("get %d = %+v, %v (read-your-writes violated)", i, get, err)
		}
	}
}
