package server

import (
	"context"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optiql/internal/faults"
	"optiql/internal/server/wire"
	"optiql/internal/wal"
)

// walConfig is the base durability config the tests share: tiny
// segments and an aggressive checkpoint trigger so rotation, reclaim
// and checkpointing all fire within a few hundred writes.
func walConfig(dir, kind, policy string) Config {
	return Config{
		Index:              kind,
		Shards:             2,
		WALDir:             dir,
		Fsync:              policy,
		FsyncInterval:      time.Millisecond,
		WALSegmentBytes:    4 << 10,
		WALCheckpointBytes: 16 << 10,
	}
}

// TestWALDurableRestart writes through the wire protocol, shuts down
// gracefully, restarts a fresh server on the same WAL dir and asserts
// every acked write (including deletes) is observable — for both index
// kinds and all three fsync policies.
func TestWALDurableRestart(t *testing.T) {
	for _, kind := range []string{"btree", "art"} {
		for _, policy := range []string{wal.SyncAlways, wal.SyncInterval, wal.SyncOff} {
			t.Run(kind+"/"+policy, func(t *testing.T) {
				if kind == "art" && testing.Short() {
					t.Skip("short: btree covers the art-independent wal path")
				}
				dir := t.TempDir()
				srv, addr := startServer(t, walConfig(dir, kind, policy))
				cl, err := wire.Dial(addr)
				if err != nil {
					t.Fatal(err)
				}
				const n = 500
				for i := uint64(1); i <= n; i++ {
					r, err := cl.Do(wire.Put(i, i*7))
					if err != nil || r.Status != wire.StatusOK {
						t.Fatalf("put %d: %+v %v", i, r, err)
					}
				}
				for i := uint64(1); i <= n; i += 5 {
					r, err := cl.Do(wire.Del(i))
					if err != nil || r.Status != wire.StatusOK {
						t.Fatalf("delete %d: %+v %v", i, r, err)
					}
				}
				cl.Close()
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := srv.Shutdown(ctx); err != nil {
					t.Fatalf("shutdown: %v", err)
				}

				srv2, addr2 := startServer(t, walConfig(dir, kind, policy))
				for _, rec := range srv2.WALRecovery() {
					if rec.TornRecords != 0 || rec.TornBytes != 0 {
						t.Fatalf("graceful shutdown left a torn tail: %+v", rec)
					}
				}
				cl2, err := wire.Dial(addr2)
				if err != nil {
					t.Fatal(err)
				}
				defer cl2.Close()
				for i := uint64(1); i <= n; i++ {
					r, err := cl2.Do(wire.Get(i))
					if err != nil {
						t.Fatalf("get %d: %v", i, err)
					}
					if i%5 == 1 {
						if r.Status != wire.StatusNotFound {
							t.Fatalf("deleted key %d resurrected: %+v", i, r)
						}
						continue
					}
					if r.Status != wire.StatusOK || r.Value != i*7 {
						t.Fatalf("key %d lost or wrong after restart: %+v", i, r)
					}
				}
				rep := srv2.WALReport()
				if rep == nil || !rep.Enabled {
					t.Fatal("WALReport disabled on a WAL-backed server")
				}
				if rep.ReplayedOps == 0 && rep.CheckpointPairs == 0 {
					t.Fatalf("restart replayed nothing: %+v", rep)
				}
			})
		}
	}
}

// TestWALCheckpointUnderLoad drives enough writes through tiny
// segments that size-triggered background checkpoints and segment
// reclaim fire while serving, then restarts and verifies the state.
func TestWALCheckpointUnderLoad(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(dir, "btree", wal.SyncOff)
	srv, addr := startServer(t, cfg)
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	for i := uint64(0); i < n; i++ {
		// Overwrite a small key space so checkpoints stay small while the
		// log grows.
		r, err := cl.Do(wire.Put(i%512, i))
		if err != nil || r.Status != wire.StatusOK {
			t.Fatalf("put: %+v %v", r, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep := srv.WALReport()
		if rep.Checkpoints > 0 && rep.SegmentsReclaimed > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no background checkpoint/reclaim: %+v", rep)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	srv2, addr2 := startServer(t, cfg)
	var replayBounded bool
	for _, rec := range srv2.WALRecovery() {
		if rec.CheckpointSeq > 0 {
			replayBounded = true
		}
	}
	if !replayBounded {
		t.Fatal("restart found no checkpoint to bound replay")
	}
	cl2, err := wire.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	for k := uint64(0); k < 512; k++ {
		want := (n-1-k)/512*512 + k // last i < n with i%512 == k
		r, err := cl2.Do(wire.Get(k))
		if err != nil || r.Status != wire.StatusOK || r.Value != want {
			t.Fatalf("key %d = %+v %v, want value %d", k, r, err, want)
		}
	}
}

// TestWALLagShedsOverloaded gates fsync shut so group-commit debt
// piles up past SyncQueueMax, asserts new writes are answered
// StatusOverloaded while the queued ones are merely delayed, then
// opens the gate and asserts both the delayed acks and new writes
// come back StatusOK.
func TestWALLagShedsOverloaded(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(dir, "btree", wal.SyncInterval)
	cfg.WALSyncQueueMax = 4
	cfg.WALSegmentBytes = 1 << 20 // no rotation: its seal fsync would hit the gate
	cfg.WALCheckpointBytes = 0    // no background checkpoints for the same reason
	var stall atomic.Bool
	release := make(chan struct{})
	var once sync.Once
	open := func() { once.Do(func() { close(release) }) }
	defer open() // Shutdown's final seal must not hang on the gate
	cfg.WALSyncFile = func(f *os.File) error {
		if stall.Load() {
			<-release
		}
		return f.Sync()
	}
	srv, addr := startServer(t, cfg)
	clA, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer clA.Close()
	clA.SetTimeout(20 * time.Second)

	stall.Store(true)
	// Pipeline a burst whose acks are stuck behind the gated fsync.
	const burst = 64
	for i := uint64(0); i < burst; i++ {
		if err := clA.Send(wire.Put(i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := clA.Flush(); err != nil {
		t.Fatal(err)
	}
	// Wait until every shard's fsync debt is over budget.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep := srv.WALReport()
		over := len(rep.PendingOps) > 0
		for _, p := range rep.PendingOps {
			if p <= int64(cfg.WALSyncQueueMax) {
				over = false
			}
		}
		if over {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fsync debt never crossed the budget: %+v", rep)
		}
		time.Sleep(time.Millisecond)
	}
	// A second connection's writes now shed deterministically.
	clB, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer clB.Close()
	for i := uint64(0); i < 8; i++ {
		r, err := clB.Do(wire.Put(100+i, i))
		if err != nil {
			t.Fatalf("put during lag: %v", err)
		}
		if r.Status != wire.StatusOverloaded {
			t.Fatalf("put during lag = %+v, want StatusOverloaded", r)
		}
	}
	if rep := srv.WALReport(); rep.LagSheds == 0 {
		t.Fatalf("shed writes not counted in report: %+v", rep)
	}
	// Open the gate: the stuck burst commits and acks OK.
	open()
	for i := 0; i < burst; i++ {
		r, err := clA.Recv()
		if err != nil || r.Status != wire.StatusOK {
			t.Fatalf("queued write %d after gate opened = %+v %v, want OK", i, r, err)
		}
	}
	// And new writes succeed again.
	r, err := clB.Do(wire.Put(200, 1))
	if err != nil || r.Status != wire.StatusOK {
		t.Fatalf("put after recovery = %+v %v", r, err)
	}
}

// TestWALFsyncFailurePoisons kills the disk mid-run
// (faults.FailSyncAfter) and asserts the poisoned log sheds all
// writes with StatusErr while reads keep serving what was applied.
func TestWALFsyncFailurePoisons(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(dir, "btree", wal.SyncAlways)
	cfg.WALCheckpointBytes = 0 // keep the sync budget for the append path
	cfg.WALSyncFile = faults.FailSyncAfter(8)
	srv, addr := startServer(t, cfg)
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var acked []uint64
	deadline := time.Now().Add(10 * time.Second)
	for i := uint64(1); ; i++ {
		if time.Now().After(deadline) {
			t.Fatal("fsync budget never exhausted")
		}
		r, err := cl.Do(wire.Put(i, i))
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if r.Status == wire.StatusOK {
			acked = append(acked, i)
			continue
		}
		if r.Status != wire.StatusErr || !strings.Contains(r.Err, "fsync failure") {
			t.Fatalf("put %d = %+v, want wal fsync error", i, r)
		}
		break
	}
	if len(acked) == 0 {
		t.Fatal("no write committed before the disk died")
	}
	// Poison is sticky: every further write is refused up front...
	for i := 0; i < 4; i++ {
		r, err := cl.Do(wire.Put(9999, 1))
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != wire.StatusErr {
			t.Fatalf("write on poisoned log = %+v, want StatusErr", r)
		}
	}
	// ...but reads keep serving every previously acked write.
	for _, k := range acked {
		r, err := cl.Do(wire.Get(k))
		if err != nil || r.Status != wire.StatusOK || r.Value != k {
			t.Fatalf("read %d on poisoned log = %+v %v", k, r, err)
		}
	}
	if err := srv.shards[0].wal.Err(); err == nil && srv.shards[1].wal.Err() == nil {
		t.Fatal("no shard log reports the sticky error")
	}
}

// TestWALShardMismatchRefused: reopening a WAL dir with a different
// shard count must fail loudly, not misroute replay.
func TestWALShardMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(dir, "btree", wal.SyncOff)
	srv, _ := startServer(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Shards = 3
	bad.Scheme = testScheme()
	bad.Addr = "127.0.0.1:0"
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), "refusing to misroute") {
		t.Fatalf("New with mismatched shard count = %v, want misroute refusal", err)
	}
}

// TestWALReadYourWrites: a GET after a logged PUT on the same
// connection observes it even though the ack was fsync-deferred.
func TestWALReadYourWrites(t *testing.T) {
	dir := t.TempDir()
	_, addr := startServer(t, walConfig(dir, "btree", wal.SyncInterval))
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := uint64(0); i < 200; i++ {
		if err := cl.Send(wire.Put(i, i+1)); err != nil {
			t.Fatal(err)
		}
		if err := cl.Send(wire.Get(i)); err != nil {
			t.Fatal(err)
		}
		if err := cl.Flush(); err != nil {
			t.Fatal(err)
		}
		pr, err := cl.Recv()
		if err != nil || pr.Status != wire.StatusOK {
			t.Fatalf("put %d: %+v %v", i, pr, err)
		}
		gr, err := cl.Recv()
		if err != nil || gr.Status != wire.StatusOK || gr.Value != i+1 {
			t.Fatalf("get %d after put = %+v %v", i, gr, err)
		}
	}
}
