package server

import (
	"bufio"
	"errors"
	"io"
	"net"
	"os"
	"sync/atomic"

	"optiql/internal/locks"
	"optiql/internal/server/wire"
)

// pending is one admitted request travelling from the reader to the
// writer. The writer sends responses strictly in admission order,
// waiting on ready; ready closes when every constituent operation
// (one, or each sub-operation of a batch) has filled its slot.
type pending struct {
	req       wire.Request
	resp      wire.Response
	remaining atomic.Int32
	ready     chan struct{}
}

func newPending(req wire.Request) *pending {
	p := &pending{req: req, ready: make(chan struct{})}
	n := 1
	if req.Op == wire.OpBatch {
		n = len(req.Sub)
		p.resp.Status = wire.StatusOK
		p.resp.Sub = make([]wire.Response, n)
	}
	p.remaining.Store(int32(n))
	return p
}

// opDone marks one constituent operation complete.
func (p *pending) opDone() {
	if p.remaining.Add(-1) == 0 {
		close(p.ready)
	}
}

// conn is one client connection: a reader goroutine that decodes,
// admits and dispatches requests (executing reads inline on its own
// Ctx, funneling writes to the shard executors) and a writer goroutine
// that streams responses back in request order.
type conn struct {
	srv   *Server
	nc    net.Conn
	respQ chan *pending
	// lastWrite[i] is the most recent pending with a write routed to
	// shard i from this connection, giving cross-request
	// read-your-writes: reads on shard i first wait for it. Reader
	// goroutine only.
	lastWrite []*pending
}

// respQDepth bounds admitted-but-unanswered requests per connection;
// a full queue blocks the reader, pushing backpressure to the client.
const respQDepth = 512

func (s *Server) serveConn(nc net.Conn) {
	c := &conn{
		srv:       s,
		nc:        nc,
		respQ:     make(chan *pending, respQDepth),
		lastWrite: make([]*pending, len(s.shards)),
	}
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	s.stats.conns.Add(1)
	// A connection admitted concurrently with Shutdown still gets its
	// read nudged loose.
	if s.closing.Load() {
		nc.SetReadDeadline(closedDeadline)
	}
	s.connWG.Add(2)
	go c.writeLoop()
	go c.readLoop()
}

// silentClose reports whether a read error means "stop reading, no
// error response": clean or truncated EOF, a closed connection, or
// the read deadline Shutdown uses to unblock idle readers.
func silentClose(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrDeadlineExceeded)
}

func (c *conn) readLoop() {
	defer c.srv.connWG.Done()
	// Closing respQ is what lets the writer drain and close the
	// connection.
	defer close(c.respQ)
	ctx := locks.NewCtx(c.srv.pool, 8)
	defer ctx.Close()
	ctx.SetCounters(c.srv.reg.NewCounters())
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var buf []byte
	for {
		payload, err := wire.ReadFrame(br, &buf)
		if err != nil {
			c.fail(err)
			return
		}
		req, err := wire.ParseRequest(payload)
		if err != nil {
			c.fail(err)
			return
		}
		p := newPending(req)
		c.respQ <- p // admission: response order fixed here
		c.dispatch(ctx, p)
	}
}

// fail ends the read loop; protocol errors are answered with a final
// StatusErr frame before the connection closes.
func (c *conn) fail(err error) {
	if silentClose(err) {
		return
	}
	c.srv.stats.errors.Add(1)
	p := &pending{resp: wire.Response{Status: wire.StatusErr, Err: err.Error()}, ready: make(chan struct{})}
	close(p.ready)
	c.respQ <- p
}

// dispatch routes one admitted request. Reads (GET, SCAN) execute
// inline on the reader's Ctx — optimistic shared acquisitions make
// them safely concurrent with the shard executors — after waiting out
// any older write this connection has in flight on the same shard.
// Writes are handed to the shard executors. A batch's sub-operations
// are routed individually and may execute in any order relative to
// each other (its reads are not guaranteed to observe its writes);
// the batch response is sent only when all of them have completed.
func (c *conn) dispatch(ctx *locks.Ctx, p *pending) {
	if p.req.Op == wire.OpBatch {
		c.srv.stats.batches.Add(1)
		for i := range p.req.Sub {
			c.dispatchOne(ctx, p, &p.req.Sub[i], &p.resp.Sub[i])
		}
		return
	}
	c.dispatchOne(ctx, p, &p.req, &p.resp)
}

func (c *conn) dispatchOne(ctx *locks.Ctx, p *pending, req *wire.Request, slot *wire.Response) {
	s := c.srv
	switch req.Op {
	case wire.OpGet:
		si := s.shardIdx(req.Key)
		c.waitWrite(si, p)
		if v, ok := s.shards[si].idx.Lookup(ctx, req.Key); ok {
			slot.Status = wire.StatusOK
			slot.Value = v
		} else {
			slot.Status = wire.StatusNotFound
		}
		s.stats.gets.Add(1)
		s.stats.ops.Add(1)
		p.opDone()
	case wire.OpScan:
		for si := range s.shards {
			c.waitWrite(si, p)
		}
		slot.Status = wire.StatusOK
		slot.Pairs = s.scanAll(ctx, req.Key, int(req.Max))
		s.stats.scans.Add(1)
		s.stats.ops.Add(1)
		p.opDone()
	case wire.OpPut, wire.OpDelete:
		si := s.shardIdx(req.Key)
		s.shards[si].exec.ch <- writeOp{op: req.Op, key: req.Key, val: req.Value, p: p, slot: slot}
		c.lastWrite[si] = p
	default:
		slot.Status = wire.StatusErr
		slot.Err = "unsupported opcode"
		s.stats.errors.Add(1)
		p.opDone()
	}
}

// waitWrite blocks until this connection's latest write on shard si
// (if any) has executed, unless that write belongs to p itself (a
// batch mixing a read after a write on one shard would otherwise wait
// on its own completion).
func (c *conn) waitWrite(si int, p *pending) {
	if lw := c.lastWrite[si]; lw != nil && lw != p {
		<-lw.ready
	}
}

func (c *conn) writeLoop() {
	defer c.srv.connWG.Done()
	defer func() {
		c.nc.Close()
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
	}()
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	var buf []byte
	var err error
	broken := false
	for p := range c.respQ {
		<-p.ready
		if broken {
			// The client is gone but the queue must still drain so the
			// reader never blocks on a full respQ.
			continue
		}
		buf, err = wire.AppendResponse(buf[:0], &p.req, &p.resp)
		if err != nil {
			// Encoding bug or oversized result; answer with an error
			// frame to keep the stream aligned.
			e := wire.Response{Status: wire.StatusErr, Err: err.Error()}
			buf, err = wire.AppendResponse(buf[:0], &p.req, &e)
			if err != nil {
				broken = true
				continue
			}
		}
		if _, err = bw.Write(buf); err != nil {
			broken = true
			continue
		}
		if len(c.respQ) == 0 {
			if err = bw.Flush(); err != nil {
				broken = true
			}
		}
	}
	if !broken {
		bw.Flush()
	}
}
