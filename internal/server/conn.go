package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync/atomic"
	"time"

	"optiql/internal/locks"
	"optiql/internal/obs"
	"optiql/internal/obs/trace"
	"optiql/internal/server/wire"
)

// pending is one admitted request travelling from the reader to the
// writer. The writer sends responses strictly in admission order,
// waiting on ready; ready closes when every constituent operation
// (one, or each sub-operation of a batch) has filled its slot.
type pending struct {
	req       wire.Request
	resp      wire.Response
	remaining atomic.Int32
	ready     chan struct{}
	// span is the request's trace-tree ID: connection ID and request
	// sequence packed by the reader when its sampler fired, 0 when the
	// request is unsampled (or tracing is off). Every phase span of
	// this request — decode, queue, execute, write — carries it, so
	// the Chrome export stitches one wire request into one tree.
	span uint64
	// scanBufs holds the pooled buffers whose storage the response's
	// Pairs alias; the writer returns them once the frame is encoded.
	// Appended only by the reader goroutine before opDone, read by the
	// writer after ready closes.
	scanBufs []*scanBuf
	// applied closes once every write routed from this request has been
	// applied to its shard index. Allocated only when a WAL defers ready
	// past the apply (ready then waits on the group-commit fsync);
	// read-your-writes needs the apply, not the durability, so reads
	// wait here instead of stalling their pipeline behind an fsync.
	// appliedLeft counts routed-but-unapplied writes plus one routing
	// hold, released when the reader finishes dispatching the request —
	// without the hold, a batch's first write could close the channel
	// before its second write was routed.
	applied     chan struct{}
	appliedLeft atomic.Int32
}

// noteApplied marks one routed write as applied to its index.
func (p *pending) noteApplied() {
	if p.applied != nil && p.appliedLeft.Add(-1) == 0 {
		close(p.applied)
	}
}

// noteRouted records a write handed to a shard executor. Reader
// goroutine only, before the executor send.
func (p *pending) noteRouted() {
	if p.applied != nil {
		p.appliedLeft.Add(1)
	}
}

// routingDone releases the routing hold once the reader has dispatched
// the whole request.
func (p *pending) routingDone() {
	if p.applied != nil && p.appliedLeft.Add(-1) == 0 {
		close(p.applied)
	}
}

// release returns the pooled scan buffers backing this response. The
// response's Pairs must not be read afterwards — their storage is back
// in the pool — so they are cleared here.
func (p *pending) release() {
	if p.scanBufs == nil {
		return
	}
	p.resp.Pairs = nil
	for i := range p.resp.Sub {
		p.resp.Sub[i].Pairs = nil
	}
	for _, sb := range p.scanBufs {
		putScanBuf(sb)
	}
	p.scanBufs = nil
}

func newPending(req wire.Request) *pending {
	p := &pending{req: req, ready: make(chan struct{})}
	n := 1
	if req.Op == wire.OpBatch {
		n = len(req.Sub)
		p.resp.Status = wire.StatusOK
		p.resp.Sub = make([]wire.Response, n)
	}
	p.remaining.Store(int32(n))
	return p
}

// opDone marks one constituent operation complete.
func (p *pending) opDone() {
	if p.remaining.Add(-1) == 0 {
		close(p.ready)
	}
}

// conn is one client connection: a reader goroutine that decodes,
// admits and dispatches requests (executing reads inline on its own
// Ctx, funneling writes to the shard executors) and a writer goroutine
// that streams responses back in request order.
type conn struct {
	srv   *Server
	nc    net.Conn
	respQ chan *pending
	// lastWrite[i] is the most recent pending with a write routed to
	// shard i from this connection, giving cross-request
	// read-your-writes: reads on shard i first wait for it. Reader
	// goroutine only.
	lastWrite []*pending
	// id is the connection's process-unique sequence number; reqSeq
	// counts admitted requests (reader goroutine only). Together they
	// form sampled requests' span IDs.
	id     uint64
	reqSeq uint64
	// tb is the connection's trace buffer (nil when tracing is off).
	// The reader owns its sampling counter; the writer only Records
	// (mutex-safe). Returned to the server's free list when the writer
	// — always the last of the pair to exit — finishes.
	tb *trace.Buf
}

// respQDepth bounds admitted-but-unanswered requests per connection;
// a full queue blocks the reader, pushing backpressure to the client.
const respQDepth = 512

// respRetain caps the encode buffer a writer keeps across responses.
const respRetain = 64 << 10

func (s *Server) serveConn(nc net.Conn) {
	// Pipelined small frames suffer under Nagle, and dead peers on idle
	// connections are only detected by keep-alive probes; set both
	// explicitly rather than trusting OS defaults (TuneTCP reaches the
	// *net.TCPConn through any chaos wrapper).
	wire.TuneTCP(nc)
	c := &conn{
		srv:       s,
		nc:        nc,
		respQ:     make(chan *pending, respQDepth),
		lastWrite: make([]*pending, len(s.shards)),
		id:        s.connSeq.Add(1),
	}
	c.tb = s.getConnBuf(int(c.id))
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	s.stats.conns.Add(1)
	// A connection admitted concurrently with Shutdown still gets its
	// read nudged loose.
	if s.closing.Load() {
		nc.SetReadDeadline(closedDeadline)
	}
	s.connWG.Add(2)
	go c.writeLoop()
	go c.readLoop()
}

// silentClose reports whether a read error means "stop reading, no
// error response": clean or truncated EOF, a closed connection, or
// the read deadline Shutdown uses to unblock idle readers.
func silentClose(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrDeadlineExceeded)
}

func (c *conn) readLoop() {
	defer c.srv.connWG.Done()
	// Closing respQ is what lets the writer drain and close the
	// connection.
	defer close(c.respQ)
	ctx := locks.NewCtx(c.srv.pool, 8)
	defer ctx.Close()
	ctx.SetCounters(c.srv.reg.NewCounters())
	// Inline reads run on this Ctx, so their lock spans (opportunistic
	// admits, read validation failures) land in the connection buffer.
	ctx.SetTrace(c.tb)
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var fb wire.FrameBuf
	for {
		c.armRead()
		// One sampling draw per request, taken before the frame read so
		// the decode span can cover it. The clock is read only when the
		// draw fires.
		sampled := c.tb.Sample()
		var t0 int64
		if sampled {
			t0 = c.tb.Now()
		}
		payload, err := wire.ReadFrameBuf(br, &fb)
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) && !c.srv.closing.Load() {
				// The configured read deadline fired: an idle connection
				// or a slow-loris peer trickling a frame. Reap it.
				c.srv.stats.reaped.Add(1)
				c.srv.resil.Inc(obs.EvSrvReap)
			}
			c.fail(err)
			return
		}
		req, err := wire.ParseRequest(payload)
		fb.Release() // requests never alias the payload
		if err != nil {
			c.fail(err)
			return
		}
		p := newPending(req)
		if c.srv.walDefersAcks {
			p.applied = make(chan struct{})
			p.appliedLeft.Store(1)
		}
		c.reqSeq++
		if sampled {
			// Nonzero by construction: connection IDs start at 1.
			p.span = c.id<<24 | c.reqSeq&0xFFFFFF
			c.tb.Record(trace.KindReqDecode, 0, t0, c.tb.Now()-t0, p.span, uint64(req.Op))
		}
		c.respQ <- p // admission: response order fixed here
		if !c.dispatch(ctx, p) {
			// A handler panic was contained: every constituent of p got a
			// StatusErr answer, but this connection's state is suspect —
			// stop reading and let the writer drain and close it. Other
			// connections (and the process) carry on.
			return
		}
	}
}

// armRead applies the configured per-frame read deadline. Shutdown
// may concurrently be nudging readers loose with an expired deadline;
// re-check closing after arming so that nudge is never overwritten
// with a live deadline.
func (c *conn) armRead() {
	if rt := c.srv.cfg.ReadTimeout; rt > 0 {
		c.nc.SetReadDeadline(time.Now().Add(rt))
		if c.srv.closing.Load() {
			c.nc.SetReadDeadline(closedDeadline)
		}
	}
}

// fail ends the read loop; protocol errors are answered with a final
// StatusErr frame before the connection closes.
func (c *conn) fail(err error) {
	if silentClose(err) {
		return
	}
	c.srv.stats.errors.Add(1)
	p := &pending{resp: wire.Response{Status: wire.StatusErr, Err: err.Error()}, ready: make(chan struct{})}
	close(p.ready)
	c.respQ <- p
}

// dispatch routes one admitted request, reporting false if a handler
// panic was contained while doing so. Reads (GET, SCAN) execute
// inline on the reader's Ctx — optimistic shared acquisitions make
// them safely concurrent with the shard executors — after waiting out
// any older write this connection has in flight on the same shard.
// Writes are handed to the shard executors. A batch's sub-operations
// are routed individually and may execute in any order relative to
// each other (its reads are not guaranteed to observe its writes);
// the batch response is sent only when all of them have completed.
func (c *conn) dispatch(ctx *locks.Ctx, p *pending) bool {
	defer p.routingDone()
	if p.req.Op == wire.OpBatch {
		c.srv.stats.batches.Add(1)
		for i := range p.req.Sub {
			if !c.dispatchOne(ctx, p, &p.req.Sub[i], &p.resp.Sub[i]) {
				// A sub-operation panicked before the rest were routed:
				// complete them with StatusErr so the batch response (and
				// Shutdown) never waits on slots nothing will fill.
				for j := i + 1; j < len(p.req.Sub); j++ {
					p.resp.Sub[j].Status = wire.StatusErr
					p.resp.Sub[j].Err = "aborted: earlier operation in batch panicked"
					p.opDone()
				}
				return false
			}
		}
		return true
	}
	return c.dispatchOne(ctx, p, &p.req, &p.resp)
}

// dispatchOne routes one operation and reports whether it completed
// without a handler panic. A panic inside an index call (a bug, or
// the chaos tests' injected one) is contained here: the slot is
// answered with StatusErr and accounted, so the client gets a
// response and the process survives.
func (c *conn) dispatchOne(ctx *locks.Ctx, p *pending, req *wire.Request, slot *wire.Response) (ok bool) {
	s := c.srv
	defer func() {
		if r := recover(); r != nil {
			slot.Status = wire.StatusErr
			slot.Err = fmt.Sprintf("internal error: %v", r)
			s.noteRecoveredPanic()
			p.opDone()
			ok = false
		}
	}()
	switch req.Op {
	case wire.OpGet:
		si := s.shardIdx(req.Key)
		// The inline-read execute span covers the read-your-writes wait
		// plus the lookup — the request's whole server-side service
		// time after decode.
		var t0 int64
		if p.span != 0 {
			t0 = c.tb.Now()
			c.tb.NoteKey(si, req.Key)
		}
		c.waitWrite(si, p)
		s.maybePanic(req.Key)
		if v, ok := s.shards[si].idx.Lookup(ctx, req.Key); ok {
			slot.Status = wire.StatusOK
			slot.Value = v
		} else {
			slot.Status = wire.StatusNotFound
		}
		if p.span != 0 {
			c.tb.Record(trace.KindReqExec, 0, t0, c.tb.Now()-t0, p.span, req.Key)
		}
		s.stats.gets.Add(1)
		s.stats.ops.Add(1)
		p.opDone()
	case wire.OpScan:
		var t0 int64
		if p.span != 0 {
			t0 = c.tb.Now()
		}
		for si := range s.shards {
			c.waitWrite(si, p)
		}
		pairs, sb := s.scanAll(ctx, req.Key, int(req.Max))
		slot.Status = wire.StatusOK
		slot.Pairs = pairs
		p.scanBufs = append(p.scanBufs, sb)
		if p.span != 0 {
			c.tb.Record(trace.KindReqExec, 0, t0, c.tb.Now()-t0, p.span, req.Key)
		}
		s.stats.scans.Add(1)
		s.stats.ops.Add(1)
		p.opDone()
	case wire.OpPut, wire.OpDelete:
		si := s.shardIdx(req.Key)
		ex := s.shards[si].exec
		if c.walGate(si, p, slot) {
			// Answered here: the shard's log is poisoned (StatusErr) or
			// its fsync queue is over budget (StatusOverloaded).
			return true
		}
		if max := int64(s.cfg.InflightMax); max > 0 && ex.inflight.Load() >= max {
			// Admission control: the shard's queue is over budget, so shed
			// this write instead of queuing (or blocking) behind it. The
			// client is told explicitly — StatusOverloaded is safe to
			// retry after backing off. lastWrite is NOT updated: nothing
			// was queued, so reads have nothing new to wait for.
			slot.Status = wire.StatusOverloaded
			s.stats.shed.Add(1)
			s.resil.Inc(obs.EvSrvShed)
			p.opDone()
			return true
		}
		ex.inflight.Add(1)
		p.noteRouted()
		wo := writeOp{op: req.Op, key: req.Key, val: req.Value, p: p, slot: slot}
		if p.span != 0 {
			wo.span = p.span
			wo.enq = c.tb.Now()
		}
		ex.ch <- wo
		c.lastWrite[si] = p
	default:
		slot.Status = wire.StatusErr
		slot.Err = "unsupported opcode"
		s.stats.errors.Add(1)
		p.opDone()
	}
	return true
}

// waitWrite blocks until this connection's latest write on shard si
// (if any) has executed, unless that write belongs to p itself (a
// batch mixing a read after a write on one shard would otherwise wait
// on its own completion). With a WAL the wait is on the apply, not the
// ack: the write is in the index (and in the log, ahead of its fsync)
// once applied closes, which is all read-your-writes needs — waiting
// on ready would park every read behind a group-commit fsync and
// serialize the connection's pipeline at fsync granularity.
func (c *conn) waitWrite(si int, p *pending) {
	if lw := c.lastWrite[si]; lw != nil && lw != p {
		if lw.applied != nil {
			<-lw.applied
		} else {
			<-lw.ready
		}
	}
}

func (c *conn) writeLoop() {
	defer c.srv.connWG.Done()
	defer func() {
		c.nc.Close()
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
		// The writer outlives the reader (it drains respQ after the
		// reader closes it), so this is the last touch of the trace
		// buffer — safe to recycle it for the next connection.
		c.srv.putConnBuf(c.tb)
	}()
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	var buf []byte
	var err error
	broken := false
	// A connection whose write path failed is useless: close it
	// immediately so the reader (blocked on the next frame) and the
	// peer (blocked on the lost response) both find out now rather
	// than at their read deadlines.
	brk := func() {
		broken = true
		c.nc.Close()
	}
	for p := range c.respQ {
		<-p.ready
		if broken {
			// The client is gone but the queue must still drain so the
			// reader never blocks on a full respQ.
			p.release()
			continue
		}
		var t0 int64
		if p.span != 0 {
			t0 = c.tb.Now()
		}
		buf, err = wire.AppendResponse(buf[:0], &p.req, &p.resp)
		p.release() // Pairs are encoded (or abandoned); pool their storage
		if err != nil {
			// Encoding bug or oversized result; answer with an error
			// frame to keep the stream aligned.
			e := wire.Response{Status: wire.StatusErr, Err: err.Error()}
			buf, err = wire.AppendResponse(buf[:0], &p.req, &e)
			if err != nil {
				brk()
				continue
			}
		}
		c.armWrite()
		if _, err = bw.Write(buf); err != nil {
			brk()
			continue
		}
		if p.span != 0 {
			// Encode-and-write span: buffered, so usually cheap; stalls
			// here mean a slow or stopped peer.
			c.tb.Record(trace.KindReqWrite, 0, t0, c.tb.Now()-t0, p.span, 0)
		}
		if cap(buf) > respRetain {
			// One huge scan response must not pin a megabyte for the
			// connection's lifetime.
			buf = nil
		}
		if len(c.respQ) == 0 {
			if err = bw.Flush(); err != nil {
				brk()
			}
		}
	}
	if !broken {
		c.armWrite()
		bw.Flush()
	}
}

// armWrite applies the configured write deadline so a peer that stops
// reading (full receive window forever) breaks the connection instead
// of wedging this writer.
func (c *conn) armWrite() {
	if wt := c.srv.cfg.WriteTimeout; wt > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(wt))
	}
}
