package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"optiql/internal/faults"
	"optiql/internal/server/wire"
	"optiql/internal/workload"
)

// valState is one possible state of a key: present with a value, or
// absent. The chaos oracle tracks a set of admissible states per key,
// because a write whose connection died mid-request may or may not
// have been applied.
type valState struct {
	present bool
	val     uint64
}

var absent = valState{}

// chaosTally summarizes one chaos worker's run.
type chaosTally struct {
	acked         uint64 // writes the server definitely applied
	indeterminate uint64 // writes whose fate the transport obscured
	reconnects    uint64
	retries       uint64
}

// TestChaosE2EOracle is the headline resilience test: an oracle
// workload driven through self-healing clients against a server whose
// transport injects latency, stalls, resets, short writes, fragmented
// writes and accept failures — and, in the second variant, single-bit
// response corruption. The invariant checked at the end, over a clean
// connection with faults disabled: every acknowledged write is
// present with exactly its acknowledged value (zero lost acked
// writes), every key's final state is within its admissible set, the
// server shuts down cleanly while faults are still firing, and no
// goroutines leak.
//
// Soundness of the oracle under corruption: faults corrupt only the
// server->client direction, so requests apply exactly as sent. The
// client is synchronous (one outstanding request), so a response can
// only be a (possibly damaged) encoding of the answer to that request
// — and with no admission control configured the server answers a PUT
// only after applying it, so a PUT answered at all is a PUT applied.
// Any response the decoder rejects poisons the connection and is
// handled as a transport failure.
func TestChaosE2EOracle(t *testing.T) {
	base := faults.Config{
		Seed:        42,
		LatencyProb: 0.02, LatencyMin: 20 * time.Microsecond, LatencyMax: 200 * time.Microsecond,
		StallProb: 0.005, StallDur: 2 * time.Millisecond,
		ResetProb:      0.008,
		ShortWriteProb: 0.01,
		FragmentProb:   0.05,
		AcceptFailProb: 0.1,
	}
	corrupt := base
	corrupt.Seed = 43
	// Write-direction only: requests must arrive intact for the oracle
	// to know what the server was asked to do.
	corrupt.CorruptWriteProb = 0.01

	cases := []struct {
		name    string
		chaos   faults.Config
		corrupt bool
	}{
		{"transport", base, false},
		{"corruption", corrupt, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			goroutines := runtime.NumGoroutine()
			srv, addr := startServer(t, Config{
				Shards:       4,
				ReadTimeout:  2 * time.Second,
				WriteTimeout: 2 * time.Second,
				Chaos:        &tc.chaos,
			})

			const workers = 4
			ops := 400
			if testing.Short() {
				ops = 120
			}
			models := make([]map[uint64]map[valState]bool, workers)
			tallies := make([]chaosTally, workers)
			errs := make(chan error, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				models[w] = make(map[uint64]map[valState]bool)
				wg.Add(1)
				go func() {
					defer wg.Done()
					errs <- runChaosWorker(w, addr, ops, tc.corrupt, models[w], &tallies[w])
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}

			var total chaosTally
			for _, tl := range tallies {
				total.acked += tl.acked
				total.indeterminate += tl.indeterminate
				total.reconnects += tl.reconnects
				total.retries += tl.retries
			}
			if total.acked == 0 {
				t.Fatal("no write was ever acknowledged: the chaos drowned the workload entirely")
			}
			inj := srv.FaultInjector()
			if inj == nil || inj.Stats().Total() == 0 {
				t.Fatal("no fault ever fired: the chaos layer was not exercised")
			}
			t.Logf("acked=%d indeterminate=%d reconnects=%d retries=%d faults=%+v",
				total.acked, total.indeterminate, total.reconnects, total.retries, inj.Stats())

			// Final verification over a clean transport: disable injection
			// and read back every key the workload touched.
			inj.SetEnabled(false)
			cl, err := wire.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			for w, model := range models {
				for k, adm := range model {
					resp, err := cl.Do(wire.Get(k))
					if err != nil {
						t.Fatalf("clean verification get(%#x): %v", k, err)
					}
					got := absent
					if resp.Status == wire.StatusOK {
						got = valState{present: true, val: resp.Value}
					} else if resp.Status != wire.StatusNotFound {
						t.Fatalf("clean verification get(%#x) = %+v", k, resp)
					}
					if !adm[got] {
						t.Errorf("worker %d key %#x: final state %+v not admissible (%v) — an acknowledged write was lost or a phantom applied",
							w, k, got, admStates(adm))
					}
				}
			}
			cl.Close()
			if t.Failed() {
				t.FailNow()
			}

			// Clean drain while faults are firing again.
			inj.SetEnabled(true)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Fatalf("shutdown under active fault injection: %v", err)
			}
			waitGoroutines(t, goroutines)
		})
	}
}

func admStates(adm map[valState]bool) []valState {
	var out []valState
	for s := range adm {
		out = append(out, s)
	}
	return out
}

// waitGoroutines polls until the goroutine count returns to (near) the
// pre-test baseline, failing with a stack dump if it never does.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 { // tolerate runtime helpers coming and going
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// runChaosWorker drives one ReconnClient over its own key stripe,
// maintaining the per-key admissible-state sets in model.
func runChaosWorker(w int, addr string, ops int, corrupt bool, model map[uint64]map[valState]bool, tl *chaosTally) error {
	rc := &wire.ReconnClient{
		Addr:       addr,
		Timeout:    2 * time.Second,
		MaxRetries: 12,
		BackoffMin: time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
	}
	defer rc.Close()
	defer func() {
		st := rc.Stats()
		tl.reconnects = st.Reconnects
		tl.retries = st.Retries
	}()
	base := uint64(w+1) << 32
	rng := workload.NewRNG(uint64(w)*0x9E3779B97F4A7C15 + 7)

	adm := func(k uint64) map[valState]bool {
		m := model[k]
		if m == nil {
			m = map[valState]bool{absent: true}
			model[k] = m
		}
		return m
	}
	for i := 0; i < ops; i++ {
		k := base | rng.Uint64n(128)
		switch rng.Uint64n(10) {
		case 0, 1, 2, 3: // put
			v := rng.Uint64()
			resp, err := rc.Do(wire.Put(k, v))
			st := adm(k)
			switch {
			case err != nil:
				// Indeterminate: the new value joins the admissible set.
				st[valState{true, v}] = true
				tl.indeterminate++
			case resp.Status == wire.StatusOK:
				model[k] = map[valState]bool{{true, v}: true}
				tl.acked++
			case resp.Status == wire.StatusOverloaded:
				// Shed before applying: state unchanged. (Not configured
				// here, but the model keeps the case sound.)
			case corrupt:
				// A damaged status on an answered PUT: the server applied
				// it (it answers only after applying), but be conservative
				// and only widen the set.
				st[valState{true, v}] = true
				tl.indeterminate++
			default:
				return fmt.Errorf("worker %d: put(%#x) = %+v on a clean transport", w, k, resp)
			}
		case 4, 5: // delete
			resp, err := rc.Do(wire.Del(k))
			st := adm(k)
			switch {
			case err != nil:
				st[absent] = true
				tl.indeterminate++
			case resp.Status == wire.StatusOK || resp.Status == wire.StatusNotFound:
				// Answered at all means executed; either status leaves the
				// key absent.
				model[k] = map[valState]bool{absent: true}
				tl.acked++
			case resp.Status == wire.StatusOverloaded:
			case corrupt:
				st[absent] = true
				tl.indeterminate++
			default:
				return fmt.Errorf("worker %d: del(%#x) = %+v on a clean transport", w, k, resp)
			}
		default: // get
			resp, err := rc.Do(wire.Get(k))
			if corrupt {
				// Response bits are untrusted mid-run; the read exercised
				// the retry machinery, which is all it is here for.
				continue
			}
			if err != nil {
				return fmt.Errorf("worker %d: get(%#x) never healed: %v", w, k, err)
			}
			got := absent
			if resp.Status == wire.StatusOK {
				got = valState{true, resp.Value}
			} else if resp.Status != wire.StatusNotFound {
				return fmt.Errorf("worker %d: get(%#x) = %+v", w, k, resp)
			}
			st := adm(k)
			if !st[got] {
				return fmt.Errorf("worker %d: get(%#x) observed %+v, admissible %v", w, k, got, admStates(st))
			}
			// An intact read is authoritative: collapse the set.
			model[k] = map[valState]bool{got: true}
		}
	}
	return nil
}

// TestServerSurvivesHandlerPanic injects panics into both handler
// paths — the inline read path on the connection goroutine and the
// write path inside a shard executor — and checks each is answered
// with StatusErr while the process keeps serving.
func TestServerSurvivesHandlerPanic(t *testing.T) {
	const boom = uint64(0xDEAD)
	srv, addr := startServer(t, Config{Shards: 2})
	srv.hooks.panicKey.Store(boom)

	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Executor-side panic: answered with StatusErr, and the connection
	// survives (the executor recovered, nothing else broke).
	resp, err := cl.Do(wire.Put(boom, 1))
	if err != nil {
		t.Fatalf("put on panic key: %v", err)
	}
	if resp.Status != wire.StatusErr || !strings.Contains(resp.Err, "internal error") {
		t.Fatalf("put on panic key = %+v", resp)
	}
	if resp, err = cl.Do(wire.Put(7, 70)); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("put after recovered executor panic = %+v, %v", resp, err)
	}
	if resp, err = cl.Do(wire.Get(7)); err != nil || resp.Value != 70 {
		t.Fatalf("get after recovered executor panic = %+v, %v", resp, err)
	}

	// Read-path panic: answered with StatusErr, then the connection is
	// closed (its state is suspect) — but only that connection.
	if resp, err = cl.Do(wire.Get(boom)); err != nil {
		t.Fatalf("get on panic key: %v", err)
	} else if resp.Status != wire.StatusErr || !strings.Contains(resp.Err, "internal error") {
		t.Fatalf("get on panic key = %+v", resp)
	}
	if _, err = cl.Do(wire.Get(7)); err == nil {
		t.Fatal("connection stayed open after a read-path panic")
	}

	// Batch with a panicking sub-op: earlier sub-ops complete, later
	// ones are aborted, the envelope still arrives.
	cl2, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	b, err := cl2.Do(wire.Batch(wire.Put(8, 80), wire.Get(boom), wire.Put(9, 90)))
	if err != nil {
		t.Fatalf("batch with panic: %v", err)
	}
	if len(b.Sub) != 3 ||
		b.Sub[0].Status != wire.StatusOK ||
		b.Sub[1].Status != wire.StatusErr ||
		b.Sub[2].Status != wire.StatusErr || !strings.Contains(b.Sub[2].Err, "aborted") {
		t.Fatalf("batch subs = %+v", b.Sub)
	}

	// The process survived it all; fresh connections work and the
	// damage is fully accounted.
	srv.hooks.panicKey.Store(0)
	cl3, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl3.Close()
	if resp, err = cl3.Do(wire.Get(8)); err != nil || resp.Value != 80 {
		t.Fatalf("get(8) after panics = %+v, %v", resp, err)
	}
	if resp, err = cl3.Do(wire.Get(9)); err != nil || resp.Status != wire.StatusNotFound {
		t.Fatalf("aborted batch sub-op was applied anyway: %+v, %v", resp, err)
	}
	if st := srv.Stats(); st.Panics != 3 {
		t.Fatalf("panics = %d, want 3", st.Panics)
	}
	if n := srv.Counters().Map()["srv_panic_recovered"]; n != 3 {
		t.Fatalf("srv_panic_recovered counter = %d, want 3", n)
	}
}

// TestAdmissionControlSheds slows the executor to a crawl, floods one
// shard past its in-flight budget and checks the overflow is answered
// with StatusOverloaded (not queued, not blocked) — and that a
// ReconnClient rides the shed out with backoff until admitted.
func TestAdmissionControlSheds(t *testing.T) {
	srv, addr := startServer(t, Config{Shards: 1, InflightMax: 4})
	srv.hooks.execDelay.Store(int64(150 * time.Millisecond))

	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const flood = 12
	for i := 0; i < flood; i++ {
		if err := cl.Send(wire.Put(uint64(i+1), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	// Wait until the flood has demonstrably saturated the budget (the
	// first shed happens while the first slow write still executes, so
	// the queue stays over budget for a while yet).
	for deadline := time.Now().Add(2 * time.Second); srv.Stats().Shed == 0; {
		if time.Now().After(deadline) {
			t.Fatalf("flood never triggered shedding: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// While the queue is saturated, a self-healing client's write is
	// shed and then retried until the backlog drains.
	rc := &wire.ReconnClient{Addr: addr, BackoffMin: 5 * time.Millisecond, BackoffMax: 100 * time.Millisecond, MaxRetries: 50}
	defer rc.Close()
	resp, err := rc.Do(wire.Put(1000, 1))
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("reconn put through overload = %+v, %v", resp, err)
	}
	if st := rc.Stats(); st.Overloaded == 0 {
		t.Fatalf("reconn client never saw StatusOverloaded: %+v", st)
	}

	okCount, shedCount := 0, 0
	for i := 0; i < flood; i++ {
		resp, err := cl.Recv()
		if err != nil {
			t.Fatal(err)
		}
		switch resp.Status {
		case wire.StatusOK:
			okCount++
		case wire.StatusOverloaded:
			shedCount++
		default:
			t.Fatalf("flood put %d = %+v", i, resp)
		}
	}
	if okCount == 0 || shedCount == 0 {
		t.Fatalf("ok=%d shed=%d: admission control did not degrade partially", okCount, shedCount)
	}
	srv.hooks.execDelay.Store(0)
	st := srv.Stats()
	if st.Shed != uint64(shedCount)+rc.Stats().Overloaded {
		t.Fatalf("server shed %d, clients observed %d", st.Shed, shedCount+int(rc.Stats().Overloaded))
	}
	// Shed writes were really not applied: resident keys = applied puts.
	if applied := okCount + 1; srv.Len() != applied {
		t.Fatalf("resident keys = %d, want %d (a shed write was applied, or an admitted one lost)", srv.Len(), applied)
	}
	if n := srv.Counters().Map()["srv_overload_shed"]; n != st.Shed {
		t.Fatalf("srv_overload_shed counter = %d, stats say %d", n, st.Shed)
	}
}

// TestIdleConnReaped: with a read timeout configured, a connection
// that never sends a frame is closed and accounted, while a connection
// doing steady traffic (each frame well within the timeout) lives on.
func TestIdleConnReaped(t *testing.T) {
	srv, addr := startServer(t, Config{ReadTimeout: 60 * time.Millisecond})

	busy, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()

	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	// Keep the busy connection trafficking across several timeout
	// windows; every op must keep succeeding.
	deadline := time.Now().Add(250 * time.Millisecond)
	for i := uint64(0); time.Now().Before(deadline); i++ {
		if resp, err := busy.Do(wire.Put(i, i)); err != nil || resp.Status != wire.StatusOK {
			t.Fatalf("busy connection reaped mid-traffic: %+v, %v", resp, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The idle one must have been reaped by now: its read returns
	// promptly with a close, not a local timeout.
	idle.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := idle.Read(make([]byte, 1)); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("idle connection not reaped: read = %v", err)
	}
	if st := srv.Stats(); st.Reaped != 1 {
		t.Fatalf("reaped = %d, want 1", st.Reaped)
	}
	if n := srv.Counters().Map()["srv_conn_reaped"]; n != 1 {
		t.Fatalf("srv_conn_reaped counter = %d, want 1", n)
	}
}

// TestShutdownRacesConnSetup races Shutdown against a burst of
// connections arriving with it: some send a first frame immediately,
// some never do. Every connection must terminate promptly — answered,
// EOF'd or reset, but never left hanging — and Shutdown must complete.
func TestShutdownRacesConnSetup(t *testing.T) {
	srv, addr := startServer(t, Config{})

	const conns = 16
	results := make(chan error, conns)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				results <- nil // refused after close: a clean termination
				return
			}
			defer nc.Close()
			if i%2 == 0 {
				req := wire.Get(uint64(i))
				frame, err := wire.AppendRequest(nil, &req)
				if err != nil {
					results <- err
					return
				}
				nc.Write(frame) // may race the close; any outcome is fine
			}
			// The one forbidden outcome is a hang: the server must close
			// (or answer then close) this connection well within the bound.
			nc.SetReadDeadline(time.Now().Add(5 * time.Second))
			buf := make([]byte, 256)
			for {
				if _, err := nc.Read(buf); err != nil {
					if errors.Is(err, os.ErrDeadlineExceeded) {
						results <- fmt.Errorf("conn %d hung through shutdown", i)
					} else {
						results <- nil
					}
					return
				}
			}
		}()
	}
	close(start)
	time.Sleep(time.Millisecond) // let the dials race the accept loop
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown racing connection setup: %v", err)
	}
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Fatal(err)
		}
	}
}
