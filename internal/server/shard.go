package server

import (
	"fmt"
	"slices"
	"sync"

	"optiql/internal/art"
	"optiql/internal/btree"
	"optiql/internal/locks"
	"optiql/internal/server/wire"
	"optiql/internal/wal"
)

// Index is the per-shard substrate surface the server needs: point
// ops plus an ordered scan appending pairs. *btree.Tree and *art.Tree
// are adapted below. A PUT maps to Insert (which overwrites an
// existing key and reports whether the key was new), so the server
// needs no separate Update.
type Index interface {
	Lookup(c *locks.Ctx, k uint64) (uint64, bool)
	Insert(c *locks.Ctx, k, v uint64) bool
	Delete(c *locks.Ctx, k uint64) bool
	Scan(c *locks.Ctx, start uint64, max int, out []wire.KV) []wire.KV
	Len() int
}

// Both substrates' scan pair types alias the repo-wide kv.KV, as does
// wire.KV, so the adapters forward the output buffer straight through —
// no per-pair copy, no intermediate slice.

type btreeIndex struct{ t *btree.Tree }

func (b btreeIndex) Lookup(c *locks.Ctx, k uint64) (uint64, bool) { return b.t.Lookup(c, k) }
func (b btreeIndex) Insert(c *locks.Ctx, k, v uint64) bool        { return b.t.Insert(c, k, v) }
func (b btreeIndex) Delete(c *locks.Ctx, k uint64) bool           { return b.t.Delete(c, k) }
func (b btreeIndex) Len() int                                     { return b.t.Len() }
func (b btreeIndex) Scan(c *locks.Ctx, start uint64, max int, out []wire.KV) []wire.KV {
	return b.t.Scan(c, start, max, out)
}

type artIndex struct{ t *art.Tree }

func (a artIndex) Lookup(c *locks.Ctx, k uint64) (uint64, bool) { return a.t.Lookup(c, k) }
func (a artIndex) Insert(c *locks.Ctx, k, v uint64) bool        { return a.t.Insert(c, k, v) }
func (a artIndex) Delete(c *locks.Ctx, k uint64) bool           { return a.t.Delete(c, k) }
func (a artIndex) Len() int                                     { return a.t.Len() }
func (a artIndex) Scan(c *locks.Ctx, start uint64, max int, out []wire.KV) []wire.KV {
	return a.t.Scan(c, start, max, out)
}

// newIndex builds one shard's index instance.
func newIndex(kind string, scheme *locks.Scheme, nodeSize int) (Index, error) {
	switch kind {
	case "btree":
		t, err := btree.New(btree.Config{Scheme: scheme, NodeSize: nodeSize})
		if err != nil {
			return nil, err
		}
		return btreeIndex{t}, nil
	case "art":
		t, err := art.New(art.Config{Scheme: scheme})
		if err != nil {
			return nil, err
		}
		return artIndex{t}, nil
	}
	return nil, fmt.Errorf("server: unknown index kind %q", kind)
}

// shard is one partition: an index instance, the executor that
// serializes and batches its writes, and — when durability is on — its
// write-ahead log plus the lock context the checkpoint scanner uses.
type shard struct {
	idx  Index
	exec *executor
	// wal is the shard's write-ahead log (nil without Config.WALDir).
	wal *wal.Log
	// ckptCtx is the checkpoint snapshot scanner's lock context; it runs
	// concurrently with the executor so it cannot share the executor's.
	ckptCtx *locks.Ctx
}

// shardHash is the splitmix64 finalizer; it spreads dense keys across
// shards so consecutive keys don't all land on one partition.
func shardHash(k uint64) uint64 {
	k += 0x9E3779B97F4A7C15
	k = (k ^ (k >> 30)) * 0xBF58476D1CE4E5B9
	k = (k ^ (k >> 27)) * 0x94D049BB133111EB
	return k ^ (k >> 31)
}

// shardFor routes a key to its partition.
func (s *Server) shardFor(k uint64) *shard {
	return s.shards[shardHash(k)%uint64(len(s.shards))]
}

// scanBuf is a pooled scan result buffer. A response's Pairs alias its
// storage from dispatch until the writer has encoded the response
// frame, at which point the pending releases it (conn.go). Capacity
// starts at one MaxScan and grows as needed (several shards can each
// contribute up to max pairs before the merge truncates); grown
// buffers are pooled at their grown size.
type scanBuf struct {
	kvs []wire.KV
}

var scanBufPool = sync.Pool{New: func() any {
	return &scanBuf{kvs: make([]wire.KV, 0, wire.MaxScan)}
}}

// scanAll merges per-shard scans into one globally ordered result of
// up to max pairs, staged in a pooled buffer the caller must hand back
// (pending.release) once the response is encoded. Keys are
// hash-partitioned, so a range covers every shard: each shard
// contributes its first max pairs >= start and the merge keeps the
// smallest max overall. The result is not a snapshot — shards are
// scanned one after another — matching the per-leaf (rather than
// whole-range) consistency the underlying scans provide.
func (s *Server) scanAll(c *locks.Ctx, start uint64, max int) ([]wire.KV, *scanBuf) {
	sb := scanBufPool.Get().(*scanBuf)
	all := sb.kvs[:0]
	for _, sh := range s.shards {
		all = sh.idx.Scan(c, start, max, all)
	}
	slices.SortFunc(all, func(a, b wire.KV) int {
		switch {
		case a.Key < b.Key:
			return -1
		case a.Key > b.Key:
			return 1
		}
		return 0
	})
	sb.kvs = all // keep any growth for reuse
	if len(all) > max {
		all = all[:max]
	}
	return all, sb
}

// putScanBuf returns a scan buffer to the pool.
func putScanBuf(sb *scanBuf) {
	sb.kvs = sb.kvs[:0]
	scanBufPool.Put(sb)
}
