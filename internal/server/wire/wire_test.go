package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// stripHeader peels the 4-byte frame header after checking it matches
// the payload length.
func stripHeader(t *testing.T, frame []byte) []byte {
	t.Helper()
	if len(frame) < 4 {
		t.Fatalf("frame too short: %d bytes", len(frame))
	}
	n := binary.BigEndian.Uint32(frame)
	if int(n) != len(frame)-4 {
		t.Fatalf("frame header says %d bytes, payload has %d", n, len(frame)-4)
	}
	return frame[4:]
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		Get(0),
		Get(^uint64(0)),
		Put(42, 99),
		Del(7),
		Scan(100, 16),
		Scan(0, MaxScan),
		Batch(Get(1), Put(2, 3), Del(4), Scan(5, 6)),
	}
	for _, want := range reqs {
		frame, err := AppendRequest(nil, &want)
		if err != nil {
			t.Fatalf("AppendRequest(%+v): %v", want, err)
		}
		got, err := ParseRequest(stripHeader(t, frame))
		if err != nil {
			t.Fatalf("ParseRequest(%+v): %v", want, err)
		}
		if got.Op != want.Op || got.Key != want.Key || got.Value != want.Value || got.Max != want.Max {
			t.Fatalf("round trip %+v -> %+v", want, got)
		}
		if len(got.Sub) != len(want.Sub) {
			t.Fatalf("batch round trip lost subs: %d -> %d", len(want.Sub), len(got.Sub))
		}
		for i := range got.Sub {
			g, w := got.Sub[i], want.Sub[i]
			if g.Op != w.Op || g.Key != w.Key || g.Value != w.Value || g.Max != w.Max {
				t.Fatalf("sub %d: %+v -> %+v", i, w, g)
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []struct {
		req  Request
		resp Response
	}{
		{Get(1), Response{Status: StatusOK, Value: 77}},
		{Get(1), Response{Status: StatusNotFound}},
		{Put(1, 2), Response{Status: StatusOK, Inserted: true}},
		{Put(1, 2), Response{Status: StatusOK, Inserted: false}},
		{Del(1), Response{Status: StatusOK}},
		{Del(1), Response{Status: StatusNotFound}},
		{Scan(0, 4), Response{Status: StatusOK, Pairs: []KV{{Key: 1, Value: 10}, {Key: 2, Value: 20}}}},
		{Scan(0, 4), Response{Status: StatusOK, Pairs: nil}},
		{Get(9), Response{Status: StatusErr, Err: "boom"}},
		{Batch(Get(1), Put(2, 3)), Response{Status: StatusOK, Sub: []Response{
			{Status: StatusNotFound},
			{Status: StatusOK, Inserted: true},
		}}},
	}
	for _, tc := range cases {
		frame, err := AppendResponse(nil, &tc.req, &tc.resp)
		if err != nil {
			t.Fatalf("AppendResponse(%+v): %v", tc.resp, err)
		}
		got, err := ParseResponse(stripHeader(t, frame), &tc.req)
		if err != nil {
			t.Fatalf("ParseResponse(%+v): %v", tc.resp, err)
		}
		if got.Status != tc.resp.Status || got.Value != tc.resp.Value ||
			got.Inserted != tc.resp.Inserted || got.Err != tc.resp.Err {
			t.Fatalf("round trip %+v -> %+v", tc.resp, got)
		}
		if len(got.Pairs) != len(tc.resp.Pairs) || len(got.Sub) != len(tc.resp.Sub) {
			t.Fatalf("round trip lost pairs/subs: %+v -> %+v", tc.resp, got)
		}
		for i := range got.Pairs {
			if got.Pairs[i] != tc.resp.Pairs[i] {
				t.Fatalf("pair %d: %+v -> %+v", i, tc.resp.Pairs[i], got.Pairs[i])
			}
		}
		for i := range got.Sub {
			if got.Sub[i].Status != tc.resp.Sub[i].Status || got.Sub[i].Inserted != tc.resp.Sub[i].Inserted {
				t.Fatalf("sub %d: %+v -> %+v", i, tc.resp.Sub[i], got.Sub[i])
			}
		}
	}
}

func TestRequestEncodeErrors(t *testing.T) {
	bad := []Request{
		{Op: 0},                               // unknown opcode
		{Op: 99},                              // unknown opcode
		Scan(0, 0),                            // zero scan max
		Scan(0, MaxScan+1),                    // oversized scan max
		Batch(),                               // empty batch
		Batch(Batch(Get(1))),                  // nested batch
		Batch(make([]Request, MaxBatch+1)...), // oversized batch
	}
	for _, r := range bad {
		if _, err := AppendRequest(nil, &r); err == nil {
			t.Fatalf("AppendRequest accepted %+v", r)
		}
	}
}

func TestRequestParseErrors(t *testing.T) {
	valid := func(r Request) []byte {
		frame, err := AppendRequest(nil, &r)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		return stripHeader(t, frame)
	}
	cases := map[string][]byte{
		"empty":          {},
		"unknown opcode": {99, 0, 0, 0, 0, 0, 0, 0, 0},
		"truncated get":  valid(Get(1))[:5],
		"trailing bytes": append(valid(Get(1)), 0),
		"zero scan max":  append(append([]byte{OpScan}, make([]byte, 8)...), 0, 0, 0, 0),
		"nested batch":   {OpBatch, 0, 0, 0, 1, OpBatch, 0, 0, 0, 1, OpGet, 0, 0, 0, 0, 0, 0, 0, 0},
		"zero batch":     {OpBatch, 0, 0, 0, 0},
	}
	for name, payload := range cases {
		if _, err := ParseRequest(payload); err == nil {
			t.Fatalf("%s: ParseRequest accepted % x", name, payload)
		}
	}
}

func TestResponseParseErrors(t *testing.T) {
	get := Get(1)
	scan := Scan(0, 4)
	batch := Batch(Get(1), Get(2))
	cases := []struct {
		name    string
		payload []byte
		req     *Request
	}{
		{"empty", []byte{}, &get},
		{"unknown status", []byte{9}, &get},
		{"truncated get value", []byte{StatusOK, 0, 0}, &get},
		{"trailing bytes", []byte{StatusNotFound, 0}, &get},
		{"truncated err msg", []byte{StatusErr, 0, 10, 'x'}, &get},
		{"scan count too big", append([]byte{StatusOK}, 0xFF, 0xFF, 0xFF, 0xFF), &scan},
		{"batch count mismatch", []byte{StatusOK, 0, 0, 0, 1, StatusNotFound}, &batch},
	}
	for _, tc := range cases {
		if _, err := ParseResponse(tc.payload, tc.req); err == nil {
			t.Fatalf("%s: ParseResponse accepted % x", tc.name, tc.payload)
		}
	}
}

func TestErrMessageTruncated(t *testing.T) {
	req := Get(1)
	resp := Response{Status: StatusErr, Err: strings.Repeat("x", 1<<16)}
	frame, err := AppendResponse(nil, &req, &resp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseResponse(stripHeader(t, frame), &req)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Err) != 1<<15 {
		t.Fatalf("error message length %d, want truncation to %d", len(got.Err), 1<<15)
	}
}

func TestReadFrame(t *testing.T) {
	var buf bytes.Buffer
	frame, err := AppendRequest(nil, &Request{Op: OpPut, Key: 5, Value: 6})
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(frame)
	var scratch []byte
	payload, err := ReadFrame(bufio.NewReader(&buf), &scratch)
	if err != nil {
		t.Fatal(err)
	}
	req, err := ParseRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpPut || req.Key != 5 || req.Value != 6 {
		t.Fatalf("frame round trip = %+v", req)
	}

	// Oversized header is rejected before any allocation.
	var huge bytes.Buffer
	hdr := binary.BigEndian.AppendUint32(nil, MaxFrame+1)
	huge.Write(hdr)
	if _, err := ReadFrame(bufio.NewReader(&huge), &scratch); err == nil {
		t.Fatal("ReadFrame accepted an oversized frame header")
	}

	// Truncated payload reports an unexpected EOF, not a clean one.
	var short bytes.Buffer
	short.Write(binary.BigEndian.AppendUint32(nil, 10))
	short.Write([]byte{1, 2, 3})
	if _, err := ReadFrame(bufio.NewReader(&short), &scratch); err == nil {
		t.Fatal("ReadFrame accepted a truncated frame")
	}
}
