package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"optiql/internal/obs"
)

// startStub runs a scripted server: handle is invoked per accepted
// connection and owns it completely.
func startStub(t *testing.T, handle func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go handle(nc)
		}
	}()
	return ln.Addr().String()
}

// answer reads one request frame from br and writes one response.
func answer(nc net.Conn, br *bufio.Reader, status byte) error {
	var buf []byte
	payload, err := ReadFrame(br, &buf)
	if err != nil {
		return err
	}
	req, err := ParseRequest(payload)
	if err != nil {
		return err
	}
	resp := Response{Status: status}
	if status == StatusOK && req.Op == OpGet {
		resp.Value = req.Key * 2
	}
	frame, err := AppendResponse(nil, &req, &resp)
	if err != nil {
		return err
	}
	_, err = nc.Write(frame)
	return err
}

// TestClientPoisonedByDecodeError: a mid-pipeline garbage frame must
// poison the client — the second Recv returns the same sticky error
// immediately instead of desynchronizing the request/response pairing.
func TestClientPoisonedByDecodeError(t *testing.T) {
	addr := startStub(t, func(nc net.Conn) {
		defer nc.Close()
		br := bufio.NewReader(nc)
		var buf []byte
		for i := 0; i < 2; i++ {
			if _, err := ReadFrame(br, &buf); err != nil {
				return
			}
		}
		// Answer the first request with a syntactically broken response:
		// an OK GET frame with a truncated value.
		nc.Write([]byte{0, 0, 0, 3, StatusOK, 1, 2})
		// Then a perfectly valid frame, which the poisoned client must
		// never consume.
		req := Get(7)
		frame, _ := AppendResponse(nil, &req, &Response{Status: StatusOK, Value: 14})
		nc.Write(frame)
		time.Sleep(50 * time.Millisecond)
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Send(Get(7)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Send(Get(8)); err != nil {
		t.Fatal(err)
	}
	_, err1 := cl.Recv()
	if err1 == nil {
		t.Fatal("broken response decoded cleanly")
	}
	if cl.Err() == nil {
		t.Fatal("decode error did not poison the client")
	}
	start := time.Now()
	_, err2 := cl.Recv()
	if err2 == nil || !errors.Is(err2, cl.Err()) {
		t.Fatalf("second Recv = %v, want sticky %v", err2, err1)
	}
	if time.Since(start) > 20*time.Millisecond {
		t.Fatal("poisoned Recv touched the network")
	}
	if err := cl.Send(Get(9)); err == nil {
		t.Fatal("poisoned Send accepted a request")
	}
	if _, err := cl.Do(Get(9)); err == nil {
		t.Fatal("poisoned Do accepted a request")
	}
}

// TestClientEncodingErrorDoesNotPoison: an unencodable request is the
// caller's bug; the stream is untouched and stays usable.
func TestClientEncodingErrorDoesNotPoison(t *testing.T) {
	addr := startStub(t, func(nc net.Conn) {
		defer nc.Close()
		br := bufio.NewReader(nc)
		for answer(nc, br, StatusOK) == nil {
		}
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Send(Scan(0, MaxScan+1)); err == nil {
		t.Fatal("oversized scan encoded")
	}
	if cl.Err() != nil {
		t.Fatalf("encoding error poisoned the client: %v", cl.Err())
	}
	resp, err := cl.Do(Get(21))
	if err != nil || resp.Status != StatusOK || resp.Value != 42 {
		t.Fatalf("Do after encoding error = %+v, %v", resp, err)
	}
}

// TestClientTimeout: a server that never answers must not pin the
// caller past the configured deadline.
func TestClientTimeout(t *testing.T) {
	addr := startStub(t, func(nc net.Conn) {
		io.Copy(io.Discard, nc) // read forever, answer never
		nc.Close()
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetTimeout(60 * time.Millisecond)
	start := time.Now()
	_, err = cl.Do(Get(1))
	if err == nil {
		t.Fatal("Do returned without a response")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("timeout error = %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("timeout took %v", d)
	}
	if !Retryable(err) {
		t.Fatal("deadline error classified fatal")
	}
}

// TestReconnClientHealsResets: a server that kills every connection
// after one response forces a reconnect per request; reads must flow
// anyway, with the reconnects visible in stats and obs counters.
func TestReconnClientHealsResets(t *testing.T) {
	addr := startStub(t, func(nc net.Conn) {
		defer nc.Close()
		br := bufio.NewReader(nc)
		answer(nc, br, StatusOK)
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetLinger(0) // RST, not clean EOF
		}
	})
	reg := obs.NewRegistry()
	rc := &ReconnClient{Addr: addr, Timeout: 2 * time.Second, BackoffMin: time.Millisecond, BackoffMax: 4 * time.Millisecond, Counters: reg.NewCounters()}
	defer rc.Close()
	const n = 10
	for i := uint64(1); i <= n; i++ {
		resp, err := rc.Do(Get(i))
		if err != nil || resp.Status != StatusOK || resp.Value != i*2 {
			t.Fatalf("Do(Get(%d)) = %+v, %v", i, resp, err)
		}
	}
	st := rc.Stats()
	if st.Dials < 2 || st.Reconnects != st.Dials-1 {
		t.Fatalf("stats = %+v, expected reconnects", st)
	}
	snap := reg.Snapshot()
	if snap.Get(obs.EvCliReconnect) != st.Reconnects {
		t.Fatalf("obs cli_reconnect = %d, stats say %d", snap.Get(obs.EvCliReconnect), st.Reconnects)
	}
}

// TestReconnClientBacksOffOverload: Overloaded answers are retried
// with backoff on the same connection until the server admits.
func TestReconnClientBacksOffOverload(t *testing.T) {
	var served atomic.Int64
	const shedFirst = 3
	addr := startStub(t, func(nc net.Conn) {
		defer nc.Close()
		br := bufio.NewReader(nc)
		for {
			st := byte(StatusOK)
			if served.Add(1) <= shedFirst {
				st = StatusOverloaded
			}
			if answer(nc, br, st) != nil {
				return
			}
		}
	})
	reg := obs.NewRegistry()
	rc := &ReconnClient{Addr: addr, BackoffMin: time.Millisecond, BackoffMax: 4 * time.Millisecond, Counters: reg.NewCounters()}
	defer rc.Close()
	resp, err := rc.Do(Put(5, 50))
	if err != nil || resp.Status != StatusOK {
		t.Fatalf("Do through overload = %+v, %v", resp, err)
	}
	st := rc.Stats()
	if st.Overloaded != shedFirst || st.Retries < shedFirst {
		t.Fatalf("stats = %+v, want %d overloads", st, shedFirst)
	}
	if st.Dials != 1 {
		t.Fatalf("overload retries reconnected: %+v", st)
	}
	if got := reg.Snapshot().Get(obs.EvCliOverloaded); got != shedFirst {
		t.Fatalf("obs cli_overloaded = %d", got)
	}
}

// TestReconnClientSurfacesIndeterminateWrites: a write whose
// connection dies before the response must NOT be silently retried —
// the server may have applied it.
func TestReconnClientSurfacesIndeterminateWrites(t *testing.T) {
	var writesSeen atomic.Int64
	addr := startStub(t, func(nc net.Conn) {
		defer nc.Close()
		br := bufio.NewReader(nc)
		var buf []byte
		if _, err := ReadFrame(br, &buf); err != nil {
			return
		}
		writesSeen.Add(1)
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		// Close without answering: the client cannot know whether the
		// write was applied.
	})
	rc := &ReconnClient{Addr: addr, Timeout: time.Second, MaxRetries: 5, BackoffMin: time.Millisecond}
	defer rc.Close()
	_, err := rc.Do(Put(1, 2))
	if err == nil {
		t.Fatal("indeterminate write reported success")
	}
	// Give any (buggy) retry a moment to land, then check exactly one
	// request ever reached a server connection.
	time.Sleep(50 * time.Millisecond)
	if n := writesSeen.Load(); n != 1 {
		t.Fatalf("server saw %d attempts of an indeterminate write", n)
	}
	if rc.Stats().Failures != 1 {
		t.Fatalf("stats = %+v", rc.Stats())
	}
}

// TestReconnClientRetriesDialFailures: dial errors are pre-send, so
// even writes retry them; a server that appears after a few failures
// gets the request.
func TestReconnClientRetriesDialFailures(t *testing.T) {
	addr := startStub(t, func(nc net.Conn) {
		defer nc.Close()
		br := bufio.NewReader(nc)
		for answer(nc, br, StatusOK) == nil {
		}
	})
	var dials atomic.Int64
	rc := &ReconnClient{
		Addr:       addr,
		BackoffMin: time.Millisecond,
		DialFunc: func(a string) (net.Conn, error) {
			if dials.Add(1) <= 2 {
				return nil, syscall.ECONNREFUSED
			}
			return net.Dial("tcp", a)
		},
	}
	defer rc.Close()
	resp, err := rc.Do(Put(9, 90))
	if err != nil || resp.Status != StatusOK {
		t.Fatalf("Do through dial failures = %+v, %v", resp, err)
	}
	if rc.Stats().Retries != 2 {
		t.Fatalf("stats = %+v, want 2 retries", rc.Stats())
	}
}

// TestReconnClientBoundedRetries: a permanently dead address fails
// after exactly MaxRetries+1 attempts, not forever.
func TestReconnClientBoundedRetries(t *testing.T) {
	var dials atomic.Int64
	rc := &ReconnClient{
		Addr:       "127.0.0.1:1",
		MaxRetries: 3,
		BackoffMin: time.Millisecond,
		BackoffMax: 2 * time.Millisecond,
		DialFunc: func(string) (net.Conn, error) {
			dials.Add(1)
			return nil, syscall.ECONNREFUSED
		},
	}
	_, err := rc.Do(Get(1))
	if err == nil {
		t.Fatal("dead address succeeded")
	}
	if n := dials.Load(); n != 4 {
		t.Fatalf("%d dial attempts, want MaxRetries+1 = 4", n)
	}
}

func TestRetryableTaxonomy(t *testing.T) {
	retryable := []error{
		io.EOF, io.ErrUnexpectedEOF, net.ErrClosed, os.ErrDeadlineExceeded,
		syscall.ECONNRESET, syscall.ECONNREFUSED, syscall.EPIPE, syscall.ECONNABORTED,
		&net.OpError{Op: "read", Err: syscall.ECONNRESET},
	}
	for _, err := range retryable {
		if !Retryable(err) {
			t.Errorf("Retryable(%v) = false", err)
		}
	}
	fatal := []error{
		nil,
		fmt.Errorf("wire: unknown opcode 9"),
		fmt.Errorf("wire: 3 trailing bytes after response"),
	}
	for _, err := range fatal {
		if Retryable(err) {
			t.Errorf("Retryable(%v) = true", err)
		}
	}
}

// TestStatusOverloadedRoundTrip covers the new status through the
// encoder/decoder for every opcode shape.
func TestStatusOverloadedRoundTrip(t *testing.T) {
	for _, req := range []Request{Get(1), Put(1, 2), Del(1), Scan(0, 8)} {
		frame, err := AppendResponse(nil, &req, &Response{Status: StatusOverloaded})
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		resp, err := ParseResponse(frame[4:], &req)
		if err != nil || resp.Status != StatusOverloaded {
			t.Fatalf("%+v: round trip = %+v, %v", req, resp, err)
		}
	}
	// Inside a batch, too.
	req := Batch(Put(1, 2), Get(3))
	resp := Response{Status: StatusOK, Sub: []Response{{Status: StatusOverloaded}, {Status: StatusOK, Value: 6}}}
	frame, err := AppendResponse(nil, &req, &resp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseResponse(frame[4:], &req)
	if err != nil || got.Sub[0].Status != StatusOverloaded || got.Sub[1].Value != 6 {
		t.Fatalf("batch round trip = %+v, %v", got, err)
	}
}

// TestBackoffJitterBounds: every drawn delay lies in [limit/2, limit]
// for the limit in force when it was drawn, and the limit itself
// follows the truncated doubling schedule min, 2min, 4min, ..., max.
func TestBackoffJitterBounds(t *testing.T) {
	rc := &ReconnClient{
		BackoffMin: time.Millisecond,
		BackoffMax: 64 * time.Millisecond,
		Seed:       7,
	}
	rc.defaults()
	limit := rc.BackoffMin
	wantLimit := rc.BackoffMin
	for i := 0; i < 200; i++ {
		if limit != wantLimit {
			t.Fatalf("draw %d: limit %v, want %v", i, limit, wantLimit)
		}
		cur := limit
		d := rc.nextBackoff(&limit)
		if d < cur/2 || d > cur {
			t.Fatalf("draw %d: delay %v outside [%v, %v]", i, d, cur/2, cur)
		}
		if wantLimit < rc.BackoffMax {
			wantLimit *= 2
			if wantLimit > rc.BackoffMax {
				wantLimit = rc.BackoffMax
			}
		}
	}
	if limit != rc.BackoffMax {
		t.Fatalf("limit settled at %v, want BackoffMax %v", limit, rc.BackoffMax)
	}
}

// TestBackoffJitterDeterminism: a fixed Seed reproduces the exact
// delay schedule; a different seed diverges.
func TestBackoffJitterDeterminism(t *testing.T) {
	draw := func(seed uint64) []time.Duration {
		rc := &ReconnClient{
			BackoffMin: time.Millisecond,
			BackoffMax: 200 * time.Millisecond,
			Seed:       seed,
		}
		rc.defaults()
		limit := rc.BackoffMin
		out := make([]time.Duration, 64)
		for i := range out {
			out[i] = rc.nextBackoff(&limit)
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: same seed diverged: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestBackoffSeedZeroStillJitters: the wall-clock fallback seed must
// not collapse the jitter to a constant.
func TestBackoffSeedZeroStillJitters(t *testing.T) {
	rc := &ReconnClient{BackoffMin: time.Millisecond, BackoffMax: 256 * time.Millisecond}
	rc.defaults()
	if rc.seed == 0 {
		t.Fatal("defaults left the jitter stream unseeded")
	}
	limit := 128 * time.Millisecond // fixed limit: variation must come from jitter
	seen := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		l := limit
		seen[rc.nextBackoff(&l)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("32 draws produced %d distinct delays", len(seen))
	}
}
