// Package wire defines the length-prefixed binary protocol spoken by
// the optiqld key-value server and its clients, plus a pipelined
// client implementation.
//
// Every message is one frame: a 4-byte big-endian payload length
// followed by the payload. A request payload starts with a one-byte
// opcode; a response payload starts with a one-byte status. All
// integers are big-endian; keys and values are 8 bytes, matching the
// index substrates. Responses are not self-describing — their shape
// depends on the request's opcode — so the decoder takes the request
// it answers, which a pipelined client has to remember anyway.
//
// Request payloads:
//
//	GET    op(1) key(8)
//	PUT    op(1) key(8) value(8)
//	DELETE op(1) key(8)
//	SCAN   op(1) start(8) max(4)
//	BATCH  op(1) n(4) then n sub-requests (opcode + body, no nesting)
//
// Response payloads:
//
//	status(1) then, when status is OK:
//	GET    value(8)            (NOT_FOUND carries no body)
//	PUT    inserted(1)         (1 = new key, 0 = overwrote)
//	DELETE -                   (NOT_FOUND when the key was absent)
//	SCAN   n(4) then n key(8) value(8) pairs
//	BATCH  n(4) then n sub-responses (status + body each)
//	ERR    len(2) message      (any opcode; the connection then closes)
//
// NOT_FOUND and OVERLOADED carry no body. OVERLOADED answers a request
// the server's admission control shed before executing it (see
// internal/server); the request was not applied and may be retried.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"optiql/internal/kv"
)

// Opcodes.
const (
	OpGet byte = iota + 1
	OpPut
	OpDelete
	OpScan
	OpBatch
)

// Response statuses. StatusOverloaded means admission control shed
// the request before executing it — nothing was applied, so any
// request answered with it is safe to retry after backing off.
const (
	StatusOK byte = iota
	StatusNotFound
	StatusErr
	StatusOverloaded
)

// Protocol limits. Frames above MaxFrame, scans above MaxScan and
// batches above MaxBatch are rejected before any allocation sized from
// untrusted input.
const (
	MaxFrame = 1 << 20
	MaxScan  = 4096
	MaxBatch = 1024
)

// KV is one key/value pair in a SCAN response. It aliases the
// repo-wide pair type, so index scan results pass through the server
// without per-pair conversion.
type KV = kv.KV

// Request is one decoded client request. For OpBatch only Sub is
// meaningful; Max is the SCAN result cap.
type Request struct {
	Op    byte
	Key   uint64
	Value uint64
	Max   uint32
	Sub   []Request
}

// Response is one decoded server response, shaped by the request it
// answers. Found is false exactly when Status is StatusNotFound.
type Response struct {
	Status   byte
	Value    uint64 // GET
	Inserted bool   // PUT
	Pairs    []KV   // SCAN
	Sub      []Response
	Err      string
}

// Get/Put/Del/Scan/Batch are request constructors for the common case.
func Get(k uint64) Request                  { return Request{Op: OpGet, Key: k} }
func Put(k, v uint64) Request               { return Request{Op: OpPut, Key: k, Value: v} }
func Del(k uint64) Request                  { return Request{Op: OpDelete, Key: k} }
func Scan(start uint64, max uint32) Request { return Request{Op: OpScan, Key: start, Max: max} }
func Batch(sub ...Request) Request          { return Request{Op: OpBatch, Sub: sub} }

// errNestedBatch rejects a batch inside a batch, on both sides.
var errNestedBatch = errors.New("wire: nested batch")

// Error constructors for protocol violations. These live outside the
// encode/decode bodies because fmt.Errorf boxes its operands: the hot
// functions carry the //optiql:noalloc contract, and a malformed frame
// is the one path where paying an allocation is fine.
func errScanMax(m uint32) error {
	return fmt.Errorf("wire: scan max %d out of range [1, %d]", m, MaxScan)
}

func errBatchSize(n int) error {
	return fmt.Errorf("wire: batch size %d out of range [1, %d]", n, MaxBatch)
}

func errUnknownOp(op byte) error { return fmt.Errorf("wire: unknown opcode %d", op) }

func errUnknownStatus(st byte) error { return fmt.Errorf("wire: unknown status %d", st) }

func errRequestFrame(n int) error {
	return fmt.Errorf("wire: request frame %d exceeds %d bytes", n, MaxFrame)
}

func errResponseFrame(n int) error {
	return fmt.Errorf("wire: response frame %d exceeds %d bytes", n, MaxFrame)
}

func errFrameLen(n uint32) error {
	return fmt.Errorf("wire: frame of %d bytes exceeds %d", n, MaxFrame)
}

func errTrailingRequest(n int) error {
	return fmt.Errorf("wire: %d trailing bytes after request", n)
}

func errTrailingResponse(n int) error {
	return fmt.Errorf("wire: %d trailing bytes after response", n)
}

func errScanPairs(n int) error {
	return fmt.Errorf("wire: scan response with %d pairs exceeds %d", n, MaxScan)
}

func errScanCount(n uint32) error {
	return fmt.Errorf("wire: scan response count %d exceeds %d", n, MaxScan)
}

func errBatchResp(n, want int) error {
	return fmt.Errorf("wire: batch response has %d sub-responses for %d sub-requests", n, want)
}

//optiql:noalloc
func appendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }

//optiql:noalloc
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }

//optiql:noalloc
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

// appendRequestBody encodes r without the frame header.
//
//optiql:noalloc
func appendRequestBody(dst []byte, r *Request, nested bool) ([]byte, error) {
	dst = append(dst, r.Op)
	switch r.Op {
	case OpGet, OpDelete:
		dst = appendU64(dst, r.Key)
	case OpPut:
		dst = appendU64(dst, r.Key)
		dst = appendU64(dst, r.Value)
	case OpScan:
		if r.Max == 0 || r.Max > MaxScan {
			return nil, errScanMax(r.Max)
		}
		dst = appendU64(dst, r.Key)
		dst = appendU32(dst, r.Max)
	case OpBatch:
		if nested {
			return nil, errNestedBatch
		}
		if len(r.Sub) == 0 || len(r.Sub) > MaxBatch {
			return nil, errBatchSize(len(r.Sub))
		}
		dst = appendU32(dst, uint32(len(r.Sub)))
		for i := range r.Sub {
			var err error
			if dst, err = appendRequestBody(dst, &r.Sub[i], true); err != nil {
				return nil, err
			}
		}
	default:
		return nil, errUnknownOp(r.Op)
	}
	return dst, nil
}

// AppendRequest encodes r as a complete frame appended to dst.
//
//optiql:noalloc
func AppendRequest(dst []byte, r *Request) ([]byte, error) {
	at := len(dst)
	dst = appendU32(dst, 0) // patched below
	dst, err := appendRequestBody(dst, r, false)
	if err != nil {
		return nil, err
	}
	n := len(dst) - at - 4
	if n > MaxFrame {
		return nil, errRequestFrame(n)
	}
	binary.BigEndian.PutUint32(dst[at:], uint32(n))
	return dst, nil
}

// reader walks an already-read payload.
type reader struct {
	b []byte
}

//optiql:noalloc
func (r *reader) u8() (byte, error) {
	if len(r.b) < 1 {
		return 0, io.ErrUnexpectedEOF
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

//optiql:noalloc
func (r *reader) u16() (uint16, error) {
	if len(r.b) < 2 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v, nil
}

//optiql:noalloc
func (r *reader) u32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

//optiql:noalloc
func (r *reader) u64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

//optiql:noalloc
func (r *reader) bytes(n int) ([]byte, error) {
	if len(r.b) < n {
		return nil, io.ErrUnexpectedEOF
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v, nil
}

//optiql:noalloc
func parseRequestBody(r *reader, nested bool) (Request, error) {
	var req Request
	op, err := r.u8()
	if err != nil {
		return req, err
	}
	req.Op = op
	switch op {
	case OpGet, OpDelete:
		req.Key, err = r.u64()
	case OpPut:
		if req.Key, err = r.u64(); err == nil {
			req.Value, err = r.u64()
		}
	case OpScan:
		if req.Key, err = r.u64(); err == nil {
			req.Max, err = r.u32()
			if err == nil && (req.Max == 0 || req.Max > MaxScan) {
				err = errScanMax(req.Max)
			}
		}
	case OpBatch:
		if nested {
			return req, errNestedBatch
		}
		var n uint32
		if n, err = r.u32(); err != nil {
			return req, err
		}
		if n == 0 || n > MaxBatch {
			return req, errBatchSize(int(n))
		}
		//optiqlvet:ignore noalloc a batch owns its sub-request slice; the allocation is per batch, not per operation, and the alloc tests only pin non-batch shapes
		req.Sub = make([]Request, n)
		for i := range req.Sub {
			if req.Sub[i], err = parseRequestBody(r, true); err != nil {
				return req, err
			}
		}
	default:
		err = errUnknownOp(op)
	}
	return req, err
}

// ParseRequest decodes one request payload (without the frame header).
// Trailing bytes are a protocol error.
//
//optiql:noalloc
func ParseRequest(payload []byte) (Request, error) {
	r := reader{payload}
	req, err := parseRequestBody(&r, false)
	if err != nil {
		return req, err
	}
	if len(r.b) != 0 {
		return req, errTrailingRequest(len(r.b))
	}
	return req, nil
}

// appendResponseBody encodes resp for the request shape req.
//
//optiql:noalloc
func appendResponseBody(dst []byte, req *Request, resp *Response) ([]byte, error) {
	dst = append(dst, resp.Status)
	if resp.Status == StatusErr {
		msg := resp.Err
		if len(msg) > 1<<15 {
			msg = msg[:1<<15]
		}
		dst = appendU16(dst, uint16(len(msg)))
		dst = append(dst, msg...)
		return dst, nil
	}
	if resp.Status != StatusOK {
		return dst, nil // NOT_FOUND has no body
	}
	switch req.Op {
	case OpGet:
		dst = appendU64(dst, resp.Value)
	case OpPut:
		var ins byte
		if resp.Inserted {
			ins = 1
		}
		dst = append(dst, ins)
	case OpDelete:
	case OpScan:
		if len(resp.Pairs) > MaxScan {
			return nil, errScanPairs(len(resp.Pairs))
		}
		dst = appendU32(dst, uint32(len(resp.Pairs)))
		for _, pr := range resp.Pairs {
			dst = appendU64(dst, pr.Key)
			dst = appendU64(dst, pr.Value)
		}
	case OpBatch:
		if len(resp.Sub) != len(req.Sub) {
			return nil, errBatchResp(len(resp.Sub), len(req.Sub))
		}
		dst = appendU32(dst, uint32(len(resp.Sub)))
		for i := range resp.Sub {
			var err error
			if dst, err = appendResponseBody(dst, &req.Sub[i], &resp.Sub[i]); err != nil {
				return nil, err
			}
		}
	default:
		return nil, errUnknownOp(req.Op)
	}
	return dst, nil
}

// AppendResponse encodes resp (answering req) as a complete frame
// appended to dst.
//
//optiql:noalloc
func AppendResponse(dst []byte, req *Request, resp *Response) ([]byte, error) {
	at := len(dst)
	dst = appendU32(dst, 0)
	dst, err := appendResponseBody(dst, req, resp)
	if err != nil {
		return nil, err
	}
	n := len(dst) - at - 4
	if n > MaxFrame {
		return nil, errResponseFrame(n)
	}
	binary.BigEndian.PutUint32(dst[at:], uint32(n))
	return dst, nil
}

//optiql:noalloc
func parseResponseBody(r *reader, req *Request) (Response, error) {
	var resp Response
	st, err := r.u8()
	if err != nil {
		return resp, err
	}
	resp.Status = st
	switch st {
	case StatusErr:
		n, err := r.u16()
		if err != nil {
			return resp, err
		}
		msg, err := r.bytes(int(n))
		if err != nil {
			return resp, err
		}
		//optiqlvet:ignore noalloc the error message must outlive the frame buffer it aliases; ERR closes the connection, so this copy happens at most once per connection
		resp.Err = string(msg)
		return resp, nil
	case StatusNotFound, StatusOverloaded:
		return resp, nil
	case StatusOK:
	default:
		return resp, errUnknownStatus(st)
	}
	switch req.Op {
	case OpGet:
		resp.Value, err = r.u64()
	case OpPut:
		var b byte
		if b, err = r.u8(); err == nil {
			resp.Inserted = b == 1
		}
	case OpDelete:
	case OpScan:
		var n uint32
		if n, err = r.u32(); err != nil {
			return resp, err
		}
		if n > MaxScan {
			return resp, errScanCount(n)
		}
		//optiqlvet:ignore noalloc the decoded pairs must outlive the frame buffer; clients that care reuse the Response and the alloc tests pin the encode side instead
		resp.Pairs = make([]KV, n)
		for i := range resp.Pairs {
			if resp.Pairs[i].Key, err = r.u64(); err != nil {
				return resp, err
			}
			if resp.Pairs[i].Value, err = r.u64(); err != nil {
				return resp, err
			}
		}
	case OpBatch:
		var n uint32
		if n, err = r.u32(); err != nil {
			return resp, err
		}
		if int(n) != len(req.Sub) {
			return resp, errBatchResp(int(n), len(req.Sub))
		}
		//optiqlvet:ignore noalloc a batch owns its sub-response slice; the allocation is per batch, not per operation
		resp.Sub = make([]Response, n)
		for i := range resp.Sub {
			if resp.Sub[i], err = parseResponseBody(r, &req.Sub[i]); err != nil {
				return resp, err
			}
		}
	default:
		err = errUnknownOp(req.Op)
	}
	return resp, err
}

// ParseResponse decodes one response payload answering req. Trailing
// bytes are a protocol error.
//
//optiql:noalloc
func ParseResponse(payload []byte, req *Request) (Response, error) {
	r := reader{payload}
	resp, err := parseResponseBody(&r, req)
	if err != nil {
		return resp, err
	}
	if len(r.b) != 0 {
		return resp, errTrailingResponse(len(r.b))
	}
	return resp, nil
}

// ReadFrame reads one frame payload from br into buf (growing it as
// needed) and returns the payload slice, which aliases buf and is only
// valid until the next call.
//
//optiql:noalloc
func ReadFrame(br *bufio.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, errFrameLen(n)
	}
	if cap(*buf) < int(n) {
		//optiqlvet:ignore noalloc grow-only buffer: reallocates only while warming up to the connection's peak frame size
		*buf = make([]byte, n)
	}
	payload := (*buf)[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// frameRetain is the largest read buffer a FrameBuf keeps to itself
// between frames. The overwhelming majority of frames are tens of
// bytes; anything larger is served from a shared pool and returned as
// soon as the payload has been parsed, so one huge frame does not pin
// up to MaxFrame of memory for the rest of the connection's lifetime
// (which ReadFrame's grow-only buffer does).
const frameRetain = 64 << 10

// bigFramePool serves the rare above-frameRetain payloads. Entries are
// full MaxFrame buffers so a Get never needs to grow.
var bigFramePool = sync.Pool{New: func() any {
	b := make([]byte, MaxFrame)
	return &b
}}

// FrameBuf is a reusable frame read buffer with bounded retention: a
// small buffer is kept across frames, large ones are borrowed from a
// shared pool for exactly one frame. The zero value is ready to use.
type FrameBuf struct {
	small []byte
	big   *[]byte
}

// take returns a buffer with room for an n-byte payload.
//
//optiql:noalloc
func (f *FrameBuf) take(n int) []byte {
	if n <= frameRetain {
		if cap(f.small) < n {
			//optiqlvet:ignore noalloc one-time warmup: the retained buffer is allocated at full size on first use and reused for every later frame
			f.small = make([]byte, frameRetain)
		}
		return f.small[:n]
	}
	if f.big == nil {
		f.big = bigFramePool.Get().(*[]byte)
	}
	return (*f.big)[:n]
}

// Release returns a borrowed large buffer to the shared pool. Call it
// once the previous payload has been fully consumed (parsed into an
// owned Request/Response — the parsers never alias the payload);
// calling it with no borrow outstanding is a no-op.
//
//optiql:noalloc
func (f *FrameBuf) Release() {
	if f.big != nil {
		bigFramePool.Put(f.big)
		f.big = nil
	}
}

// ReadFrameBuf is ReadFrame against a FrameBuf: the returned payload
// aliases the FrameBuf's storage and is valid until the next call or
// Release, whichever comes first.
//
//optiql:noalloc
func ReadFrameBuf(br *bufio.Reader, fb *FrameBuf) ([]byte, error) {
	// The header is staged in the retained buffer rather than a local
	// array: a local escapes through the io.ReadFull interface call and
	// would cost one heap allocation per frame.
	hdr := fb.take(4)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxFrame {
		return nil, errFrameLen(n)
	}
	payload := fb.take(int(n))
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}
