package wire

import (
	"bufio"
	"fmt"
	"net"
	"time"
)

// Client is a pipelined protocol client: Send queues any number of
// requests without waiting, Recv returns responses in request order. A
// Client is not safe for concurrent use — drive each connection from
// one goroutine, the same discipline the benchmark workers follow.
//
// A Client is poisoned by its first transport or decode error: once a
// frame is lost or misparsed the request/response pairing on the
// stream is unknowable, so every later Send/Recv/Do returns the same
// sticky error immediately instead of silently desynchronizing. The
// only recovery is a fresh connection (see ReconnClient).
type Client struct {
	nc      net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	pending []Request // FIFO of unanswered requests
	rbuf    FrameBuf
	timeout time.Duration
	err     error // sticky; set by the first transport/decode failure
}

// Dial connects to a server at addr.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection. TCP connections get
// TCP_NODELAY and keep-alive probes: the protocol pipelines many small
// frames, so Nagle-delaying them costs latency for nothing, and
// keep-alives surface dead peers on otherwise idle connections.
func NewClient(nc net.Conn) *Client {
	TuneTCP(nc)
	return &Client{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
}

// TuneTCP applies the transport settings both ends of the protocol
// want on a TCP connection: no Nagle delay (pipelined small frames)
// and keep-alive probes (dead-peer detection). It unwraps fault-
// injection or similar wrappers exposing Unwrap() net.Conn, and is a
// no-op on anything that is not ultimately a *net.TCPConn.
func TuneTCP(nc net.Conn) {
	for {
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
			tc.SetKeepAlive(true)
			tc.SetKeepAlivePeriod(30 * time.Second)
			return
		}
		u, ok := nc.(interface{ Unwrap() net.Conn })
		if !ok {
			return
		}
		nc = u.Unwrap()
	}
}

// SetTimeout bounds each subsequent Recv (and the implicit flush
// before it) with a deadline: a server that neither answers nor
// closes within d yields a timeout error instead of pinning the
// caller forever. Zero disables the bound.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Err returns the sticky error poisoning this client, if any.
func (c *Client) Err() error { return c.err }

// poison records the first fatal error and returns it.
func (c *Client) poison(err error) error {
	if c.err == nil {
		c.err = err
	}
	return c.err
}

// Send encodes and buffers one request; call Flush (or Recv, which
// flushes first) to put it on the wire.
func (c *Client) Send(r Request) error {
	if c.err != nil {
		return c.err
	}
	frame, err := AppendRequest(nil, &r)
	if err != nil {
		// Encoding errors are the caller's bug, not stream damage: the
		// request never touched the wire, so the client stays usable.
		return err
	}
	if _, err := c.bw.Write(frame); err != nil {
		return c.poison(err)
	}
	c.pending = append(c.pending, r)
	return nil
}

// Flush writes all buffered requests to the connection.
func (c *Client) Flush() error {
	if c.err != nil {
		return c.err
	}
	c.armDeadline()
	if err := c.bw.Flush(); err != nil {
		return c.poison(err)
	}
	return nil
}

// Pending returns the number of sent-but-unanswered requests.
func (c *Client) Pending() int { return len(c.pending) }

// armDeadline applies the per-request timeout to the connection.
func (c *Client) armDeadline() {
	if c.timeout > 0 {
		c.nc.SetDeadline(time.Now().Add(c.timeout))
	}
}

// Recv flushes buffered requests and reads the response to the oldest
// pending one. Transport and decode errors poison the client: the
// stream can no longer be trusted to pair responses with requests.
func (c *Client) Recv() (Response, error) {
	if c.err != nil {
		return Response{}, c.err
	}
	if len(c.pending) == 0 {
		return Response{}, fmt.Errorf("wire: Recv with no pending request")
	}
	if err := c.Flush(); err != nil {
		return Response{}, err
	}
	payload, err := ReadFrameBuf(c.br, &c.rbuf)
	if err != nil {
		return Response{}, c.poison(err)
	}
	req := c.pending[0]
	c.pending = c.pending[1:]
	resp, err := ParseResponse(payload, &req)
	c.rbuf.Release() // resp owns its data; a big frame's buffer goes back
	if err != nil {
		return resp, c.poison(err)
	}
	return resp, nil
}

// Do is the synchronous path: Send, Flush and Recv one request. It
// must not be interleaved with outstanding pipelined requests.
func (c *Client) Do(r Request) (Response, error) {
	if c.err != nil {
		return Response{}, c.err
	}
	if len(c.pending) != 0 {
		return Response{}, fmt.Errorf("wire: Do with %d pipelined requests outstanding", len(c.pending))
	}
	if err := c.Send(r); err != nil {
		return Response{}, err
	}
	return c.Recv()
}

// CloseWrite flushes and half-closes the connection, telling the
// server no more requests are coming; the server drains what it has
// read and closes. Responses can still be received afterwards.
func (c *Client) CloseWrite() error {
	if err := c.bw.Flush(); err != nil {
		return c.poison(err)
	}
	if tc, ok := c.nc.(*net.TCPConn); ok {
		return tc.CloseWrite()
	}
	return nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }
