package wire

import (
	"bufio"
	"fmt"
	"net"
)

// Client is a pipelined protocol client: Send queues any number of
// requests without waiting, Recv returns responses in request order. A
// Client is not safe for concurrent use — drive each connection from
// one goroutine, the same discipline the benchmark workers follow.
type Client struct {
	nc      net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	pending []Request // FIFO of unanswered requests
	rbuf    []byte
}

// Dial connects to a server at addr.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection.
func NewClient(nc net.Conn) *Client {
	return &Client{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
}

// Send encodes and buffers one request; call Flush (or Recv, which
// flushes first) to put it on the wire.
func (c *Client) Send(r Request) error {
	frame, err := AppendRequest(nil, &r)
	if err != nil {
		return err
	}
	if _, err := c.bw.Write(frame); err != nil {
		return err
	}
	c.pending = append(c.pending, r)
	return nil
}

// Flush writes all buffered requests to the connection.
func (c *Client) Flush() error { return c.bw.Flush() }

// Pending returns the number of sent-but-unanswered requests.
func (c *Client) Pending() int { return len(c.pending) }

// Recv flushes buffered requests and reads the response to the oldest
// pending one.
func (c *Client) Recv() (Response, error) {
	if len(c.pending) == 0 {
		return Response{}, fmt.Errorf("wire: Recv with no pending request")
	}
	if err := c.bw.Flush(); err != nil {
		return Response{}, err
	}
	payload, err := ReadFrame(c.br, &c.rbuf)
	if err != nil {
		return Response{}, err
	}
	req := c.pending[0]
	c.pending = c.pending[1:]
	return ParseResponse(payload, &req)
}

// Do is the synchronous path: Send, Flush and Recv one request. It
// must not be interleaved with outstanding pipelined requests.
func (c *Client) Do(r Request) (Response, error) {
	if len(c.pending) != 0 {
		return Response{}, fmt.Errorf("wire: Do with %d pipelined requests outstanding", len(c.pending))
	}
	if err := c.Send(r); err != nil {
		return Response{}, err
	}
	return c.Recv()
}

// CloseWrite flushes and half-closes the connection, telling the
// server no more requests are coming; the server drains what it has
// read and closes. Responses can still be received afterwards.
func (c *Client) CloseWrite() error {
	if err := c.bw.Flush(); err != nil {
		return err
	}
	if tc, ok := c.nc.(*net.TCPConn); ok {
		return tc.CloseWrite()
	}
	return nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }
