package wire

import (
	"bufio"
	"bytes"
	"testing"
)

// TestEncodeDecodeAllocs pins the per-frame alloc budget of the hot
// serving path: with reused encode buffers, a point op's full
// encode/decode round trip (request and response) must not allocate,
// and a scan response encode into a reused buffer must not either.
func TestEncodeDecodeAllocs(t *testing.T) {
	reqBuf := make([]byte, 0, 256)
	respBuf := make([]byte, 0, 256)

	t.Run("get-roundtrip", func(t *testing.T) {
		req := Get(42)
		resp := Response{Status: StatusOK, Value: 7}
		allocs := testing.AllocsPerRun(1000, func() {
			var err error
			reqBuf, err = AppendRequest(reqBuf[:0], &req)
			if err != nil {
				t.Fatal(err)
			}
			pr, err := ParseRequest(reqBuf[4:])
			if err != nil || pr.Key != 42 {
				t.Fatalf("ParseRequest = %+v, %v", pr, err)
			}
			respBuf, err = AppendResponse(respBuf[:0], &req, &resp)
			if err != nil {
				t.Fatal(err)
			}
			rr, err := ParseResponse(respBuf[4:], &req)
			if err != nil || rr.Value != 7 {
				t.Fatalf("ParseResponse = %+v, %v", rr, err)
			}
		})
		if allocs != 0 {
			t.Errorf("GET round trip allocates %.1f objects, want 0", allocs)
		}
	})

	t.Run("scan-encode", func(t *testing.T) {
		pairs := make([]KV, 64)
		for i := range pairs {
			pairs[i] = KV{Key: uint64(i), Value: uint64(i) * 2}
		}
		req := Scan(0, 64)
		resp := Response{Status: StatusOK, Pairs: pairs}
		buf := make([]byte, 0, 4+1+4+16*len(pairs))
		allocs := testing.AllocsPerRun(1000, func() {
			var err error
			buf, err = AppendResponse(buf[:0], &req, &resp)
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("scan response encode allocates %.1f objects, want 0", allocs)
		}
	})

	// The frame reader retains its small buffer across frames, so
	// steady-state reads of modest frames must not allocate.
	t.Run("read-frame", func(t *testing.T) {
		req := Get(42)
		frame, err := AppendRequest(nil, &req)
		if err != nil {
			t.Fatal(err)
		}
		var stream bytes.Buffer
		for i := 0; i < 8; i++ {
			stream.Write(frame)
		}
		rd := bytes.NewReader(stream.Bytes())
		br := bufio.NewReader(rd)
		var fb FrameBuf
		// Warm the retained buffer before measuring.
		if _, err := ReadFrameBuf(br, &fb); err != nil {
			t.Fatal(err)
		}
		fb.Release()
		allocs := testing.AllocsPerRun(1000, func() {
			rd.Seek(0, 0)
			br.Reset(rd)
			payload, err := ReadFrameBuf(br, &fb)
			if err != nil || len(payload) != len(frame)-4 {
				t.Fatalf("ReadFrameBuf = %d bytes, %v", len(payload), err)
			}
			fb.Release()
		})
		if allocs != 0 {
			t.Errorf("frame read allocates %.1f objects, want 0", allocs)
		}
	})
}
