package wire

import (
	"errors"
	"io"
	"net"
	"os"
	"syscall"
	"time"

	"optiql/internal/obs"
	"optiql/internal/obs/trace"
)

// Retryable classifies an error from a protocol client: true means a
// transport-level failure (timeout, reset, refused, closed, torn
// frame) that a fresh connection may cure; false means a logical
// error — a request that cannot encode, a misused API, a peer
// violating the protocol — that retrying the same bytes cannot fix.
// ReconnClient consults this for its dial/termination decisions; note
// that for idempotent reads it reconnects and retries even on decode
// (non-Retryable) errors, because a fresh connection resets the
// stream that corruption desynchronized.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNABORTED) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// ReconnStats counts one ReconnClient's resilience events.
type ReconnStats struct {
	// Dials is the number of connections established (first included).
	Dials uint64 `json:"dials"`
	// Reconnects is Dials minus the first connection.
	Reconnects uint64 `json:"reconnects"`
	// Retries counts request attempts beyond each request's first.
	Retries uint64 `json:"retries"`
	// Overloaded counts StatusOverloaded answers observed.
	Overloaded uint64 `json:"overloaded"`
	// Failures counts requests ultimately surfaced as errors.
	Failures uint64 `json:"failures"`
}

// ReconnClient is a synchronous self-healing client: it dials lazily,
// re-establishes the connection after transport failures with
// truncated exponential backoff plus jitter (the same discipline as
// the lock layer's OptLockBackoff, stretched from spin iterations to
// wall-clock time), and transparently retries where that is safe:
//
//   - idempotent reads (GET, SCAN) are retried on any retryable error;
//   - dial failures are retried for every opcode (nothing was sent);
//   - StatusOverloaded answers are retried for every opcode after
//     backing off (the server sheds before applying, so nothing
//     happened);
//   - writes whose connection died mid-request are NOT retried — the
//     server may or may not have applied them — the error is surfaced
//     and the caller decides (its own oracle, versioned values, ...).
//
// A ReconnClient is not safe for concurrent use, matching Client.
type ReconnClient struct {
	// Addr is the server address.
	Addr string
	// DialFunc, when set, replaces net.Dial (fault injection hooks in
	// here). The returned connection is TCP-tuned automatically.
	DialFunc func(addr string) (net.Conn, error)
	// Timeout bounds each request attempt (default 5s; <0 disables).
	Timeout time.Duration
	// MaxRetries caps attempts beyond the first per request (default 8).
	MaxRetries int
	// BackoffMin/BackoffMax bound the truncated exponential backoff
	// between attempts (defaults 1ms / 200ms).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Seed seeds the backoff jitter stream; zero derives a seed from
	// the wall clock. A fixed seed makes the retry schedule
	// reproducible — the crash harness and the backoff tests rely on
	// that determinism.
	Seed uint64
	// Counters, when set, mirrors retries/reconnects/overload answers
	// into the shared obs registry (EvCli*).
	Counters *obs.Counters
	// Trace, when set, records backoff sleeps (KindCliRetry, Dur = the
	// slept delay) and re-dials (KindCliReconnect, Dur = dial time) as
	// trace spans, so chaos runs show client-attributed latency next to
	// the server's lock waits. Retries are rare, so spans are recorded
	// unconditionally rather than sampled.
	Trace *trace.Buf

	cl    *Client
	seed  uint64
	stats ReconnStats
}

// NewReconnClient returns a client for addr with default policy.
func NewReconnClient(addr string) *ReconnClient {
	return &ReconnClient{Addr: addr}
}

func (rc *ReconnClient) defaults() {
	if rc.Timeout == 0 {
		rc.Timeout = 5 * time.Second
	}
	if rc.MaxRetries == 0 {
		rc.MaxRetries = 8
	}
	if rc.BackoffMin <= 0 {
		rc.BackoffMin = time.Millisecond
	}
	if rc.BackoffMax < rc.BackoffMin {
		rc.BackoffMax = 200 * time.Millisecond
	}
	if rc.seed == 0 {
		if rc.Seed != 0 {
			rc.seed = rc.Seed
		} else {
			rc.seed = uint64(time.Now().UnixNano()) | 1
		}
	}
}

// Stats returns the client's resilience counters.
func (rc *ReconnClient) Stats() ReconnStats { return rc.stats }

// Connected reports whether a live connection is currently held.
func (rc *ReconnClient) Connected() bool { return rc.cl != nil }

// Close drops the current connection, if any.
func (rc *ReconnClient) Close() error {
	if rc.cl == nil {
		return nil
	}
	err := rc.cl.Close()
	rc.cl = nil
	return err
}

func (rc *ReconnClient) connect() error {
	dial := rc.DialFunc
	var nc net.Conn
	var err error
	t0 := rc.Trace.Now()
	if dial != nil {
		nc, err = dial(rc.Addr)
	} else {
		nc, err = net.Dial("tcp", rc.Addr)
	}
	if err != nil {
		return err
	}
	rc.cl = NewClient(nc)
	if rc.Timeout > 0 {
		rc.cl.SetTimeout(rc.Timeout)
	}
	rc.stats.Dials++
	if rc.stats.Dials > 1 {
		rc.stats.Reconnects++
		rc.Counters.Inc(obs.EvCliReconnect)
		rc.Trace.Record(trace.KindCliReconnect, 0, t0, rc.Trace.Now()-t0, 0, 0)
	}
	return nil
}

// nextRand is a splitmix64 step for backoff jitter.
func (rc *ReconnClient) nextRand() uint64 {
	rc.seed += 0x9E3779B97F4A7C15
	x := rc.seed
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// nextBackoff draws the next jittered delay — uniform in
// [limit/2, limit] — and doubles the limit, truncated at BackoffMax:
// the OptLockBackoff idiom on a wall-clock scale. Split from the
// sleep so the bounds and seed-determinism are testable directly.
func (rc *ReconnClient) nextBackoff(limit *time.Duration) time.Duration {
	d := *limit/2 + time.Duration(rc.nextRand()%uint64(*limit/2+1))
	if *limit < rc.BackoffMax {
		*limit *= 2
		if *limit > rc.BackoffMax {
			*limit = rc.BackoffMax
		}
	}
	return d
}

// backoff sleeps for the next jittered delay under *limit.
func (rc *ReconnClient) backoff(limit *time.Duration) {
	d := rc.nextBackoff(limit)
	t0 := rc.Trace.Now()
	time.Sleep(d)
	rc.Trace.Record(trace.KindCliRetry, 0, t0, rc.Trace.Now()-t0, 0, 0)
}

// retry accounts one retry decision.
func (rc *ReconnClient) retry(limit *time.Duration) {
	rc.stats.Retries++
	rc.Counters.Inc(obs.EvCliRetry)
	rc.backoff(limit)
}

// Do executes one request with the retry policy described on the
// type. The last response/error is returned when the attempt budget
// runs out (a final StatusOverloaded is returned as-is, not an error:
// the server answered, the caller sees the shed).
func (rc *ReconnClient) Do(req Request) (Response, error) {
	rc.defaults()
	idempotent := req.Op == OpGet || req.Op == OpScan
	limit := rc.BackoffMin
	attempts := 0
	for {
		if rc.cl == nil {
			if err := rc.connect(); err != nil {
				// Nothing was sent: every opcode may retry a failed dial.
				if attempts >= rc.MaxRetries {
					rc.stats.Failures++
					return Response{}, err
				}
				attempts++
				rc.retry(&limit)
				continue
			}
		}
		resp, err := rc.cl.Do(req)
		if err == nil {
			if resp.Status == StatusOverloaded {
				rc.stats.Overloaded++
				rc.Counters.Inc(obs.EvCliOverloaded)
				if attempts >= rc.MaxRetries {
					return resp, nil
				}
				attempts++
				rc.retry(&limit) // connection is healthy; just shed
				continue
			}
			return resp, nil
		}
		if rc.cl.Err() == nil {
			// The connection is intact: the error is a logical one
			// (unencodable request, misuse) that no retry can fix.
			rc.stats.Failures++
			return Response{}, err
		}
		// The stream is poisoned; only a new connection can continue.
		// Reads retry on any poisoning error — transport or decode — a
		// fresh connection resets the stream either way. Writes are
		// indeterminate (the server may have applied them before the
		// stream died), so the error is surfaced to the caller's own
		// recovery instead.
		rc.Close()
		if !idempotent || attempts >= rc.MaxRetries {
			rc.stats.Failures++
			return Response{}, err
		}
		attempts++
		rc.retry(&limit)
	}
}
