package server

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"optiql/internal/indextest"
	"optiql/internal/locks"
	"optiql/internal/obs"
	"optiql/internal/server/wire"
	"optiql/internal/workload"
)

// These tests prove the flat-combining executor path equivalent to the
// seed's FIFO apply loop:
//
//   - TestDeterministicScheduleCombinedVsFIFO replays fixed seeded
//     schedules (indextest.SchedProgram) through the real applyBatch of
//     a combined and a FIFO executor and asserts per-op response
//     equality, oracle agreement, per-connection read-your-writes
//     between batches and byte-identical final tree state — over both
//     indexes and every lock scheme.
//   - TestCombinedApplyPropertyVsOracle submits random programs through
//     the live executor channel, so batch boundaries (and therefore the
//     runs applyCombined sees) are nondeterministic, with concurrent
//     readers hammering the hot keys; FIFO responses must still match
//     the serial oracle exactly.
//   - TestCombineThetaSweep checks the policy end-to-end: theta=0.99
//     Zipfian traffic arms it and combines for real, uniform traffic
//     never arms, leaves every combine counter at zero and adds zero
//     allocations over the seed's apply loop.

// newShardServer builds a single-shard server that never listens: the
// tests drive its executor directly (applyBatch is synchronous) or
// through its channel. One shard makes routing deterministic — every
// key lands on executor 0.
func newShardServer(t testing.TB, index, scheme string, combine bool) *Server {
	t.Helper()
	s, err := New(Config{Index: index, Scheme: scheme, Shards: 1, Combine: combine})
	if err != nil {
		t.Skipf("scheme unsupported by substrate: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// schedOps converts one schedule batch into executor writeOps, each
// with its own single-op pending, exactly as conn.go would submit them.
func schedOps(batch []indextest.SchedOp) []writeOp {
	ops := make([]writeOp, len(batch))
	for i, op := range batch {
		p := &pending{ready: make(chan struct{})}
		p.remaining.Store(1)
		o := byte(wire.OpPut)
		if op.Op == indextest.SchedDelete {
			o = wire.OpDelete
		}
		ops[i] = writeOp{op: o, key: op.Key, val: op.Val, p: p, slot: &p.resp}
	}
	return ops
}

// wantResp is the serial-oracle response for one schedule op.
func wantResp(op indextest.SchedOp, inserted, found bool) wire.Response {
	r := wire.Response{Status: wire.StatusOK}
	if op.Op == indextest.SchedPut {
		r.Inserted = inserted
	} else if !found {
		r.Status = wire.StatusNotFound
	}
	return r
}

// TestDeterministicScheduleCombinedVsFIFO is the deterministic-schedule
// harness: the same seeded program replayed batch-for-batch through a
// combined (policy force-armed on the program's hot keys) and a FIFO
// executor. The replay is single-threaded — the executor goroutines sit
// blocked on their empty channels — so even the optimistic schemes run
// under -race: with no concurrent reader there is no by-design race to
// flag, and determinism is the point.
func TestDeterministicScheduleCombinedVsFIFO(t *testing.T) {
	for _, index := range []string{"btree", "art"} {
		for _, scheme := range locks.AllNames() {
			t.Run(index+"/"+scheme, func(t *testing.T) {
				prog := indextest.NewSchedProgram(0xD5C0DE, 4, 60, 16, 256, 3, 0.6)
				replaySched(t, index, scheme, prog)
			})
		}
	}
}

func replaySched(t *testing.T, index, scheme string, prog *indextest.SchedProgram) {
	t.Helper()
	comb := newShardServer(t, index, scheme, true)
	fifo := newShardServer(t, index, scheme, false)
	ce, fe := comb.shards[0].exec, fifo.shards[0].exec
	ce.pol.Arm(prog.HotKeys...)
	oracle := indextest.NewSchedOracle()
	for bi, batch := range prog.Batches {
		cw, fw := schedOps(batch), schedOps(batch)
		ce.inflight.Add(int64(len(batch)))
		fe.inflight.Add(int64(len(batch)))
		ce.applyBatch(cw)
		fe.applyBatch(fw)
		for i, op := range batch {
			ins, fnd := oracle.Apply(op)
			want := wantResp(op, ins, fnd)
			cg, fg := cw[i].slot, fw[i].slot
			if cg.Status != fg.Status || cg.Inserted != fg.Inserted {
				t.Fatalf("batch %d op %d (%+v): combined answered {%d %v}, FIFO {%d %v}",
					bi, i, op, cg.Status, cg.Inserted, fg.Status, fg.Inserted)
			}
			if cg.Status != want.Status || cg.Inserted != want.Inserted {
				t.Fatalf("batch %d op %d (%+v): got {%d %v}, oracle wants {%d %v}",
					bi, i, op, cg.Status, cg.Inserted, want.Status, want.Inserted)
			}
			select {
			case <-cw[i].p.ready:
			default:
				t.Fatalf("batch %d op %d: combined apply did not complete the op", bi, i)
			}
		}
		// Between batches every connection must see its own surviving
		// writes on the combined server.
		if msg := oracle.ReadYourWrites(func(k uint64) (uint64, bool) {
			return comb.shards[0].idx.Lookup(ce.ctx, k)
		}); msg != "" {
			t.Fatalf("after batch %d: %s", bi, msg)
		}
	}
	// Final state: combined scan byte-identical to FIFO scan, and both
	// exactly the oracle's contents.
	cs := comb.shards[0].idx.Scan(ce.ctx, 0, 1<<20, nil)
	fs := fifo.shards[0].idx.Scan(fe.ctx, 0, 1<<20, nil)
	if len(cs) != len(fs) {
		t.Fatalf("final state diverged: combined has %d keys, FIFO %d", len(cs), len(fs))
	}
	for i := range cs {
		if cs[i] != fs[i] {
			t.Fatalf("final state diverged at rank %d: combined %+v, FIFO %+v", i, cs[i], fs[i])
		}
		if v, ok := oracle.Get(cs[i].Key); !ok || v != cs[i].Value {
			t.Fatalf("final state wrong at rank %d: index has %+v, oracle has (%d, %v)",
				i, cs[i], v, ok)
		}
	}
	if len(cs) != oracle.Len() {
		t.Fatalf("final state has %d keys, oracle %d", len(cs), oracle.Len())
	}
	// The schedule is skewed and the policy armed: the equivalence above
	// must have covered real combined runs, not an accidentally-FIFO path.
	if got := comb.Counters().Get(obs.EvCombinedOps); got == 0 {
		t.Fatal("schedule replay never exercised a combined run (combined_ops = 0)")
	}
}

// TestCombinedApplyPropertyVsOracle is the randomized half: programs
// are submitted op-by-op through the live executor channel, so the
// batch boundaries — and with them which runs applyCombined coalesces —
// depend on scheduling and differ run to run. A single producer keeps
// channel order FIFO, so the serial oracle still predicts every
// response exactly, whatever the batching. Concurrent readers hammer
// the hot keys on their own Ctx throughout; with the pessimistic
// schemes this runs under -race, racing real lookups against combined
// applies.
func TestCombinedApplyPropertyVsOracle(t *testing.T) {
	schemes := []string{"MCS-RW", "pthread"}
	if !indextest.RaceEnabled {
		schemes = append(schemes, "OptiQL", "OptLock")
	}
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for _, index := range []string{"btree", "art"} {
		for _, scheme := range schemes {
			for seed := 0; seed < seeds; seed++ {
				t.Run(fmt.Sprintf("%s/%s/seed=%d", index, scheme, seed), func(t *testing.T) {
					propertyRun(t, index, scheme, uint64(seed)*0x9E37+1)
				})
			}
		}
	}
}

func propertyRun(t *testing.T, index, scheme string, seed uint64) {
	t.Helper()
	s := newShardServer(t, index, scheme, true)
	e := s.shards[0].exec
	prog := indextest.NewSchedProgram(seed, 4, 150, 8, 128, 2, 0.6)
	e.pol.Arm(prog.HotKeys...)
	oracle := indextest.NewSchedOracle()

	// Readers race against the executor on the hot keys for the whole
	// submission; their results are unchecked (any interleaving is
	// legal), they exist to contend on the run-combined nodes.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			c := locks.NewCtx(s.pool, 8)
			defer c.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, k := range prog.HotKeys {
					s.shards[0].idx.Lookup(c, k)
				}
			}
		}()
	}

	var ops []writeOp
	var sched []indextest.SchedOp
	for _, batch := range prog.Batches {
		ws := schedOps(batch)
		for i := range ws {
			e.inflight.Add(1)
			e.ch <- ws[i]
		}
		ops = append(ops, ws...)
		sched = append(sched, batch...)
	}
	for i := range ops {
		select {
		case <-ops[i].p.ready:
		case <-time.After(30 * time.Second):
			t.Fatalf("op %d never completed", i)
		}
	}
	close(stop)
	rwg.Wait()

	for i, op := range sched {
		ins, fnd := oracle.Apply(op)
		want := wantResp(op, ins, fnd)
		got := ops[i].slot
		if got.Status != want.Status || got.Inserted != want.Inserted {
			t.Fatalf("op %d (%+v): got {%d %v}, oracle wants {%d %v}",
				i, op, got.Status, got.Inserted, want.Status, want.Inserted)
		}
	}
	c := locks.NewCtx(s.pool, 8)
	defer c.Close()
	got := s.shards[0].idx.Scan(c, 0, 1<<20, nil)
	if len(got) != oracle.Len() {
		t.Fatalf("final state has %d keys, oracle %d", len(got), oracle.Len())
	}
	for _, kv := range got {
		if v, ok := oracle.Get(kv.Key); !ok || v != kv.Value {
			t.Fatalf("final state wrong: index has %+v, oracle has (%d, %v)", kv, v, ok)
		}
	}
}

// fireOps builds a batch of PUTs over the given keys, all completing
// against one long-lived pending so applyBatch can run repeatedly.
func fireOps(keys []uint64, p *pending) []writeOp {
	ops := make([]writeOp, len(keys))
	for i, k := range keys {
		ops[i] = writeOp{op: wire.OpPut, key: k, val: k + 1, p: p, slot: &p.resp}
	}
	return ops
}

// TestCombineThetaSweep drives the policy with real key streams instead
// of force-arming it: theta=0.99 Zipfian traffic must arm combining and
// produce combined runs; uniform (theta=0) traffic must never arm,
// leave every combine counter at zero and — the regression pin — add
// zero allocations per batch over the seed's FIFO apply loop.
func TestCombineThetaSweep(t *testing.T) {
	const keyspace = 1024
	drive := func(t *testing.T, s *Server, dist workload.Distribution, batches int) {
		e := s.shards[0].exec
		rng := workload.NewRNG(42)
		p := &pending{ready: make(chan struct{})}
		p.remaining.Store(1 << 30) // never reaches zero: ready is reused across batches
		keys := make([]uint64, e.batchMax)
		for b := 0; b < batches; b++ {
			for i := range keys {
				keys[i] = dist.Next(rng) + 1
			}
			ops := fireOps(keys, p)
			e.inflight.Add(int64(len(ops)))
			e.applyBatch(ops)
		}
	}

	t.Run("theta=0.99", func(t *testing.T) {
		s := newShardServer(t, "btree", testScheme(), true)
		drive(t, s, workload.NewZipfian(keyspace, 0.99), 300)
		e := s.shards[0].exec
		if !e.pol.Armed() {
			t.Fatal("zipf(0.99) traffic never armed the combine policy")
		}
		snap := s.Counters()
		if got := snap.Get(obs.EvCombinedOps); got == 0 {
			t.Fatal("policy armed but no ops were combined (combined_ops = 0)")
		}
		if ops, depth := snap.Get(obs.EvCombinedOps), snap.Get(obs.EvCombineDepth); depth == 0 || ops < 2*depth {
			t.Fatalf("combined runs too shallow: %d ops over %d descents", ops, depth)
		}
	})

	t.Run("theta=0", func(t *testing.T) {
		s := newShardServer(t, "btree", testScheme(), true)
		drive(t, s, workload.NewUniform(keyspace), 300)
		e := s.shards[0].exec
		if e.pol.Armed() {
			t.Fatal("uniform traffic armed the combine policy")
		}
		snap := s.Counters()
		for _, ev := range []obs.Event{obs.EvCombinedOps, obs.EvCombineDepth, obs.EvBatchGrant, obs.EvGrantFanout} {
			if got := snap.Get(ev); got != 0 {
				t.Fatalf("uniform run left %s = %d, want 0", obs.EventNames()[ev], got)
			}
		}
	})

	// The alloc pin: with the policy disarmed the combine-enabled apply
	// path must allocate exactly what the seed's FIFO loop allocates —
	// uniform workloads pay nothing for a contention engine they never
	// trip. Overwrite PUTs over a pre-populated keyspace keep the tree
	// structurally quiescent so only the apply machinery is measured.
	t.Run("theta=0/allocs", func(t *testing.T) {
		measure := func(s *Server) float64 {
			e := s.shards[0].exec
			p := &pending{ready: make(chan struct{})}
			p.remaining.Store(1 << 30)
			keys := make([]uint64, e.batchMax)
			rng := workload.NewRNG(7)
			u := workload.NewUniform(keyspace)
			for i := range keys {
				keys[i] = u.Next(rng) + 1
			}
			warm := fireOps(keys, p)
			e.inflight.Add(int64(len(warm)))
			e.applyBatch(warm) // pre-populate: later batches are pure overwrites
			ops := fireOps(keys, p)
			return testing.AllocsPerRun(500, func() {
				e.inflight.Add(int64(len(ops)))
				e.applyBatch(ops)
			})
		}
		base := measure(newShardServer(t, "btree", testScheme(), false))
		comb := measure(newShardServer(t, "btree", testScheme(), true))
		if comb > base {
			t.Fatalf("disarmed combine path allocates %.1f/batch, seed FIFO path %.1f — the engine must be free when idle", comb, base)
		}
	})
}

// BenchmarkApplyBatchTheta measures the executor write path — the layer
// flat combining optimizes — over full batches of write-heavy traffic:
// ns/op is the cost of one batchMax-op batch through applyBatch (divide
// by the batch size for per-write cost). At theta=0.99 the combine arm
// answers each hot-key run with one descent, and deeper batches carry
// longer runs (the overload regime combining exists for); at theta=0
// the policy stays disarmed and the two arms must be equal within noise
// (the "uniform pays nothing" claim, benchstat-comparable).
func BenchmarkApplyBatchTheta(b *testing.B) {
	for _, bc := range []struct {
		name    string
		scheme  string
		ks      uint64
		theta   float64
		batch   int
		combine bool
	}{
		// MCS-RW is where combining pays: its lock-coupled exclusive
		// descents cost several atomic RMWs per node, so eliding a
		// descent saves real work. ks=512 models one hot shard of a
		// sharded deployment; batch=256 is the overload regime (longer
		// runs, more coalescing).
		{"MCS-RW/theta=0.99/ks=512/batch=64/fifo", "MCS-RW", 512, 0.99, 64, false},
		{"MCS-RW/theta=0.99/ks=512/batch=64/combine", "MCS-RW", 512, 0.99, 64, true},
		{"MCS-RW/theta=0.99/ks=512/batch=256/fifo", "MCS-RW", 512, 0.99, 256, false},
		{"MCS-RW/theta=0.99/ks=512/batch=256/combine", "MCS-RW", 512, 0.99, 256, true},
		// OptiQL's caveat case: optimistic descents are so cheap that
		// run bookkeeping shows up — documented in DESIGN §12, kept
		// here so regressions in either direction are visible.
		{"OptiQL/theta=0.99/ks=2048/batch=64/fifo", "OptiQL", 2048, 0.99, 64, false},
		{"OptiQL/theta=0.99/ks=2048/batch=64/combine", "OptiQL", 2048, 0.99, 64, true},
		// Uniform pays nothing: the policy stays disarmed, so both arms
		// must be equal within benchstat noise on a full-size tree.
		{"MCS-RW/theta=0/ks=131072/batch=64/fifo", "MCS-RW", 1 << 17, 0, 64, false},
		{"MCS-RW/theta=0/ks=131072/batch=64/combine", "MCS-RW", 1 << 17, 0, 64, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			keyspace := bc.ks
			s, err := New(Config{Index: "btree", Scheme: bc.scheme, Shards: 1, BatchMax: bc.batch, Combine: bc.combine})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				s.Shutdown(ctx)
			})
			e := s.shards[0].exec
			var dist workload.Distribution = workload.NewUniform(keyspace)
			if bc.theta > 0 {
				dist = workload.NewZipfian(keyspace, bc.theta)
			}
			rng := workload.NewRNG(42)
			p := &pending{ready: make(chan struct{})}
			p.remaining.Store(1 << 30)
			// Pre-populate the whole keyspace so timed batches are pure
			// overwrites at realistic tree depth: descent cost, not tree
			// growth, is what the two arms trade against bookkeeping.
			seq := make([]uint64, e.batchMax)
			for lo := uint64(1); lo <= keyspace; lo += uint64(len(seq)) {
				for j := range seq {
					seq[j] = lo + uint64(j)
				}
				ops := fireOps(seq, p)
				e.inflight.Add(int64(len(ops)))
				e.applyBatch(ops)
			}
			// Pre-generate a ring of batches so RNG draws stay out of the
			// timed loop. The combine arm is pinned armed on the zipf head
			// (rank 0 is hottest; Next's rank + 1 is the key, so keys 1..8
			// are the top 8): arming-by-traffic is TestCombineThetaSweep's
			// subject, the benchmark measures the armed steady state.
			if bc.combine && bc.theta > 0 {
				e.pol.Arm(1, 2, 3, 4, 5, 6, 7, 8)
			}
			const ring = 64
			batches := make([][]writeOp, ring)
			for i := range batches {
				keys := make([]uint64, e.batchMax)
				for j := range keys {
					keys[j] = dist.Next(rng) + 1
				}
				batches[i] = fireOps(keys, p)
			}
			for i := 0; i < 100; i++ {
				ops := batches[i%ring]
				e.inflight.Add(int64(len(ops)))
				e.applyBatch(ops)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ops := batches[i%ring]
				e.inflight.Add(int64(len(ops)))
				e.applyBatch(ops)
			}
		})
	}
}
