// Package server exposes the OptiQL index substrates as a sharded
// network key-value service: a TCP listener speaking the
// length-prefixed binary protocol of internal/server/wire, a shard
// router over N independent index instances, per-shard batching write
// executors and per-connection pipelined read loops.
//
// The sharding and batching put the lock protocols where they pay off:
// reads run concurrently on the connection goroutines (optimistic
// shared acquisitions), while each shard's writes are funneled through
// one executor goroutine that drains whole groups of queued mutations
// per wakeup. Graceful shutdown stops accepting, unblocks idle
// readers, lets every admitted request complete and drains the
// executor queues — an in-flight batch is never dropped.
package server

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"optiql/internal/core"
	"optiql/internal/faults"
	"optiql/internal/locks"
	"optiql/internal/obs"
	"optiql/internal/obs/trace"
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the TCP listen address (e.g. ":4440", "127.0.0.1:0").
	Addr string
	// Index is the substrate kind: "btree" or "art".
	Index string
	// Scheme is the lock scheme name (locks.ByName).
	Scheme string
	// Shards is the number of independent index partitions (default 4).
	Shards int
	// NodeSize is the B+-tree node size in bytes (btree only).
	NodeSize int
	// BatchMax caps how many queued writes one executor wakeup groups
	// (default 64).
	BatchMax int
	// ReadTimeout bounds how long the server waits for a complete
	// request frame: connections idle longer are reaped and slow-loris
	// peers (trickling a frame forever) cannot pin a goroutine. Zero
	// disables the bound.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response write/flush; a peer that stops
	// reading gets its connection dropped instead of wedging the
	// writer. Zero disables the bound.
	WriteTimeout time.Duration
	// InflightMax, when positive, is the per-shard admission budget:
	// writes arriving while that many are already queued on the shard
	// are shed with wire.StatusOverloaded instead of queuing (bounded
	// degradation under oversubscription — the TXSQL move). Zero keeps
	// the seed behavior: a full executor queue blocks the submitting
	// connection, pushing backpressure to that client.
	InflightMax int
	// Chaos, when it enables any fault, wraps the listener and every
	// accepted connection with the fault-injection layer (used by
	// `optiqld -chaos` and the chaos e2e tests).
	Chaos *faults.Config
	// Trace, when set, enables the contention profiler: sampled lock
	// and request-phase spans, per-shard lock-wait histograms and
	// hot-key sketches (internal/obs/trace). Its Shards field is
	// overridden with the server's shard count.
	Trace *trace.Config
	// Combine enables the contention engine's reaction half: each
	// shard's executor runs an obs.CombinePolicy over its write keys
	// and, while the policy is armed, coalesces same-key runs within a
	// drained batch into one tree descent (flat-combining). Off by
	// default; uniform workloads pay only the policy's sampled counter
	// even when on.
	Combine bool
	// CombineThreshold is the top-key traffic share at which a shard's
	// policy arms (obs.DefaultCombineThreshold when zero). The policy
	// disarms below half this value (hysteresis).
	CombineThreshold float64
	// WALDir, when set, enables the per-shard write-ahead log rooted
	// there (one subdirectory per shard): startup replays existing
	// segments into the shards, every executor batch is appended before
	// it is applied, and client acks wait for the Fsync policy.
	WALDir string
	// Fsync is the WAL ack policy: wal.SyncAlways, wal.SyncInterval
	// (default) or wal.SyncOff. Ignored without WALDir.
	Fsync string
	// FsyncInterval is the group-commit pacing bound (wal.Config
	// .Interval); zero means the wal default.
	FsyncInterval time.Duration
	// WALSegmentBytes / WALCheckpointBytes size segment rotation and the
	// checkpoint trigger; zero means the wal defaults.
	WALSegmentBytes    int64
	WALCheckpointBytes int64
	// WALSyncQueueMax bounds appended-but-unsynced ops per shard before
	// writes are shed with StatusOverloaded (interval policy only; zero
	// disables shedding).
	WALSyncQueueMax int
	// WALGroupOps is the group-commit fill target per shard (wal.Config
	// GroupOps); zero means the wal default (64).
	WALGroupOps int
	// WALLogf receives WAL recovery/failure notices (nil discards).
	WALLogf func(format string, args ...any)
	// WALSyncFile overrides the log's fsync call — the fault-injection
	// seam (internal/faults.SlowSync / FailSyncAfter). Nil means a real
	// (*os.File).Sync.
	WALSyncFile func(f *os.File) error
}

func (c *Config) normalize() error {
	if c.Index == "" {
		c.Index = "btree"
	}
	if c.Index != "btree" && c.Index != "art" {
		return fmt.Errorf("server: unknown index kind %q", c.Index)
	}
	if c.Scheme == "" {
		c.Scheme = "OptiQL"
	}
	if _, err := locks.ByName(c.Scheme); err != nil {
		return err
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 64
	}
	return nil
}

// execQDepth bounds queued writes per shard; a full queue blocks the
// submitting reader, propagating backpressure to that client.
const execQDepth = 1024

// closedDeadline is a long-expired read deadline, used to unblock
// readers at shutdown.
var closedDeadline = time.Unix(1, 0)

type serverStats struct {
	conns, gets, puts, deletes, scans, batches, errors, ops atomic.Uint64
	panics, shed, reaped                                    atomic.Uint64
}

// Stats is a point-in-time sample of the server's operation counters.
// Ops counts individual completed operations (batch sub-operations
// individually; the batch envelope is counted only in Batches).
type Stats struct {
	Conns   uint64 `json:"conns"`
	Gets    uint64 `json:"gets"`
	Puts    uint64 `json:"puts"`
	Deletes uint64 `json:"deletes"`
	Scans   uint64 `json:"scans"`
	Batches uint64 `json:"batches"`
	Errors  uint64 `json:"errors"`
	Ops     uint64 `json:"ops"`
	// Panics counts handler panics recovered (each answered with
	// StatusErr; the process survived all of them).
	Panics uint64 `json:"panics"`
	// Shed counts writes answered with StatusOverloaded by admission
	// control instead of being queued.
	Shed uint64 `json:"shed"`
	// Reaped counts connections closed by the read deadline (idle or
	// slow-loris peers).
	Reaped uint64 `json:"reaped"`
}

// Server is the sharded KV service. Create with New, bind with Listen
// (or Start), stop with Shutdown.
type Server struct {
	cfg    Config
	scheme *locks.Scheme
	pool   *core.Pool
	reg    *obs.Registry
	shards []*shard
	inj    *faults.Injector
	// walDefersAcks is true when the WAL policy parks write acks on a
	// later fsync (interval/always): only then do pendings carry the
	// applied barrier that lets reads pass waiting acks. Under off (or
	// no WAL) acks land at apply time and ready doubles as the barrier.
	walDefersAcks bool
	// resil is the dedicated counter set for server-level resilience
	// events (recovered panics, sheds, reaped connections).
	resil *obs.Counters

	// tracer is the contention profiler (nil when Config.Trace is nil;
	// every downstream call no-ops on nil). Connection reader buffers
	// are recycled through tbFree because each conn needs a Buf it
	// exclusively owns (the sampling counter is unsynchronized), and
	// churning connections must not grow the tracer's buffer list
	// without bound.
	tracer  *trace.Tracer
	tbMu    sync.Mutex
	tbFree  []*trace.Buf
	connSeq atomic.Uint64

	ln      net.Listener
	mu      sync.Mutex
	conns   map[*conn]struct{}
	closing atomic.Bool
	closeEx sync.Once

	connWG sync.WaitGroup
	execWG sync.WaitGroup

	stats serverStats
	hooks testHooks
}

// testHooks are in-package fault hooks the chaos tests use to inject
// failures the transport layer cannot: a key whose operations panic
// inside the handler, and an artificial per-write executor delay that
// builds a standing queue so admission control has something to shed.
// Both are inert (zero) outside tests.
type testHooks struct {
	panicKey  atomic.Uint64 // panic on ops touching this key (0 = off)
	execDelay atomic.Int64  // ns slept per executor write (0 = off)
}

// maybePanic fires the injected handler panic for key k.
func (s *Server) maybePanic(k uint64) {
	if pk := s.hooks.panicKey.Load(); pk != 0 && pk == k {
		panic(fmt.Sprintf("injected handler panic on key %#x", k))
	}
}

// noteRecoveredPanic accounts one survived handler panic.
func (s *Server) noteRecoveredPanic() {
	s.stats.panics.Add(1)
	s.stats.errors.Add(1)
	s.resil.Inc(obs.EvSrvPanic)
}

// New builds the shards and starts their write executors. The server
// does not accept connections until Listen/Start.
func New(cfg Config) (*Server, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		scheme: locks.MustByName(cfg.Scheme),
		pool:   core.NewPool(core.MaxQNodes),
		reg:    obs.NewRegistry(),
		conns:  make(map[*conn]struct{}),
	}
	s.resil = s.reg.NewCounters()
	if cfg.Trace != nil {
		tc := *cfg.Trace
		tc.Shards = cfg.Shards
		s.tracer = trace.New(tc)
	}
	if cfg.Chaos.Any() {
		chaos := *cfg.Chaos
		if chaos.Counters == nil {
			// Injections surface in the server's own counter registry
			// (and therefore its /metrics and exit summary).
			chaos.Counters = s.reg.NewCounters()
		}
		s.inj = faults.NewInjector(chaos)
	}
	for i := 0; i < cfg.Shards; i++ {
		idx, err := newIndex(cfg.Index, s.scheme, cfg.NodeSize)
		if err != nil {
			return nil, err
		}
		e := &executor{
			idx:      idx,
			ch:       make(chan writeOp, execQDepth),
			batchMax: cfg.BatchMax,
			ctx:      locks.NewCtx(s.pool, 8),
			srv:      s,
			tb:       s.tracer.NewBuf(i, i),
		}
		if cfg.Combine {
			e.pol = obs.NewCombinePolicy(cfg.CombineThreshold)
			e.gid = make([]int32, 0, cfg.BatchMax)
			e.nxt = make([]int32, cfg.BatchMax)
		}
		e.ctx.SetCounters(s.reg.NewCounters())
		e.ctx.SetTrace(e.tb)
		s.shards = append(s.shards, &shard{idx: idx, exec: e})
	}
	// Recovery replays into the shard indexes on the executors' Ctxs, so
	// it runs before the executor goroutines start.
	if cfg.WALDir != "" {
		if err := s.openWALs(); err != nil {
			return nil, err
		}
	}
	for _, sh := range s.shards {
		s.execWG.Add(1)
		go sh.exec.run()
	}
	return s, nil
}

// getConnBuf hands out a trace buffer for one connection's reader, a
// recycled one when available. A recycled buffer keeps its original
// worker label — the Chrome-export row — but span IDs carry the real
// connection identity, so stitching stays correct. Nil when tracing
// is off.
func (s *Server) getConnBuf(worker int) *trace.Buf {
	if s.tracer == nil {
		return nil
	}
	s.tbMu.Lock()
	if n := len(s.tbFree); n > 0 {
		b := s.tbFree[n-1]
		s.tbFree = s.tbFree[:n-1]
		s.tbMu.Unlock()
		return b
	}
	s.tbMu.Unlock()
	return s.tracer.NewBuf(-1, worker)
}

// putConnBuf returns a closed connection's trace buffer for reuse.
func (s *Server) putConnBuf(b *trace.Buf) {
	if b == nil {
		return
	}
	s.tbMu.Lock()
	s.tbFree = append(s.tbFree, b)
	s.tbMu.Unlock()
}

// shardIdx routes a key to its partition index.
func (s *Server) shardIdx(k uint64) int {
	return int(shardHash(k) % uint64(len(s.shards)))
}

// Listen binds the configured address and returns it (useful with
// port 0). Call Serve afterwards, or use Start. With chaos configured
// the listener (and every connection it accepts) is fault-wrapped.
func (s *Server) Listen() (net.Addr, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, err
	}
	addr := ln.Addr()
	if s.inj != nil {
		s.ln = s.inj.WrapListener(ln)
	} else {
		s.ln = ln
	}
	return addr, nil
}

// Serve accepts connections until Shutdown closes the listener. It
// returns nil on a shutdown-initiated stop. Transient accept failures
// — injected chaos, EMFILE under fd pressure — are retried after a
// short pause instead of killing the accept loop.
func (s *Server) Serve() error {
	if s.ln == nil {
		if _, err := s.Listen(); err != nil {
			return err
		}
	}
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			if s.closing.Load() {
				return nil
			}
			if te, ok := err.(interface{ Temporary() bool }); ok && te.Temporary() {
				time.Sleep(time.Millisecond)
				continue
			}
			return err
		}
		s.serveConn(nc)
	}
}

// FaultInjector returns the server's chaos injector (nil when no
// chaos was configured). Live experiments and the e2e harness use it
// to read injection stats or disable faults for a verification phase.
func (s *Server) FaultInjector() *faults.Injector { return s.inj }

// Start is Listen plus Serve in a background goroutine.
func (s *Server) Start() (net.Addr, error) {
	addr, err := s.Listen()
	if err != nil {
		return nil, err
	}
	go s.Serve()
	return addr, nil
}

// Shutdown gracefully stops the server: it stops accepting, unblocks
// readers waiting for new requests, waits for every admitted request
// to be executed and answered, then drains and stops the shard
// executors. Requests a client has sent but the server has not yet
// read may go unanswered (clients wanting a clean drain should
// half-close and read to EOF); requests admitted — including every
// write queued at an executor — are always completed. Returns
// ctx.Err() if the context expires first, leaving the remaining
// teardown running in the background.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.nc.SetReadDeadline(closedDeadline)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		// No connection goroutines remain, so nothing can submit to the
		// executors: close their queues, letting them drain and exit.
		s.closeEx.Do(func() {
			for _, sh := range s.shards {
				close(sh.exec.ch)
			}
		})
		s.execWG.Wait()
		// Every admitted write is now appended and applied; seal the
		// shard logs (flush + fsync + close) so a restart replays this
		// state with no torn tail, under every fsync policy.
		s.closeWALs()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats samples the operation counters.
func (s *Server) Stats() Stats {
	return Stats{
		Conns:   s.stats.conns.Load(),
		Gets:    s.stats.gets.Load(),
		Puts:    s.stats.puts.Load(),
		Deletes: s.stats.deletes.Load(),
		Scans:   s.stats.scans.Load(),
		Batches: s.stats.batches.Load(),
		Errors:  s.stats.errors.Load(),
		Ops:     s.stats.ops.Load(),
		Panics:  s.stats.panics.Load(),
		Shed:    s.stats.shed.Load(),
		Reaped:  s.stats.reaped.Load(),
	}
}

// Counters merges the lock/index event counters of every connection
// and executor Ctx the server has handed out.
func (s *Server) Counters() obs.Snapshot { return s.reg.Snapshot() }

// Len sums the shard index sizes (exact when quiescent).
func (s *Server) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.idx.Len()
	}
	return n
}

// AttachLive points a live observability source (the -obs /metrics
// endpoint) at this server's event counters, completed-operation
// total and — when tracing is on — the /debug/contention report.
func (s *Server) AttachLive(src *obs.LiveSource) {
	src.Set(s.reg.Snapshot, func() uint64 { return s.stats.ops.Load() })
	if s.tracer != nil || s.cfg.Combine {
		src.SetContention(s.Contention)
	}
	if s.WALEnabled() {
		src.SetWAL(s.WALReport)
	}
}

// Tracer returns the server's contention profiler (nil when tracing
// is off); optiqld uses it for the -trace Chrome export at shutdown.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Contention builds the live contention report: the tracer snapshot
// plus the instantaneous per-shard executor queue depths, and — when
// the contention engine is on — the combine section (policy arming and
// batch-grant/flat-combining counters). Nil when both tracing and
// combining are off.
func (s *Server) Contention() *obs.ContentionReport {
	if s.tracer == nil && !s.cfg.Combine {
		return nil
	}
	depths := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		depths[i] = sh.exec.inflight.Load()
	}
	rep := obs.ContentionFrom(s.tracer, depths)
	if rep == nil {
		rep = &obs.ContentionReport{QueueDepth: depths}
	}
	if s.cfg.Combine {
		policies := make([]*obs.CombinePolicy, len(s.shards))
		threshold := obs.DefaultCombineThreshold
		for i, sh := range s.shards {
			policies[i] = sh.exec.pol
			if t := sh.exec.pol.Threshold(); t > 0 {
				threshold = t
			}
		}
		rep.Combine = obs.CombineReportFrom(true, threshold, policies, s.reg.Snapshot())
	}
	return rep
}
