package server

import (
	"fmt"
	"sync/atomic"
	"time"

	"optiql/internal/locks"
	"optiql/internal/obs"
	"optiql/internal/obs/trace"
	"optiql/internal/server/wire"
	"optiql/internal/wal"
)

// writeOp is one mutation funneled to a shard's executor. The
// executor fills slot (a sub-slot of p's response) and then marks the
// op done on p. span/enq carry the reader's sampling decision across
// the queue: span is the request's trace-tree ID (0 = unsampled) and
// enq the enqueue timestamp, so the executor can attribute the
// shard-queue wait without a clock read of its own.
type writeOp struct {
	op   byte // wire.OpPut or wire.OpDelete
	key  uint64
	val  uint64
	p    *pending
	slot *wire.Response
	span uint64
	enq  int64
}

// executor is a shard's write path: one goroutine owning one
// locks.Ctx, pulling mutations from a channel and executing them in
// grouped batches. Funneling writes through one goroutine per shard
// removes writer-vs-writer lock contention inside the shard entirely
// and amortizes channel wakeups: under a standing queue the executor
// drains whole groups per receive, which is exactly the regime
// OptiQL's local spinning is built for on the un-sharded path.
type executor struct {
	idx      Index
	ch       chan writeOp
	batchMax int
	ctx      *locks.Ctx
	srv      *Server
	// tb is the executor's trace buffer (nil when tracing is off):
	// shard-queue and execute spans for sampled writes, plus its own
	// sampled batch-size spans.
	tb *trace.Buf
	// inflight approximates the shard's queued-but-unexecuted writes;
	// admission control (Config.InflightMax) sheds against it. The
	// check-then-add on the submit side races benignly: the budget is a
	// degradation threshold, not an exact capacity.
	inflight atomic.Int64
	// pol is the shard's combine policy (nil when Config.Combine is
	// off): it watches this shard's write keys and arms flat-combining
	// when one key dominates. Owned by the executor goroutine.
	pol *obs.CombinePolicy
	// gid and nxt are applyCombined's per-batch scratch, sized to
	// batchMax once so the combining path allocates nothing: gid[i] is
	// op i's group (-1 for cold ops), nxt[i] chains the members of one
	// group in FIFO order so applyRun walks exactly its run instead of
	// rescanning the batch.
	gid []int32
	nxt []int32
	// wal is the shard's write-ahead log (nil without durability);
	// walOps is the per-batch record scratch and ack the deferred-ack
	// set being built while a logged batch applies (see wal.go). All
	// executor-goroutine-owned.
	wal    *wal.Log
	walOps []wal.Op
	ack    *ackBatch
}

// run is the executor goroutine. It exits when ch is closed and
// drained, so every admitted write is executed and answered before
// shutdown completes — in-flight batches are never dropped.
func (e *executor) run() {
	defer e.srv.execWG.Done()
	defer e.ctx.Close()
	buf := make([]writeOp, 0, e.batchMax)
	for op := range e.ch {
		buf = append(buf[:0], op)
		// Group whatever else is already queued, up to batchMax, without
		// blocking: one standing batch per wakeup.
	drain:
		for len(buf) < e.batchMax {
			select {
			case more, ok := <-e.ch:
				if !ok {
					break drain
				}
				buf = append(buf, more)
			default:
				break drain
			}
		}
		// The batch-size span samples on the executor's own counter (it
		// owns this buffer), keying the span by group size so Perfetto
		// shows how well the wakeup amortization is working.
		bs := e.tb.Sample()
		var bt0 int64
		if bs {
			bt0 = e.tb.Now()
		}
		e.execBatch(buf)
		if bs {
			e.tb.Record(trace.KindExecBatch, 0, bt0, e.tb.Now()-bt0, 0, uint64(len(buf)))
		}
		// Queue ran dry: every client with an op here is now waiting on
		// an ack, so tell the group-commit syncer to fire rather than sit
		// out the interval tick with a sub-full group.
		if e.wal != nil && len(e.ch) == 0 {
			e.wal.Nudge()
		}
	}
}

// applyBatch executes one drained batch. With combining off (or the
// policy disarmed) every op takes its own FIFO apply — byte-for-byte
// the seed behavior. With the policy armed, runs of ops on the same hot
// key are coalesced so one tree descent answers the whole run
// (applyCombined); the deterministic-schedule harness in batch_test.go
// holds the two paths equal on identical batches.
func (e *executor) applyBatch(buf []writeOp) {
	if p := e.pol; p != nil {
		for i := range buf {
			p.Note(buf[i].key)
		}
		if len(buf) > 1 && p.Armed() {
			e.applyCombined(buf)
			return
		}
	}
	for i := range buf {
		e.apply(&buf[i])
	}
}

// combineGroup is one hot key's run within a batch: how many ops target
// it, where the run starts, and where the last one sits (the run is
// applied there, after every member is known). Members between first
// and last are reached through the executor's nxt chain.
type combineGroup struct {
	key   uint64
	count int32
	first int32
	last  int32
}

// applyCombined is the flat-combining batch path. It classifies each op
// against the policy's hot set, then walks the batch in FIFO order:
// cold ops and singleton runs apply normally; a multi-op run is applied
// once, at its last member's position, with every member's response
// simulated from the run's initial presence (applyRun). Reordering a
// run's earlier members to its last position is linearizable: ops on
// different keys commute, per-connection response order is fixed by the
// pending slots, and concurrent readers block on the write's completion
// — moving the completion point within the batch just moves the
// linearization point.
func (e *executor) applyCombined(buf []writeOp) {
	var groups [combineHotGroups]combineGroup
	ng := int32(0)
	gid := e.gid[:0]
	if cap(e.nxt) < len(buf) {
		e.nxt = make([]int32, len(buf))
	}
	nxt := e.nxt[:len(buf)]
	for i := range buf {
		g := int32(-1)
		if e.pol.IsHot(buf[i].key) {
			for j := int32(0); j < ng; j++ {
				if groups[j].key == buf[i].key {
					g = j
					break
				}
			}
			if g < 0 && ng < combineHotGroups {
				groups[ng] = combineGroup{key: buf[i].key, first: int32(i)}
				g = ng
				ng++
			}
		}
		if g >= 0 {
			if groups[g].count > 0 {
				nxt[groups[g].last] = int32(i)
			}
			groups[g].count++
			groups[g].last = int32(i)
		}
		gid = append(gid, g)
	}
	e.gid = gid
	for i := range buf {
		g := gid[i]
		switch {
		case g < 0 || groups[g].count == 1:
			e.apply(&buf[i])
		case int32(i) == groups[g].last:
			e.applyRun(buf, nxt, &groups[g])
		}
	}
}

// combineHotGroups caps how many distinct hot keys one batch coalesces;
// it matches the policy's hot-set size.
const combineHotGroups = 8

// applyRun applies one multi-op same-key run with a single tree
// descent. Only the run's last op touches the tree — intermediate
// PUT/DELETEs are fully shadowed by it — and its return value reveals
// the key's presence before the run (a PUT that inserted, or a DELETE
// that found nothing, means the key was absent). Every member's
// response is then simulated forward from that initial presence,
// reproducing the FIFO answers exactly: PUT answers Inserted iff the
// key was absent at its turn and leaves it present; DELETE answers
// NotFound iff absent and leaves it absent.
//
// A panic from the index call is contained like apply's: every member
// is answered with StatusErr and completed, so no writer or Shutdown
// waits forever. The recover runs before any member was completed
// (the only panic sources — hooks and the index call — precede the
// completion loop), so members cannot be double-completed.
func (e *executor) applyRun(buf []writeOp, nxt []int32, g *combineGroup) {
	defer e.inflight.Add(-int64(g.count))
	defer func() {
		if r := recover(); r != nil {
			e.srv.noteRecoveredPanic()
			for i, n := g.first, int32(0); n < g.count; n++ {
				w := &buf[i]
				w.slot.Status = wire.StatusErr
				w.slot.Err = fmt.Sprintf("internal error: %v", r)
				e.complete(w)
				i = nxt[i]
			}
		}
	}()
	if d := e.srv.hooks.execDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	// Close the queue spans of every sampled member against one clock
	// read, then bracket the single descent. The chain walk visits
	// exactly the run's members (nxt[last] is garbage, but the count
	// bound stops the walk before reading it).
	sampled := false
	for i, n := g.first, int32(0); n < g.count; n++ {
		if buf[i].span != 0 {
			sampled = true
			break
		}
		i = nxt[i]
	}
	var t0 int64
	if sampled {
		t0 = e.tb.Now()
		for i, n := g.first, int32(0); n < g.count; n++ {
			if w := &buf[i]; w.span != 0 {
				e.tb.Record(trace.KindReqQueue, 0, w.enq, t0-w.enq, w.span, w.key)
				e.tb.NoteKey(-1, w.key)
			}
			i = nxt[i]
		}
	}
	e.srv.maybePanic(g.key)
	last := &buf[g.last]
	var present bool // the key's presence before the run
	switch last.op {
	case wire.OpPut:
		present = !e.idx.Insert(e.ctx, last.key, last.val)
	case wire.OpDelete:
		present = e.idx.Delete(e.ctx, last.key)
	}
	if sampled {
		t1 := e.tb.Now()
		for i, n := g.first, int32(0); n < g.count; n++ {
			if w := &buf[i]; w.span != 0 {
				e.tb.Record(trace.KindReqExec, 0, t0, t1-t0, w.span, w.key)
			}
			i = nxt[i]
		}
	}
	e.ctx.Counters().Add(obs.EvCombinedOps, uint64(g.count))
	e.ctx.Counters().Inc(obs.EvCombineDepth)
	// Simulate the FIFO responses forward from the initial presence.
	// Stats are tallied locally and published once per run: the counters
	// are monotonic totals, so coarser adds are observationally identical
	// and keep the hot loop free of shared-cacheline RMWs.
	var puts, deletes uint64
	for i, n := g.first, int32(0); n < g.count; n++ {
		w := &buf[i]
		switch w.op {
		case wire.OpPut:
			w.slot.Status = wire.StatusOK
			w.slot.Inserted = !present
			present = true
			puts++
		case wire.OpDelete:
			if present {
				w.slot.Status = wire.StatusOK
			} else {
				w.slot.Status = wire.StatusNotFound
			}
			present = false
			deletes++
		}
		e.complete(w)
		i = nxt[i]
	}
	if puts > 0 {
		e.srv.stats.puts.Add(puts)
	}
	if deletes > 0 {
		e.srv.stats.deletes.Add(deletes)
	}
	e.srv.stats.ops.Add(uint64(g.count))
}

// apply executes one mutation and completes its slot. A panic from an
// index call is contained: the slot is answered with StatusErr, the
// op is completed (the writer and Shutdown never wait on a slot
// nothing will fill), and the executor keeps draining its queue.
func (e *executor) apply(w *writeOp) {
	defer e.inflight.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			w.slot.Status = wire.StatusErr
			w.slot.Err = fmt.Sprintf("internal error: %v", r)
			e.srv.noteRecoveredPanic()
			// Panics originate in the index calls, before the normal-path
			// completion below — completing here cannot double-complete.
			e.complete(w)
		}
	}()
	if d := e.srv.hooks.execDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	// A sampled write carries its enqueue timestamp: close the queue
	// span here and bracket the index call, stitching both into the
	// request tree via the span ID. The hot-key offer lands in this
	// shard's sketch.
	var t0 int64
	if w.span != 0 {
		t0 = e.tb.Now()
		e.tb.Record(trace.KindReqQueue, 0, w.enq, t0-w.enq, w.span, w.key)
		e.tb.NoteKey(-1, w.key)
	}
	e.srv.maybePanic(w.key)
	switch w.op {
	case wire.OpPut:
		inserted := e.idx.Insert(e.ctx, w.key, w.val)
		w.slot.Status = wire.StatusOK
		w.slot.Inserted = inserted
		e.srv.stats.puts.Add(1)
	case wire.OpDelete:
		if e.idx.Delete(e.ctx, w.key) {
			w.slot.Status = wire.StatusOK
		} else {
			w.slot.Status = wire.StatusNotFound
		}
		e.srv.stats.deletes.Add(1)
	}
	if w.span != 0 {
		e.tb.Record(trace.KindReqExec, 0, t0, e.tb.Now()-t0, w.span, w.key)
	}
	e.srv.stats.ops.Add(1)
	e.complete(w)
}
