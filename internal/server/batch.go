package server

import (
	"fmt"
	"sync/atomic"
	"time"

	"optiql/internal/locks"
	"optiql/internal/obs/trace"
	"optiql/internal/server/wire"
)

// writeOp is one mutation funneled to a shard's executor. The
// executor fills slot (a sub-slot of p's response) and then marks the
// op done on p. span/enq carry the reader's sampling decision across
// the queue: span is the request's trace-tree ID (0 = unsampled) and
// enq the enqueue timestamp, so the executor can attribute the
// shard-queue wait without a clock read of its own.
type writeOp struct {
	op   byte // wire.OpPut or wire.OpDelete
	key  uint64
	val  uint64
	p    *pending
	slot *wire.Response
	span uint64
	enq  int64
}

// executor is a shard's write path: one goroutine owning one
// locks.Ctx, pulling mutations from a channel and executing them in
// grouped batches. Funneling writes through one goroutine per shard
// removes writer-vs-writer lock contention inside the shard entirely
// and amortizes channel wakeups: under a standing queue the executor
// drains whole groups per receive, which is exactly the regime
// OptiQL's local spinning is built for on the un-sharded path.
type executor struct {
	idx      Index
	ch       chan writeOp
	batchMax int
	ctx      *locks.Ctx
	srv      *Server
	// tb is the executor's trace buffer (nil when tracing is off):
	// shard-queue and execute spans for sampled writes, plus its own
	// sampled batch-size spans.
	tb *trace.Buf
	// inflight approximates the shard's queued-but-unexecuted writes;
	// admission control (Config.InflightMax) sheds against it. The
	// check-then-add on the submit side races benignly: the budget is a
	// degradation threshold, not an exact capacity.
	inflight atomic.Int64
}

// run is the executor goroutine. It exits when ch is closed and
// drained, so every admitted write is executed and answered before
// shutdown completes — in-flight batches are never dropped.
func (e *executor) run() {
	defer e.srv.execWG.Done()
	defer e.ctx.Close()
	buf := make([]writeOp, 0, e.batchMax)
	for op := range e.ch {
		buf = append(buf[:0], op)
		// Group whatever else is already queued, up to batchMax, without
		// blocking: one standing batch per wakeup.
	drain:
		for len(buf) < e.batchMax {
			select {
			case more, ok := <-e.ch:
				if !ok {
					break drain
				}
				buf = append(buf, more)
			default:
				break drain
			}
		}
		// The batch-size span samples on the executor's own counter (it
		// owns this buffer), keying the span by group size so Perfetto
		// shows how well the wakeup amortization is working.
		bs := e.tb.Sample()
		var bt0 int64
		if bs {
			bt0 = e.tb.Now()
		}
		for i := range buf {
			e.apply(&buf[i])
		}
		if bs {
			e.tb.Record(trace.KindExecBatch, 0, bt0, e.tb.Now()-bt0, 0, uint64(len(buf)))
		}
	}
}

// apply executes one mutation and completes its slot. A panic from an
// index call is contained: the slot is answered with StatusErr, the
// op is completed (the writer and Shutdown never wait on a slot
// nothing will fill), and the executor keeps draining its queue.
func (e *executor) apply(w *writeOp) {
	defer e.inflight.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			w.slot.Status = wire.StatusErr
			w.slot.Err = fmt.Sprintf("internal error: %v", r)
			e.srv.noteRecoveredPanic()
			// Panics originate in the index calls, before the normal-path
			// opDone below — completing here cannot double-complete.
			w.p.opDone()
		}
	}()
	if d := e.srv.hooks.execDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	// A sampled write carries its enqueue timestamp: close the queue
	// span here and bracket the index call, stitching both into the
	// request tree via the span ID. The hot-key offer lands in this
	// shard's sketch.
	var t0 int64
	if w.span != 0 {
		t0 = e.tb.Now()
		e.tb.Record(trace.KindReqQueue, 0, w.enq, t0-w.enq, w.span, w.key)
		e.tb.NoteKey(-1, w.key)
	}
	e.srv.maybePanic(w.key)
	switch w.op {
	case wire.OpPut:
		inserted := e.idx.Insert(e.ctx, w.key, w.val)
		w.slot.Status = wire.StatusOK
		w.slot.Inserted = inserted
		e.srv.stats.puts.Add(1)
	case wire.OpDelete:
		if e.idx.Delete(e.ctx, w.key) {
			w.slot.Status = wire.StatusOK
		} else {
			w.slot.Status = wire.StatusNotFound
		}
		e.srv.stats.deletes.Add(1)
	}
	if w.span != 0 {
		e.tb.Record(trace.KindReqExec, 0, t0, e.tb.Now()-t0, w.span, w.key)
	}
	e.srv.stats.ops.Add(1)
	w.p.opDone()
}
