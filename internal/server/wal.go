package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"optiql/internal/hist"
	"optiql/internal/locks"
	"optiql/internal/obs"
	"optiql/internal/server/wire"
	"optiql/internal/wal"
)

// This file is the server side of the durability path: opening one
// write-ahead log per shard (replaying it into the shard's index
// before the executors start), the deferred-acknowledgement batches
// that ride the log's group commit, and the merged durability report.

// walMetaName is the layout descriptor at the WAL root. Shard routing
// is baked into the per-shard log directories, so reopening a log tree
// with a different shard count would replay keys into the wrong
// shards; the meta file turns that mistake into a startup error.
const walMetaName = "META"

// openWALs opens (and recovers) one log per shard under cfg.WALDir.
// Called from New after the shards exist but before their executors
// start, so replay owns each executor's Ctx without racing it.
func (s *Server) openWALs() error {
	if err := s.checkWALMeta(); err != nil {
		return err
	}
	s.walDefersAcks = s.cfg.Fsync != wal.SyncOff
	for i, sh := range s.shards {
		dir := filepath.Join(s.cfg.WALDir, fmt.Sprintf("shard-%03d", i))
		e := sh.exec
		// The checkpoint writer scans the shard concurrently with the
		// executor, so it gets its own Ctx (closed in closeWALs).
		ckptCtx := locks.NewCtx(s.pool, 8)
		ckptCtx.SetCounters(s.reg.NewCounters())
		idx := sh.idx
		wcfg := wal.Config{
			Policy:          s.cfg.Fsync,
			Interval:        s.cfg.FsyncInterval,
			SegmentBytes:    s.cfg.WALSegmentBytes,
			CheckpointBytes: s.cfg.WALCheckpointBytes,
			SyncQueueMax:    s.cfg.WALSyncQueueMax,
			GroupOps:        s.cfg.WALGroupOps,
			SyncFile:        s.cfg.WALSyncFile,
			Snapshot:        func(emit func(k, v uint64) error) error { return snapshotIndex(idx, ckptCtx, emit) },
			Counters:        s.reg.NewCounters(),
			Logf:            s.cfg.WALLogf,
		}
		l, _, err := wal.Open(dir, wcfg, func(_ uint64, ops []wal.Op) {
			for j := range ops {
				o := &ops[j]
				if o.Op == wal.OpPut {
					idx.Insert(e.ctx, o.Key, o.Val)
				} else {
					idx.Delete(e.ctx, o.Key)
				}
			}
		})
		if err != nil {
			ckptCtx.Close()
			s.closeWALs()
			return fmt.Errorf("shard %d: %w", i, err)
		}
		sh.wal = l
		sh.ckptCtx = ckptCtx
		e.wal = l
		e.walOps = make([]wal.Op, 0, s.cfg.BatchMax)
	}
	return nil
}

// closeWALs seals every open shard log (fsync + close) and releases
// the checkpoint contexts. Called after the executors have exited.
func (s *Server) closeWALs() {
	for _, sh := range s.shards {
		if sh.wal != nil {
			if err := sh.wal.Close(); err != nil && s.cfg.WALLogf != nil {
				s.cfg.WALLogf("wal: close: %v", err)
			}
			sh.wal = nil
			sh.exec.wal = nil
		}
		if sh.ckptCtx != nil {
			sh.ckptCtx.Close()
			sh.ckptCtx = nil
		}
	}
}

// checkWALMeta validates the WAL root against this server's layout,
// writing the descriptor on first use.
func (s *Server) checkWALMeta() error {
	if err := os.MkdirAll(s.cfg.WALDir, 0o777); err != nil {
		return fmt.Errorf("wal dir: %w", err)
	}
	path := filepath.Join(s.cfg.WALDir, walMetaName)
	if data, err := os.ReadFile(path); err == nil {
		var shards int
		if n, serr := fmt.Sscanf(string(data), "optiql-wal v1\nshards=%d\n", &shards); n != 1 || serr != nil {
			return fmt.Errorf("wal dir %s: unreadable %s file", s.cfg.WALDir, walMetaName)
		}
		if shards != s.cfg.Shards {
			return fmt.Errorf("wal dir %s was written with %d shards, server configured for %d: refusing to misroute replay", s.cfg.WALDir, shards, s.cfg.Shards)
		}
		return nil
	}
	data := fmt.Sprintf("optiql-wal v1\nshards=%d\n", s.cfg.Shards)
	if err := os.WriteFile(path, []byte(data), 0o666); err != nil {
		return fmt.Errorf("wal dir: %w", err)
	}
	return nil
}

// snapshotIndex streams a shard's pairs to emit in key chunks via the
// zero-alloc Scan path (the chunk buffer is reused across the whole
// snapshot; Scan appends into it without per-pair allocation).
func snapshotIndex(idx Index, ctx *locks.Ctx, emit func(k, v uint64) error) error {
	const chunk = 1024
	buf := make([]wire.KV, 0, chunk)
	start := uint64(0)
	for {
		buf = idx.Scan(ctx, start, chunk, buf[:0])
		for _, p := range buf {
			if err := emit(p.Key, p.Value); err != nil {
				return err
			}
		}
		if len(buf) < chunk {
			return nil
		}
		last := buf[len(buf)-1].Key
		if last == ^uint64(0) {
			return nil
		}
		start = last + 1
	}
}

// ackItem is one write waiting on the log's commit policy; ackBatch is
// the pooled wal.Committer for one executor batch. The executor fills
// items while applying, then hands the batch to wal.Commit; Committed
// runs on the log's syncer goroutine (or inline, policy-dependent) and
// is the point where the batch's clients finally hear back.
type ackItem struct {
	p    *pending
	slot *wire.Response
}

type ackBatch struct {
	items []ackItem
}

var ackBatchPool = sync.Pool{New: func() any {
	return &ackBatch{items: make([]ackItem, 0, 64)}
}}

// Committed implements wal.Committer: on fsync failure every slot is
// rewritten to StatusErr — the write may be in the index but is not
// durable, and an error answer keeps it in the client's indeterminate
// set rather than its acked set.
func (a *ackBatch) Committed(err error) {
	if err != nil {
		msg := "wal: " + err.Error()
		for i := range a.items {
			a.items[i].slot.Status = wire.StatusErr
			a.items[i].slot.Err = msg
		}
	}
	for i := range a.items {
		a.items[i].p.opDone()
		a.items[i] = ackItem{}
	}
	a.items = a.items[:0]
	ackBatchPool.Put(a)
}

// execBatch runs one drained batch through the WAL when one is
// configured: append first (nothing may become observable unlogged),
// then apply to the index collecting deferred acks, then hand the acks
// to the commit policy.
func (e *executor) execBatch(buf []writeOp) {
	if e.wal == nil {
		e.applyBatch(buf)
		return
	}
	ops := e.walOps[:0]
	for i := range buf {
		w := &buf[i]
		o := wal.Op{Op: wal.OpPut, Key: w.key, Val: w.val}
		if w.op == wire.OpDelete {
			o = wal.Op{Op: wal.OpDelete, Key: w.key}
		}
		ops = append(ops, o)
	}
	e.walOps = ops
	seq, err := e.wal.Append(ops)
	if err != nil {
		// Poisoned or closed log: fail the whole batch without touching
		// the index. Applying an unlogged write would let a client read
		// state that silently vanishes on restart.
		msg := "wal: " + err.Error()
		for i := range buf {
			w := &buf[i]
			w.slot.Status = wire.StatusErr
			w.slot.Err = msg
			w.p.noteApplied()
			w.p.opDone()
			e.inflight.Add(-1)
		}
		e.srv.stats.errors.Add(uint64(len(buf)))
		return
	}
	if !e.srv.walDefersAcks {
		// Off policy: the ack never waits on an fsync, so skip the
		// deferred-ack batch entirely — completions land at apply time,
		// exactly like the no-WAL path, and the syncer's tick flushes.
		e.applyBatch(buf)
		e.wal.NoteApplied(seq)
		return
	}
	ab := ackBatchPool.Get().(*ackBatch)
	e.ack = ab
	e.applyBatch(buf)
	e.ack = nil
	e.wal.NoteApplied(seq)
	e.wal.Commit(seq, len(ab.items), ab)
}

// complete finishes one write: immediately without a WAL, otherwise by
// parking it on the current batch's deferred-ack set. Either way the
// write is in the index now, so the read-your-writes barrier releases
// here even though a deferred ack still waits on the fsync.
func (e *executor) complete(w *writeOp) {
	w.p.noteApplied()
	if e.ack != nil {
		e.ack.items = append(e.ack.items, ackItem{p: w.p, slot: w.slot})
		return
	}
	w.p.opDone()
}

// WALEnabled reports whether this server runs with a write-ahead log.
func (s *Server) WALEnabled() bool { return s.cfg.WALDir != "" }

// WALRecovery returns the per-shard recovery stats of the startup
// replay (nil without a WAL).
func (s *Server) WALRecovery() []wal.RecoveryStats {
	if !s.WALEnabled() {
		return nil
	}
	out := make([]wal.RecoveryStats, len(s.shards))
	for i, sh := range s.shards {
		if sh.wal != nil {
			out[i] = sh.wal.Recovery()
		}
	}
	return out
}

// WALReport merges the shard logs into the durability report served at
// /debug/wal and embedded in run reports. Nil without a WAL.
func (s *Server) WALReport() *obs.WALReport {
	if !s.WALEnabled() {
		return nil
	}
	rep := &obs.WALReport{
		Enabled: true,
		Policy:  s.cfg.Fsync,
		Dir:     s.cfg.WALDir,
	}
	if rep.Policy == "" {
		rep.Policy = wal.SyncInterval
	}
	var fh hist.Histogram
	for _, sh := range s.shards {
		l := sh.wal
		if l == nil {
			continue
		}
		st := l.Stats()
		rep.AppendedRecords += st.AppendedRecords
		rep.AppendedOps += st.AppendedOps
		rep.AppendedBytes += st.AppendedBytes
		rep.Syncs += st.Syncs
		rep.Rotations += st.Rotations
		rep.Checkpoints += st.Checkpoints
		rep.SegmentsReclaimed += st.SegmentsReclaimed
		rep.LagSheds += st.LagSheds
		rep.DurableSeq = append(rep.DurableSeq, st.DurableSeq)
		rep.AppliedSeq = append(rep.AppliedSeq, st.AppliedSeq)
		rep.PendingOps = append(rep.PendingOps, st.PendingOps)
		rec := l.Recovery()
		rep.ReplayedRecords += rec.RecordsReplayed
		rep.ReplayedOps += rec.OpsReplayed
		rep.TornTruncations += uint64(rec.TornRecords)
		rep.CheckpointPairs += rec.CheckpointPairs
		l.FsyncHist(&fh)
	}
	rep.FsyncLatency = obs.LatencyReportFrom(&fh)
	return rep
}

// walGate pre-screens a write against shard si's log: poisoned logs
// answer StatusErr (reads keep serving), a lagging fsync queue sheds
// with StatusOverloaded. Reports whether the write was answered here.
func (c *conn) walGate(si int, p *pending, slot *wire.Response) bool {
	l := c.srv.shards[si].wal
	if l == nil {
		return false
	}
	if err := l.Err(); err != nil {
		slot.Status = wire.StatusErr
		slot.Err = "wal: " + err.Error()
		c.srv.stats.errors.Add(1)
		p.opDone()
		return true
	}
	if l.Lagging() {
		slot.Status = wire.StatusOverloaded
		c.srv.stats.shed.Add(1)
		c.srv.resil.Inc(obs.EvSrvShed)
		l.NoteShed()
		p.opDone()
		return true
	}
	return false
}
