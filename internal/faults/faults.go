// Package faults is the deterministic fault-injection layer of the
// network stack: a chaos net.Conn / net.Listener wrapper that injects
// the failures a production deployment meets — added latency, read
// stalls (slow-loris peers), fragmented and short writes, hard
// connection resets, single-bit payload corruption and transient
// accept failures — under per-fault probability knobs.
//
// The paper's claim is that OptiQL stays robust when contention and
// oversubscription would collapse a centralized lock; this package
// makes the same claim testable one layer up, for the optiqld network
// service. It is used two ways: the chaos e2e tests in internal/server
// drive the oracle workload through a faulty transport and assert that
// no acknowledged write is ever lost, and the daemons expose it live
// via `optiqld -chaos` / `indexbench -chaos` so a Figure-9-style
// throughput timeline can be recorded while faults fire.
//
// Determinism: every decision comes from a splitmix64 stream seeded
// from Config.Seed (each wrapped connection derives its own stream
// from the seed and a connection ordinal), so a run with the same seed
// makes the same injection decisions in the same per-connection
// operation order. Wall-clock effects (what the peer was doing when
// the reset landed) are of course still scheduling-dependent.
package faults

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"optiql/internal/obs"
	"optiql/internal/obs/trace"
)

// Fault codes carried in trace.Span.Flags for KindFault spans, so a
// Chrome trace can tell which fault produced a given delay.
const (
	TraceLatency uint8 = iota + 1
	TraceStall
	TraceShortWrite
	TraceFragment
	TraceReset
	TraceCorrupt
	TraceAcceptFail
)

// Config holds the per-fault probabilities (each in [0, 1], applied
// per Read/Write/Accept call) and their parameters. The zero value
// injects nothing.
type Config struct {
	// Seed seeds the deterministic decision stream (0 means 1).
	Seed uint64
	// LatencyProb delays a Read or Write by a pseudo-random duration in
	// [LatencyMin, LatencyMax].
	LatencyProb float64
	LatencyMin  time.Duration
	LatencyMax  time.Duration
	// StallProb freezes a Read for StallDur before proceeding — a
	// slow-loris peer from the other side's point of view.
	StallProb float64
	StallDur  time.Duration
	// ShortWriteProb truncates a Write, returning a short count with
	// io.ErrShortWrite; the peer sees a frame cut off mid-stream.
	ShortWriteProb float64
	// FragmentProb splits a Write into small delayed fragments (the
	// full buffer is still written; the peer's frame reassembly is
	// exercised).
	FragmentProb float64
	// ResetProb closes the connection hard (SO_LINGER 0 on TCP, so the
	// peer observes ECONNRESET rather than a clean EOF).
	ResetProb float64
	// CorruptReadProb / CorruptWriteProb flip exactly one bit in a
	// non-empty Read / Write buffer.
	CorruptReadProb  float64
	CorruptWriteProb float64
	// AcceptFailProb makes Listener.Accept return a transient
	// (Temporary() == true) injected error.
	AcceptFailProb float64
	// Counters, when set, mirrors every injection into the shared obs
	// registry (EvFault*), so chaos runs surface in -json reports and
	// /metrics next to the lock events.
	Counters *obs.Counters
	// Trace, when set, records every injection as a KindFault span
	// (Flags = Trace* code; Dur = the injected delay for latency and
	// stall faults), attributing chaos-induced latency in the trace
	// timeline. Injections are rare, so spans are recorded
	// unconditionally rather than sampled; the buffer is shared across
	// all wrapped connections, which Record's mutex makes safe (Sample
	// is never called on it).
	Trace *trace.Buf `json:"-"`
}

// Any reports whether the configuration can inject at least one fault.
func (c *Config) Any() bool {
	return c != nil && (c.LatencyProb > 0 || c.StallProb > 0 || c.ShortWriteProb > 0 ||
		c.FragmentProb > 0 || c.ResetProb > 0 || c.CorruptReadProb > 0 ||
		c.CorruptWriteProb > 0 || c.AcceptFailProb > 0)
}

// Stats counts injected faults by kind.
type Stats struct {
	Latency    uint64 `json:"latency"`
	Stall      uint64 `json:"stall"`
	ShortWrite uint64 `json:"short_write"`
	Fragment   uint64 `json:"fragment"`
	Reset      uint64 `json:"reset"`
	Corrupt    uint64 `json:"corrupt"`
	AcceptFail uint64 `json:"accept_fail"`
}

// Total sums all injected faults.
func (s Stats) Total() uint64 {
	return s.Latency + s.Stall + s.ShortWrite + s.Fragment + s.Reset + s.Corrupt + s.AcceptFail
}

// Injector owns one chaos configuration: it wraps listeners and
// connections, counts what it injects and can be disabled at runtime
// (SetEnabled), which the e2e harness uses to run a clean verification
// phase over the same listener after the chaotic measured phase.
type Injector struct {
	cfg     Config
	enabled atomic.Bool
	connSeq atomic.Uint64

	latency, stall, shortWrite, fragment, reset, corrupt, acceptFail atomic.Uint64
}

// NewInjector builds an enabled injector for cfg.
func NewInjector(cfg Config) *Injector {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.LatencyMax < cfg.LatencyMin {
		cfg.LatencyMax = cfg.LatencyMin
	}
	in := &Injector{cfg: cfg}
	in.enabled.Store(true)
	return in
}

// SetEnabled toggles injection; a disabled injector passes every call
// through untouched.
func (in *Injector) SetEnabled(on bool) { in.enabled.Store(on) }

// Stats samples the injection counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Latency:    in.latency.Load(),
		Stall:      in.stall.Load(),
		ShortWrite: in.shortWrite.Load(),
		Fragment:   in.fragment.Load(),
		Reset:      in.reset.Load(),
		Corrupt:    in.corrupt.Load(),
		AcceptFail: in.acceptFail.Load(),
	}
}

func (in *Injector) count(c *atomic.Uint64, e obs.Event) {
	c.Add(1)
	in.cfg.Counters.Inc(e)
}

// span records one injected fault in the trace timeline (no-op when
// tracing is off).
func (in *Injector) span(code uint8, start, dur int64) {
	in.cfg.Trace.Record(trace.KindFault, code, start, dur, 0, 0)
}

// pointSpan records a zero-duration fault event at the current clock.
func (in *Injector) pointSpan(code uint8) {
	if in.cfg.Trace == nil {
		return
	}
	in.span(code, in.cfg.Trace.Now(), 0)
}

// rng is one deterministic splitmix64 decision stream.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	x := r.s
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hit draws one decision with probability p.
func (r *rng) hit(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(r.next()>>11)/(1<<53) < p
}

// dur draws a duration in [lo, hi].
func (r *rng) dur(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(r.next()%uint64(hi-lo+1))
}

// WrapConn wraps an established connection with this injector's
// faults. Each wrapped connection gets its own deterministic decision
// stream derived from the seed and a connection ordinal.
func (in *Injector) WrapConn(nc net.Conn) *Conn {
	seq := in.connSeq.Add(1)
	s := in.cfg.Seed ^ seq*0xD1B54A32D192ED03
	return &Conn{Conn: nc, in: in, rng: rng{s: s}, rrng: rng{s: s ^ 0x9FB21C651E98DF25}}
}

// WrapListener wraps ln so accepted connections carry this injector's
// faults and Accept itself fails transiently with AcceptFailProb.
func (in *Injector) WrapListener(ln net.Listener) *Listener {
	return &Listener{Listener: ln, in: in, rng: rng{s: in.cfg.Seed ^ 0xA0761D6478BD642F}}
}

// Dial connects to addr and wraps the connection.
func (in *Injector) Dial(addr string) (net.Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return in.WrapConn(nc), nil
}

// errInjected is the base of all injected errors, so tests and logs
// can tell chaos from genuine failures.
type errInjected struct {
	kind string
	temp bool
}

func (e *errInjected) Error() string   { return "faults: injected " + e.kind }
func (e *errInjected) Timeout() bool   { return false }
func (e *errInjected) Temporary() bool { return e.temp }

// IsInjected reports whether err (or anything it wraps) was produced
// by this package.
func IsInjected(err error) bool {
	for err != nil {
		if _, ok := err.(*errInjected); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Conn is a net.Conn with faults injected on Read and Write. It is
// safe for the usual one-reader/one-writer connection discipline; the
// decision stream is split per direction so reader and writer
// goroutines never share rng state.
type Conn struct {
	net.Conn
	in *Injector
	// rng drives write-side decisions; rrng drives read-side decisions.
	// Splitting the stream per direction keeps the reader and writer
	// goroutines' decisions independent and race-free.
	rng  rng
	rrng rng
}

// Unwrap returns the underlying connection (used by the server's TCP
// tuning to reach the *net.TCPConn through the chaos wrapper).
func (c *Conn) Unwrap() net.Conn { return c.Conn }

// abort closes the connection hard: on TCP, SO_LINGER 0 turns Close
// into a RST so the peer sees ECONNRESET instead of a clean EOF.
func (c *Conn) abort() error {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Conn.Close()
	return &errInjected{kind: "connection reset", temp: false}
}

func (c *Conn) Read(b []byte) (int, error) {
	in := c.in
	if !in.enabled.Load() {
		return c.Conn.Read(b)
	}
	r := &c.rrng
	if r.hit(in.cfg.StallProb) {
		in.count(&in.stall, obs.EvFaultStall)
		t0 := in.cfg.Trace.Now()
		time.Sleep(in.cfg.StallDur)
		in.span(TraceStall, t0, in.cfg.Trace.Now()-t0)
	}
	if r.hit(in.cfg.LatencyProb) {
		in.count(&in.latency, obs.EvFaultLatency)
		t0 := in.cfg.Trace.Now()
		time.Sleep(r.dur(in.cfg.LatencyMin, in.cfg.LatencyMax))
		in.span(TraceLatency, t0, in.cfg.Trace.Now()-t0)
	}
	if r.hit(in.cfg.ResetProb) {
		in.count(&in.reset, obs.EvFaultReset)
		in.pointSpan(TraceReset)
		return 0, c.abort()
	}
	n, err := c.Conn.Read(b)
	if n > 0 && r.hit(in.cfg.CorruptReadProb) {
		in.count(&in.corrupt, obs.EvFaultCorrupt)
		in.pointSpan(TraceCorrupt)
		flipBit(b[:n], r)
	}
	return n, err
}

func (c *Conn) Write(b []byte) (int, error) {
	in := c.in
	if !in.enabled.Load() {
		return c.Conn.Write(b)
	}
	r := &c.rng
	if r.hit(in.cfg.LatencyProb) {
		in.count(&in.latency, obs.EvFaultLatency)
		t0 := in.cfg.Trace.Now()
		time.Sleep(r.dur(in.cfg.LatencyMin, in.cfg.LatencyMax))
		in.span(TraceLatency, t0, in.cfg.Trace.Now()-t0)
	}
	if r.hit(in.cfg.ResetProb) {
		in.count(&in.reset, obs.EvFaultReset)
		in.pointSpan(TraceReset)
		return 0, c.abort()
	}
	if len(b) > 0 && r.hit(in.cfg.CorruptWriteProb) {
		in.count(&in.corrupt, obs.EvFaultCorrupt)
		in.pointSpan(TraceCorrupt)
		// Corrupt a copy: the caller's buffer (e.g. bufio's) must not be
		// mutated behind its back.
		cp := make([]byte, len(b))
		copy(cp, b)
		flipBit(cp, r)
		b = cp
	}
	if len(b) > 1 && r.hit(in.cfg.ShortWriteProb) {
		in.count(&in.shortWrite, obs.EvFaultShortWrite)
		in.pointSpan(TraceShortWrite)
		n, err := c.Conn.Write(b[:1+int(r.next()%uint64(len(b)-1))])
		if err != nil {
			return n, err
		}
		// A short count with no error: io users (bufio included) turn
		// this into io.ErrShortWrite and give up on the connection —
		// exactly the torn-frame failure being modeled.
		return n, nil
	}
	if len(b) > 1 && r.hit(in.cfg.FragmentProb) {
		in.count(&in.fragment, obs.EvFaultFragment)
		in.pointSpan(TraceFragment)
		return c.writeFragmented(b, r)
	}
	return c.Conn.Write(b)
}

// writeFragmented writes b in 2–4 chunks with small delays between,
// forcing the peer to reassemble frames across multiple reads.
func (c *Conn) writeFragmented(b []byte, r *rng) (int, error) {
	parts := 2 + int(r.next()%3)
	if parts > len(b) {
		parts = len(b)
	}
	wrote := 0
	for i := 0; i < parts; i++ {
		end := len(b) * (i + 1) / parts
		n, err := c.Conn.Write(b[wrote:end])
		wrote += n
		if err != nil {
			return wrote, err
		}
		if i < parts-1 {
			time.Sleep(time.Duration(r.next()%uint64(200)) * time.Microsecond)
		}
	}
	return wrote, nil
}

// flipBit flips one pseudo-randomly chosen bit in b.
func flipBit(b []byte, r *rng) {
	x := r.next()
	b[int(x%uint64(len(b)))] ^= 1 << ((x >> 32) % 8)
}

// Listener wraps a net.Listener: Accept fails transiently with the
// configured probability and accepted connections are fault-wrapped.
type Listener struct {
	net.Listener
	in  *Injector
	mu  sync.Mutex // guards rng (Accept is usually single-threaded, but cheap to be safe)
	rng rng
}

func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if l.in.enabled.Load() {
		l.mu.Lock()
		fail := l.rng.hit(l.in.cfg.AcceptFailProb)
		l.mu.Unlock()
		if fail {
			l.in.count(&l.in.acceptFail, obs.EvFaultAcceptFail)
			l.in.pointSpan(TraceAcceptFail)
			nc.Close()
			return nil, &errInjected{kind: "accept failure", temp: true}
		}
	}
	return l.in.WrapConn(nc), nil
}

// Parse builds a Config from a -chaos flag spec: a comma-separated
// list of fault=value settings, e.g.
//
//	latency=0.1:200us-2ms,stall=0.02:50ms,reset=0.01,corrupt=0.005,
//	short=0.01,frag=0.1,accept=0.05,seed=42
//
// Probabilities are in [0,1]. corrupt sets both directions; corruptr /
// corruptw set one. Omitted faults stay off; latency defaults to
// 100us-1ms, stall to 10ms when only the probability is given.
func Parse(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("faults: malformed setting %q (want fault=value)", part)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 0, 64)
			if err != nil {
				return cfg, fmt.Errorf("faults: bad seed %q: %v", v, err)
			}
			cfg.Seed = n
		case "latency":
			p, rest, err := parseProb(k, v)
			if err != nil {
				return cfg, err
			}
			cfg.LatencyProb = p
			cfg.LatencyMin, cfg.LatencyMax = 100*time.Microsecond, time.Millisecond
			if rest != "" {
				lo, hi, ok := strings.Cut(rest, "-")
				if cfg.LatencyMin, err = time.ParseDuration(lo); err != nil {
					return cfg, fmt.Errorf("faults: bad latency range %q: %v", rest, err)
				}
				cfg.LatencyMax = cfg.LatencyMin
				if ok {
					if cfg.LatencyMax, err = time.ParseDuration(hi); err != nil {
						return cfg, fmt.Errorf("faults: bad latency range %q: %v", rest, err)
					}
				}
			}
		case "stall":
			p, rest, err := parseProb(k, v)
			if err != nil {
				return cfg, err
			}
			cfg.StallProb = p
			cfg.StallDur = 10 * time.Millisecond
			if rest != "" {
				if cfg.StallDur, err = time.ParseDuration(rest); err != nil {
					return cfg, fmt.Errorf("faults: bad stall duration %q: %v", rest, err)
				}
			}
		case "reset", "corrupt", "corruptr", "corruptw", "short", "frag", "accept":
			p, rest, err := parseProb(k, v)
			if err != nil {
				return cfg, err
			}
			if rest != "" {
				return cfg, fmt.Errorf("faults: %s takes only a probability, got %q", k, v)
			}
			switch k {
			case "reset":
				cfg.ResetProb = p
			case "corrupt":
				cfg.CorruptReadProb, cfg.CorruptWriteProb = p, p
			case "corruptr":
				cfg.CorruptReadProb = p
			case "corruptw":
				cfg.CorruptWriteProb = p
			case "short":
				cfg.ShortWriteProb = p
			case "frag":
				cfg.FragmentProb = p
			case "accept":
				cfg.AcceptFailProb = p
			}
		default:
			return cfg, fmt.Errorf("faults: unknown fault %q", k)
		}
	}
	return cfg, nil
}

// parseProb splits "P" or "P:rest" and validates P in [0, 1].
func parseProb(k, v string) (float64, string, error) {
	ps, rest, _ := strings.Cut(v, ":")
	p, err := strconv.ParseFloat(ps, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, "", fmt.Errorf("faults: %s probability %q not in [0, 1]", k, ps)
	}
	return p, rest, nil
}
