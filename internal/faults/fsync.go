package faults

import (
	"os"
	"sync/atomic"
	"time"
)

// Storage-side fault injection for the durability path: hooks matching
// the wal.Config.SyncFile seam (and server.Config.WALSyncFile above
// it), so tests can model a throttled or dying disk the same way the
// net.Conn wrappers model a faulty network. IsInjected recognizes the
// errors these hooks produce.

// SlowSync returns an fsync hook that sleeps d before every real sync —
// an overloaded or write-cache-throttled disk. The WAL's group-commit
// queue backs up behind it, which is how the backpressure tests force
// StatusOverloaded shedding deterministically.
func SlowSync(d time.Duration) func(*os.File) error {
	return func(f *os.File) error {
		time.Sleep(d)
		return f.Sync()
	}
}

// FailSyncAfter returns an fsync hook that performs n real syncs and
// then fails every subsequent one — a disk that drops dead mid-run.
// The first failure poisons the log (writes shed, reads keep serving),
// so n positions the death precisely in a test's timeline. The hook is
// safe to share across shards; the budget is global, not per-log.
func FailSyncAfter(n int) func(*os.File) error {
	var used atomic.Int64
	return func(f *os.File) error {
		if used.Add(1) > int64(n) {
			return &errInjected{kind: "fsync failure", temp: false}
		}
		return f.Sync()
	}
}
