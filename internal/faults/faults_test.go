package faults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"optiql/internal/obs"
)

// pipePair builds a real TCP pair so RST/linger behavior is exercised
// for real, wrapping the server side with in.
func pipePair(t *testing.T, in *Injector) (wrapped net.Conn, peer net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		nc  net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		nc, err := ln.Accept()
		ch <- res{nc, err}
	}()
	cl, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { cl.Close(); r.nc.Close() })
	return in.WrapConn(r.nc), cl
}

func TestDeterministicDecisions(t *testing.T) {
	// Two injectors with the same seed must make identical decision
	// sequences for the same connection ordinal.
	cfg := Config{Seed: 42, ResetProb: 0.3, CorruptWriteProb: 0.2, LatencyProb: 0.1}
	a := NewInjector(cfg).WrapConn(nil)
	b := NewInjector(cfg).WrapConn(nil)
	for i := 0; i < 1000; i++ {
		if a.rng.hit(0.5) != b.rng.hit(0.5) || a.rrng.hit(0.25) != b.rrng.hit(0.25) {
			t.Fatalf("decision streams diverged at %d", i)
		}
	}
	// Different connections from one injector must differ (with these
	// many draws, identical streams would be astronomically unlikely).
	in := NewInjector(cfg)
	c1, c2 := in.WrapConn(nil), in.WrapConn(nil)
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.rng.hit(0.5) == c2.rng.hit(0.5) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("two connections share one decision stream")
	}
}

func TestHitProbabilityBounds(t *testing.T) {
	r := rng{s: 7}
	for i := 0; i < 100; i++ {
		if r.hit(0) {
			t.Fatal("p=0 hit")
		}
		if !r.hit(1) {
			t.Fatal("p=1 missed")
		}
	}
	// Rough frequency check: p=0.5 over 10k draws lands near 5k.
	n := 0
	for i := 0; i < 10000; i++ {
		if r.hit(0.5) {
			n++
		}
	}
	if n < 4500 || n > 5500 {
		t.Fatalf("p=0.5 hit %d/10000 times", n)
	}
}

func TestCorruptWriteFlipsOneBit(t *testing.T) {
	in := NewInjector(Config{Seed: 3, CorruptWriteProb: 1})
	wc, peer := pipePair(t, in)
	msg := bytes.Repeat([]byte{0xAA}, 64)
	if _, err := wc.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if _, err := io.ReadFull(peer, got); err != nil {
		t.Fatal(err)
	}
	diffBits := 0
	for i := range got {
		x := got[i] ^ msg[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diffBits)
	}
	// The caller's buffer must be untouched.
	if !bytes.Equal(msg, bytes.Repeat([]byte{0xAA}, 64)) {
		t.Fatal("Write mutated the caller's buffer")
	}
	if in.Stats().Corrupt != 1 {
		t.Fatalf("stats = %+v", in.Stats())
	}
}

func TestResetSurfacesToPeer(t *testing.T) {
	in := NewInjector(Config{Seed: 9, ResetProb: 1})
	wc, peer := pipePair(t, in)
	_, err := wc.Write([]byte("x"))
	if err == nil || !IsInjected(err) {
		t.Fatalf("reset write err = %v", err)
	}
	// The peer sees the connection die (RST or EOF depending on timing),
	// never a hang.
	peer.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := peer.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after injected reset")
	}
	if in.Stats().Reset != 1 {
		t.Fatalf("stats = %+v", in.Stats())
	}
}

func TestShortWriteTruncates(t *testing.T) {
	in := NewInjector(Config{Seed: 5, ShortWriteProb: 1})
	wc, peer := pipePair(t, in)
	msg := bytes.Repeat([]byte{1}, 100)
	n, err := wc.Write(msg)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || n >= len(msg) {
		t.Fatalf("short write wrote %d of %d", n, len(msg))
	}
	wc.Close()
	got, _ := io.ReadAll(peer)
	if len(got) != n {
		t.Fatalf("peer read %d bytes, writer reported %d", len(got), n)
	}
}

func TestFragmentDeliversEverything(t *testing.T) {
	in := NewInjector(Config{Seed: 6, FragmentProb: 1})
	wc, peer := pipePair(t, in)
	msg := make([]byte, 4096)
	for i := range msg {
		msg[i] = byte(i)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if n, err := wc.Write(msg); err != nil || n != len(msg) {
			t.Errorf("fragmented write = (%d, %v)", n, err)
		}
		wc.Close()
	}()
	got, err := io.ReadAll(peer)
	wg.Wait()
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("peer got %d bytes (err %v), want %d intact", len(got), err, len(msg))
	}
	if in.Stats().Fragment == 0 {
		t.Fatal("no fragment recorded")
	}
}

func TestStallAndLatencyDelay(t *testing.T) {
	in := NewInjector(Config{Seed: 8, StallProb: 1, StallDur: 30 * time.Millisecond})
	wc, peer := pipePair(t, in)
	go peer.Write([]byte("x"))
	start := time.Now()
	if _, err := wc.Read(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("stalled read returned after %v, want >= ~30ms", d)
	}
	if in.Stats().Stall != 1 {
		t.Fatalf("stats = %+v", in.Stats())
	}
}

func TestAcceptFailureIsTemporary(t *testing.T) {
	in := NewInjector(Config{Seed: 4, AcceptFailProb: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wl := in.WrapListener(ln)
	defer wl.Close()
	go net.Dial("tcp", ln.Addr().String())
	_, err = wl.Accept()
	if err == nil || !IsInjected(err) {
		t.Fatalf("accept err = %v", err)
	}
	var ne interface{ Temporary() bool }
	if !errors.As(err, &ne) || !ne.Temporary() {
		t.Fatalf("injected accept failure not temporary: %v", err)
	}
	if in.Stats().AcceptFail != 1 {
		t.Fatalf("stats = %+v", in.Stats())
	}
}

func TestDisabledInjectsNothing(t *testing.T) {
	in := NewInjector(Config{Seed: 2, ResetProb: 1, CorruptWriteProb: 1, ShortWriteProb: 1})
	in.SetEnabled(false)
	wc, peer := pipePair(t, in)
	msg := []byte("hello world")
	if n, err := wc.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("disabled write = (%d, %v)", n, err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(peer, got); err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("disabled transfer corrupted: %q (%v)", got, err)
	}
	if in.Stats().Total() != 0 {
		t.Fatalf("disabled injector counted faults: %+v", in.Stats())
	}
}

func TestObsCountersMirrored(t *testing.T) {
	reg := obs.NewRegistry()
	in := NewInjector(Config{Seed: 11, CorruptWriteProb: 1, Counters: reg.NewCounters()})
	wc, peer := pipePair(t, in)
	go io.Copy(io.Discard, peer)
	if _, err := wc.Write([]byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Get(obs.EvFaultCorrupt); got != 1 {
		t.Fatalf("obs fault_corrupt = %d, want 1", got)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := Parse("latency=0.1:200us-2ms, stall=0.02:50ms,reset=0.01,corrupt=0.005,short=0.03,frag=0.25,accept=0.05,seed=42,corruptw=0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed:        42,
		LatencyProb: 0.1, LatencyMin: 200 * time.Microsecond, LatencyMax: 2 * time.Millisecond,
		StallProb: 0.02, StallDur: 50 * time.Millisecond,
		ResetProb: 0.01, CorruptReadProb: 0.005, CorruptWriteProb: 0.5,
		ShortWriteProb: 0.03, FragmentProb: 0.25, AcceptFailProb: 0.05,
	}
	if cfg != want {
		t.Fatalf("Parse = %+v, want %+v", cfg, want)
	}
	if !cfg.Any() {
		t.Fatal("parsed config reports no faults")
	}

	if cfg, err := Parse(""); err != nil || cfg.Any() {
		t.Fatalf("empty spec = %+v, %v", cfg, err)
	}
	if cfg, err := Parse("latency=0.5"); err != nil || cfg.LatencyMin != 100*time.Microsecond || cfg.LatencyMax != time.Millisecond {
		t.Fatalf("default latency range = %+v, %v", cfg, err)
	}
	if cfg, err := Parse("stall=0.5"); err != nil || cfg.StallDur != 10*time.Millisecond {
		t.Fatalf("default stall duration = %+v, %v", cfg, err)
	}
	for _, bad := range []string{"latency", "bogus=1", "reset=2", "reset=-0.1", "reset=x", "seed=zz", "reset=0.1:5ms"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestIsInjected(t *testing.T) {
	if IsInjected(io.EOF) || IsInjected(nil) {
		t.Fatal("IsInjected misfired")
	}
	err := &errInjected{kind: "x"}
	if !IsInjected(err) {
		t.Fatal("IsInjected missed a direct injected error")
	}
	if !IsInjected(&net.OpError{Op: "read", Err: err}) {
		t.Fatal("IsInjected missed a wrapped injected error")
	}
}
