package obs

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"time"
)

// Report is the machine-readable result of one benchmark or stress
// run: configuration, throughput, merged event counters, the
// per-interval throughput timeline and latency percentiles. The cmd
// front-ends emit it with -json so perf trajectories (BENCH_*.json)
// and Figure-9-style robustness plots can accumulate across runs.
type Report struct {
	// Tool identifies the producing command ("indexbench",
	// "microbench", "stress").
	Tool string `json:"tool"`
	// Timestamp is the wall-clock time the report was produced.
	Timestamp time.Time `json:"timestamp"`
	// Host captures the runtime environment of the run.
	Host HostInfo `json:"host"`
	// Config echoes the run configuration (tool-specific shape).
	Config any `json:"config,omitempty"`
	// ElapsedSeconds is the measured duration.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Ops is the number of completed operations.
	Ops uint64 `json:"ops"`
	// Mops is throughput in million operations per second.
	Mops float64 `json:"mops"`
	// Counters is the merged event-counter snapshot keyed by event
	// name (absent when counting was disabled for the run).
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Timeline is the per-interval throughput series (absent when
	// sampling was disabled).
	Timeline *TimelineReport `json:"timeline,omitempty"`
	// Latency is the sampled latency distribution (absent unless the
	// run collected latencies).
	Latency *LatencyReport `json:"latency,omitempty"`
	// LockWait, HotKeys, HotNodes and QueueDepth are the contention
	// profiler's sections (absent unless the run traced; see
	// AttachContention and internal/obs/trace).
	LockWait   *LatencyReport `json:"lock_wait,omitempty"`
	HotKeys    []HotKeyReport `json:"hot_keys,omitempty"`
	HotNodes   []HotKeyReport `json:"hot_nodes,omitempty"`
	QueueDepth []int64        `json:"queue_depth,omitempty"`
	// Combine is the contention engine's state and counters (absent
	// unless the serving side ran with combining compiled in).
	Combine *CombineReport `json:"combine,omitempty"`
	// WAL is the durability section (absent unless the serving side ran
	// with a write-ahead log; see internal/wal).
	WAL *WALReport `json:"wal,omitempty"`
	// Extra carries tool-specific results (per-op counts, read success
	// rates, expansions, ...).
	Extra map[string]any `json:"extra,omitempty"`
}

// HostInfo records the runtime environment a report was produced on.
type HostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentHost captures this process's runtime environment.
func CurrentHost() HostInfo {
	return HostInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// TimelineReport serializes a per-interval throughput timeline: the
// instrument behind Figure 9's robustness-over-time plots. Window
// stats summarize the series so a collapse (high stddev, low min) is
// visible without replotting.
type TimelineReport struct {
	IntervalSeconds float64 `json:"interval_seconds"`
	// OpsPerInterval is the completed-operation count per elapsed
	// interval, in order.
	OpsPerInterval []uint64 `json:"ops_per_interval"`
	MopsMin        float64  `json:"mops_min"`
	MopsAvg        float64  `json:"mops_avg"`
	MopsStddev     float64  `json:"mops_stddev"`
}

// LatencyReport serializes a latency histogram as the paper's Figure
// 12 percentile columns plus the non-empty buckets, enough to re-plot
// the distribution.
type LatencyReport struct {
	Count  uint64  `json:"count"`
	MinNs  uint64  `json:"min_ns"`
	MaxNs  uint64  `json:"max_ns"`
	MeanNs float64 `json:"mean_ns"`
	// Percentiles maps Figure 12's column labels ("50%", "99.9%", ...)
	// to nanosecond values.
	Percentiles map[string]uint64 `json:"percentiles"`
	// Buckets is the raw distribution: per non-empty bucket, its
	// representative upper bound and count.
	Buckets []BucketReport `json:"buckets,omitempty"`
}

// BucketReport is one non-empty histogram bucket.
type BucketReport struct {
	UpperNs uint64 `json:"upper_ns"`
	Count   uint64 `json:"count"`
}

// Encode writes the report as indented JSON.
func (r *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path; "-" means stdout.
func (r *Report) WriteFile(path string) error {
	if path == "-" {
		return r.Encode(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
