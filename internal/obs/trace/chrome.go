package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one Chrome trace_event record. We emit complete
// events ("ph":"X") with microsecond timestamps — the subset Perfetto
// and chrome://tracing both load directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the retained spans in Chrome trace_event JSON
// (the object form, with displayTimeUnit). Shards map to processes
// (pid = shard+1; unsharded client/reader buffers land in pid 0),
// workers map to threads, and stitched request spans carry their span
// ID in args so one wire request reads as one tree. Cold path: runs
// once at exit, allocation budget does not apply.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		return nil
	}
	spans := t.Spans()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		raw, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(raw)
		return err
	}
	// Name the processes once per distinct pid.
	seen := make(map[int]bool)
	for _, s := range spans {
		pid := int(s.Shard) + 1
		if pid < 0 {
			pid = 0
		}
		if seen[pid] {
			continue
		}
		seen[pid] = true
		name := "clients/readers"
		if pid > 0 {
			name = fmt.Sprintf("shard %d", pid-1)
		}
		if err := emit(chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		}); err != nil {
			return err
		}
	}
	for _, s := range spans {
		pid := int(s.Shard) + 1
		if pid < 0 {
			pid = 0
		}
		args := map[string]any{"key": s.Key}
		if s.ID != 0 {
			args["span"] = s.ID
		}
		if s.Flags != 0 {
			args["flags"] = s.Flags
		}
		if err := emit(chromeEvent{
			Name: s.Kind.Name(), Ph: "X", Pid: pid, Tid: int(s.Worker),
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			Args: args,
		}); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
