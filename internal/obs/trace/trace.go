// Package trace is the contention profiler under internal/obs: sampled,
// allocation-free span recording into per-worker fixed-capacity ring
// buffers, per-shard lock-wait histograms (internal/hist) and
// space-saving top-K sketches of hot keys and hot tree nodes.
//
// The design follows the same constraint as the event counters one
// package up: the lock word and its operations stay untouched, so all
// recording happens in the lock adapters, the index substrates, the
// server request path and the benchmark drivers — one *Buf per worker
// goroutine, threaded through locks.Ctx.
//
// Hot-path discipline (enforced by optiqlvet's noalloc analyzer and the
// dynamic alloc tests):
//
//   - Sample is a counter increment and a mask test on the owner
//     goroutine; no atomics, no clock read, no mutex. A nil *Buf
//     samples false, so disabled tracing costs one nil check.
//   - The monotonic clock (Now) is read only after Sample says yes —
//     the "amortized by sampling" clock strategy: at 1/1024 sampling
//     the two time.Since calls per sampled span amortize to ~nothing.
//   - Record/LockWait take the buffer's mutex. The mutex is
//     uncontended in steady state (the owner records; snapshot readers
//     take it only on scrape) and exists so live /debug/contention
//     scrapes are race-clean under -race without per-field atomics.
//   - The ring overwrites: a Buf keeps the most recent BufCap spans
//     and counts what it dropped. Histograms and sketches are NOT
//     ring-bounded — they aggregate every sampled observation — so
//     overwrite semantics only affect the exported span timeline.
//
// Buffers are single-producer: exactly one goroutine may call Sample
// on a Buf (Record alone is mutex-safe from a second goroutine, which
// the server's reader/writer pairs rely on).
package trace

import (
	"sync"
	"time"

	"optiql/internal/hist"
)

// Kind enumerates span types. The taxonomy mirrors what the paper's
// evaluation needs to attribute tail latency: where lock time goes
// (wait, validation failure, restart), where request time goes (decode,
// queue, execute, respond) and what the environment injected (faults,
// client retries).
type Kind uint8

const (
	// KindLockWait is one exclusive acquisition: Dur is the time from
	// entering AcquireEx to the grant, Key is the lock identity and
	// FlagHandover distinguishes queue handover from a free-word CAS.
	KindLockWait Kind = iota
	// KindLockReadFail is an optimistic read whose validation failed at
	// ReleaseSh (Key = lock identity).
	KindLockReadFail
	// KindLockOpportunistic is a shared read admitted through an open
	// opportunistic read window (Key = lock identity).
	KindLockOpportunistic
	// KindLockUpgradeFail is a failed shared-to-exclusive upgrade
	// (Key = lock identity); the caller restarts.
	KindLockUpgradeFail
	// KindOpRestart is an index operation restarting from the top
	// (Key = the operation's search key).
	KindOpRestart
	// KindTreeOp is one whole index operation in a benchmark worker
	// loop (Flags = workload op kind, Key = search key).
	KindTreeOp
	// KindReqDecode is the server parsing one request frame
	// (Flags = opcode, ID = request span).
	KindReqDecode
	// KindReqQueue is a write's wait in a shard executor queue
	// (Flags = opcode, ID = request span).
	KindReqQueue
	// KindReqExec is the index call itself — an inline read on the
	// connection goroutine or an executor write (Flags = opcode).
	KindReqExec
	// KindExecBatch is one executor drain batch (Key = batch size).
	KindExecBatch
	// KindReqWrite is encoding and writing one response
	// (ID = request span).
	KindReqWrite
	// KindFault is an injected fault (Flags = the injector's fault
	// code; Dur = injected delay for latency/stall faults).
	KindFault
	// KindCliRetry is a client backoff sleep before a retry.
	KindCliRetry
	// KindCliReconnect is a client re-establishing its connection
	// (Dur = dial time).
	KindCliReconnect

	numKinds
)

// kindNames are the stable identifiers used in the Chrome export.
var kindNames = [numKinds]string{
	KindLockWait:          "lock.wait",
	KindLockReadFail:      "lock.read_fail",
	KindLockOpportunistic: "lock.opportunistic",
	KindLockUpgradeFail:   "lock.upgrade_fail",
	KindOpRestart:         "op.restart",
	KindTreeOp:            "tree.op",
	KindReqDecode:         "req.decode",
	KindReqQueue:          "req.queue",
	KindReqExec:           "req.exec",
	KindExecBatch:         "exec.batch",
	KindReqWrite:          "req.write",
	KindFault:             "fault",
	KindCliRetry:          "cli.retry",
	KindCliReconnect:      "cli.reconnect",
}

// Name returns the kind's stable identifier.
func (k Kind) Name() string {
	if k >= numKinds {
		return "unknown"
	}
	return kindNames[k]
}

// FlagHandover marks a KindLockWait span granted by queue handover
// rather than a free-word CAS.
const FlagHandover uint8 = 1 << 0

// Span is one fixed-size trace record. Start and Dur are nanoseconds
// on the tracer's monotonic clock (Start is since the tracer epoch).
// ID stitches the phases of one server request into one trace tree; 0
// means unstitched. Key is kind-dependent: the operation key, the lock
// identity, or a batch size.
type Span struct {
	Kind   Kind
	Flags  uint8
	Shard  int16
	Worker int32
	Start  int64
	Dur    int64
	ID     uint64
	Key    uint64
}

// Config parameterizes a Tracer. The zero value gets defaults.
type Config struct {
	// BufCap is each ring buffer's span capacity, rounded up to a power
	// of two (default 4096). The ring keeps the most recent spans.
	BufCap int
	// SampleEvery records 1 in N sampling decisions, rounded up to a
	// power of two (default 1024; 1 records every decision).
	SampleEvery int
	// Shards partitions the hot-key sketches (default 1). Keys are
	// attributed to the shard the caller names; the hot-node sketch is
	// global (a lock's shard is not known at the lock layer).
	Shards int
	// TopK is each sketch's capacity (default 32).
	TopK int
	// DecayEvery halves every sketch count after that many offers, so
	// the hot set follows workload shift (default 8192; negative
	// disables decay).
	DecayEvery int
}

func (c *Config) normalize() {
	if c.BufCap <= 0 {
		c.BufCap = 4096
	}
	c.BufCap = ceilPow2(c.BufCap)
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1024
	}
	c.SampleEvery = ceilPow2(c.SampleEvery)
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.TopK <= 0 {
		c.TopK = 32
	}
	if c.DecayEvery == 0 {
		c.DecayEvery = 8192
	}
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardSketch is one shard's hot-key sketch behind its own mutex.
// Offers happen only on sampled operations, so contention on the mutex
// is negligible at production sampling rates.
type shardSketch struct {
	mu sync.Mutex
	s  sketch
}

// Tracer owns a run's trace state: the epoch of its monotonic clock,
// every worker Buf it handed out, the per-shard hot-key sketches and
// the global hot-node sketch. A nil *Tracer hands out nil (disabled)
// Bufs, so callers can thread one pointer through unconditionally.
type Tracer struct {
	cfg   Config
	epoch time.Time

	mu   sync.Mutex
	bufs []*Buf

	keys  []shardSketch
	nodes shardSketch
}

// New builds a tracer for cfg and starts its clock.
func New(cfg Config) *Tracer {
	cfg.normalize()
	t := &Tracer{cfg: cfg, epoch: time.Now()}
	t.keys = make([]shardSketch, cfg.Shards)
	for i := range t.keys {
		t.keys[i].s.init(cfg.TopK, cfg.DecayEvery)
	}
	t.nodes.s.init(cfg.TopK, cfg.DecayEvery)
	return t
}

// SampleEvery returns the tracer's (normalized) sampling interval.
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return t.cfg.SampleEvery
}

// NewBuf creates and registers one worker's span buffer. shard labels
// the buffer's lock-wait histogram and default key-sketch partition
// (negative = unsharded: a client or connection-reader buffer, folded
// into the merged histogram only); worker labels the Chrome-export
// row. On a nil tracer it returns nil, a valid disabled buffer.
func (t *Tracer) NewBuf(shard, worker int) *Buf {
	if t == nil {
		return nil
	}
	b := &Buf{
		tr:     t,
		epoch:  t.epoch,
		shard:  int16(shard),
		worker: int32(worker),
		mask:   uint64(t.cfg.SampleEvery - 1),
		ring:   make([]Span, t.cfg.BufCap),
	}
	t.mu.Lock()
	t.bufs = append(t.bufs, b)
	t.mu.Unlock()
	return b
}

// Buf is one worker's trace state: the sampling counter (owner
// goroutine only), the span ring, and the lock-wait histogram, the
// latter two behind a mutex so live scrapes are race-clean. All
// methods are safe (no-ops) on a nil *Buf.
type Buf struct {
	tr     *Tracer
	epoch  time.Time
	shard  int16
	worker int32

	// ctr/mask implement 1-in-N sampling. ctr is unsynchronized by
	// design: only the owner goroutine may call Sample.
	ctr  uint64
	mask uint64

	mu   sync.Mutex
	pos  uint64 // spans ever recorded; ring index = pos & (len-1)
	ring []Span
	wait hist.Histogram // KindLockWait durations, ns
}

// Sample draws one sampling decision: true 1 in SampleEvery calls.
// Owner goroutine only. False on a nil (disabled) buffer.
//
//optiql:noalloc
func (b *Buf) Sample() bool {
	if b == nil {
		return false
	}
	b.ctr++
	return b.ctr&b.mask == 0
}

// Now reads the tracer's monotonic clock (ns since the epoch). Call it
// only after Sample said yes — that is what amortizes the clock cost.
// Zero on a nil buffer.
//
//optiql:noalloc
func (b *Buf) Now() int64 {
	if b == nil {
		return 0
	}
	return int64(time.Since(b.epoch))
}

// Record appends one span to the ring, overwriting the oldest if full.
// Mutex-protected: safe against concurrent Record calls and snapshot
// reads (but Sample stays owner-only).
//
//optiql:noalloc
func (b *Buf) Record(k Kind, flags uint8, start, dur int64, id, key uint64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.ring[b.pos&uint64(len(b.ring)-1)] = Span{
		Kind: k, Flags: flags, Shard: b.shard, Worker: b.worker,
		Start: start, Dur: dur, ID: id, Key: key,
	}
	b.pos++
	b.mu.Unlock()
}

// Event records a zero-duration span at the current clock.
//
//optiql:noalloc
func (b *Buf) Event(k Kind, flags uint8, key uint64) {
	if b == nil {
		return
	}
	b.Record(k, flags, b.Now(), 0, 0, key)
}

// LockWait records one exclusive-acquisition wait: the span, the
// buffer's lock-wait histogram bucket and a hot-node offer for the
// lock identity, all per one sampled acquire.
//
//optiql:noalloc
func (b *Buf) LockWait(start, dur int64, flags uint8, lock uint64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.ring[b.pos&uint64(len(b.ring)-1)] = Span{
		Kind: KindLockWait, Flags: flags, Shard: b.shard, Worker: b.worker,
		Start: start, Dur: dur, Key: lock,
	}
	b.pos++
	b.wait.Record(uint64(dur))
	b.mu.Unlock()
	b.NoteNode(lock)
}

// NoteKey offers a key to shard's hot-key sketch (shard < 0 uses the
// buffer's own shard; unsharded buffers fall back to partition 0).
//
//optiql:noalloc
func (b *Buf) NoteKey(shard int, key uint64) {
	if b == nil {
		return
	}
	if shard < 0 {
		shard = int(b.shard)
	}
	if shard < 0 || shard >= len(b.tr.keys) {
		shard = 0
	}
	ss := &b.tr.keys[shard]
	ss.mu.Lock()
	ss.s.offer(key)
	ss.mu.Unlock()
}

// NoteNode offers a lock/node identity to the global hot-node sketch.
//
//optiql:noalloc
func (b *Buf) NoteNode(id uint64) {
	if b == nil {
		return
	}
	ns := &b.tr.nodes
	ns.mu.Lock()
	ns.s.offer(id)
	ns.mu.Unlock()
}

// HotItem is one sketch entry: an approximate count and its maximum
// overestimate (the space-saving error bound).
type HotItem struct {
	Key   uint64
	Count uint64
	Err   uint64
}

// ShardSnap is one shard's merged view.
type ShardSnap struct {
	// Wait merges the lock-wait histograms of this shard's buffers.
	Wait hist.Histogram
	// Keys is the shard's hot-key ranking, hottest first.
	Keys []HotItem
}

// Snapshot is a point-in-time merged view of a tracer. Safe to take
// while workers are still recording.
type Snapshot struct {
	SampleEvery int
	// Recorded counts spans ever recorded; Dropped counts those since
	// overwritten by ring wraparound. Retained = Recorded - Dropped.
	Recorded uint64
	Dropped  uint64
	// Wait merges every buffer's lock-wait histogram (sharded and
	// unsharded alike).
	Wait hist.Histogram
	// Shards holds the per-shard views (buffers with shard < 0
	// contribute to Wait only).
	Shards []ShardSnap
	// Keys is the cross-shard hot-key ranking; Nodes the global
	// hot-node ranking. Hottest first, capped at TopK.
	Keys  []HotItem
	Nodes []HotItem
}

// Snapshot merges every buffer and sketch. Nil-safe (returns nil).
func (t *Tracer) Snapshot() *Snapshot {
	if t == nil {
		return nil
	}
	snap := &Snapshot{SampleEvery: t.cfg.SampleEvery}
	snap.Shards = make([]ShardSnap, t.cfg.Shards)
	t.mu.Lock()
	bufs := t.bufs
	t.mu.Unlock()
	for _, b := range bufs {
		b.mu.Lock()
		snap.Recorded += b.pos
		if b.pos > uint64(len(b.ring)) {
			snap.Dropped += b.pos - uint64(len(b.ring))
		}
		snap.Wait.Merge(&b.wait)
		if s := int(b.shard); s >= 0 && s < len(snap.Shards) {
			snap.Shards[s].Wait.Merge(&b.wait)
		}
		b.mu.Unlock()
	}
	merged := make(map[uint64]HotItem)
	for i := range t.keys {
		ss := &t.keys[i]
		ss.mu.Lock()
		items := ss.s.ranked()
		ss.mu.Unlock()
		snap.Shards[i].Keys = items
		for _, it := range items {
			m := merged[it.Key]
			m.Key = it.Key
			m.Count += it.Count
			m.Err += it.Err
			merged[it.Key] = m
		}
	}
	snap.Keys = rank(merged, t.cfg.TopK)
	t.nodes.mu.Lock()
	snap.Nodes = t.nodes.s.ranked()
	t.nodes.mu.Unlock()
	return snap
}

// Spans returns the retained spans of every buffer, oldest first.
// Nil-safe (returns nil).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	bufs := t.bufs
	t.mu.Unlock()
	var out []Span
	for _, b := range bufs {
		b.mu.Lock()
		n := b.pos
		cap64 := uint64(len(b.ring))
		start := uint64(0)
		if n > cap64 {
			start = n - cap64
		}
		for i := start; i < n; i++ {
			out = append(out, b.ring[i&(cap64-1)])
		}
		b.mu.Unlock()
	}
	sortSpans(out)
	return out
}
