package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"optiql/internal/workload"
)

func TestSamplingRate(t *testing.T) {
	tr := New(Config{SampleEvery: 4})
	b := tr.NewBuf(0, 0)
	hits := 0
	for i := 0; i < 4096; i++ {
		if b.Sample() {
			hits++
		}
	}
	if hits != 1024 {
		t.Fatalf("SampleEvery=4: got %d hits in 4096 draws, want 1024", hits)
	}
	// SampleEvery 1 records every decision.
	b1 := New(Config{SampleEvery: 1}).NewBuf(0, 0)
	for i := 0; i < 100; i++ {
		if !b1.Sample() {
			t.Fatal("SampleEvery=1 must always sample")
		}
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.SampleEvery() != 0 {
		t.Fatal("nil tracer SampleEvery")
	}
	b := tr.NewBuf(0, 0) // nil
	if b != nil {
		t.Fatal("nil tracer must hand out nil bufs")
	}
	if b.Sample() {
		t.Fatal("nil buf sampled true")
	}
	if b.Now() != 0 {
		t.Fatal("nil buf clock moved")
	}
	// All recording paths must be no-ops, not panics.
	b.Record(KindLockWait, 0, 0, 0, 0, 0)
	b.Event(KindOpRestart, 0, 1)
	b.LockWait(0, 10, FlagHandover, 7)
	b.NoteKey(0, 1)
	b.NoteNode(1)
	if s := tr.Snapshot(); s != nil {
		t.Fatal("nil tracer snapshot not nil")
	}
	if sp := tr.Spans(); sp != nil {
		t.Fatal("nil tracer spans not nil")
	}
	if err := tr.WriteChrome(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestRingOverwrite(t *testing.T) {
	tr := New(Config{BufCap: 8, SampleEvery: 1})
	b := tr.NewBuf(0, 0)
	for i := 0; i < 20; i++ {
		b.Record(KindTreeOp, 0, int64(i), 1, 0, uint64(i))
	}
	snap := tr.Snapshot()
	if snap.Recorded != 20 {
		t.Fatalf("Recorded = %d, want 20", snap.Recorded)
	}
	if snap.Dropped != 12 {
		t.Fatalf("Dropped = %d, want 12", snap.Dropped)
	}
	spans := tr.Spans()
	if len(spans) != 8 {
		t.Fatalf("retained %d spans, want 8", len(spans))
	}
	for i, s := range spans {
		if want := uint64(12 + i); s.Key != want {
			t.Fatalf("span %d: key %d, want %d (most recent 8, oldest first)", i, s.Key, want)
		}
	}
}

func TestLockWaitHistogramAndShards(t *testing.T) {
	tr := New(Config{Shards: 2, SampleEvery: 1})
	b0 := tr.NewBuf(0, 0)
	b1 := tr.NewBuf(1, 1)
	rd := tr.NewBuf(-1, 2) // unsharded reader buf
	for i := 0; i < 100; i++ {
		b0.LockWait(0, 1000, 0, 0xA)
		b1.LockWait(0, 2000, FlagHandover, 0xB)
	}
	rd.LockWait(0, 5000, 0, 0xC)
	snap := tr.Snapshot()
	if got := snap.Wait.Count(); got != 201 {
		t.Fatalf("merged wait count = %d, want 201", got)
	}
	if len(snap.Shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(snap.Shards))
	}
	if got := snap.Shards[0].Wait.Count(); got != 100 {
		t.Fatalf("shard 0 wait count = %d, want 100", got)
	}
	if got := snap.Shards[1].Wait.Count(); got != 100 {
		t.Fatalf("shard 1 wait count = %d, want 100", got)
	}
	// Lock identities land in the global hot-node sketch.
	if len(snap.Nodes) == 0 {
		t.Fatal("no hot nodes recorded")
	}
	top := snap.Nodes[0]
	if top.Key != 0xA && top.Key != 0xB {
		t.Fatalf("hot node = %#x, want 0xA or 0xB", top.Key)
	}
}

func TestNoteKeySharding(t *testing.T) {
	tr := New(Config{Shards: 2, SampleEvery: 1, TopK: 4})
	b := tr.NewBuf(1, 0)
	b.NoteKey(0, 10)  // explicit shard
	b.NoteKey(-1, 20) // buf's own shard (1)
	b.NoteKey(99, 30) // out of range clamps to 0
	rd := tr.NewBuf(-1, 1)
	rd.NoteKey(-1, 40) // unsharded buf falls back to shard 0
	snap := tr.Snapshot()
	has := func(items []HotItem, key uint64) bool {
		for _, it := range items {
			if it.Key == key {
				return true
			}
		}
		return false
	}
	if !has(snap.Shards[0].Keys, 10) || !has(snap.Shards[0].Keys, 30) || !has(snap.Shards[0].Keys, 40) {
		t.Fatalf("shard 0 keys wrong: %+v", snap.Shards[0].Keys)
	}
	if !has(snap.Shards[1].Keys, 20) {
		t.Fatalf("shard 1 keys wrong: %+v", snap.Shards[1].Keys)
	}
	if !has(snap.Keys, 10) || !has(snap.Keys, 20) {
		t.Fatalf("merged keys wrong: %+v", snap.Keys)
	}
}

// TestTopKZipfian plants the acceptance-criteria scenario: under a
// theta=0.99 Zipfian stream the sketch must rank the true hottest key
// first, within the space-saving error bound.
func TestTopKZipfian(t *testing.T) {
	tr := New(Config{SampleEvery: 1, TopK: 64, DecayEvery: -1})
	b := tr.NewBuf(0, 0)
	const n = 1024
	const draws = 40000
	z := workload.NewZipfian(n, 0.99)
	rng := workload.NewRNG(42)
	truth := make(map[uint64]uint64)
	for i := 0; i < draws; i++ {
		k := workload.Dense.Key(z.Next(rng))
		truth[k]++
		b.NoteKey(0, k)
	}
	var hotKey, hotCount uint64
	for k, c := range truth {
		if c > hotCount {
			hotKey, hotCount = k, c
		}
	}
	snap := tr.Snapshot()
	if len(snap.Keys) == 0 {
		t.Fatal("empty top-K")
	}
	if snap.Keys[0].Key != hotKey {
		t.Fatalf("top key = %d (count %d), want planted hot key %d (true count %d)",
			snap.Keys[0].Key, snap.Keys[0].Count, hotKey, hotCount)
	}
	// Space-saving overestimates by at most Err.
	got := snap.Keys[0]
	if got.Count < hotCount || got.Count-got.Err > hotCount {
		t.Fatalf("count %d (err %d) outside bound around true %d", got.Count, got.Err, hotCount)
	}
}

func TestSketchDecay(t *testing.T) {
	tr := New(Config{SampleEvery: 1, TopK: 8, DecayEvery: 64})
	b := tr.NewBuf(0, 0)
	// Old regime: key 1 dominates.
	for i := 0; i < 64; i++ {
		b.NoteKey(0, 1)
	}
	// Shifted regime: key 2 dominates from now on.
	for i := 0; i < 512; i++ {
		b.NoteKey(0, 2)
	}
	snap := tr.Snapshot()
	if snap.Keys[0].Key != 2 {
		t.Fatalf("after workload shift, top key = %d, want 2 (decay must let the hot set move)", snap.Keys[0].Key)
	}
}

func TestChromeExport(t *testing.T) {
	tr := New(Config{Shards: 2, SampleEvery: 1})
	b := tr.NewBuf(0, 3)
	b.LockWait(100, 500, FlagHandover, 0xFEED)
	b.Record(KindReqExec, 0, 700, 200, 42, 7)
	rd := tr.NewBuf(-1, 9)
	rd.Event(KindCliRetry, 0, 0)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("chrome export is not valid JSON:\n%s", buf.String())
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var wait, stitched, meta bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			meta = true
		case ev.Name == KindLockWait.Name() && ev.Pid == 1 && ev.Tid == 3:
			wait = true
		case ev.Name == KindReqExec.Name():
			if _, ok := ev.Args["span"]; ok {
				stitched = true
			}
		}
	}
	if !meta || !wait || !stitched {
		t.Fatalf("missing events: meta=%v wait=%v stitched=%v in\n%s", meta, wait, stitched, buf.String())
	}
}

// TestConcurrentSnapshot drives recorders and snapshotters in parallel
// so the CI -race run covers the scrape-while-recording paths.
func TestConcurrentSnapshot(t *testing.T) {
	tr := New(Config{Shards: 4, SampleEvery: 1, BufCap: 64})
	var recorders sync.WaitGroup
	for w := 0; w < 4; w++ {
		recorders.Add(1)
		go func(w int) {
			defer recorders.Done()
			b := tr.NewBuf(w%4, w)
			for i := 0; i < 5000; i++ {
				if b.Sample() {
					t0 := b.Now()
					b.LockWait(t0, b.Now()-t0, 0, uint64(w))
					b.NoteKey(-1, uint64(i%17))
					b.Event(KindOpRestart, 0, uint64(i))
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	scraper := make(chan struct{})
	go func() {
		defer close(scraper)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := tr.Snapshot()
			if snap.Recorded < snap.Dropped {
				t.Error("recorded < dropped")
				return
			}
			_ = tr.Spans()
		}
	}()
	recorders.Wait()
	close(stop)
	<-scraper
	snap := tr.Snapshot()
	if snap.Recorded == 0 {
		t.Fatal("nothing recorded")
	}
	if snap.Wait.Count() == 0 {
		t.Fatal("empty wait histogram")
	}
}

func TestAllocFreeHotPath(t *testing.T) {
	tr := New(Config{SampleEvery: 1, TopK: 16})
	b := tr.NewBuf(0, 0)
	var k uint64
	allocs := testing.AllocsPerRun(2000, func() {
		k++
		if b.Sample() {
			t0 := b.Now()
			b.LockWait(t0, b.Now()-t0, FlagHandover, k&0xFF)
			b.Record(KindTreeOp, 0, t0, 1, 0, k)
			b.NoteKey(0, k&0x3F)
			b.Event(KindOpRestart, 0, k)
		}
	})
	if allocs != 0 {
		t.Fatalf("trace hot path allocates: %v allocs/op", allocs)
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Fatalf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
