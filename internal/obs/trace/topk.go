package trace

import "sort"

// hotItem is one space-saving sketch slot.
type hotItem struct {
	key   uint64
	count uint64
	err   uint64
}

// sketch is a space-saving top-K frequency sketch (Metwally et al.'s
// stream-summary, flattened): at most k tracked items; an untracked
// arrival evicts the current minimum, inheriting its count as the new
// item's overestimation bound. With k slots the count error is bounded
// by N/k over N offers, which is ample for "which keys are hot" — the
// question the contention engine and FB+-tree-style node tuning need
// answered, not exact frequencies.
//
// Counts decay by halving every decayEvery offers so the hot set
// follows workload shift instead of being dominated by history. The
// sketch is not concurrency-safe; callers wrap it in a mutex
// (shardSketch). Offers happen only for sampled operations, so a
// linear scan over k<=64 slots is cheaper than any pointer-chasing
// structure and keeps the hot path allocation-free.
type sketch struct {
	items      []hotItem
	offers     uint64
	decayEvery uint64
}

// init sizes the sketch; decayEvery <= 0 disables decay.
func (s *sketch) init(k int, decayEvery int) {
	s.items = make([]hotItem, 0, k)
	if decayEvery > 0 {
		s.decayEvery = uint64(decayEvery)
	}
}

// offer counts one arrival of key.
//
//optiql:noalloc
func (s *sketch) offer(key uint64) {
	s.offers++
	if s.decayEvery != 0 && s.offers%s.decayEvery == 0 {
		s.decay()
	}
	minAt := -1
	minCount := ^uint64(0)
	for i := range s.items {
		it := &s.items[i]
		if it.key == key {
			it.count++
			return
		}
		if it.count < minCount {
			minAt = i
			minCount = it.count
		}
	}
	if len(s.items) < cap(s.items) {
		s.items = append(s.items, hotItem{key: key, count: 1})
		return
	}
	// Space-saving eviction: the newcomer takes over the minimum slot
	// and inherits its count as the overestimation bound.
	it := &s.items[minAt]
	it.key = key
	it.err = minCount
	it.count = minCount + 1
}

// decay halves every count (and error bound), dropping slots that
// reach zero, in place.
//
//optiql:noalloc
func (s *sketch) decay() {
	w := 0
	for i := range s.items {
		c := s.items[i].count / 2
		if c == 0 {
			continue
		}
		s.items[w] = hotItem{key: s.items[i].key, count: c, err: s.items[i].err / 2}
		w++
	}
	s.items = s.items[:w]
}

// ranked copies the sketch out, hottest first. Cold path (snapshots).
func (s *sketch) ranked() []HotItem {
	if len(s.items) == 0 {
		return nil
	}
	out := make([]HotItem, len(s.items))
	for i, it := range s.items {
		out[i] = HotItem{Key: it.key, Count: it.count, Err: it.err}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// rank sorts a merged key->item map, hottest first, capped at k.
func rank(m map[uint64]HotItem, k int) []HotItem {
	if len(m) == 0 {
		return nil
	}
	out := make([]HotItem, 0, len(m))
	for _, it := range m {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// sortSpans orders spans by start time (stable across buffers).
func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
}
