package trace

// Sketch is an exported, single-owner space-saving top-K sketch for
// consumers outside the tracer — the server's combine policy feeds it
// sampled hot-key offers and polls it for the top key's share. It is
// NOT safe for concurrent use: exactly one goroutine may call its
// methods (the tracer's own sketches are wrapped in mutexes instead;
// this one stays lock-free because the policy runs entirely on the
// shard's executor goroutine).
type Sketch struct {
	s sketch
}

// NewSketch returns a sketch tracking up to k items, halving counts
// every decayEvery offers (<= 0 disables decay).
func NewSketch(k, decayEvery int) *Sketch {
	sk := &Sketch{}
	sk.s.init(k, decayEvery)
	return sk
}

// Offer counts one arrival of key.
//
//optiql:noalloc
func (s *Sketch) Offer(key uint64) { s.s.offer(key) }

// Top returns the hottest tracked item and the sum of all tracked
// counts, allocation-free. Every offer lands in some slot (space-saving
// evictions inherit the evicted count), so the total approximates the
// decayed offer volume and top.Count/total estimates the hottest key's
// traffic share.
//
//optiql:noalloc
func (s *Sketch) Top() (top HotItem, total uint64) {
	for i := range s.s.items {
		it := &s.s.items[i]
		total += it.count
		if it.count > top.Count || (it.count == top.Count && it.key < top.Key) {
			top = HotItem{Key: it.key, Count: it.count, Err: it.err}
		}
	}
	return top, total
}

// HotKeys appends to dst (never beyond its capacity, so callers passing
// a fixed-size scratch stay allocation-free) the tracked keys whose
// share of the total tracked count is at least minShare, and returns
// the extended slice.
//
//optiql:noalloc
func (s *Sketch) HotKeys(dst []uint64, minShare float64) []uint64 {
	var total uint64
	for i := range s.s.items {
		total += s.s.items[i].count
	}
	if total == 0 {
		return dst
	}
	floor := uint64(minShare * float64(total))
	for i := range s.s.items {
		if len(dst) == cap(dst) {
			break
		}
		if s.s.items[i].count >= floor {
			dst = append(dst, s.s.items[i].key)
		}
	}
	return dst
}

// Ranked copies the tracked items out, hottest first (cold path).
func (s *Sketch) Ranked() []HotItem { return s.s.ranked() }
