package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

func TestEventNamesUniqueAndStable(t *testing.T) {
	seen := map[string]Event{}
	for e := Event(0); e < NumEvents; e++ {
		name := e.Name()
		if name == "" || name == "unknown" {
			t.Fatalf("event %d has no name", e)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("events %d and %d share name %q", prev, e, name)
		}
		// Prometheus label values are free-form, but keep them
		// snake_case identifiers so downstream queries stay simple.
		for _, r := range name {
			if !(r == '_' || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')) {
				t.Fatalf("event name %q is not snake_case", name)
			}
		}
		seen[name] = e
	}
	if Event(200).Name() != "unknown" {
		t.Fatal("out-of-range event should name as unknown")
	}
	if got := EventNames(); len(got) != int(NumEvents) || got[0] != EvShAcquireFail.Name() {
		t.Fatalf("EventNames() = %v", got)
	}
}

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.Inc(EvOpRestart) // must not panic
	c.Add(EvOpRestart, 7)
	if c.Load(EvOpRestart) != 0 {
		t.Fatal("nil counters loaded non-zero")
	}
	var r *Registry
	if r.NewCounters() != nil {
		t.Fatal("nil registry handed out a live counter set")
	}
	if s := r.Snapshot(); s.Total() != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestCountersPadding(t *testing.T) {
	// Each worker's set must occupy a whole number of cache lines so
	// adjacent sets never false-share.
	if sz := unsafe.Sizeof(Counters{}); sz%cacheLine != 0 {
		t.Fatalf("Counters size %d not a cache-line multiple", sz)
	}
}

func TestRegistrySnapshotMerges(t *testing.T) {
	r := NewRegistry()
	a, b := r.NewCounters(), r.NewCounters()
	a.Inc(EvOpRestart)
	a.Add(EvOpRestart, 2)
	b.Inc(EvBTreeSplit)
	b.Add(EvExHandover, 5)
	s := r.Snapshot()
	if got := s.Get(EvOpRestart); got != 3 {
		t.Fatalf("op_restart = %d, want 3", got)
	}
	if got := s.Get(EvBTreeSplit); got != 1 {
		t.Fatalf("btree_split = %d, want 1", got)
	}
	if got := s.Get(EvExHandover); got != 5 {
		t.Fatalf("ex_acquire_handover = %d, want 5", got)
	}
	if s.Total() != 9 {
		t.Fatalf("total = %d, want 9", s.Total())
	}
	m := s.Map()
	if len(m) != int(NumEvents) {
		t.Fatalf("map has %d keys, want %d (zero counts must appear)", len(m), NumEvents)
	}
	if m["op_restart"] != 3 {
		t.Fatalf("map[op_restart] = %d", m["op_restart"])
	}
	var merged Snapshot
	merged.Merge(s)
	merged.Merge(s)
	if merged.Total() != 18 {
		t.Fatalf("merged total = %d, want 18", merged.Total())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.NewCounters()
			for i := 0; i < per; i++ {
				c.Inc(EvShValidateFail)
			}
		}()
	}
	// Concurrent snapshots must be safe and monotonic.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last uint64
		for i := 0; i < 100; i++ {
			n := r.Snapshot().Get(EvShValidateFail)
			if n < last {
				t.Errorf("snapshot went backwards: %d -> %d", last, n)
				return
			}
			last = n
		}
	}()
	wg.Wait()
	<-done
	if got := r.Snapshot().Get(EvShValidateFail); got != workers*per {
		t.Fatalf("final count %d, want %d", got, workers*per)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := Report{
		Tool:           "indexbench",
		Host:           CurrentHost(),
		ElapsedSeconds: 1.5,
		Ops:            3_000_000,
		Mops:           2.0,
		Counters:       Snapshot{}.Map(),
		Timeline: &TimelineReport{
			IntervalSeconds: 0.1,
			OpsPerInterval:  []uint64{100, 120, 90},
			MopsMin:         0.9, MopsAvg: 1.03, MopsStddev: 0.12,
		},
		Latency: &LatencyReport{
			Count: 10, MinNs: 100, MaxNs: 900, MeanNs: 300,
			Percentiles: map[string]uint64{"50%": 250},
			Buckets:     []BucketReport{{UpperNs: 255, Count: 10}},
		},
		Extra: map[string]any{"expansions": 3},
	}
	var sb strings.Builder
	if err := rep.Encode(&sb); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Tool != rep.Tool || back.Ops != rep.Ops || back.Mops != rep.Mops {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if back.Timeline == nil || len(back.Timeline.OpsPerInterval) != 3 {
		t.Fatalf("timeline lost: %+v", back.Timeline)
	}
	if back.Latency == nil || back.Latency.Percentiles["50%"] != 250 {
		t.Fatalf("latency lost: %+v", back.Latency)
	}
	if len(back.Counters) != int(NumEvents) {
		t.Fatalf("counters lost: %d keys", len(back.Counters))
	}
}
