// Package obs is the observability layer of the reproduction: typed
// lock/index event counters, run snapshots, machine-readable JSON run
// reports and a live HTTP endpoint (pprof, expvar, Prometheus-text
// /metrics).
//
// The design follows the constraint of Section 4 of the paper — the
// lock itself stays one 8-byte word and its acquire/release word
// operations stay untouched — so all accounting happens one layer up:
// the lock adapters in internal/locks and the index substrates bump
// per-worker counters hanging off the worker's locks.Ctx. Counters are
// allocation-free on the hot path and cache-line padded per worker, so
// they are cheap enough to leave enabled in production runs (the A/B
// benchmark in bench_test.go documents the overhead; see DESIGN.md).
//
// Each worker owns one *Counters obtained from a run's Registry; the
// Registry merges all of them into an immutable Snapshot at run end, or
// on demand while the run is live (the /metrics handler does exactly
// that).
package obs

import (
	"sync"
	"sync/atomic"
)

// Event enumerates the counted lock and index events. The taxonomy
// mirrors the paper's discussion: optimistic-read admission and
// validation (Section 4.2), exclusive acquisition by free-word CAS vs.
// queue handover (Algorithm 3), upgrades and contention expansion
// (Section 6.2), and B+-tree structure modifications (Section 6.1).
type Event uint8

const (
	// EvShAcquireFail counts optimistic shared acquires rejected up
	// front: the lock was held with no opportunistic window open.
	EvShAcquireFail Event = iota
	// EvShValidateFail counts optimistic reads whose validation failed
	// at release: a writer was granted the lock after the snapshot.
	EvShValidateFail
	// EvShOpportunistic counts shared acquires admitted through an open
	// opportunistic read window (lock held, both status bits set) —
	// reads that only the OptiQL OR/AOR protocol can admit.
	EvShOpportunistic
	// EvOpRestart counts index operations restarting from the top after
	// a failed validation or structural recheck.
	EvOpRestart
	// EvExFree counts exclusive acquisitions that took a free lock
	// directly (CAS/swap observed the lock unlocked).
	EvExFree
	// EvExHandover counts exclusive acquisitions granted by queue
	// handover after local spinning (queue-based locks only).
	EvExHandover
	// EvUpgradeOK counts successful shared-to-exclusive upgrades.
	EvUpgradeOK
	// EvUpgradeFail counts failed upgrade attempts (stale snapshot or
	// lock already held); the caller restarts.
	EvUpgradeFail
	// EvBTreeSplit counts B+-tree node splits (leaf and inner).
	EvBTreeSplit
	// EvBTreeMerge counts B+-tree node merges during delete rebalancing.
	EvBTreeMerge
	// EvARTExpand counts ART contention expansions (Section 6.2).
	EvARTExpand

	// The events below extend the taxonomy from the lock to the system
	// around it: the fault-injection layer (internal/faults), the
	// hardened server (internal/server) and the reconnecting client
	// (internal/server/wire). TXSQL-style robustness — admission
	// control, shedding, bounded retries — is accounted in the same
	// registry so one -json report shows the lock and the network layer
	// degrading (or not) together.

	// EvFaultLatency counts injected send/receive delays.
	EvFaultLatency
	// EvFaultStall counts injected read stalls (slow-loris peer).
	EvFaultStall
	// EvFaultShortWrite counts injected short writes (the connection is
	// broken mid-frame).
	EvFaultShortWrite
	// EvFaultFragment counts writes split into delayed fragments
	// (exercises frame reassembly on the peer).
	EvFaultFragment
	// EvFaultReset counts injected hard connection resets.
	EvFaultReset
	// EvFaultCorrupt counts injected single-bit payload corruptions.
	EvFaultCorrupt
	// EvFaultAcceptFail counts injected listener accept failures.
	EvFaultAcceptFail
	// EvSrvPanic counts handler panics recovered by the server (the
	// request is answered with StatusErr; the process survives).
	EvSrvPanic
	// EvSrvShed counts writes shed with StatusOverloaded because the
	// shard's in-flight budget was exhausted.
	EvSrvShed
	// EvSrvReap counts connections reaped by the server's read deadline
	// (idle or slow-loris peers).
	EvSrvReap
	// EvCliRetry counts requests a ReconnClient retried after a
	// retryable failure or an overload answer.
	EvCliRetry
	// EvCliReconnect counts connections a ReconnClient re-established.
	EvCliReconnect
	// EvCliOverloaded counts StatusOverloaded answers a ReconnClient
	// observed (each backed off before retrying).
	EvCliOverloaded

	// The contention-engine events below account for the reaction half
	// of the hot-key machinery (PR 7): batched lock grants in the queue
	// layer and flat-combined applies in the server executor.

	// EvBatchGrant counts queue releases that granted two or more
	// compatible shared waiters in a single handover (release-to-many).
	EvBatchGrant
	// EvGrantFanout sums the fanout of those batch grants: waiters woken
	// by releases counted in EvBatchGrant. Mean group size is
	// EvGrantFanout / EvBatchGrant.
	EvGrantFanout
	// EvCombinedOps counts queued write operations answered by a
	// flat-combined apply: ops that were coalesced with other same-key
	// ops so one tree descent served the whole run.
	EvCombinedOps
	// EvCombineDepth counts combined tree descents (one per coalesced
	// same-key run). Mean run length is EvCombinedOps / EvCombineDepth.
	EvCombineDepth

	// The durability events below account for the write-ahead log
	// (internal/wal): the append/group-commit pipeline, recovery replay
	// and the checkpoint/reclaim machinery.

	// EvWalAppendRec counts record batches appended to a WAL.
	EvWalAppendRec
	// EvWalAppendOps counts individual operations appended to a WAL
	// (each record carries one executor batch's worth).
	EvWalAppendOps
	// EvWalSync counts fsyncs issued by the group-commit machinery
	// (ticks, always-policy batches and segment seals alike).
	EvWalSync
	// EvWalRotate counts segment rotations (the old segment is sealed —
	// flushed, fsynced, closed — and a fresh one opened).
	EvWalRotate
	// EvWalReplayRec counts records replayed into the index at startup.
	EvWalReplayRec
	// EvWalReplayOps counts individual operations replayed at startup
	// (checkpoint pairs included).
	EvWalReplayOps
	// EvWalTornTail counts torn-tail truncations: a partial or
	// checksum-failing record at the very end of the log, discarded as
	// an un-fsynced crash remnant.
	EvWalTornTail
	// EvWalCheckpoint counts checkpoint snapshots written.
	EvWalCheckpoint
	// EvWalSegReclaim counts sealed segments deleted because a
	// checkpoint made them redundant.
	EvWalSegReclaim
	// EvWalLagShed counts writes shed with StatusOverloaded because the
	// shard's fsync queue was lagging past its budget.
	EvWalLagShed

	// NumEvents is the number of counter slots; it is NOT an event.
	NumEvents
)

// eventNames are the stable identifiers used in JSON reports and as the
// Prometheus "event" label; snake_case, unique, never renumbered.
var eventNames = [NumEvents]string{
	EvShAcquireFail:   "sh_acquire_fail",
	EvShValidateFail:  "sh_validate_fail",
	EvShOpportunistic: "sh_opportunistic_admit",
	EvOpRestart:       "op_restart",
	EvExFree:          "ex_acquire_free",
	EvExHandover:      "ex_acquire_handover",
	EvUpgradeOK:       "upgrade_ok",
	EvUpgradeFail:     "upgrade_fail",
	EvBTreeSplit:      "btree_split",
	EvBTreeMerge:      "btree_merge",
	EvARTExpand:       "art_expansion",
	EvFaultLatency:    "fault_latency",
	EvFaultStall:      "fault_stall",
	EvFaultShortWrite: "fault_short_write",
	EvFaultFragment:   "fault_fragment",
	EvFaultReset:      "fault_reset",
	EvFaultCorrupt:    "fault_corrupt",
	EvFaultAcceptFail: "fault_accept_fail",
	EvSrvPanic:        "srv_panic_recovered",
	EvSrvShed:         "srv_overload_shed",
	EvSrvReap:         "srv_conn_reaped",
	EvCliRetry:        "cli_retry",
	EvCliReconnect:    "cli_reconnect",
	EvCliOverloaded:   "cli_overloaded",
	EvBatchGrant:      "batch_grant",
	EvGrantFanout:     "grant_fanout",
	EvCombinedOps:     "combined_ops",
	EvCombineDepth:    "combine_depth",
	EvWalAppendRec:    "wal_append_record",
	EvWalAppendOps:    "wal_append_ops",
	EvWalSync:         "wal_fsync",
	EvWalRotate:       "wal_segment_rotate",
	EvWalReplayRec:    "wal_replay_record",
	EvWalReplayOps:    "wal_replay_ops",
	EvWalTornTail:     "wal_torn_tail_truncate",
	EvWalCheckpoint:   "wal_checkpoint",
	EvWalSegReclaim:   "wal_segment_reclaimed",
	EvWalLagShed:      "wal_lag_shed",
}

// Name returns the event's stable snake_case identifier.
func (e Event) Name() string {
	if e >= NumEvents {
		return "unknown"
	}
	return eventNames[e]
}

// EventNames returns the identifiers of all events in declaration
// order (the order Snapshot.Counts uses).
func EventNames() []string {
	out := make([]string, NumEvents)
	copy(out, eventNames[:])
	return out
}

// cacheLine is the assumed cache-line size for padding.
const cacheLine = 64

// countersSize rounds the counter array up to a whole number of cache
// lines so adjacent workers' sets never share a line.
const countersSize = (int(NumEvents)*8 + cacheLine - 1) / cacheLine * cacheLine

// Counters is one worker's event counter set. The zero value is ready
// to use; a nil *Counters is a valid "disabled" set whose methods do
// nothing, so call sites need no enabled/disabled branches of their
// own. Increment via atomics: each worker owns its set exclusively, so
// the adds are uncontended single-cacheline operations, while the live
// /metrics handler can read a consistent value concurrently.
//
//optiql:cacheline
type Counters struct {
	// The pad sits first: a zero-length trailing array would itself be
	// padded (Go sizes structs so a past-the-end pointer to a final
	// zero-size field stays in bounds), breaking the exact-multiple
	// sizing when the counter array already fills whole lines.
	_ [countersSize - int(NumEvents)*8]byte
	c [NumEvents]atomic.Uint64
}

// Inc adds one to the event's counter. Safe (and a no-op) on nil.
//
//optiql:noalloc
func (c *Counters) Inc(e Event) {
	if c != nil {
		c.c[e].Add(1)
	}
}

// Add adds n to the event's counter. Safe (and a no-op) on nil.
//
//optiql:noalloc
func (c *Counters) Add(e Event, n uint64) {
	if c != nil && n != 0 {
		c.c[e].Add(n)
	}
}

// Load returns the event's current count (0 on nil).
//
//optiql:noalloc
func (c *Counters) Load(e Event) uint64 {
	if c == nil {
		return 0
	}
	return c.c[e].Load()
}

// Snapshot is an immutable merged view of one or more counter sets.
type Snapshot struct {
	Counts [NumEvents]uint64
}

// Get returns the merged count for e.
func (s Snapshot) Get(e Event) uint64 {
	if e >= NumEvents {
		return 0
	}
	return s.Counts[e]
}

// Total returns the sum over all events.
func (s Snapshot) Total() uint64 {
	var t uint64
	for _, n := range s.Counts {
		t += n
	}
	return t
}

// Map returns the snapshot keyed by event name (all events, including
// zero counts, so report columns stay stable across runs).
func (s Snapshot) Map() map[string]uint64 {
	m := make(map[string]uint64, NumEvents)
	for e := Event(0); e < NumEvents; e++ {
		m[e.Name()] = s.Counts[e]
	}
	return m
}

// add folds one worker's live counters into the snapshot.
func (s *Snapshot) add(c *Counters) {
	if c == nil {
		return
	}
	for e := Event(0); e < NumEvents; e++ {
		s.Counts[e] += c.c[e].Load()
	}
}

// Merge folds another snapshot into s.
func (s *Snapshot) Merge(other Snapshot) {
	for e := Event(0); e < NumEvents; e++ {
		s.Counts[e] += other.Counts[e]
	}
}

// Registry hands out per-worker counter sets and merges them. It is
// safe for concurrent use; a nil *Registry hands out nil (disabled)
// counter sets and empty snapshots, so callers can thread one pointer
// through unconditionally.
type Registry struct {
	mu   sync.Mutex
	sets []*Counters
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// NewCounters allocates, registers and returns a fresh counter set for
// one worker. On a nil registry it returns nil (a disabled set).
func (r *Registry) NewCounters() *Counters {
	if r == nil {
		return nil
	}
	c := new(Counters)
	r.mu.Lock()
	r.sets = append(r.sets, c)
	r.mu.Unlock()
	return c
}

// Snapshot merges every registered set. It may run concurrently with
// workers still counting; each cell is read atomically, so the result
// is a consistent monotonic sample (exact once workers have stopped).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	sets := r.sets
	r.mu.Unlock()
	for _, c := range sets {
		s.add(c)
	}
	return s
}
