package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounters()
	c.Add(EvShValidateFail, 42)
	c.Inc(EvExHandover)

	var ops uint64 = 12345
	src := &LiveSource{}
	src.Set(reg.Snapshot, func() uint64 { return ops })

	srv := httptest.NewServer(NewMux(src))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`optiql_lock_events_total{event="sh_validate_fail"} 42`,
		`optiql_lock_events_total{event="ex_acquire_handover"} 1`,
		`optiql_lock_events_total{event="op_restart"} 0`,
		"optiql_ops_total 12345",
		"# TYPE optiql_lock_events_total counter",
		"# TYPE optiql_throughput_mops gauge",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	// Counters keep accumulating between scrapes.
	c.Add(EvShValidateFail, 8)
	ops += 1000
	_, body = get(t, srv, "/metrics")
	if !strings.Contains(body, `optiql_lock_events_total{event="sh_validate_fail"} 50`) {
		t.Fatalf("second scrape did not see new counts:\n%s", body)
	}
}

func TestDebugEndpoints(t *testing.T) {
	src := &LiveSource{}
	srv := httptest.NewServer(NewMux(src))
	defer srv.Close()

	code, body := get(t, srv, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	if !strings.Contains(body, "optiql_counters") {
		t.Fatalf("/debug/vars missing optiql_counters:\n%s", body)
	}
	code, _ = get(t, srv, "/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestServeAndShutdown(t *testing.T) {
	src := &LiveSource{}
	httpSrv, addr, err := Serve("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := httpSrv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLiveSourceZeroValue(t *testing.T) {
	// A LiveSource that was never Set must serve zeros, not panic.
	src := &LiveSource{}
	snap, ops, mops, _ := src.sample()
	if snap.Total() != 0 || ops != 0 || mops != 0 {
		t.Fatalf("zero-value source returned %v %d %f", snap, ops, mops)
	}
}
