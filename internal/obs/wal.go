package obs

// WALReport is the durability section of a run report and the payload
// of the live /debug/wal endpoint: merged write-ahead-log counters
// across shards, the per-shard sequence watermarks and the fsync
// latency distribution. Built by the server from its shard logs (see
// internal/server and internal/wal); nil when the server runs without
// a WAL.
type WALReport struct {
	// Enabled distinguishes "no WAL configured" (the endpoint then
	// serves {"enabled":false}) from a WAL with all-zero counters.
	Enabled bool `json:"enabled"`
	// Policy is the configured fsync policy: always, interval or off.
	Policy string `json:"policy"`
	// Dir is the log directory root.
	Dir string `json:"dir,omitempty"`

	// AppendedRecords / AppendedOps / AppendedBytes count the append
	// stream since startup (one record per executor batch).
	AppendedRecords uint64 `json:"appended_records"`
	AppendedOps     uint64 `json:"appended_ops"`
	AppendedBytes   uint64 `json:"appended_bytes"`
	// Syncs counts fsyncs (group-commit ticks, always-policy batches
	// and segment seals).
	Syncs uint64 `json:"syncs"`
	// Rotations counts segment rotations; Checkpoints counts snapshot
	// files written; SegmentsReclaimed counts sealed segments deleted
	// because a checkpoint covered them.
	Rotations         uint64 `json:"rotations"`
	Checkpoints       uint64 `json:"checkpoints"`
	SegmentsReclaimed uint64 `json:"segments_reclaimed"`
	// LagSheds counts writes shed with StatusOverloaded because the
	// fsync queue was over budget.
	LagSheds uint64 `json:"lag_sheds"`

	// ReplayedRecords / ReplayedOps count startup recovery work
	// (checkpoint pairs are included in ReplayedOps); TornTruncations
	// counts torn tails discarded; CheckpointPairs is the number of
	// pairs loaded from checkpoint snapshots.
	ReplayedRecords uint64 `json:"replayed_records"`
	ReplayedOps     uint64 `json:"replayed_ops"`
	TornTruncations uint64 `json:"torn_truncations"`
	CheckpointPairs uint64 `json:"checkpoint_pairs"`

	// DurableSeq / AppliedSeq / PendingOps are the per-shard live
	// watermarks: the last fsynced batch sequence, the last
	// index-applied sequence, and ops appended but not yet
	// acknowledged.
	DurableSeq []uint64 `json:"durable_seq"`
	AppliedSeq []uint64 `json:"applied_seq"`
	PendingOps []int64  `json:"pending_ops"`

	// FsyncLatency is the merged fsync duration distribution.
	FsyncLatency *LatencyReport `json:"fsync_latency,omitempty"`
}
