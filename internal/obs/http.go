package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LiveSource is the bridge between a running benchmark and the HTTP
// endpoint: the driver publishes getter functions when the measured
// phase starts, and the handlers sample them on every scrape. The zero
// value serves zeros until Set is called; all methods are safe for
// concurrent use.
type LiveSource struct {
	mu       sync.Mutex
	snapshot func() Snapshot
	ops      func() uint64
	// contention builds the /debug/contention report from the run's
	// tracer; nil (or a nil return) means tracing is off.
	contention func() *ContentionReport
	// wal builds the /debug/wal report from the server's shard logs;
	// nil (or a nil return) means the run has no write-ahead log.
	wal     func() *WALReport
	started time.Time
	// last scrape state, for the instantaneous-throughput gauge.
	lastOps  uint64
	lastTime time.Time
}

// Set publishes the live getters: snapshot merges the run's counter
// registry and ops returns cumulative completed operations. Either may
// be nil (the corresponding metric serves zero).
func (s *LiveSource) Set(snapshot func() Snapshot, ops func() uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapshot = snapshot
	s.ops = ops
	s.started = time.Now()
	s.lastOps = 0
	s.lastTime = s.started
}

// SetContention publishes the contention-report getter backing
// /debug/contention. Independent of Set so a driver can publish either
// without the other; nil unpublishes.
func (s *LiveSource) SetContention(fn func() *ContentionReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.contention = fn
}

// SetWAL publishes the durability-report getter backing /debug/wal.
// Independent of Set; nil unpublishes.
func (s *LiveSource) SetWAL(fn func() *WALReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal = fn
}

// walHandler serves the write-ahead log's live view as indented JSON;
// {"enabled":false} when the run has no WAL.
func (s *LiveSource) walHandler(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	fn := s.wal
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	var rep *WALReport
	if fn != nil {
		rep = fn()
	}
	if rep == nil {
		fmt.Fprintln(w, `{"enabled":false}`)
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}

// contentionHandler serves the contention profiler's live view as
// indented JSON; {"enabled":false} when no tracer is attached.
func (s *LiveSource) contentionHandler(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	fn := s.contention
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	var rep *ContentionReport
	if fn != nil {
		rep = fn()
	}
	if rep == nil {
		fmt.Fprintln(w, `{"enabled":false}`)
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}

// sample reads the current snapshot, cumulative ops and the
// instantaneous throughput (Mops) since the previous sample.
func (s *LiveSource) sample() (snap Snapshot, ops uint64, mops float64, uptime time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	if s.snapshot != nil {
		snap = s.snapshot()
	}
	if s.ops != nil {
		ops = s.ops()
	}
	if !s.started.IsZero() {
		uptime = now.Sub(s.started)
		if dt := now.Sub(s.lastTime).Seconds(); dt > 0 && ops >= s.lastOps {
			mops = float64(ops-s.lastOps) / dt / 1e6
		}
	}
	s.lastOps = ops
	s.lastTime = now
	return snap, ops, mops, uptime
}

// metricsHandler renders the Prometheus text exposition format
// (version 0.0.4): one counter family for lock/index events, plus
// cumulative ops, an instantaneous throughput gauge and uptime.
func (s *LiveSource) metricsHandler(w http.ResponseWriter, _ *http.Request) {
	snap, ops, mops, uptime := s.sample()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP optiql_lock_events_total Lock and index events by type.\n")
	fmt.Fprintf(w, "# TYPE optiql_lock_events_total counter\n")
	for e := Event(0); e < NumEvents; e++ {
		fmt.Fprintf(w, "optiql_lock_events_total{event=%q} %d\n", e.Name(), snap.Counts[e])
	}
	fmt.Fprintf(w, "# HELP optiql_ops_total Completed index/lock operations.\n")
	fmt.Fprintf(w, "# TYPE optiql_ops_total counter\n")
	fmt.Fprintf(w, "optiql_ops_total %d\n", ops)
	fmt.Fprintf(w, "# HELP optiql_throughput_mops Throughput since the previous scrape, in Mops.\n")
	fmt.Fprintf(w, "# TYPE optiql_throughput_mops gauge\n")
	fmt.Fprintf(w, "optiql_throughput_mops %g\n", mops)
	fmt.Fprintf(w, "# HELP optiql_uptime_seconds Seconds since the live source was published.\n")
	fmt.Fprintf(w, "# TYPE optiql_uptime_seconds gauge\n")
	fmt.Fprintf(w, "optiql_uptime_seconds %g\n", uptime.Seconds())
}

// expvarPublish guards the process-global expvar name against double
// publication (expvar.Publish panics on duplicates); expvarSrc is the
// source the published Func reads, so the latest NewMux call wins.
var (
	expvarPublish sync.Once
	expvarSrc     atomic.Pointer[LiveSource]
)

// NewMux builds the observability mux: Prometheus-text /metrics,
// expvar under /debug/vars and the full pprof suite under
// /debug/pprof/. It also publishes the counter snapshot as the expvar
// "optiql_counters" (once per process; the latest mux's source wins).
func NewMux(src *LiveSource) *http.ServeMux {
	expvarSrc.Store(src)
	expvarPublish.Do(func() {
		expvar.Publish("optiql_counters", expvar.Func(func() any {
			cur := expvarSrc.Load()
			if cur == nil {
				return map[string]uint64{}
			}
			snap, ops, _, _ := cur.sample()
			m := snap.Map()
			out := make(map[string]uint64, len(m)+1)
			// Deterministic key set: all events plus ops.
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				out[k] = m[k]
			}
			out["ops"] = ops
			return out
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", src.metricsHandler)
	mux.HandleFunc("/debug/contention", src.contentionHandler)
	mux.HandleFunc("/debug/wal", src.walHandler)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability endpoint on addr (e.g. ":6060") in a
// background goroutine and returns the server and its bound address
// (useful with ":0"). Shut it down with srv.Close / srv.Shutdown.
func Serve(addr string, src *LiveSource) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: NewMux(src)}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}
