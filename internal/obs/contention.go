package obs

import (
	"optiql/internal/hist"
	"optiql/internal/obs/trace"
)

// HotKeyReport is one hot-key (or hot-node) ranking entry from the
// space-saving sketch: an approximate count plus its maximum
// overestimate, so consumers can judge whether a rank is trustworthy
// (Count - Err is a guaranteed lower bound on the true frequency).
type HotKeyReport struct {
	Key   uint64 `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"overestimate,omitempty"`
}

// ShardContention is one shard's contention view.
type ShardContention struct {
	Shard int `json:"shard"`
	// LockWait is the shard's exclusive-acquisition wait distribution
	// (sampled, nanoseconds).
	LockWait *LatencyReport `json:"lock_wait,omitempty"`
	// HotKeys ranks the shard's hottest keys from sampled operations.
	HotKeys []HotKeyReport `json:"hot_keys,omitempty"`
	// QueueDepth is the shard executor's queued-write gauge at scrape
	// time.
	QueueDepth int64 `json:"queue_depth"`
}

// ContentionReport is the JSON shape of /debug/contention and of the
// LockWait/HotKeys/QueueDepth sections in run reports: where lock time
// goes and which keys/nodes it goes to, from the sampled trace layer.
type ContentionReport struct {
	// SampleEvery is the sampling interval: every count below
	// represents roughly SampleEvery occurrences.
	SampleEvery int `json:"sample_every"`
	// Spans counts trace spans ever recorded; Dropped counts those
	// since overwritten by ring wraparound (histograms and sketches
	// are not affected by overwrite — they fold in every sample).
	Spans   uint64 `json:"spans_recorded"`
	Dropped uint64 `json:"spans_dropped,omitempty"`
	// LockWait merges every worker's exclusive-wait distribution.
	LockWait *LatencyReport `json:"lock_wait,omitempty"`
	// HotKeys ranks keys across all shards; HotNodes ranks lock/node
	// identities (opaque but stable within a run — equal values are
	// the same tree node).
	HotKeys  []HotKeyReport `json:"hot_keys,omitempty"`
	HotNodes []HotKeyReport `json:"hot_nodes,omitempty"`
	// QueueDepth is the per-shard executor queue gauge.
	QueueDepth []int64 `json:"queue_depth,omitempty"`
	// Shards breaks the above down per shard (omitted for single-shard
	// tracers, where it would repeat the top level).
	Shards []ShardContention `json:"shards,omitempty"`
}

// LatencyReportFrom converts a histogram into the report schema (nil
// for empty histograms). Shared by the bench result reports, cmd/latency
// and the contention layer so every tool emits one latency shape.
func LatencyReportFrom(h *hist.Histogram) *LatencyReport {
	if h == nil || h.Count() == 0 {
		return nil
	}
	pcts := make(map[string]uint64, len(hist.StandardPercentiles))
	snap := h.Snapshot()
	for i, label := range hist.PercentileLabels {
		pcts[label] = snap[i]
	}
	var buckets []BucketReport
	for _, b := range h.Buckets() {
		buckets = append(buckets, BucketReport{UpperNs: b.Upper, Count: b.Count})
	}
	return &LatencyReport{
		Count:       h.Count(),
		MinNs:       h.Min(),
		MaxNs:       h.Max(),
		MeanNs:      h.Mean(),
		Percentiles: pcts,
		Buckets:     buckets,
	}
}

func hotKeyReports(items []trace.HotItem) []HotKeyReport {
	if len(items) == 0 {
		return nil
	}
	out := make([]HotKeyReport, len(items))
	for i, it := range items {
		out[i] = HotKeyReport{Key: it.Key, Count: it.Count, Err: it.Err}
	}
	return out
}

// ContentionFrom snapshots a tracer into the report shape. depths,
// when non-nil, is the per-shard queue-depth gauge sampled by the
// caller (the tracer does not know about executor queues). Nil tracer
// means tracing is off: the report is nil.
func ContentionFrom(t *trace.Tracer, depths []int64) *ContentionReport {
	if t == nil {
		return nil
	}
	s := t.Snapshot()
	rep := &ContentionReport{
		SampleEvery: s.SampleEvery,
		Spans:       s.Recorded,
		Dropped:     s.Dropped,
		LockWait:    LatencyReportFrom(&s.Wait),
		HotKeys:     hotKeyReports(s.Keys),
		HotNodes:    hotKeyReports(s.Nodes),
		QueueDepth:  depths,
	}
	if len(s.Shards) > 1 {
		for i := range s.Shards {
			sc := ShardContention{
				Shard:    i,
				LockWait: LatencyReportFrom(&s.Shards[i].Wait),
				HotKeys:  hotKeyReports(s.Shards[i].Keys),
			}
			if i < len(depths) {
				sc.QueueDepth = depths[i]
			}
			rep.Shards = append(rep.Shards, sc)
		}
	}
	return rep
}

// AttachContention fills the report's contention sections from cr
// (no-op when cr is nil, i.e. tracing was off).
func (r *Report) AttachContention(cr *ContentionReport) {
	if cr == nil {
		return
	}
	r.LockWait = cr.LockWait
	r.HotKeys = cr.HotKeys
	r.HotNodes = cr.HotNodes
	r.QueueDepth = cr.QueueDepth
}
