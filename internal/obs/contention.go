package obs

import (
	"sync/atomic"

	"optiql/internal/hist"
	"optiql/internal/obs/trace"
)

// HotKeyReport is one hot-key (or hot-node) ranking entry from the
// space-saving sketch: an approximate count plus its maximum
// overestimate, so consumers can judge whether a rank is trustworthy
// (Count - Err is a guaranteed lower bound on the true frequency).
type HotKeyReport struct {
	Key   uint64 `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"overestimate,omitempty"`
}

// ShardContention is one shard's contention view.
type ShardContention struct {
	Shard int `json:"shard"`
	// LockWait is the shard's exclusive-acquisition wait distribution
	// (sampled, nanoseconds).
	LockWait *LatencyReport `json:"lock_wait,omitempty"`
	// HotKeys ranks the shard's hottest keys from sampled operations.
	HotKeys []HotKeyReport `json:"hot_keys,omitempty"`
	// QueueDepth is the shard executor's queued-write gauge at scrape
	// time.
	QueueDepth int64 `json:"queue_depth"`
}

// ContentionReport is the JSON shape of /debug/contention and of the
// LockWait/HotKeys/QueueDepth sections in run reports: where lock time
// goes and which keys/nodes it goes to, from the sampled trace layer.
type ContentionReport struct {
	// SampleEvery is the sampling interval: every count below
	// represents roughly SampleEvery occurrences.
	SampleEvery int `json:"sample_every"`
	// Spans counts trace spans ever recorded; Dropped counts those
	// since overwritten by ring wraparound (histograms and sketches
	// are not affected by overwrite — they fold in every sample).
	Spans   uint64 `json:"spans_recorded"`
	Dropped uint64 `json:"spans_dropped,omitempty"`
	// LockWait merges every worker's exclusive-wait distribution.
	LockWait *LatencyReport `json:"lock_wait,omitempty"`
	// HotKeys ranks keys across all shards; HotNodes ranks lock/node
	// identities (opaque but stable within a run — equal values are
	// the same tree node).
	HotKeys  []HotKeyReport `json:"hot_keys,omitempty"`
	HotNodes []HotKeyReport `json:"hot_nodes,omitempty"`
	// QueueDepth is the per-shard executor queue gauge.
	QueueDepth []int64 `json:"queue_depth,omitempty"`
	// Shards breaks the above down per shard (omitted for single-shard
	// tracers, where it would repeat the top level).
	Shards []ShardContention `json:"shards,omitempty"`
	// Combine is the contention engine's state: per-shard arming and the
	// batch-grant / flat-combining counters. Omitted when the server ran
	// without -combine.
	Combine *CombineReport `json:"combine,omitempty"`
}

// CombineReport is the /debug/contention "combine" section: whether the
// contention engine is enabled, which shards its policy currently has
// armed, and the reaction counters (queue-layer batch grants and
// executor flat-combining).
type CombineReport struct {
	Enabled   bool    `json:"enabled"`
	Threshold float64 `json:"threshold"`
	// ArmedShards lists the shard indices whose combine policy is
	// currently armed (hot-key share above threshold).
	ArmedShards []int `json:"armed_shards,omitempty"`
	// BatchGrants counts lock releases that woke two or more compatible
	// queued-shared waiters in one grant; GrantFanout sums their
	// fanouts (mean group size = GrantFanout / BatchGrants).
	BatchGrants uint64 `json:"batch_grants"`
	GrantFanout uint64 `json:"grant_fanout"`
	// CombinedOps counts queued writes answered by a flat-combined
	// apply; CombineDepth counts the combined tree descents serving
	// them (mean run length = CombinedOps / CombineDepth).
	CombinedOps  uint64 `json:"combined_ops"`
	CombineDepth uint64 `json:"combine_depth"`
}

// CombineReportFrom assembles the combine section from a counter
// snapshot and the per-shard policies (nil entries allowed).
func CombineReportFrom(enabled bool, threshold float64, policies []*CombinePolicy, snap Snapshot) *CombineReport {
	r := &CombineReport{
		Enabled:      enabled,
		Threshold:    threshold,
		BatchGrants:  snap.Get(EvBatchGrant),
		GrantFanout:  snap.Get(EvGrantFanout),
		CombinedOps:  snap.Get(EvCombinedOps),
		CombineDepth: snap.Get(EvCombineDepth),
	}
	for i, p := range policies {
		if p.Armed() {
			r.ArmedShards = append(r.ArmedShards, i)
		}
	}
	return r
}

// Combine-policy tuning. The policy must be cheap enough to run
// unconditionally on the executor's apply path, so it samples its own
// sketch offers (1 in 1<<combineSampleShift ops) and re-evaluates only
// every combineEvalEvery sampled offers. The hot set is intentionally
// tiny: flat-combining only pays on keys hot enough to recur within one
// drained batch, and a skewed workload concentrates on very few keys.
const (
	combineSketchK     = 64
	combineDecayEvery  = 16384
	combineSampleShift = 4
	combineEvalEvery   = 256
	combineMinTotal    = 64
	combineHotSet      = 8
)

// DefaultCombineThreshold is the top-key traffic share at which a
// shard's policy arms flat-combining. A space-saving sketch with
// combineSketchK slots attributes roughly a 1/K ≈ 1.6% share to every
// key under a uniform workload, while theta=0.99 Zipfian traffic puts
// well over 10% on the hottest key, so 8% separates the regimes with
// margin on both sides.
const DefaultCombineThreshold = 0.08

// CombinePolicy arms and disarms flat-combining for one shard from the
// shard's own observed key traffic. It is owned by the shard's executor
// goroutine: Note and IsHot are single-threaded owner calls; only Armed
// is safe to read from other goroutines (scrapes).
//
// Arming uses hysteresis: the policy arms when the hottest key's
// estimated traffic share reaches the threshold and disarms only when
// it falls below half the threshold, so a workload hovering near the
// boundary does not flap. Uniform workloads never arm and pay only the
// sampled-offer counter per op.
type CombinePolicy struct {
	sk        *trace.Sketch
	threshold float64
	ctr       uint32
	sinceEval uint32
	armed     atomic.Bool
	// pinned suspends evaluate: a harness that forced the decision via
	// Arm/Disarm must not have it silently overridden by whatever
	// traffic the test happens to replay.
	pinned bool
	nHot   int
	hot    [combineHotSet]uint64
}

// NewCombinePolicy builds a policy arming at the given top-key traffic
// share (DefaultCombineThreshold when threshold <= 0).
func NewCombinePolicy(threshold float64) *CombinePolicy {
	if threshold <= 0 {
		threshold = DefaultCombineThreshold
	}
	return &CombinePolicy{
		sk:        trace.NewSketch(combineSketchK, combineDecayEvery),
		threshold: threshold,
	}
}

// Threshold returns the arming threshold.
func (p *CombinePolicy) Threshold() float64 {
	if p == nil {
		return 0
	}
	return p.threshold
}

// Note feeds one observed key. Owner-only. Most calls cost one counter
// increment and a mask; 1 in 16 offers the sketch, and 1 in 4096
// re-evaluates the arming decision.
//
//optiql:noalloc
func (p *CombinePolicy) Note(key uint64) {
	if p == nil {
		return
	}
	p.ctr++
	if p.ctr&((1<<combineSampleShift)-1) != 0 {
		return
	}
	p.sk.Offer(key)
	p.sinceEval++
	if p.sinceEval >= combineEvalEvery {
		p.sinceEval = 0
		p.evaluate()
	}
}

// evaluate re-decides arming from the sketch. Owner-only, cold
// (1 in combineEvalEvery<<combineSampleShift ops), allocation-free so
// the disarmed uniform path stays pinned at zero allocs.
//
//optiql:noalloc
func (p *CombinePolicy) evaluate() {
	if p.pinned {
		return
	}
	top, total := p.sk.Top()
	if total < combineMinTotal {
		return
	}
	share := float64(top.Count) / float64(total)
	if p.armed.Load() {
		if share < p.threshold*0.5 {
			p.armed.Store(false)
			p.nHot = 0
			return
		}
	} else {
		if share < p.threshold {
			return
		}
		p.armed.Store(true)
	}
	keys := p.sk.HotKeys(p.hot[:0], p.threshold*0.5)
	p.nHot = len(keys)
}

// Arm forces the policy armed with the given hot set (at most the
// policy's hot-set capacity is kept) and pins the decision: evaluate
// stops overriding it no matter what traffic Note subsequently sees.
// Deterministic harnesses use it instead of replaying enough skewed
// traffic through Note; the production path arms via Note/evaluate
// only.
func (p *CombinePolicy) Arm(keys ...uint64) {
	if p == nil {
		return
	}
	p.nHot = copy(p.hot[:], keys)
	p.pinned = true
	p.armed.Store(true)
}

// Disarm forces the policy disarmed and pinned (harness counterpart of
// Arm).
func (p *CombinePolicy) Disarm() {
	if p == nil {
		return
	}
	p.nHot = 0
	p.pinned = true
	p.armed.Store(false)
}

// Armed reports whether combining is currently armed. Safe from any
// goroutine; nil policies (combining disabled) report false.
//
//optiql:noalloc
func (p *CombinePolicy) Armed() bool { return p != nil && p.armed.Load() }

// IsHot reports whether key is in the armed hot set. Owner-only.
//
//optiql:noalloc
func (p *CombinePolicy) IsHot(key uint64) bool {
	if p == nil || !p.armed.Load() {
		return false
	}
	for i := 0; i < p.nHot; i++ {
		if p.hot[i] == key {
			return true
		}
	}
	return false
}

// LatencyReportFrom converts a histogram into the report schema (nil
// for empty histograms). Shared by the bench result reports, cmd/latency
// and the contention layer so every tool emits one latency shape.
func LatencyReportFrom(h *hist.Histogram) *LatencyReport {
	if h == nil || h.Count() == 0 {
		return nil
	}
	pcts := make(map[string]uint64, len(hist.StandardPercentiles))
	snap := h.Snapshot()
	for i, label := range hist.PercentileLabels {
		pcts[label] = snap[i]
	}
	var buckets []BucketReport
	for _, b := range h.Buckets() {
		buckets = append(buckets, BucketReport{UpperNs: b.Upper, Count: b.Count})
	}
	return &LatencyReport{
		Count:       h.Count(),
		MinNs:       h.Min(),
		MaxNs:       h.Max(),
		MeanNs:      h.Mean(),
		Percentiles: pcts,
		Buckets:     buckets,
	}
}

func hotKeyReports(items []trace.HotItem) []HotKeyReport {
	if len(items) == 0 {
		return nil
	}
	out := make([]HotKeyReport, len(items))
	for i, it := range items {
		out[i] = HotKeyReport{Key: it.Key, Count: it.Count, Err: it.Err}
	}
	return out
}

// ContentionFrom snapshots a tracer into the report shape. depths,
// when non-nil, is the per-shard queue-depth gauge sampled by the
// caller (the tracer does not know about executor queues). Nil tracer
// means tracing is off: the report is nil.
func ContentionFrom(t *trace.Tracer, depths []int64) *ContentionReport {
	if t == nil {
		return nil
	}
	s := t.Snapshot()
	rep := &ContentionReport{
		SampleEvery: s.SampleEvery,
		Spans:       s.Recorded,
		Dropped:     s.Dropped,
		LockWait:    LatencyReportFrom(&s.Wait),
		HotKeys:     hotKeyReports(s.Keys),
		HotNodes:    hotKeyReports(s.Nodes),
		QueueDepth:  depths,
	}
	if len(s.Shards) > 1 {
		for i := range s.Shards {
			sc := ShardContention{
				Shard:    i,
				LockWait: LatencyReportFrom(&s.Shards[i].Wait),
				HotKeys:  hotKeyReports(s.Shards[i].Keys),
			}
			if i < len(depths) {
				sc.QueueDepth = depths[i]
			}
			rep.Shards = append(rep.Shards, sc)
		}
	}
	return rep
}

// AttachContention fills the report's contention sections from cr
// (no-op when cr is nil, i.e. tracing was off).
func (r *Report) AttachContention(cr *ContentionReport) {
	if cr == nil {
		return
	}
	r.LockWait = cr.LockWait
	r.HotKeys = cr.HotKeys
	r.HotNodes = cr.HotNodes
	r.QueueDepth = cr.QueueDepth
	r.Combine = cr.Combine
}
