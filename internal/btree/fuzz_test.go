package btree

import (
	"testing"

	"optiql/internal/core"
	"optiql/internal/locks"
)

// fuzzSchemes are the schemes the fuzzer rotates through; indexed by
// the first corpus byte so every scheme's single-threaded paths get
// coverage (concurrency is the oracle harness's job, not the fuzzer's).
var fuzzSchemes = []string{"OptiQL", "OptLock", "OptiQL-AOR", "pthread"}

// FuzzBTreeOps decodes the input as a little program — header picks a
// scheme and node size, then two bytes per operation — and replays it
// against both the tree and a map oracle. Any divergence in return
// values, lookups, scan contents, Len, or the white-box structural
// invariants fails the run. Small single-byte keys keep the fuzzer in
// a dense space where splits, merges and borrows trigger quickly.
func FuzzBTreeOps(f *testing.F) {
	// Build-up then tear-down across a leaf boundary.
	f.Add([]byte{0, 1, 0, 10, 0, 20, 0, 30, 0, 40, 2, 10, 2, 20, 4, 0})
	// Overwrites, misses and scans interleaved.
	f.Add([]byte{1, 0, 0, 5, 0, 5, 1, 5, 3, 9, 4, 5, 5, 0, 2, 5})
	// Scheme 3, tiny nodes, saw-tooth population.
	f.Add([]byte{3, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 2, 1, 2, 3, 2, 5, 0, 1})
	// Fingerprint-collision-heavy: the byte-key pairs (14,247), (23,167),
	// (10,243) and (1,234) collide under fpHash, so the leaf probe must
	// reject same-fingerprint candidates by full-key compare — including
	// after one partner of each pair is deleted.
	f.Add([]byte{0, 2, 0, 14, 0, 247, 0, 23, 0, 167, 0, 10, 0, 243, 3, 14, 3, 247, 2, 14, 3, 247, 0, 1, 0, 234, 3, 1, 3, 234, 4, 0})
	// Same collision program on a heap-class tree (fanout beyond the
	// largest size class, fingerprints in heap slices).
	f.Add([]byte{0, 7, 0, 14, 0, 247, 0, 23, 0, 167, 3, 14, 2, 247, 3, 14, 3, 247, 4, 0, 5, 0})
	// Largest inline class: enough inserts to split a 254-fanout leaf is
	// out of reach for a short program, but deep per-class search paths
	// still differ (branchless binary vs linear), so pin class 4 too.
	f.Add([]byte{1, 6, 0, 5, 0, 238, 3, 5, 3, 238, 2, 5, 3, 238, 4, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		scheme := locks.MustByName(fuzzSchemes[int(data[0])%len(fuzzSchemes)])
		// Node sizes 64..8192: fanouts 4, 6, 14, 30, 62, 126, 254, 510 —
		// every inline size class (and its search-kernel dispatch) plus
		// the heap fallback beyond the largest class.
		nodeSize := 64 << (data[1] % 8)
		tr, err := New(Config{Scheme: scheme, NodeSize: nodeSize})
		if err != nil {
			t.Fatal(err)
		}
		c := locks.NewCtx(core.NewPool(64), 8)
		defer c.Close()
		oracle := make(map[uint64]uint64)
		for i := 2; i+1 < len(data); i += 2 {
			op, k := data[i], uint64(data[i+1])
			v := uint64(i) // value unique per step: overwrites are visible
			switch op % 6 {
			case 0: // insert
				_, had := oracle[k]
				if got := tr.Insert(c, k, v); got != !had {
					t.Fatalf("step %d: Insert(%d) new=%v, oracle says %v", i, k, got, !had)
				}
				oracle[k] = v
			case 1: // update
				_, had := oracle[k]
				if got := tr.Update(c, k, v); got != had {
					t.Fatalf("step %d: Update(%d) found=%v, oracle says %v", i, k, got, had)
				}
				if had {
					oracle[k] = v
				}
			case 2: // delete
				_, had := oracle[k]
				if got := tr.Delete(c, k); got != had {
					t.Fatalf("step %d: Delete(%d) found=%v, oracle says %v", i, k, got, had)
				}
				delete(oracle, k)
			case 3: // lookup
				want, had := oracle[k]
				got, ok := tr.Lookup(c, k)
				if ok != had || (had && got != want) {
					t.Fatalf("step %d: Lookup(%d) = (%d, %v), oracle says (%d, %v)", i, k, got, ok, want, had)
				}
			case 4: // bounded scan from k
				max := int(k%17) + 1
				checkFuzzScan(t, oracle, tr.Scan(c, k, max, nil), k, max)
			case 5: // len check
				if tr.Len() != len(oracle) {
					t.Fatalf("step %d: Len() = %d, oracle has %d", i, tr.Len(), len(oracle))
				}
			}
		}
		checkInvariants(t, tr)
		// Final exhaustive comparison.
		all := tr.Scan(c, 0, len(oracle)+1, nil)
		if len(all) != len(oracle) {
			t.Fatalf("final scan has %d pairs, oracle %d", len(all), len(oracle))
		}
		for _, kv := range all {
			if want, ok := oracle[kv.Key]; !ok || want != kv.Value {
				t.Fatalf("final scan pair (%d, %d), oracle says (%d, %v)", kv.Key, kv.Value, want, ok)
			}
		}
	})
}

// checkFuzzScan verifies a bounded scan against the oracle: sorted,
// within bounds, values current, and complete over the window covered.
func checkFuzzScan(t *testing.T, oracle map[uint64]uint64, out []KV, start uint64, max int) {
	t.Helper()
	if len(out) > max {
		t.Fatalf("scan(%d, %d) returned %d pairs", start, max, len(out))
	}
	for i, kv := range out {
		if kv.Key < start || (i > 0 && kv.Key <= out[i-1].Key) {
			t.Fatalf("scan(%d) unsorted or out of range at %d", start, i)
		}
		if want, ok := oracle[kv.Key]; !ok || want != kv.Value {
			t.Fatalf("scan pair (%d, %d), oracle says (%d, %v)", kv.Key, kv.Value, want, ok)
		}
	}
	hi := ^uint64(0)
	if len(out) == max && max > 0 {
		hi = out[len(out)-1].Key
	}
	n := 0
	for k := range oracle {
		if k >= start && k <= hi {
			n++
		}
	}
	if n != len(out) {
		t.Fatalf("scan(%d, %d) returned %d pairs, oracle has %d in window", start, max, len(out), n)
	}
}
