// Package btree implements a memory-optimized concurrent B+-tree with
// optimistic lock coupling, in the style of BTreeOLC [29], adapted to
// OptiQL exactly as Section 6.1 and Algorithm 4 of the paper describe:
// readers traverse optimistically and validate versions hand over hand;
// updaters lock the target leaf directly in exclusive mode (no upgrade
// step) and then validate the parent; inserts that need a structural
// modification restart in pessimistic mode and exclusively couple down
// the tree.
//
// The tree is generic over the locking scheme (see internal/locks): the
// OptiQL schemes put OptiQL on leaves and keep centralized optimistic
// locks on inner nodes; pessimistic schemes (pthread, MCS-RW) turn the
// same code paths into classic pessimistic lock coupling, because their
// shared acquisitions block and always validate.
//
// Keys and values are uint64, matching the paper's 8-byte keys and
// 8-byte values (payload TIDs). Node size is configurable in bytes and
// determines the fanout, as in the Figure 11 node-size study.
package btree

import (
	"fmt"
	"sync/atomic"

	"optiql/internal/locks"
	"optiql/internal/simd"
)

// headerBytes models the per-node header (lock word, count, type,
// sibling pointer) when deriving fanout from the configured node size,
// mirroring the C++ layout the paper assumes.
const headerBytes = 32

// entryBytes is the space per slot: an 8-byte key plus an 8-byte value
// or child pointer.
const entryBytes = 16

// DefaultNodeSize follows the paper's evaluation setup (256-byte nodes,
// fanout 14).
const DefaultNodeSize = 256

// Config parameterizes a Tree.
type Config struct {
	// Scheme selects the locking scheme; required.
	Scheme *locks.Scheme
	// NodeSize is the modelled node size in bytes (DefaultNodeSize if
	// zero). Fanout = (NodeSize - 32) / 16, minimum 4.
	NodeSize int
}

// Tree is the concurrent B+-tree. All operations take the calling
// worker's *locks.Ctx, which supplies the queue nodes exclusive
// acquisitions need.
type Tree struct {
	root   atomic.Pointer[node]
	scheme *locks.Scheme
	fanout int // max keys per node (leaf and inner)
	class  int // size class serving fanout (node.go); classHeap when none
	size   atomic.Int64
	// leafFree/innerFree recycle nodes emptied by merges and root
	// collapses (type-stable reuse; node.go). Separate lists per role
	// keep the leaf flag immutable for a node's whole lifetime.
	leafFree  *locks.Recycler
	innerFree *locks.Recycler
	aorLeaf   bool
}

// node is the common header of every node. The slices alias inline
// arrays of the node's size-class struct (node.go) — header and slots
// are one allocation — and are written exactly once, at construction:
// a recycled node keeps its slice headers, its lock and its leaf flag
// for life, so racy optimistic readers always observe a stable layout
// (only contents can be torn, and torn reads fail version validation).
type node struct {
	lock locks.Lock
	leaf bool
	// pshift encodes the inner node's shared separator prefix for the
	// truncated descent search: the separators agree on their top
	// (64-pshift)/8 bytes (fp.go). Read racily; any value is shift-safe.
	pshift uint8
	// count is the number of live keys. It is read racily by optimistic
	// traversals and therefore always used clamped; version validation
	// rejects any result derived from a torn view.
	count    int
	keys     []uint64
	values   []uint64 // leaves only
	children []*node  // inner nodes only; count+1 live entries
	next     *node    // leaves only: right sibling, for scans
	// fps aliases the node's inline fingerprint array (node.go),
	// padded to whole SWAR words. Leaves: fps[i] = fpHash(keys[i]).
	// Inner nodes: fps[i] = discriminating byte of separator i under
	// prefix truncation. Maintained under the exclusive lock alongside
	// the key array (fp.go).
	fps []byte
	// pfx is the inner node's shared separator prefix value,
	// keys[*] >> pshift.
	pfx uint64
}

// New creates an empty tree under the given configuration.
func New(cfg Config) (*Tree, error) {
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("btree: Config.Scheme is required")
	}
	if !cfg.Scheme.SharedMode {
		return nil, fmt.Errorf("btree: scheme %s does not support shared mode", cfg.Scheme.Name)
	}
	size := cfg.NodeSize
	if size == 0 {
		size = DefaultNodeSize
	}
	fanout := (size - headerBytes) / entryBytes
	if fanout < 4 {
		fanout = 4
	}
	t := &Tree{
		scheme:    cfg.Scheme,
		fanout:    fanout,
		class:     classFor(fanout),
		leafFree:  locks.NewRecycler(),
		innerFree: locks.NewRecycler(),
		aorLeaf:   cfg.Scheme.AOR(),
	}
	t.root.Store(t.newLeaf(nil))
	return t, nil
}

// MustNew is New for static configuration; it panics on error.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Fanout returns the maximum number of keys per node.
func (t *Tree) Fanout() int { return t.fanout }

// Len returns the number of keys in the tree (maintained with atomic
// counters; exact when quiescent).
func (t *Tree) Len() int { return int(t.size.Load()) }

// Height returns the current height (1 = root is a leaf). It is meant
// for diagnostics and takes no locks.
func (t *Tree) Height() int {
	h := 1
	for n := t.root.Load(); !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// clampedCount returns count clamped to the slot capacity, defending
// index computations against torn racy reads (any wrong result is
// rejected by version validation afterwards).
func (n *node) clampedCount() int {
	c := n.count
	if c < 0 {
		return 0
	}
	if c > len(n.keys) {
		return len(n.keys)
	}
	return c
}

// linearCap is the largest fanout searched by the unrolled branch-free
// linear kernels; larger classes use the branchless binary kernels and
// (for inner nodes) the prefix-truncated byte search. Covers size
// classes 14 and 30, whose whole key array is one to four sequential
// cache lines — exactly where a linear sweep beats binary probing.
const linearCap = 30

// childIndex returns the descent slot for k: the first i with
// k < keys[i], so children[i] covers k. Safe under racy reads: every
// kernel clamps its bounds, torn prefix metadata only misroutes the
// descent (caught by version validation), and Go defines oversized
// shifts as 0 so a garbage pshift cannot fault.
//
//optiql:noalloc
func (n *node) childIndex(k uint64) int {
	cnt := n.clampedCount()
	if len(n.keys) <= linearCap {
		return simd.CountLessEq(n.keys, cnt, k)
	}
	if ps := n.pshift; ps >= 8 && ps <= 64 {
		// Prefix-truncated search: route on the shared prefix, then
		// binary-search the 1-byte discriminators, then full-compare
		// only the run of equal discriminator bytes.
		if kc := k >> ps; kc != n.pfx {
			if kc < n.pfx {
				return 0
			}
			return cnt
		}
		kb := byte(k >> (ps - 8))
		lo := simd.LowerBoundBytes(n.fps, cnt, kb)
		hi := simd.UpperBoundBytes(n.fps, cnt, kb)
		if hi < lo {
			hi = lo // torn discriminators; validation will reject
		}
		return lo + simd.UpperBound(n.keys[lo:], hi-lo, k)
	}
	return simd.UpperBound(n.keys, cnt, k)
}

// lowerBound returns the first index with keys[i] >= k among the live
// keys. Safe under racy reads.
//
//optiql:noalloc
func (n *node) lowerBound(k uint64) int {
	cnt := n.clampedCount()
	if len(n.keys) <= linearCap {
		return simd.CountLess(n.keys, cnt, k)
	}
	return simd.LowerBound(n.keys, cnt, k)
}

// leafFind returns the slot of k and whether it is present. Safe under
// racy reads. Point lookups use leafGet (fp.go) instead, which probes
// the fingerprint array; leafFind is the position-returning form the
// write paths and scans need.
//
//optiql:noalloc
func (n *node) leafFind(k uint64) (int, bool) {
	i := n.lowerBound(k)
	return i, i < n.clampedCount() && n.keys[i] == k
}

func (n *node) full() bool { return n.count >= len(n.keys) }
