package btree

import (
	"fmt"
	"testing"

	"optiql/internal/core"
	"optiql/internal/indextest"
	"optiql/internal/locks"
	"optiql/internal/obs/trace"
)

// TestLookupAllocs pins the point-read alloc budget at zero: the flat
// node layout keeps the descent free of slice headers and the lock
// schemes keep their queue nodes in the Ctx, so a Lookup must not
// touch the heap at all.
func TestLookupAllocs(t *testing.T) {
	for _, scheme := range []string{"OptiQL", "OptLock", "MCS-RW"} {
		// Node sizes cover the kernel dispatch tiers: linear classes
		// (256), branchless binary + prefix truncation (1024, 4096) and
		// the heap fallback beyond the largest class (8192).
		for _, nodeSize := range []int{256, 1024, 4096, 8192} {
			t.Run(fmt.Sprintf("%s/%d", scheme, nodeSize), func(t *testing.T) {
				indextest.SkipIfOptimisticRace(t, locks.MustByName(scheme))
				tr, err := New(Config{Scheme: locks.MustByName(scheme), NodeSize: nodeSize})
				if err != nil {
					t.Fatal(err)
				}
				pool := core.NewPool(16)
				c := locks.NewCtx(pool, 8)
				defer c.Close()
				for k := uint64(0); k < 10000; k++ {
					tr.Insert(c, k, k*3)
				}
				k := uint64(0)
				allocs := testing.AllocsPerRun(1000, func() {
					v, ok := tr.Lookup(c, k)
					if !ok || v != k*3 {
						t.Fatalf("Lookup(%d) = (%d, %v)", k, v, ok)
					}
					k = (k + 7919) % 10000
				})
				if allocs != 0 {
					t.Errorf("Lookup allocates %.1f objects per op, want 0", allocs)
				}
			})
		}
	}
}

// TestTracedLookupAllocs pins the traced point-read budget at zero:
// with a tracer attached and every operation sampled (SampleEvery 1 —
// the worst case; production uses 1-in-1024), the Lookup path plus its
// span recording, hot-key offers and lock-wait histogram updates must
// still never touch the heap. This is the contention profiler's core
// promise: observation without allocation.
func TestTracedLookupAllocs(t *testing.T) {
	for _, scheme := range []string{"OptiQL", "OptLock", "MCS-RW"} {
		t.Run(scheme, func(t *testing.T) {
			indextest.SkipIfOptimisticRace(t, locks.MustByName(scheme))
			tr, err := New(Config{Scheme: locks.MustByName(scheme)})
			if err != nil {
				t.Fatal(err)
			}
			pool := core.NewPool(16)
			c := locks.NewCtx(pool, 8)
			defer c.Close()
			tracer := trace.New(trace.Config{SampleEvery: 1, BufCap: 1024})
			tb := tracer.NewBuf(0, 0)
			c.SetTrace(tb)
			for k := uint64(0); k < 10000; k++ {
				tr.Insert(c, k, k*3)
			}
			k := uint64(0)
			allocs := testing.AllocsPerRun(1000, func() {
				// The caller-side sampling mirrors bench.MeasureIndex: a
				// draw, a clock read, a hot-key offer and a tree-op span
				// around the lookup — all on the zero-alloc hot path.
				sampled := tb.Sample()
				var t0 int64
				if sampled {
					t0 = tb.Now()
					tb.NoteKey(0, k)
				}
				v, ok := tr.Lookup(c, k)
				if !ok || v != k*3 {
					t.Fatalf("Lookup(%d) = (%d, %v)", k, v, ok)
				}
				if sampled {
					tb.Record(trace.KindTreeOp, 0, t0, tb.Now()-t0, 0, k)
				}
				k = (k + 7919) % 10000
			})
			if allocs != 0 {
				t.Errorf("traced Lookup allocates %.1f objects per op, want 0", allocs)
			}
			if snap := tracer.Snapshot(); snap.Recorded == 0 {
				t.Fatal("tracer recorded nothing — the test exercised a dead path")
			}
		})
	}
}

// TestScanAllocs pins the scan alloc budget: with a caller-provided
// output buffer the sibling-chain walk stages batches on the stack —
// or, for fanouts beyond the stack scratch, in the worker Ctx's
// lazily-grown staging buffer — so steady-state scans must not
// allocate at any fanout. (AllocsPerRun's warm-up round absorbs the
// one-time staging growth, exactly like production steady state.)
func TestScanAllocs(t *testing.T) {
	for _, nodeSize := range []int{256, 4096, 8192} {
		t.Run(fmt.Sprintf("%d", nodeSize), func(t *testing.T) {
			scheme := locks.MustByName("OptiQL")
			indextest.SkipIfOptimisticRace(t, scheme)
			tr, err := New(Config{Scheme: scheme, NodeSize: nodeSize})
			if err != nil {
				t.Fatal(err)
			}
			pool := core.NewPool(16)
			c := locks.NewCtx(pool, 8)
			defer c.Close()
			for k := uint64(0); k < 10000; k++ {
				tr.Insert(c, k, k)
			}
			buf := make([]KV, 0, 512)
			k := uint64(0)
			allocs := testing.AllocsPerRun(1000, func() {
				// Cross a leaf boundary even at the largest fanouts so the
				// staging buffer is exercised across the sibling walk.
				want := tr.Fanout() + 2
				out := tr.Scan(c, k, want, buf[:0])
				if len(out) != want {
					t.Fatalf("Scan(%d) returned %d pairs, want %d", k, len(out), want)
				}
				k = (k + 7919) % 9000
			})
			if allocs != 0 {
				t.Errorf("Scan allocates %.1f objects per op, want 0", allocs)
			}
		})
	}
}
