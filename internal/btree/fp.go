package btree

import (
	"math/bits"

	"optiql/internal/simd"
)

// Fingerprints and prefix truncation (DESIGN §14).
//
// Leaves keep fps[i] = fpHash(keys[i]): a 1-byte hash scanned a word
// at a time by the SWAR kernel, so a point lookup filters 8 slots per
// comparison and touches full keys only for the (usually zero or one)
// fingerprint hits. Inner nodes reuse the same array for the
// discriminating bytes of a prefix-truncated separator search: all
// separators in a node share their leading pshift-derived bytes, so
// the descent compares one byte per separator and falls back to full
// keys only within the run of equal discriminating bytes.
//
// Both arrays are maintained strictly under the node's exclusive lock,
// in the same critical section as the key array they shadow. Racy
// optimistic readers may observe torn or stale bytes; that only ever
// produces wrong *candidates* (filtered by the full-key compare) or a
// wrong slot (rejected by version validation at release), never a
// memory-safety violation — every kernel clamps its bounds.

// fpMult is the 64-bit golden-ratio (Fibonacci hashing) multiplier;
// the top byte of k*fpMult mixes all input bits, so dense and sparse
// key sets alike spread across the 256 fingerprint values.
const fpMult = 0x9E3779B97F4A7C15

// fpHash returns the 1-byte fingerprint of a key.
//
//optiql:noalloc
func fpHash(k uint64) byte {
	return byte((k * fpMult) >> 56)
}

// leafGet is the point-lookup kernel: probe the fingerprint array for
// candidates, confirm by full-key compare. Safe under racy reads.
//
//optiql:noalloc
func (n *node) leafGet(k uint64) (uint64, bool) {
	cnt := n.clampedCount()
	b := fpHash(k)
	for base := 0; base < cnt; base += 64 {
		m := simd.Match64(n.fps[base:], b)
		if live := cnt - base; live < 64 {
			m &= 1<<uint(live) - 1
		}
		for m != 0 {
			var j int
			j, m = simd.NextMatch(m)
			if i := base + j; n.keys[i] == k {
				return n.values[i], true
			}
		}
	}
	return 0, false
}

// fpInsert shifts fps[i:cnt] one slot right and writes k's
// fingerprint at i, mirroring the key-array shift of an insert. The
// caller holds the node exclusively.
//
//optiql:noalloc
func (n *node) fpInsert(i, cnt int, k uint64) {
	copy(n.fps[i+1:cnt+1], n.fps[i:cnt])
	n.fps[i] = fpHash(k)
}

// fpDelete shifts fps[i+1:cnt] one slot left, mirroring the key-array
// shift of a delete. The caller holds the node exclusively.
//
//optiql:noalloc
func (n *node) fpDelete(i, cnt int) {
	copy(n.fps[i:cnt-1], n.fps[i+1:cnt])
}

// refreshInnerMeta recomputes an inner node's prefix metadata and
// discriminating bytes from its live separators. Called under the
// exclusive lock after every separator mutation (insert, split,
// borrow, merge). O(count), but separator mutations only happen on
// SMOs, which are rare next to descents.
//
// pshift encodes the shared-prefix length: the separators agree on
// their top (64-pshift)/8 bytes, pfx holds that shared value, and
// fps[i] is the first byte below the prefix — the byte that actually
// discriminates separator i. With no shared prefix pshift is 64, and
// because Go defines x>>64 == 0 the pfx shortcut in childIndex
// compares 0 == 0 and self-disables.
//
//optiql:noalloc
func (n *node) refreshInnerMeta() {
	cnt := n.count
	if cnt <= 0 {
		n.pshift = 64
		n.pfx = 0
		return
	}
	pb := bits.LeadingZeros64(n.keys[0]^n.keys[cnt-1]) / 8
	if pb > 7 {
		pb = 7
	}
	ps := uint8(64 - 8*pb)
	n.pshift = ps
	n.pfx = n.keys[0] >> ps
	for i := 0; i < cnt; i++ {
		n.fps[i] = byte(n.keys[i] >> (ps - 8))
	}
}
