package btree

import (
	"fmt"
	"testing"

	"optiql/internal/simd"
)

// Node-local kernel microbenchmarks, one sub-benchmark per size class
// (fanouts 14..254 inline, 510 heap fallback). These isolate the
// search kernels from the descent so a benchstat diff attributes a
// regression to the kernel that caused it: leafGet (fingerprint probe
// + full-key confirm), the raw SWAR fingerprint match, fingerprint
// maintenance shifts, and the prefix-truncated separator search.

// benchClasses pairs each size-class fanout with its class index; the
// final entry exercises the heap fallback beyond the largest class.
var benchClasses = []struct {
	fanout int
	class  int
}{
	{14, 0}, {30, 1}, {62, 2}, {126, 3}, {254, 4}, {510, classHeap},
}

// benchLeaf builds a full leaf of the given class with sorted keys
// whose fingerprints spread across the byte space.
func benchLeaf(class, fanout int) *node {
	n := makeLeaf(class, fanout)
	n.leaf = true
	for i := 0; i < fanout; i++ {
		k := uint64(i)<<32 | uint64(i)*2654435761
		n.keys[i] = k
		n.values[i] = k * 3
		n.fps[i] = fpHash(k)
	}
	n.count = fanout
	return n
}

// benchInner builds a full inner node whose separators share their top
// byte, so refreshInnerMeta computes a real shared prefix and the
// benchmark takes the prefix-truncated discriminating-byte path.
func benchInner(class, fanout int) *node {
	n := makeInner(class, fanout)
	for i := 0; i < fanout; i++ {
		n.keys[i] = 0xAB<<56 | uint64(i)<<24 | uint64(i)*2654435761&0xFFFFFF
	}
	n.count = fanout
	n.refreshInnerMeta()
	return n
}

// BenchmarkLeafFind measures the point-lookup kernel over a full leaf
// of each size class: SWAR fingerprint probe, candidate confirm by
// full-key compare, hit every time.
func BenchmarkLeafFind(b *testing.B) {
	for _, bc := range benchClasses {
		b.Run(fmt.Sprintf("%d", bc.fanout), func(b *testing.B) {
			n := benchLeaf(bc.class, bc.fanout)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := uint64(i) % uint64(bc.fanout)
				if _, ok := n.leafGet(n.keys[j]); !ok {
					b.Fatal("present key not found")
				}
			}
		})
	}
}

// BenchmarkFPProbe measures the raw SWAR fingerprint sweep alone — the
// filter cost a probe pays before any full-key compare — by matching a
// byte that hits nothing.
func BenchmarkFPProbe(b *testing.B) {
	for _, bc := range benchClasses {
		b.Run(fmt.Sprintf("%d", bc.fanout), func(b *testing.B) {
			n := benchLeaf(bc.class, bc.fanout)
			for i := range n.fps { // padded tail included: odd bytes never match 0
				n.fps[i] = byte(i) | 1
			}
			b.ResetTimer()
			var acc uint64
			for i := 0; i < b.N; i++ {
				for base := 0; base < bc.fanout; base += 64 {
					acc += simd.Match64(n.fps[base:], 0)
				}
			}
			if acc != 0 {
				b.Fatal("probe byte unexpectedly matched")
			}
		})
	}
}

// BenchmarkFPMaintain measures the fingerprint maintenance pair on the
// write path: one mid-node insert shift plus the matching delete shift,
// the incremental cost fingerprints add to every leaf mutation.
func BenchmarkFPMaintain(b *testing.B) {
	for _, bc := range benchClasses {
		b.Run(fmt.Sprintf("%d", bc.fanout), func(b *testing.B) {
			n := benchLeaf(bc.class, bc.fanout)
			mid, cnt := bc.fanout/2, bc.fanout-1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.fpInsert(mid, cnt, uint64(i))
				n.fpDelete(mid, cnt+1)
			}
		})
	}
}

// BenchmarkChildIndex measures the separator search over a full inner
// node of each size class: prefix shortcut, discriminating-byte band,
// then the full-key compare within the band.
func BenchmarkChildIndex(b *testing.B) {
	for _, bc := range benchClasses {
		b.Run(fmt.Sprintf("%d", bc.fanout), func(b *testing.B) {
			n := benchInner(bc.class, bc.fanout)
			b.ResetTimer()
			var acc int
			for i := 0; i < b.N; i++ {
				acc += n.childIndex(n.keys[uint64(i)%uint64(bc.fanout)])
			}
			if acc < 0 {
				b.Fatal("impossible")
			}
		})
	}
}
