package btree

import (
	"testing"
	"unsafe"
)

// TestNodeClassLayout pins the //optiql:cacheline contract of every
// size-class struct (the padalign analyzer checks the same thing in
// lint) and the SWAR padding of the fingerprint arrays: whole structs
// are cache-line multiples, fp capacities are word multiples covering
// the fanout.
func TestNodeClassLayout(t *testing.T) {
	sizes := map[string]uintptr{
		"leaf14":   unsafe.Sizeof(leaf14{}),
		"leaf30":   unsafe.Sizeof(leaf30{}),
		"leaf62":   unsafe.Sizeof(leaf62{}),
		"leaf126":  unsafe.Sizeof(leaf126{}),
		"leaf254":  unsafe.Sizeof(leaf254{}),
		"inner14":  unsafe.Sizeof(inner14{}),
		"inner30":  unsafe.Sizeof(inner30{}),
		"inner62":  unsafe.Sizeof(inner62{}),
		"inner126": unsafe.Sizeof(inner126{}),
		"inner254": unsafe.Sizeof(inner254{}),
	}
	for name, sz := range sizes {
		if sz == 0 || sz%64 != 0 {
			t.Errorf("%s is %d bytes, want a non-zero multiple of 64", name, sz)
		}
	}
	for class, cap := range classCaps {
		fpc := classFPCaps[class]
		if fpc%8 != 0 || fpc < cap {
			t.Errorf("class %d: fp capacity %d must be a word multiple covering fanout %d", class, fpc, cap)
		}
	}
	// The fp slices a constructed node carries must have the padded
	// capacity (the SWAR kernel reads whole words past the fanout).
	for class, cap := range classCaps {
		if got := len(makeLeaf(class, cap).fps); got != classFPCaps[class] {
			t.Errorf("leaf class %d: len(fps) = %d, want %d", class, got, classFPCaps[class])
		}
		if got := len(makeInner(class, cap).fps); got != classFPCaps[class] {
			t.Errorf("inner class %d: len(fps) = %d, want %d", class, got, classFPCaps[class])
		}
	}
	// Heap-class nodes get word-padded fp slices too.
	if got := len(makeLeaf(classHeap, 300).fps); got != 304 {
		t.Errorf("heap leaf: len(fps) = %d, want 304", got)
	}
}
