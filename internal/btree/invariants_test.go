package btree

import (
	"math/bits"
	"testing"
)

// checkInvariants walks the quiescent tree white-box and verifies the
// structural invariants every operation must preserve:
//   - key counts within capacity,
//   - keys strictly sorted inside every node,
//   - child separator ranges respected,
//   - all leaves at the same depth,
//   - the leaf sibling chain visits exactly the tree's leaves in order,
//   - Len() equals the number of stored pairs,
//   - leaf fingerprints match fpHash of their keys slot for slot,
//   - inner prefix metadata (pshift/pfx) and discriminating bytes match
//     a from-scratch recomputation over the live separators.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	root := tr.root.Load()
	var leaves []*node
	total := 0
	leafDepth := -1

	var walk func(n *node, lo, hi uint64, hasLo, hasHi bool, depth int)
	walk = func(n *node, lo, hi uint64, hasLo, hasHi bool, depth int) {
		if n.count < 0 || n.count > len(n.keys) {
			t.Fatalf("node count %d out of range [0,%d]", n.count, len(n.keys))
		}
		for i := 1; i < n.count; i++ {
			if n.keys[i-1] >= n.keys[i] {
				t.Fatalf("keys not strictly sorted at %d: %d >= %d", i, n.keys[i-1], n.keys[i])
			}
		}
		for i := 0; i < n.count; i++ {
			k := n.keys[i]
			if hasLo && k < lo {
				t.Fatalf("key %d below lower bound %d", k, lo)
			}
			if hasHi && k >= hi {
				t.Fatalf("key %d not below upper bound %d", k, hi)
			}
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				t.Fatalf("leaf at depth %d, expected %d", depth, leafDepth)
			}
			for i := 0; i < n.count; i++ {
				if n.fps[i] != fpHash(n.keys[i]) {
					t.Fatalf("leaf fingerprint %d stale: fps=%#x, want fpHash(%d)=%#x", i, n.fps[i], n.keys[i], fpHash(n.keys[i]))
				}
			}
			leaves = append(leaves, n)
			total += n.count
			return
		}
		if n != root && n.count == 0 {
			t.Fatal("non-root inner node with zero keys")
		}
		if n.count > 0 {
			pb := bits.LeadingZeros64(n.keys[0]^n.keys[n.count-1]) / 8
			if pb > 7 {
				pb = 7
			}
			ps := uint8(64 - 8*pb)
			if n.pshift != ps || n.pfx != n.keys[0]>>ps {
				t.Fatalf("inner prefix metadata stale: pshift=%d pfx=%#x, want pshift=%d pfx=%#x", n.pshift, n.pfx, ps, n.keys[0]>>ps)
			}
			for i := 0; i < n.count; i++ {
				if n.fps[i] != byte(n.keys[i]>>(ps-8)) {
					t.Fatalf("inner discriminating byte %d stale: fps=%#x, want %#x (key %#x)", i, n.fps[i], byte(n.keys[i]>>(ps-8)), n.keys[i])
				}
			}
		}
		for i := 0; i <= n.count; i++ {
			child := n.children[i]
			if child == nil {
				t.Fatalf("nil child %d of inner node with count %d", i, n.count)
			}
			clo, chasLo := lo, hasLo
			chi, chasHi := hi, hasHi
			if i > 0 {
				clo, chasLo = n.keys[i-1], true
			}
			if i < n.count {
				chi, chasHi = n.keys[i], true
			}
			walk(child, clo, chi, chasLo, chasHi, depth+1)
		}
	}
	walk(root, 0, 0, false, false, 0)

	if total != tr.Len() {
		t.Fatalf("Len() = %d but tree stores %d pairs", tr.Len(), total)
	}
	// The sibling chain from the leftmost leaf must visit exactly the
	// in-order leaves.
	first := root
	for !first.leaf {
		first = first.children[0]
	}
	i := 0
	for n := first; n != nil; n = n.next {
		if i >= len(leaves) || leaves[i] != n {
			t.Fatalf("sibling chain diverges from in-order leaves at %d", i)
		}
		i++
	}
	if i != len(leaves) {
		t.Fatalf("sibling chain has %d leaves, tree has %d", i, len(leaves))
	}
}

func TestInvariantsAfterSequentialOps(t *testing.T) {
	tr, pool := newTree(t, "OptiQL", 256)
	c := ctxFor(t, pool)
	for i := uint64(0); i < 5000; i++ {
		tr.Insert(c, i*7%5000, i)
	}
	checkInvariants(t, tr)
	for i := uint64(0); i < 5000; i += 3 {
		tr.Delete(c, i)
	}
	checkInvariants(t, tr)
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(c, 10000+i, i)
	}
	checkInvariants(t, tr)
}

// Concurrent invariant coverage lives in oracle_test.go: the shared
// indextest harness runs the mixed workload across all schemes (and a
// fanout-4 variant) and calls checkInvariants on the quiescent tree.
