package btree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"optiql/internal/core"
	"optiql/internal/indextest"
	"optiql/internal/locks"
)

// indexSchemes are the schemes the paper runs index workloads with.
func indexSchemes() []string {
	return []string{"OptLock", "OptiQL", "OptiQL-NOR", "OptiQL-AOR", "pthread", "MCS-RW"}
}

func newTree(t testing.TB, scheme string, nodeSize int) (*Tree, *core.Pool) {
	t.Helper()
	tr, err := New(Config{Scheme: locks.MustByName(scheme), NodeSize: nodeSize})
	if err != nil {
		t.Fatal(err)
	}
	return tr, core.NewPool(256)
}

func ctxFor(t testing.TB, pool *core.Pool) *locks.Ctx {
	t.Helper()
	c := locks.NewCtx(pool, 8)
	t.Cleanup(c.Close)
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil scheme")
	}
	if _, err := New(Config{Scheme: locks.MustByName("TTS")}); err == nil {
		t.Fatal("New accepted a scheme without shared mode")
	}
	tr := MustNew(Config{Scheme: locks.MustByName("OptiQL")})
	if got, want := tr.Fanout(), (DefaultNodeSize-headerBytes)/entryBytes; got != want {
		t.Fatalf("default fanout = %d, want %d", got, want)
	}
	small := MustNew(Config{Scheme: locks.MustByName("OptiQL"), NodeSize: 16})
	if small.Fanout() < 4 {
		t.Fatalf("tiny node size produced fanout %d", small.Fanout())
	}
}

func TestEmptyTree(t *testing.T) {
	tr, pool := newTree(t, "OptiQL", 0)
	c := ctxFor(t, pool)
	if _, ok := tr.Lookup(c, 42); ok {
		t.Fatal("lookup hit in empty tree")
	}
	if tr.Update(c, 42, 1) {
		t.Fatal("update hit in empty tree")
	}
	if tr.Delete(c, 42) {
		t.Fatal("delete hit in empty tree")
	}
	if got := tr.Scan(c, 0, 10, nil); len(got) != 0 {
		t.Fatalf("scan of empty tree returned %d pairs", len(got))
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree Len=%d Height=%d", tr.Len(), tr.Height())
	}
}

func TestInsertLookupSequential(t *testing.T) {
	for _, scheme := range indexSchemes() {
		t.Run(scheme, func(t *testing.T) {
			tr, pool := newTree(t, scheme, 256)
			c := ctxFor(t, pool)
			const n = 5000
			for i := uint64(0); i < n; i++ {
				if !tr.Insert(c, i, i*10) {
					t.Fatalf("insert %d reported duplicate", i)
				}
			}
			if tr.Len() != n {
				t.Fatalf("Len = %d, want %d", tr.Len(), n)
			}
			for i := uint64(0); i < n; i++ {
				v, ok := tr.Lookup(c, i)
				if !ok || v != i*10 {
					t.Fatalf("lookup %d = (%d, %v)", i, v, ok)
				}
			}
			if _, ok := tr.Lookup(c, n+1); ok {
				t.Fatal("lookup hit for absent key")
			}
			if tr.Height() < 2 {
				t.Fatalf("tree did not grow: height %d", tr.Height())
			}
		})
	}
}

func TestInsertRandomOrder(t *testing.T) {
	tr, pool := newTree(t, "OptiQL", 256)
	c := ctxFor(t, pool)
	rng := rand.New(rand.NewSource(7))
	keys := rng.Perm(8000)
	for _, k := range keys {
		tr.Insert(c, uint64(k), uint64(k)+1)
	}
	for _, k := range keys {
		v, ok := tr.Lookup(c, uint64(k))
		if !ok || v != uint64(k)+1 {
			t.Fatalf("lookup %d = (%d, %v)", k, v, ok)
		}
	}
}

func TestInsertDuplicateUpserts(t *testing.T) {
	tr, pool := newTree(t, "OptiQL", 256)
	c := ctxFor(t, pool)
	if !tr.Insert(c, 5, 50) {
		t.Fatal("first insert reported duplicate")
	}
	if tr.Insert(c, 5, 51) {
		t.Fatal("duplicate insert reported new")
	}
	if v, _ := tr.Lookup(c, 5); v != 51 {
		t.Fatalf("value after upsert = %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len after upsert = %d", tr.Len())
	}
}

func TestUpdate(t *testing.T) {
	for _, scheme := range indexSchemes() {
		t.Run(scheme, func(t *testing.T) {
			tr, pool := newTree(t, scheme, 256)
			c := ctxFor(t, pool)
			for i := uint64(0); i < 2000; i++ {
				tr.Insert(c, i, i)
			}
			for i := uint64(0); i < 2000; i += 3 {
				if !tr.Update(c, i, i+100) {
					t.Fatalf("update miss for %d", i)
				}
			}
			if tr.Update(c, 999999, 1) {
				t.Fatal("update hit for absent key")
			}
			for i := uint64(0); i < 2000; i++ {
				want := i
				if i%3 == 0 {
					want = i + 100
				}
				if v, ok := tr.Lookup(c, i); !ok || v != want {
					t.Fatalf("lookup %d = (%d, %v), want %d", i, v, ok, want)
				}
			}
		})
	}
}

func TestDelete(t *testing.T) {
	tr, pool := newTree(t, "OptiQL", 256)
	c := ctxFor(t, pool)
	const n = 3000
	for i := uint64(0); i < n; i++ {
		tr.Insert(c, i, i)
	}
	for i := uint64(0); i < n; i += 2 {
		if !tr.Delete(c, i) {
			t.Fatalf("delete miss for %d", i)
		}
	}
	if tr.Delete(c, 0) {
		t.Fatal("double delete succeeded")
	}
	for i := uint64(0); i < n; i++ {
		_, ok := tr.Lookup(c, i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("lookup %d present=%v want %v", i, ok, want)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len after deletes = %d, want %d", tr.Len(), n/2)
	}
}

func TestScan(t *testing.T) {
	for _, scheme := range indexSchemes() {
		t.Run(scheme, func(t *testing.T) {
			tr, pool := newTree(t, scheme, 256)
			c := ctxFor(t, pool)
			for i := uint64(0); i < 1000; i++ {
				tr.Insert(c, i*2, i) // even keys
			}
			got := tr.Scan(c, 100, 10, nil)
			if len(got) != 10 {
				t.Fatalf("scan returned %d pairs", len(got))
			}
			for j, kv := range got {
				wantK := uint64(100 + 2*j)
				if kv.Key != wantK || kv.Value != wantK/2 {
					t.Fatalf("scan[%d] = %+v, want key %d", j, kv, wantK)
				}
			}
			// Start between keys.
			got = tr.Scan(c, 101, 3, nil)
			if len(got) != 3 || got[0].Key != 102 {
				t.Fatalf("scan from gap = %+v", got)
			}
			// Overrun the end.
			got = tr.Scan(c, 1990, 100, nil)
			if len(got) != 5 {
				t.Fatalf("tail scan returned %d pairs, want 5", len(got))
			}
			// Max zero.
			if got := tr.Scan(c, 0, 0, nil); len(got) != 0 {
				t.Fatal("scan with max 0 returned data")
			}
		})
	}
}

func TestScanAcrossDeletedRange(t *testing.T) {
	tr, pool := newTree(t, "OptiQL", 256)
	c := ctxFor(t, pool)
	for i := uint64(0); i < 2000; i++ {
		tr.Insert(c, i, i)
	}
	// Carve an empty stretch spanning multiple leaves.
	for i := uint64(500); i < 1500; i++ {
		tr.Delete(c, i)
	}
	got := tr.Scan(c, 450, 100, nil)
	if len(got) != 100 {
		t.Fatalf("scan returned %d pairs", len(got))
	}
	for j := 0; j < 50; j++ {
		if got[j].Key != uint64(450+j) {
			t.Fatalf("scan[%d].Key = %d", j, got[j].Key)
		}
	}
	for j := 50; j < 100; j++ {
		if got[j].Key != uint64(1500+j-50) {
			t.Fatalf("scan[%d].Key = %d, want %d", j, got[j].Key, 1500+j-50)
		}
	}
}

func TestNodeSizeSweepStructure(t *testing.T) {
	for _, size := range []int{256, 512, 1024, 4096} {
		tr, pool := newTree(t, "OptiQL", size)
		c := ctxFor(t, pool)
		const n = 4000
		for i := uint64(0); i < n; i++ {
			tr.Insert(c, i, i)
		}
		for i := uint64(0); i < n; i++ {
			if _, ok := tr.Lookup(c, i); !ok {
				t.Fatalf("size %d: missing key %d", size, i)
			}
		}
	}
}

// TestConcurrentInsertDisjoint has each goroutine insert its own key
// range; afterwards every key must be present exactly once.
func TestConcurrentInsertDisjoint(t *testing.T) {
	for _, scheme := range indexSchemes() {
		t.Run(scheme, func(t *testing.T) {
			indextest.SkipIfOptimisticRace(t, locks.MustByName(scheme))
			tr, pool := newTree(t, scheme, 256)
			const goroutines, per = 8, 3000
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					c := locks.NewCtx(pool, 8)
					defer c.Close()
					base := uint64(g * per)
					for i := uint64(0); i < per; i++ {
						if !tr.Insert(c, base+i, base+i) {
							t.Errorf("duplicate report for %d", base+i)
							return
						}
					}
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			c := ctxFor(t, pool)
			if tr.Len() != goroutines*per {
				t.Fatalf("Len = %d, want %d", tr.Len(), goroutines*per)
			}
			for k := uint64(0); k < goroutines*per; k++ {
				if v, ok := tr.Lookup(c, k); !ok || v != k {
					t.Fatalf("lookup %d = (%d, %v)", k, v, ok)
				}
			}
		})
	}
}

// TestConcurrentMixed runs inserts, updates, lookups, deletes and scans
// together and then verifies full consistency against a reference map.
func TestConcurrentMixed(t *testing.T) {
	for _, scheme := range indexSchemes() {
		t.Run(scheme, func(t *testing.T) {
			indextest.SkipIfOptimisticRace(t, locks.MustByName(scheme))
			tr, pool := newTree(t, scheme, 256)
			const goroutines, iters, keyspace = 8, 4000, 2048

			// Preload even keys.
			c0 := locks.NewCtx(pool, 8)
			for k := uint64(0); k < keyspace; k += 2 {
				tr.Insert(c0, k, k)
			}
			c0.Close()

			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					c := locks.NewCtx(pool, 8)
					defer c.Close()
					rng := rand.New(rand.NewSource(int64(g)))
					for i := 0; i < iters; i++ {
						k := uint64(rng.Intn(keyspace))
						switch rng.Intn(5) {
						case 0:
							tr.Insert(c, k, k)
						case 1:
							tr.Update(c, k, k)
						case 2:
							tr.Delete(c, k)
						case 3:
							if v, ok := tr.Lookup(c, k); ok && v != k {
								t.Errorf("lookup %d returned foreign value %d", k, v)
								return
							}
						case 4:
							for _, kv := range tr.Scan(c, k, 16, nil) {
								if kv.Value != kv.Key {
									t.Errorf("scan returned inconsistent pair %+v", kv)
									return
								}
							}
						}
					}
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			// Whatever remains must be internally consistent and sorted.
			c := ctxFor(t, pool)
			all := tr.Scan(c, 0, keyspace+10, nil)
			if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Key < all[j].Key }) {
				t.Fatal("scan output not sorted")
			}
			for i := 1; i < len(all); i++ {
				if all[i].Key == all[i-1].Key {
					t.Fatalf("duplicate key %d in scan", all[i].Key)
				}
			}
			for _, kv := range all {
				if v, ok := tr.Lookup(c, kv.Key); !ok || v != kv.Value {
					t.Fatalf("scan/lookup mismatch at %d", kv.Key)
				}
			}
		})
	}
}

// TestQuickInsertLookupDelete is a property test: any multiset of
// operations applied to the tree matches a reference map.
func TestQuickInsertLookupDelete(t *testing.T) {
	tr, pool := newTree(t, "OptiQL", 256)
	c := ctxFor(t, pool)
	ref := make(map[uint64]uint64)
	f := func(ops []uint16) bool {
		for _, op := range ops {
			k := uint64(op % 512)
			switch (op / 512) % 3 {
			case 0:
				tr.Insert(c, k, uint64(op))
				ref[k] = uint64(op)
			case 1:
				tr.Delete(c, k)
				delete(ref, k)
			case 2:
				v, ok := tr.Lookup(c, k)
				rv, rok := ref[k]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	tr, pool := newTree(b, "OptiQL", 256)
	c := locks.NewCtx(pool, 8)
	defer c.Close()
	for i := uint64(0); i < 100000; i++ {
		tr.Insert(c, i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(c, uint64(i)%100000)
	}
}
