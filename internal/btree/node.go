package btree

import "optiql/internal/locks"

// Flat node layout. The C++ implementation the paper evaluates stores
// a node as one contiguous block — header followed by inline key and
// value/child arrays — so a traversal touches one allocation per level
// and the header shares cache lines with the first keys. The Go
// equivalent here: a small set of size-class structs that embed the
// node header and fixed-capacity arrays, with the header's slice
// fields aliasing the inline storage. All structural code keeps
// operating on the slices (len == fanout, as before); the slice
// headers are written once at construction and never again, so racy
// optimistic readers always see a stable view of where the arrays
// live.
//
// Each class also carries an inline fingerprint array (fp), placed
// directly after the header so a leaf probe touches only the leading
// cache lines: header, fingerprints, then at most one or two key
// slots confirmed by full compare (fp.go). The array is padded to a
// multiple of 8 bytes because the SWAR match kernel consumes whole
// words. Every struct is padded to a cache-line multiple and checked
// by the padalign analyzer, so the fp/key/value boundaries stay where
// the layout comments claim across header edits.
//
// classCaps mirrors the paper's node-size study (Figure 11): 256-byte
// nodes (fanout 14, the evaluation default) up to 4 KiB (fanout 254).
// Configured fanouts above the largest class fall back to heap slices
// — correct, just not single-allocation.
var classCaps = [...]int{14, 30, 62, 126, 254}

// classFPCaps are the fingerprint-array capacities per class: the
// fanout rounded up to a whole number of SWAR words.
var classFPCaps = [...]int{16, 32, 64, 128, 256}

// maxClassCap is the largest inline fanout; scan paths size their
// stack scratch off it.
const maxClassCap = 254

// classHeap marks a fanout too large for any inline class.
const classHeap = -1

func classFor(fanout int) int {
	for i, c := range classCaps {
		if fanout <= c {
			return i
		}
	}
	return classHeap
}

// One struct per (class, role). The 384-byte class (leaf14/inner14,
// modelling the paper's 256-byte nodes) is the hot one; the node
// header, the whole fingerprint array and the first keys fit in the
// first three cache lines.
//
//optiql:cacheline
type leaf14 struct {
	n    node
	fp   [16]byte
	k, v [14]uint64
}

//optiql:cacheline
type leaf30 struct {
	n    node
	fp   [32]byte
	k, v [30]uint64
	_    [48]byte
}

//optiql:cacheline
type leaf62 struct {
	n    node
	fp   [64]byte
	k, v [62]uint64
	_    [16]byte
}

//optiql:cacheline
type leaf126 struct {
	n    node
	fp   [128]byte
	k, v [126]uint64
	_    [16]byte
}

//optiql:cacheline
type leaf254 struct {
	n    node
	fp   [256]byte
	k, v [254]uint64
	_    [16]byte
}

//optiql:cacheline
type inner14 struct {
	n  node
	fp [16]byte
	k  [14]uint64
	c  [15]*node
	_  [56]byte
}

//optiql:cacheline
type inner30 struct {
	n  node
	fp [32]byte
	k  [30]uint64
	c  [31]*node
	_  [40]byte
}

//optiql:cacheline
type inner62 struct {
	n  node
	fp [64]byte
	k  [62]uint64
	c  [63]*node
	_  [8]byte
}

//optiql:cacheline
type inner126 struct {
	n  node
	fp [128]byte
	k  [126]uint64
	c  [127]*node
	_  [8]byte
}

//optiql:cacheline
type inner254 struct {
	n  node
	fp [256]byte
	k  [254]uint64
	c  [255]*node
	_  [8]byte
}

// heapFPs sizes the fingerprint slice for fanouts beyond the largest
// class: the fanout rounded up to whole SWAR words.
func heapFPs(fanout int) []byte {
	return make([]byte, (fanout+7)&^7)
}

// makeLeaf builds one leaf node as a single allocation of the given
// class, its slices aliasing the inline arrays trimmed to fanout. The
// fingerprint slice keeps the full padded capacity: the SWAR kernel
// reads whole words and the caller masks down to the live count.
func makeLeaf(class, fanout int) *node {
	switch class {
	case 0:
		x := new(leaf14)
		x.n.keys, x.n.values, x.n.fps = x.k[:fanout:fanout], x.v[:fanout:fanout], x.fp[:]
		return &x.n
	case 1:
		x := new(leaf30)
		x.n.keys, x.n.values, x.n.fps = x.k[:fanout:fanout], x.v[:fanout:fanout], x.fp[:]
		return &x.n
	case 2:
		x := new(leaf62)
		x.n.keys, x.n.values, x.n.fps = x.k[:fanout:fanout], x.v[:fanout:fanout], x.fp[:]
		return &x.n
	case 3:
		x := new(leaf126)
		x.n.keys, x.n.values, x.n.fps = x.k[:fanout:fanout], x.v[:fanout:fanout], x.fp[:]
		return &x.n
	case 4:
		x := new(leaf254)
		x.n.keys, x.n.values, x.n.fps = x.k[:fanout:fanout], x.v[:fanout:fanout], x.fp[:]
		return &x.n
	default:
		return &node{keys: make([]uint64, fanout), values: make([]uint64, fanout), fps: heapFPs(fanout)}
	}
}

// makeInner is makeLeaf for inner nodes (fanout keys, fanout+1 child
// pointers). The fp array holds the discriminating bytes of the
// prefix-truncated separator search (fp.go).
func makeInner(class, fanout int) *node {
	switch class {
	case 0:
		x := new(inner14)
		x.n.keys, x.n.children, x.n.fps = x.k[:fanout:fanout], x.c[:fanout+1:fanout+1], x.fp[:]
		return &x.n
	case 1:
		x := new(inner30)
		x.n.keys, x.n.children, x.n.fps = x.k[:fanout:fanout], x.c[:fanout+1:fanout+1], x.fp[:]
		return &x.n
	case 2:
		x := new(inner62)
		x.n.keys, x.n.children, x.n.fps = x.k[:fanout:fanout], x.c[:fanout+1:fanout+1], x.fp[:]
		return &x.n
	case 3:
		x := new(inner126)
		x.n.keys, x.n.children, x.n.fps = x.k[:fanout:fanout], x.c[:fanout+1:fanout+1], x.fp[:]
		return &x.n
	case 4:
		x := new(inner254)
		x.n.keys, x.n.children, x.n.fps = x.k[:fanout:fanout], x.c[:fanout+1:fanout+1], x.fp[:]
		return &x.n
	default:
		return &node{keys: make([]uint64, fanout), children: make([]*node, fanout+1), fps: heapFPs(fanout)}
	}
}

// newLeaf returns an empty leaf, reusing a recycled one when
// available. A recycled node keeps its lock — and therefore its
// monotone version history — so any optimistic reader that raced onto
// it through a stale pointer fails validation instead of trusting the
// reinitialized contents (see locks/recycle.go for the full argument).
// Stale fingerprints survive recycling unrebuilt: count is zero, and
// every fingerprint read is masked to the live count first.
func (t *Tree) newLeaf(c *locks.Ctx) *node {
	if x := t.leafFree.Get(c); x != nil {
		n := x.(*node)
		locks.BumpOnReuse(n.lock)
		n.count = 0
		n.next = nil
		return n
	}
	n := makeLeaf(t.class, t.fanout)
	n.lock = t.scheme.NewLeaf()
	n.leaf = true
	return n
}

// newInner returns an empty inner node, reusing a recycled one when
// available. Leaves and inner nodes recycle through separate lists:
// a node's role (and hence which inline arrays exist) is fixed for its
// entire lifetime, which is what lets traversal code trust a racily
// read n.leaf flag. Recycled prefix metadata (pshift/pfx) is stale
// until the first refreshInnerMeta, but count is zero so childIndex
// degenerates to slot 0 regardless.
func (t *Tree) newInner(c *locks.Ctx) *node {
	if x := t.innerFree.Get(c); x != nil {
		n := x.(*node)
		locks.BumpOnReuse(n.lock)
		n.count = 0
		return n
	}
	n := makeInner(t.class, t.fanout)
	n.lock = t.scheme.NewInner()
	return n
}

// freeNode recycles a node emptied by a merge or root collapse. The
// caller guarantees the node is unreachable from the structure and its
// exclusive lock has been released (the release bumped the version, so
// every in-flight optimistic reader that could still reach it fails
// validation). Child pointers are cleared so the free list never pins
// live subtrees; in-flight readers that race onto the cleared slots
// see nil, take the retry path, and restart.
func (t *Tree) freeNode(c *locks.Ctx, n *node) {
	n.count = 0
	if n.leaf {
		n.next = nil
		t.leafFree.Put(c, n)
		return
	}
	for i := range n.children {
		n.children[i] = nil
	}
	t.innerFree.Put(c, n)
}
