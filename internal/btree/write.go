package btree

import (
	"optiql/internal/locks"
	"optiql/internal/obs"
)

// Update sets the value of an existing key, returning whether the key
// was found. It implements Algorithm 4: optimistic traversal, then the
// leaf lock is taken exclusively *directly* (queueing under OptiQL
// instead of upgrade-retrying), and only then is the parent validated.
// Under the AOR scheme the opportunistic read window stays open through
// the leaf search and closes just before the value write.
func (t *Tree) Update(c *locks.Ctx, k, v uint64) bool {
	// retry counts a restart before re-entering; the first attempt
	// skips it (same pattern throughout the traversals).
	goto first
retry:
	c.Counters().Inc(obs.EvOpRestart)
	c.TraceRestart(k)
first:
	n := t.root.Load()
	if n.leaf {
		// Single-node tree: lock the root leaf directly.
		wtok := n.lock.AcquireEx(c)
		if n != t.root.Load() {
			n.lock.ReleaseEx(c, wtok)
			goto retry
		}
		ok := t.updateLocked(n, wtok, k, v)
		n.lock.ReleaseEx(c, wtok)
		return ok
	}
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		goto retry
	}
	if n != t.root.Load() {
		n.lock.ReleaseSh(c, tok)
		goto retry
	}
	for {
		child := n.children[n.childIndex(k)]
		if child == nil {
			n.lock.ReleaseSh(c, tok)
			goto retry
		}
		if child.leaf {
			// Lock the leaf directly (Alg 4 line 17), then validate
			// the parent (lines 21-23).
			wtok := child.lock.AcquireEx(c)
			if !n.lock.ReleaseSh(c, tok) {
				child.lock.ReleaseEx(c, wtok)
				goto retry
			}
			ok := t.updateLocked(child, wtok, k, v)
			child.lock.ReleaseEx(c, wtok)
			return ok
		}
		ctok, cok := child.lock.AcquireSh(c)
		if !cok {
			goto retry
		}
		if !n.lock.ReleaseSh(c, tok) {
			child.lock.ReleaseSh(c, ctok)
			goto retry
		}
		n, tok = child, ctok
	}
}

// updateLocked performs the in-leaf search and write while the leaf is
// exclusively held. The opportunistic read window (AOR) remains open
// during the search and is closed before the first modification.
func (t *Tree) updateLocked(n *node, wtok locks.Token, k, v uint64) bool {
	i, found := n.leafFind(k)
	n.lock.CloseWindow(wtok)
	if found {
		n.values[i] = v
	}
	return found
}

// Insert stores (k, v), returning true if the key was newly inserted
// and false if an existing key's value was overwritten. The fast path
// mirrors Update; when the target leaf is full the operation restarts
// in pessimistic mode, exclusively coupling down the tree and splitting
// bottom-up.
func (t *Tree) Insert(c *locks.Ctx, k, v uint64) bool {
	goto first
retry:
	c.Counters().Inc(obs.EvOpRestart)
	c.TraceRestart(k)
first:
	n := t.root.Load()
	if n.leaf {
		wtok := n.lock.AcquireEx(c)
		if n != t.root.Load() {
			n.lock.ReleaseEx(c, wtok)
			goto retry
		}
		if n.full() {
			if _, found := n.leafFind(k); !found {
				n.lock.ReleaseEx(c, wtok)
				t.insertPessimistic(c, k, v)
				return true
			}
		}
		ins := t.insertLocked(n, wtok, k, v)
		n.lock.ReleaseEx(c, wtok)
		return ins
	}
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		goto retry
	}
	if n != t.root.Load() {
		n.lock.ReleaseSh(c, tok)
		goto retry
	}
	for {
		child := n.children[n.childIndex(k)]
		if child == nil {
			n.lock.ReleaseSh(c, tok)
			goto retry
		}
		if child.leaf {
			wtok := child.lock.AcquireEx(c)
			if !n.lock.ReleaseSh(c, tok) {
				child.lock.ReleaseEx(c, wtok)
				goto retry
			}
			if child.full() {
				if _, found := child.leafFind(k); !found {
					// Needs a split: fall back to pessimistic insert.
					child.lock.ReleaseEx(c, wtok)
					t.insertPessimistic(c, k, v)
					return true
				}
			}
			ins := t.insertLocked(child, wtok, k, v)
			child.lock.ReleaseEx(c, wtok)
			return ins
		}
		ctok, cok := child.lock.AcquireSh(c)
		if !cok {
			goto retry
		}
		if !n.lock.ReleaseSh(c, tok) {
			child.lock.ReleaseSh(c, ctok)
			goto retry
		}
		n, tok = child, ctok
	}
}

// insertLocked inserts into a leaf known to have room (or updates in
// place), while the leaf is exclusively held.
func (t *Tree) insertLocked(n *node, wtok locks.Token, k, v uint64) bool {
	i, found := n.leafFind(k)
	n.lock.CloseWindow(wtok)
	if found {
		n.values[i] = v
		return false
	}
	copy(n.keys[i+1:n.count+1], n.keys[i:n.count])
	copy(n.values[i+1:n.count+1], n.values[i:n.count])
	n.fpInsert(i, n.count, k)
	n.keys[i] = k
	n.values[i] = v
	n.count++
	t.size.Add(1)
	return true
}

// held tracks an exclusively locked node during pessimistic descent.
type held struct {
	n   *node
	tok locks.Token
}

// insertPessimistic exclusively couples from the root to the target
// leaf, keeping locks on the chain of full ("unsafe") nodes that a
// split may propagate into, then inserts and splits bottom-up. This is
// the classic SMO path of pessimistic lock coupling, used by all
// schemes once the optimistic fast path has detected a full leaf.
func (t *Tree) insertPessimistic(c *locks.Ctx, k, v uint64) {
	goto first
retry:
	c.Counters().Inc(obs.EvOpRestart)
	c.TraceRestart(k)
first:
	n := t.root.Load()
	tok := n.lock.AcquireEx(c)
	if n != t.root.Load() {
		n.lock.ReleaseEx(c, tok)
		goto retry
	}
	stack := make([]held, 0, 8)
	stack = append(stack, held{n, tok})
	for !n.leaf {
		child := n.children[n.childIndex(k)]
		ctok := child.lock.AcquireEx(c)
		child.lock.CloseWindow(ctok)
		if !child.full() {
			// Child is safe: no split can propagate above it, so
			// release every ancestor.
			for _, h := range stack {
				h.n.lock.ReleaseEx(c, h.tok)
			}
			stack = stack[:0]
		}
		stack = append(stack, held{child, ctok})
		n = child
	}
	// The root lock (or a safe ancestor) pins the structure; close any
	// AOR windows on the chain before modifying.
	for _, h := range stack {
		h.n.lock.CloseWindow(h.tok)
	}
	t.insertAndSplit(c, stack, k, v)
	for _, h := range stack {
		h.n.lock.ReleaseEx(c, h.tok)
	}
}

// insertAndSplit inserts (k, v) into the leaf at the top of the locked
// stack, splitting upward through the locked ancestors as needed.
func (t *Tree) insertAndSplit(c *locks.Ctx, stack []held, k, v uint64) {
	leaf := stack[len(stack)-1].n
	if i, found := leaf.leafFind(k); found {
		leaf.values[i] = v
		return
	}
	if !leaf.full() {
		t.insertIntoLeaf(leaf, k, v)
		t.size.Add(1)
		return
	}
	// Split the leaf. The new key goes into its half before the right
	// sibling is published anywhere (sibling pointer or parent slot),
	// so no traversal can observe the sibling mid-modification.
	sep, right := t.splitLeaf(c, leaf)
	c.Counters().Inc(obs.EvBTreeSplit)
	if k >= sep {
		t.insertIntoLeaf(right, k, v)
	} else {
		t.insertIntoLeaf(leaf, k, v)
	}
	right.next = leaf.next
	leaf.next = right
	t.size.Add(1)
	t.propagateSplit(c, stack, len(stack)-2, sep, right)
}

// propagateSplit inserts separator sep and new right node into the
// ancestor at stack[idx], splitting it as needed. idx == -1 means the
// split reached the root (stack[0]), which grows the tree by one level.
func (t *Tree) propagateSplit(c *locks.Ctx, stack []held, idx int, sep uint64, right *node) {
	if idx < 0 {
		// stack[0] is the root and it just split (or it is a leaf that
		// split): grow a new root.
		old := stack[0].n
		newRoot := t.newInner(c)
		newRoot.keys[0] = sep
		newRoot.children[0] = old
		newRoot.children[1] = right
		newRoot.count = 1
		newRoot.refreshInnerMeta()
		t.root.Store(newRoot)
		return
	}
	parent := stack[idx].n
	if !parent.full() {
		t.insertIntoInner(parent, sep, right)
		return
	}
	psep, pright := t.splitInner(c, parent)
	c.Counters().Inc(obs.EvBTreeSplit)
	if sep >= psep {
		t.insertIntoInner(pright, sep, right)
	} else {
		t.insertIntoInner(parent, sep, right)
	}
	t.propagateSplit(c, stack, idx-1, psep, pright)
}

// splitLeaf moves the upper half of leaf into a fresh right sibling and
// returns the separator (first key of the right node) and the sibling.
// The caller holds the leaf exclusively and is responsible for linking
// the sibling chain after any pending insert into the new node.
func (t *Tree) splitLeaf(c *locks.Ctx, n *node) (uint64, *node) {
	right := t.newLeaf(c)
	mid := n.count / 2
	copy(right.keys, n.keys[mid:n.count])
	copy(right.values, n.values[mid:n.count])
	copy(right.fps, n.fps[mid:n.count])
	right.count = n.count - mid
	n.count = mid
	return right.keys[0], right
}

// splitInner moves the upper half of an inner node into a fresh right
// sibling, returning the separator pushed up and the sibling.
func (t *Tree) splitInner(c *locks.Ctx, n *node) (uint64, *node) {
	right := t.newInner(c)
	mid := n.count / 2
	sep := n.keys[mid]
	copy(right.keys, n.keys[mid+1:n.count])
	copy(right.children, n.children[mid+1:n.count+1])
	right.count = n.count - mid - 1
	n.count = mid
	n.refreshInnerMeta()
	right.refreshInnerMeta()
	return sep, right
}

func (t *Tree) insertIntoLeaf(n *node, k, v uint64) {
	i, _ := n.leafFind(k)
	copy(n.keys[i+1:n.count+1], n.keys[i:n.count])
	copy(n.values[i+1:n.count+1], n.values[i:n.count])
	n.fpInsert(i, n.count, k)
	n.keys[i] = k
	n.values[i] = v
	n.count++
}

func (t *Tree) insertIntoInner(n *node, sep uint64, right *node) {
	i := n.lowerBound(sep)
	copy(n.keys[i+1:n.count+1], n.keys[i:n.count])
	copy(n.children[i+2:n.count+2], n.children[i+1:n.count+1])
	n.keys[i] = sep
	n.children[i+1] = right
	n.count++
	n.refreshInnerMeta()
}

// Delete removes k, returning whether it was present. The fast path
// removes in place under the leaf's exclusive lock (Algorithm-4 style:
// lock the leaf directly, then validate the parent); when the removal
// would underflow the leaf, the operation restarts pessimistically and
// rebalances by borrowing from or merging with a sibling (delete.go).
func (t *Tree) Delete(c *locks.Ctx, k uint64) bool {
	goto first
retry:
	c.Counters().Inc(obs.EvOpRestart)
	c.TraceRestart(k)
first:
	n := t.root.Load()
	if n.leaf {
		wtok := n.lock.AcquireEx(c)
		if n != t.root.Load() {
			n.lock.ReleaseEx(c, wtok)
			goto retry
		}
		ok := t.deleteLocked(n, wtok, k)
		n.lock.ReleaseEx(c, wtok)
		return ok
	}
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		goto retry
	}
	if n != t.root.Load() {
		n.lock.ReleaseSh(c, tok)
		goto retry
	}
	for {
		child := n.children[n.childIndex(k)]
		if child == nil {
			n.lock.ReleaseSh(c, tok)
			goto retry
		}
		if child.leaf {
			wtok := child.lock.AcquireEx(c)
			if !n.lock.ReleaseSh(c, tok) {
				child.lock.ReleaseEx(c, wtok)
				goto retry
			}
			if _, found := child.leafFind(k); found && child.count-1 < t.minKeys() {
				// Removal would underflow the leaf: rebalance through
				// the pessimistic SMO path instead.
				child.lock.ReleaseEx(c, wtok)
				return t.deletePessimistic(c, k)
			}
			ok := t.deleteLocked(child, wtok, k)
			child.lock.ReleaseEx(c, wtok)
			return ok
		}
		ctok, cok := child.lock.AcquireSh(c)
		if !cok {
			goto retry
		}
		if !n.lock.ReleaseSh(c, tok) {
			child.lock.ReleaseSh(c, ctok)
			goto retry
		}
		n, tok = child, ctok
	}
}

func (t *Tree) deleteLocked(n *node, wtok locks.Token, k uint64) bool {
	i, found := n.leafFind(k)
	n.lock.CloseWindow(wtok)
	if !found {
		return false
	}
	copy(n.keys[i:n.count-1], n.keys[i+1:n.count])
	copy(n.values[i:n.count-1], n.values[i+1:n.count])
	n.fpDelete(i, n.count)
	n.count--
	t.size.Add(-1)
	return true
}
