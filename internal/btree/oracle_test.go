package btree

import (
	"testing"

	"optiql/internal/indextest"
	"optiql/internal/locks"
)

// oracleOptions adapts the B+-tree to the shared concurrent oracle
// harness, wiring the white-box invariant checker in as the post-run
// structural verification.
func oracleOptions(nodeSize int) indextest.Options {
	return indextest.Options{
		New: func(s *locks.Scheme) (indextest.Index, error) {
			tr, err := New(Config{Scheme: s, NodeSize: nodeSize})
			if err != nil {
				return nil, err
			}
			return tr, nil
		},
		Scan: func(idx indextest.Index, c *locks.Ctx, start uint64, max int) []indextest.KV {
			return idx.(*Tree).Scan(c, start, max, nil)
		},
		Invariants: func(t *testing.T, idx indextest.Index) { checkInvariants(t, idx.(*Tree)) },
	}
}

// TestConcurrentOracle runs the striped-key mixed workload across all
// paper schemes (exclusive-only schemes are skipped by the harness)
// and verifies exact final contents plus structural invariants.
func TestConcurrentOracle(t *testing.T) {
	indextest.Run(t, oracleOptions(256))
}

// TestConcurrentOracleSmallNodes uses fanout-4 nodes so splits and
// merges fire constantly, exercising deep SMO chains under load.
func TestConcurrentOracleSmallNodes(t *testing.T) {
	o := oracleOptions(96)
	o.Schemes = []string{"OptiQL", "OptLock", "MCS-RW"}
	o.Keyspace = 1024
	indextest.Run(t, o)
}

// TestConcurrentOracleChurn is the recycle-stress workload:
// insert/delete floods force continuous split/merge/free cycles, so
// freed nodes are constantly republished from the per-Ctx free lists
// while concurrent readers validate against their bumped versions.
// Small nodes keep the structural-modification rate high. Under -race
// the harness runs the pessimistic schemes, checking the recycler's
// happens-before edges.
func TestConcurrentOracleChurn(t *testing.T) {
	o := oracleOptions(96)
	o.Churn = true
	o.Keyspace = 1024
	indextest.Run(t, o)
}
