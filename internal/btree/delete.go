package btree

import (
	"optiql/internal/locks"
	"optiql/internal/obs"
)

// minFill is the underflow threshold: a leaf (or inner node) holding
// fewer than fanout/minFillDiv keys after a delete is rebalanced by
// borrowing from or merging with a sibling. The fast path deletes
// in place; rebalancing restarts in pessimistic mode like insert SMOs.
const minFillDiv = 4

func (t *Tree) minKeys() int {
	m := t.fanout / minFillDiv
	if m < 1 {
		m = 1
	}
	return m
}

// deletePessimistic exclusively couples from the root to the leaf,
// keeping locks on the chain of nodes that could underflow, removes
// the key, and rebalances bottom-up (borrow from a sibling when it has
// spare keys, merge otherwise). Returns whether the key was present.
func (t *Tree) deletePessimistic(c *locks.Ctx, k uint64) bool {
	goto first
retry:
	c.Counters().Inc(obs.EvOpRestart)
	c.TraceRestart(k)
first:
	n := t.root.Load()
	tok := n.lock.AcquireEx(c)
	n.lock.CloseWindow(tok)
	if n != t.root.Load() {
		n.lock.ReleaseEx(c, tok)
		goto retry
	}
	stack := make([]held, 0, 8)
	childIdx := make([]int, 0, 8) // childIdx[i] = slot taken out of stack[i].n
	stack = append(stack, held{n, tok})
	for !n.leaf {
		i := n.childIndex(k)
		child := n.children[i]
		ctok := child.lock.AcquireEx(c)
		child.lock.CloseWindow(ctok)
		if child.count > t.minKeys() {
			// Child cannot underflow: release every ancestor.
			for _, h := range stack {
				h.n.lock.ReleaseEx(c, h.tok)
			}
			stack = stack[:0]
			childIdx = childIdx[:0]
		}
		// Keep the alignment childIdx[j] == slot of stack[j+1] within
		// stack[j]: when the stack was just reset, child becomes its
		// new bottom and records no slot.
		if len(stack) > 0 {
			childIdx = append(childIdx, i)
		}
		stack = append(stack, held{child, ctok})
		n = child
	}
	removed, freeRoot := t.deleteAndRebalance(c, stack, childIdx, k)
	for _, h := range stack {
		// A left-merge clears its stack entry after releasing and
		// recycling the merged-away node (rebalance).
		if h.n != nil {
			h.n.lock.ReleaseEx(c, h.tok)
		}
	}
	if freeRoot != nil {
		// The collapsed root's lock (stack[0]) is released above; only
		// now is it safe to recycle the node.
		t.freeNode(c, freeRoot)
	}
	return removed
}

// deleteAndRebalance removes k from the leaf at the top of the locked
// stack and restores fill invariants up the locked chain.
// childIdx[i] is the slot of stack[i+1].n within stack[i].n.
// freeRoot, when non-nil, is a collapsed root the caller must recycle
// after releasing the stack (its lock is stack[0]'s).
func (t *Tree) deleteAndRebalance(c *locks.Ctx, stack []held, childIdx []int, k uint64) (removed bool, freeRoot *node) {
	leaf := stack[len(stack)-1].n
	i, found := leaf.leafFind(k)
	if !found {
		return false, nil
	}
	copy(leaf.keys[i:leaf.count-1], leaf.keys[i+1:leaf.count])
	copy(leaf.values[i:leaf.count-1], leaf.values[i+1:leaf.count])
	leaf.fpDelete(i, leaf.count)
	leaf.count--
	t.size.Add(-1)

	// Rebalance from the leaf upward through the locked ancestors.
	for level := len(stack) - 1; level > 0; level-- {
		if stack[level].n.count >= t.minKeys() {
			break
		}
		parent := stack[level-1].n
		slot := childIdx[level-1]
		if !t.rebalance(c, parent, slot, &stack[level]) {
			break // borrowed; no parent key count change
		}
	}
	// Collapse the root if it is an inner node with a single child.
	root := stack[0].n
	if root == t.root.Load() && !root.leaf && root.count == 0 {
		t.root.Store(root.children[0])
		freeRoot = root
	}
	return true, freeRoot
}

// rebalance fixes the underfull child at parent.children[slot] by
// borrowing from an adjacent sibling when possible, merging otherwise.
// It returns true iff a merge removed a separator from the parent
// (which may then itself underflow). The parent and h.n are
// exclusively held.
//
// Lock ordering: every code path that holds two children at once —
// coupled scans walking the sibling chain and this function — acquires
// them left to right, which rules out deadlock under pessimistic
// schemes. For a right sibling that order is natural; to involve the
// LEFT sibling, h.n is released first, the pair is re-acquired in
// order, and the underflow condition is re-checked (the exclusively
// held parent keeps the sibling relationship itself stable).
func (t *Tree) rebalance(c *locks.Ctx, parent *node, slot int, h *held) (merged bool) {
	n := h.n
	// Prefer the right sibling, fall back to the left.
	if slot < parent.count {
		sib := parent.children[slot+1]
		stok := sib.lock.AcquireEx(c)
		sib.lock.CloseWindow(stok)
		if sib.count > t.minKeys() {
			t.borrowFromRight(parent, slot, n, sib)
			sib.lock.ReleaseEx(c, stok)
			return false
		}
		t.mergeRightInto(parent, slot, n, sib)
		c.Counters().Inc(obs.EvBTreeMerge)
		// sib is empty and unlinked; release (bumping the version all
		// in-flight optimistic readers of sib validate against) and
		// recycle it.
		sib.lock.ReleaseEx(c, stok)
		t.freeNode(c, sib)
		return true
	}
	if slot > 0 {
		sib := parent.children[slot-1]
		// Re-acquire left to right.
		n.lock.ReleaseEx(c, h.tok)
		stok := sib.lock.AcquireEx(c)
		sib.lock.CloseWindow(stok)
		h.tok = n.lock.AcquireEx(c)
		n.lock.CloseWindow(h.tok)
		if n.count >= t.minKeys() {
			// A fast-path insert refilled the node while it was
			// unlocked: nothing to rebalance anymore.
			sib.lock.ReleaseEx(c, stok)
			return false
		}
		if sib.count > t.minKeys() {
			t.borrowFromLeft(parent, slot, n, sib)
			sib.lock.ReleaseEx(c, stok)
			return false
		}
		// Merge n into its left sibling: same as merging "right into
		// left" with roles shifted one slot. n is then dead: release it
		// here, recycle it, and clear the stack entry so the caller's
		// release loop skips it.
		t.mergeRightInto(parent, slot-1, sib, n)
		c.Counters().Inc(obs.EvBTreeMerge)
		sib.lock.ReleaseEx(c, stok)
		n.lock.ReleaseEx(c, h.tok)
		h.n = nil
		t.freeNode(c, n)
		return true
	}
	// Root child with no siblings: nothing to do.
	return false
}

// borrowFromRight moves the right sibling's first entry into n and
// refreshes the separator (plus the fingerprint/prefix metadata of
// every node whose keys changed).
func (t *Tree) borrowFromRight(parent *node, slot int, n, sib *node) {
	if n.leaf {
		n.keys[n.count] = sib.keys[0]
		n.values[n.count] = sib.values[0]
		n.fps[n.count] = sib.fps[0]
		n.count++
		copy(sib.keys[0:sib.count-1], sib.keys[1:sib.count])
		copy(sib.values[0:sib.count-1], sib.values[1:sib.count])
		sib.fpDelete(0, sib.count)
		sib.count--
		parent.keys[slot] = sib.keys[0]
		parent.refreshInnerMeta()
		return
	}
	// Inner: rotate through the parent separator.
	n.keys[n.count] = parent.keys[slot]
	n.children[n.count+1] = sib.children[0]
	n.count++
	parent.keys[slot] = sib.keys[0]
	copy(sib.keys[0:sib.count-1], sib.keys[1:sib.count])
	copy(sib.children[0:sib.count], sib.children[1:sib.count+1])
	sib.count--
	n.refreshInnerMeta()
	sib.refreshInnerMeta()
	parent.refreshInnerMeta()
}

// borrowFromLeft moves the left sibling's last entry into n and
// refreshes the separator. slot is n's position in the parent.
func (t *Tree) borrowFromLeft(parent *node, slot int, n, sib *node) {
	if n.leaf {
		copy(n.keys[1:n.count+1], n.keys[0:n.count])
		copy(n.values[1:n.count+1], n.values[0:n.count])
		n.fpInsert(0, n.count, sib.keys[sib.count-1])
		n.keys[0] = sib.keys[sib.count-1]
		n.values[0] = sib.values[sib.count-1]
		n.count++
		sib.count--
		parent.keys[slot-1] = n.keys[0]
		parent.refreshInnerMeta()
		return
	}
	copy(n.keys[1:n.count+1], n.keys[0:n.count])
	copy(n.children[1:n.count+2], n.children[0:n.count+1])
	n.keys[0] = parent.keys[slot-1]
	n.children[0] = sib.children[sib.count]
	n.count++
	parent.keys[slot-1] = sib.keys[sib.count-1]
	sib.count--
	n.refreshInnerMeta()
	sib.refreshInnerMeta()
	parent.refreshInnerMeta()
}

// mergeRightInto folds right (parent.children[slot+1]) into left
// (parent.children[slot]) and removes the separator at slot. Both
// children and the parent are exclusively held. The emptied right node
// stays consistent for concurrent optimistic readers until the caller
// releases and recycles it: its count drops to zero and its sibling
// pointer keeps pointing onward, and any in-flight reader that reaches
// it fails validation against the version bump of that release before
// trusting anything it read.
func (t *Tree) mergeRightInto(parent *node, slot int, left, right *node) {
	if left.leaf {
		copy(left.keys[left.count:left.count+right.count], right.keys[:right.count])
		copy(left.values[left.count:left.count+right.count], right.values[:right.count])
		copy(left.fps[left.count:left.count+right.count], right.fps[:right.count])
		left.count += right.count
		right.count = 0
		left.next = right.next
	} else {
		left.keys[left.count] = parent.keys[slot]
		copy(left.keys[left.count+1:left.count+1+right.count], right.keys[:right.count])
		copy(left.children[left.count+1:left.count+2+right.count], right.children[:right.count+1])
		left.count += right.count + 1
		right.count = 0
		left.refreshInnerMeta()
	}
	// Remove separator `slot` and the right child pointer from parent.
	copy(parent.keys[slot:parent.count-1], parent.keys[slot+1:parent.count])
	copy(parent.children[slot+1:parent.count], parent.children[slot+2:parent.count+1])
	parent.count--
	parent.refreshInnerMeta()
}
