package btree

import (
	"testing"

	"optiql/internal/core"
	"optiql/internal/locks"
	"optiql/internal/obs"
)

// flakyLock wraps a lock and forces the next *fails validations to
// fail, bumping the validation-failure counter as a real adapter
// would. It turns restart paths deterministic: exactly one restart per
// forced failure, with no concurrency involved.
type flakyLock struct {
	locks.Lock
	fails *int
}

func (f flakyLock) ReleaseSh(c *locks.Ctx, t locks.Token) bool {
	ok := f.Lock.ReleaseSh(c, t)
	if ok && *f.fails > 0 {
		*f.fails--
		c.Counters().Inc(obs.EvShValidateFail)
		return false
	}
	return ok
}

// flakyScheme is an OptLock scheme whose validations fail the first
// *fails times across all nodes.
func flakyScheme(fails *int) *locks.Scheme {
	newLock := func() locks.Lock { return flakyLock{new(locks.OptLock), fails} }
	return &locks.Scheme{
		Name:       "FlakyOptLock",
		Optimistic: true,
		SharedMode: true,
		NewLock:    newLock,
		NewInner:   newLock,
		NewLeaf:    newLock,
	}
}

// TestRestartCounterExact drives Lookup against a lock that fails
// validation exactly N times and asserts exactly N restarts were
// counted (and none on a clean run).
func TestRestartCounterExact(t *testing.T) {
	const forced = 5
	fails := 0
	tr := MustNew(Config{Scheme: flakyScheme(&fails)})
	pool := core.NewPool(8)
	reg := obs.NewRegistry()
	c := locks.NewCtx(pool, 4)
	c.SetCounters(reg.NewCounters())
	defer c.Close()

	tr.Insert(c, 7, 70)
	base := reg.Snapshot() // discard anything the setup insert counted

	if v, ok := tr.Lookup(c, 7); !ok || v != 70 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	if got := reg.Snapshot().Get(obs.EvOpRestart) - base.Get(obs.EvOpRestart); got != 0 {
		t.Fatalf("clean lookup counted %d restarts", got)
	}

	fails = forced
	if v, ok := tr.Lookup(c, 7); !ok || v != 70 {
		t.Fatalf("Lookup after forced failures = %d,%v", v, ok)
	}
	snap := reg.Snapshot()
	if got := snap.Get(obs.EvOpRestart) - base.Get(obs.EvOpRestart); got != forced {
		t.Fatalf("op_restart = %d, want %d", got, forced)
	}
	if got := snap.Get(obs.EvShValidateFail) - base.Get(obs.EvShValidateFail); got != forced {
		t.Fatalf("sh_validate_fail = %d, want %d", got, forced)
	}
}

// countNodes walks the quiescent tree, returning total node count and
// height in levels.
func countNodes(tr *Tree) (nodes, height int) {
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		nodes++
		if depth > height {
			height = depth
		}
		if !n.leaf {
			for i := 0; i <= n.count; i++ {
				walk(n.children[i], depth+1)
			}
		}
	}
	walk(tr.root.Load(), 1)
	return
}

// TestSplitMergeCounters checks the structure-modification counters
// against the tree's actual shape: every split creates exactly one
// node (root growth creates one per extra level, uncounted), and every
// merge removes one (root collapse removes one per lost level).
func TestSplitMergeCounters(t *testing.T) {
	const n = 500
	tr := MustNew(Config{Scheme: locks.MustByName("OptLock"), NodeSize: 64}) // fanout 4
	pool := core.NewPool(8)
	reg := obs.NewRegistry()
	c := locks.NewCtx(pool, 4)
	c.SetCounters(reg.NewCounters())
	defer c.Close()

	for k := uint64(0); k < n; k++ {
		tr.Insert(c, k, k)
	}
	nodes, height := countNodes(tr)
	snap := reg.Snapshot()
	wantSplits := uint64(nodes - height) // nodes = 1 + splits + (height-1)
	if got := snap.Get(obs.EvBTreeSplit); got != wantSplits {
		t.Errorf("btree_split = %d, want %d (%d nodes, height %d)", got, wantSplits, nodes, height)
	}
	if snap.Get(obs.EvBTreeMerge) != 0 {
		t.Errorf("btree_merge = %d before any delete", snap.Get(obs.EvBTreeMerge))
	}

	for k := uint64(0); k < n; k++ {
		if !tr.Delete(c, k) {
			t.Fatalf("Delete(%d) missed", k)
		}
	}
	nodesAfter, heightAfter := countNodes(tr)
	snap = reg.Snapshot()
	wantMerges := uint64((nodes - nodesAfter) - (height - heightAfter))
	if got := snap.Get(obs.EvBTreeMerge); got != wantMerges {
		t.Errorf("btree_merge = %d, want %d (%d->%d nodes, height %d->%d)",
			got, wantMerges, nodes, nodesAfter, height, heightAfter)
	}
}
