package btree

import (
	"optiql/internal/locks"
	"optiql/internal/obs"
)

// Lookup returns the value stored under k. The traversal is optimistic
// lock coupling: each node's version is validated after the child has
// been reached, and the whole operation restarts on any validation
// failure. Under pessimistic schemes the same code degrades gracefully
// to shared lock coupling (acquisitions block, validation always
// passes).
func (t *Tree) Lookup(c *locks.Ctx, k uint64) (uint64, bool) {
	// The first attempt enters at first; every failed validation or
	// structural recheck jumps to retry, which counts the restart and
	// falls through — so the happy path costs nothing.
	goto first
retry:
	c.Counters().Inc(obs.EvOpRestart)
first:
	n := t.root.Load()
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		goto retry
	}
	if n != t.root.Load() {
		n.lock.ReleaseSh(c, tok)
		goto retry
	}
	for !n.leaf {
		child := n.children[n.childIndex(k)]
		if child == nil {
			n.lock.ReleaseSh(c, tok)
			goto retry
		}
		ctok, cok := child.lock.AcquireSh(c)
		if !cok {
			// Optimistic only: nothing is held, so just retry.
			goto retry
		}
		if !n.lock.ReleaseSh(c, tok) {
			child.lock.ReleaseSh(c, ctok)
			goto retry
		}
		n, tok = child, ctok
	}
	i, found := n.leafFind(k)
	var v uint64
	if found {
		v = n.values[i]
	}
	if !n.lock.ReleaseSh(c, tok) {
		goto retry
	}
	return v, found
}

// KV is a key/value pair returned by Scan.
type KV struct {
	Key   uint64
	Value uint64
}

// Scan collects up to max pairs with keys >= start in ascending order,
// appending to out and returning the extended slice. It descends to the
// first relevant leaf and then walks the sibling chain with coupled
// per-leaf validation: a failed validation discards the current leaf's
// batch and restarts the scan from the first uncollected key.
func (t *Tree) Scan(c *locks.Ctx, start uint64, max int, out []KV) []KV {
	if max <= 0 {
		return out
	}
	resume := start
	tmp := make([]KV, 0, 16)
	goto first
retry:
	c.Counters().Inc(obs.EvOpRestart)
first:
	if len(out) >= max {
		return out
	}
	// Descend to the leaf covering resume.
	n := t.root.Load()
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		goto retry
	}
	if n != t.root.Load() {
		n.lock.ReleaseSh(c, tok)
		goto retry
	}
	for !n.leaf {
		child := n.children[n.childIndex(resume)]
		if child == nil {
			n.lock.ReleaseSh(c, tok)
			goto retry
		}
		ctok, cok := child.lock.AcquireSh(c)
		if !cok {
			goto retry
		}
		if !n.lock.ReleaseSh(c, tok) {
			child.lock.ReleaseSh(c, ctok)
			goto retry
		}
		n, tok = child, ctok
	}
	// Walk the sibling chain.
	for {
		tmp = tmp[:0]
		cnt := n.clampedCount()
		for i := n.lowerBound(resume); i < cnt && len(out)+len(tmp) < max; i++ {
			tmp = append(tmp, KV{n.keys[i], n.values[i]})
		}
		nxt := n.next
		var ntok locks.Token
		if nxt != nil && len(out)+len(tmp) < max {
			var nok bool
			ntok, nok = nxt.lock.AcquireSh(c)
			if !nok {
				n.lock.ReleaseSh(c, tok)
				goto retry
			}
		} else {
			nxt = nil
		}
		if !n.lock.ReleaseSh(c, tok) {
			if nxt != nil {
				nxt.lock.ReleaseSh(c, ntok)
			}
			goto retry
		}
		// This leaf's batch is now validated: commit it.
		out = append(out, tmp...)
		if len(tmp) > 0 {
			last := tmp[len(tmp)-1].Key
			if last == ^uint64(0) {
				if nxt != nil {
					nxt.lock.ReleaseSh(c, ntok)
				}
				return out
			}
			resume = last + 1
		}
		if nxt == nil {
			return out
		}
		n, tok = nxt, ntok
	}
}
