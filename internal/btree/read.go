package btree

import (
	"optiql/internal/kv"
	"optiql/internal/locks"
	"optiql/internal/obs"
	"optiql/internal/simd"
)

// prefetchNode warms the first cache line of a node's key array ahead
// of its use. The descent calls it on the chosen child before
// acquiring the child's lock and validating the parent, so the key
// array's cache miss overlaps with that latency instead of following
// it. The child pointer was read racily; the bounds check keeps even
// a half-initialized node memory-safe (slice headers are written once
// at construction, but this code cannot rely on having observed them).
//
//optiql:noalloc
func prefetchNode(n *node) {
	if ks := n.keys; len(ks) > 0 {
		simd.PrefetchU64(&ks[0])
	}
}

// Lookup returns the value stored under k. The traversal is optimistic
// lock coupling: each node's version is validated after the child has
// been reached, and the whole operation restarts on any validation
// failure. Under pessimistic schemes the same code degrades gracefully
// to shared lock coupling (acquisitions block, validation always
// passes).
//
//optiql:noalloc
func (t *Tree) Lookup(c *locks.Ctx, k uint64) (uint64, bool) {
	// The first attempt enters at first; every failed validation or
	// structural recheck jumps to retry, which counts the restart and
	// falls through — so the happy path costs nothing.
	goto first
retry:
	c.Counters().Inc(obs.EvOpRestart)
	c.TraceRestart(k)
first:
	n := t.root.Load()
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		goto retry
	}
	if n != t.root.Load() {
		n.lock.ReleaseSh(c, tok)
		goto retry
	}
	for !n.leaf {
		child := n.children[n.childIndex(k)]
		if child == nil {
			n.lock.ReleaseSh(c, tok)
			goto retry
		}
		prefetchNode(child)
		ctok, cok := child.lock.AcquireSh(c)
		if !cok {
			// Optimistic only: nothing is held, so just retry.
			goto retry
		}
		if !n.lock.ReleaseSh(c, tok) {
			child.lock.ReleaseSh(c, ctok)
			goto retry
		}
		n, tok = child, ctok
	}
	v, found := n.leafGet(k)
	if !n.lock.ReleaseSh(c, tok) {
		goto retry
	}
	return v, found
}

// KV is a key/value pair returned by Scan. It aliases the repo-wide
// pair type so server scan buffers pass through without conversion.
type KV = kv.KV

// Scan appends up to max pairs with keys >= start in ascending order
// to out and returns the extended slice; any pairs already in out are
// left alone and do not count against max. It descends to the first
// relevant leaf and then walks the sibling chain with coupled per-leaf
// validation: a failed validation discards the current leaf's batch
// and restarts the scan from the first uncollected key.
//
//optiql:noalloc
func (t *Tree) Scan(c *locks.Ctx, start uint64, max int, out []KV) []KV {
	if max <= 0 {
		return out
	}
	limit := len(out) + max
	resume := start
	// Per-leaf staging buffer: stack storage for the common fanouts;
	// larger fanouts stage in the worker's Ctx scratch, which is lazily
	// grown once and reused, so steady-state scans are allocation-free
	// at any fanout.
	var tmpa [64]KV
	tmp := tmpa[:0]
	if t.fanout > len(tmpa) {
		tmp = c.ScanStage(t.fanout)
	}
	goto first
retry:
	c.Counters().Inc(obs.EvOpRestart)
	c.TraceRestart(resume)
first:
	if len(out) >= limit {
		return out
	}
	// Descend to the leaf covering resume.
	n := t.root.Load()
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		goto retry
	}
	if n != t.root.Load() {
		n.lock.ReleaseSh(c, tok)
		goto retry
	}
	for !n.leaf {
		child := n.children[n.childIndex(resume)]
		if child == nil {
			n.lock.ReleaseSh(c, tok)
			goto retry
		}
		prefetchNode(child)
		ctok, cok := child.lock.AcquireSh(c)
		if !cok {
			goto retry
		}
		if !n.lock.ReleaseSh(c, tok) {
			child.lock.ReleaseSh(c, ctok)
			goto retry
		}
		n, tok = child, ctok
	}
	// Walk the sibling chain.
	for {
		tmp = tmp[:0]
		cnt := n.clampedCount()
		for i := n.lowerBound(resume); i < cnt && len(out)+len(tmp) < limit; i++ {
			tmp = append(tmp, KV{Key: n.keys[i], Value: n.values[i]})
		}
		nxt := n.next
		var ntok locks.Token
		if nxt != nil {
			// Warm the next leaf while this one's batch is validated
			// and committed.
			prefetchNode(nxt)
		}
		if nxt != nil && len(out)+len(tmp) < limit {
			var nok bool
			ntok, nok = nxt.lock.AcquireSh(c)
			if !nok {
				n.lock.ReleaseSh(c, tok)
				goto retry
			}
		} else {
			nxt = nil
		}
		if !n.lock.ReleaseSh(c, tok) {
			if nxt != nil {
				nxt.lock.ReleaseSh(c, ntok)
			}
			goto retry
		}
		// This leaf's batch is now validated: commit it.
		out = append(out, tmp...)
		if len(tmp) > 0 {
			last := tmp[len(tmp)-1].Key
			if last == ^uint64(0) {
				if nxt != nil {
					//optiqlvet:ignore shcheck nothing was read under ntok yet; the token is dropped unused, so there is no value to validate
					nxt.lock.ReleaseSh(c, ntok)
				}
				return out
			}
			resume = last + 1
		}
		if nxt == nil {
			return out
		}
		n, tok = nxt, ntok
	}
}
