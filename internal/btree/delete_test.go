package btree

import (
	"math/rand"
	"sync"
	"testing"

	"optiql/internal/indextest"
	"optiql/internal/locks"
)

// TestDeleteRebalanceDrain inserts a large population and deletes all
// of it, checking structure at checkpoints: merges must keep every
// lookup correct and eventually collapse the tree back toward a root
// leaf.
func TestDeleteRebalanceDrain(t *testing.T) {
	for _, scheme := range []string{"OptiQL", "OptLock", "MCS-RW"} {
		t.Run(scheme, func(t *testing.T) {
			tr, pool := newTree(t, scheme, 256)
			c := ctxFor(t, pool)
			const n = 20000
			for i := uint64(0); i < n; i++ {
				tr.Insert(c, i, i)
			}
			grownHeight := tr.Height()
			if grownHeight < 3 {
				t.Fatalf("tree too shallow to exercise merges: height %d", grownHeight)
			}
			rng := rand.New(rand.NewSource(42))
			perm := rng.Perm(n)
			for idx, kRaw := range perm {
				k := uint64(kRaw)
				if !tr.Delete(c, k) {
					t.Fatalf("delete miss for %d", k)
				}
				if idx%5000 == 4999 {
					checkInvariants(t, tr)
				}
			}
			if tr.Len() != 0 {
				t.Fatalf("Len = %d after draining", tr.Len())
			}
			checkInvariants(t, tr)
			if tr.Height() >= grownHeight {
				t.Fatalf("tree did not shrink: height %d (was %d)", tr.Height(), grownHeight)
			}
			// The tree must remain fully usable.
			for i := uint64(0); i < 100; i++ {
				tr.Insert(c, i, i+1)
			}
			for i := uint64(0); i < 100; i++ {
				if v, ok := tr.Lookup(c, i); !ok || v != i+1 {
					t.Fatalf("lookup %d after drain+refill = (%d, %v)", i, v, ok)
				}
			}
			checkInvariants(t, tr)
		})
	}
}

// TestDeleteBorrowPaths forces both borrow directions with a tiny
// fanout and targeted deletions.
func TestDeleteBorrowPaths(t *testing.T) {
	tr, pool := newTree(t, "OptiQL", 96) // fanout 4
	c := ctxFor(t, pool)
	const n = 64
	for i := uint64(0); i < n; i++ {
		tr.Insert(c, i, i)
	}
	checkInvariants(t, tr)
	// Delete from the front (borrow/merge with right siblings).
	for i := uint64(0); i < n/2; i++ {
		if !tr.Delete(c, i) {
			t.Fatalf("delete miss %d", i)
		}
		checkInvariants(t, tr)
	}
	// Delete from the back (borrow/merge with left siblings).
	for i := n - 1; i >= n/2; i-- {
		if !tr.Delete(c, uint64(i)) {
			t.Fatalf("delete miss %d", i)
		}
		checkInvariants(t, tr)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

// TestDeleteInterleavedWithScan verifies that scans passing through
// merged-away leaves stay correct.
func TestDeleteInterleavedWithScan(t *testing.T) {
	indextest.SkipIfOptimisticRace(t, locks.MustByName("OptiQL"))
	tr, pool := newTree(t, "OptiQL", 96)
	c := ctxFor(t, pool)
	const n = 2000
	for i := uint64(0); i < n; i++ {
		tr.Insert(c, i*2, i)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		sc := locks.NewCtx(pool, 8)
		defer sc.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			out := tr.Scan(sc, 0, 500, nil)
			for j := 1; j < len(out); j++ {
				if out[j].Key <= out[j-1].Key {
					t.Errorf("scan out of order during merges")
					return
				}
				if out[j].Value != out[j].Key/2 {
					t.Errorf("scan saw foreign value %d for key %d", out[j].Value, out[j].Key)
					return
				}
			}
		}
	}()
	dc := locks.NewCtx(pool, 8)
	for i := uint64(0); i < n; i += 2 { // delete half, heavy merging
		tr.Delete(dc, i*2)
	}
	dc.Close()
	close(stop)
	wg.Wait()
	checkInvariants(t, tr)
}

// TestConcurrentDeleteDisjoint drains disjoint ranges concurrently.
func TestConcurrentDeleteDisjoint(t *testing.T) {
	for _, scheme := range []string{"OptiQL", "pthread"} {
		t.Run(scheme, func(t *testing.T) {
			indextest.SkipIfOptimisticRace(t, locks.MustByName(scheme))
			tr, pool := newTree(t, scheme, 256)
			const goroutines, per = 8, 2500
			c0 := locks.NewCtx(pool, 8)
			for i := uint64(0); i < goroutines*per; i++ {
				tr.Insert(c0, i, i)
			}
			c0.Close()
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					c := locks.NewCtx(pool, 8)
					defer c.Close()
					base := uint64(g * per)
					for i := uint64(0); i < per; i++ {
						if !tr.Delete(c, base+i) {
							t.Errorf("delete miss %d", base+i)
							return
						}
					}
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if tr.Len() != 0 {
				t.Fatalf("Len = %d after concurrent drain", tr.Len())
			}
			checkInvariants(t, tr)
		})
	}
}
