package art

import (
	"testing"

	"optiql/internal/indextest"
	"optiql/internal/locks"
)

// oracleOptions adapts the ART to the shared concurrent oracle
// harness, with the white-box invariant walk as the post-run check.
func oracleOptions() indextest.Options {
	return indextest.Options{
		New: func(s *locks.Scheme) (indextest.Index, error) {
			tr, err := New(Config{Scheme: s})
			if err != nil {
				return nil, err
			}
			return tr, nil
		},
		Scan: func(idx indextest.Index, c *locks.Ctx, start uint64, max int) []indextest.KV {
			return idx.(*Tree).Scan(c, start, max, nil)
		},
		Invariants: func(t *testing.T, idx indextest.Index) { checkInvariants(t, idx.(*Tree)) },
	}
}

// TestConcurrentOracle runs the striped-key mixed workload across all
// paper schemes (exclusive-only schemes are skipped by the harness)
// and verifies exact final contents plus structural invariants. Dense
// low keys share long prefixes, stressing path compression and the
// node4/16/48/256 ladder.
func TestConcurrentOracle(t *testing.T) {
	indextest.Run(t, oracleOptions())
}

// TestConcurrentOracleChurn is the recycle-stress workload:
// insert/delete floods force continuous grow/shrink/compress cycles,
// so freed nodes and leaves are constantly republished from the
// per-Ctx free lists while concurrent readers and scanners validate
// against their bumped versions. Under -race the harness runs the
// pessimistic schemes, checking the recycler's happens-before edges.
func TestConcurrentOracleChurn(t *testing.T) {
	o := oracleOptions()
	o.Churn = true
	indextest.Run(t, o)
}

// TestConcurrentOracleSparse drives the same workload over sparse
// (splitmix-spread) keys, the layout that forces lazy expansion.
func TestConcurrentOracleSparse(t *testing.T) {
	o := oracleOptions()
	base := o.New
	o.New = func(s *locks.Scheme) (indextest.Index, error) {
		idx, err := base(s)
		if err != nil {
			return nil, err
		}
		return sparseIndex{idx.(*Tree)}, nil
	}
	o.Scan = nil // sparse remapping does not preserve key order
	o.Schemes = []string{"OptiQL", "OptiQL-NOR", "OptiQL-AOR", "pthread"}
	o.Invariants = func(t *testing.T, idx indextest.Index) {
		checkInvariants(t, idx.(sparseIndex).t)
	}
	indextest.Run(t, o)
}

// sparseIndex remaps the harness's dense keys through the splitmix
// bijection before they reach the tree, so the oracle logic stays
// dense while the tree sees well-spread 64-bit keys.
type sparseIndex struct{ t *Tree }

func (s sparseIndex) Lookup(c *locks.Ctx, k uint64) (uint64, bool) {
	return s.t.Lookup(c, sparse(k))
}
func (s sparseIndex) Insert(c *locks.Ctx, k, v uint64) bool { return s.t.Insert(c, sparse(k), v) }
func (s sparseIndex) Update(c *locks.Ctx, k, v uint64) bool { return s.t.Update(c, sparse(k), v) }
func (s sparseIndex) Delete(c *locks.Ctx, k uint64) bool    { return s.t.Delete(c, sparse(k)) }
func (s sparseIndex) Len() int                              { return s.t.Len() }
