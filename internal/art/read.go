package art

import (
	"optiql/internal/locks"
	"optiql/internal/obs"
)

// Lookup returns the value stored under k, traversing with optimistic
// lock coupling: node versions are validated hand over hand, and the
// operation restarts on any failure. Under pessimistic schemes the same
// path becomes shared lock coupling.
//
//optiql:noalloc
func (t *Tree) Lookup(c *locks.Ctx, k uint64) (uint64, bool) {
	// retry counts a restart before re-entering; the first attempt
	// skips it (same pattern as the B+-tree traversals).
	goto first
retry:
	c.Counters().Inc(obs.EvOpRestart)
	c.TraceRestart(k)
first:
	n := t.root
	level := 0
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		goto retry
	}
	for {
		if checkPrefix(n, k, level) < n.prefixLen {
			// Prefix mismatch: the key is not in the tree (prefixes are
			// stored in full, so this is definitive once validated).
			if !n.lock.ReleaseSh(c, tok) {
				goto retry
			}
			return 0, false
		}
		pos := level + n.prefixLen
		if pos >= 8 {
			// Possible only under a torn read; validation must fail.
			n.lock.ReleaseSh(c, tok)
			goto retry
		}
		r := n.findChild(keyByte(k, pos))
		if r.empty() {
			if !n.lock.ReleaseSh(c, tok) {
				goto retry
			}
			return 0, false
		}
		if r.l != nil {
			// Leaf: read key and value, then validate the owner node.
			key, val := r.l.key, r.l.value
			if !n.lock.ReleaseSh(c, tok) {
				goto retry
			}
			if key != k {
				return 0, false
			}
			return val, true
		}
		child := r.n
		prefetchNode(child)
		ctok, cok := child.lock.AcquireSh(c)
		if !cok {
			goto retry
		}
		if !n.lock.ReleaseSh(c, tok) {
			child.lock.ReleaseSh(c, ctok)
			goto retry
		}
		n, tok = child, ctok
		level = pos + 1
	}
}
