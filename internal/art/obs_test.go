package art

import (
	"testing"

	"optiql/internal/core"
	"optiql/internal/locks"
	"optiql/internal/obs"
)

func newObsCtx(t *testing.T, reg *obs.Registry) *locks.Ctx {
	t.Helper()
	c := locks.NewCtx(core.NewPool(8), 4)
	c.SetCounters(reg.NewCounters())
	t.Cleanup(c.Close)
	return c
}

// flakyLock forces the next *fails validations to fail (bumping the
// validation counter as a real adapter would), making restart counting
// deterministic without concurrency.
type flakyLock struct {
	locks.Lock
	fails *int
}

func (f flakyLock) ReleaseSh(c *locks.Ctx, t locks.Token) bool {
	ok := f.Lock.ReleaseSh(c, t)
	if ok && *f.fails > 0 {
		*f.fails--
		c.Counters().Inc(obs.EvShValidateFail)
		return false
	}
	return ok
}

func flakyScheme(fails *int) *locks.Scheme {
	newLock := func() locks.Lock { return flakyLock{new(locks.OptLock), fails} }
	return &locks.Scheme{
		Name:       "FlakyOptLock",
		Optimistic: true,
		SharedMode: true,
		NewLock:    newLock,
		NewInner:   newLock,
		NewLeaf:    newLock,
	}
}

// TestRestartCounterExact: N forced validation failures on Lookup
// produce exactly N counted restarts.
func TestRestartCounterExact(t *testing.T) {
	const forced = 4
	fails := 0
	tr := MustNew(Config{Scheme: flakyScheme(&fails)})
	reg := obs.NewRegistry()
	c := newObsCtx(t, reg)

	tr.Insert(c, 0x0102030405060708, 9)
	base := reg.Snapshot()

	fails = forced
	if v, ok := tr.Lookup(c, 0x0102030405060708); !ok || v != 9 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	snap := reg.Snapshot()
	if got := snap.Get(obs.EvOpRestart) - base.Get(obs.EvOpRestart); got != forced {
		t.Fatalf("op_restart = %d, want %d", got, forced)
	}
}

// TestExpansionCounter triggers a contention expansion deterministically
// (threshold 1, sampling off) via the path Update takes after a sampled
// upgrade failure, and checks both the tree's own expansion count and
// the obs counter.
func TestExpansionCounter(t *testing.T) {
	tr := MustNew(Config{
		Scheme:          locks.MustByName("OptiQL"),
		ExpandThreshold: 1,
		SampleInverse:   1,
	})
	reg := obs.NewRegistry()
	c := newObsCtx(t, reg)

	const k = 0x1122334455667788
	tr.Insert(c, k, 1)

	// The leaf hangs directly off the root (level 0); one contention
	// note crosses the threshold and materializes the path.
	tr.noteContention(c, tr.root, k)
	snap := reg.Snapshot()
	if got := snap.Get(obs.EvARTExpand); got != 1 {
		t.Fatalf("art_expansion = %d, want 1", got)
	}
	if tr.expansions.Load() != 1 {
		t.Fatalf("tree expansions = %d, want 1", tr.expansions.Load())
	}

	// The slot now holds a node, not a leaf: a second note is a no-op.
	tr.root.contention.Store(0)
	tr.noteContention(c, tr.root, k)
	if got := reg.Snapshot().Get(obs.EvARTExpand); got != 1 {
		t.Fatalf("art_expansion after no-op = %d, want 1", got)
	}

	// The expanded path still resolves the key.
	if v, ok := tr.Lookup(c, k); !ok || v != 1 {
		t.Fatalf("Lookup after expansion = %d,%v", v, ok)
	}
}
